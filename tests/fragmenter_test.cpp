// Tests for NEAT Phase 1 — t-fragment extraction and base cluster formation:
// junction insertion between adjacent segments, gap repair across skipped
// segments, augmented trajectories, ordering of the base-cluster list.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/fragmenter.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

traj::Location loc(std::int32_t sid, double x, double y, double t) {
  return traj::Location{SegmentId(sid), {x, y}, t, false};
}

TEST(Fragmenter, SingleSegmentTrajectory) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(1));
  tr.append(loc(1, 110, 0, 0.0));
  tr.append(loc(1, 150, 0, 1.0));
  tr.append(loc(1, 190, 0, 2.0));
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].sid, SegmentId(1));
  EXPECT_EQ(frags[0].num_samples, 3u);
  EXPECT_EQ(frags[0].entry.pos, (Point{110, 0}));
  EXPECT_EQ(frags[0].exit.pos, (Point{190, 0}));
  EXPECT_EQ(frags[0].trid, TrajectoryId(1));
}

TEST(Fragmenter, SinglePointTrajectory) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(1));
  tr.append(loc(2, 250, 0, 0.0));
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].num_samples, 1u);
  EXPECT_DOUBLE_EQ(frags[0].length(), 0.0);
}

TEST(Fragmenter, EmptyTrajectoryGivesNoFragments) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  EXPECT_TRUE(fragmenter.fragment(traj::Trajectory(TrajectoryId(1))).empty());
}

TEST(Fragmenter, InsertsJunctionBetweenAdjacentSegments) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(0, 60, 0, 0.0));
  tr.append(loc(1, 140, 0, 8.0));
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 2u);
  // Fragment 1 exits at the junction (100, 0); fragment 2 enters there.
  EXPECT_EQ(frags[0].sid, SegmentId(0));
  EXPECT_EQ(frags[0].exit.pos, (Point{100, 0}));
  EXPECT_TRUE(frags[0].exit.junction_point);
  EXPECT_EQ(frags[1].sid, SegmentId(1));
  EXPECT_EQ(frags[1].entry.pos, (Point{100, 0}));
  EXPECT_TRUE(frags[1].entry.junction_point);
  // Junction time interpolates distance-proportionally: 40 of 80 m -> t = 4.
  EXPECT_NEAR(frags[0].exit.t, 4.0, 1e-9);
}

TEST(Fragmenter, GapRepairEmitsIntermediateFragments) {
  // Points on segments 0 and 2 of a 4-segment line: segment 1 was skipped
  // entirely between samples. Phase 1 must recover it as a zero-sample
  // fragment between two junction points.
  const roadnet::RoadNetwork net = testutil::line_network(4);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(0, 60, 0, 0.0));
  tr.append(loc(2, 240, 0, 18.0));
  std::size_t repairs = 0;
  const auto frags = fragmenter.fragment(tr, &repairs);
  EXPECT_EQ(repairs, 1u);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0].sid, SegmentId(0));
  EXPECT_EQ(frags[1].sid, SegmentId(1));
  EXPECT_EQ(frags[2].sid, SegmentId(2));
  EXPECT_EQ(frags[1].num_samples, 0u);  // inferred, no raw samples
  EXPECT_EQ(frags[1].entry.pos, (Point{100, 0}));
  EXPECT_EQ(frags[1].exit.pos, (Point{200, 0}));
  EXPECT_TRUE(frags[1].entry.junction_point);
  // Timestamps interpolate monotonically across the repair.
  EXPECT_LT(frags[0].exit.t, frags[1].exit.t);
  EXPECT_LE(frags[1].exit.t, 18.0);
}

TEST(Fragmenter, GapRepairAcrossTwoSkippedSegments) {
  const roadnet::RoadNetwork net = testutil::line_network(5);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(0, 50, 0, 0.0));
  tr.append(loc(3, 350, 0, 30.0));
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(frags[i].sid, SegmentId(static_cast<std::int32_t>(i)));
  }
}

TEST(Fragmenter, BackAndForthProducesTwoFragmentsOnSameSegment) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Fragmenter fragmenter(net);
  // n1 -> n2 -> n4 -> n2 -> n1: S1, S3, S3?, S1 — S3 visited once (in and
  // out across n2 without leaving the segment is still one fragment until
  // the segment changes).
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(0, 50, 0, 0.0));                     // S1
  tr.append(loc(2, 100, 50, 10.0));                  // S3 up
  tr.append(loc(2, 100, 80, 12.0));                  // S3 further
  tr.append(loc(2, 100, 30, 20.0));                  // S3 back down
  tr.append(loc(0, 40, 0, 30.0));                    // S1 again
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0].sid, SegmentId(0));
  EXPECT_EQ(frags[1].sid, SegmentId(2));
  EXPECT_EQ(frags[2].sid, SegmentId(0));
}

TEST(Fragmenter, PreservesTravelOrderAndDirection) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  // Travelling right to left.
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(2, 290, 0, 0.0));
  tr.append(loc(1, 110, 0, 18.0));
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].sid, SegmentId(2));
  EXPECT_GT(frags[0].entry.pos.x, frags[0].exit.pos.x) << "direction preserved";
  EXPECT_EQ(frags[1].sid, SegmentId(1));
}

TEST(Fragmenter, AugmentedKeepsRawPointsAndAddsJunctions) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(0, 60, 0, 0.0));
  tr.append(loc(1, 140, 0, 8.0));
  tr.append(loc(1, 180, 0, 12.0));
  const traj::Trajectory aug = fragmenter.augmented(tr);
  ASSERT_EQ(aug.size(), 4u);  // 3 raw + 1 junction
  EXPECT_FALSE(aug.point(0).junction_point);
  EXPECT_TRUE(aug.point(1).junction_point);
  EXPECT_EQ(aug.point(1).pos, (Point{100, 0}));
  EXPECT_FALSE(aug.point(2).junction_point);
  // Timestamps stay non-decreasing (Trajectory enforces it on append).
  for (std::size_t i = 1; i < aug.size(); ++i) {
    EXPECT_LE(aug.point(i - 1).t, aug.point(i).t);
  }
}

TEST(Fragmenter, RejectsUnknownSegmentIds) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(7));
  tr.append(loc(99, 0, 0, 0.0));
  EXPECT_THROW(fragmenter.fragment(tr), Error);
}

TEST(Fragmenter, BaseClustersSortedByDensityThenSid) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  traj::TrajectoryDataset data;
  for (traj::Trajectory& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
  const Fragmenter fragmenter(net);
  const Phase1Output out = fragmenter.build_base_clusters(data);
  ASSERT_EQ(out.base_clusters.size(), 4u);
  for (std::size_t i = 1; i < out.base_clusters.size(); ++i) {
    const BaseCluster& prev = out.base_clusters[i - 1];
    const BaseCluster& cur = out.base_clusters[i];
    EXPECT_TRUE(prev.density() > cur.density() ||
                (prev.density() == cur.density() && prev.sid() < cur.sid()));
  }
  EXPECT_EQ(out.num_fragments, 10u);  // 2 fragments per trajectory, 5 trajectories
}

TEST(Fragmenter, FragmentCountMatchesSegmentTransitions) {
  // Property on simulated data: fragments per trajectory = segment changes
  // + 1 when no gaps occur (3 s sampling cannot skip 100 m segments at
  // 10 m/s < 34 m/sample).
  const roadnet::RoadNetwork net = roadnet::make_grid(6, 6, 100.0, 10.0);
  sim::SimConfig cfg;
  cfg.hotspots = {NodeId(0)};
  cfg.destinations = {NodeId(35)};
  cfg.sample_period_s = 3.0;
  const sim::MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset data = simulator.generate(10, 77);
  const Fragmenter fragmenter(net);
  for (const traj::Trajectory& tr : data) {
    std::size_t transitions = 0;
    for (std::size_t i = 1; i < tr.size(); ++i) {
      if (tr.point(i).sid != tr.point(i - 1).sid) ++transitions;
    }
    std::size_t repairs = 0;
    const auto frags = fragmenter.fragment(tr, &repairs);
    EXPECT_EQ(repairs, 0u);
    EXPECT_EQ(frags.size(), transitions + 1);
    // Fragment chain is contiguous: consecutive fragments lie on adjacent
    // segments and share their junction point.
    for (std::size_t i = 1; i < frags.size(); ++i) {
      EXPECT_TRUE(net.are_adjacent(frags[i - 1].sid, frags[i].sid));
      EXPECT_EQ(frags[i - 1].exit.pos, frags[i].entry.pos);
    }
  }
}

TEST(Fragmenter, GapRepairCountsInPhase1Output) {
  const roadnet::RoadNetwork net = testutil::line_network(4);
  traj::TrajectoryDataset data;
  traj::Trajectory tr(TrajectoryId(1));
  tr.append(loc(0, 60, 0, 0.0));
  tr.append(loc(2, 240, 0, 18.0));
  data.add(std::move(tr));
  const Fragmenter fragmenter(net);
  const Phase1Output out = fragmenter.build_base_clusters(data);
  EXPECT_EQ(out.num_gap_repairs, 1u);
  EXPECT_EQ(out.num_fragments, 3u);
  EXPECT_EQ(out.base_clusters.size(), 3u);
}

}  // namespace
}  // namespace neat
