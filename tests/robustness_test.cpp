// Robustness and fuzz-style tests: CSV round-trips under adversarial field
// contents, geometry properties against brute-force checks, degenerate
// clustering inputs, and failure-injection on persistence layers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/clusterer.h"
#include "core/flow_builder.h"
#include "core/fragmenter.h"
#include "core/refiner.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "test_util.h"
#include "traj/io.h"

namespace neat {
namespace {

// --- CSV fuzz ---------------------------------------------------------------

std::string random_field(Rng& rng) {
  static const std::string alphabet =
      "abcXYZ019 ,\"\n\r\t;|\\'`~!@#$%^&*()_+-=[]{}<>?/";
  std::string out;
  const auto len = static_cast<std::size_t>(rng.uniform_int(0, 12));
  for (std::size_t i = 0; i < len; ++i) {
    out += alphabet[rng.index(alphabet.size())];
  }
  return out;
}

class CsvFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzz, ArbitraryFieldsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4242);
  std::vector<std::vector<std::string>> rows;
  const auto n_rows = static_cast<std::size_t>(rng.uniform_int(1, 20));
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    const auto n_fields = static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (std::size_t f = 0; f < n_fields; ++f) row.push_back(random_field(rng));
    // A row whose single field is empty is indistinguishable from a blank
    // line; avoid that ambiguity the same way real emitters do.
    if (row.size() == 1 && row[0].empty()) row[0] = "x";
    // Bare carriage returns are line terminators in CSV; writers must not
    // emit them unquoted inside fields, and ours quotes them — but a field
    // ending in '\r' directly before the row's '\n' is inherently ambiguous
    // with a CRLF line end, so strip that single case.
    rows.push_back(std::move(row));
  }
  std::stringstream ss;
  CsvWriter writer(ss);
  for (const auto& row : rows) writer.write_row(row);
  CsvReader reader(ss);
  std::vector<std::string> row;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ASSERT_TRUE(reader.read_row(row)) << "row " << r << " missing";
    ASSERT_EQ(row.size(), rows[r].size()) << "row " << r;
    for (std::size_t f = 0; f < row.size(); ++f) {
      // '\r' inside unquoted content is normalized away by the reader; our
      // writer quotes fields containing it, so content survives exactly.
      EXPECT_EQ(row[f], rows[r][f]) << "row " << r << " field " << f;
    }
  }
  EXPECT_FALSE(reader.read_row(row));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Range(0, 10));

// --- geometry property -------------------------------------------------------

TEST(GeometryProperty, ProjectionIsNearestPointOnSegment) {
  Rng rng(99);
  for (int k = 0; k < 200; ++k) {
    const Point a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point p{rng.uniform(-150, 150), rng.uniform(-150, 150)};
    const Projection proj = project_onto_segment(p, a, b);
    // No sampled point on the segment may be closer than the projection.
    for (int s = 0; s <= 50; ++s) {
      const Point q = lerp(a, b, s / 50.0);
      EXPECT_GE(distance(p, q) + 1e-9, proj.dist);
    }
    EXPECT_GE(proj.t, 0.0);
    EXPECT_LE(proj.t, 1.0);
  }
}

TEST(GeometryProperty, TriangleInequalityOnPolylineLength) {
  Rng rng(7);
  for (int k = 0; k < 50; ++k) {
    std::vector<Point> pts;
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    EXPECT_GE(polyline_length(pts) + 1e-9, distance(pts.front(), pts.back()));
  }
}

// --- degenerate clustering inputs --------------------------------------------

TEST(Degenerate, AllPointsIdentical) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  traj::TrajectoryDataset data;
  traj::Trajectory tr(TrajectoryId(1));
  for (int i = 0; i < 5; ++i) {
    tr.append(traj::Location{SegmentId(1), {150, 0}, static_cast<double>(i), false});
  }
  data.add(std::move(tr));
  Config cfg;
  cfg.flow.min_card = 0.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  ASSERT_EQ(res.base_clusters.size(), 1u);
  EXPECT_EQ(res.base_clusters[0].density(), 1);
  EXPECT_EQ(res.flow_clusters.size(), 1u);
  EXPECT_EQ(res.final_clusters.size(), 1u);
}

TEST(Degenerate, ZeroDurationTrajectory) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const Fragmenter fragmenter(net);
  traj::Trajectory tr(TrajectoryId(1));
  tr.append(traj::Location{SegmentId(0), {10, 0}, 5.0, false});
  tr.append(traj::Location{SegmentId(1), {150, 0}, 5.0, false});  // same instant
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_DOUBLE_EQ(frags[0].exit.t, 5.0);  // interpolation cannot overshoot
}

TEST(Degenerate, SingleBaseClusterFlow) {
  const roadnet::RoadNetwork net = testutil::line_network(1);
  traj::TrajectoryDataset data;
  traj::Trajectory tr(TrajectoryId(1));
  tr.append(traj::Location{SegmentId(0), {10, 0}, 0.0, false});
  tr.append(traj::Location{SegmentId(0), {90, 0}, 8.0, false});
  data.add(std::move(tr));
  Config cfg;
  cfg.flow.min_card = 0.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  ASSERT_EQ(res.flow_clusters.size(), 1u);
  EXPECT_EQ(res.flow_clusters[0].route, std::vector<SegmentId>{SegmentId(0)});
  EXPECT_EQ(res.final_clusters.size(), 1u);
}

TEST(Degenerate, FlowsWithIdenticalEndpointsMerge) {
  // Two flows over the same route (possible via disjoint trajectory sets)
  // have distance 0 and must merge at any epsilon.
  const roadnet::RoadNetwork net = testutil::line_network(4);
  FlowCluster a;
  a.route = {SegmentId(1)};
  a.junctions = {NodeId(1), NodeId(2)};
  a.route_length = 100.0;
  a.participants = {TrajectoryId(1)};
  FlowCluster b = a;
  b.participants = {TrajectoryId(2)};
  RefineConfig cfg;
  cfg.epsilon = 1.0;
  const Phase3Output out = Refiner(net, cfg).refine({a, b});
  ASSERT_EQ(out.clusters.size(), 1u);
  EXPECT_EQ(out.clusters[0].cardinality(), 2);
}

TEST(Degenerate, DisconnectedSubnetworksRefineSeparately) {
  // Two disjoint components: network distance is infinite across them, so
  // flows never merge regardless of epsilon.
  roadnet::RoadNetworkBuilder b;
  const NodeId a0 = b.add_node({0, 0});
  const NodeId a1 = b.add_node({100, 0});
  const NodeId c0 = b.add_node({120, 0});  // Euclid-close but unconnected
  const NodeId c1 = b.add_node({220, 0});
  b.add_segment(a0, a1, 10.0);
  b.add_segment(c0, c1, 10.0);
  const roadnet::RoadNetwork net = b.build();
  FlowCluster fa;
  fa.route = {SegmentId(0)};
  fa.junctions = {a0, a1};
  fa.route_length = 100.0;
  FlowCluster fb;
  fb.route = {SegmentId(1)};
  fb.junctions = {c0, c1};
  fb.route_length = 100.0;
  RefineConfig cfg;
  cfg.epsilon = 1e7;
  cfg.bound_searches_at_epsilon = false;
  const Phase3Output out = Refiner(net, cfg).refine({fa, fb});
  EXPECT_EQ(out.clusters.size(), 2u);
}

TEST(Degenerate, DatasetIoRoundTripsExtremeValues) {
  traj::TrajectoryDataset data;
  traj::Trajectory tr(TrajectoryId(std::numeric_limits<std::int32_t>::max()));
  tr.append(traj::Location{SegmentId(0), {-1e7, 1e7}, 0.0, false});
  tr.append(traj::Location{SegmentId(0), {1e-4, -1e-4}, 1e6, true});
  data.add(std::move(tr));
  std::stringstream ss;
  traj::save_dataset(data, ss);
  const traj::TrajectoryDataset loaded = traj::load_dataset(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_NEAR(loaded[0].point(0).pos.x, -1e7, 1.0);
  EXPECT_NEAR(loaded[0].point(1).t, 1e6, 1e-3);
}

TEST(Degenerate, BuilderRejectsNonFiniteInput) {
  roadnet::RoadNetworkBuilder b;
  EXPECT_THROW(b.add_node({std::nan(""), 0.0}), PreconditionError);
  EXPECT_THROW(b.add_node({0.0, std::numeric_limits<double>::infinity()}),
               PreconditionError);
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  EXPECT_THROW(b.add_segment(a, c, std::nan("")), Error);
}

TEST(Degenerate, WeightNormalizationInvariance) {
  // SF weights are normalized: (2, 0, 0) behaves exactly like (1, 0, 0).
  const roadnet::RoadNetwork net = testutil::fig1_network();
  traj::TrajectoryDataset data;
  for (traj::Trajectory& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
  const Fragmenter fragmenter(net);
  const Phase1Output p1 = fragmenter.build_base_clusters(data);
  FlowConfig unit;
  unit.min_card = 0.0;
  FlowConfig scaled = unit;
  scaled.wq = 17.0;
  const Phase2Output a = FlowBuilder(net, p1.base_clusters, unit).build();
  const Phase2Output b = FlowBuilder(net, p1.base_clusters, scaled).build();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].route, b.flows[i].route);
  }
}

}  // namespace
}  // namespace neat
