// Unit tests for the common substrate: ids, geometry, strings, CSV, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/csv.h"
#include "common/error.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace neat {
namespace {

// --- ids ---------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  const SegmentId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42);
}

TEST(Ids, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
}

TEST(Ids, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_same_v<NodeId, SegmentId>);
  static_assert(!std::is_convertible_v<NodeId, SegmentId>);
  static_assert(!std::is_convertible_v<int, NodeId>);  // explicit only
}

TEST(Ids, Hashable) {
  std::unordered_set<TrajectoryId> set;
  set.insert(TrajectoryId(7));
  set.insert(TrajectoryId(7));
  set.insert(TrajectoryId(8));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamOutput) {
  std::ostringstream os;
  os << NodeId(5) << ' ' << NodeId::invalid();
  EXPECT_EQ(os.str(), "5 <invalid>");
}

// --- geometry ------------------------------------------------------------

TEST(Geometry, PointArithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(a, b), -7.0);
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Geometry, ProjectionInterior) {
  const Projection p = project_onto_segment({5, 3}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.t, 0.5);
  EXPECT_EQ(p.closest, (Point{5, 0}));
  EXPECT_DOUBLE_EQ(p.dist, 3.0);
}

TEST(Geometry, ProjectionClampsToEndpoints) {
  EXPECT_DOUBLE_EQ(project_onto_segment({-5, 0}, {0, 0}, {10, 0}).t, 0.0);
  EXPECT_DOUBLE_EQ(project_onto_segment({15, 0}, {0, 0}, {10, 0}).t, 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-3, 4}, {0, 0}, {10, 0}), 5.0);
}

TEST(Geometry, ProjectionDegenerateSegment) {
  const Projection p = project_onto_segment({3, 4}, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(p.t, 0.0);
  EXPECT_DOUBLE_EQ(p.dist, 5.0);
}

TEST(Geometry, PolylineLength) {
  EXPECT_DOUBLE_EQ(polyline_length({}), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length({{0, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length({{0, 0}, {3, 4}, {3, 14}}), 15.0);
}

TEST(Geometry, PointAlongPolyline) {
  const std::vector<Point> line{{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(point_along_polyline(line, -1.0), (Point{0, 0}));
  EXPECT_EQ(point_along_polyline(line, 5.0), (Point{5, 0}));
  EXPECT_EQ(point_along_polyline(line, 15.0), (Point{10, 5}));
  EXPECT_EQ(point_along_polyline(line, 100.0), (Point{10, 10}));
  EXPECT_THROW(point_along_polyline({}, 1.0), PreconditionError);
}

TEST(Geometry, HeadingAndAngleDifference) {
  EXPECT_DOUBLE_EQ(heading({0, 0}, {1, 0}), 0.0);
  EXPECT_NEAR(heading({0, 0}, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(angle_difference(0.1, -0.1), 0.2, 1e-12);
  // Wraps around the circle: 350 degrees apart is really 10 degrees.
  EXPECT_NEAR(angle_difference(0.0, 2 * M_PI - 0.2), 0.2, 1e-9);
}

TEST(Geometry, LerpEndpoints) {
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.0), (Point{0, 0}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 1.0), (Point{10, 20}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.5), (Point{5, 10}));
}

// --- string_util -----------------------------------------------------------

TEST(StringUtil, StrCat) {
  EXPECT_EQ(str_cat("a", 1, 'b', 2.5), "a1b2.5");
  EXPECT_EQ(str_cat(), "");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 "), -1000.0);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4.2"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

// --- csv -----------------------------------------------------------------

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteReadRoundTrip) {
  std::stringstream ss;
  CsvWriter writer(ss);
  writer.write_row({"a", "b,c", "d\"e", ""});
  writer.write_row({"1", "2"});
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "b,c", "d\"e", ""}));
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2"}));
  EXPECT_FALSE(reader.read_row(row));
}

TEST(Csv, ReadsCrLfAndMissingTrailingNewline) {
  std::stringstream ss("a,b\r\nc,d");
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"c", "d"}));
  EXPECT_FALSE(reader.read_row(row));
}

TEST(Csv, QuotedFieldWithNewline) {
  std::stringstream ss("\"a\nb\",c\n");
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"a\nb", "c"}));
}

TEST(Csv, MalformedQuotingThrows) {
  std::stringstream ss("ab\"cd\n");
  CsvReader reader(ss);
  std::vector<std::string> row;
  EXPECT_THROW(reader.read_row(row), ParseError);
  std::stringstream ss2("\"unterminated");
  CsvReader reader2(ss2);
  EXPECT_THROW(reader2.read_row(row), ParseError);
}

// --- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differs = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
    const auto n = rng.uniform_int(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PickAndIndexValidate) {
  Rng rng(7);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
  EXPECT_THROW(rng.index(0), PreconditionError);
  EXPECT_THROW(rng.pick(std::vector<int>{}), PreconditionError);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(9);
  const std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted_index(w), 1u);
}

TEST(Rng, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.uniform_int(0, 1000000), fb.uniform_int(0, 1000000));
  }
}

// --- error ------------------------------------------------------------------

TEST(Error, ExpectMacroThrowsWithContext) {
  try {
    NEAT_EXPECT(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Error, HierarchyCatchableAsNeatError) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw PreconditionError("x"), Error);
}

}  // namespace
}  // namespace neat
