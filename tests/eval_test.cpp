// Tests for the evaluation utilities: metrics, text tables, experiment env.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/table.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat::eval {
namespace {

TEST(Metrics, FlowRouteStats) {
  std::vector<FlowCluster> flows(3);
  flows[0].route_length = 100.0;
  flows[1].route_length = 300.0;
  flows[2].route_length = 200.0;
  const RouteLengthStats st = flow_route_stats(flows);
  EXPECT_EQ(st.count, 3u);
  EXPECT_DOUBLE_EQ(st.avg_m, 200.0);
  EXPECT_DOUBLE_EQ(st.max_m, 300.0);
  const RouteLengthStats empty = flow_route_stats({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.avg_m, 0.0);
}

TEST(Metrics, TraclusRouteStats) {
  std::vector<traclus::Cluster> cs(2);
  cs[0].representative_length = 50.0;
  cs[1].representative_length = 150.0;
  const RouteLengthStats st = traclus_route_stats(cs);
  EXPECT_DOUBLE_EQ(st.avg_m, 100.0);
  EXPECT_DOUBLE_EQ(st.max_m, 150.0);
}

TEST(Metrics, CoverageOnFig1) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  traj::TrajectoryDataset data;
  for (traj::Trajectory& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
  Config cfg;
  cfg.mode = Mode::kFlow;
  cfg.flow.min_card = 0.0;  // keep everything
  const Result res = NeatClusterer(net, cfg).run(data);
  EXPECT_DOUBLE_EQ(fragment_coverage(res), 1.0);
  EXPECT_DOUBLE_EQ(trajectory_coverage(res, data.size()), 1.0);

  Config strict = cfg;
  strict.flow.min_card = 100.0;  // filter everything
  const Result res2 = NeatClusterer(net, strict).run(data);
  EXPECT_DOUBLE_EQ(fragment_coverage(res2), 0.0);
  EXPECT_DOUBLE_EQ(trajectory_coverage(res2, data.size()), 0.0);
}

TEST(TextTable, AlignedOutput) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every printed row has the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  std::getline(lines, line);
  width = line.size();
  std::getline(lines, line);  // rule
  while (std::getline(lines, line)) EXPECT_EQ(line.size(), width);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TextTable, WriteCsv) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2,3"});
  const std::string path = "/tmp/neat_eval_test_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"2,3\"");
  std::filesystem::remove(path);
  EXPECT_THROW(t.write_csv("/nonexistent/dir/t.csv"), Error);
}

TEST(Report, ContainsAllSections) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(30, 5);
  Config cfg;
  cfg.refine.epsilon = 500.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  const std::string report = report_string(net, res, data.size());
  EXPECT_NE(report.find("phase 1:"), std::string::npos);
  EXPECT_NE(report.find("dense-core"), std::string::npos);
  EXPECT_NE(report.find("phase 2:"), std::string::npos);
  EXPECT_NE(report.find("coverage:"), std::string::npos);
  EXPECT_NE(report.find("phase 3:"), std::string::npos);
  EXPECT_NE(report.find("timings:"), std::string::npos);
  EXPECT_NE(report.find("#1:"), std::string::npos);
}

TEST(Report, OptionsControlSections) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(20, 5);
  Config cfg;
  cfg.mode = Mode::kBase;
  const Result res = NeatClusterer(net, cfg).run(data);
  ReportOptions opts;
  opts.include_timings = false;
  const std::string report = report_string(net, res, data.size(), opts);
  EXPECT_EQ(report.find("timings:"), std::string::npos);
  EXPECT_EQ(report.find("phase 2:"), std::string::npos) << "base mode has no phase 2";
  EXPECT_NE(report.find("phase 1:"), std::string::npos);
}

TEST(ExperimentEnv, ScaledObjectsFloorsAtTen) {
  const ExperimentEnv& env = ExperimentEnv::instance();
  EXPECT_GE(env.scaled_objects(500), 10u);
  EXPECT_GE(env.scaled_objects(5000), env.scaled_objects(500));
}

TEST(ExperimentEnv, DatasetsAreCachedAndDeterministic) {
  ExperimentEnv& env = ExperimentEnv::instance();
  const traj::TrajectoryDataset& a = env.dataset("ATL", 500);
  const traj::TrajectoryDataset& b = env.dataset("ATL", 500);
  EXPECT_EQ(&a, &b) << "same dataset object must be returned from the cache";
  EXPECT_GT(a.total_points(), 0u);
  const roadnet::RoadNetwork& net = env.network("ATL");
  EXPECT_GT(net.segment_count(), 0u);
  EXPECT_FALSE(env.sim_config("ATL").hotspots.empty());
}

}  // namespace
}  // namespace neat::eval
