// Tests for the serving subsystem: snapshot build/validate, snapshot store
// publication rules, query engine answers, bounded queue backpressure,
// ingest service end-to-end, and the metrics layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "core/clusterer.h"
#include "serve/bounded_queue.h"
#include "serve/ingest_service.h"
#include "serve/query_engine.h"
#include "test_util.h"

namespace neat {
namespace {

// A fig1 clustering result to serve: flows over the star network.
struct Fixture {
  roadnet::RoadNetwork net = testutil::fig1_network();
  Result result;

  Fixture() {
    traj::TrajectoryDataset data;
    for (auto& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
    Config cfg;
    cfg.refine.epsilon = 1000.0;
    result = NeatClusterer(net, cfg).run(data);
  }
};

TEST(ClusterSnapshot, BuildsValidIndices) {
  Fixture fx;
  ASSERT_FALSE(fx.result.flow_clusters.empty());
  const auto snap = serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters,
                                                  fx.result.final_clusters, 1);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_TRUE(snap->validate(fx.net));
  EXPECT_EQ(snap->flows().size(), fx.result.flow_clusters.size());

  // Every route segment of every flow maps back through the index.
  for (std::size_t f = 0; f < snap->flows().size(); ++f) {
    for (const SegmentId sid : snap->flows()[f].route) {
      const auto on_seg = snap->flows_on_segment(sid);
      EXPECT_NE(std::find(on_seg.begin(), on_seg.end(), static_cast<std::uint32_t>(f)),
                on_seg.end());
    }
  }
  // Unused / invalid segment ids answer empty, not UB.
  EXPECT_TRUE(snap->flows_on_segment(SegmentId::invalid()).empty());
  EXPECT_TRUE(snap->flows_on_segment(SegmentId(9999)).empty());

  // Density ranking is a permutation sorted by cardinality desc.
  const auto ranked = snap->flows_by_density();
  ASSERT_EQ(ranked.size(), snap->flows().size());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(snap->flows()[ranked[i - 1]].cardinality(),
              snap->flows()[ranked[i]].cardinality());
  }
}

TEST(ClusterSnapshot, RejectsBadInputs) {
  Fixture fx;
  EXPECT_THROW(serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters,
                                             fx.result.final_clusters, 0),
               PreconditionError);
  // Final cluster referencing a nonexistent flow.
  std::vector<FinalCluster> bad_finals(1);
  bad_finals[0].flows = {fx.result.flow_clusters.size() + 5};
  EXPECT_THROW(
      serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters, bad_finals, 1),
      PreconditionError);
  // Flow routed over a segment the network does not have.
  std::vector<FlowCluster> bad_flows = fx.result.flow_clusters;
  bad_flows[0].route[0] = SegmentId(1234);
  EXPECT_THROW(serve::ClusterSnapshot::build(fx.net, bad_flows, {}, 1),
               PreconditionError);
}

TEST(SnapshotStore, PublishesMonotonicVersions) {
  Fixture fx;
  serve::SnapshotStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version(), 0u);

  store.publish(serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters,
                                              fx.result.final_clusters, 1));
  EXPECT_EQ(store.version(), 1u);
  store.publish(serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters,
                                              fx.result.final_clusters, 2));
  EXPECT_EQ(store.version(), 2u);
  // Same or lower version: refused.
  EXPECT_THROW(store.publish(serve::ClusterSnapshot::build(
                   fx.net, fx.result.flow_clusters, fx.result.final_clusters, 2)),
               PreconditionError);
  EXPECT_THROW(store.publish(nullptr), PreconditionError);
  // A reader pinning the old snapshot keeps it alive across a publish.
  const auto pinned = store.current();
  store.publish(serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters,
                                              fx.result.final_clusters, 3));
  EXPECT_EQ(pinned->version(), 2u);
  EXPECT_EQ(store.version(), 3u);
}

TEST(QueryEngine, AnswersAgainstPublishedSnapshot) {
  Fixture fx;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  const serve::QueryEngine engine(fx.net, store, &metrics);

  // Before any publish: empty answers, no crash.
  EXPECT_FALSE(engine.nearest_flow({100.0, 0.0}, 500.0).has_value());
  EXPECT_TRUE(engine.flows_on_segment(SegmentId(0)).flows.empty());
  EXPECT_TRUE(engine.top_k_flows(3).flows.empty());
  EXPECT_GE(metrics.snapshot().empty_snapshot_queries, 3u);

  store.publish(serve::ClusterSnapshot::build(fx.net, fx.result.flow_clusters,
                                              fx.result.final_clusters, 1));

  // Point on S1 (between n1 and n2): the nearest flow must route over S1.
  const auto hit = engine.nearest_flow({50.0, 5.0}, 200.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->snapshot_version, 1u);
  EXPECT_EQ(hit->segment, SegmentId(0));
  EXPECT_NEAR(hit->distance_m, 5.0, 1e-9);
  const auto& route = fx.result.flow_clusters[hit->flow].route;
  EXPECT_NE(std::find(route.begin(), route.end(), SegmentId(0)), route.end());
  EXPECT_EQ(hit->cardinality, fx.result.flow_clusters[hit->flow].cardinality());

  // Far away: no hit.
  EXPECT_FALSE(engine.nearest_flow({5000.0, 5000.0}, 300.0).has_value());

  // Segment membership matches the ground truth from the result.
  for (std::size_t s = 0; s < fx.net.segment_count(); ++s) {
    const auto sid = SegmentId(static_cast<std::int32_t>(s));
    std::vector<std::uint32_t> expect;
    for (std::size_t f = 0; f < fx.result.flow_clusters.size(); ++f) {
      const auto& r = fx.result.flow_clusters[f].route;
      if (std::find(r.begin(), r.end(), sid) != r.end()) {
        expect.push_back(static_cast<std::uint32_t>(f));
      }
    }
    EXPECT_EQ(engine.flows_on_segment(sid).flows, expect) << "segment " << s;
  }

  // Top-k: k larger than the flow count returns all, densest first.
  const auto top = engine.top_k_flows(100);
  ASSERT_EQ(top.flows.size(), fx.result.flow_clusters.size());
  for (std::size_t i = 1; i < top.flows.size(); ++i) {
    EXPECT_GE(top.flows[i - 1].cardinality, top.flows[i].cardinality);
  }
  EXPECT_EQ(engine.top_k_flows(1).flows.size(), 1u);

  const serve::MetricsSnapshot m = metrics.snapshot();
  EXPECT_GT(m.queries_total, 0u);
  EXPECT_GT(m.nearest_flow_queries, 0u);
  EXPECT_GT(m.segment_queries, 0u);
  EXPECT_GT(m.top_k_queries, 0u);
}

TEST(BoundedQueue, RejectAndBlockBackpressure) {
  serve::BoundedQueue<int> q(2);
  EXPECT_THROW(serve::BoundedQueue<int>(0), PreconditionError);
  EXPECT_EQ(q.push(1, /*block=*/false), serve::PushResult::kAccepted);
  EXPECT_EQ(q.push(2, false), serve::PushResult::kAccepted);
  EXPECT_EQ(q.push(3, false), serve::PushResult::kRejected);
  EXPECT_EQ(q.size(), 2u);

  // A blocking push completes once the consumer frees a slot.
  std::thread producer([&] { EXPECT_EQ(q.push(3, true), serve::PushResult::kAccepted); });
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));

  // close() drains remaining items, then signals end-of-stream.
  q.push(7, false);
  q.close();
  EXPECT_EQ(q.push(8, false), serve::PushResult::kClosed);
  EXPECT_EQ(q.push(9, true), serve::PushResult::kClosed);
  EXPECT_EQ(q.pop(), std::optional<int>(7));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(IngestService, PublishesSnapshotPerBatch) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  Config cfg;
  cfg.refine.epsilon = 1000.0;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  serve::IngestService ingest(net, cfg, store, metrics);
  const serve::QueryEngine engine(net, store, &metrics);

  const NodeId n1(0), n2(1), n3(2), n5(4);
  traj::TrajectoryDataset batch1;
  batch1.add(testutil::make_path_trajectory(net, 1, {n1, n2, n3}));
  batch1.add(testutil::make_path_trajectory(net, 2, {n1, n2, n3}));
  traj::TrajectoryDataset batch2;
  batch2.add(testutil::make_path_trajectory(net, 3, {n1, n2, n5}));

  EXPECT_TRUE(ingest.submit(std::move(batch1)));
  EXPECT_TRUE(ingest.submit(std::move(batch2)));
  ingest.flush();

  EXPECT_EQ(ingest.batches_published(), 2u);
  EXPECT_EQ(store.version(), 2u);
  const auto snap = engine.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->validate(net));
  EXPECT_FALSE(snap->flows().empty());
  EXPECT_EQ(metrics.snapshot().batches_ingested, 2u);
  EXPECT_EQ(metrics.snapshot().trajectories_ingested, 3u);
  EXPECT_EQ(metrics.snapshot().snapshot_version, 2u);

  // A bad batch (duplicate trajectory id) is counted failed; the last good
  // snapshot keeps serving.
  traj::TrajectoryDataset dup;
  dup.add(testutil::make_path_trajectory(net, 1, {n1, n2}));
  EXPECT_TRUE(ingest.submit(std::move(dup)));
  ingest.flush();
  EXPECT_EQ(metrics.snapshot().batches_failed, 1u);
  EXPECT_EQ(store.version(), 2u);

  ingest.stop();
  // After stop, submissions are refused.
  traj::TrajectoryDataset late;
  late.add(testutil::make_path_trajectory(net, 99, {n1, n2}));
  EXPECT_FALSE(ingest.submit(std::move(late)));
}

TEST(Metrics, HistogramQuantilesAndJson) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.quantile_seconds(0.5), 0.0);
  // 10 obs at ~2 µs, 1 at ~1000 µs: p50 in a small bucket, p99+ in the big.
  for (int i = 0; i < 10; ++i) h.record(2e-6);
  h.record(1e-3);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_LE(h.quantile_seconds(0.5), 8e-6);
  EXPECT_GE(h.quantile_seconds(0.999), 1e-3);
  EXPECT_GT(h.mean_seconds(), 0.0);
  // Quantiles are conservative upper edges: monotone in q.
  EXPECT_LE(h.quantile_seconds(0.2), h.quantile_seconds(0.9));

  serve::Metrics metrics;
  metrics.record_query(serve::Metrics::QueryKind::kNearestFlow, 1e-5);
  metrics.record_ingest(42, 0.01, 7);
  EXPECT_EQ(metrics.snapshot_version(), 7u);
  EXPECT_GE(metrics.snapshot_age_seconds(), 0.0);
  const std::string json = metrics.to_json();
  for (const char* key :
       {"\"queries\"", "\"nearest_flow\"", "\"latency_s\"", "\"p50\"", "\"p99\"",
        "\"histogram\"", "\"buckets_us\"", "\"ingest\"", "\"trajectories\":42",
        "\"snapshot\"", "\"version\":7"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

TEST(Incremental, SnapshotStateIsDeepCopy) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  Config cfg;
  cfg.refine.epsilon = 1000.0;
  IncrementalClusterer inc(net, cfg);
  traj::TrajectoryDataset batch;
  for (auto& tr : testutil::fig1_trajectories(net)) batch.add(std::move(tr));
  inc.add_batch(batch);

  auto [flows, clusters] = inc.snapshot_state();
  EXPECT_EQ(flows.size(), inc.flows().size());
  EXPECT_EQ(clusters.size(), inc.clusters().size());
  // Mutating the copy leaves the live state untouched.
  ASSERT_FALSE(flows.empty());
  flows[0].participants.clear();
  EXPECT_FALSE(inc.flows()[0].participants.empty());
}

}  // namespace
}  // namespace neat
