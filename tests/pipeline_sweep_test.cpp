// Broad invariant sweep: the full NEAT pipeline across seeds × network
// topologies × operating modes, checking the cross-phase invariants that
// must hold for *any* input. This is the safety net that catches
// interactions the targeted unit tests cannot anticipate.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/clusterer.h"
#include "core/netflow.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

namespace neat {
namespace {

struct SweepCase {
  const char* topology;  // "lattice" | "radial"
  int seed;
};

roadnet::RoadNetwork make_topology(const SweepCase& c) {
  if (std::string(c.topology) == "radial") {
    roadnet::RadialCityParams p;
    p.rings = 8;
    p.spokes = 12;
    p.ring_spacing_m = 180.0;
    p.seed = static_cast<std::uint64_t>(c.seed) + 7;
    return roadnet::make_radial_city(p);
  }
  roadnet::CityParams p;
  p.rows = 18;
  p.cols = 18;
  p.spacing_m = 125.0;
  p.oneway_probability = 0.05;
  p.seed = static_cast<std::uint64_t>(c.seed) + 7;
  return roadnet::make_city(p);
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, CrossPhaseInvariantsHold) {
  const SweepCase c = GetParam();
  const roadnet::RoadNetwork net = make_topology(c);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(net, scfg).generate(70, static_cast<std::uint64_t>(c.seed));
  ASSERT_GT(data.size(), 0u);

  Config cfg;
  cfg.refine.epsilon = 900.0;
  const Result res = NeatClusterer(net, cfg).run(data);

  // --- Phase 1 invariants.
  std::unordered_set<std::int32_t> seen_sids;
  std::size_t density_sum = 0;
  for (const BaseCluster& bc : res.base_clusters) {
    EXPECT_TRUE(seen_sids.insert(bc.sid().value()).second)
        << "one base cluster per segment (Definition 2)";
    EXPECT_GT(bc.density(), 0);
    EXPECT_GE(bc.density(), bc.cardinality());
    density_sum += static_cast<std::size_t>(bc.density());
    EXPECT_TRUE(std::is_sorted(bc.participants().begin(), bc.participants().end()));
    for (const TFragment& f : bc.fragments()) {
      EXPECT_EQ(f.sid, bc.sid());
      EXPECT_LE(f.entry.t, f.exit.t);
    }
  }
  EXPECT_EQ(density_sum, res.num_fragments);
  // Density ordering.
  for (std::size_t i = 1; i < res.base_clusters.size(); ++i) {
    EXPECT_GE(res.base_clusters[i - 1].density(), res.base_clusters[i].density());
  }

  // --- Phase 2 invariants.
  for (const auto* flows : {&res.flow_clusters, &res.filtered_flows}) {
    for (const FlowCluster& f : *flows) {
      ASSERT_FALSE(f.route.empty());
      ASSERT_EQ(f.junctions.size(), f.route.size() + 1);
      for (std::size_t i = 0; i < f.route.size(); ++i) {
        EXPECT_TRUE(net.is_endpoint(f.route[i], f.junctions[i]));
        EXPECT_TRUE(net.is_endpoint(f.route[i], f.junctions[i + 1]));
      }
      // Participants = union of member base-cluster participants.
      std::vector<TrajectoryId> expected;
      for (const std::size_t m : f.members) {
        expected = merge_participants(expected, res.base_clusters[m].participants());
      }
      EXPECT_EQ(f.participants, expected);
      // Chained members have positive netflow (Definition 8).
      for (std::size_t i = 1; i < f.members.size(); ++i) {
        EXPECT_GT(netflow(res.base_clusters[f.members[i - 1]],
                          res.base_clusters[f.members[i]]),
                  0);
      }
    }
  }

  // --- Phase 3 invariants.
  std::vector<std::size_t> assigned;
  for (const FinalCluster& fc : res.final_clusters) {
    EXPECT_FALSE(fc.flows.empty());
    EXPECT_TRUE(std::is_sorted(fc.flows.begin(), fc.flows.end()));
    assigned.insert(assigned.end(), fc.flows.begin(), fc.flows.end());
    double total = 0.0;
    for (const std::size_t fi : fc.flows) total += res.flow_clusters[fi].route_length;
    EXPECT_NEAR(total, fc.total_route_length, 1e-6);
  }
  std::sort(assigned.begin(), assigned.end());
  std::vector<std::size_t> all(res.flow_clusters.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  EXPECT_EQ(assigned, all);

  // --- Work accounting.
  EXPECT_GE(res.sp_computations, res.pairs_evaluated)
      << "every evaluated pair issues at least one search";
  EXPECT_LE(res.sp_computations, 2u * res.pairs_evaluated)
      << "batched endpoint mode runs at most two searches per evaluated pair";
}

TEST_P(PipelineSweep, ModesAgreeOnSharedPhases) {
  const SweepCase c = GetParam();
  const roadnet::RoadNetwork net = make_topology(c);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(net, scfg).generate(40, static_cast<std::uint64_t>(c.seed) + 99);

  Config base;
  base.mode = Mode::kBase;
  Config flow;
  flow.mode = Mode::kFlow;
  const Result rb = NeatClusterer(net, base).run(data);
  const Result rf = NeatClusterer(net, flow).run(data);
  ASSERT_EQ(rb.base_clusters.size(), rf.base_clusters.size());
  for (std::size_t i = 0; i < rb.base_clusters.size(); ++i) {
    EXPECT_EQ(rb.base_clusters[i].sid(), rf.base_clusters[i].sid());
    EXPECT_EQ(rb.base_clusters[i].density(), rf.base_clusters[i].density());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PipelineSweep,
    ::testing::Values(SweepCase{"lattice", 1}, SweepCase{"lattice", 2},
                      SweepCase{"lattice", 3}, SweepCase{"radial", 1},
                      SweepCase{"radial", 2}, SweepCase{"radial", 3}),
    [](const auto& param_info) {
      return std::string(param_info.param.topology) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace neat
