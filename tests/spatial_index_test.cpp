// Tests for the segment grid index, including a brute-force equivalence
// property sweep on random networks.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "roadnet/spatial_index.h"
#include "test_util.h"

namespace neat::roadnet {
namespace {

SegmentId brute_nearest(const RoadNetwork& net, Point p, double max_radius,
                        double* out_dist = nullptr) {
  SegmentId best = SegmentId::invalid();
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < net.segment_count(); ++i) {
    const auto sid = SegmentId(static_cast<std::int32_t>(i));
    const Segment& s = net.segment(sid);
    const double d = point_segment_distance(p, net.node(s.a).pos, net.node(s.b).pos);
    if (d < best_d) {
      best_d = d;
      best = sid;
    }
  }
  if (best_d > max_radius) return SegmentId::invalid();
  if (out_dist != nullptr) *out_dist = best_d;
  return best;
}

TEST(SpatialIndex, NearestOnLine) {
  const RoadNetwork net = testutil::line_network(5);
  const SegmentGridIndex index(net);
  double d = -1.0;
  EXPECT_EQ(index.nearest_segment({250, 10}, 100.0, &d), SegmentId(2));
  EXPECT_DOUBLE_EQ(d, 10.0);
  EXPECT_EQ(index.nearest_segment({10, 5}, 100.0), SegmentId(0));
}

TEST(SpatialIndex, RespectsMaxRadius) {
  const RoadNetwork net = testutil::line_network(5);
  const SegmentGridIndex index(net);
  EXPECT_FALSE(index.nearest_segment({250, 500}, 100.0).valid());
  EXPECT_TRUE(index.nearest_segment({250, 500}, 1000.0).valid());
}

TEST(SpatialIndex, SegmentsWithinRadius) {
  const RoadNetwork net = testutil::line_network(5);
  const SegmentGridIndex index(net);
  // Point above the junction between segments 1 and 2.
  const auto hits = index.segments_within({200, 20}, 25.0);
  EXPECT_EQ(hits, (std::vector<SegmentId>{SegmentId(1), SegmentId(2)}));
  EXPECT_TRUE(index.segments_within({200, 2000}, 25.0).empty());
}

TEST(SpatialIndex, KNearestOrdering) {
  const RoadNetwork net = testutil::fig1_network();
  const SegmentGridIndex index(net);
  // Near n2 but biased toward S2 (n2 -> n3).
  const auto knn = index.k_nearest_segments({120, 5}, 2, 500.0);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0], SegmentId(1));  // S2: distance 5
  EXPECT_EQ(knn[1], SegmentId(2));  // S3: perpendicular distance 20
}

TEST(SpatialIndex, KNearestLimitsCount) {
  const RoadNetwork net = testutil::fig1_network();
  const SegmentGridIndex index(net);
  EXPECT_EQ(index.k_nearest_segments({100, 0}, 10, 1000.0).size(), 4u);
  EXPECT_EQ(index.k_nearest_segments({100, 0}, 2, 1000.0).size(), 2u);
}

class IndexVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(IndexVsBruteForce, NearestMatches) {
  CityParams params;
  params.rows = 12;
  params.cols = 12;
  params.spacing_m = 100.0;
  params.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  const RoadNetwork net = make_city(params);
  const SegmentGridIndex index(net);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Bounds bb = net.bounding_box();
  for (int k = 0; k < 60; ++k) {
    const Point p{rng.uniform(bb.min.x - 100, bb.max.x + 100),
                  rng.uniform(bb.min.y - 100, bb.max.y + 100)};
    double d_index = -1.0;
    double d_brute = -1.0;
    const SegmentId by_index = index.nearest_segment(p, 400.0, &d_index);
    const SegmentId by_brute = brute_nearest(net, p, 400.0, &d_brute);
    EXPECT_EQ(by_index.valid(), by_brute.valid());
    if (by_index.valid() && by_brute.valid()) {
      // Distances must agree; the segment may differ only on exact ties.
      EXPECT_NEAR(d_index, d_brute, 1e-9);
    }
  }
}

TEST_P(IndexVsBruteForce, RangeQueryMatches) {
  CityParams params;
  params.rows = 10;
  params.cols = 10;
  params.spacing_m = 80.0;
  params.seed = static_cast<std::uint64_t>(GetParam()) + 77;
  const RoadNetwork net = make_city(params);
  const SegmentGridIndex index(net);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1234);
  const Bounds bb = net.bounding_box();
  for (int k = 0; k < 25; ++k) {
    const Point p{rng.uniform(bb.min.x, bb.max.x), rng.uniform(bb.min.y, bb.max.y)};
    const double radius = rng.uniform(20.0, 250.0);
    const std::vector<SegmentId> got = index.segments_within(p, radius);
    std::vector<SegmentId> want;
    for (std::size_t i = 0; i < net.segment_count(); ++i) {
      const auto sid = SegmentId(static_cast<std::int32_t>(i));
      const Segment& s = net.segment(sid);
      if (point_segment_distance(p, net.node(s.a).pos, net.node(s.b).pos) <= radius) {
        want.push_back(sid);
      }
    }
    EXPECT_EQ(got, want) << "at (" << p.x << ", " << p.y << ") r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexVsBruteForce, ::testing::Range(0, 5));

}  // namespace
}  // namespace neat::roadnet
