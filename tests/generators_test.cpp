// Tests for the synthetic network generators: determinism, connectivity,
// speed hierarchy, and Table I statistic matching for the presets.
#include <gtest/gtest.h>

#include <queue>

#include "common/error.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"

namespace neat::roadnet {
namespace {

std::size_t connected_component_size(const RoadNetwork& net, NodeId start) {
  std::vector<bool> seen(net.node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[static_cast<std::size_t>(start.value())] = true;
  std::size_t count = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    ++count;
    for (const SegmentId sid : net.segments_at(u)) {
      const NodeId v = net.other_endpoint(sid, u);
      if (!seen[static_cast<std::size_t>(v.value())]) {
        seen[static_cast<std::size_t>(v.value())] = true;
        frontier.push(v);
      }
    }
  }
  return count;
}

TEST(MakeGrid, ExactCounts) {
  const RoadNetwork net = make_grid(4, 5, 100.0);
  EXPECT_EQ(net.node_count(), 20u);
  // Horizontal: 4 rows x 4, vertical: 3 x 5.
  EXPECT_EQ(net.segment_count(), 31u);
  EXPECT_EQ(net.stats().max_junction_degree, 4);
}

TEST(MakeGrid, ValidatesArgs) {
  EXPECT_THROW(make_grid(0, 5, 100.0), PreconditionError);
  EXPECT_THROW(make_grid(5, 5, -1.0), PreconditionError);
}

TEST(MakeCity, DeterministicForSeed) {
  CityParams p;
  p.rows = 15;
  p.cols = 15;
  p.seed = 7;
  const RoadNetwork a = make_city(p);
  const RoadNetwork b = make_city(p);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.segment_count(), b.segment_count());
  for (std::size_t i = 0; i < a.segment_count(); ++i) {
    const auto sid = SegmentId(static_cast<std::int32_t>(i));
    EXPECT_EQ(a.segment(sid).a, b.segment(sid).a);
    EXPECT_EQ(a.segment(sid).b, b.segment(sid).b);
    EXPECT_DOUBLE_EQ(a.segment(sid).length, b.segment(sid).length);
  }
}

TEST(MakeCity, DifferentSeedsDiffer) {
  CityParams p;
  p.rows = 15;
  p.cols = 15;
  p.seed = 7;
  const RoadNetwork a = make_city(p);
  p.seed = 8;
  const RoadNetwork b = make_city(p);
  EXPECT_NE(a.segment_count(), b.segment_count());
}

TEST(MakeCity, UndirectedConnected) {
  CityParams p;
  p.rows = 20;
  p.cols = 20;
  p.seed = 3;
  const RoadNetwork net = make_city(p);
  ASSERT_GT(net.node_count(), 0u);
  EXPECT_EQ(connected_component_size(net, NodeId(0)), net.node_count());
}

TEST(MakeCity, SpeedHierarchyPresent) {
  CityParams p;
  p.rows = 25;
  p.cols = 25;
  p.seed = 5;
  const RoadNetwork net = make_city(p);
  bool has_arterial = false;
  bool has_local = false;
  for (const Segment& s : net.segments()) {
    if (s.speed_limit == p.arterial_speed_mps) has_arterial = true;
    if (s.speed_limit == p.local_speed_mps) has_local = true;
  }
  EXPECT_TRUE(has_arterial);
  EXPECT_TRUE(has_local);
}

TEST(MakeCity, OneWaySegmentsAppear) {
  CityParams p;
  p.rows = 25;
  p.cols = 25;
  p.oneway_probability = 0.2;
  p.seed = 5;
  const RoadNetwork net = make_city(p);
  std::size_t oneway = 0;
  for (const Segment& s : net.segments()) {
    if (!s.bidirectional) ++oneway;
  }
  EXPECT_GT(oneway, 0u);
  EXPECT_LT(oneway, net.segment_count() / 2);
}

TEST(MakeCity, ValidatesParams) {
  CityParams p;
  p.rows = 1;
  EXPECT_THROW(make_city(p), PreconditionError);
  p = CityParams{};
  p.spacing_m = 0.0;
  EXPECT_THROW(make_city(p), PreconditionError);
}

TEST(NamedCity, UnknownNameThrows) {
  EXPECT_THROW(make_named_city("BOS"), PreconditionError);
  EXPECT_THROW(make_named_city("ATL", 0.0), PreconditionError);
  EXPECT_THROW(make_named_city("ATL", 1.5), PreconditionError);
}

// Preset statistics vs the paper's Table I, at a reduced scale (the full MIA
// build is exercised by the bench, not the unit suite). At scale the ratio
// statistics (avg degree, avg segment length) must match; absolute counts
// scale with the linear dimensions.
struct PresetCase {
  const char* name;
  double paper_avg_degree;
  double paper_avg_segment_m;
  int paper_max_degree;
};

class PresetStats : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetStats, RatiosMatchTableOne) {
  const PresetCase c = GetParam();
  const RoadNetwork net = make_named_city(c.name, 0.25);
  const NetworkStats st = net.stats();
  EXPECT_NEAR(st.avg_junction_degree, c.paper_avg_degree, 0.2) << c.name;
  EXPECT_NEAR(st.avg_segment_length_m, c.paper_avg_segment_m, 12.0) << c.name;
  EXPECT_LE(st.max_junction_degree, c.paper_max_degree + 1) << c.name;
  EXPECT_GE(st.max_junction_degree, 5) << c.name;
}

INSTANTIATE_TEST_SUITE_P(TableOne, PresetStats,
                         ::testing::Values(PresetCase{"ATL", 2.6, 150.7, 6},
                                           PresetCase{"SJ", 2.7, 124.7, 6},
                                           PresetCase{"MIA", 3.0, 169.0, 9}),
                         [](const auto& param_info) { return param_info.param.name; });

TEST(PresetStats, FullScaleAtlCountsNearTableOne) {
  const RoadNetwork net = make_named_city("ATL", 1.0);
  const NetworkStats st = net.stats();
  // Paper: 9187 segments, 6979 junctions, 1384.4 km.
  EXPECT_NEAR(static_cast<double>(st.num_segments), 9187.0, 9187.0 * 0.12);
  EXPECT_NEAR(static_cast<double>(st.num_junctions), 6979.0, 6979.0 * 0.12);
  EXPECT_NEAR(st.total_length_km, 1384.4, 1384.4 * 0.15);
}

}  // namespace
}  // namespace neat::roadnet
