// Tests for the out-of-core columnar trajectory plane: writer/store
// round-trips, file validation (magic, truncation, checksum), the
// streaming Phase 1 path's bit-identity to the in-memory one, and the
// mapped-bytes accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/clusterer.h"
#include "core/fragmenter.h"
#include "obs/registry.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "sim/synthetic_stream.h"
#include "store/columnar_store.h"
#include "traj/columnar.h"
#include "traj/io.h"

namespace neat {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "neat_columnar_" + name;
}

traj::TrajectoryDataset sim_dataset(std::size_t n = 40, std::uint64_t seed = 15) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  return sim::MobilitySimulator(net, scfg).generate(n, seed);
}

void expect_identical(const Phase1Output& a, const Phase1Output& b) {
  EXPECT_EQ(a.num_fragments, b.num_fragments);
  EXPECT_EQ(a.num_gap_repairs, b.num_gap_repairs);
  ASSERT_EQ(a.base_clusters.size(), b.base_clusters.size());
  for (std::size_t i = 0; i < a.base_clusters.size(); ++i) {
    const BaseCluster& ca = a.base_clusters[i];
    const BaseCluster& cb = b.base_clusters[i];
    EXPECT_EQ(ca.sid(), cb.sid());
    EXPECT_EQ(ca.density(), cb.density());
    EXPECT_EQ(ca.participants(), cb.participants());
    ASSERT_EQ(ca.fragments().size(), cb.fragments().size());
    for (std::size_t f = 0; f < ca.fragments().size(); ++f) {
      EXPECT_EQ(ca.fragments()[f].trid, cb.fragments()[f].trid);
      EXPECT_EQ(ca.fragments()[f].entry.pos, cb.fragments()[f].entry.pos);
      EXPECT_EQ(ca.fragments()[f].exit.pos, cb.fragments()[f].exit.pos);
      EXPECT_EQ(ca.fragments()[f].num_samples, cb.fragments()[f].num_samples);
    }
  }
}

TEST(Columnar, RoundTripIsBitExact) {
  const traj::TrajectoryDataset data = sim_dataset();
  const std::string path = tmp_path("roundtrip.neatcol");
  traj::save_columnar(data, path);

  const store::ColumnarTrajectoryStore cstore(path);
  ASSERT_EQ(cstore.size(), data.size());
  std::size_t points = 0;
  for (const traj::Trajectory& tr : data) points += tr.size();
  EXPECT_EQ(cstore.num_points(), points);

  for (std::size_t i = 0; i < data.size(); ++i) {
    const traj::Trajectory& orig = data[i];
    const store::TrajectoryView v = cstore.view(i);
    ASSERT_EQ(v.id, orig.id());
    ASSERT_EQ(v.size(), orig.size());
    const traj::Trajectory back = cstore.materialize(i);
    ASSERT_EQ(back.size(), orig.size());
    for (std::size_t p = 0; p < orig.size(); ++p) {
      const traj::Location& loc = orig.point(p);
      // Doubles are stored verbatim: compare exactly, not via EXPECT_NEAR.
      EXPECT_EQ(v.t[p], loc.t);
      EXPECT_EQ(v.seg[p], loc.sid.value());
      EXPECT_EQ(v.x[p], loc.pos.x);
      EXPECT_EQ(v.y[p], loc.pos.y);
      EXPECT_EQ((v.flags[p] & 1) != 0, loc.junction_point);
      EXPECT_EQ(back.point(p).t, loc.t);
      EXPECT_EQ(back.point(p).pos.x, loc.pos.x);
      EXPECT_EQ(back.point(p).sid, loc.sid);
      EXPECT_EQ(back.point(p).junction_point, loc.junction_point);
    }
  }
  std::remove(path.c_str());
}

TEST(Columnar, ConvertedCsvMatchesLoadDataset) {
  // CSV -> columnar and CSV -> load_dataset parse the same text, so the
  // materialized trajectories must agree exactly.
  const traj::TrajectoryDataset data = sim_dataset(25, 7);
  std::stringstream csv;
  traj::save_dataset(data, csv);
  const std::string csv_text = csv.str();

  const std::string path = tmp_path("converted.neatcol");
  std::istringstream conv_in(csv_text);
  const traj::ColumnarConvertStats stats = traj::convert_csv_to_columnar(conv_in, path);
  std::istringstream load_in(csv_text);
  const traj::TrajectoryDataset loaded = traj::load_dataset(load_in);

  EXPECT_EQ(stats.trajectories, loaded.size());
  const store::ColumnarTrajectoryStore cstore(path);
  ASSERT_EQ(cstore.size(), loaded.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const traj::Trajectory back = cstore.materialize(i);
    ASSERT_EQ(back.id(), loaded[i].id());
    ASSERT_EQ(back.size(), loaded[i].size());
    for (std::size_t p = 0; p < back.size(); ++p) {
      EXPECT_EQ(back.point(p).sid, loaded[i].point(p).sid);
      EXPECT_EQ(back.point(p).pos.x, loaded[i].point(p).pos.x);
      EXPECT_EQ(back.point(p).pos.y, loaded[i].point(p).pos.y);
      EXPECT_EQ(back.point(p).t, loaded[i].point(p).t);
    }
  }
  std::remove(path.c_str());
}

TEST(Columnar, WriterRejectsEmptyAndDuplicate) {
  const std::string path = tmp_path("reject.neatcol");
  traj::ColumnarWriter writer(path);
  EXPECT_THROW(writer.append(traj::Trajectory(TrajectoryId(1))), PreconditionError);
  traj::Trajectory tr(TrajectoryId(2));
  tr.append(traj::Location{SegmentId(0), {1.0, 2.0}, 0.0, false});
  writer.append(tr);
  EXPECT_THROW(writer.append(tr), PreconditionError);  // duplicate id
  // Destructor without finish() must clean up its spill files.
}

TEST(Columnar, OpenRejectsCorruptFiles) {
  const traj::TrajectoryDataset data = sim_dataset(10, 3);
  const std::string good = tmp_path("good.neatcol");
  traj::save_columnar(data, good);
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 200u);

  const std::string bad = tmp_path("bad.neatcol");
  const auto write_bytes = [&bad](const std::string& b) {
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  };

  {  // Flipped payload byte: caught by the footer checksum.
    std::string b = bytes;
    b[b.size() / 2] ^= 0x40;
    write_bytes(b);
    EXPECT_THROW(store::ColumnarTrajectoryStore{bad}, ParseError);
  }
  {  // Truncation: caught by the layout/size check even without checksum.
    std::string b = bytes.substr(0, bytes.size() - 24);
    write_bytes(b);
    store::ColumnarStoreOptions no_verify;
    no_verify.verify_checksum = false;
    EXPECT_THROW(store::ColumnarTrajectoryStore(bad, no_verify), ParseError);
  }
  {  // Wrong magic.
    std::string b = bytes;
    b[0] = 'X';
    write_bytes(b);
    EXPECT_THROW(store::ColumnarTrajectoryStore{bad}, ParseError);
  }
  {  // Too small to hold a header at all.
    write_bytes("tiny");
    EXPECT_THROW(store::ColumnarTrajectoryStore{bad}, ParseError);
  }
  EXPECT_THROW(store::ColumnarTrajectoryStore{"/nonexistent/file.neatcol"}, Error);

  // The pristine file still opens with full verification.
  const store::ColumnarTrajectoryStore cstore(good);
  EXPECT_EQ(cstore.size(), data.size());
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(Columnar, StreamingPhase1BitIdenticalToInMemory) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(60, 15);
  const std::string path = tmp_path("phase1.neatcol");
  traj::save_columnar(data, path);
  const store::ColumnarTrajectoryStore cstore(path);

  const Fragmenter fragmenter(net);
  const Phase1Output reference = fragmenter.build_base_clusters(data);
  // Tiny batches + varying thread counts: worst case for merge ordering.
  StreamingPhase1Options tiny;
  tiny.batch_size = 3;
  for (const unsigned threads : {1u, 4u}) {
    store::ColumnarTrajectorySource source(cstore);
    expect_identical(reference, fragmenter.build_base_clusters(source, threads, tiny));
    store::ColumnarTrajectorySource big_batches(cstore);
    expect_identical(reference, fragmenter.build_base_clusters(big_batches, threads));
  }
  std::remove(path.c_str());
}

TEST(Columnar, FullPipelineViaSourceMatchesInMemory) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(50, 19);
  const std::string path = tmp_path("pipeline.neatcol");
  traj::save_columnar(data, path);
  const store::ColumnarTrajectoryStore cstore(path);

  Config cfg;
  cfg.refine.epsilon = 500.0;
  cfg.phase1_threads = 4;
  const NeatClusterer clusterer(net, cfg);
  const Result direct = clusterer.run(data);
  store::ColumnarTrajectorySource source(cstore);
  const Result streamed = clusterer.run(source);

  ASSERT_EQ(direct.flow_clusters.size(), streamed.flow_clusters.size());
  for (std::size_t i = 0; i < direct.flow_clusters.size(); ++i) {
    EXPECT_EQ(direct.flow_clusters[i].route, streamed.flow_clusters[i].route);
    EXPECT_EQ(direct.flow_clusters[i].participants, streamed.flow_clusters[i].participants);
  }
  ASSERT_EQ(direct.final_clusters.size(), streamed.final_clusters.size());
  for (std::size_t i = 0; i < direct.final_clusters.size(); ++i) {
    EXPECT_EQ(direct.final_clusters[i].flows, streamed.final_clusters[i].flows);
  }
  std::remove(path.c_str());
}

TEST(Columnar, ReleaseKeepsDataReadable) {
  const traj::TrajectoryDataset data = sim_dataset(30, 21);
  const std::string path = tmp_path("release.neatcol");
  traj::save_columnar(data, path);
  const store::ColumnarTrajectoryStore cstore(path);
  const traj::Trajectory before = cstore.materialize(0);
  cstore.release(0, cstore.size());  // drop everything; pages fault back in
  const traj::Trajectory after = cstore.materialize(0);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t p = 0; p < before.size(); ++p) {
    EXPECT_EQ(before.point(p).t, after.point(p).t);
    EXPECT_EQ(before.point(p).pos.x, after.point(p).pos.x);
  }
  cstore.release(0, 0);  // empty range is a no-op
  std::remove(path.c_str());
}

TEST(Columnar, MappedBytesAccounting) {
  const traj::TrajectoryDataset data = sim_dataset(10, 9);
  const std::string path = tmp_path("mapped.neatcol");
  traj::save_columnar(data, path);
  const std::uint64_t base = store::ColumnarTrajectoryStore::total_bytes_mapped();
  {
    const store::ColumnarTrajectoryStore cstore(path);
    EXPECT_GT(cstore.bytes_mapped(), 0u);
    EXPECT_GT(cstore.point_bytes(), 0u);
    EXPECT_LT(cstore.point_bytes(), cstore.bytes_mapped());
    EXPECT_EQ(store::ColumnarTrajectoryStore::total_bytes_mapped(),
              base + cstore.bytes_mapped());
    EXPECT_EQ(obs::Registry::global().gauge("neat_store_bytes_mapped").value(),
              static_cast<double>(base + cstore.bytes_mapped()));
  }
  EXPECT_EQ(store::ColumnarTrajectoryStore::total_bytes_mapped(), base);
  EXPECT_EQ(obs::Registry::global().gauge("neat_store_bytes_mapped").value(),
            static_cast<double>(base));
  std::remove(path.c_str());
}

TEST(Columnar, SyntheticStreamGeneratesValidFile) {
  const roadnet::RoadNetwork net = roadnet::make_grid(6, 6, 110.0);
  const std::string path = tmp_path("synthetic.neatcol");
  sim::SyntheticStreamOptions opt;
  opt.trajectories = 50;
  opt.segments_per_trajectory = 4;
  opt.samples_per_segment = 5;
  const sim::SyntheticStreamStats stats = sim::generate_columnar_stream(net, path, opt);
  EXPECT_EQ(stats.trajectories, 50u);
  EXPECT_EQ(stats.points, 50u * 4u * 5u);

  const store::ColumnarTrajectoryStore cstore(path);  // checksum verified
  ASSERT_EQ(cstore.size(), 50u);
  EXPECT_EQ(cstore.num_points(), stats.points);
  // The generated samples must be valid trajectories over this network:
  // non-decreasing time, in-range segment ids.
  for (std::size_t i = 0; i < cstore.size(); ++i) {
    const store::TrajectoryView v = cstore.view(i);
    for (std::size_t p = 0; p < v.size(); ++p) {
      ASSERT_GE(v.seg[p], 0);
      ASSERT_LT(static_cast<std::size_t>(v.seg[p]), net.segment_count());
      if (p > 0) {
        ASSERT_GE(v.t[p], v.t[p - 1]);
      }
    }
  }
  // And Phase 1 must run over them out of the box.
  const Fragmenter fragmenter(net);
  store::ColumnarTrajectorySource source(cstore);
  const Phase1Output out = fragmenter.build_base_clusters(source, 2);
  EXPECT_GT(out.base_clusters.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neat
