// Tests for shortest-path machinery: correctness against Floyd–Warshall on
// random graphs (property sweep), route reconstruction, bounds, SSSP trees.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"

namespace neat::roadnet {
namespace {

TEST(NodeDistance, LineNetwork) {
  const RoadNetwork net = testutil::line_network(4);  // 4 segments of 100 m
  EXPECT_DOUBLE_EQ(node_distance(net, NodeId(0), NodeId(4)), 400.0);
  EXPECT_DOUBLE_EQ(node_distance(net, NodeId(2), NodeId(2)), 0.0);
  EXPECT_DOUBLE_EQ(node_distance(net, NodeId(4), NodeId(0)), 400.0);  // symmetric
}

TEST(NodeDistance, BoundCutsSearch) {
  const RoadNetwork net = testutil::line_network(10);
  EXPECT_DOUBLE_EQ(node_distance(net, NodeId(0), NodeId(10), 1000.0), 1000.0);
  EXPECT_EQ(node_distance(net, NodeId(0), NodeId(10), 999.0), kInfDistance);
}

TEST(NodeDistance, DisconnectedIsInfinite) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  const NodeId d = b.add_node({500, 0});
  const NodeId e = b.add_node({600, 0});
  b.add_segment(a, c, 10.0);
  b.add_segment(d, e, 10.0);
  const RoadNetwork net = b.build();
  EXPECT_EQ(node_distance(net, a, d), kInfDistance);
}

TEST(NodeDistance, IgnoresOneWayRestrictions) {
  // The Phase 3 metric treats the graph as undirected (paper §III-C.3).
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  b.add_segment(a, c, 10.0, /*bidirectional=*/false);
  const RoadNetwork net = b.build();
  EXPECT_DOUBLE_EQ(node_distance(net, c, a), 100.0);
}

TEST(NodeDistanceOracle, ReusableAndCounts) {
  const RoadNetwork net = testutil::line_network(5);
  NodeDistanceOracle oracle(net);
  EXPECT_DOUBLE_EQ(oracle.distance(NodeId(0), NodeId(5)), 500.0);
  EXPECT_DOUBLE_EQ(oracle.distance(NodeId(5), NodeId(1)), 400.0);
  EXPECT_DOUBLE_EQ(oracle.distance(NodeId(2), NodeId(2)), 0.0);
  EXPECT_EQ(oracle.computations(), 3u);
  oracle.reset_counters();
  EXPECT_EQ(oracle.computations(), 0u);
}

TEST(NodeDistanceOracle, EmptyTargetSetIsInfiniteAndFree) {
  const RoadNetwork net = testutil::line_network(5);
  NodeDistanceOracle oracle(net);
  EXPECT_TRUE(std::isinf(oracle.distance_to_any(NodeId(0), {})));
  EXPECT_EQ(oracle.computations(), 0u) << "no Dijkstra run for an empty target set";
  EXPECT_EQ(oracle.settled_nodes(), 0u);
  std::span<double> empty_out;
  oracle.distances(NodeId(0), {}, empty_out);
  EXPECT_EQ(oracle.computations(), 0u);
}

TEST(NodeDistanceOracle, BatchedDistancesFillAllTargets) {
  const RoadNetwork net = testutil::line_network(5);
  NodeDistanceOracle oracle(net);
  const std::vector<NodeId> targets{NodeId(1), NodeId(4), NodeId(0)};
  std::vector<double> out(targets.size());
  oracle.distances(NodeId(0), targets, out);
  EXPECT_EQ(oracle.computations(), 1u) << "the whole batch is one search";
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_DOUBLE_EQ(out[1], 400.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  // Bounded batch: unreachable-within-bound targets report +inf, close ones
  // stay exact.
  oracle.distances(NodeId(0), targets, out, 150.0);
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_TRUE(std::isinf(out[1]));
  EXPECT_DOUBLE_EQ(out[2], 0.0);
}

// Property: oracle distances match Floyd–Warshall on random connected
// networks, across several seeds.
class DijkstraVsFloydWarshall : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraVsFloydWarshall, AllPairsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  RoadNetworkBuilder b;
  const int n = 14;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(b.add_node({rng.uniform(0, 1000), rng.uniform(0, 1000)}));
  }
  // Random spanning chain + extra chords keeps it connected.
  for (int i = 1; i < n; ++i) b.add_segment(nodes[i - 1], nodes[i], 10.0);
  for (int k = 0; k < n; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (i != j) {
      // Parallel edges and chords are all fine.
      const double straight = distance(b.node_pos(nodes[i]), b.node_pos(nodes[j]));
      if (straight > 0.0) b.add_segment(nodes[i], nodes[j], 10.0, true, straight * 1.25);
    }
  }
  const RoadNetwork net = b.build();

  // Floyd–Warshall reference over the undirected segment weights.
  const double inf = kInfDistance;
  std::vector<std::vector<double>> d(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n), inf));
  for (int i = 0; i < n; ++i) d[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0.0;
  for (const Segment& s : net.segments()) {
    const auto i = static_cast<std::size_t>(s.a.value());
    const auto j = static_cast<std::size_t>(s.b.value());
    d[i][j] = std::min(d[i][j], s.length);
    d[j][i] = std::min(d[j][i], s.length);
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const auto [ki, ii, ji] = std::tuple{static_cast<std::size_t>(k),
                                             static_cast<std::size_t>(i),
                                             static_cast<std::size_t>(j)};
        d[ii][ji] = std::min(d[ii][ji], d[ii][ki] + d[ki][ji]);
      }
    }
  }

  NodeDistanceOracle oracle(net);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(oracle.distance(NodeId(i), NodeId(j)),
                  d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1e-6)
          << "pair (" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsFloydWarshall, ::testing::Range(0, 8));

TEST(ShortestNodePath, ReconstructsPath) {
  const RoadNetwork net = testutil::line_network(4);
  const auto path = shortest_node_path(net, NodeId(0), NodeId(3));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2), NodeId(3)}));
  const auto self = shortest_node_path(net, NodeId(2), NodeId(2));
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(*self, std::vector<NodeId>{NodeId(2)});
}

TEST(ShortestRoute, RespectsOneWay) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  const NodeId d = b.add_node({100, 100});
  b.add_segment(a, c, 10.0, /*bidirectional=*/false);
  b.add_segment(c, d, 10.0);
  b.add_segment(d, a, 10.0);
  const RoadNetwork net = b.build();
  // a -> c is direct.
  const auto fwd = shortest_route(net, a, c, Metric::kDistance);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->edges.size(), 1u);
  EXPECT_DOUBLE_EQ(fwd->length, 100.0);
  // c -> a must detour via d (one-way against us).
  const auto bwd = shortest_route(net, c, a, Metric::kDistance);
  ASSERT_TRUE(bwd.has_value());
  EXPECT_EQ(bwd->edges.size(), 2u);
  EXPECT_NEAR(bwd->length, 100.0 + distance({100, 100}, {0, 0}), 1e-9);
}

TEST(ShortestRoute, TravelTimeMetricPrefersFastRoad) {
  // Two routes a -> c: direct slow 100 m at 5 m/s (20 s) or detour 140 m at
  // 20 m/s (7 s). Distance metric picks the direct, time metric the detour.
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  const NodeId mid = b.add_node({50, 50});
  b.add_segment(a, c, 5.0);
  b.add_segment(a, mid, 20.0);
  b.add_segment(mid, c, 20.0);
  const RoadNetwork net = b.build();

  const auto by_dist = shortest_route(net, a, c, Metric::kDistance);
  ASSERT_TRUE(by_dist.has_value());
  EXPECT_EQ(by_dist->edges.size(), 1u);

  const auto by_time = shortest_route(net, a, c, Metric::kTravelTime);
  ASSERT_TRUE(by_time.has_value());
  EXPECT_EQ(by_time->edges.size(), 2u);
  EXPECT_NEAR(by_time->travel_time, 2.0 * distance({0, 0}, {50, 50}) / 20.0, 1e-9);
}

TEST(ShortestRoute, MaxCostBound) {
  const RoadNetwork net = testutil::line_network(10);
  EXPECT_TRUE(shortest_route(net, NodeId(0), NodeId(9), Metric::kDistance, 900.0).has_value());
  EXPECT_FALSE(shortest_route(net, NodeId(0), NodeId(9), Metric::kDistance, 800.0).has_value());
}

TEST(ShortestRoute, NodePathMatchesEdges) {
  const RoadNetwork net = testutil::line_network(3);
  const auto route = shortest_route(net, NodeId(0), NodeId(3), Metric::kDistance);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->node_path(net),
            (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2), NodeId(3)}));
}

TEST(SsspTree, MatchesPointQueries) {
  const RoadNetwork net = make_grid(6, 6, 100.0);
  const SsspTree tree(net, NodeId(0), Metric::kDistance);
  for (int t = 0; t < 36; t += 5) {
    const auto route = shortest_route(net, NodeId(0), NodeId(t), Metric::kDistance);
    ASSERT_TRUE(route.has_value());
    EXPECT_NEAR(tree.cost(NodeId(t)), route->length, 1e-9);
    const auto tree_route = tree.route_to(NodeId(t));
    ASSERT_TRUE(tree_route.has_value());
    EXPECT_NEAR(tree_route->length, route->length, 1e-9);
  }
}

TEST(SsspTree, UnreachableReported) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  const NodeId d = b.add_node({500, 0});
  const NodeId e = b.add_node({600, 0});
  b.add_segment(a, c, 10.0);
  b.add_segment(d, e, 10.0);
  const RoadNetwork net = b.build();
  const SsspTree tree(net, a, Metric::kDistance);
  EXPECT_TRUE(tree.reachable(c));
  EXPECT_FALSE(tree.reachable(d));
  EXPECT_FALSE(tree.route_to(d).has_value());
}

// Property: on grids, network distance equals Manhattan distance (times
// spacing), and the Euclidean lower bound holds for every sampled pair.
class GridDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(GridDistanceProperty, ManhattanAndElb) {
  const int cols = 7;
  const RoadNetwork net = make_grid(6, cols, 50.0);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  NodeDistanceOracle oracle(net);
  for (int k = 0; k < 40; ++k) {
    const auto i = static_cast<std::int32_t>(rng.uniform_int(0, 41));
    const auto j = static_cast<std::int32_t>(rng.uniform_int(0, 41));
    const int ri = i / cols;
    const int ci = i % cols;
    const int rj = j / cols;
    const int cj = j % cols;
    const double expected = 50.0 * (std::abs(ri - rj) + std::abs(ci - cj));
    const double dn = oracle.distance(NodeId(i), NodeId(j));
    EXPECT_NEAR(dn, expected, 1e-9);
    const double de = distance(net.node(NodeId(i)).pos, net.node(NodeId(j)).pos);
    EXPECT_LE(de, dn + 1e-9) << "ELB must hold";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridDistanceProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace neat::roadnet
