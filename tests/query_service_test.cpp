// Tests for the public /v1/* query plane (src/net/query_service.*).
//
// The response bodies of all five endpoints are pinned by golden JSON files
// under tests/data/: the wire format is a public contract, so any field
// rename, reordering or numeric-formatting drift must show up as a diff. To
// regenerate after an *intentional* schema change:
//   NEAT_REGEN_GOLDEN=1 ./query_service_test
// then review and commit the updated tests/data/query_*.golden.json.
//
// The snapshot contents are hand-built (not produced by the clusterer), so
// these goldens pin only the HTTP layer and stay untouched by pipeline
// changes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "net/http_client.h"
#include "net/http_server.h"
#include "net/query_service.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "roadnet/builder.h"
#include "roadnet/ch_engine.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "sim/trip_planner.h"
#include "test_util.h"

namespace neat::net {
namespace {

std::string data_path(const std::string& name) {
  return std::string(NEAT_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compares `body` against the committed golden file (or rewrites it under
/// NEAT_REGEN_GOLDEN=1). Golden bodies use a fixed trace_id so they are
/// byte-deterministic.
void expect_matches_golden(const std::string& body, const std::string& name) {
  const std::string path = data_path(name);
  if (std::getenv("NEAT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << body;
    return;
  }
  EXPECT_EQ(body, read_file(path))
      << "response schema drifted from " << name
      << "; if intentional, regenerate with NEAT_REGEN_GOLDEN=1";
}

HttpRequest request(std::vector<std::pair<std::string, std::string>> params) {
  HttpRequest req;
  req.method = "GET";
  req.params = std::move(params);
  return req;
}

/// The paper's fig1 star network with three hand-built flows:
///   flow 0: S0,S1 (n0->n1->n2), 3 trajectories, final cluster 0
///   flow 1: S0,S3 (n0->n1->n4), 2 trajectories, final cluster 0
///   flow 2: S2    (n1->n3),     1 trajectory,   final cluster 1
/// published as snapshot version 7.
struct Fixture {
  roadnet::RoadNetwork net = testutil::fig1_network();
  serve::SnapshotStore store;
  serve::QueryEngine engine{net, store};
  sim::TripPlanner planner{net, roadnet::Metric::kDistance};
  obs::Registry registry;
  QueryService service{net, engine, &planner, registry};

  Fixture() { store.publish(serve::ClusterSnapshot::build(net, flows(), finals(), 7)); }

  static std::vector<FlowCluster> flows() {
    FlowCluster f0;
    f0.route = {SegmentId(0), SegmentId(1)};
    f0.junctions = {NodeId(0), NodeId(1), NodeId(2)};
    f0.participants = {TrajectoryId(1), TrajectoryId(2), TrajectoryId(3)};
    f0.route_length = 200.0;
    FlowCluster f1;
    f1.route = {SegmentId(0), SegmentId(3)};
    f1.junctions = {NodeId(0), NodeId(1), NodeId(4)};
    f1.participants = {TrajectoryId(4), TrajectoryId(5)};
    f1.route_length = 200.0;
    FlowCluster f2;
    f2.route = {SegmentId(2)};
    f2.junctions = {NodeId(1), NodeId(3)};
    f2.participants = {TrajectoryId(6)};
    f2.route_length = 100.0;
    return {f0, f1, f2};
  }

  static std::vector<FinalCluster> finals() {
    FinalCluster c0;
    c0.flows = {0, 1};
    FinalCluster c1;
    c1.flows = {2};
    return {c0, c1};
  }
};

TEST(QueryService, NearestMatchesGolden) {
  Fixture fx;
  // (50, 5) is 5 m off S0; flows 0 and 1 share S0 and the tie resolves to
  // flow 0 (higher cardinality).
  const HttpResponse r = fx.service.nearest(
      request({{"x", "50"}, {"y", "5"}, {"radius", "200"}, {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  EXPECT_EQ(r.content_type, "application/json");
  expect_matches_golden(r.body, "query_nearest.golden.json");
}

TEST(QueryService, SegmentMatchesGolden) {
  Fixture fx;
  const HttpResponse r =
      fx.service.segment(request({{"sid", "0"}, {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  expect_matches_golden(r.body, "query_segment.golden.json");
}

TEST(QueryService, TopkMatchesGolden) {
  Fixture fx;
  const HttpResponse r = fx.service.topk(request({{"k", "2"}, {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  expect_matches_golden(r.body, "query_topk.golden.json");
}

TEST(QueryService, RouteMatchesGolden) {
  Fixture fx;
  const HttpResponse r =
      fx.service.route(request({{"from", "0"}, {"to", "2"}, {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  expect_matches_golden(r.body, "query_route.golden.json");
}

TEST(QueryService, TableMatchesGolden) {
  Fixture fx;
  // All of n0's distances run through the star hub n1 (200 m), so the 150 m
  // bound turns its whole row into JSON nulls while n1's row stays finite —
  // the golden pins both the number formatting and the null convention.
  const HttpResponse r = fx.service.table(request({{"sources", "0,1"},
                                                   {"targets", "2,3,4"},
                                                   {"bound", "150"},
                                                   {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  EXPECT_EQ(r.content_type, "application/json");
  expect_matches_golden(r.body, "query_table.golden.json");
}

TEST(QueryService, TableValidatesListsBoundAndSize) {
  Fixture fx;
  const auto expect_code = [](const HttpResponse& r, int code, const char* error) {
    EXPECT_EQ(r.code, code);
    EXPECT_NE(r.body.find(std::string("\"error\":\"") + error + "\""),
              std::string::npos)
        << r.body;
  };
  expect_code(fx.service.table(request({{"targets", "1"}})), 400,
              "missing_parameter");
  expect_code(fx.service.table(request({{"sources", "0"}})), 400,
              "missing_parameter");
  expect_code(fx.service.table(request({{"sources", ""}, {"targets", "1"}})), 400,
              "invalid_parameter");
  expect_code(fx.service.table(request({{"sources", "0,abc"}, {"targets", "1"}})),
              400, "invalid_parameter");
  expect_code(
      fx.service.table(request({{"sources", "0"}, {"targets", "1"}, {"bound", "0"}})),
      400, "invalid_parameter");
  expect_code(fx.service.table(
                  request({{"sources", "0"}, {"targets", "1"}, {"bound", "x"}})),
              400, "invalid_parameter");
  // Well-formed ids beyond the network answer 404, mirroring /v1/route.
  expect_code(fx.service.table(request({{"sources", "99"}, {"targets", "1"}})), 404,
              "unknown_node");
  expect_code(fx.service.table(request({{"sources", "0"}, {"targets", "0,-1"}})),
              404, "unknown_node");
}

TEST(QueryService, OversizedTableAnswers400NotATimeout) {
  // A deliberately tiny cap: the 2 x 3 request is over it, and the error
  // detail names the arithmetic so a client can right-size its batches.
  roadnet::RoadNetwork net = testutil::fig1_network();
  serve::SnapshotStore store;
  store.publish(serve::ClusterSnapshot::build(net, Fixture::flows(),
                                              Fixture::finals(), 7));
  const serve::QueryEngine engine(net, store);
  obs::Registry registry;
  QueryServiceOptions opts;
  opts.max_table_cells = 4;
  const QueryService service(net, engine, nullptr, registry, opts);

  const HttpResponse r =
      service.table(request({{"sources", "0,1"}, {"targets", "2,3,4"}}));
  EXPECT_EQ(r.code, 400);
  EXPECT_NE(r.body.find("\"error\":\"table_too_large\""), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("2 x 3 = 6"), std::string::npos) << r.body;
  EXPECT_EQ(service.table(request({{"sources", "0,1"}, {"targets", "2,3"}})).code,
            200);
}

TEST(QueryService, NeverPublishedStoreAnswers503NotEmpty200) {
  // Regression: before the first publish the engine's snapshot() is null and
  // every snapshot-backed endpoint must answer an operational 503 with a
  // machine-readable error — not a well-formed empty answer a client would
  // mistake for "no traffic".
  roadnet::RoadNetwork net = testutil::fig1_network();
  serve::SnapshotStore empty_store;
  const serve::QueryEngine engine(net, empty_store);
  obs::Registry registry;
  const QueryService service(net, engine, nullptr, registry);

  for (const HttpResponse& r :
       {service.nearest(request({{"x", "50"}, {"y", "5"}})),
        service.segment(request({{"sid", "0"}})),
        service.topk(request({})),
        service.table(request({{"sources", "0"}, {"targets", "1"}}))}) {
    EXPECT_EQ(r.code, 503);
    EXPECT_EQ(r.content_type, "application/json");
    EXPECT_NE(r.body.find("\"error\":\"no_snapshot\""), std::string::npos) << r.body;
  }
  // Without a planner, /v1/route is 503 too — but with its own error code.
  const HttpResponse r = service.route(request({{"from", "0"}, {"to", "2"}}));
  EXPECT_EQ(r.code, 503);
  EXPECT_NE(r.body.find("\"error\":\"route_planning_disabled\""), std::string::npos);
}

TEST(QueryService, StrictParameterValidation) {
  Fixture fx;
  const auto expect_400 = [](const HttpResponse& r, const char* error) {
    EXPECT_EQ(r.code, 400);
    EXPECT_EQ(r.content_type, "application/json");
    EXPECT_NE(r.body.find(std::string("\"error\":\"") + error + "\""),
              std::string::npos)
        << r.body;
  };
  expect_400(fx.service.nearest(request({{"y", "5"}})), "missing_parameter");
  expect_400(fx.service.nearest(request({{"x", "abc"}, {"y", "5"}})),
             "invalid_parameter");
  expect_400(fx.service.nearest(request({{"x", "nan"}, {"y", "5"}})),
             "invalid_parameter");
  expect_400(fx.service.nearest(request({{"x", "1"}, {"y", "1"}, {"radius", "0"}})),
             "invalid_parameter");
  expect_400(
      fx.service.nearest(request({{"x", "1"}, {"y", "1"}, {"radius", "20000"}})),
      "invalid_parameter");
  expect_400(fx.service.segment(request({})), "missing_parameter");
  expect_400(fx.service.segment(request({{"sid", "zero"}})), "invalid_parameter");
  expect_400(fx.service.topk(request({{"k", "0"}})), "invalid_parameter");
  expect_400(fx.service.topk(request({{"k", "1001"}})), "invalid_parameter");
  expect_400(fx.service.route(request({{"to", "2"}})), "missing_parameter");
  expect_400(fx.service.route(request({{"from", "0"}, {"to", "2.5"}})),
             "invalid_parameter");
  expect_400(fx.service.topk(request({{"trace_id", "-1"}})), "invalid_parameter");
}

TEST(QueryService, WellFormedButNonexistentAnswers404) {
  Fixture fx;
  const auto expect_404 = [](const HttpResponse& r, const char* error) {
    EXPECT_EQ(r.code, 404);
    EXPECT_NE(r.body.find(std::string("\"error\":\"") + error + "\""),
              std::string::npos)
        << r.body;
  };
  expect_404(fx.service.segment(request({{"sid", "99"}})), "unknown_segment");
  expect_404(fx.service.route(request({{"from", "99"}, {"to", "0"}})),
             "unknown_node");
  expect_404(fx.service.route(request({{"from", "0"}, {"to", "-1"}})),
             "unknown_node");
  expect_404(
      fx.service.nearest(request({{"x", "5000"}, {"y", "5000"}, {"radius", "100"}})),
      "no_flow");
}

TEST(QueryService, UnreachableRouteAnswers404) {
  // Two disconnected islands: 0-1 and 2-3.
  roadnet::RoadNetworkBuilder b;
  const NodeId a = b.add_node({0.0, 0.0});
  const NodeId a2 = b.add_node({100.0, 0.0});
  const NodeId c = b.add_node({1000.0, 0.0});
  const NodeId c2 = b.add_node({1100.0, 0.0});
  b.add_segment(a, a2, 10.0);
  b.add_segment(c, c2, 10.0);
  const roadnet::RoadNetwork net = b.build();

  serve::SnapshotStore store;
  const serve::QueryEngine engine(net, store);
  sim::TripPlanner planner(net, roadnet::Metric::kDistance);
  obs::Registry registry;
  const QueryService service(net, engine, &planner, registry);

  const HttpResponse r = service.route(request({{"from", "0"}, {"to", "2"}}));
  EXPECT_EQ(r.code, 404);
  EXPECT_NE(r.body.find("\"error\":\"unreachable\""), std::string::npos) << r.body;
}

TEST(QueryService, ChBackedRouteReportsItsEngine) {
  roadnet::RoadNetwork net = testutil::fig1_network();
  roadnet::ChOptions copts;
  copts.directed = true;
  copts.metric = roadnet::Metric::kDistance;
  const auto ch = std::make_shared<const roadnet::ChEngine>(net, copts);
  serve::SnapshotStore store;
  const serve::QueryEngine engine(net, store);
  sim::TripPlanner planner(net, roadnet::Metric::kDistance, ch);
  obs::Registry registry;
  const QueryService service(net, engine, &planner, registry);

  const HttpResponse r =
      service.route(request({{"from", "0"}, {"to", "2"}, {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  // Same route as the SSSP golden, but attributed to the hierarchy.
  EXPECT_NE(r.body.find("\"engine\":\"ch\""), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"length_m\":200.000"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"segments\":[0,1]"), std::string::npos) << r.body;
}

TEST(QueryService, MintsATraceIdWhenAbsentAndEchoesExplicitOnes) {
  Fixture fx;
  const HttpResponse minted = fx.service.topk(request({{"k", "1"}}));
  EXPECT_EQ(minted.code, 200);
  EXPECT_NE(minted.body.find("\"trace_id\":"), std::string::npos);
  EXPECT_EQ(minted.body.find("\"trace_id\":0,"), std::string::npos) << minted.body;

  const HttpResponse echoed = fx.service.topk(request({{"k", "1"}, {"trace_id", "77"}}));
  EXPECT_NE(echoed.body.find("\"trace_id\":77,"), std::string::npos) << echoed.body;
}

TEST(QueryService, RecordsPerEndpointLatencyAndErrors) {
  Fixture fx;
  EXPECT_EQ(fx.service.topk(request({{"k", "1"}})).code, 200);
  EXPECT_EQ(fx.service.topk(request({{"k", "0"}})).code, 400);
  EXPECT_EQ(fx.service.nearest(request({})).code, 400);

  // Latency histograms count every request, the error counters only 4xx/5xx.
  EXPECT_GT(fx.registry.histogram_sum_seconds("neat_net_request_seconds",
                                              {{"endpoint", "topk"}}),
            0.0);
  EXPECT_EQ(fx.registry.counter_value("neat_net_errors_total", {{"endpoint", "topk"}}),
            1u);
  EXPECT_EQ(
      fx.registry.counter_value("neat_net_errors_total", {{"endpoint", "nearest"}}),
      1u);
  EXPECT_EQ(
      fx.registry.counter_value("neat_net_errors_total", {{"endpoint", "route"}}),
      0u);
}

TEST(QueryService, ServesOverHttpThroughRegisteredRoutes) {
  Fixture fx;
  HttpServerOptions opts;
  opts.registry = &fx.registry;
  HttpServer server(opts);
  fx.service.register_routes(server);
  server.start();

  const HttpResult ok =
      http_get(server.port(), "/v1/nearest?x=50&y=5&radius=200&trace_id=42");
  EXPECT_EQ(ok.code, 200);
  EXPECT_NE(ok.raw.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(ok.body, read_file(data_path("query_nearest.golden.json")));

  EXPECT_EQ(http_get(server.port(), "/v1/topk?k=0").code, 400);
  EXPECT_EQ(http_get(server.port(), "/v1/route?from=0&to=2").code, 200);
  const HttpResult table = http_get(
      server.port(), "/v1/table?sources=0,1&targets=2,3,4&bound=150&trace_id=42");
  EXPECT_EQ(table.code, 200);
  EXPECT_EQ(table.body, read_file(data_path("query_table.golden.json")));
  EXPECT_EQ(http_get(server.port(), "/v1/other").code, 404);
  // The shared registry carries both the service's and the server's series.
  EXPECT_GE(fx.registry.counter_value("neat_net_requests_total",
                                      {{"path", "/v1/nearest"}, {"code", "200"}}),
            1u);
}

TEST(QueryService, SlowRequestsEmitAWarnLineJoinableByTraceId) {
  Fixture fx;
  QueryServiceOptions opts;
  opts.slow_request_seconds = 1e-9;  // every request counts as slow
  const QueryService slow_service(fx.net, fx.engine, &fx.planner, fx.registry, opts);

  // Capture the global logger (the one NEAT_LOG reports into) for the
  // duration of this test; restore the default sink on the way out.
  std::mutex mu;
  std::vector<std::string> lines;
  obs::log::Logger& logger = obs::log::Logger::global();
  logger.set_sink([&](std::string_view line) {
    const std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });

  const HttpResponse r =
      slow_service.topk(request({{"k", "2"}, {"trace_id", "42"}}));
  EXPECT_EQ(r.code, 200);
  logger.flush();
  logger.set_sink(nullptr);

  const std::lock_guard<std::mutex> lock(mu);
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("\"msg\":\"slow request\"") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"endpoint\":\"topk\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"trace_id\":42"), std::string::npos) << line;
    EXPECT_NE(line.find("\"threshold_ms\":"), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << "no slow-request line was captured";
}

}  // namespace
}  // namespace neat::net
