// Metamorphic tests for the Phase 3 acceleration layer: transformations that
// must not change the clustering.
//  * Thread count: ParallelRefiner at 1, 2 and 8 threads reproduces the
//    serial Refiner bit-for-bit (clusters AND instrumentation counters).
//  * Pruning: ELB and landmark pruning on/off in every combination leaves
//    the merge decisions unchanged — only pairs_evaluated / sp_computations
//    may shrink when a prune is active.
//  * Distance engine: every rung of the ladder (Dijkstra / ALT / CH /
//    CH many-to-many table) yields identical clusters and identical
//    engine-invariant pruning counters, at 1, 2 and 8 refine threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/clusterer.h"
#include "core/parallel_refiner.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

namespace neat {
namespace {

struct Workload {
  roadnet::RoadNetwork net;
  std::vector<FlowCluster> flows;
};

// Flow clusters from a full Phases 1-2 run over a simulated city, the same
// construction the pipeline sweep uses.
Workload make_workload(int rows, int cols, std::uint64_t net_seed,
                       std::uint64_t traj_seed, int trajectories) {
  roadnet::CityParams p;
  p.rows = rows;
  p.cols = cols;
  p.seed = net_seed;
  Workload w{roadnet::make_city(p), {}};
  const sim::SimConfig scfg = sim::default_config(w.net, 3, 3);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(w.net, scfg).generate(trajectories, traj_seed);
  Config cfg;
  cfg.mode = Mode::kFlow;
  cfg.flow.min_card = 1.0;  // keep every flow: more refiner work
  w.flows = NeatClusterer(w.net, cfg).run(data).flow_clusters;
  return w;
}

void expect_identical(const Phase3Output& a, const Phase3Output& b,
                      const char* what) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size()) << what;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].flows, b.clusters[i].flows) << what << " cluster " << i;
    EXPECT_DOUBLE_EQ(a.clusters[i].total_route_length, b.clusters[i].total_route_length);
  }
  EXPECT_EQ(a.sp_computations, b.sp_computations) << what;
  EXPECT_EQ(a.elb_pruned_pairs, b.elb_pruned_pairs) << what;
  EXPECT_EQ(a.lm_pruned_pairs, b.lm_pruned_pairs) << what;
  EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated) << what;
}

void expect_same_clusters(const Phase3Output& a, const Phase3Output& b,
                          const char* what) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size()) << what;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].flows, b.clusters[i].flows) << what << " cluster " << i;
  }
}

TEST(ParallelRefinerMetamorphic, ThreadCountNeverChangesAnything) {
  for (const std::uint64_t seed : {11u, 47u}) {
    const Workload w = make_workload(10, 10, seed, seed + 1, 60);
    ASSERT_GT(w.flows.size(), 3u);
    for (const bool landmarks : {false, true}) {
      RefineConfig cfg;
      cfg.epsilon = 500.0;
      cfg.use_landmarks = landmarks;
      const Phase3Output serial = Refiner(w.net, cfg).refine(w.flows);
      for (const unsigned threads : {1u, 2u, 8u}) {
        RefineConfig pcfg = cfg;
        pcfg.threads = threads;
        const Phase3Output parallel = ParallelRefiner(w.net, pcfg).refine(w.flows);
        expect_identical(serial, parallel,
                         landmarks ? "landmarks on" : "landmarks off");
      }
    }
  }
}

TEST(ParallelRefinerMetamorphic, DelegatesForTinyInputs) {
  const Workload w = make_workload(8, 8, 5, 6, 20);
  RefineConfig cfg;
  cfg.epsilon = 400.0;
  cfg.threads = 8;
  const ParallelRefiner pr(w.net, cfg);
  // Single flow and empty input exercise the serial-delegation path.
  const std::vector<FlowCluster> one(w.flows.begin(), w.flows.begin() + 1);
  const Phase3Output serial = Refiner(w.net, cfg).refine(one);
  expect_identical(serial, pr.refine(one), "single flow");
  EXPECT_TRUE(pr.refine({}).clusters.empty());
}

TEST(PruningMetamorphic, PruningNeverChangesMergeDecisions) {
  const Workload w = make_workload(10, 10, 23, 29, 60);
  ASSERT_GT(w.flows.size(), 3u);

  RefineConfig none;
  none.epsilon = 500.0;
  none.use_elb = false;
  none.use_landmarks = false;
  const Phase3Output base = Refiner(w.net, none).refine(w.flows);
  EXPECT_EQ(base.elb_pruned_pairs, 0u);
  EXPECT_EQ(base.lm_pruned_pairs, 0u);
  const std::size_t all_pairs = w.flows.size() * (w.flows.size() - 1) / 2;
  EXPECT_EQ(base.pairs_evaluated, all_pairs);

  for (const bool elb : {false, true}) {
    for (const bool lm : {false, true}) {
      RefineConfig cfg = none;
      cfg.use_elb = elb;
      cfg.use_landmarks = lm;
      const Phase3Output out = Refiner(w.net, cfg).refine(w.flows);
      expect_same_clusters(base, out, "prune combination");
      // Every pair is either pruned or evaluated; nothing is dropped.
      EXPECT_EQ(out.pairs_evaluated + out.elb_pruned_pairs + out.lm_pruned_pairs,
                all_pairs);
      if (!elb) EXPECT_EQ(out.elb_pruned_pairs, 0u);
      if (!lm) EXPECT_EQ(out.lm_pruned_pairs, 0u);
      EXPECT_LE(out.pairs_evaluated, base.pairs_evaluated);
      EXPECT_LE(out.sp_computations, base.sp_computations);
    }
  }
}

TEST(PruningMetamorphic, LandmarkPruneStrictlyReducesDijkstraRunsAfterElb) {
  // On a grid network shortest paths bend, so the landmark bound must catch
  // pairs ELB misses — the Figure 7 extension this PR reports.
  const roadnet::RoadNetwork net = roadnet::make_grid(12, 12, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(80, 17);
  Config fcfg;
  fcfg.mode = Mode::kFlow;
  fcfg.flow.min_card = 1.0;
  const std::vector<FlowCluster> flows = NeatClusterer(net, fcfg).run(data).flow_clusters;
  ASSERT_GT(flows.size(), 5u);

  RefineConfig elb_only;
  elb_only.epsilon = 400.0;
  RefineConfig elb_lm = elb_only;
  elb_lm.use_landmarks = true;
  const Phase3Output a = Refiner(net, elb_only).refine(flows);
  const Phase3Output b = Refiner(net, elb_lm).refine(flows);
  expect_same_clusters(a, b, "ELB vs ELB+landmark");
  EXPECT_GT(b.lm_pruned_pairs, 0u) << "landmark bound must prune pairs ELB missed";
  EXPECT_LT(b.sp_computations, a.sp_computations)
      << "ELB+landmark must issue strictly fewer Dijkstra runs than ELB alone";
}

TEST(PruningMetamorphic, BoundedSearchesMatchUnbounded) {
  const Workload w = make_workload(9, 9, 71, 73, 50);
  RefineConfig bounded;
  bounded.epsilon = 450.0;
  RefineConfig unbounded = bounded;
  unbounded.bound_searches_at_epsilon = false;
  const Phase3Output a = Refiner(w.net, bounded).refine(w.flows);
  const Phase3Output b = Refiner(w.net, unbounded).refine(w.flows);
  expect_same_clusters(a, b, "bounded vs unbounded");
}

TEST(DistanceEngineMetamorphic, EngineAndThreadCountNeverChangeClusters) {
  // The ladder contract across both axes at once: swapping the distance
  // engine must never change the clustering, and within one engine the
  // thread count must never change the counters either. The prune decisions
  // (ELB, landmark) run before any engine touches a pair, so
  // elb/lm_pruned/pairs_evaluated are engine-invariant; sp_computations and
  // settled_nodes are work proxies with engine-specific units (the table
  // rung counts bucket fills, not searches) and are only compared within an
  // engine.
  const Workload w = make_workload(10, 10, 83, 89, 60);
  ASSERT_GT(w.flows.size(), 3u);

  RefineConfig base;
  base.epsilon = 500.0;
  base.use_landmarks = true;
  const Phase3Output reference = Refiner(w.net, base).refine(w.flows);

  for (const DistanceEngine engine :
       {DistanceEngine::kDijkstra, DistanceEngine::kAlt, DistanceEngine::kCh,
        DistanceEngine::kChTable}) {
    RefineConfig cfg = base;
    cfg.distance_engine = engine;
    const Phase3Output serial = Refiner(w.net, cfg).refine(w.flows);
    const char* what = engine == DistanceEngine::kChTable ? "ch-table" : "engine";
    expect_same_clusters(reference, serial, what);
    EXPECT_EQ(serial.elb_pruned_pairs, reference.elb_pruned_pairs) << what;
    EXPECT_EQ(serial.lm_pruned_pairs, reference.lm_pruned_pairs) << what;
    EXPECT_EQ(serial.pairs_evaluated, reference.pairs_evaluated) << what;

    for (const unsigned threads : {1u, 2u, 8u}) {
      RefineConfig pcfg = cfg;
      pcfg.threads = threads;
      const Phase3Output parallel = ParallelRefiner(w.net, pcfg).refine(w.flows);
      expect_same_clusters(serial, parallel, what);
      EXPECT_EQ(parallel.sp_computations, serial.sp_computations) << what;
      EXPECT_EQ(parallel.elb_pruned_pairs, serial.elb_pruned_pairs) << what;
      EXPECT_EQ(parallel.lm_pruned_pairs, serial.lm_pruned_pairs) << what;
      EXPECT_EQ(parallel.pairs_evaluated, serial.pairs_evaluated) << what;
      // settled_nodes depends on which worker's memoized label cache each
      // chunk lands in for the hub-label engines; it is thread-invariant
      // only for the per-pair-independent rungs.
      if (engine == DistanceEngine::kDijkstra || engine == DistanceEngine::kAlt) {
        EXPECT_EQ(parallel.settled_nodes, serial.settled_nodes) << what;
      } else {
        EXPECT_GT(parallel.settled_nodes, 0u) << what;
      }
    }
  }
}

TEST(ClustererWiring, RefineThreadsProduceIdenticalResults) {
  roadnet::CityParams p;
  p.rows = 9;
  p.cols = 9;
  p.seed = 31;
  const roadnet::RoadNetwork net = roadnet::make_city(p);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(50, 37);

  Config serial;
  serial.refine.use_landmarks = true;
  Config threaded = serial;
  threaded.refine.threads = 8;
  const Result a = NeatClusterer(net, serial).run(data);
  const Result b = NeatClusterer(net, threaded).run(data);
  ASSERT_EQ(a.final_clusters.size(), b.final_clusters.size());
  for (std::size_t i = 0; i < a.final_clusters.size(); ++i) {
    EXPECT_EQ(a.final_clusters[i].flows, b.final_clusters[i].flows);
  }
  EXPECT_EQ(a.sp_computations, b.sp_computations);
  EXPECT_EQ(a.lm_pruned_pairs, b.lm_pruned_pairs);
}

}  // namespace
}  // namespace neat
