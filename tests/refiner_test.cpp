// Tests for NEAT Phase 3 — modified Hausdorff flow distance (Definition 11),
// ELB pruning soundness (identical clusters with ELB on/off, fewer shortest
// paths with it on), deterministic DBSCAN over flows.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/clusterer.h"
#include "core/refiner.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

FlowCluster make_flow(const roadnet::RoadNetwork& net, const std::vector<SegmentId>& route,
                      NodeId first_junction) {
  FlowCluster f;
  f.route = route;
  f.junctions.push_back(first_junction);
  NodeId cur = first_junction;
  for (const SegmentId sid : route) {
    cur = net.other_endpoint(sid, cur);
    f.junctions.push_back(cur);
    f.route_length += net.segment_length(sid);
  }
  return f;
}

TEST(HausdorffParts, Formula5) {
  // fwd = max(min(d11,d12), min(d21,d22)); bwd = max(min(d11,d21), min(d12,d22)).
  EXPECT_DOUBLE_EQ(hausdorff_from_parts(0.0, 5.0, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(hausdorff_from_parts(1.0, 2.0, 3.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(hausdorff_from_parts(10.0, 10.0, 10.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(hausdorff_from_parts(0.0, 100.0, 100.0, 7.0), 7.0);
}

TEST(RefineConfigValidation, Rejected) {
  const roadnet::RoadNetwork net = testutil::line_network(2);
  RefineConfig cfg;
  cfg.epsilon = 0.0;
  EXPECT_THROW(Refiner(net, cfg), PreconditionError);
  cfg = RefineConfig{};
  cfg.min_pts = 0;
  EXPECT_THROW(Refiner(net, cfg), PreconditionError);
}

TEST(Refiner, FlowDistanceOnLine) {
  // Line of 10 segments; flow A covers segments 0-1, flow B covers 5-6.
  const roadnet::RoadNetwork net = testutil::line_network(10);
  const FlowCluster a = make_flow(net, {SegmentId(0), SegmentId(1)}, NodeId(0));
  const FlowCluster b = make_flow(net, {SegmentId(5), SegmentId(6)}, NodeId(5));
  RefineConfig cfg;
  cfg.epsilon = 1000.0;
  const Refiner refiner(net, cfg);
  // Endpoints: a = {n0, n2}, b = {n5, n7}. Pairwise network distances are
  // 500, 700, 300, 500; Formula 5 gives max(min per endpoint) = 500.
  EXPECT_DOUBLE_EQ(refiner.flow_distance(a, b), 500.0);
  EXPECT_DOUBLE_EQ(refiner.flow_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(refiner.flow_distance(b, a), refiner.flow_distance(a, b));
}

TEST(Refiner, MinEuclideanEndpointDistance) {
  const roadnet::RoadNetwork net = testutil::line_network(10);
  const FlowCluster a = make_flow(net, {SegmentId(0), SegmentId(1)}, NodeId(0));
  const FlowCluster b = make_flow(net, {SegmentId(5), SegmentId(6)}, NodeId(5));
  RefineConfig cfg;
  const Refiner refiner(net, cfg);
  EXPECT_DOUBLE_EQ(refiner.min_euclidean_endpoint_distance(a, b), 300.0);  // n2 to n5
}

TEST(Refiner, MergesCloseFlowsSplitsFarOnes) {
  const roadnet::RoadNetwork net = testutil::line_network(12);
  // Three flows: two nearby (gap of one segment), one far away.
  const std::vector<FlowCluster> flows{
      make_flow(net, {SegmentId(0), SegmentId(1)}, NodeId(0)),
      make_flow(net, {SegmentId(3)}, NodeId(3)),
      make_flow(net, {SegmentId(10)}, NodeId(10)),
  };
  RefineConfig cfg;
  // distN(flow0, flow1) = 300 (the far endpoint n0 dominates the Hausdorff
  // max); distN to flow 2 is 600+.
  cfg.epsilon = 350.0;
  const Refiner refiner(net, cfg);
  const Phase3Output out = refiner.refine(flows);
  ASSERT_EQ(out.clusters.size(), 2u);
  // Groups are reported with ascending flow indices.
  std::vector<std::vector<std::size_t>> groups;
  for (const FinalCluster& c : out.clusters) groups.push_back(c.flows);
  std::sort(groups.begin(), groups.end());
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{2}));
}

TEST(Refiner, ChainMergingIsTransitive) {
  // DBSCAN density-connectivity: A close to B, B close to C, A far from C —
  // all three still end in one cluster.
  const roadnet::RoadNetwork net = testutil::line_network(12);
  const std::vector<FlowCluster> flows{
      make_flow(net, {SegmentId(0)}, NodeId(0)),
      make_flow(net, {SegmentId(3)}, NodeId(3)),
      make_flow(net, {SegmentId(6)}, NodeId(6)),
  };
  RefineConfig cfg;
  cfg.epsilon = 350.0;  // adjacent pairs are 200/300 apart; ends are 600
  const Refiner refiner(net, cfg);
  const Phase3Output out = refiner.refine(flows);
  ASSERT_EQ(out.clusters.size(), 1u);
  EXPECT_EQ(out.clusters[0].flows, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Refiner, EmptyInput) {
  const roadnet::RoadNetwork net = testutil::line_network(2);
  RefineConfig cfg;
  const Refiner refiner(net, cfg);
  const Phase3Output out = refiner.refine({});
  EXPECT_TRUE(out.clusters.empty());
  EXPECT_EQ(out.sp_computations, 0u);
}

TEST(Refiner, SingleFlowIsOwnCluster) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const std::vector<FlowCluster> flows{make_flow(net, {SegmentId(0)}, NodeId(0))};
  RefineConfig cfg;
  const Refiner refiner(net, cfg);
  const Phase3Output out = refiner.refine(flows);
  ASSERT_EQ(out.clusters.size(), 1u);
  EXPECT_EQ(out.clusters[0].flows, std::vector<std::size_t>{0});
}

TEST(Refiner, ElbPrunesWithoutChangingClusters) {
  // Property: ELB on/off produce identical final clusters, and ELB strictly
  // reduces shortest-path computations when far-apart flows exist.
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset data = simulator.generate(60, 13);

  Config cfg;
  cfg.mode = Mode::kFlow;
  cfg.flow.min_card = 1.0;  // keep every flow so the refiner sees many
  const Result flows_only = NeatClusterer(net, cfg).run(data);
  ASSERT_GT(flows_only.flow_clusters.size(), 2u);

  RefineConfig with_elb;
  with_elb.epsilon = 400.0;
  with_elb.use_elb = true;
  RefineConfig without_elb = with_elb;
  without_elb.use_elb = false;

  const Phase3Output a = Refiner(net, with_elb).refine(flows_only.flow_clusters);
  const Phase3Output b = Refiner(net, without_elb).refine(flows_only.flow_clusters);

  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].flows, b.clusters[i].flows);
  }
  EXPECT_GT(a.elb_pruned_pairs, 0u);
  EXPECT_LT(a.sp_computations, b.sp_computations);
  EXPECT_EQ(b.elb_pruned_pairs, 0u);
}

TEST(Refiner, DeterministicAcrossRuns) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset data = simulator.generate(50, 29);
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result flows_only = NeatClusterer(net, cfg).run(data);
  RefineConfig rcfg;
  rcfg.epsilon = 500.0;
  const Phase3Output a = Refiner(net, rcfg).refine(flows_only.flow_clusters);
  const Phase3Output b = Refiner(net, rcfg).refine(flows_only.flow_clusters);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].flows, b.clusters[i].flows);
  }
}

TEST(Refiner, PartitionsAllFlows) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset data = simulator.generate(50, 31);
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result flows_only = NeatClusterer(net, cfg).run(data);
  RefineConfig rcfg;
  rcfg.epsilon = 300.0;
  const Phase3Output out = Refiner(net, rcfg).refine(flows_only.flow_clusters);
  std::vector<std::size_t> seen;
  for (const FinalCluster& c : out.clusters) {
    for (const std::size_t f : c.flows) seen.push_back(f);
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::size_t> want(flows_only.flow_clusters.size());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
  EXPECT_EQ(seen, want) << "every flow must end in exactly one final cluster";
}

TEST(Refiner, MinPtsAboveOneLeavesSparseFlowsSingleton) {
  const roadnet::RoadNetwork net = testutil::line_network(12);
  const std::vector<FlowCluster> flows{
      make_flow(net, {SegmentId(0)}, NodeId(0)),
      make_flow(net, {SegmentId(2)}, NodeId(2)),
      make_flow(net, {SegmentId(4)}, NodeId(4)),
      make_flow(net, {SegmentId(10)}, NodeId(10)),  // isolated
  };
  RefineConfig cfg;
  cfg.epsilon = 250.0;
  cfg.min_pts = 3;
  const Refiner refiner(net, cfg);
  const Phase3Output out = refiner.refine(flows);
  // Flows 0-2 form a chain dense enough for min_pts=3 via flow 1; flow 3 is
  // noise and must surface as a singleton cluster (NEAT partitions flows).
  ASSERT_EQ(out.clusters.size(), 2u);
  std::vector<std::vector<std::size_t>> groups;
  for (const FinalCluster& c : out.clusters) groups.push_back(c.flows);
  std::sort(groups.begin(), groups.end());
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{3}));
}

TEST(Refiner, AggregatesClusterMetadata) {
  const roadnet::RoadNetwork net = testutil::line_network(12);
  FlowCluster a = make_flow(net, {SegmentId(0), SegmentId(1)}, NodeId(0));
  a.participants = {TrajectoryId(1), TrajectoryId(2)};
  FlowCluster b = make_flow(net, {SegmentId(3)}, NodeId(3));
  b.participants = {TrajectoryId(2), TrajectoryId(3)};
  RefineConfig cfg;
  cfg.epsilon = 350.0;  // distN(a, b) = 300
  const Phase3Output out = Refiner(net, cfg).refine({a, b});
  ASSERT_EQ(out.clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(out.clusters[0].total_route_length, 300.0);
  EXPECT_EQ(out.clusters[0].cardinality(), 3);
}

}  // namespace
}  // namespace neat
