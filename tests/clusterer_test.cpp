// Tests for the top-level NeatClusterer: mode selection (base/flow/opt),
// end-to-end determinism, timing bookkeeping, config validation.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/clusterer.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

traj::TrajectoryDataset grid_dataset(const roadnet::RoadNetwork& net, std::size_t objects,
                                     std::uint64_t seed) {
  const sim::SimConfig cfg = sim::default_config(net, 2, 3);
  return sim::MobilitySimulator(net, cfg).generate(objects, seed);
}

TEST(NeatClusterer, ValidatesConfigEagerly) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  Config cfg;
  cfg.flow.wq = -1.0;
  EXPECT_THROW(NeatClusterer(net, cfg), PreconditionError);
  cfg = Config{};
  cfg.refine.epsilon = -5.0;
  EXPECT_THROW(NeatClusterer(net, cfg), PreconditionError);
}

TEST(NeatClusterer, BaseModeRunsOnlyPhase1) {
  const roadnet::RoadNetwork net = roadnet::make_grid(6, 6, 100.0);
  const traj::TrajectoryDataset data = grid_dataset(net, 20, 3);
  Config cfg;
  cfg.mode = Mode::kBase;
  const Result res = NeatClusterer(net, cfg).run(data);
  EXPECT_FALSE(res.base_clusters.empty());
  EXPECT_GT(res.num_fragments, 0u);
  EXPECT_TRUE(res.flow_clusters.empty());
  EXPECT_TRUE(res.final_clusters.empty());
  EXPECT_GT(res.timing.phase1_s, 0.0);
  EXPECT_DOUBLE_EQ(res.timing.phase2_s, 0.0);
  EXPECT_DOUBLE_EQ(res.timing.phase3_s, 0.0);
}

TEST(NeatClusterer, FlowModeRunsPhases1And2) {
  const roadnet::RoadNetwork net = roadnet::make_grid(6, 6, 100.0);
  const traj::TrajectoryDataset data = grid_dataset(net, 20, 3);
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result res = NeatClusterer(net, cfg).run(data);
  EXPECT_FALSE(res.base_clusters.empty());
  EXPECT_FALSE(res.flow_clusters.empty());
  EXPECT_TRUE(res.final_clusters.empty());
  EXPECT_GT(res.effective_min_card, 0.0);
}

TEST(NeatClusterer, OptModeRunsAllPhases) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 100.0);
  const traj::TrajectoryDataset data = grid_dataset(net, 30, 3);
  Config cfg;
  cfg.refine.epsilon = 500.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  EXPECT_FALSE(res.base_clusters.empty());
  EXPECT_FALSE(res.flow_clusters.empty());
  EXPECT_FALSE(res.final_clusters.empty());
  // Refinement can only reduce (or keep) the number of groups.
  EXPECT_LE(res.final_clusters.size(), res.flow_clusters.size());
  EXPECT_GE(res.timing.total_s(), res.timing.phase1_s);
}

TEST(NeatClusterer, DeterministicEndToEnd) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 110.0);
  const traj::TrajectoryDataset data = grid_dataset(net, 40, 9);
  Config cfg;
  cfg.refine.epsilon = 400.0;
  const NeatClusterer clusterer(net, cfg);
  const Result a = clusterer.run(data);
  const Result b = clusterer.run(data);
  ASSERT_EQ(a.flow_clusters.size(), b.flow_clusters.size());
  for (std::size_t i = 0; i < a.flow_clusters.size(); ++i) {
    EXPECT_EQ(a.flow_clusters[i].route, b.flow_clusters[i].route);
  }
  ASSERT_EQ(a.final_clusters.size(), b.final_clusters.size());
  for (std::size_t i = 0; i < a.final_clusters.size(); ++i) {
    EXPECT_EQ(a.final_clusters[i].flows, b.final_clusters[i].flows);
  }
}

TEST(NeatClusterer, EmptyDataset) {
  const roadnet::RoadNetwork net = roadnet::make_grid(4, 4, 100.0);
  Config cfg;
  const Result res = NeatClusterer(net, cfg).run(traj::TrajectoryDataset{});
  EXPECT_TRUE(res.base_clusters.empty());
  EXPECT_TRUE(res.flow_clusters.empty());
  EXPECT_TRUE(res.final_clusters.empty());
  EXPECT_EQ(res.num_fragments, 0u);
}

TEST(NeatClusterer, HotspotTrafficYieldsMajorFlows) {
  // The headline behaviour (paper Figure 3): trips between a hotspot and a
  // few destinations concentrate into a handful of long flow clusters that
  // cover most trajectories.
  const roadnet::RoadNetwork net = roadnet::make_grid(12, 12, 100.0);
  const traj::TrajectoryDataset data = grid_dataset(net, 80, 17);
  Config cfg;
  cfg.refine.epsilon = 600.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  ASSERT_FALSE(res.flow_clusters.empty());
  EXPECT_LT(res.flow_clusters.size(), 40u) << "flows must be far fewer than trajectories";
  // The longest flow should span many segments (a major route, not noise).
  double longest = 0.0;
  for (const FlowCluster& f : res.flow_clusters) longest = std::max(longest, f.route_length);
  EXPECT_GT(longest, 500.0);
  EXPECT_LE(res.final_clusters.size(), res.flow_clusters.size());
}

TEST(NeatClusterer, InstrumentationConsistency) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 100.0);
  const traj::TrajectoryDataset data = grid_dataset(net, 40, 23);
  Config cfg;
  cfg.refine.epsilon = 400.0;
  cfg.refine.use_elb = true;
  const Result res = NeatClusterer(net, cfg).run(data);
  // Batched endpoint mode: one or two one-to-many searches per evaluated pair
  // (the second is skipped when the first already proves the pair > ε).
  EXPECT_GE(res.sp_computations, res.pairs_evaluated);
  EXPECT_LE(res.sp_computations, 2u * res.pairs_evaluated);
}

}  // namespace
}  // namespace neat
