// Tests for the TraClus network variant (§IV-C): DBSCAN over NEAT base
// clusters with the modified endpoint-Hausdorff network distance.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/fragmenter.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"
#include "traclus/network_variant.h"

namespace neat::traclus {
namespace {

std::vector<BaseCluster> base_clusters_of(const roadnet::RoadNetwork& net,
                                          const traj::TrajectoryDataset& data) {
  return Fragmenter(net).build_base_clusters(data).base_clusters;
}

TEST(NetworkVariant, ValidatesConfig) {
  const roadnet::RoadNetwork net = testutil::line_network(2);
  NetworkVariantConfig cfg;
  cfg.epsilon = 0.0;
  EXPECT_THROW(run_network_variant(net, {}, cfg), PreconditionError);
  cfg = NetworkVariantConfig{};
  cfg.min_lns = 0;
  EXPECT_THROW(run_network_variant(net, {}, cfg), PreconditionError);
}

TEST(NetworkVariant, EmptyInput) {
  const roadnet::RoadNetwork net = testutil::line_network(2);
  const NetworkVariantResult res = run_network_variant(net, {}, NetworkVariantConfig{});
  EXPECT_TRUE(res.clusters.empty());
  EXPECT_EQ(res.sp_computations, 0u);
}

TEST(NetworkVariant, GroupsNearbyBaseClusters) {
  // Traffic concentrated on two well separated stretches of a long line.
  const roadnet::RoadNetwork net = testutil::line_network(20);
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int rep = 0; rep < 3; ++rep) {
    data.add(testutil::make_path_trajectory(
        net, ++id, {NodeId(0), NodeId(1), NodeId(2), NodeId(3)}));
    data.add(testutil::make_path_trajectory(
        net, ++id, {NodeId(15), NodeId(16), NodeId(17), NodeId(18)}));
  }
  const auto base = base_clusters_of(net, data);
  ASSERT_EQ(base.size(), 6u);
  NetworkVariantConfig cfg;
  cfg.epsilon = 350.0;
  cfg.min_lns = 2;
  const NetworkVariantResult res = run_network_variant(net, base, cfg);
  EXPECT_EQ(res.clusters.size(), 2u);
  EXPECT_EQ(res.noise_clusters, 0u);
  EXPECT_GT(res.distance_computations, 0u);
  EXPECT_GT(res.sp_computations, 0u);
}

TEST(NetworkVariant, BoundedAndUnboundedAgree) {
  // Bounding the Dijkstra searches at ε must not change any clustering
  // decision — only the work done.
  const roadnet::RoadNetwork net = roadnet::make_grid(7, 7, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 2);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(25, 11);
  const auto base = base_clusters_of(net, data);
  NetworkVariantConfig bounded;
  bounded.epsilon = 300.0;
  bounded.min_lns = 3;
  bounded.bound_searches_at_epsilon = true;
  NetworkVariantConfig unbounded = bounded;
  unbounded.bound_searches_at_epsilon = false;
  const NetworkVariantResult a = run_network_variant(net, base, bounded);
  const NetworkVariantResult b = run_network_variant(net, base, unbounded);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.noise_clusters, b.noise_clusters);
}

TEST(NetworkVariant, ClustersAreDiscreteDensityNotFlows) {
  // The paper's qualitative point: the variant's clusters show discrete
  // dense regions; base clusters on a continuous route but with a spatial
  // gap larger than ε stay apart even when the same objects travel both.
  const roadnet::RoadNetwork net = testutil::line_network(30);
  traj::TrajectoryDataset data;
  std::vector<NodeId> full;
  for (int i = 0; i <= 30; ++i) full.push_back(NodeId(i));
  for (std::int64_t id = 1; id <= 3; ++id) {
    data.add(testutil::make_path_trajectory(net, id, full));
  }
  const auto base = base_clusters_of(net, data);
  ASSERT_EQ(base.size(), 30u);
  NetworkVariantConfig cfg;
  cfg.epsilon = 150.0;  // only adjacent segments are within range
  cfg.min_lns = 2;
  const NetworkVariantResult res = run_network_variant(net, base, cfg);
  // Every segment is within 100 m of its neighbour: density-connectivity
  // chains the whole line into one cluster — showing the variant measures
  // proximity, not flow: it would do the same even with zero shared
  // trajectories between distant parts.
  EXPECT_EQ(res.clusters.size(), 1u);
}

}  // namespace
}  // namespace neat::traclus
