// Property suite for the bucket-based many-to-many table engine: on
// randomized generator networks (grid / jittered city / one-way-heavy /
// radial variants), every CHTableEngine cell must equal the corresponding
// ChEngine::Query::distances() row bit for bit and match plain Dijkstra —
// unreachable pairs, source == target zeros, empty spans, duplicate
// endpoints and ε-bounded early exit included. A concurrency section runs
// per-thread table engines over one shared hierarchy (TSan coverage), and
// the alias guard added with the engine is exercised directly.
#include "roadnet/ch_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "roadnet/builder.h"
#include "roadnet/ch_engine.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"

namespace neat::roadnet {
namespace {

struct NamedNet {
  const char* name;
  RoadNetwork net;
};

std::vector<NamedNet> test_networks() {
  std::vector<NamedNet> nets;
  nets.push_back({"grid12", make_grid(12, 12, 150.0)});
  CityParams city;
  city.rows = 14;
  city.cols = 14;
  city.seed = 3;
  nets.push_back({"city-seed3", make_city(city)});
  city.seed = 9;
  city.oneway_probability = 0.4;
  nets.push_back({"city-oneway", make_city(city)});
  RadialCityParams radial;
  radial.rings = 6;
  radial.spokes = 9;
  radial.seed = 5;
  nets.push_back({"radial", make_radial_city(radial)});
  return nets;
}

NodeId random_node(Rng& rng, const RoadNetwork& net) {
  return NodeId(static_cast<std::int32_t>(rng.index(net.node_count())));
}

std::vector<NodeId> random_nodes(Rng& rng, const RoadNetwork& net, std::size_t n) {
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(random_node(rng, net));
  return nodes;
}

/// One table fill into a fresh row-major cell vector.
std::vector<double> fill(CHTableEngine& engine, const std::vector<NodeId>& sources,
                         const std::vector<NodeId>& targets,
                         double bound = kInfDistance) {
  std::vector<double> cells(sources.size() * targets.size(), -1.0);
  engine.table(sources, targets, cells, bound);
  return cells;
}

TEST(ChTable, MatchesQueryRowByRowOnGeneratorNetworks) {
  // The exactness contract: each table row is bit-identical to the batch
  // one-to-many answer for the same source, bounded and unbounded alike.
  for (const NamedNet& t : test_networks()) {
    const ChEngine ch(t.net);
    CHTableEngine table(ch);
    ChEngine::Query query(ch);
    Rng rng(1234);
    for (int round = 0; round < 6; ++round) {
      const std::vector<NodeId> sources = random_nodes(rng, t.net, 9);
      const std::vector<NodeId> targets = random_nodes(rng, t.net, 13);
      const double bound = (round % 2 == 0) ? kInfDistance : 1100.0;
      const std::vector<double> cells = fill(table, sources, targets, bound);
      std::vector<double> row(targets.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        query.distances(sources[i], targets, row, bound);
        for (std::size_t k = 0; k < targets.size(); ++k) {
          EXPECT_EQ(cells[i * targets.size() + k], row[k])
              << t.name << " round " << round << " cell (" << i << ", " << k << ")";
        }
      }
    }
  }
}

TEST(ChTable, MatchesPlainDijkstraOnGeneratorNetworks) {
  for (const NamedNet& t : test_networks()) {
    const ChEngine ch(t.net);
    CHTableEngine table(ch);
    NodeDistanceOracle oracle(t.net);
    Rng rng(777);
    const std::vector<NodeId> sources = random_nodes(rng, t.net, 8);
    const std::vector<NodeId> targets = random_nodes(rng, t.net, 8);
    const std::vector<double> cells = fill(table, sources, targets);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      for (std::size_t k = 0; k < targets.size(); ++k) {
        EXPECT_DOUBLE_EQ(cells[i * targets.size() + k],
                         oracle.distance(sources[i], targets[k]))
            << t.name << " cell (" << i << ", " << k << ")";
      }
    }
  }
}

TEST(ChTable, DirectedTablesMatchDirectedDijkstra) {
  CityParams p;
  p.rows = 12;
  p.cols = 12;
  p.seed = 21;
  p.oneway_probability = 0.35;
  const RoadNetwork net = make_city(p);
  const ChEngine ch(net, {.directed = true, .metric = Metric::kDistance});
  CHTableEngine table(ch);
  ChEngine::Query query(ch);
  Rng rng(55);
  const std::vector<NodeId> sources = random_nodes(rng, net, 10);
  const std::vector<NodeId> targets = random_nodes(rng, net, 10);
  const std::vector<double> cells = fill(table, sources, targets);
  std::vector<double> row(targets.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    query.distances(sources[i], targets, row, kInfDistance);
    for (std::size_t k = 0; k < targets.size(); ++k) {
      const double cell = cells[i * targets.size() + k];
      EXPECT_EQ(cell, row[k]) << "cell (" << i << ", " << k << ")";
      // Directed ground truth: the one-to-one Dijkstra route cost, infinite
      // exactly when no directed route exists.
      const std::optional<Route> route =
          shortest_route(net, sources[i], targets[k], Metric::kDistance);
      if (route) {
        EXPECT_DOUBLE_EQ(cell, route->length);
      } else {
        EXPECT_EQ(cell, kInfDistance);
      }
    }
  }
}

TEST(ChTable, UnreachablePairsAreInfinite) {
  // Two disconnected components; cross-component cells must be infinite and
  // within-component cells exact.
  RoadNetworkBuilder b;
  b.add_node({0.0, 0.0});
  b.add_node({100.0, 0.0});
  b.add_node({0.0, 500.0});
  b.add_node({100.0, 500.0});
  b.add_segment(NodeId(0), NodeId(1), 13.9);
  b.add_segment(NodeId(2), NodeId(3), 13.9);
  const RoadNetwork net = b.build();
  const ChEngine ch(net);
  CHTableEngine table(ch);
  const std::vector<NodeId> sources{NodeId(0), NodeId(2)};
  const std::vector<NodeId> targets{NodeId(1), NodeId(3)};
  const std::vector<double> cells = fill(table, sources, targets);
  EXPECT_DOUBLE_EQ(cells[0], 100.0);          // 0 -> 1
  EXPECT_EQ(cells[1], kInfDistance);          // 0 -> 3
  EXPECT_EQ(cells[2], kInfDistance);          // 2 -> 1
  EXPECT_DOUBLE_EQ(cells[3], 100.0);          // 2 -> 3
}

TEST(ChTable, SourceEqualsTargetIsZero) {
  const RoadNetwork net = make_grid(6, 6, 100.0);
  const ChEngine ch(net);
  CHTableEngine table(ch);
  const std::vector<NodeId> nodes{NodeId(0), NodeId(7), NodeId(35)};
  const std::vector<double> cells = fill(table, nodes, nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(cells[i * nodes.size() + i], 0.0) << "diagonal " << i;
  }
}

TEST(ChTable, EmptySpansReturnAnEmptyTable) {
  const RoadNetwork net = make_grid(4, 4, 100.0);
  const ChEngine ch(net);
  CHTableEngine table(ch);
  const std::vector<NodeId> some{NodeId(0), NodeId(5)};
  const std::vector<NodeId> none;
  std::vector<double> empty_out;
  table.table(none, some, empty_out);
  table.table(some, none, empty_out);
  table.table(none, none, empty_out);
  EXPECT_EQ(table.computations(), 3u);
  EXPECT_EQ(table.settled_nodes(), 0u);
}

TEST(ChTable, BoundedFillsKeepTheDijkstraContract) {
  const RoadNetwork net = make_grid(10, 10, 100.0);
  const ChEngine ch(net);
  NodeDistanceOracle oracle(net);
  Rng rng(77);
  const std::vector<NodeId> sources = random_nodes(rng, net, 6);
  const std::vector<NodeId> targets = random_nodes(rng, net, 6);
  // Every finite distance: exact when <= bound, infinite when the bound
  // undercuts it — the same contract the bounded oracle keeps.
  for (const double bound : {250.0, 600.0, 1400.0}) {
    CHTableEngine table(ch);
    const std::vector<double> cells = fill(table, sources, targets, bound);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      for (std::size_t k = 0; k < targets.size(); ++k) {
        const double exact = oracle.distance(sources[i], targets[k]);
        const double cell = cells[i * targets.size() + k];
        if (exact <= bound) {
          EXPECT_DOUBLE_EQ(cell, exact) << "bound " << bound;
        } else {
          EXPECT_EQ(cell, kInfDistance) << "bound " << bound;
        }
      }
    }
  }
}

TEST(ChTable, TightBoundsTerminateSearchesEarly) {
  // The bound must prune both sweeps, not just filter the output: a tight
  // ε-style bound settles far fewer nodes than an unbounded fill.
  const RoadNetwork net = make_grid(30, 30, 100.0);
  const ChEngine ch(net);
  Rng rng(31);
  const std::vector<NodeId> sources = random_nodes(rng, net, 16);
  const std::vector<NodeId> targets = random_nodes(rng, net, 16);
  CHTableEngine unbounded(ch);
  fill(unbounded, sources, targets);
  CHTableEngine bounded(ch);
  fill(bounded, sources, targets, 300.0);
  EXPECT_GT(unbounded.settled_nodes(), 0u);
  EXPECT_LT(bounded.settled_nodes() * 2, unbounded.settled_nodes());
}

TEST(ChTable, DuplicateEndpointsAreDeduplicated) {
  // The refiner's chunks batch flow endpoints, and adjacent flows routinely
  // share junctions (one flow's end is the next flow's start). Duplicates
  // must cost nothing extra and every copy of a row must agree.
  const RoadNetwork net = make_grid(8, 8, 120.0);
  const ChEngine ch(net);
  const std::vector<NodeId> uniq_sources{NodeId(0), NodeId(9), NodeId(40),
                                         NodeId(5)};
  const std::vector<NodeId> uniq_targets{NodeId(5), NodeId(63)};
  const std::vector<NodeId> dup_sources{NodeId(0), NodeId(9), NodeId(0),
                                        NodeId(40), NodeId(9), NodeId(5)};
  // Shared junction: NodeId(5) appears among both sources and targets.
  const std::vector<NodeId> dup_targets{NodeId(5), NodeId(63), NodeId(5)};

  CHTableEngine uniq_engine(ch);
  const std::vector<double> uniq = fill(uniq_engine, uniq_sources, uniq_targets);
  CHTableEngine dup_engine(ch);
  const std::vector<double> dup =
      fill(dup_engine, dup_sources, dup_targets, kInfDistance);
  // Duplicated rows and columns fan out from one search per distinct node.
  EXPECT_EQ(dup_engine.settled_nodes(), uniq_engine.settled_nodes());
  const auto uniq_cell = [&](std::size_t i, std::size_t k) {
    return uniq[i * uniq_targets.size() + k];
  };
  const std::size_t src_map[] = {0, 1, 0, 2, 1, 3};
  const std::size_t tgt_map[] = {0, 1, 0};
  for (std::size_t i = 0; i < dup_sources.size(); ++i) {
    for (std::size_t k = 0; k < dup_targets.size(); ++k) {
      EXPECT_EQ(dup[i * dup_targets.size() + k], uniq_cell(src_map[i], tgt_map[k]))
          << "cell (" << i << ", " << k << ")";
    }
  }
}

TEST(ChTable, RejectsWrongOutSizeAndAliasedSpans) {
  const RoadNetwork net = make_grid(4, 4, 100.0);
  const ChEngine ch(net);
  CHTableEngine table(ch);
  const std::vector<NodeId> nodes{NodeId(0), NodeId(1)};
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(table.table(nodes, nodes, wrong), PreconditionError);
  // An out span overlapping an input span is the latent scratch-reuse hazard
  // the engine guards against: the fill writes out before reading the node
  // lists. Only the byte ranges matter — the guard fires before any access.
  std::vector<double> cells(4, 0.0);
  const auto* aliased = reinterpret_cast<const NodeId*>(cells.data());
  const std::span<const NodeId> alias_span(aliased, 2);
  EXPECT_THROW(table.table(alias_span, nodes, cells), PreconditionError);
  EXPECT_THROW(table.table(nodes, alias_span, cells), PreconditionError);
}

TEST(ChTable, InvalidNodesAreRejected) {
  const RoadNetwork net = make_grid(3, 3, 100.0);
  const ChEngine ch(net);
  CHTableEngine table(ch);
  const std::vector<NodeId> good{NodeId(0)};
  const std::vector<NodeId> bad{NodeId(99)};
  std::vector<double> out(1, 0.0);
  EXPECT_THROW(table.table(bad, good, out), NotFoundError);
  EXPECT_THROW(table.table(good, bad, out), NotFoundError);
}

TEST(ChTable, CountersTrackFillsAndCacheHits) {
  const RoadNetwork net = make_grid(10, 10, 100.0);
  const ChEngine ch(net);
  CHTableEngine table(ch);
  Rng rng(5);
  const std::vector<NodeId> sources = random_nodes(rng, net, 4);
  const std::vector<NodeId> targets = random_nodes(rng, net, 4);
  fill(table, sources, targets);
  EXPECT_EQ(table.computations(), 1u);
  const std::size_t first_settled = table.settled_nodes();
  EXPECT_GT(first_settled, 0u);
  // A second identical fill answers entirely from the memoized labels.
  fill(table, sources, targets);
  EXPECT_EQ(table.computations(), 2u);
  EXPECT_EQ(table.settled_nodes(), first_settled);
  table.reset_counters();
  EXPECT_EQ(table.computations(), 0u);
  EXPECT_EQ(table.settled_nodes(), 0u);
}

TEST(ChTableConcurrency, PerThreadEnginesOverOneSharedHierarchy) {
  // The refiner's parallel shape: one immutable ChEngine, one CHTableEngine
  // per worker, each filling its own chunk's table.
  const RoadNetwork net = make_grid(15, 15, 100.0);
  const ChEngine ch(net);
  constexpr int kThreads = 4;
  Rng rng(99);
  std::vector<std::vector<NodeId>> sources(kThreads), targets(kThreads);
  std::vector<std::vector<double>> expected(kThreads);
  {
    NodeDistanceOracle oracle(net);
    for (int w = 0; w < kThreads; ++w) {
      sources[w] = random_nodes(rng, net, 12);
      targets[w] = random_nodes(rng, net, 12);
      for (const NodeId s : sources[w]) {
        for (const NodeId t : targets[w]) {
          expected[w].push_back(oracle.distance(s, t));
        }
      }
    }
  }
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      CHTableEngine table(ch);  // per-thread workspace over the shared engine
      got[w] = fill(table, sources[w], targets[w]);
    });
  }
  for (std::thread& th : pool) th.join();
  for (int w = 0; w < kThreads; ++w) {
    ASSERT_EQ(got[w].size(), expected[w].size());
    for (std::size_t i = 0; i < got[w].size(); ++i) {
      EXPECT_DOUBLE_EQ(got[w][i], expected[w][i]) << "thread " << w << " cell " << i;
    }
  }
}

}  // namespace
}  // namespace neat::roadnet
