// Tests for the SVG renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "eval/svg.h"
#include "test_util.h"

namespace neat::eval {
namespace {

roadnet::Bounds unit_box() { return {{0, 0}, {100, 50}}; }

TEST(Svg, DocumentStructure) {
  SvgWriter svg(unit_box(), 1000.0);
  svg.add_polyline({{0, 0}, {100, 50}}, "#ff0000", 2.0);
  svg.add_circle({50, 25}, 4.0, "#00ff00");
  std::ostringstream os;
  svg.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("<?xml"), std::string::npos);
  EXPECT_NE(out.find("<svg"), std::string::npos);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
  EXPECT_NE(out.find("<polyline"), std::string::npos);
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find("#ff0000"), std::string::npos);
  EXPECT_EQ(svg.element_count(), 2u);
}

TEST(Svg, AspectRatioPreserved) {
  SvgWriter svg(unit_box(), 1000.0);  // world 100x50 -> svg 1000x500
  std::ostringstream os;
  svg.write(os);
  EXPECT_NE(os.str().find("height=\"500\""), std::string::npos);
}

TEST(Svg, YAxisFlipped) {
  // World point (0, 50) (top-left in world coords) must map to svg y = 0.
  SvgWriter svg(unit_box(), 100.0);
  svg.add_circle({0, 50}, 1.0, "#000");
  std::ostringstream os;
  svg.write(os);
  EXPECT_NE(os.str().find("cx=\"0.0\" cy=\"0.0\""), std::string::npos);
}

TEST(Svg, SkipsDegeneratePolylines) {
  SvgWriter svg(unit_box());
  svg.add_polyline({}, "#000");
  svg.add_polyline({{1, 1}}, "#000");
  EXPECT_EQ(svg.element_count(), 0u);
}

TEST(Svg, NetworkRendering) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  SvgWriter svg(net.bounding_box());
  svg.add_network(net);
  EXPECT_EQ(svg.element_count(), net.segment_count());
}

TEST(Svg, RejectsDegenerateViewport) {
  EXPECT_THROW(SvgWriter({{0, 0}, {0, 10}}), PreconditionError);
  EXPECT_THROW(SvgWriter(unit_box(), 0.0), PreconditionError);
}

TEST(Svg, PaletteCyclesDeterministically) {
  EXPECT_EQ(SvgWriter::qualitative_color(0), SvgWriter::qualitative_color(10));
  EXPECT_NE(SvgWriter::qualitative_color(0), SvgWriter::qualitative_color(1));
  EXPECT_EQ(SvgWriter::qualitative_color(3).front(), '#');
}

TEST(Svg, FileErrors) {
  SvgWriter svg(unit_box());
  EXPECT_THROW(svg.write("/nonexistent/dir/out.svg"), Error);
}

}  // namespace
}  // namespace neat::eval
