// Whole-pipeline integration tests on generated city networks: the complete
// NEAT flow (simulate -> cluster -> refine) with cross-module invariants,
// comparison hooks against the TraClus baseline, and the paper's headline
// qualitative claims at test scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"
#include "core/clusterer.h"
#include "core/netflow.h"
#include "eval/metrics.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "traclus/traclus.h"

namespace neat {
namespace {

struct CityFixture : ::testing::Test {
  CityFixture() {
    roadnet::CityParams p;
    p.rows = 22;
    p.cols = 22;
    p.spacing_m = 130.0;
    p.seed = 2024;
    net = roadnet::make_city(p);
    sim_cfg = sim::default_config(net, 2, 3);
    data = sim::MobilitySimulator(net, sim_cfg).generate(120, 99);
  }

  roadnet::RoadNetwork net;
  sim::SimConfig sim_cfg;
  traj::TrajectoryDataset data;
};

TEST_F(CityFixture, FullPipelineInvariants) {
  Config cfg;
  cfg.refine.epsilon = 900.0;
  const Result res = NeatClusterer(net, cfg).run(data);

  // Phase 1: densities sum to the fragment count; participants are subsets
  // of the dataset's trajectory ids.
  std::size_t density_sum = 0;
  std::unordered_set<std::int64_t> dataset_ids;
  for (const traj::Trajectory& tr : data) dataset_ids.insert(tr.id().value());
  for (const BaseCluster& c : res.base_clusters) {
    density_sum += static_cast<std::size_t>(c.density());
    EXPECT_GE(c.density(), c.cardinality());
    for (const TrajectoryId trid : c.participants()) {
      EXPECT_TRUE(dataset_ids.count(trid.value())) << "unknown participant";
    }
  }
  EXPECT_EQ(density_sum, res.num_fragments);

  // Phase 2: flows partition the base clusters; netflow between consecutive
  // members is positive (Definition 8 requires f-neighbor chains).
  std::vector<std::size_t> member_seen;
  for (const auto* flows : {&res.flow_clusters, &res.filtered_flows}) {
    for (const FlowCluster& f : *flows) {
      member_seen.insert(member_seen.end(), f.members.begin(), f.members.end());
      for (std::size_t i = 1; i < f.members.size(); ++i) {
        EXPECT_GT(netflow(res.base_clusters[f.members[i - 1]],
                          res.base_clusters[f.members[i]]),
                  0);
      }
    }
  }
  std::sort(member_seen.begin(), member_seen.end());
  std::vector<std::size_t> all(res.base_clusters.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  EXPECT_EQ(member_seen, all);

  // Kept flows respect the minCard threshold; filtered ones fall below it.
  for (const FlowCluster& f : res.flow_clusters) {
    EXPECT_GE(static_cast<double>(f.cardinality()), res.effective_min_card);
  }
  for (const FlowCluster& f : res.filtered_flows) {
    EXPECT_LT(static_cast<double>(f.cardinality()), res.effective_min_card);
  }

  // Phase 3: final clusters partition the kept flows.
  std::vector<std::size_t> flow_seen;
  for (const FinalCluster& c : res.final_clusters) {
    flow_seen.insert(flow_seen.end(), c.flows.begin(), c.flows.end());
  }
  std::sort(flow_seen.begin(), flow_seen.end());
  std::vector<std::size_t> all_flows(res.flow_clusters.size());
  for (std::size_t i = 0; i < all_flows.size(); ++i) all_flows[i] = i;
  EXPECT_EQ(flow_seen, all_flows);
}

TEST_F(CityFixture, FlowsCaptureMajorTraffic) {
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result res = NeatClusterer(net, cfg).run(data);
  // The kept flows should cover the bulk of extracted fragments and most
  // trajectories — the filtered flows are minor traffic by construction.
  EXPECT_GT(eval::fragment_coverage(res), 0.5);
  EXPECT_GT(eval::trajectory_coverage(res, data.size()), 0.8);
}

TEST_F(CityFixture, FlowNeatProducesLongerRoutesThanTraClus) {
  // The paper's Figure 5(a)/(b): flow-NEAT representative routes are longer
  // than TraClus representative trajectories on the same data.
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result neat_res = NeatClusterer(net, cfg).run(data);
  const eval::RouteLengthStats neat_stats = eval::flow_route_stats(neat_res.flow_clusters);

  traclus::Config tcfg;
  tcfg.epsilon = 25.0;
  tcfg.min_lns = 5;
  const traclus::Result traclus_res = traclus::run(data, tcfg);
  const eval::RouteLengthStats traclus_stats =
      eval::traclus_route_stats(traclus_res.clusters);

  ASSERT_GT(neat_stats.count, 0u);
  ASSERT_GT(traclus_stats.count, 0u);
  EXPECT_GT(neat_stats.max_m, traclus_stats.max_m * 0.8)
      << "NEAT max route should not be shorter than TraClus's";
  EXPECT_GT(neat_stats.avg_m, traclus_stats.avg_m)
      << "paper Figure 5(a): NEAT average route length exceeds TraClus";
}

TEST_F(CityFixture, FlowNeatProducesFewerClustersThanTraClus) {
  // The paper's Figure 5(c).
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result neat_res = NeatClusterer(net, cfg).run(data);
  traclus::Config tcfg;
  tcfg.epsilon = 25.0;
  tcfg.min_lns = 5;
  const traclus::Result traclus_res = traclus::run(data, tcfg);
  ASSERT_GT(traclus_res.clusters.size(), 0u);
  EXPECT_LT(neat_res.flow_clusters.size(), traclus_res.clusters.size() * 3)
      << "NEAT must produce a compact clustering";
}

TEST_F(CityFixture, NeatFasterThanTraClusAtScale) {
  // The paper's Figure 5(d) shape: NEAT runs (much) faster than TraClus.
  // At unit-test scale we only require a clear win, not orders of magnitude.
  Config cfg;
  cfg.refine.epsilon = 900.0;
  Stopwatch watch;
  const Result neat_res = NeatClusterer(net, cfg).run(data);
  const double neat_s = watch.elapsed_seconds();
  watch.restart();
  traclus::Config tcfg;
  tcfg.epsilon = 25.0;
  tcfg.min_lns = 5;
  const traclus::Result traclus_res = traclus::run(data, tcfg);
  const double traclus_s = watch.elapsed_seconds();
  EXPECT_LT(neat_s, traclus_s) << "NEAT should beat TraClus wall-clock";
  EXPECT_FALSE(neat_res.flow_clusters.empty());
  EXPECT_FALSE(traclus_res.segments.empty());
}

TEST_F(CityFixture, ModesAreConsistentPrefixes) {
  // base-NEAT, flow-NEAT and opt-NEAT agree on all shared phases.
  Config base_cfg;
  base_cfg.mode = Mode::kBase;
  Config flow_cfg;
  flow_cfg.mode = Mode::kFlow;
  Config opt_cfg;
  opt_cfg.refine.epsilon = 900.0;
  const NeatClusterer base_run(net, base_cfg);
  const NeatClusterer flow_run(net, flow_cfg);
  const NeatClusterer opt_run(net, opt_cfg);
  const Result b = base_run.run(data);
  const Result f = flow_run.run(data);
  const Result o = opt_run.run(data);
  ASSERT_EQ(b.base_clusters.size(), f.base_clusters.size());
  ASSERT_EQ(f.flow_clusters.size(), o.flow_clusters.size());
  for (std::size_t i = 0; i < f.flow_clusters.size(); ++i) {
    EXPECT_EQ(f.flow_clusters[i].route, o.flow_clusters[i].route);
  }
  for (std::size_t i = 0; i < b.base_clusters.size(); ++i) {
    EXPECT_EQ(b.base_clusters[i].sid(), f.base_clusters[i].sid());
    EXPECT_EQ(b.base_clusters[i].density(), f.base_clusters[i].density());
  }
}

TEST_F(CityFixture, WeightsProduceDifferentButValidClusterings) {
  // Ablation: different SF presets change the flows but never break the
  // route-validity invariant.
  for (const auto& [wq, wk, wv] :
       {std::tuple{1.0, 0.0, 0.0}, std::tuple{0.0, 1.0, 0.0}, std::tuple{0.0, 0.0, 1.0},
        std::tuple{1.0 / 3, 1.0 / 3, 1.0 / 3}, std::tuple{0.5, 0.5, 0.0}}) {
    Config cfg;
    cfg.mode = Mode::kFlow;
    cfg.flow.wq = wq;
    cfg.flow.wk = wk;
    cfg.flow.wv = wv;
    const Result res = NeatClusterer(net, cfg).run(data);
    ASSERT_FALSE(res.flow_clusters.empty());
    for (const FlowCluster& f : res.flow_clusters) {
      for (std::size_t i = 1; i < f.route.size(); ++i) {
        ASSERT_TRUE(net.are_adjacent(f.route[i - 1], f.route[i]));
      }
    }
  }
}

}  // namespace
}  // namespace neat
