// Tests for the parallel Phase 1 path: bit-identical results to the serial
// run for any thread count, through both the Fragmenter API and the full
// clusterer.
#include <gtest/gtest.h>

#include "core/clusterer.h"
#include "core/fragmenter.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

namespace neat {
namespace {

void expect_identical(const Phase1Output& a, const Phase1Output& b) {
  EXPECT_EQ(a.num_fragments, b.num_fragments);
  EXPECT_EQ(a.num_gap_repairs, b.num_gap_repairs);
  ASSERT_EQ(a.base_clusters.size(), b.base_clusters.size());
  for (std::size_t i = 0; i < a.base_clusters.size(); ++i) {
    const BaseCluster& ca = a.base_clusters[i];
    const BaseCluster& cb = b.base_clusters[i];
    EXPECT_EQ(ca.sid(), cb.sid());
    EXPECT_EQ(ca.density(), cb.density());
    EXPECT_EQ(ca.participants(), cb.participants());
    ASSERT_EQ(ca.fragments().size(), cb.fragments().size());
    for (std::size_t f = 0; f < ca.fragments().size(); ++f) {
      EXPECT_EQ(ca.fragments()[f].trid, cb.fragments()[f].trid);
      EXPECT_EQ(ca.fragments()[f].entry.pos, cb.fragments()[f].entry.pos);
      EXPECT_EQ(ca.fragments()[f].exit.pos, cb.fragments()[f].exit.pos);
      EXPECT_EQ(ca.fragments()[f].num_samples, cb.fragments()[f].num_samples);
    }
  }
}

class ParallelPhase1 : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelPhase1, IdenticalToSerial) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(60, 15);
  const Fragmenter fragmenter(net);
  const Phase1Output serial = fragmenter.build_base_clusters(data, 1);
  const Phase1Output parallel = fragmenter.build_base_clusters(data, GetParam());
  expect_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelPhase1, ::testing::Values(0u, 2u, 3u, 8u));

TEST(ParallelPhase1, MoreThreadsThanTrajectories) {
  const roadnet::RoadNetwork net = roadnet::make_grid(5, 5, 100.0);
  sim::SimConfig cfg;
  cfg.hotspots = {NodeId(0)};
  cfg.destinations = {NodeId(24)};
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, cfg).generate(3, 2);
  const Fragmenter fragmenter(net);
  expect_identical(fragmenter.build_base_clusters(data, 1),
                   fragmenter.build_base_clusters(data, 64));
}

TEST(ParallelPhase1, EmptyDataset) {
  const roadnet::RoadNetwork net = roadnet::make_grid(4, 4, 100.0);
  const Fragmenter fragmenter(net);
  const Phase1Output out = fragmenter.build_base_clusters(traj::TrajectoryDataset{}, 4);
  EXPECT_TRUE(out.base_clusters.empty());
  EXPECT_EQ(out.num_fragments, 0u);
}

TEST(ParallelPhase1, FullPipelineUnchanged) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(50, 19);
  Config serial_cfg;
  serial_cfg.refine.epsilon = 500.0;
  Config parallel_cfg = serial_cfg;
  parallel_cfg.phase1_threads = 4;
  const Result a = NeatClusterer(net, serial_cfg).run(data);
  const Result b = NeatClusterer(net, parallel_cfg).run(data);
  ASSERT_EQ(a.flow_clusters.size(), b.flow_clusters.size());
  for (std::size_t i = 0; i < a.flow_clusters.size(); ++i) {
    EXPECT_EQ(a.flow_clusters[i].route, b.flow_clusters[i].route);
    EXPECT_EQ(a.flow_clusters[i].participants, b.flow_clusters[i].participants);
  }
  ASSERT_EQ(a.final_clusters.size(), b.final_clusters.size());
  for (std::size_t i = 0; i < a.final_clusters.size(); ++i) {
    EXPECT_EQ(a.final_clusters[i].flows, b.final_clusters[i].flows);
  }
}

}  // namespace
}  // namespace neat
