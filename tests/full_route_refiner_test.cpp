// Tests for the full-route Hausdorff distance mode of Phase 3 (the
// refinement the paper's "first prototype" endpoint distance points
// toward), plus cross-mode properties: ELB soundness in both modes and
// ε-monotonicity of the refinement.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/clusterer.h"
#include "core/refiner.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

FlowCluster make_flow(const roadnet::RoadNetwork& net, const std::vector<SegmentId>& route,
                      NodeId first_junction) {
  FlowCluster f;
  f.route = route;
  f.junctions.push_back(first_junction);
  NodeId cur = first_junction;
  for (const SegmentId sid : route) {
    cur = net.other_endpoint(sid, cur);
    f.junctions.push_back(cur);
    f.route_length += net.segment_length(sid);
  }
  return f;
}

std::vector<FlowCluster> simulated_flows(const roadnet::RoadNetwork& net,
                                         std::size_t objects, std::uint64_t seed) {
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(objects, seed);
  Config cfg;
  cfg.mode = Mode::kFlow;
  cfg.flow.min_card = 1.0;
  return NeatClusterer(net, cfg).run(data).flow_clusters;
}

TEST(FullRouteDistance, DistinguishesSharedEndpointsFromSharedRoutes) {
  // Two L-shaped flows on a grid share both endpoints but run along
  // opposite sides of the block: endpoint distance 0, full-route distance
  // equal to the detour between the far corners.
  const roadnet::RoadNetwork net = roadnet::make_grid(3, 3, 100.0);
  // Nodes: row-major; flow A: 0 -> 1 -> 2 -> 5 -> 8; flow B: 0 -> 3 -> 6 -> 7 -> 8.
  const auto seg = [&](int a, int b) { return testutil::find_segment(net, NodeId(a), NodeId(b)); };
  const FlowCluster a =
      make_flow(net, {seg(0, 1), seg(1, 2), seg(2, 5), seg(5, 8)}, NodeId(0));
  const FlowCluster b =
      make_flow(net, {seg(0, 3), seg(3, 6), seg(6, 7), seg(7, 8)}, NodeId(0));

  RefineConfig endpoint_cfg;
  endpoint_cfg.epsilon = 1000.0;
  endpoint_cfg.distance_mode = FlowDistanceMode::kEndpoints;
  RefineConfig route_cfg = endpoint_cfg;
  route_cfg.distance_mode = FlowDistanceMode::kFullRoute;

  EXPECT_DOUBLE_EQ(Refiner(net, endpoint_cfg).flow_distance(a, b), 0.0);
  // Corner 2 of flow A is 2 grid hops from flow B's nearest junction.
  EXPECT_DOUBLE_EQ(Refiner(net, route_cfg).flow_distance(a, b), 200.0);
}

TEST(FullRouteDistance, ZeroForIdenticalRoutes) {
  const roadnet::RoadNetwork net = testutil::line_network(5);
  const FlowCluster f = make_flow(net, {SegmentId(1), SegmentId(2)}, NodeId(1));
  RefineConfig cfg;
  cfg.distance_mode = FlowDistanceMode::kFullRoute;
  EXPECT_DOUBLE_EQ(Refiner(net, cfg).flow_distance(f, f), 0.0);
}

TEST(FullRouteDistance, SymmetricAndAtLeastEndpointDistanceIsFalse) {
  // Note: the full-route value is NOT always >= the endpoint value — the
  // endpoint Hausdorff can exceed it when route interiors interleave — but
  // symmetry must always hold.
  const roadnet::RoadNetwork net = testutil::line_network(12);
  const FlowCluster a = make_flow(net, {SegmentId(0), SegmentId(1), SegmentId(2)}, NodeId(0));
  const FlowCluster b = make_flow(net, {SegmentId(4), SegmentId(5)}, NodeId(4));
  RefineConfig cfg;
  cfg.epsilon = 5000.0;
  cfg.distance_mode = FlowDistanceMode::kFullRoute;
  const Refiner refiner(net, cfg);
  EXPECT_DOUBLE_EQ(refiner.flow_distance(a, b), refiner.flow_distance(b, a));
}

TEST(FullRouteDistance, HandComputedOnLine) {
  // a covers segments 0-2 (junctions 0..3), b covers 5-6 (junctions 5..7).
  // Directed a->b: worst junction is 0 at distance 500. Directed b->a:
  // worst is 7 at distance 400. Full-route Hausdorff = 500.
  const roadnet::RoadNetwork net = testutil::line_network(12);
  const FlowCluster a = make_flow(net, {SegmentId(0), SegmentId(1), SegmentId(2)}, NodeId(0));
  const FlowCluster b = make_flow(net, {SegmentId(5), SegmentId(6)}, NodeId(5));
  RefineConfig cfg;
  cfg.epsilon = 5000.0;
  cfg.distance_mode = FlowDistanceMode::kFullRoute;
  EXPECT_DOUBLE_EQ(Refiner(net, cfg).flow_distance(a, b), 500.0);
}

TEST(FullRouteDistance, EuclideanKeyIsLowerBound) {
  const roadnet::RoadNetwork net = roadnet::make_grid(9, 9, 100.0);
  const std::vector<FlowCluster> flows = simulated_flows(net, 50, 17);
  ASSERT_GE(flows.size(), 2u);
  RefineConfig cfg;
  cfg.epsilon = 1e9;  // unbounded evaluation for the property check
  cfg.distance_mode = FlowDistanceMode::kFullRoute;
  const Refiner refiner(net, cfg);
  for (std::size_t i = 0; i < std::min<std::size_t>(flows.size(), 6); ++i) {
    for (std::size_t j = i + 1; j < std::min<std::size_t>(flows.size(), 6); ++j) {
      EXPECT_LE(refiner.euclidean_route_hausdorff(flows[i], flows[j]),
                refiner.flow_distance(flows[i], flows[j]) + 1e-9);
    }
  }
}

TEST(FullRouteRefine, ElbOnOffIdenticalClusters) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const std::vector<FlowCluster> flows = simulated_flows(net, 60, 23);
  ASSERT_GT(flows.size(), 3u);
  RefineConfig with;
  with.epsilon = 400.0;
  with.distance_mode = FlowDistanceMode::kFullRoute;
  with.use_elb = true;
  RefineConfig without = with;
  without.use_elb = false;
  const Phase3Output a = Refiner(net, with).refine(flows);
  const Phase3Output b = Refiner(net, without).refine(flows);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].flows, b.clusters[i].flows);
  }
  EXPECT_LE(a.sp_computations, b.sp_computations);
}

TEST(FullRouteRefine, StricterThanEndpointsOnSharedHotspots) {
  // Flows fan out of the same hotspots, so endpoint distances are tiny and
  // endpoint-mode merges aggressively; full-route mode demands whole-route
  // proximity and therefore produces at least as many clusters.
  const roadnet::RoadNetwork net = roadnet::make_grid(12, 12, 100.0);
  const std::vector<FlowCluster> flows = simulated_flows(net, 80, 29);
  ASSERT_GT(flows.size(), 3u);
  RefineConfig endpoints;
  endpoints.epsilon = 500.0;
  RefineConfig full = endpoints;
  full.distance_mode = FlowDistanceMode::kFullRoute;
  const Phase3Output by_endpoints = Refiner(net, endpoints).refine(flows);
  const Phase3Output by_route = Refiner(net, full).refine(flows);
  EXPECT_GE(by_route.clusters.size(), by_endpoints.clusters.size());
}

// Property: with min_pts = 1 the refinement's merge graph only gains edges
// as ε grows, so the number of final clusters is non-increasing in ε.
class EpsilonMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(EpsilonMonotonicity, ClusterCountNonIncreasing) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const std::vector<FlowCluster> flows =
      simulated_flows(net, 50, static_cast<std::uint64_t>(GetParam()) + 41);
  ASSERT_GT(flows.size(), 2u);
  const FlowDistanceMode mode =
      GetParam() % 2 == 0 ? FlowDistanceMode::kEndpoints : FlowDistanceMode::kFullRoute;
  std::size_t prev = flows.size() + 1;
  for (const double eps : {100.0, 300.0, 600.0, 1200.0, 2400.0}) {
    RefineConfig cfg;
    cfg.epsilon = eps;
    cfg.distance_mode = mode;
    const Phase3Output out = Refiner(net, cfg).refine(flows);
    EXPECT_LE(out.clusters.size(), prev) << "eps = " << eps;
    prev = out.clusters.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpsilonMonotonicity, ::testing::Range(0, 6));

}  // namespace
}  // namespace neat
