// Tests for the TraClus baseline: the three-component segment distance on
// hand-computed configurations, MDL partitioning on canonical shapes,
// DBSCAN grouping, representative trajectories, and the full pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "traclus/grouping.h"
#include "traclus/partition.h"
#include "traclus/representative.h"
#include "traclus/segment_distance.h"
#include "traclus/traclus.h"
#include "traj/dataset.h"

namespace neat::traclus {
namespace {

traj::Trajectory make_traj(std::int64_t id, const std::vector<Point>& pts) {
  traj::Trajectory tr{TrajectoryId(id)};
  double t = 0.0;
  for (const Point p : pts) {
    tr.append(traj::Location{SegmentId(0), p, t, false});
    t += 1.0;
  }
  return tr;
}

// --- segment distance ---------------------------------------------------------

TEST(SegmentDistance, ParallelOffsetSegments) {
  // Li = (0,0)-(10,0); Lj = (2,3)-(8,3): parallel, 3 above, fully inside.
  const DistanceComponents d = segment_distance({0, 0}, {10, 0}, {2, 3}, {8, 3});
  EXPECT_DOUBLE_EQ(d.perpendicular, 3.0);  // Lehmer mean of (3, 3)
  EXPECT_DOUBLE_EQ(d.parallel, 2.0);       // min overhang: min(2, 2) = 2
  EXPECT_DOUBLE_EQ(d.angular, 0.0);
}

TEST(SegmentDistance, IdenticalSegmentsAreZero) {
  const DistanceComponents d = segment_distance({0, 0}, {10, 0}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(d.total(), 0.0);
}

TEST(SegmentDistance, PerpendicularLehmerMean) {
  // Lj endpoints at heights 3 and 6: (9 + 36) / (3 + 6) = 5.
  const DistanceComponents d = segment_distance({0, 0}, {10, 0}, {4, 3}, {6, 6});
  EXPECT_DOUBLE_EQ(d.perpendicular, 5.0);
}

TEST(SegmentDistance, AngularComponent) {
  // Lj has length 2 at 30 degrees: d_theta = 2 * sin(30°) = 1.
  const double c30 = std::cos(M_PI / 6);
  const double s30 = std::sin(M_PI / 6);
  const DistanceComponents d =
      segment_distance({0, 0}, {10, 0}, {0, 0}, {2 * c30, 2 * s30});
  EXPECT_NEAR(d.angular, 1.0, 1e-12);
}

TEST(SegmentDistance, OppositeDirectionUsesFullLength) {
  // Lj points backwards: angular distance = |Lj| = 4.
  const DistanceComponents d = segment_distance({0, 0}, {10, 0}, {8, 1}, {4, 1});
  EXPECT_DOUBLE_EQ(d.angular, 4.0);
}

TEST(SegmentDistance, SymmetricInArguments) {
  const DistanceComponents ab = segment_distance({0, 0}, {10, 0}, {2, 3}, {7, 5});
  const DistanceComponents ba = segment_distance({2, 3}, {7, 5}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(ab.perpendicular, ba.perpendicular);
  EXPECT_DOUBLE_EQ(ab.parallel, ba.parallel);
  EXPECT_DOUBLE_EQ(ab.angular, ba.angular);
}

TEST(SegmentDistance, DegeneratePointSegment) {
  const DistanceComponents d = segment_distance({0, 0}, {10, 0}, {5, 4}, {5, 4});
  EXPECT_DOUBLE_EQ(d.perpendicular, 4.0);
  EXPECT_DOUBLE_EQ(d.angular, 0.0);
}

TEST(SegmentDistance, WeightedTotal) {
  const DistanceComponents d{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(d.total(), 6.0);
  EXPECT_DOUBLE_EQ(d.total(2.0, 0.5, 1.0), 6.0);
}

// --- MDL partitioning -----------------------------------------------------------

TEST(Partition, StraightLineKeepsOnlyEndpoints) {
  std::vector<Point> pts;
  for (int i = 0; i <= 20; ++i) pts.push_back({i * 10.0, 0.0});
  const auto marks = characteristic_indices(pts);
  EXPECT_EQ(marks.front(), 0u);
  EXPECT_EQ(marks.back(), 20u);
  EXPECT_LE(marks.size(), 3u) << "a straight line needs no interior characteristic points";
}

TEST(Partition, SharpCornerDetected) {
  // An L shape: right for 10 steps, then up for 10 steps.
  std::vector<Point> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({i * 20.0, 0.0});
  for (int i = 1; i <= 10; ++i) pts.push_back({200.0, i * 20.0});
  const auto marks = characteristic_indices(pts);
  // Some characteristic point within 1 step of the corner (index 10).
  const bool corner_found = std::any_of(marks.begin(), marks.end(), [](std::size_t m) {
    return m >= 9 && m <= 11;
  });
  EXPECT_TRUE(corner_found) << "the 90-degree turn must be a characteristic point";
}

TEST(Partition, ShortInputsReturnedVerbatim) {
  EXPECT_EQ(characteristic_indices({}).size(), 0u);
  EXPECT_EQ(characteristic_indices({{0, 0}}).size(), 1u);
  EXPECT_EQ(characteristic_indices({{0, 0}, {1, 1}}),
            (std::vector<std::size_t>{0, 1}));
}

TEST(Partition, DatasetPartitionTagsTrajectories) {
  traj::TrajectoryDataset data;
  data.add(make_traj(5, {{0, 0}, {100, 0}, {200, 0}}));
  data.add(make_traj(9, {{0, 50}, {100, 50}}));
  const auto segs = partition_dataset(data, true);
  ASSERT_GE(segs.size(), 2u);
  for (const LineSeg& s : segs) {
    EXPECT_TRUE(s.trid == TrajectoryId(5) || s.trid == TrajectoryId(9));
    EXPECT_GT(s.length(), 0.0);
  }
}

TEST(Partition, NoMdlKeepsEveryHop) {
  traj::TrajectoryDataset data;
  data.add(make_traj(1, {{0, 0}, {10, 0}, {20, 0}, {30, 0}}));
  EXPECT_EQ(partition_dataset(data, false).size(), 3u);
  // Zero-length hops are skipped.
  traj::TrajectoryDataset dup;
  dup.add(make_traj(2, {{0, 0}, {0, 0}, {10, 0}}));
  EXPECT_EQ(partition_dataset(dup, false).size(), 1u);
}

// --- grouping -------------------------------------------------------------------

std::vector<LineSeg> bundle_and_outlier() {
  // 6 nearly identical horizontal segments (a dense bundle, distinct
  // trajectories) plus one far-away outlier.
  std::vector<LineSeg> segs;
  for (int i = 0; i < 6; ++i) {
    segs.push_back(LineSeg{{0.0, i * 1.0}, {100.0, i * 1.0}, TrajectoryId(i)});
  }
  segs.push_back(LineSeg{{0.0, 500.0}, {100.0, 500.0}, TrajectoryId(99)});
  return segs;
}

TEST(Grouping, BundleClustersOutlierIsNoise) {
  GroupingConfig cfg;
  cfg.epsilon = 10.0;
  cfg.min_lns = 3;
  const GroupingResult res = group_segments(bundle_and_outlier(), cfg);
  EXPECT_EQ(res.num_clusters, 1u);
  EXPECT_EQ(res.noise_segments, 1u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(res.labels[static_cast<std::size_t>(i)], 0);
  EXPECT_EQ(res.labels[6], -1);
}

TEST(Grouping, MinLnsGate) {
  GroupingConfig cfg;
  cfg.epsilon = 10.0;
  cfg.min_lns = 8;  // bundle of 6 cannot reach core status
  const GroupingResult res = group_segments(bundle_and_outlier(), cfg);
  EXPECT_EQ(res.num_clusters, 0u);
  EXPECT_EQ(res.noise_segments, 7u);
}

TEST(Grouping, TrajectoryCardinalityCheckDropsSingleTrajectoryClusters) {
  // A dense bundle contributed by ONE trajectory only: passes density but
  // must be dropped by the trajectory-cardinality check.
  std::vector<LineSeg> segs;
  for (int i = 0; i < 6; ++i) {
    segs.push_back(LineSeg{{0.0, i * 1.0}, {100.0, i * 1.0}, TrajectoryId(1)});
  }
  GroupingConfig cfg;
  cfg.epsilon = 10.0;
  cfg.min_lns = 3;
  const GroupingResult res = group_segments(segs, cfg);
  EXPECT_EQ(res.num_clusters, 0u);
}

TEST(Grouping, EmptyInputAndValidation) {
  GroupingConfig cfg;
  EXPECT_EQ(group_segments({}, cfg).num_clusters, 0u);
  cfg.epsilon = -1.0;
  EXPECT_THROW(group_segments({}, cfg), PreconditionError);
  cfg = GroupingConfig{};
  cfg.min_lns = 0;
  EXPECT_THROW(group_segments({}, cfg), PreconditionError);
}

TEST(Grouping, ZeroSpatialWeightFallsBackToFullScan) {
  // With w_perp = 0 no spatial bound exists; the grid must degrade to a
  // full scan (bounded by the occupied extent) rather than miss neighbours
  // or hang. Two parallel bundles far apart but with tiny angular distance:
  // under (0, 0, 1) weights they are *all* within epsilon of each other.
  std::vector<LineSeg> segs;
  for (int i = 0; i < 4; ++i) {
    segs.push_back(LineSeg{{0.0, i * 1.0}, {100.0, i * 1.0}, TrajectoryId(i)});
    segs.push_back(LineSeg{{5000.0, i * 1.0}, {5100.0, i * 1.0}, TrajectoryId(10 + i)});
  }
  GroupingConfig cfg;
  cfg.epsilon = 5.0;
  cfg.min_lns = 3;
  cfg.w_perp = 0.0;
  cfg.w_par = 0.0;
  cfg.w_ang = 1.0;
  const GroupingResult res = group_segments(segs, cfg);
  // All segments are parallel: angular distance 0 everywhere -> one cluster.
  EXPECT_EQ(res.num_clusters, 1u);
  for (const int label : res.labels) EXPECT_EQ(label, 0);
}

TEST(Grouping, CountsDistanceComputations) {
  GroupingConfig cfg;
  cfg.epsilon = 10.0;
  cfg.min_lns = 3;
  const GroupingResult res = group_segments(bundle_and_outlier(), cfg);
  EXPECT_GT(res.distance_computations, 0u);
}

// --- representative trajectory -----------------------------------------------

TEST(Representative, BundleAveragesToCenterline) {
  std::vector<LineSeg> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(LineSeg{{0.0, i * 2.0}, {100.0, i * 2.0}, TrajectoryId(i)});
  }
  const std::vector<Point> rep = representative_trajectory(members, 3, 5.0);
  ASSERT_GE(rep.size(), 2u);
  for (const Point p : rep) {
    EXPECT_NEAR(p.y, 4.0, 1e-6) << "representative must run through the bundle center";
  }
  EXPECT_NEAR(polyline_length(rep), 100.0, 1.0);
}

TEST(Representative, MixedDirectionsStillAlign) {
  // Half the segments point backwards; the average direction logic flips
  // them so they reinforce.
  std::vector<LineSeg> members;
  for (int i = 0; i < 4; ++i) {
    if (i % 2 == 0) {
      members.push_back(LineSeg{{0.0, i * 1.0}, {100.0, i * 1.0}, TrajectoryId(i)});
    } else {
      members.push_back(LineSeg{{100.0, i * 1.0}, {0.0, i * 1.0}, TrajectoryId(i)});
    }
  }
  const std::vector<Point> rep = representative_trajectory(members, 2, 5.0);
  EXPECT_GE(rep.size(), 2u);
}

TEST(Representative, InsufficientOverlapGivesEmpty) {
  // Two segments that never overlap in X': sweep count stays below MinLns.
  std::vector<LineSeg> members{
      LineSeg{{0, 0}, {10, 0}, TrajectoryId(1)},
      LineSeg{{100, 0}, {110, 0}, TrajectoryId(2)},
  };
  EXPECT_TRUE(representative_trajectory(members, 2, 1.0).empty());
  EXPECT_TRUE(representative_trajectory({}, 2, 1.0).empty());
}

TEST(Representative, GammaControlsPointSpacing) {
  std::vector<LineSeg> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(
        LineSeg{{i * 1.0, 0.0}, {100.0 + i * 1.0, 0.0}, TrajectoryId(i)});
  }
  const auto coarse = representative_trajectory(members, 3, 50.0);
  const auto fine = representative_trajectory(members, 3, 1.0);
  EXPECT_LT(coarse.size(), fine.size());
}

// --- full pipeline ----------------------------------------------------------------

TEST(TraClusRun, EndToEndOnSyntheticBundles) {
  // Two spatially separated bundles of straight trajectories -> exactly two
  // clusters, each with a representative of roughly bundle length.
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int i = 0; i < 5; ++i) {
    data.add(make_traj(++id, {{0.0, i * 2.0}, {150.0, i * 2.0}, {300.0, i * 2.0}}));
  }
  for (int i = 0; i < 5; ++i) {
    data.add(make_traj(++id, {{0.0, 1000.0 + i * 2.0}, {150.0, 1000.0 + i * 2.0},
                              {300.0, 1000.0 + i * 2.0}}));
  }
  Config cfg;
  cfg.epsilon = 15.0;
  cfg.min_lns = 3;
  const Result res = run(data, cfg);
  EXPECT_EQ(res.clusters.size(), 2u);
  for (const Cluster& c : res.clusters) {
    EXPECT_GE(c.trajectory_cardinality, 3);
    EXPECT_NEAR(c.representative_length, 300.0, 30.0);
  }
  EXPECT_GT(res.distance_computations, 0u);
}

TEST(TraClusRun, SmallEpsilonFragmentsClusters) {
  // The paper's Figure 4 observation: tighter (eps, MinLns) yields many more
  // (and shorter) clusters than the tuned setting.
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int i = 0; i < 6; ++i) {
    std::vector<Point> pts;
    // L-shaped trips with slight lateral offsets.
    for (int k = 0; k <= 6; ++k) pts.push_back({k * 50.0, i * 3.0});
    for (int k = 1; k <= 6; ++k) pts.push_back({300.0 + i * 3.0, k * 50.0});
    data.add(make_traj(++id, pts));
  }
  Config tuned;
  tuned.epsilon = 20.0;
  tuned.min_lns = 3;
  Config tight;
  tight.epsilon = 2.0;
  tight.min_lns = 1;
  const Result a = run(data, tuned);
  const Result b = run(data, tight);
  EXPECT_GE(b.clusters.size(), a.clusters.size());
}

}  // namespace
}  // namespace neat::traclus
