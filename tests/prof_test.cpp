// Tests for the sampling CPU profiler (src/obs/prof/).
//
// Carries the `concurrency` ctest label: the profiler's interesting failure
// modes are races between the SIGPROF handler, worker threads being
// sampled, and start/stop teardown, so CI runs this binary under TSan —
// including one test that profiles straight through a ParallelRefiner run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/clusterer.h"
#include "obs/http_exporter.h"
#include "obs/prof/profiler.h"
#include "obs/prof/ring.h"
#include "obs/prof/symbolize.h"
#include "obs/registry.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

namespace neat::obs::prof {
namespace {

/// Burns roughly `ms` of wall time in a named, non-inlined frame so the
/// profiler has something attributable to sample. Returns the accumulated
/// junk so the loop cannot be optimized away.
__attribute__((noinline)) std::uint64_t burn_cpu_for_test(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::uint64_t acc = 1;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 10000; ++i) acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

/// Every folded line must be `frame;frame;...;frame count` with non-empty
/// frames and a positive integer count.
void expect_well_formed_folded(const std::string& folded) {
  const std::regex line_re(R"(^.+ \d+$)");
  std::istringstream in(folded);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad folded line: " << line;
    const std::string frames = line.substr(0, line.rfind(' '));
    ASSERT_FALSE(frames.empty());
    EXPECT_NE(frames.front(), ';');
    EXPECT_NE(frames.back(), ';');
    EXPECT_EQ(frames.find(";;"), std::string::npos) << "empty frame in: " << line;
  }
  EXPECT_GT(lines, 0u);
}

TEST(Profiler, StopWithoutStartIsEmptyAndIdempotent) {
  Profiler& p = Profiler::global();
  EXPECT_FALSE(p.active());
  const Profile empty = p.stop();
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_TRUE(empty.stacks.empty());
  const Profile again = p.stop();
  EXPECT_EQ(again.samples, 0u);
}

TEST(Profiler, DoubleStartReturnsFalse) {
  Profiler& p = Profiler::global();
  ASSERT_TRUE(p.start());
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(p.start());  // already running: busy, not an error
  EXPECT_TRUE(p.active());
  const Profile profile = p.stop();
  EXPECT_FALSE(p.active());
  static_cast<void>(profile);
}

TEST(Profiler, CapturesBusyWorkAndFoldsWellFormed) {
  ProfilerOptions opts;
  opts.sample_hz = 997;  // dense sampling so a short burn yields samples
  const Profile profile =
      profile_call([] { static_cast<void>(burn_cpu_for_test(400)); }, opts);
  EXPECT_GT(profile.samples, 0u);
  EXPECT_GE(profile.threads_seen, 1u);
  EXPECT_GT(profile.duration_s, 0.0);
  EXPECT_EQ(profile.sample_hz, 997);
  ASSERT_FALSE(profile.stacks.empty());
  for (const ProfileStack& s : profile.stacks) {
    EXPECT_GE(s.pcs.size(), 1u);
    EXPECT_LE(s.pcs.size(), kMaxFrames);
    EXPECT_GT(s.count, 0u);
  }
  expect_well_formed_folded(profile.to_folded());
}

TEST(Profiler, HotSymbolsReportInclusivePercentages) {
  ProfilerOptions opts;
  opts.sample_hz = 997;
  const Profile profile =
      profile_call([] { static_cast<void>(burn_cpu_for_test(400)); }, opts);
  ASSERT_GT(profile.samples, 0u);
  const std::vector<HotSymbol> top = profile.hot_symbols(5);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 5u);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_FALSE(top[i].symbol.empty());
    EXPECT_GT(top[i].inclusive_pct, 0.0);
    EXPECT_LE(top[i].inclusive_pct, 100.0);
    if (i > 0) {
      EXPECT_LE(top[i].inclusive_pct, top[i - 1].inclusive_pct);
    }
  }
}

TEST(Profile, HexFallbackForUnmappedFrames) {
  // A hand-built profile whose pcs point nowhere any mapping or symbol
  // lives: folding must fall back to bare hex, never crash or drop frames.
  Profile profile;
  profile.samples = 3;
  profile.stacks.push_back({{0x1, 0x2}, 3});
  const std::string folded = profile.to_folded();
  expect_well_formed_folded(folded);
  EXPECT_NE(folded.find("0x"), std::string::npos);
  EXPECT_DOUBLE_EQ(profile.symbolized_fraction(), 0.0);
  EXPECT_TRUE(Symbolizer::is_hex("0x2"));
  EXPECT_FALSE(Symbolizer::is_hex("main"));
}

TEST(Profiler, TinyRingOverflowDropsWithoutCorruption) {
  const std::uint64_t dropped_before =
      Registry::global().counter_value("neat_obs_prof_dropped_total");
  ProfilerOptions opts;
  opts.sample_hz = 4000;  // flood
  opts.ring_slots = 2;    // minimum ring: overflow is certain
  const Profile profile =
      profile_call([] { static_cast<void>(burn_cpu_for_test(500)); }, opts);
  EXPECT_GT(profile.samples, 0u);
  EXPECT_GT(profile.dropped, 0u);
  // Whatever survived the overflow must still be structurally sound.
  for (const ProfileStack& s : profile.stacks) {
    EXPECT_GE(s.pcs.size(), 1u);
    EXPECT_LE(s.pcs.size(), kMaxFrames);
    EXPECT_GT(s.count, 0u);
    for (const std::uintptr_t pc : s.pcs) EXPECT_NE(pc, 0u);
  }
  EXPECT_GE(Registry::global().counter_value("neat_obs_prof_dropped_total"),
            dropped_before + profile.dropped);
}

TEST(Profiler, StatusJsonTracksSessionState) {
  Profiler& p = Profiler::global();
  ASSERT_TRUE(p.start());
  EXPECT_NE(p.status_json().find("\"active\":true"), std::string::npos);
  static_cast<void>(burn_cpu_for_test(50));
  const Profile profile = p.stop();
  const std::string idle = p.status_json();
  EXPECT_NE(idle.find("\"active\":false"), std::string::npos);
  EXPECT_NE(idle.find("\"samples\":"), std::string::npos);
  EXPECT_NE(idle.find("\"dropped\":"), std::string::npos);
  EXPECT_NE(idle.find("\"threads_seen\":"), std::string::npos);
  static_cast<void>(profile);
}

// The profiler sampling straight through a ParallelRefiner run: worker
// threads are created and joined while SIGPROF fires across them. Under
// TSan this exercises handler-vs-thread-lifecycle races; the run must
// produce the same clusters as an unprofiled one.
TEST(Profiler, ConcurrentWithParallelRefiner) {
  roadnet::CityParams params;
  params.rows = 12;
  params.cols = 12;
  params.seed = 3;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const sim::SimConfig scfg = sim::default_config(net, 2, 2);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(net, scfg).generate(80, 9);
  Config cfg;
  cfg.refine.epsilon = 2500.0;
  cfg.refine.use_elb = false;  // keep Phase 3 busy enough to be sampled
  cfg.refine.threads = 4;
  const Result baseline = NeatClusterer(net, cfg).run(data);

  ProfilerOptions opts;
  opts.sample_hz = 997;
  Result profiled_result;
  const Profile profile = profile_call(
      [&] { profiled_result = NeatClusterer(net, cfg).run(data); }, opts);
  EXPECT_EQ(profiled_result.final_clusters.size(), baseline.final_clusters.size());
  EXPECT_EQ(profiled_result.flow_clusters.size(), baseline.flow_clusters.size());
  if (profile.samples > 0) expect_well_formed_folded(profile.to_folded());
}

TEST(HttpExporterProfilez, BusySessionAnswers409) {
  Registry registry;
  HttpExporterOptions opts;
  HttpExporter exporter(registry, opts);
  ASSERT_TRUE(Profiler::global().start());
  const std::string response = exporter.handle("GET", "/profilez?seconds=1");
  EXPECT_NE(response.find("409"), std::string::npos);
  EXPECT_NE(response.find("profiler_busy"), std::string::npos);
  static_cast<void>(Profiler::global().stop());
  exporter.stop();
}

TEST(HttpExporterProfilez, MalformedParametersAnswer400) {
  Registry registry;
  HttpExporter exporter(registry, {});
  for (const char* target :
       {"/profilez?seconds=abc", "/profilez?seconds=-1", "/profilez?seconds=0",
        "/profilez?seconds=1e9", "/profilez?hz=0", "/profilez?hz=abc"}) {
    const std::string response = exporter.handle("GET", target);
    EXPECT_NE(response.find("400"), std::string::npos) << target;
    EXPECT_NE(response.find("invalid_parameter"), std::string::npos) << target;
  }
  exporter.stop();
}

TEST(HttpExporterProfilez, ShortRunStreamsFoldedProfile) {
  Registry registry;
  HttpExporter exporter(registry, {});
  // Keep a core busy while the handler's session runs so the process CPU
  // clock advances and samples exist.
  std::atomic<bool> done{false};
  std::thread burner([&] {
    while (!done.load(std::memory_order_acquire)) {
      static_cast<void>(burn_cpu_for_test(10));
    }
  });
  const std::string response =
      exporter.handle("GET", "/profilez?seconds=0.3&hz=997");
  done.store(true, std::memory_order_release);
  burner.join();
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_FALSE(body.empty());
  if (body.rfind("# no samples", 0) != 0) expect_well_formed_folded(body);
  exporter.stop();
}

TEST(HttpExporterProfilez, StatuszCarriesProfilerSection) {
  Registry registry;
  HttpExporter exporter(registry, {});
  const std::string response = exporter.handle("GET", "/statusz");
  EXPECT_NE(response.find("\"profiler\":"), std::string::npos);
  EXPECT_NE(response.find("\"active\":"), std::string::npos);
  exporter.stop();
}

}  // namespace
}  // namespace neat::obs::prof
