// Property tests over seeded random networks: the algebraic guarantees the
// Phase 3 acceleration layer rests on. For many (network, node-pair) samples:
//  * lower-bound soundness: d_E(s, t) <= landmark bound <= d_N(s, t);
//  * symmetry: d_N(s, t) == d_N(t, s) (undirected network distance);
//  * triangle inequality: d_N(s, t) <= d_N(s, u) + d_N(u, t);
//  * ALT exactness: A* with the landmark potential returns the Dijkstra
//    distance while settling no more nodes;
//  * the one-to-many batch agrees with individual queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/geometry.h"
#include "roadnet/generators.h"
#include "roadnet/landmark_oracle.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace neat::roadnet {
namespace {

// Deterministic sample of node pairs (with repetition allowed).
std::vector<std::pair<NodeId, NodeId>> sample_pairs(const RoadNetwork& net,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(net.node_count() - 1));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(NodeId(pick(rng)), NodeId(pick(rng)));
  }
  return pairs;
}

std::vector<RoadNetwork> sample_networks() {
  std::vector<RoadNetwork> nets;
  for (const std::uint64_t seed : {7u, 21u, 99u}) {
    CityParams p;
    p.rows = 12;
    p.cols = 12;
    p.seed = seed;
    nets.push_back(make_city(p));
  }
  RadialCityParams rp;
  rp.rings = 5;
  rp.spokes = 8;
  rp.seed = 3;
  nets.push_back(make_radial_city(rp));
  nets.push_back(make_grid(9, 9, 120.0));
  return nets;
}

TEST(LandmarkProperty, BoundsAreSandwichedBetweenEuclideanAndNetwork) {
  std::uint64_t seed = 1000;
  for (const RoadNetwork& net : sample_networks()) {
    const LandmarkOracle lm(net, 6);
    NodeDistanceOracle oracle(net);
    for (const auto& [s, t] : sample_pairs(net, 60, seed++)) {
      const double d_e = distance(net.node(s).pos, net.node(t).pos);
      const double bound = lm.lower_bound(s, t);
      const double d_n = oracle.distance(s, t);
      // Admissibility: the landmark bound never overshoots the true network
      // distance (equal-infinity for disconnected pairs is fine). The bound
      // is tight — equal to d_N when t lies on the landmark-to-s geodesic —
      // so allow summation-order rounding of the two Dijkstra totals.
      if (std::isfinite(d_n)) {
        EXPECT_LE(bound, d_n + 1e-6 * std::max(1.0, d_n))
            << "landmark bound must be admissible";
      }
      if (std::isfinite(d_n)) {
        // ELB soundness, independent of landmarks.
        EXPECT_LE(d_e, d_n + 1e-6) << "Euclidean distance must lower-bound d_N";
      }
    }
  }
}

TEST(LandmarkProperty, BoundIsOftenTighterThanEuclideanOnGrids) {
  // On a pure grid, network distance is Manhattan-like; the landmark bound
  // should beat the straight-line bound on a meaningful share of far pairs.
  const RoadNetwork net = make_grid(12, 12, 100.0);
  const LandmarkOracle lm(net, 8);
  std::size_t tighter = 0, total = 0;
  for (const auto& [s, t] : sample_pairs(net, 200, 42)) {
    if (s == t) continue;
    const double d_e = distance(net.node(s).pos, net.node(t).pos);
    const double bound = lm.lower_bound(s, t);
    ++total;
    if (bound > d_e + 1e-9) ++tighter;
  }
  EXPECT_GT(tighter * 4, total) << "landmark bound should beat ELB on >25% of grid pairs";
}

TEST(NetworkDistanceProperty, Symmetry) {
  std::uint64_t seed = 2000;
  for (const RoadNetwork& net : sample_networks()) {
    NodeDistanceOracle oracle(net);
    for (const auto& [s, t] : sample_pairs(net, 40, seed++)) {
      const double st = oracle.distance(s, t);
      const double ts = oracle.distance(t, s);
      if (std::isfinite(st) || std::isfinite(ts)) {
        EXPECT_NEAR(st, ts, 1e-6) << "undirected d_N must be symmetric";
      } else {
        EXPECT_EQ(std::isinf(st), std::isinf(ts));
      }
    }
  }
}

TEST(NetworkDistanceProperty, TriangleInequality) {
  std::uint64_t seed = 3000;
  for (const RoadNetwork& net : sample_networks()) {
    NodeDistanceOracle oracle(net);
    std::mt19937_64 rng(seed++);
    std::uniform_int_distribution<std::uint32_t> pick(
        0, static_cast<std::uint32_t>(net.node_count() - 1));
    for (int rep = 0; rep < 40; ++rep) {
      const NodeId s(pick(rng)), u(pick(rng)), t(pick(rng));
      const double st = oracle.distance(s, t);
      const double su = oracle.distance(s, u);
      const double ut = oracle.distance(u, t);
      if (std::isfinite(su) && std::isfinite(ut)) {
        EXPECT_LE(st, su + ut + 1e-6) << "d_N must satisfy the triangle inequality";
      }
    }
  }
}

TEST(LandmarkProperty, OracleBoundSatisfiesTriangleInequalityAndSymmetry) {
  std::uint64_t seed = 4000;
  for (const RoadNetwork& net : sample_networks()) {
    const LandmarkOracle lm(net, 6);
    std::mt19937_64 rng(seed++);
    std::uniform_int_distribution<std::uint32_t> pick(
        0, static_cast<std::uint32_t>(net.node_count() - 1));
    for (int rep = 0; rep < 60; ++rep) {
      const NodeId s(pick(rng)), u(pick(rng)), t(pick(rng));
      EXPECT_DOUBLE_EQ(lm.lower_bound(s, t), lm.lower_bound(t, s));
      EXPECT_DOUBLE_EQ(lm.lower_bound(s, s), 0.0);
      // |a-c| <= |a-b| + |b-c| landmark-wise, hence for the max as well when
      // all three bounds are finite.
      const double st = lm.lower_bound(s, t);
      const double su = lm.lower_bound(s, u);
      const double ut = lm.lower_bound(u, t);
      if (std::isfinite(su) && std::isfinite(ut)) {
        EXPECT_LE(st, su + ut + 1e-6);
      }
    }
  }
}

TEST(AltProperty, AStarReturnsExactDistancesWithFewerSettledNodes) {
  std::uint64_t seed = 5000;
  for (const RoadNetwork& net : sample_networks()) {
    const LandmarkOracle lm(net, 6);
    NodeDistanceOracle plain(net);
    NodeDistanceOracle steered(net);
    std::size_t plain_settled = 0, steered_settled = 0;
    for (const auto& [s, t] : sample_pairs(net, 40, seed++)) {
      const std::size_t p0 = plain.settled_nodes();
      const double d = plain.distance(s, t);
      plain_settled += plain.settled_nodes() - p0;
      const std::size_t s0 = steered.settled_nodes();
      const double a = steered.distance(s, t, kInfDistance, &lm);
      steered_settled += steered.settled_nodes() - s0;
      if (std::isfinite(d)) {
        EXPECT_NEAR(a, d, 1e-6) << "ALT A* must return the exact distance";
      } else {
        EXPECT_TRUE(std::isinf(a));
      }
    }
    EXPECT_LE(steered_settled, plain_settled)
        << "the ALT potential must never settle more nodes than plain Dijkstra";
  }
}

TEST(BatchProperty, OneToManyMatchesIndividualQueries) {
  std::uint64_t seed = 6000;
  for (const RoadNetwork& net : sample_networks()) {
    NodeDistanceOracle oracle(net);
    std::mt19937_64 rng(seed++);
    std::uniform_int_distribution<std::uint32_t> pick(
        0, static_cast<std::uint32_t>(net.node_count() - 1));
    for (int rep = 0; rep < 20; ++rep) {
      const NodeId s(pick(rng));
      std::vector<NodeId> targets;
      for (int k = 0; k < 5; ++k) targets.push_back(NodeId(pick(rng)));
      std::vector<double> batch(targets.size());
      const std::size_t before = oracle.computations();
      oracle.distances(s, targets, batch);
      EXPECT_EQ(oracle.computations(), before + 1) << "a batch is one computation";
      for (std::size_t k = 0; k < targets.size(); ++k) {
        // Same source, same Dijkstra relaxation order: bitwise equal.
        EXPECT_DOUBLE_EQ(batch[k], oracle.distance(s, targets[k]));
      }
      // distance_to_any == min over the batch.
      const double any = oracle.distance_to_any(s, targets);
      EXPECT_DOUBLE_EQ(any, *std::min_element(batch.begin(), batch.end()));
    }
  }
}

TEST(BatchProperty, BoundedBatchNeverUnderreportsReachableTargets) {
  const RoadNetwork net = make_grid(10, 10, 100.0);
  NodeDistanceOracle oracle(net);
  const std::vector<NodeId> targets{NodeId(5), NodeId(42), NodeId(99)};
  std::vector<double> exact(targets.size());
  oracle.distances(NodeId(0), targets, exact);
  std::vector<double> bounded(targets.size());
  oracle.distances(NodeId(0), targets, bounded, 500.0);
  for (std::size_t k = 0; k < targets.size(); ++k) {
    if (exact[k] <= 500.0) {
      EXPECT_DOUBLE_EQ(bounded[k], exact[k]) << "targets within the bound stay exact";
    } else {
      EXPECT_TRUE(std::isinf(bounded[k])) << "targets beyond the bound report +inf";
    }
  }
}

TEST(OracleEdgeCases, EmptyTargetSetReturnsInfWithoutSearching) {
  const RoadNetwork net = make_grid(4, 4, 100.0);
  NodeDistanceOracle oracle(net);
  const double d = oracle.distance_to_any(NodeId(0), {});
  EXPECT_TRUE(std::isinf(d));
  EXPECT_EQ(oracle.computations(), 0u) << "no Dijkstra run for an empty target set";
  EXPECT_EQ(oracle.settled_nodes(), 0u);
}

TEST(LandmarkOracleBasics, DeterministicSelectionAndSelfDistances) {
  const RoadNetwork net = make_grid(8, 8, 100.0);
  const LandmarkOracle a(net, 4);
  const LandmarkOracle b(net, 4);
  EXPECT_EQ(a.landmarks(), b.landmarks()) << "farthest-point selection is deterministic";
  EXPECT_EQ(a.landmark_count(), 4u);
  for (std::size_t i = 0; i < a.landmark_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.landmark_distance(i, a.landmarks()[i]), 0.0);
  }
}

}  // namespace
}  // namespace neat::roadnet
