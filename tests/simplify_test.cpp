// Tests for Douglas–Peucker trajectory simplification.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/fragmenter.h"
#include "test_util.h"
#include "traj/simplify.h"

namespace neat::traj {
namespace {

Location loc(std::int32_t sid, double x, double y, double t, bool junction = false) {
  return Location{SegmentId(sid), {x, y}, t, junction};
}

TEST(DouglasPeucker, CollinearCollapsesToEndpoints) {
  std::vector<Point> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({i * 10.0, 0.0});
  EXPECT_EQ(douglas_peucker_indices(pts, 1.0), (std::vector<std::size_t>{0, 10}));
  EXPECT_EQ(douglas_peucker_indices(pts, 0.0), (std::vector<std::size_t>{0, 10}));
}

TEST(DouglasPeucker, KeepsSalientCorner) {
  const std::vector<Point> pts{{0, 0}, {50, 0}, {100, 0}, {100, 50}, {100, 100}};
  const auto kept = douglas_peucker_indices(pts, 5.0);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[1], 2u);  // the corner at (100, 0)
}

TEST(DouglasPeucker, ToleranceControlsDetail) {
  // A sine-ish wiggle: higher tolerance keeps fewer points.
  std::vector<Point> pts;
  for (int i = 0; i <= 40; ++i) pts.push_back({i * 10.0, (i % 2 == 0) ? 0.0 : 8.0});
  const auto coarse = douglas_peucker_indices(pts, 10.0);
  const auto fine = douglas_peucker_indices(pts, 1.0);
  EXPECT_LT(coarse.size(), fine.size());
  EXPECT_EQ(coarse.front(), 0u);
  EXPECT_EQ(coarse.back(), 40u);
}

TEST(DouglasPeucker, ErrorBoundHolds) {
  // Property: every dropped point lies within tolerance of the simplified
  // polyline's corresponding chord.
  Rng rng(5);
  std::vector<Point> pts;
  double y = 0.0;
  for (int i = 0; i <= 80; ++i) {
    y += rng.uniform(-6.0, 6.0);
    pts.push_back({i * 12.0, y});
  }
  const double tolerance = 10.0;
  const auto kept = douglas_peucker_indices(pts, tolerance);
  for (std::size_t k = 1; k < kept.size(); ++k) {
    for (std::size_t i = kept[k - 1]; i <= kept[k]; ++i) {
      EXPECT_LE(point_segment_distance(pts[i], pts[kept[k - 1]], pts[kept[k]]),
                tolerance + 1e-9);
    }
  }
}

TEST(DouglasPeucker, TinyInputs) {
  EXPECT_TRUE(douglas_peucker_indices({}, 1.0).empty());
  EXPECT_EQ(douglas_peucker_indices({{1, 1}}, 1.0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(douglas_peucker_indices({{0, 0}, {5, 5}}, 1.0),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_THROW(douglas_peucker_indices({{0, 0}}, -1.0), PreconditionError);
}

TEST(Simplify, PreservesJunctionPoints) {
  Trajectory tr(TrajectoryId(1));
  tr.append(loc(0, 0, 0, 0.0));
  tr.append(loc(0, 50, 0, 1.0));
  tr.append(loc(0, 100, 0, 2.0, /*junction=*/true));  // collinear but protected
  tr.append(loc(1, 150, 0, 3.0));
  tr.append(loc(1, 200, 0, 4.0));
  const Trajectory slim = simplify(tr, 5.0);
  bool junction_kept = false;
  for (const Location& l : slim.points()) {
    if (l.junction_point) junction_kept = true;
  }
  EXPECT_TRUE(junction_kept);
  EXPECT_EQ(slim.front().pos, tr.front().pos);
  EXPECT_EQ(slim.back().pos, tr.back().pos);
  EXPECT_LE(slim.size(), tr.size());
}

TEST(Simplify, ShortTrajectoriesUntouched) {
  Trajectory tr(TrajectoryId(1));
  tr.append(loc(0, 0, 0, 0.0));
  tr.append(loc(0, 10, 0, 1.0));
  EXPECT_EQ(simplify(tr, 100.0).size(), 2u);
  EXPECT_THROW(simplify(tr, -1.0), PreconditionError);
}

TEST(Simplify, ComposesWithPhase1) {
  // Simplifying straight-road samples must not change the fragment
  // structure: same segments, same order.
  const roadnet::RoadNetwork net = testutil::line_network(4);
  Trajectory tr(TrajectoryId(9));
  double t = 0.0;
  for (int seg = 0; seg < 4; ++seg) {
    for (int i = 0; i < 5; ++i) {
      tr.append(loc(seg, seg * 100.0 + 10.0 + i * 18.0, 0.0, t));
      t += 1.0;
    }
  }
  const Fragmenter fragmenter(net);
  const auto before = fragmenter.fragment(tr);
  const auto after = fragmenter.fragment(simplify(tr, 2.0));
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].sid, after[i].sid);
  }
}

}  // namespace
}  // namespace neat::traj
