// Tests for the async structured logging plane (src/obs/log/).
//
// Carries the `concurrency` ctest label: the interesting failure modes are
// races between producer threads and the background writer (per-thread SPSC
// rings, drop-and-count under pressure), so CI runs this binary under TSan.
//
// Every assertion about emitted output goes through a capture sink (invoked
// from the writer thread only) plus a mini JSON validator, so "each line is
// one standalone JSON object" is checked literally, not by grep alone.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "obs/http_exporter.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::obs::log {
namespace {

// --- a minimal recursive-descent JSON validator (objects, arrays, strings,
// numbers, true/false/null). Enough to prove a log line is standalone,
// well-formed JSON without pulling in a parser dependency.

struct JsonCursor {
  std::string_view s;
  std::size_t i{0};

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(i, lit.size()) != lit) return false;
    i += lit.size();
    return true;
  }
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
        const char e = s[i];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (i >= s.size() || std::isxdigit(static_cast<unsigned char>(s[i])) == 0)
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s[i]) < 0x20) {
        return false;  // raw control character: the line is not valid JSON
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

bool json_valid(std::string_view line) {
  JsonCursor c{line, 0};
  if (!c.value()) return false;
  c.ws();
  return c.i == line.size();
}

/// Thread-safe line capture to attach as a logger sink. The writer thread
/// is the only producer; tests read after flush() under the same mutex.
struct Capture {
  std::mutex mu;
  std::vector<std::string> lines;

  Sink sink() {
    return [this](std::string_view line) {
      const std::lock_guard<std::mutex> lock(mu);
      lines.emplace_back(line);
    };
  }
  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> lock(mu);
    return lines;
  }
};

LoggerOptions quiet_options(Registry* reg) {
  LoggerOptions opt;
  opt.registry = reg;
  opt.rate_limit_window = std::chrono::milliseconds(0);
  return opt;
}

TEST(LogLevel, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(level_name(Level::kTrace), "trace");
  EXPECT_STREQ(level_name(Level::kError), "error");
  EXPECT_STREQ(level_name(Level::kOff), "off");
  for (const char* name : {"trace", "debug", "info", "warn", "error", "off"}) {
    const auto level = parse_level(name);
    ASSERT_TRUE(level.has_value()) << name;
    EXPECT_STREQ(level_name(*level), name);
  }
  EXPECT_FALSE(parse_level("verbose").has_value());
  EXPECT_FALSE(parse_level("").has_value());
  EXPECT_FALSE(parse_level("INFO").has_value());
}

TEST(Logger, FiltersBelowModuleLevel) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());

  { Statement s(logger, Level::kDebug, "core"); EXPECT_FALSE(s.active()); }
  { Statement s(logger, Level::kInfo, "core"); EXPECT_TRUE(s.active()); s.msg("kept"); }
  logger.flush();
  EXPECT_EQ(cap.snapshot().size(), 1u);

  // Flipping one module to debug does not open the floodgates elsewhere.
  logger.set_level("core", Level::kDebug);
  { Statement s(logger, Level::kDebug, "core"); EXPECT_TRUE(s.active()); s.msg("dbg"); }
  { Statement s(logger, Level::kDebug, "net"); EXPECT_FALSE(s.active()); }
  logger.flush();
  EXPECT_EQ(cap.snapshot().size(), 2u);

  // set_default_level flips existing modules too (the --log-level semantic).
  logger.set_default_level(Level::kError);
  EXPECT_EQ(logger.module("core").level(), Level::kError);
  EXPECT_EQ(logger.module("net").level(), Level::kError);
  { Statement s(logger, Level::kWarn, "core"); EXPECT_FALSE(s.active()); }
}

TEST(Logger, EmitsOneWellFormedJsonObjectPerLine) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());

  Statement(logger, Level::kInfo, "t")
      .msg("hello \"world\"\n")
      .kv("count", std::uint64_t{7})
      .kv("delta", -3)
      .kv("ratio", 0.5)
      .kv("bad", std::nan(""))
      .kv("ok", true)
      .kv("name", "a\"b");
  logger.flush();

  const auto lines = cap.snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_TRUE(json_valid(line)) << line;
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"module\":\"t\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"hello \\\"world\\\"\\n\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"count\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"delta\":-3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"bad\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"a\\\"b\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
}

TEST(Logger, CarriesAmbientTraceId) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());

  Statement(logger, Level::kInfo, "t").msg("no trace");
  {
    const TraceIdScope scope(42);
    Statement(logger, Level::kInfo, "t").msg("traced");
  }
  EXPECT_EQ(current_trace_id(), 0u);
  logger.flush();

  const auto lines = cap.snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("\"trace_id\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"trace_id\":42"), std::string::npos) << lines[1];
}

TEST(Logger, FullRingDropsAndCountsInsteadOfBlocking) {
  Registry reg;
  Capture cap;
  LoggerOptions opt = quiet_options(&reg);
  opt.ring_slots = 4;
  // A sweep period far beyond the test duration: the burst below must
  // overflow the ring rather than race the writer's drain.
  opt.poll_period = std::chrono::milliseconds(10000);
  Logger logger(opt);
  logger.set_sink(cap.sink());

  constexpr std::uint64_t kTotal = 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    Statement(logger, Level::kInfo, "t").msg("burst").kv("i", i);
  }
  logger.flush();

  EXPECT_GT(logger.dropped(), 0u);
  EXPECT_EQ(logger.lines() + logger.dropped(), kTotal);
  EXPECT_EQ(cap.snapshot().size(), logger.lines());
  EXPECT_EQ(reg.counter_value("neat_obs_log_dropped_total", {{"module", "t"}}),
            logger.dropped());
  for (const std::string& line : cap.snapshot()) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
}

TEST(Logger, SuppressesRepeatsAndSummarizes) {
  Registry reg;
  Capture cap;
  LoggerOptions opt;
  opt.registry = &reg;
  opt.rate_limit_window = std::chrono::milliseconds(60000);  // never expires mid-test
  {
    Logger logger(opt);
    logger.set_sink(cap.sink());
    for (int i = 0; i < 5; ++i) {
      Statement(logger, Level::kWarn, "t").msg("same thing");
    }
    Statement(logger, Level::kWarn, "t").msg("different thing");
    logger.flush();
    EXPECT_EQ(logger.suppressed(), 4u);
    EXPECT_EQ(reg.counter_value("neat_obs_log_suppressed_total"), 4u);
    // Destruction force-flushes the pending suppression summary.
  }
  const auto lines = cap.snapshot();
  std::size_t same = 0;
  bool summary = false;
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
    if (line.find("\"msg\":\"same thing\"") != std::string::npos) {
      ++same;
      if (line.find("\"suppressed\":4") != std::string::npos) summary = true;
    }
  }
  EXPECT_EQ(same, 2u);  // the first occurrence + the summary
  EXPECT_TRUE(summary);
}

TEST(Logger, CountsEmittedLinesPerLevel) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());
  Statement(logger, Level::kInfo, "t").msg("a");
  Statement(logger, Level::kWarn, "t").msg("b");
  Statement(logger, Level::kWarn, "t").msg("c");
  logger.flush();
  EXPECT_EQ(reg.counter_value("neat_obs_log_lines_total", {{"level", "info"}}), 1u);
  EXPECT_EQ(reg.counter_value("neat_obs_log_lines_total", {{"level", "warn"}}), 2u);
}

TEST(Logger, LogzJsonReportsStateAndModules) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());
  logger.set_level("net", Level::kDebug);
  Statement(logger, Level::kInfo, "core").msg("x");
  logger.flush();

  const std::string json = logger.logz_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"default\":\"info\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"module\":\"net\",\"level\":\"debug\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"lines\":1"), std::string::npos) << json;
}

TEST(Logger, ManyThreadsHammerWithoutTearingLines) {
  Registry reg;
  Capture cap;
  LoggerOptions opt = quiet_options(&reg);
  opt.ring_slots = 64;  // small enough that drops actually happen under load
  opt.poll_period = std::chrono::milliseconds(1);
  Logger logger(opt);
  logger.set_sink(cap.sink());

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Statement(logger, Level::kInfo, "hammer")
            .msg("tick")
            .kv("thread", t)
            .kv("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  logger.flush();

  EXPECT_EQ(logger.lines() + logger.dropped(), kThreads * kPerThread);
  const auto lines = cap.snapshot();
  EXPECT_EQ(lines.size(), logger.lines());
  for (const std::string& line : lines) {
    ASSERT_TRUE(json_valid(line)) << line;
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
  }
}

TEST(LogzEndpoint, GetAndPutRoundTripThroughHttp) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());

  HttpExporterOptions opt;
  opt.logger = &logger;
  const HttpExporter server(reg, opt);
  ASSERT_GT(server.port(), 0);

  const net::HttpResult get = net::http_get(server.port(), "/logz");
  EXPECT_EQ(get.code, 200);
  EXPECT_TRUE(json_valid(get.body)) << get.body;
  EXPECT_NE(get.body.find("\"default\":\"info\""), std::string::npos) << get.body;

  // PUT flips one module...
  const net::HttpResult put =
      net::http_put(server.port(), "/logz?module=net&level=debug");
  EXPECT_EQ(put.code, 200);
  EXPECT_EQ(logger.module("net").level(), Level::kDebug);
  // ...or the default when no module is named.
  const net::HttpResult put_all = net::http_put(server.port(), "/logz?level=warn");
  EXPECT_EQ(put_all.code, 200);
  EXPECT_EQ(logger.default_level(), Level::kWarn);
  EXPECT_EQ(logger.module("net").level(), Level::kWarn);

  // Bad or missing levels answer structured 400s and change nothing.
  const net::HttpResult bad =
      net::http_put(server.port(), "/logz?module=net&level=loud");
  EXPECT_EQ(bad.code, 400);
  EXPECT_NE(bad.body.find("\"error\":\"invalid_level\""), std::string::npos) << bad.body;
  EXPECT_EQ(logger.module("net").level(), Level::kWarn);
  const net::HttpResult missing = net::http_put(server.port(), "/logz?module=net");
  EXPECT_EQ(missing.code, 400);
  EXPECT_NE(missing.body.find("\"error\":\"missing_parameter\""), std::string::npos)
      << missing.body;

  // /statusz carries the logger state for one-stop debugging.
  const net::HttpResult status = net::http_get(server.port(), "/statusz");
  EXPECT_EQ(status.code, 200);
  EXPECT_NE(status.body.find("\"log\":{"), std::string::npos) << status.body;
}

TEST(LogzEndpoint, PutIsRejectedOnOtherRoutes) {
  Registry reg;
  Capture cap;
  Logger logger(quiet_options(&reg));
  logger.set_sink(cap.sink());
  HttpExporterOptions opt;
  opt.logger = &logger;
  const HttpExporter server(reg, opt);
  const net::HttpResult put = net::http_put(server.port(), "/metrics");
  EXPECT_EQ(put.code, 405);
}

}  // namespace
}  // namespace neat::obs::log
