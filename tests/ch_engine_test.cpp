// Property suite for the Contraction Hierarchies engine: on randomized
// generator networks (grid / jittered city / radial / one-way-heavy
// variants), CH distances must equal NodeDistanceOracle exactly —
// unreachable pairs, bounded early-exit and the bucket one-to-many batch
// included. A concurrency section shares one engine across threads (TSan
// coverage), and a ladder section checks that every DistanceEngine rung
// produces bit-identical Phase 3 clusters.
#include "roadnet/ch_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/clusterer.h"
#include "core/parallel_refiner.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "sim/mobility_simulator.h"

namespace neat::roadnet {
namespace {

struct NamedNet {
  const char* name;
  RoadNetwork net;
};

std::vector<NamedNet> test_networks() {
  std::vector<NamedNet> nets;
  nets.push_back({"grid12", make_grid(12, 12, 150.0)});
  CityParams city;
  city.rows = 14;
  city.cols = 14;
  city.seed = 3;
  nets.push_back({"city-seed3", make_city(city)});
  city.seed = 7;
  city.diagonal_probability = 0.1;
  city.anti_diagonals = true;
  nets.push_back({"city-diagonals", make_city(city)});
  city.seed = 9;
  city.oneway_probability = 0.4;  // one-way heavy: stresses directed mode
  nets.push_back({"city-oneway", make_city(city)});
  RadialCityParams radial;
  radial.rings = 6;
  radial.spokes = 9;
  radial.seed = 5;
  nets.push_back({"radial", make_radial_city(radial)});
  return nets;
}

NodeId random_node(Rng& rng, const RoadNetwork& net) {
  return NodeId(static_cast<std::int32_t>(rng.index(net.node_count())));
}

TEST(ChEngine, MatchesOracleOnGeneratorNetworks) {
  for (const NamedNet& t : test_networks()) {
    const ChEngine ch(t.net);
    ChEngine::Query query(ch);
    NodeDistanceOracle oracle(t.net);
    Rng rng(1234);
    for (int i = 0; i < 200; ++i) {
      const NodeId s = random_node(rng, t.net);
      const NodeId u = random_node(rng, t.net);
      EXPECT_DOUBLE_EQ(query.distance(s, u), oracle.distance(s, u))
          << t.name << " " << s << " -> " << u;
    }
  }
}

TEST(ChEngine, UnreachablePairsAreInfiniteLikeTheOracle) {
  // Two disconnected components.
  RoadNetworkBuilder b;
  b.add_node({0.0, 0.0});
  b.add_node({100.0, 0.0});
  b.add_node({0.0, 500.0});
  b.add_node({100.0, 500.0});
  b.add_segment(NodeId(0), NodeId(1), 13.9);
  b.add_segment(NodeId(2), NodeId(3), 13.9);
  const RoadNetwork net = b.build();
  const ChEngine ch(net);
  ChEngine::Query query(ch);
  NodeDistanceOracle oracle(net);
  EXPECT_EQ(query.distance(NodeId(0), NodeId(2)), kInfDistance);
  EXPECT_EQ(query.distance(NodeId(3), NodeId(1)), kInfDistance);
  EXPECT_EQ(oracle.distance(NodeId(0), NodeId(2)), kInfDistance);
  EXPECT_DOUBLE_EQ(query.distance(NodeId(0), NodeId(1)), 100.0);
  EXPECT_DOUBLE_EQ(query.distance(NodeId(2), NodeId(3)), 100.0);
}

TEST(ChEngine, BoundedQueriesKeepTheDijkstraContract) {
  const RoadNetwork net = make_grid(10, 10, 100.0);
  const ChEngine ch(net);
  ChEngine::Query query(ch);
  NodeDistanceOracle oracle(net);
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const NodeId s = random_node(rng, net);
    const NodeId t = random_node(rng, net);
    const double exact = oracle.distance(s, t);
    ASSERT_LT(exact, kInfDistance);
    // Bound below the distance: infinite, like the oracle.
    if (exact > 0.0) {
      EXPECT_EQ(query.distance(s, t, exact * 0.5), kInfDistance);
      EXPECT_EQ(oracle.distance(s, t, exact * 0.5), kInfDistance);
    }
    // Bound at and above the distance: exact.
    EXPECT_DOUBLE_EQ(query.distance(s, t, exact), exact);
    EXPECT_DOUBLE_EQ(query.distance(s, t, exact + 1.0), exact);
  }
}

TEST(ChEngine, ManyToManyMatchesRepeatedSinglePairs) {
  for (const NamedNet& t : test_networks()) {
    const ChEngine ch(t.net);
    ChEngine::Query batch(ch);
    ChEngine::Query single(ch);
    Rng rng(4321);
    for (int round = 0; round < 10; ++round) {
      const NodeId s = random_node(rng, t.net);
      std::vector<NodeId> targets;
      for (int k = 0; k < 10; ++k) targets.push_back(random_node(rng, t.net));
      const double bound = (round % 2 == 0) ? kInfDistance : 900.0;
      std::vector<double> out(targets.size());
      batch.distances(s, targets, out, bound);
      for (std::size_t k = 0; k < targets.size(); ++k) {
        EXPECT_DOUBLE_EQ(out[k], single.distance(s, targets[k], bound))
            << t.name << " target " << k;
      }
    }
  }
}

TEST(ChEngine, DistanceToAnyMatchesOracle) {
  const RoadNetwork net = make_grid(9, 9, 120.0);
  const ChEngine ch(net);
  ChEngine::Query query(ch);
  NodeDistanceOracle oracle(net);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const NodeId s = random_node(rng, net);
    std::vector<NodeId> targets;
    for (int k = 0; k < 5; ++k) targets.push_back(random_node(rng, net));
    EXPECT_DOUBLE_EQ(query.distance_to_any(s, targets),
                     oracle.distance_to_any(s, targets));
    EXPECT_DOUBLE_EQ(query.distance_to_any(s, targets, 400.0),
                     oracle.distance_to_any(s, targets, 400.0));
  }
}

TEST(ChEngine, DirectedRoutesMatchDijkstraCosts) {
  CityParams p;
  p.rows = 12;
  p.cols = 12;
  p.seed = 21;
  p.oneway_probability = 0.35;
  const RoadNetwork net = make_city(p);
  for (const Metric metric : {Metric::kDistance, Metric::kTravelTime}) {
    const ChEngine ch(net, {.directed = true, .metric = metric});
    ChEngine::Query query(ch);
    Rng rng(55);
    for (int i = 0; i < 60; ++i) {
      const NodeId s = random_node(rng, net);
      const NodeId t = random_node(rng, net);
      const std::optional<Route> expected = shortest_route(net, s, t, metric);
      const std::optional<Route> got = query.route(s, t);
      ASSERT_EQ(expected.has_value(), got.has_value()) << s << " -> " << t;
      if (!expected) continue;
      EXPECT_DOUBLE_EQ(got->length, expected->length);
      EXPECT_DOUBLE_EQ(got->travel_time, expected->travel_time);
      // The returned edge chain must be a real s -> t walk.
      NodeId at = s;
      for (const EdgeId e : got->edges) {
        ASSERT_EQ(net.edge(e).from, at);
        at = net.edge(e).to;
      }
      if (!got->edges.empty()) {
        EXPECT_EQ(at, t);
      }
    }
  }
}

TEST(ChEngine, SettlesFarFewerNodesThanDijkstra) {
  const RoadNetwork net = make_grid(30, 30, 100.0);
  const ChEngine ch(net);
  ChEngine::Query query(ch);
  NodeDistanceOracle oracle(net);
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const NodeId s = random_node(rng, net);
    const NodeId t = random_node(rng, net);
    EXPECT_DOUBLE_EQ(query.distance(s, t), oracle.distance(s, t));
  }
  EXPECT_EQ(query.computations(), oracle.computations());
  EXPECT_LT(query.settled_nodes() * 2, oracle.settled_nodes());
  query.reset_counters();
  EXPECT_EQ(query.settled_nodes(), 0u);
  EXPECT_EQ(query.computations(), 0u);
}

TEST(ChEngineConcurrency, SharedEngineAnswersFromManyThreads) {
  const RoadNetwork net = make_grid(15, 15, 100.0);
  const ChEngine ch(net);
  // Reference answers, computed serially.
  Rng seed_rng(99);
  constexpr int kThreads = 4;
  constexpr int kQueries = 64;
  std::vector<std::vector<NodeId>> sources(kThreads), targets(kThreads);
  std::vector<std::vector<double>> expected(kThreads);
  {
    NodeDistanceOracle oracle(net);
    for (int w = 0; w < kThreads; ++w) {
      for (int i = 0; i < kQueries; ++i) {
        sources[w].push_back(random_node(seed_rng, net));
        targets[w].push_back(random_node(seed_rng, net));
        expected[w].push_back(oracle.distance(sources[w][i], targets[w][i]));
      }
    }
  }
  std::vector<std::vector<double>> got(kThreads,
                                       std::vector<double>(kQueries, -1.0));
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      ChEngine::Query query(ch);  // per-thread workspace over the shared engine
      for (int i = 0; i < kQueries; ++i) {
        got[w][i] = query.distance(sources[w][i], targets[w][i]);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (int w = 0; w < kThreads; ++w) {
    for (int i = 0; i < kQueries; ++i) {
      EXPECT_DOUBLE_EQ(got[w][i], expected[w][i]) << "thread " << w << " query " << i;
    }
  }
}

// --- distance ladder: every engine yields bit-identical clusters -----------

std::vector<FlowCluster> make_flows(const RoadNetwork& net, int trajectories,
                                    std::uint64_t seed) {
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(net, scfg).generate(trajectories, seed);
  Config cfg;
  cfg.mode = Mode::kFlow;
  cfg.flow.min_card = 1.0;
  return NeatClusterer(net, cfg).run(data).flow_clusters;
}

TEST(ChEngineLadder, EveryEngineProducesIdenticalClusters) {
  CityParams p;
  p.rows = 10;
  p.cols = 10;
  p.seed = 11;
  const RoadNetwork net = make_city(p);
  const std::vector<FlowCluster> flows = make_flows(net, 60, 12);
  ASSERT_GT(flows.size(), 3u);

  RefineConfig base;
  base.epsilon = 500.0;
  const Phase3Output reference = Refiner(net, base).refine(flows);

  for (const DistanceEngine engine :
       {DistanceEngine::kDijkstra, DistanceEngine::kAlt, DistanceEngine::kCh}) {
    RefineConfig cfg = base;
    cfg.distance_engine = engine;
    const Phase3Output serial = Refiner(net, cfg).refine(flows);
    ASSERT_EQ(serial.clusters.size(), reference.clusters.size());
    for (std::size_t i = 0; i < serial.clusters.size(); ++i) {
      EXPECT_EQ(serial.clusters[i].flows, reference.clusters[i].flows)
          << "engine " << static_cast<int>(engine) << " cluster " << i;
    }
    // Pruning counters may differ between rungs (ALT prunes more pairs);
    // within one rung, the parallel refiner must reproduce the serial run's
    // clusters and pruning counters exactly. settled_nodes is only exact for
    // the per-pair-independent engines: each CH worker memoizes hub labels in
    // its own Query, so the settled total depends on which worker the dynamic
    // chunk scheduler hands each pair to.
    for (const unsigned threads : {2u, 8u}) {
      RefineConfig pcfg = cfg;
      pcfg.threads = threads;
      const Phase3Output parallel = ParallelRefiner(net, pcfg).refine(flows);
      ASSERT_EQ(parallel.clusters.size(), serial.clusters.size());
      for (std::size_t i = 0; i < serial.clusters.size(); ++i) {
        EXPECT_EQ(parallel.clusters[i].flows, serial.clusters[i].flows);
      }
      EXPECT_EQ(parallel.sp_computations, serial.sp_computations);
      EXPECT_EQ(parallel.pairs_evaluated, serial.pairs_evaluated);
      EXPECT_EQ(parallel.elb_pruned_pairs, serial.elb_pruned_pairs);
      EXPECT_EQ(parallel.lm_pruned_pairs, serial.lm_pruned_pairs);
      if (engine == DistanceEngine::kCh) {
        EXPECT_GT(parallel.settled_nodes, 0u);
      } else {
        EXPECT_EQ(parallel.settled_nodes, serial.settled_nodes);
      }
    }
  }
}

TEST(ChEngineLadder, SharedEngineIsReusedAcrossRefiners) {
  const RoadNetwork net = make_grid(8, 8, 150.0);
  const std::vector<FlowCluster> flows = make_flows(net, 40, 7);
  ASSERT_GT(flows.size(), 1u);
  auto shared = std::make_shared<const ChEngine>(net);
  RefineConfig cfg;
  cfg.epsilon = 600.0;
  cfg.distance_engine = DistanceEngine::kCh;
  Refiner with_shared(net, cfg);
  with_shared.set_ch_engine(shared);
  EXPECT_EQ(with_shared.ch_engine(), shared.get());
  const Phase3Output a = with_shared.refine(flows);
  const Phase3Output b = Refiner(net, cfg).refine(flows);  // lazily built engine
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].flows, b.clusters[i].flows);
  }
  EXPECT_EQ(a.settled_nodes, b.settled_nodes);
}

}  // namespace
}  // namespace neat::roadnet
