// Tests for trajectories and datasets.
#include <gtest/gtest.h>

#include "common/error.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace neat::traj {
namespace {

Location loc(int sid, double x, double y, double t) {
  return Location{SegmentId(sid), {x, y}, t, false};
}

TEST(Trajectory, AppendMaintainsTimeOrder) {
  Trajectory tr(TrajectoryId(1));
  tr.append(loc(0, 0, 0, 0.0));
  tr.append(loc(0, 10, 0, 1.0));
  tr.append(loc(0, 10, 0, 1.0));  // equal timestamps are fine
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_THROW(tr.append(loc(0, 20, 0, 0.5)), PreconditionError);
}

TEST(Trajectory, ConstructorValidates) {
  EXPECT_THROW(Trajectory(TrajectoryId(1), {loc(0, 0, 0, 5.0), loc(0, 1, 0, 4.0)}),
               PreconditionError);
}

TEST(Trajectory, Accessors) {
  Trajectory tr(TrajectoryId(9), {loc(0, 0, 0, 0.0), loc(1, 3, 4, 2.0)});
  EXPECT_EQ(tr.id(), TrajectoryId(9));
  EXPECT_EQ(tr.front().sid, SegmentId(0));
  EXPECT_EQ(tr.back().sid, SegmentId(1));
  EXPECT_EQ(tr.point(1).pos, (Point{3, 4}));
  EXPECT_THROW(static_cast<void>(tr.point(2)), PreconditionError);
  const Trajectory empty(TrajectoryId(2));
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(static_cast<void>(empty.front()), PreconditionError);
  EXPECT_THROW(static_cast<void>(empty.back()), PreconditionError);
}

TEST(Trajectory, PathLengthAndDuration) {
  Trajectory tr(TrajectoryId(1),
                {loc(0, 0, 0, 0.0), loc(0, 3, 4, 2.0), loc(0, 3, 14, 7.0)});
  EXPECT_DOUBLE_EQ(tr.path_length(), 15.0);
  EXPECT_DOUBLE_EQ(tr.duration(), 7.0);
  EXPECT_DOUBLE_EQ(Trajectory(TrajectoryId(2)).duration(), 0.0);
}

TEST(Dataset, AddAndQuery) {
  TrajectoryDataset data;
  EXPECT_TRUE(data.empty());
  data.add(Trajectory(TrajectoryId(1), {loc(0, 0, 0, 0.0), loc(0, 1, 0, 1.0)}));
  data.add(Trajectory(TrajectoryId(2), {loc(1, 0, 0, 0.0)}));
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.total_points(), 3u);
  EXPECT_EQ(data[1].id(), TrajectoryId(2));
  EXPECT_THROW(static_cast<void>(data[2]), PreconditionError);
}

TEST(Dataset, RejectsDuplicateIdsAndEmpties) {
  TrajectoryDataset data;
  data.add(Trajectory(TrajectoryId(1), {loc(0, 0, 0, 0.0)}));
  EXPECT_THROW(data.add(Trajectory(TrajectoryId(1), {loc(0, 1, 0, 0.0)})),
               PreconditionError);
  EXPECT_THROW(data.add(Trajectory(TrajectoryId(3))), PreconditionError);
}

TEST(Dataset, Stats) {
  TrajectoryDataset data;
  data.add(Trajectory(TrajectoryId(1), {loc(0, 0, 0, 0.0), loc(0, 30, 40, 10.0)}));
  data.add(Trajectory(TrajectoryId(2), {loc(0, 0, 0, 0.0), loc(0, 0, 10, 2.0),
                                        loc(0, 0, 20, 4.0)}));
  const DatasetStats st = data.stats();
  EXPECT_EQ(st.num_trajectories, 2u);
  EXPECT_EQ(st.num_points, 5u);
  EXPECT_DOUBLE_EQ(st.avg_points_per_trajectory, 2.5);
  EXPECT_DOUBLE_EQ(st.avg_path_length_m, (50.0 + 20.0) / 2.0);
  EXPECT_DOUBLE_EQ(st.avg_duration_s, 7.0);
}

TEST(Dataset, EmptyStats) {
  const DatasetStats st = TrajectoryDataset{}.stats();
  EXPECT_EQ(st.num_trajectories, 0u);
  EXPECT_DOUBLE_EQ(st.avg_points_per_trajectory, 0.0);
}

}  // namespace
}  // namespace neat::traj
