// Tests for the radial ("spider web") city generator, plus an end-to-end
// NEAT run on a radial topology — structural robustness beyond lattices.
#include <gtest/gtest.h>

#include <queue>

#include "common/error.h"
#include "core/clusterer.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

namespace neat::roadnet {
namespace {

std::size_t component_size(const RoadNetwork& net) {
  if (net.node_count() == 0) return 0;
  std::vector<bool> seen(net.node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(NodeId(0));
  seen[0] = true;
  std::size_t count = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    ++count;
    for (const SegmentId sid : net.segments_at(u)) {
      const NodeId v = net.other_endpoint(sid, u);
      if (!seen[static_cast<std::size_t>(v.value())]) {
        seen[static_cast<std::size_t>(v.value())] = true;
        frontier.push(v);
      }
    }
  }
  return count;
}

TEST(RadialCity, FullRetentionCounts) {
  RadialCityParams p;
  p.rings = 4;
  p.spokes = 8;
  p.ring_keep_probability = 1.0;
  p.spoke_keep_probability = 1.0;
  p.jitter_frac = 0.0;
  const RoadNetwork net = make_radial_city(p);
  // 1 center + 4*8 ring nodes; 4*8 radial + 4*8 ring segments.
  EXPECT_EQ(net.node_count(), 33u);
  EXPECT_EQ(net.segment_count(), 64u);
  // The center has degree = spokes.
  EXPECT_EQ(net.junction_degree(NodeId(0)), 8);
}

TEST(RadialCity, ConnectedAndDeterministic) {
  RadialCityParams p;
  p.rings = 6;
  p.spokes = 10;
  p.seed = 11;
  const RoadNetwork a = make_radial_city(p);
  const RoadNetwork b = make_radial_city(p);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.segment_count(), b.segment_count());
  EXPECT_EQ(component_size(a), a.node_count());
}

TEST(RadialCity, SpeedClasses) {
  RadialCityParams p;
  p.rings = 3;
  p.spokes = 6;
  const RoadNetwork net = make_radial_city(p);
  bool has_radial = false;
  bool has_ring = false;
  for (const Segment& s : net.segments()) {
    if (s.speed_limit == p.radial_speed_mps) has_radial = true;
    if (s.speed_limit == p.ring_speed_mps) has_ring = true;
  }
  EXPECT_TRUE(has_radial);
  EXPECT_TRUE(has_ring);
}

TEST(RadialCity, Validation) {
  RadialCityParams p;
  p.rings = 0;
  EXPECT_THROW(make_radial_city(p), PreconditionError);
  p = RadialCityParams{};
  p.spokes = 2;
  EXPECT_THROW(make_radial_city(p), PreconditionError);
  p = RadialCityParams{};
  p.ring_spacing_m = 0.0;
  EXPECT_THROW(make_radial_city(p), PreconditionError);
}

TEST(RadialCity, NeatEndToEnd) {
  // Full pipeline on a radial topology: suburban hotspots commuting to the
  // center concentrate on the spokes — flows should be found and valid.
  RadialCityParams p;
  p.rings = 10;
  p.spokes = 14;
  p.ring_spacing_m = 200.0;
  p.seed = 3;
  const RoadNetwork net = make_radial_city(p);
  const sim::SimConfig scfg = sim::default_config(net, 3, 2);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(60, 7);
  ASSERT_GT(data.size(), 0u);

  Config cfg;
  cfg.refine.epsilon = 1000.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  ASSERT_FALSE(res.flow_clusters.empty());
  for (const FlowCluster& f : res.flow_clusters) {
    for (std::size_t i = 1; i < f.route.size(); ++i) {
      ASSERT_TRUE(net.are_adjacent(f.route[i - 1], f.route[i]));
    }
  }
  EXPECT_FALSE(res.final_clusters.empty());
}

}  // namespace
}  // namespace neat::roadnet
