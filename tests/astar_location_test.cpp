// Tests for the A* router (equivalence with Dijkstra — property sweep),
// multi-target oracle queries, and on-segment location distances.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"

namespace neat::roadnet {
namespace {

class AStarEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AStarEquivalence, MatchesDijkstraOnRandomCities) {
  CityParams p;
  p.rows = 14;
  p.cols = 14;
  p.spacing_m = 110.0;
  p.oneway_probability = 0.1;
  p.seed = static_cast<std::uint64_t>(GetParam()) + 31;
  const RoadNetwork net = make_city(p);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 555);
  const auto n = static_cast<std::int64_t>(net.node_count());
  for (int k = 0; k < 25; ++k) {
    const auto s = NodeId(static_cast<std::int32_t>(rng.uniform_int(0, n - 1)));
    const auto t = NodeId(static_cast<std::int32_t>(rng.uniform_int(0, n - 1)));
    for (const Metric metric : {Metric::kDistance, Metric::kTravelTime}) {
      const auto dij = shortest_route(net, s, t, metric);
      const auto ast = astar_route(net, s, t, metric);
      ASSERT_EQ(dij.has_value(), ast.has_value()) << "reachability must agree";
      if (dij) {
        const double want = metric == Metric::kDistance ? dij->length : dij->travel_time;
        const double got = metric == Metric::kDistance ? ast->length : ast->travel_time;
        EXPECT_NEAR(got, want, 1e-6) << "A* must return an optimal route";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarEquivalence, ::testing::Range(0, 6));

TEST(AStar, TrivialCases) {
  const RoadNetwork net = testutil::line_network(4);
  const auto self = astar_route(net, NodeId(2), NodeId(2), Metric::kDistance);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->edges.empty());
  const auto full = astar_route(net, NodeId(0), NodeId(4), Metric::kDistance);
  ASSERT_TRUE(full.has_value());
  EXPECT_DOUBLE_EQ(full->length, 400.0);
}

TEST(DistanceToAny, PicksClosestTarget) {
  const RoadNetwork net = testutil::line_network(10);
  NodeDistanceOracle oracle(net);
  const std::vector<NodeId> targets{NodeId(3), NodeId(8)};
  EXPECT_DOUBLE_EQ(oracle.distance_to_any(NodeId(0), targets), 300.0);
  EXPECT_DOUBLE_EQ(oracle.distance_to_any(NodeId(10), targets), 200.0);
  EXPECT_DOUBLE_EQ(oracle.distance_to_any(NodeId(5), targets), 200.0);
  EXPECT_DOUBLE_EQ(oracle.distance_to_any(NodeId(3), targets), 0.0);
}

TEST(DistanceToAny, EmptyTargetsAndBound) {
  const RoadNetwork net = testutil::line_network(10);
  NodeDistanceOracle oracle(net);
  EXPECT_EQ(oracle.distance_to_any(NodeId(0), {}), kInfDistance);
  const std::vector<NodeId> targets{NodeId(9)};
  EXPECT_EQ(oracle.distance_to_any(NodeId(0), targets, 800.0), kInfDistance);
  EXPECT_DOUBLE_EQ(oracle.distance_to_any(NodeId(0), targets, 900.0), 900.0);
}

TEST(DistanceToAny, MatchesMinOfSingleQueries) {
  const RoadNetwork net = make_grid(7, 7, 90.0);
  NodeDistanceOracle oracle(net);
  Rng rng(11);
  for (int k = 0; k < 20; ++k) {
    const auto s = NodeId(static_cast<std::int32_t>(rng.uniform_int(0, 48)));
    std::vector<NodeId> targets;
    for (int i = 0; i < 4; ++i) {
      targets.push_back(NodeId(static_cast<std::int32_t>(rng.uniform_int(0, 48))));
    }
    double want = kInfDistance;
    for (const NodeId t : targets) want = std::min(want, oracle.distance(s, t));
    EXPECT_NEAR(oracle.distance_to_any(s, targets), want, 1e-9);
  }
}

TEST(LocationDistance, SameSegment) {
  const RoadNetwork net = testutil::line_network(3);
  EXPECT_DOUBLE_EQ(
      location_distance(net, {SegmentId(1), 20.0}, {SegmentId(1), 70.0}), 50.0);
  EXPECT_DOUBLE_EQ(
      location_distance(net, {SegmentId(1), 70.0}, {SegmentId(1), 20.0}), 50.0);
  EXPECT_DOUBLE_EQ(
      location_distance(net, {SegmentId(1), 30.0}, {SegmentId(1), 30.0}), 0.0);
}

TEST(LocationDistance, AcrossSegments) {
  // Line of 100 m segments: location at offset 80 on segment 0 and offset
  // 30 on segment 2 are 20 + 100 + 30 = 150 m apart.
  const RoadNetwork net = testutil::line_network(4);
  EXPECT_DOUBLE_EQ(
      location_distance(net, {SegmentId(0), 80.0}, {SegmentId(2), 30.0}), 150.0);
  // Adjacent segments: 80->100 on seg0 plus 0->30 on seg1 = 50.
  EXPECT_DOUBLE_EQ(
      location_distance(net, {SegmentId(0), 80.0}, {SegmentId(1), 30.0}), 50.0);
}

TEST(LocationDistance, ClampsOffsets) {
  const RoadNetwork net = testutil::line_network(4);
  EXPECT_DOUBLE_EQ(
      location_distance(net, {SegmentId(0), -10.0}, {SegmentId(0), 250.0}), 100.0);
}

TEST(LocationDistance, EuclideanLowerBoundProperty) {
  const RoadNetwork net = make_grid(8, 8, 75.0);
  NodeDistanceOracle oracle(net);
  Rng rng(77);
  const auto n_seg = static_cast<std::int64_t>(net.segment_count());
  for (int k = 0; k < 60; ++k) {
    const NetworkLocation a{SegmentId(static_cast<std::int32_t>(rng.uniform_int(0, n_seg - 1))),
                            rng.uniform(0.0, 75.0)};
    const NetworkLocation b{SegmentId(static_cast<std::int32_t>(rng.uniform_int(0, n_seg - 1))),
                            rng.uniform(0.0, 75.0)};
    const double dn = location_distance(net, a, b, oracle);
    const Point pa = net.point_on_segment(a.sid, a.offset);
    const Point pb = net.point_on_segment(b.sid, b.offset);
    EXPECT_LE(distance(pa, pb), dn + 1e-9) << "ELB must hold for locations";
    // Symmetry.
    EXPECT_NEAR(location_distance(net, b, a, oracle), dn, 1e-9);
  }
}

}  // namespace
}  // namespace neat::roadnet
