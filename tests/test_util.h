// Shared helpers for the NEAT test suite: small canonical networks and
// trajectory builders.
#pragma once

#include <vector>

#include "common/ids.h"
#include "roadnet/builder.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace neat::testutil {

/// A straight line of `n_segments` unit segments along the x axis:
/// node i at (i * seg_len, 0), segment i connecting nodes i and i+1.
inline roadnet::RoadNetwork line_network(int n_segments, double seg_len = 100.0,
                                         double speed = 10.0) {
  roadnet::RoadNetworkBuilder b;
  std::vector<NodeId> nodes;
  for (int i = 0; i <= n_segments; ++i) nodes.push_back(b.add_node({i * seg_len, 0.0}));
  for (int i = 0; i < n_segments; ++i) b.add_segment(nodes[i], nodes[i + 1], speed);
  return b.build();
}

/// The star network of the paper's Figure 1(b):
///   n1 (0,0) -- S1 -- n2 (100,0) -- S2 -- n3 (200,0)
///   n2 -- S3 -- n4 (100,100)
///   n2 -- S4 -- n5 (100,-100)
/// Node ids are handed out in order n1..n5 (0-based), segment ids S1..S4
/// (0-based), so SegmentId(0) is the paper's S1 and NodeId(1) is n2.
inline roadnet::RoadNetwork fig1_network(double speed = 10.0) {
  roadnet::RoadNetworkBuilder b;
  const NodeId n1 = b.add_node({0.0, 0.0});
  const NodeId n2 = b.add_node({100.0, 0.0});
  const NodeId n3 = b.add_node({200.0, 0.0});
  const NodeId n4 = b.add_node({100.0, 100.0});
  const NodeId n5 = b.add_node({100.0, -100.0});
  b.add_segment(n1, n2, speed);  // S1
  b.add_segment(n2, n3, speed);  // S2
  b.add_segment(n2, n4, speed);  // S3
  b.add_segment(n2, n5, speed);  // S4
  return b.build();
}

/// The (smallest-id) segment connecting two adjacent junctions.
inline SegmentId find_segment(const roadnet::RoadNetwork& net, NodeId a, NodeId b) {
  SegmentId best = SegmentId::invalid();
  for (const SegmentId sid : net.segments_at(a)) {
    if (net.other_endpoint(sid, a) == b && (!best.valid() || sid < best)) best = sid;
  }
  return best;
}

/// A trajectory that walks the junction path `nodes`, sampling two interior
/// points (at 25% and 75%) on every traversed segment. Timestamps increase
/// by 1 s per sample starting at `t0`.
inline traj::Trajectory make_path_trajectory(const roadnet::RoadNetwork& net,
                                             std::int64_t trid,
                                             const std::vector<NodeId>& nodes,
                                             double t0 = 0.0) {
  traj::Trajectory tr{TrajectoryId(trid)};
  double t = t0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const SegmentId sid = find_segment(net, nodes[i - 1], nodes[i]);
    const Point a = net.node(nodes[i - 1]).pos;
    const Point b = net.node(nodes[i]).pos;
    for (const double frac : {0.25, 0.75}) {
      tr.append(traj::Location{sid, lerp(a, b, frac), t, false});
      t += 1.0;
    }
  }
  return tr;
}

/// The five trajectories realizing the paper's Figure 1(b) statistics:
/// d(S1)=4, d(S2)=3, d(S3)=1, d(S4)=2; f(S1,S2)=2, f(S1,S3)=1, f(S1,S4)=1,
/// f(S2,S3)=0, f(S2,S4)=1.
inline std::vector<traj::Trajectory> fig1_trajectories(const roadnet::RoadNetwork& net) {
  const NodeId n1(0), n2(1), n3(2), n4(3), n5(4);
  return {
      make_path_trajectory(net, 1, {n1, n2, n3}),  // S1, S2
      make_path_trajectory(net, 2, {n1, n2, n3}),  // S1, S2
      make_path_trajectory(net, 3, {n4, n2, n1}),  // S3, S1
      make_path_trajectory(net, 4, {n5, n2, n3}),  // S4, S2
      make_path_trajectory(net, 5, {n1, n2, n5}),  // S1, S4
  };
}

}  // namespace neat::testutil
