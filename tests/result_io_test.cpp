// Tests for clustering-snapshot persistence and GeoJSON export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "core/clusterer.h"
#include "core/result_io.h"
#include "eval/geojson.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

Result cluster_grid(const roadnet::RoadNetwork& net) {
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(40, 12);
  Config cfg;
  cfg.refine.epsilon = 500.0;
  return NeatClusterer(net, cfg).run(data);
}

TEST(Snapshot, RoundTripPreservesEverything) {
  const roadnet::RoadNetwork net = roadnet::make_grid(9, 9, 110.0);
  const Result res = cluster_grid(net);
  ASSERT_FALSE(res.flow_clusters.empty());

  ClusteringSnapshot snap{res.flow_clusters, res.final_clusters};
  std::stringstream ss;
  save_snapshot(snap, ss);
  const ClusteringSnapshot loaded = load_snapshot(ss);

  ASSERT_EQ(loaded.flows.size(), snap.flows.size());
  for (std::size_t i = 0; i < snap.flows.size(); ++i) {
    EXPECT_EQ(loaded.flows[i].route, snap.flows[i].route);
    EXPECT_EQ(loaded.flows[i].junctions, snap.flows[i].junctions);
    EXPECT_EQ(loaded.flows[i].participants, snap.flows[i].participants);
    EXPECT_NEAR(loaded.flows[i].route_length, snap.flows[i].route_length, 1e-5);
  }
  ASSERT_EQ(loaded.final_clusters.size(), snap.final_clusters.size());
  for (std::size_t i = 0; i < snap.final_clusters.size(); ++i) {
    EXPECT_EQ(loaded.final_clusters[i].flows, snap.final_clusters[i].flows);
    EXPECT_EQ(loaded.final_clusters[i].participants, snap.final_clusters[i].participants);
  }
}

TEST(Snapshot, EmptySnapshot) {
  std::stringstream ss;
  save_snapshot(ClusteringSnapshot{}, ss);
  const ClusteringSnapshot loaded = load_snapshot(ss);
  EXPECT_TRUE(loaded.flows.empty());
  EXPECT_TRUE(loaded.final_clusters.empty());
}

TEST(Snapshot, RejectsMalformedInput) {
  {
    std::stringstream ss("banana,1,2\n");
    EXPECT_THROW(load_snapshot(ss), ParseError);
  }
  {
    std::stringstream ss("flow,0\n");  // wrong field count
    EXPECT_THROW(load_snapshot(ss), ParseError);
  }
  {
    // Flow with a route but no junctions: structural invariant broken.
    std::stringstream ss("flow,0,100\nflowroute,0,0,5\n");
    EXPECT_THROW(load_snapshot(ss), ParseError);
  }
  {
    // Final cluster referencing a missing flow.
    std::stringstream ss("final,0,100\nfinalflow,0,7\n");
    EXPECT_THROW(load_snapshot(ss), ParseError);
  }
  {
    std::stringstream ss("flow,-3,100\n");
    EXPECT_THROW(load_snapshot(ss), ParseError);
  }
}

TEST(Snapshot, FileErrors) {
  EXPECT_THROW(load_snapshot("/nonexistent/snapshot.csv"), Error);
  EXPECT_THROW(save_snapshot(ClusteringSnapshot{}, "/nonexistent/dir/snap.csv"), Error);
}

TEST(GeoJson, NetworkStructure) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const std::string json = eval::network_to_geojson(net);
  EXPECT_NE(json.find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"sid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"sid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"speed_mps\":10.00"), std::string::npos);
  // Balanced braces and brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(GeoJson, FlowsCarryClusterProperty) {
  const roadnet::RoadNetwork net = roadnet::make_grid(9, 9, 110.0);
  const Result res = cluster_grid(net);
  ASSERT_FALSE(res.flow_clusters.empty());
  const std::string json =
      eval::flows_to_geojson(net, res.flow_clusters, &res.final_clusters);
  EXPECT_NE(json.find("\"flow\":0"), std::string::npos);
  EXPECT_NE(json.find("\"final_cluster\":"), std::string::npos);
  EXPECT_NE(json.find("\"cardinality\":"), std::string::npos);
  const std::string without = eval::flows_to_geojson(net, res.flow_clusters, nullptr);
  EXPECT_EQ(without.find("\"final_cluster\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(GeoJson, TrajectoriesAndEmptyCollections) {
  traj::TrajectoryDataset data;
  traj::Trajectory tr(TrajectoryId(42));
  tr.append({SegmentId(0), {0, 0}, 0.0, false});
  tr.append({SegmentId(0), {10, 0}, 1.0, false});
  data.add(std::move(tr));
  const std::string json = eval::trajectories_to_geojson(data);
  EXPECT_NE(json.find("\"trid\":42"), std::string::npos);
  const std::string empty = eval::trajectories_to_geojson(traj::TrajectoryDataset{});
  EXPECT_NE(empty.find("\"features\":[]"), std::string::npos);
}

}  // namespace
}  // namespace neat
