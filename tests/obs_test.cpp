// Tests for the observability layer (src/obs/): metric registry semantics,
// the Log2Histogram duration guard, golden Prometheus text exposition, and
// Chrome trace_event JSON export (validated with a strict JSON parser).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

#include "common/error.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::obs {
namespace {

// --- a strict recursive-descent JSON validator for the trace exporter.
// Accepts exactly the RFC 8259 grammar (minus number edge cases the
// exporter cannot produce); returns true iff the whole string is one valid
// JSON value. Deliberately tiny: the point is "does a real parser accept
// this", not speed.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters are invalid inside strings
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
    if (eat('.')) {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        if (!string()) return false;
        skip_ws();
        if (!eat(':')) return false;
        if (!value()) return false;
        skip_ws();
        if (eat('}')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        if (!value()) return false;
        skip_ws();
        if (eat(']')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  const std::string& s_;
  std::size_t pos_{0};
};

// --- Registry semantics ---------------------------------------------------

TEST(Registry, SeriesAreCreatedOnceAndReferencesAreStable) {
  Registry reg;
  Counter& a = reg.counter("neat_test_total", {{"kind", "a"}});
  Counter& b = reg.counter("neat_test_total", {{"kind", "b"}});
  EXPECT_NE(&a, &b);
  a.add(2);
  b.add(5);
  EXPECT_EQ(&a, &reg.counter("neat_test_total", {{"kind", "a"}}));
  EXPECT_EQ(reg.counter_value("neat_test_total", {{"kind", "a"}}), 2u);
  EXPECT_EQ(reg.counter_value("neat_test_total", {{"kind", "b"}}), 5u);
}

TEST(Registry, ReadAccessorsDoNotCreateSeries) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("neat_test_missing_total"), 0u);
  EXPECT_EQ(reg.histogram_sum_seconds("neat_test_missing_seconds"), 0.0);
  EXPECT_EQ(reg.to_prometheus(), "");  // the lookups above created nothing
}

TEST(Registry, RejectsInvalidNamesAndKindMismatches) {
  Registry reg;
  EXPECT_THROW(reg.counter("1starts_with_digit"), PreconditionError);
  EXPECT_THROW(reg.counter(""), PreconditionError);
  EXPECT_THROW(reg.counter("has space"), PreconditionError);
  EXPECT_THROW(reg.counter("neat_ok_total", {{"bad key", "v"}}), PreconditionError);
  reg.counter("neat_test_total");
  EXPECT_THROW(reg.gauge("neat_test_total"), PreconditionError);
  EXPECT_THROW(reg.histogram("neat_test_total"), PreconditionError);
}

// --- Log2Histogram duration guard (NaN / negative / overflow) -------------

TEST(Log2Histogram, GuardsAgainstHostileDurations) {
  Log2Histogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(-1.0);
  h.record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 3u);  // all clamped to the sub-µs bucket
  EXPECT_EQ(h.sum_seconds(), 0.0);

  h.record(std::numeric_limits<double>::infinity());
  h.record(1e30);  // would overflow the uint64 µs cast without the clamp
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(Log2Histogram::kBuckets - 1), 2u);
  EXPECT_TRUE(std::isfinite(h.sum_seconds()));
  EXPECT_TRUE(std::isfinite(h.quantile_seconds(0.99)));
}

TEST(Log2Histogram, BucketsAndQuantiles) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_EQ(h.mean_seconds(), 0.0);
  for (int i = 0; i < 9; ++i) h.record(2e-6);  // bucket 2: [2, 4) µs
  h.record(1000e-6);                           // bucket 10: [512, 1024) µs
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.bucket_count(2), 9u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), Log2Histogram::bucket_upper_seconds(2));
  EXPECT_DOUBLE_EQ(h.quantile_seconds(1.0), Log2Histogram::bucket_upper_seconds(10));
  EXPECT_NEAR(h.sum_seconds(), 9 * 2e-6 + 1000e-6, 1e-9);
}

// --- Prometheus exposition (golden) ---------------------------------------

TEST(Prometheus, GoldenExposition) {
  Registry reg;
  reg.counter("neat_test_requests_total", {{"kind", "a"}}).add(3);
  reg.counter("neat_test_requests_total", {{"kind", "b"}}).add(1);
  reg.gauge("neat_test_version").set(7.0);
  Log2Histogram& h = reg.histogram("neat_test_latency_seconds");
  h.record(2e-6);
  h.record(2e-6);
  h.record(100e-6);
  reg.set_help("neat_test_requests_total", "Requests, by kind.");
  reg.set_help("neat_test_version", "Deployed version.");
  // neat_test_latency_seconds deliberately gets no help: the exporter must
  // synthesize one (Prometheus requires a HELP line per family).

  const std::string expected =
      "# HELP neat_test_requests_total Requests, by kind.\n"
      "# TYPE neat_test_requests_total counter\n"
      "neat_test_requests_total{kind=\"a\"} 3\n"
      "neat_test_requests_total{kind=\"b\"} 1\n"
      "# HELP neat_test_version Deployed version.\n"
      "# TYPE neat_test_version gauge\n"
      "neat_test_version 7\n"
      "# HELP neat_test_latency_seconds NEAT metric neat_test_latency_seconds.\n"
      "# TYPE neat_test_latency_seconds histogram\n"
      "neat_test_latency_seconds_bucket{le=\"1e-06\"} 0\n"
      "neat_test_latency_seconds_bucket{le=\"2e-06\"} 0\n"
      "neat_test_latency_seconds_bucket{le=\"4e-06\"} 2\n"
      "neat_test_latency_seconds_bucket{le=\"8e-06\"} 2\n"
      "neat_test_latency_seconds_bucket{le=\"1.6e-05\"} 2\n"
      "neat_test_latency_seconds_bucket{le=\"3.2e-05\"} 2\n"
      "neat_test_latency_seconds_bucket{le=\"6.4e-05\"} 2\n"
      "neat_test_latency_seconds_bucket{le=\"0.000128\"} 3\n"
      "neat_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "neat_test_latency_seconds_sum 0.000104\n"
      "neat_test_latency_seconds_count 3\n";
  EXPECT_EQ(reg.to_prometheus(), expected);
}

TEST(Prometheus, LabeledHistogramPutsLeLastAndEscapesValues) {
  Registry reg;
  reg.histogram("neat_test_seconds", {{"phase", "1"}}).record(2e-6);
  reg.counter("neat_test_total", {{"path", "a\"b\\c\nd"}}).add(1);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("neat_test_seconds_bucket{phase=\"1\",le=\"4e-06\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("neat_test_total{path=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos)
      << text;
}

// --- Tracer / ScopedSpan ---------------------------------------------------

TEST(Tracer, DisabledSpansCostNothingAndRecordNothing) {
  Tracer tracer;  // disabled at construction
  {
    ScopedSpan span("never.recorded", tracer);
    EXPECT_FALSE(span.active());
    span.arg("ignored", std::uint64_t{1});
  }
  tracer.set_thread_name("ignored");
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.to_chrome_json(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(Tracer, NestedSpansExportAsValidChromeTraceJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_thread_name("main");
  {
    ScopedSpan outer("test.outer", tracer);
    EXPECT_TRUE(outer.active());
    outer.arg("count", std::uint64_t{42});
    outer.arg("ratio", 0.5);
    outer.arg("label", "quoted \"text\"");
    ScopedSpan inner("test.inner", tracer);
    inner.arg("neg", std::int64_t{-3});
  }
  std::thread worker([&tracer] {
    tracer.set_thread_name("worker-0");
    ScopedSpan span("test.worker", tracer);
  });
  worker.join();
  EXPECT_EQ(tracer.span_count(), 3u);

  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  for (const char* fragment :
       {"{\"traceEvents\":[", "\"ph\":\"X\"", "\"ph\":\"M\"", "\"name\":\"test.outer\"",
        "\"name\":\"test.inner\"", "\"name\":\"test.worker\"", "\"cat\":\"neat\"",
        "\"count\":42", "\"neg\":-3", "\"ratio\":0.5", "\"label\":\"quoted \\\"text\\\"\"",
        "\"name\":\"main\"", "\"name\":\"worker-0\"", "\"displayTimeUnit\":\"ms\""}) {
    EXPECT_NE(json.find(fragment), std::string::npos) << "missing " << fragment << " in "
                                                      << json;
  }

  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Tracer, SpansFromJoinedThreadsSurviveInTheExport) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int t = 0; t < 3; ++t) {
    std::thread([&tracer] { ScopedSpan span("test.joined", tracer); }).join();
  }
  EXPECT_EQ(tracer.span_count(), 3u);
  EXPECT_TRUE(JsonValidator(tracer.to_chrome_json()).valid());
}

TEST(Tracer, RingBufferKeepsNewestSpansAndCountsDrops) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_max_spans_per_thread(4);
  EXPECT_EQ(tracer.max_spans_per_thread(), 4u);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.ring", tracer);
    span.arg("i", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tracer.span_count(), 4u);   // capped at the ring capacity
  EXPECT_EQ(tracer.spans_dropped(), 6u);  // the 6 oldest were overwritten

  // The survivors are the most recent spans (i = 6..9), newest first in the
  // /tracez payload.
  const std::string tracez = tracer.to_tracez_json(10);
  EXPECT_TRUE(JsonValidator(tracez).valid()) << tracez;
  for (const char* kept : {"\"i\":6", "\"i\":7", "\"i\":8", "\"i\":9"}) {
    EXPECT_NE(tracez.find(kept), std::string::npos) << "missing " << kept << " in " << tracez;
  }
  EXPECT_EQ(tracez.find("\"i\":5"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"spans_dropped\":6"), std::string::npos) << tracez;

  // clear() empties the ring but keeps the cumulative drop count.
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
}

TEST(Tracer, TracezTruncatesToNewestAcrossThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  { ScopedSpan span("test.old", tracer); }
  std::thread([&tracer] { ScopedSpan span("test.new", tracer); }).join();
  const std::string tracez = tracer.to_tracez_json(1);
  EXPECT_TRUE(JsonValidator(tracez).valid()) << tracez;
  EXPECT_NE(tracez.find("test.new"), std::string::npos) << tracez;
  EXPECT_EQ(tracez.find("test.old"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"span_count\":2"), std::string::npos) << tracez;
}

TEST(Tracer, NextTraceIdIsMonotonicAndNeverZero) {
  const std::uint64_t a = next_trace_id();
  const std::uint64_t b = next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);
}

TEST(Prometheus, HelpRegisteredBeforeFamilyCreationApplies) {
  Registry reg;
  reg.set_help("neat_test_early_total", "Registered before the family existed.");
  EXPECT_EQ(reg.to_prometheus(), "");  // help alone creates no family
  reg.counter("neat_test_early_total").add(1);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP neat_test_early_total Registered before the family existed.\n"),
            std::string::npos)
      << text;
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonValidatorSelfTest, RejectsMalformedJson) {
  const std::string empty_object("{}");
  EXPECT_TRUE(JsonValidator(empty_object).valid());
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "\"unterminated", "{'a':1}", "01x"}) {
    const std::string s(bad);
    EXPECT_FALSE(JsonValidator(s).valid()) << bad;
  }
}

}  // namespace
}  // namespace neat::obs
