// Tests for the look-ahead map matcher: exact recovery on clean traces, high
// accuracy under GPS noise, parallel-segment disambiguation via continuity,
// and end-to-end compatibility with NEAT Phase 1.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/clusterer.h"
#include "mapmatch/look_ahead_matcher.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "roadnet/spatial_index.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat::mapmatch {
namespace {

double sid_accuracy(const traj::TrajectoryDataset& truth,
                    const roadnet::RoadNetwork& net, const roadnet::SegmentGridIndex& index,
                    const std::vector<traj::RawTrace>& raw, const MatchConfig& cfg) {
  const LookAheadMatcher matcher(net, index, cfg);
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const traj::Trajectory matched = matcher.match(raw[i]);
    if (matched.size() != truth[i].size()) continue;  // dropped points: count as miss
    for (std::size_t j = 0; j < matched.size(); ++j) {
      ++total;
      if (matched.point(j).sid == truth[i].point(j).sid) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

TEST(MatchConfigValidation, Rejected) {
  const roadnet::RoadNetwork net = testutil::line_network(2);
  const roadnet::SegmentGridIndex index(net);
  MatchConfig cfg;
  cfg.candidate_radius_m = 0.0;
  EXPECT_THROW(LookAheadMatcher(net, index, cfg), PreconditionError);
  cfg = MatchConfig{};
  cfg.max_candidates = 0;
  EXPECT_THROW(LookAheadMatcher(net, index, cfg), PreconditionError);
}

TEST(Matcher, ExactRecoveryOnCleanTrace) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  const roadnet::SegmentGridIndex index(net);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset truth = simulator.generate(15, 42);
  const std::vector<traj::RawTrace> raw = simulator.generate_raw(15, 42, 0.0);
  EXPECT_DOUBLE_EQ(sid_accuracy(truth, net, index, raw, MatchConfig{}), 1.0);
}

TEST(Matcher, HighAccuracyUnderNoise) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  const roadnet::SegmentGridIndex index(net);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset truth = simulator.generate(15, 42);
  const std::vector<traj::RawTrace> raw = simulator.generate_raw(15, 42, 8.0);
  // Samples landing exactly on junctions are inherently ambiguous (both
  // incident segments are correct matches), so demand 85%, not 100%.
  EXPECT_GT(sid_accuracy(truth, net, index, raw, MatchConfig{}), 0.85);
}

TEST(Matcher, ContinuityDisambiguatesParallelSegments) {
  // Two parallel horizontal roads 30 m apart; the trace runs along the
  // lower one but one noisy sample leans toward the upper. Pointwise
  // nearest-segment matching would flip; the look-ahead (path continuity)
  // must keep it on the lower road.
  roadnet::RoadNetworkBuilder b;
  const NodeId a0 = b.add_node({0, 0});
  const NodeId a1 = b.add_node({200, 0});
  const NodeId a2 = b.add_node({400, 0});
  const NodeId u0 = b.add_node({0, 30});
  const NodeId u1 = b.add_node({200, 30});
  const NodeId u2 = b.add_node({400, 30});
  b.add_segment(a0, a1, 10.0);  // sid 0 (lower)
  b.add_segment(a1, a2, 10.0);  // sid 1 (lower)
  b.add_segment(u0, u1, 10.0);  // sid 2 (upper)
  b.add_segment(u1, u2, 10.0);  // sid 3 (upper)
  const roadnet::RoadNetwork net = b.build();
  const roadnet::SegmentGridIndex index(net);

  traj::RawTrace trace;
  trace.id = TrajectoryId(1);
  for (int i = 0; i < 9; ++i) {
    double y = 2.0;            // near the lower road
    if (i == 4) y = 17.0;      // one outlier leaning to the upper road
    trace.points.push_back(traj::RawPoint{{i * 50.0, y}, static_cast<double>(i)});
  }
  const LookAheadMatcher matcher(net, index);
  const traj::Trajectory matched = matcher.match(trace);
  ASSERT_EQ(matched.size(), 9u);
  for (std::size_t j = 0; j < matched.size(); ++j) {
    EXPECT_TRUE(matched.point(j).sid == SegmentId(0) || matched.point(j).sid == SegmentId(1))
        << "point " << j << " flipped to the parallel road";
  }
}

TEST(Matcher, ProjectsPositionsOntoMatchedSegment) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const roadnet::SegmentGridIndex index(net);
  traj::RawTrace trace;
  trace.id = TrajectoryId(1);
  trace.points.push_back(traj::RawPoint{{50, 7}, 0.0});
  trace.points.push_back(traj::RawPoint{{150, -4}, 1.0});
  const LookAheadMatcher matcher(net, index);
  const traj::Trajectory matched = matcher.match(trace);
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched.point(0).pos, (Point{50, 0}));
  EXPECT_EQ(matched.point(1).pos, (Point{150, 0}));
  EXPECT_DOUBLE_EQ(matched.point(1).t, 1.0);
}

TEST(Matcher, DropsPointsBeyondRadius) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const roadnet::SegmentGridIndex index(net);
  traj::RawTrace trace;
  trace.id = TrajectoryId(1);
  trace.points.push_back(traj::RawPoint{{50, 0}, 0.0});
  trace.points.push_back(traj::RawPoint{{100, 5000}, 1.0});  // hopeless outlier
  trace.points.push_back(traj::RawPoint{{150, 0}, 2.0});
  MatchStats stats;
  const LookAheadMatcher matcher(net, index);
  const traj::Trajectory matched = matcher.match(trace, &stats);
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_EQ(stats.dropped_points, 1u);
  EXPECT_EQ(stats.matched_points, 2u);
}

TEST(Matcher, EmptyAndHopelessTraces) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const roadnet::SegmentGridIndex index(net);
  const LookAheadMatcher matcher(net, index);
  EXPECT_TRUE(matcher.match(traj::RawTrace{TrajectoryId(1), {}}).empty());
  traj::RawTrace hopeless{TrajectoryId(2), {traj::RawPoint{{0, 99999}, 0.0}}};
  EXPECT_TRUE(matcher.match(hopeless).empty());
}

TEST(Matcher, MatchAllOmitsEmptyResults) {
  const roadnet::RoadNetwork net = testutil::line_network(3);
  const roadnet::SegmentGridIndex index(net);
  const LookAheadMatcher matcher(net, index);
  std::vector<traj::RawTrace> traces;
  traces.push_back({TrajectoryId(1), {traj::RawPoint{{50, 0}, 0.0}}});
  traces.push_back({TrajectoryId(2), {traj::RawPoint{{0, 99999}, 0.0}}});  // dropped
  const traj::TrajectoryDataset matched = matcher.match_all(traces);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0].id(), TrajectoryId(1));
}

TEST(Matcher, MatchedOutputFeedsNeatPipeline) {
  // End-to-end: raw noisy traces -> map matching -> NEAT clustering produces
  // nearly the same flow structure as clustering the ground truth.
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 120.0);
  const roadnet::SegmentGridIndex index(net);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset truth = simulator.generate(40, 6);
  const std::vector<traj::RawTrace> raw = simulator.generate_raw(40, 6, 6.0);
  const LookAheadMatcher matcher(net, index);
  const traj::TrajectoryDataset matched = matcher.match_all(raw);

  Config cfg;
  cfg.mode = Mode::kFlow;  // auto minCard filters noise-induced mini flows
  const Result from_truth = NeatClusterer(net, cfg).run(truth);
  const Result from_matched = NeatClusterer(net, cfg).run(matched);
  ASSERT_FALSE(from_matched.flow_clusters.empty());
  // Compare the discovered major-flow structure, which is robust to the
  // odd per-point flip: total kept route length and the longest flow.
  const auto total_length = [](const std::vector<FlowCluster>& flows) {
    double sum = 0.0;
    for (const FlowCluster& f : flows) sum += f.route_length;
    return sum;
  };
  const auto longest = [](const std::vector<FlowCluster>& flows) {
    double best = 0.0;
    for (const FlowCluster& f : flows) best = std::max(best, f.route_length);
    return best;
  };
  const double ratio = total_length(from_matched.flow_clusters) /
                       total_length(from_truth.flow_clusters);
  EXPECT_GE(ratio, 0.5);
  EXPECT_LE(ratio, 2.0);
  EXPECT_GE(longest(from_matched.flow_clusters),
            0.5 * longest(from_truth.flow_clusters));
}

}  // namespace
}  // namespace neat::mapmatch
