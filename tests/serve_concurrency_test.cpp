// Snapshot consistency under concurrent readers + writer.
//
// The acceptance property of the serving design: while the IngestService
// publishes a stream of snapshots, every concurrent query observes a
// *complete, internally consistent* snapshot — versions only move forward,
// flow indices returned by any query are valid in the snapshot that
// answered it, and pinned snapshots stay fully valid while newer versions
// land. Run with NEAT_SANITIZE=thread to also prove data-race freedom.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "roadnet/generators.h"
#include "serve/ingest_service.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

constexpr unsigned kQueryThreads = 4;
constexpr std::size_t kBatches = 5;
constexpr std::size_t kTripsPerBatch = 40;

TEST(ServeConcurrency, ReadersSeeConsistentSnapshotsDuringIngest) {
  const roadnet::RoadNetwork net = roadnet::make_grid(12, 12, 100.0);
  const roadnet::Bounds bb = net.bounding_box();

  Config cfg;
  cfg.refine.epsilon = 600.0;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  serve::IngestOptions opts;
  opts.queue_capacity = 2;  // small queue: exercises producer blocking too
  serve::IngestService ingest(net, cfg, store, metrics, opts);
  const serve::QueryEngine engine(net, store, &metrics);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> checks{0};
  std::vector<std::string> failures(kQueryThreads);
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_version = 0;
      std::uint64_t iter = 0;
      const auto fail = [&](const std::string& what) {
        if (failures[t].empty()) failures[t] = what;
      };
      while (!done.load(std::memory_order_acquire) && failures[t].empty()) {
        ++iter;
        // Pin a snapshot and check full internal consistency. validate() is
        // expensive, so do it on a subsample of iterations.
        const auto snap = engine.snapshot();
        if (snap) {
          if (snap->version() < last_version) fail("snapshot version went backwards");
          last_version = snap->version();
          if (iter % 16 == 0 && !snap->validate(net)) {
            fail("snapshot failed validate()");
          }
          // Final clusters reference valid flows of *this* snapshot.
          for (const FinalCluster& c : snap->final_clusters()) {
            for (const std::size_t f : c.flows) {
              if (f >= snap->flows().size()) fail("final cluster flow out of range");
            }
          }
        }
        // Queries answer from a complete snapshot: every returned flow index
        // is valid for the version stamped on the answer. The engine pins
        // the snapshot internally, so the stamped version can only lag the
        // store's current version, never exceed it.
        const double x = bb.min.x + static_cast<double>(iter * 131 % 1000) / 1000.0 *
                                        (bb.max.x - bb.min.x);
        const double y = bb.min.y + static_cast<double>((iter * 73 + t * 37) % 1000) /
                                        1000.0 * (bb.max.y - bb.min.y);
        if (const auto hit = engine.nearest_flow({x, y}, 300.0)) {
          const auto now = engine.snapshot();
          if (!now || hit->snapshot_version > now->version()) {
            fail("nearest_flow stamped a version newer than the store");
          }
          if (hit->cardinality <= 0) fail("nearest_flow returned an empty flow");
        }
        const auto sid = SegmentId(static_cast<std::int32_t>(
            (iter * 7 + t) % net.segment_count()));
        const serve::SegmentFlows seg = engine.flows_on_segment(sid);
        const auto top = engine.top_k_flows(3);
        if (seg.snapshot_version > 0 && top.snapshot_version > 0 &&
            top.snapshot_version < seg.snapshot_version) {
          fail("later query answered from an older snapshot");
        }
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: feed batches while the readers hammer the store.
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  std::int64_t next_id = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const traj::TrajectoryDataset raw =
        simulator.generate(kTripsPerBatch, 500 + static_cast<std::uint64_t>(b));
    traj::TrajectoryDataset batch;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      batch.add(traj::Trajectory(TrajectoryId(next_id++), raw[i].points()));
    }
    ASSERT_TRUE(ingest.submit(std::move(batch)));
  }
  ingest.flush();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  for (unsigned t = 0; t < kQueryThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "reader " << t;
  }
  EXPECT_GT(checks.load(), 0u);
  EXPECT_EQ(ingest.batches_published(), kBatches);
  EXPECT_EQ(store.version(), kBatches);
  const auto final_snap = store.current();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_TRUE(final_snap->validate(net));
  EXPECT_EQ(metrics.snapshot().batches_ingested, kBatches);
  EXPECT_GE(metrics.snapshot().queries_total, checks.load());
}

TEST(ServeConcurrency, ManyProducersWithRejectPolicyNeverDeadlock) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  Config cfg;
  cfg.refine.epsilon = 1000.0;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  serve::IngestOptions opts;
  opts.queue_capacity = 1;
  opts.backpressure = serve::IngestOptions::Backpressure::kReject;
  serve::IngestService ingest(net, cfg, store, metrics, opts);

  // 4 producers race tiny batches into a capacity-1 queue; some get shed,
  // none block, and every accepted batch is eventually processed.
  constexpr unsigned kProducers = 4;
  constexpr int kPerProducer = 25;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t id = static_cast<std::int64_t>(p) * 1000 + i;
        traj::TrajectoryDataset batch;
        batch.add(testutil::make_path_trajectory(net, id, {NodeId(0), NodeId(1), NodeId(2)}));
        if (ingest.submit(std::move(batch))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  ingest.flush();
  ingest.stop();

  const serve::MetricsSnapshot m = metrics.snapshot();
  EXPECT_EQ(ingest.batches_accepted(), accepted.load());
  EXPECT_EQ(m.batches_ingested, accepted.load());
  EXPECT_EQ(m.batches_ingested + m.batches_rejected,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(m.batches_ingested, 0u);
  EXPECT_EQ(store.version(), accepted.load());
}

}  // namespace
}  // namespace neat
