// Tests for online/incremental NEAT clustering over trajectory batches.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/incremental.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

// Splits a dataset into `parts` round-robin batches.
std::vector<traj::TrajectoryDataset> split_batches(const traj::TrajectoryDataset& data,
                                                   std::size_t parts) {
  std::vector<traj::TrajectoryDataset> out(parts);
  for (std::size_t i = 0; i < data.size(); ++i) {
    traj::Trajectory copy = data[i];
    out[i % parts].add(std::move(copy));
  }
  return out;
}

TEST(Incremental, AccumulatesFlowsAcrossBatches) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(60, 4);
  const auto batches = split_batches(data, 3);

  Config cfg;
  cfg.refine.epsilon = 500.0;
  IncrementalClusterer inc(net, cfg);
  std::size_t prev_flows = 0;
  for (const auto& batch : batches) {
    const auto& clusters = inc.add_batch(batch);
    EXPECT_GE(inc.flows().size(), prev_flows);
    prev_flows = inc.flows().size();
    // Every final cluster references valid accumulated flows.
    for (const FinalCluster& c : clusters) {
      for (const std::size_t fi : c.flows) EXPECT_LT(fi, inc.flows().size());
    }
  }
  EXPECT_EQ(inc.batches_processed(), 3u);
  EXPECT_FALSE(inc.flows().empty());
  EXPECT_FALSE(inc.clusters().empty());
}

TEST(Incremental, ClustersPartitionAccumulatedFlows) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(40, 8);
  const auto batches = split_batches(data, 2);

  Config cfg;
  cfg.refine.epsilon = 400.0;
  IncrementalClusterer inc(net, cfg);
  for (const auto& batch : batches) inc.add_batch(batch);

  std::vector<std::size_t> seen;
  for (const FinalCluster& c : inc.clusters()) {
    for (const std::size_t fi : c.flows) seen.push_back(fi);
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::size_t> want(inc.flows().size());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
  EXPECT_EQ(seen, want);
}

TEST(Incremental, RejectsDuplicateTrajectoryIdsAcrossBatches) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  traj::TrajectoryDataset batch1;
  batch1.add(testutil::make_path_trajectory(net, 1, {NodeId(0), NodeId(1), NodeId(2)}));
  traj::TrajectoryDataset batch2;
  batch2.add(testutil::make_path_trajectory(net, 1, {NodeId(0), NodeId(1)}));

  Config cfg;
  IncrementalClusterer inc(net, cfg);
  inc.add_batch(batch1);
  EXPECT_THROW(inc.add_batch(batch2), PreconditionError);
}

TEST(Incremental, SingleBatchMatchesFlowCountOfBatchRun) {
  // With one batch, incremental flows equal a flow-NEAT run on that batch.
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(30, 5);

  Config cfg;
  cfg.refine.epsilon = 400.0;
  IncrementalClusterer inc(net, cfg);
  inc.add_batch(data);

  Config flow_cfg = cfg;
  flow_cfg.mode = Mode::kFlow;
  const Result batch_run = NeatClusterer(net, flow_cfg).run(data);
  ASSERT_EQ(inc.flows().size(), batch_run.flow_clusters.size());
  for (std::size_t i = 0; i < inc.flows().size(); ++i) {
    EXPECT_EQ(inc.flows()[i].route, batch_run.flow_clusters[i].route);
  }
}

TEST(IncrementalWindow, EvictsFlowsOutsideWindow) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);

  Config cfg;
  cfg.refine.epsilon = 400.0;
  IncrementalOptions opts;
  opts.window_batches = 2;
  IncrementalClusterer windowed(net, cfg, opts);
  IncrementalClusterer unbounded(net, cfg);

  for (int batch = 0; batch < 5; ++batch) {
    const traj::TrajectoryDataset raw =
        simulator.generate(25, 100 + static_cast<std::uint64_t>(batch));
    traj::TrajectoryDataset tagged_a;
    traj::TrajectoryDataset tagged_b;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const auto id = TrajectoryId(batch * 1000 + static_cast<std::int64_t>(i));
      tagged_a.add(traj::Trajectory(id, raw[i].points()));
      tagged_b.add(traj::Trajectory(id, raw[i].points()));
    }
    windowed.add_batch(tagged_a);
    unbounded.add_batch(tagged_b);
  }
  // The window holds at most the flows of the last two batches.
  EXPECT_LT(windowed.flows().size(), unbounded.flows().size());
  // Final clusters still partition the windowed flow set.
  std::vector<std::size_t> seen;
  for (const FinalCluster& c : windowed.clusters()) {
    seen.insert(seen.end(), c.flows.begin(), c.flows.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::size_t> want(windowed.flows().size());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
  EXPECT_EQ(seen, want);
}

TEST(IncrementalWindow, EvictedBatchesVanishFromRefinedResult) {
  // Flows of batches that slid out of the window must disappear from the
  // *refined* result too: no final cluster may keep referencing an evicted
  // batch's trajectories.
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);

  Config cfg;
  cfg.refine.epsilon = 400.0;
  IncrementalOptions opts;
  opts.window_batches = 2;
  IncrementalClusterer inc(net, cfg, opts);

  constexpr int kBatches = 5;
  for (int batch = 0; batch < kBatches; ++batch) {
    const traj::TrajectoryDataset raw =
        simulator.generate(25, 700 + static_cast<std::uint64_t>(batch));
    traj::TrajectoryDataset tagged;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      // Ids encode the batch: batch b owns [b*1000, b*1000 + 999].
      tagged.add(traj::Trajectory(TrajectoryId(batch * 1000 + static_cast<std::int64_t>(i)),
                                  raw[i].points()));
    }
    const std::vector<FinalCluster>& refined = inc.add_batch(tagged);

    // Only the last `window_batches` batches may contribute participants.
    const int oldest_kept = std::max(0, batch - static_cast<int>(opts.window_batches) + 1);
    for (const FlowCluster& f : inc.flows()) {
      for (const TrajectoryId trid : f.participants) {
        EXPECT_GE(trid.value() / 1000, oldest_kept)
            << "flow kept a participant of evicted batch " << trid.value() / 1000
            << " after batch " << batch;
      }
    }
    for (const FinalCluster& c : refined) {
      for (const TrajectoryId trid : c.participants) {
        EXPECT_GE(trid.value() / 1000, oldest_kept)
            << "refined cluster kept a participant of evicted batch "
            << trid.value() / 1000 << " after batch " << batch;
      }
    }
    // And the window is not trivially empty: the current batch contributes.
    bool current_batch_present = false;
    for (const FlowCluster& f : inc.flows()) {
      for (const TrajectoryId trid : f.participants) {
        if (trid.value() / 1000 == batch) current_batch_present = true;
      }
    }
    EXPECT_TRUE(current_batch_present) << "after batch " << batch;
  }
}

TEST(IncrementalWindow, WindowOfOneTracksOnlyLatestBatch) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 100.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);

  Config cfg;
  cfg.refine.epsilon = 400.0;
  IncrementalOptions opts;
  opts.window_batches = 1;
  IncrementalClusterer inc(net, cfg, opts);

  std::size_t last_batch_flows = 0;
  for (int batch = 0; batch < 3; ++batch) {
    const traj::TrajectoryDataset raw =
        simulator.generate(20, 300 + static_cast<std::uint64_t>(batch));
    traj::TrajectoryDataset tagged;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      tagged.add(traj::Trajectory(TrajectoryId(batch * 1000 + static_cast<std::int64_t>(i)),
                                  raw[i].points()));
    }
    // Flows of this batch alone, for comparison.
    Config flow_cfg = cfg;
    flow_cfg.mode = Mode::kFlow;
    last_batch_flows = NeatClusterer(net, flow_cfg).run(tagged).flow_clusters.size();
    inc.add_batch(tagged);
  }
  EXPECT_EQ(inc.flows().size(), last_batch_flows);
}

}  // namespace
}  // namespace neat
