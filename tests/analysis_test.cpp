// Tests for the traffic-analysis utilities: flow diffing and OD matrices.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/clusterer.h"
#include "eval/flow_diff.h"
#include "eval/od_matrix.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat::eval {
namespace {

FlowCluster flow_of(std::vector<std::int32_t> sids, int cardinality = 1) {
  FlowCluster f;
  for (const std::int32_t s : sids) f.route.push_back(SegmentId(s));
  for (int i = 0; i < cardinality; ++i) {
    f.participants.push_back(TrajectoryId(1000 + i));
  }
  return f;
}

TEST(RouteJaccard, HandComputed) {
  EXPECT_DOUBLE_EQ(route_jaccard(flow_of({1, 2, 3}), flow_of({1, 2, 3})), 1.0);
  EXPECT_DOUBLE_EQ(route_jaccard(flow_of({1, 2}), flow_of({3, 4})), 0.0);
  EXPECT_DOUBLE_EQ(route_jaccard(flow_of({1, 2, 3}), flow_of({2, 3, 4})), 0.5);
  EXPECT_DOUBLE_EQ(route_jaccard(flow_of({}), flow_of({})), 0.0);
  // Duplicate segments in a route (loops) count once.
  EXPECT_DOUBLE_EQ(route_jaccard(flow_of({1, 1, 2}), flow_of({1, 2})), 1.0);
}

TEST(FlowDiff, MatchesVanishesAppears) {
  const std::vector<FlowCluster> before{flow_of({1, 2, 3}, 5), flow_of({10, 11}, 3)};
  const std::vector<FlowCluster> after{flow_of({2, 3, 4}, 8), flow_of({20, 21}, 2)};
  const FlowDiff diff = diff_flows(before, after, 0.3);
  ASSERT_EQ(diff.persisting.size(), 1u);
  EXPECT_EQ(diff.persisting[0].before_index, 0u);
  EXPECT_EQ(diff.persisting[0].after_index, 0u);
  EXPECT_DOUBLE_EQ(diff.persisting[0].route_jaccard, 0.5);
  EXPECT_EQ(diff.persisting[0].cardinality_change, 3);
  EXPECT_EQ(diff.vanished, std::vector<std::size_t>{1});
  EXPECT_EQ(diff.appeared, std::vector<std::size_t>{1});
}

TEST(FlowDiff, GreedyPicksBestPairs) {
  // before[0] overlaps both after flows; the higher-Jaccard pairing wins
  // and the second-best pairing falls through to the remaining pair.
  const std::vector<FlowCluster> before{flow_of({1, 2, 3, 4})};
  const std::vector<FlowCluster> after{flow_of({1, 2, 3, 4, 5}),  // j = 0.8
                                       flow_of({3, 4})};          // j = 0.5
  const FlowDiff diff = diff_flows(before, after, 0.3);
  ASSERT_EQ(diff.persisting.size(), 1u);
  EXPECT_EQ(diff.persisting[0].after_index, 0u);
  EXPECT_EQ(diff.appeared, std::vector<std::size_t>{1});
}

TEST(FlowDiff, ThresholdGates) {
  const std::vector<FlowCluster> before{flow_of({1, 2, 3, 4})};
  const std::vector<FlowCluster> after{flow_of({4, 5, 6, 7})};  // j = 1/7
  EXPECT_TRUE(diff_flows(before, after, 0.3).persisting.empty());
  EXPECT_EQ(diff_flows(before, after, 0.1).persisting.size(), 1u);
  EXPECT_THROW(diff_flows(before, after, 0.0), PreconditionError);
  EXPECT_THROW(diff_flows(before, after, 1.5), PreconditionError);
}

TEST(FlowDiff, EmptyInputs) {
  const FlowDiff diff = diff_flows({}, {flow_of({1})});
  EXPECT_TRUE(diff.persisting.empty());
  EXPECT_TRUE(diff.vanished.empty());
  EXPECT_EQ(diff.appeared.size(), 1u);
}

TEST(FlowDiff, StableTrafficMostlyPersists) {
  // Two samples of the same traffic process: most major flows must match.
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result morning = NeatClusterer(net, cfg).run(simulator.generate(60, 1));
  const Result evening = NeatClusterer(net, cfg).run(simulator.generate(60, 2));
  const FlowDiff diff = diff_flows(morning.flow_clusters, evening.flow_clusters, 0.3);
  EXPECT_GE(diff.matched_count() * 2,
            std::min(morning.flow_clusters.size(), evening.flow_clusters.size()))
      << "at least half of the smaller flow set should persist";
}

TEST(OdMatrixBasics, CountsTripsBetweenZones) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const std::vector<Zone> zones{{"west", {0, 0}}, {"east", {200, 0}}, {"north", {100, 100}}};
  traj::TrajectoryDataset data;
  // n1 -> n3 (west -> east), twice; n1 -> n4 (west -> north), once.
  data.add(testutil::make_path_trajectory(net, 1, {NodeId(0), NodeId(1), NodeId(2)}));
  data.add(testutil::make_path_trajectory(net, 2, {NodeId(0), NodeId(1), NodeId(2)}));
  data.add(testutil::make_path_trajectory(net, 3, {NodeId(0), NodeId(1), NodeId(3)}));
  const OdMatrix od(zones, data);
  EXPECT_EQ(od.zone_count(), 3u);
  EXPECT_EQ(od.trips(0, 1), 2);
  EXPECT_EQ(od.trips(0, 2), 1);
  EXPECT_EQ(od.trips(1, 0), 0);
  EXPECT_EQ(od.total_trips(), 3);
  EXPECT_EQ(od.nearest_zone({10, 5}), 0u);
  EXPECT_THROW(static_cast<void>(od.trips(0, 9)), PreconditionError);
  EXPECT_THROW(OdMatrix({}, data), PreconditionError);
}

TEST(OdMatrixBasics, FlowShareAttribution) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const std::vector<Zone> zones{{"west", {0, 0}}, {"east", {200, 0}}};
  traj::TrajectoryDataset data;
  data.add(testutil::make_path_trajectory(net, 1, {NodeId(0), NodeId(1), NodeId(2)}));
  data.add(testutil::make_path_trajectory(net, 2, {NodeId(0), NodeId(1), NodeId(2)}));
  const OdMatrix od(zones, data);
  FlowCluster corridor;
  corridor.route = {SegmentId(0), SegmentId(1)};
  corridor.participants = {TrajectoryId(1)};  // carries only trip 1
  EXPECT_DOUBLE_EQ(od.flow_share(0, 1, corridor, data), 0.5);
  corridor.participants = {TrajectoryId(1), TrajectoryId(2)};
  EXPECT_DOUBLE_EQ(od.flow_share(0, 1, corridor, data), 1.0);
  EXPECT_DOUBLE_EQ(od.flow_share(1, 0, corridor, data), 0.0);  // no demand
}

TEST(OdMatrixBasics, SimulatedDemandConcentratesOnHotspotPairs) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  sim::SimConfig scfg = sim::default_config(net, 2, 3);
  // Pin origins to the hotspot centres; with a wide origin radius some trip
  // starts would be nearer a destination zone and the invariant below would
  // not be a property of the generator.
  scfg.hotspot_radius_m = 0.0;
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(80, 6);
  std::vector<Zone> zones;
  for (std::size_t i = 0; i < scfg.hotspots.size(); ++i) {
    zones.push_back({"H" + std::to_string(i), net.node(scfg.hotspots[i]).pos});
  }
  for (std::size_t i = 0; i < scfg.destinations.size(); ++i) {
    zones.push_back({"D" + std::to_string(i), net.node(scfg.destinations[i]).pos});
  }
  const OdMatrix od(zones, data);
  EXPECT_EQ(od.total_trips(), static_cast<int>(data.size()));
  // All demand flows hotspot-zone -> destination-zone.
  int hotspot_to_dest = 0;
  for (std::size_t h = 0; h < scfg.hotspots.size(); ++h) {
    for (std::size_t d = 0; d < scfg.destinations.size(); ++d) {
      hotspot_to_dest += od.trips(h, scfg.hotspots.size() + d);
    }
  }
  EXPECT_EQ(hotspot_to_dest, od.total_trips());
}

}  // namespace
}  // namespace neat::eval
