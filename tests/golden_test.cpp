// Golden-file end-to-end regression test: a committed fixture network and
// trajectory set run through the full three-phase pipeline, and the servable
// result (result_io snapshot format) must match the committed golden output
// byte for byte. Any change to fragmenting, flow building, refinement order,
// pruning or serialization that alters the outcome shows up as a diff here.
//
// To regenerate after an *intentional* behaviour change:
//   NEAT_REGEN_GOLDEN=1 ./golden_test
// then review and commit the updated tests/data/golden_result.csv.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/clusterer.h"
#include "core/result_io.h"
#include "roadnet/io.h"
#include "traj/io.h"

namespace neat {
namespace {

std::string data_path(const std::string& name) {
  return std::string(NEAT_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The configuration frozen into the golden file. Landmarks and threading are
// on — by design they must not change the output, so the golden file guards
// the acceleration layer too.
Config golden_config() {
  Config cfg;
  cfg.refine.epsilon = 400.0;
  cfg.refine.use_landmarks = true;
  cfg.refine.num_landmarks = 4;
  cfg.refine.threads = 2;
  cfg.flow.min_card = 1.0;
  return cfg;
}

TEST(Golden, EndToEndSnapshotMatchesCommittedOutput) {
  const roadnet::RoadNetwork net = roadnet::load_network(data_path("golden_network.csv"));
  const traj::TrajectoryDataset data =
      traj::load_dataset(data_path("golden_trajectories.csv"));
  ASSERT_GT(net.segment_count(), 0u);
  ASSERT_GT(data.size(), 0u);

  const Result res = NeatClusterer(net, golden_config()).run(data);
  ASSERT_FALSE(res.flow_clusters.empty());
  ASSERT_FALSE(res.final_clusters.empty());

  ClusteringSnapshot snap;
  snap.flows = res.flow_clusters;
  snap.final_clusters = res.final_clusters;
  std::ostringstream actual;
  save_snapshot(snap, actual);

  const std::string golden_file = data_path("golden_result.csv");
  if (std::getenv("NEAT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_file, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_file;
    out << actual.str();
    GTEST_SKIP() << "regenerated " << golden_file << "; review and commit it";
  }

  EXPECT_EQ(actual.str(), read_file(golden_file))
      << "pipeline output drifted from the committed golden file; if the "
         "change is intentional, regenerate with NEAT_REGEN_GOLDEN=1";
}

TEST(Golden, SnapshotRoundTripsThroughResultIo) {
  const roadnet::RoadNetwork net = roadnet::load_network(data_path("golden_network.csv"));
  const traj::TrajectoryDataset data =
      traj::load_dataset(data_path("golden_trajectories.csv"));
  const Result res = NeatClusterer(net, golden_config()).run(data);

  ClusteringSnapshot snap;
  snap.flows = res.flow_clusters;
  snap.final_clusters = res.final_clusters;
  std::stringstream io;
  save_snapshot(snap, io);
  const ClusteringSnapshot back = load_snapshot(io);
  ASSERT_EQ(back.flows.size(), snap.flows.size());
  ASSERT_EQ(back.final_clusters.size(), snap.final_clusters.size());
  for (std::size_t i = 0; i < snap.final_clusters.size(); ++i) {
    EXPECT_EQ(back.final_clusters[i].flows, snap.final_clusters[i].flows);
  }
}

}  // namespace
}  // namespace neat
