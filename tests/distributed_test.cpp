// Tests for sharded Phase 1 / the distributed pipeline: exact equivalence
// with the monolithic run for contiguous shards, merge semantics for
// overlapping segments, and edge cases.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/distributed.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

std::vector<traj::TrajectoryDataset> contiguous_shards(const traj::TrajectoryDataset& data,
                                                       std::size_t parts) {
  std::vector<traj::TrajectoryDataset> out(parts);
  const std::size_t per = (data.size() + parts - 1) / parts;
  for (std::size_t i = 0; i < data.size(); ++i) {
    traj::Trajectory copy = data[i];
    out[i / per].add(std::move(copy));
  }
  return out;
}

TEST(MergePhase1, EmptyAndSingle) {
  EXPECT_TRUE(merge_phase1_outputs({}).base_clusters.empty());

  const roadnet::RoadNetwork net = testutil::fig1_network();
  traj::TrajectoryDataset data;
  for (traj::Trajectory& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
  const Fragmenter fragmenter(net);
  Phase1Output whole = fragmenter.build_base_clusters(data);
  std::vector<Phase1Output> one;
  one.push_back(fragmenter.build_base_clusters(data));
  const Phase1Output merged = merge_phase1_outputs(std::move(one));
  ASSERT_EQ(merged.base_clusters.size(), whole.base_clusters.size());
  for (std::size_t i = 0; i < merged.base_clusters.size(); ++i) {
    EXPECT_EQ(merged.base_clusters[i].sid(), whole.base_clusters[i].sid());
    EXPECT_EQ(merged.base_clusters[i].density(), whole.base_clusters[i].density());
  }
}

TEST(MergePhase1, CombinesSharedSegments) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Fragmenter fragmenter(net);
  // Shard 1: two trajectories on S1/S2; shard 2: one more on S1.
  traj::TrajectoryDataset shard1;
  shard1.add(testutil::make_path_trajectory(net, 1, {NodeId(0), NodeId(1), NodeId(2)}));
  shard1.add(testutil::make_path_trajectory(net, 2, {NodeId(0), NodeId(1), NodeId(2)}));
  traj::TrajectoryDataset shard2;
  shard2.add(testutil::make_path_trajectory(net, 3, {NodeId(0), NodeId(1)}));

  std::vector<Phase1Output> parts;
  parts.push_back(fragmenter.build_base_clusters(shard1));
  parts.push_back(fragmenter.build_base_clusters(shard2));
  const Phase1Output merged = merge_phase1_outputs(std::move(parts));
  ASSERT_EQ(merged.base_clusters.size(), 2u);  // S1 and S2
  EXPECT_EQ(merged.base_clusters[0].sid(), SegmentId(0));
  EXPECT_EQ(merged.base_clusters[0].density(), 3);
  EXPECT_EQ(merged.base_clusters[0].cardinality(), 3);
  EXPECT_EQ(merged.base_clusters[1].density(), 2);
  EXPECT_EQ(merged.num_fragments, 5u);
}

class ShardedEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedEquivalence, MatchesMonolithicRun) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(60, 33);

  Config cfg;
  cfg.refine.epsilon = 500.0;
  const Result whole = NeatClusterer(net, cfg).run(data);

  const std::vector<traj::TrajectoryDataset> shards = contiguous_shards(data, GetParam());
  std::vector<const traj::TrajectoryDataset*> shard_ptrs;
  for (const auto& s : shards) shard_ptrs.push_back(&s);
  const Result sharded = run_sharded(net, shard_ptrs, cfg);

  EXPECT_EQ(sharded.num_fragments, whole.num_fragments);
  ASSERT_EQ(sharded.base_clusters.size(), whole.base_clusters.size());
  for (std::size_t i = 0; i < whole.base_clusters.size(); ++i) {
    EXPECT_EQ(sharded.base_clusters[i].sid(), whole.base_clusters[i].sid());
    EXPECT_EQ(sharded.base_clusters[i].density(), whole.base_clusters[i].density());
    EXPECT_EQ(sharded.base_clusters[i].participants(),
              whole.base_clusters[i].participants());
  }
  ASSERT_EQ(sharded.flow_clusters.size(), whole.flow_clusters.size());
  for (std::size_t i = 0; i < whole.flow_clusters.size(); ++i) {
    EXPECT_EQ(sharded.flow_clusters[i].route, whole.flow_clusters[i].route);
    EXPECT_EQ(sharded.flow_clusters[i].participants, whole.flow_clusters[i].participants);
  }
  ASSERT_EQ(sharded.final_clusters.size(), whole.final_clusters.size());
  for (std::size_t i = 0; i < whole.final_clusters.size(); ++i) {
    EXPECT_EQ(sharded.final_clusters[i].flows, whole.final_clusters[i].flows);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedEquivalence, ::testing::Values(1u, 2u, 3u, 7u));

TEST(Sharded, RejectsNullShard) {
  const roadnet::RoadNetwork net = testutil::line_network(2);
  Config cfg;
  EXPECT_THROW(run_sharded(net, {nullptr}, cfg), PreconditionError);
}

TEST(MergePhase1, RejectsDuplicateTrajectoryIdsAcrossShards) {
  // Regression: a trajectory id repeated across shards used to merge
  // silently, deflating trajectory cardinalities. Now it throws.
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const NodeId n1(0), n2(1), n3(2), n4(3);

  traj::TrajectoryDataset shard_a;
  shard_a.add(testutil::make_path_trajectory(net, 1, {n1, n2, n3}));
  shard_a.add(testutil::make_path_trajectory(net, 2, {n1, n2}));
  traj::TrajectoryDataset shard_b;
  shard_b.add(testutil::make_path_trajectory(net, 2, {n4, n2, n3}));  // dup id 2

  const Fragmenter fragmenter(net);
  std::vector<Phase1Output> outputs;
  outputs.push_back(fragmenter.build_base_clusters(shard_a));
  outputs.push_back(fragmenter.build_base_clusters(shard_b));
  try {
    (void)merge_phase1_outputs(std::move(outputs));
    FAIL() << "duplicate trajectory id across shards was not rejected";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("trajectory id 2"), std::string::npos)
        << e.what();
  }

  // The same duplicate through the full sharded pipeline.
  EXPECT_THROW(run_sharded(net, {&shard_a, &shard_b}, Config{}), PreconditionError);

  // Duplicates *within* one shard's clusters (one trajectory crossing many
  // segments) stay legal — only cross-shard repeats are errors.
  traj::TrajectoryDataset shard_c;
  shard_c.add(testutil::make_path_trajectory(net, 3, {n1, n2, n3}));
  std::vector<Phase1Output> ok;
  ok.push_back(fragmenter.build_base_clusters(shard_a));
  ok.push_back(fragmenter.build_base_clusters(shard_c));
  EXPECT_NO_THROW((void)merge_phase1_outputs(std::move(ok)));
}

TEST(Sharded, BaseModeStopsAfterMerge) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  traj::TrajectoryDataset data;
  for (traj::Trajectory& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
  Config cfg;
  cfg.mode = Mode::kBase;
  const Result res = run_sharded(net, {&data}, cfg);
  EXPECT_FALSE(res.base_clusters.empty());
  EXPECT_TRUE(res.flow_clusters.empty());
}

}  // namespace
}  // namespace neat
