// Tests for the trajectory store: insertion, indexes, time-window and
// netflow queries, snapshots, and consistency with Phase 1.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"
#include "core/clusterer.h"
#include "core/netflow.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "store/trajectory_store.h"
#include "test_util.h"

namespace neat::store {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class StoreFixture : public ::testing::Test {
 protected:
  StoreFixture() : net_(testutil::fig1_network()), store_(net_) {
    for (traj::Trajectory& tr : testutil::fig1_trajectories(net_)) {
      store_.insert(std::move(tr));
    }
  }

  roadnet::RoadNetwork net_;
  TrajectoryStore store_;
};

TEST_F(StoreFixture, SizeAndStats) {
  EXPECT_EQ(store_.size(), 5u);
  const StoreStats st = store_.stats();
  EXPECT_EQ(st.num_trajectories, 5u);
  EXPECT_EQ(st.num_traversals, 10u);  // 2 fragments x 5 trajectories
  EXPECT_EQ(st.num_indexed_segments, 4u);
  EXPECT_GT(st.num_points, 0u);
}

TEST_F(StoreFixture, FindById) {
  const traj::Trajectory* tr = store_.find(TrajectoryId(3));
  ASSERT_NE(tr, nullptr);
  EXPECT_EQ(tr->id(), TrajectoryId(3));
  EXPECT_EQ(store_.find(TrajectoryId(99)), nullptr);
}

TEST_F(StoreFixture, RejectsDuplicatesAndEmpties) {
  EXPECT_THROW(store_.insert(testutil::make_path_trajectory(net_, 1, {NodeId(0), NodeId(1)})),
               PreconditionError);
  EXPECT_THROW(store_.insert(traj::Trajectory(TrajectoryId(77))), PreconditionError);
}

TEST_F(StoreFixture, TraversalsSortedByTime) {
  const auto ts = store_.traversals(SegmentId(0));  // S1: 4 traversals
  ASSERT_EQ(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1].enter_t, ts[i].enter_t);
  }
  for (const Traversal& t : ts) EXPECT_LE(t.enter_t, t.exit_t);
  EXPECT_TRUE(store_.traversals(SegmentId(1)).size() == 3u);
  EXPECT_THROW(store_.traversals(SegmentId(99)), Error);
}

TEST(Store, RepeatedReadsDoNotResort) {
  // traversals() is zero-copy: the per-segment list is maintained sorted at
  // insert, so repeated reads return the same vector without re-sorting.
  const roadnet::RoadNetwork net = testutil::line_network(2);
  TrajectoryStore store(net);
  // Insert out of time order: trid 7 enters segment 0 at t=100, trid 3 at
  // t=0, trid 5 also at t=0 (ties break by ascending trajectory id).
  store.insert(testutil::make_path_trajectory(net, 7, {NodeId(0), NodeId(1)}, 100.0));
  store.insert(testutil::make_path_trajectory(net, 5, {NodeId(0), NodeId(1)}, 0.0));
  store.insert(testutil::make_path_trajectory(net, 3, {NodeId(0), NodeId(1)}, 0.0));

  const std::vector<Traversal>& first = store.traversals(SegmentId(0));
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].trid, TrajectoryId(3));
  EXPECT_EQ(first[1].trid, TrajectoryId(5));
  EXPECT_EQ(first[2].trid, TrajectoryId(7));
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].enter_t, first[i].enter_t);
  }
  // Same storage on every read (reference identity, no copy, no re-sort).
  EXPECT_EQ(&first, &store.traversals(SegmentId(0)));
  // A segment nobody traversed yields the shared empty list, also stable.
  const std::vector<Traversal>& empty = store.traversals(SegmentId(1));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(&empty, &store.traversals(SegmentId(1)));
}

TEST_F(StoreFixture, TrajectoriesOnSegmentMatchFig1Participants) {
  // PTr(S1) = {1, 2, 3, 5}; PTr(S3) = {3}.
  EXPECT_EQ(store_.trajectories_on(SegmentId(0), -kInf, kInf),
            (std::vector<TrajectoryId>{TrajectoryId(1), TrajectoryId(2), TrajectoryId(3),
                                       TrajectoryId(5)}));
  EXPECT_EQ(store_.trajectories_on(SegmentId(2), -kInf, kInf),
            (std::vector<TrajectoryId>{TrajectoryId(3)}));
}

TEST_F(StoreFixture, TimeWindowFilters) {
  // All fig1 trajectories start at t = 0 and run a few seconds.
  EXPECT_FALSE(store_.trajectories_on(SegmentId(0), 0.0, 10.0).empty());
  EXPECT_TRUE(store_.trajectories_on(SegmentId(0), 1000.0, 2000.0).empty());
  EXPECT_THROW(store_.trajectories_on(SegmentId(0), 5.0, 1.0), PreconditionError);
}

TEST_F(StoreFixture, SegmentNetflowMatchesPaperExample) {
  EXPECT_EQ(store_.segment_netflow(SegmentId(0), SegmentId(1)), 2);  // f(S1,S2)
  EXPECT_EQ(store_.segment_netflow(SegmentId(0), SegmentId(2)), 1);  // f(S1,S3)
  EXPECT_EQ(store_.segment_netflow(SegmentId(1), SegmentId(2)), 0);  // f(S2,S3)
  EXPECT_EQ(store_.segment_netflow(SegmentId(1), SegmentId(3)), 1);  // f(S2,S4)
}

TEST_F(StoreFixture, ActiveBetween) {
  EXPECT_EQ(store_.active_between(0.0, 100.0).size(), 5u);
  EXPECT_TRUE(store_.active_between(1000.0, 2000.0).empty());
}

TEST_F(StoreFixture, SnapshotRangeAndFull) {
  const traj::TrajectoryDataset some = store_.snapshot(TrajectoryId(2), TrajectoryId(4));
  ASSERT_EQ(some.size(), 3u);
  EXPECT_EQ(some[0].id(), TrajectoryId(2));
  EXPECT_EQ(some[2].id(), TrajectoryId(4));
  EXPECT_EQ(store_.snapshot().size(), 5u);
  EXPECT_THROW(store_.snapshot(TrajectoryId(4), TrajectoryId(2)), PreconditionError);
}

TEST_F(StoreFixture, SnapshotBetween) {
  // Fig1 trips all start at t = 0 and last a few seconds.
  EXPECT_EQ(store_.snapshot_between(0.0, 100.0).size(), 5u);
  EXPECT_TRUE(store_.snapshot_between(1000.0, 2000.0).empty());
  EXPECT_THROW(store_.snapshot_between(5.0, 1.0), PreconditionError);
}

TEST(Store, WindowBoundarySemantics) {
  // Window predicates treat trajectory spans and windows as closed
  // intervals: an exact touch at either endpoint counts.
  const roadnet::RoadNetwork net = testutil::line_network(2);
  TrajectoryStore store(net);
  // One trajectory spanning [10, 13] (4 samples, 1 s apart, from t0=10).
  store.insert(testutil::make_path_trajectory(net, 1, {NodeId(0), NodeId(1), NodeId(2)}, 10.0));

  // Exact touch at the trajectory's end...
  EXPECT_EQ(store.active_between(13.0, 99.0).size(), 1u);
  EXPECT_EQ(store.snapshot_between(13.0, 99.0).size(), 1u);
  // ...and at its start.
  EXPECT_EQ(store.active_between(-99.0, 10.0).size(), 1u);
  EXPECT_EQ(store.snapshot_between(-99.0, 10.0).size(), 1u);
  // Just past either endpoint misses.
  EXPECT_TRUE(store.active_between(13.001, 99.0).empty());
  EXPECT_TRUE(store.snapshot_between(-99.0, 9.999).empty());
  // A degenerate window [t, t] inside the span still matches.
  EXPECT_EQ(store.active_between(11.0, 11.0).size(), 1u);
  EXPECT_EQ(store.snapshot_between(11.0, 11.0).size(), 1u);
  // Infinite windows see everything; inverted windows are rejected.
  EXPECT_EQ(store.active_between(-kInf, kInf).size(), 1u);
  EXPECT_EQ(store.snapshot_between(-kInf, kInf).size(), 1u);
  EXPECT_THROW(store.active_between(2.0, 1.0), PreconditionError);
  EXPECT_THROW(store.snapshot_between(2.0, 1.0), PreconditionError);

  // trajectories_on applies the same closed-interval rule per traversal
  // (the traversal ends at the interpolated junction-crossing time).
  const auto& on_s0 = store.traversals(SegmentId(0));
  ASSERT_EQ(on_s0.size(), 1u);
  const double exit_t = on_s0[0].exit_t;
  EXPECT_EQ(store.trajectories_on(SegmentId(0), exit_t, 99.0).size(), 1u);
  EXPECT_TRUE(store.trajectories_on(SegmentId(0), exit_t + 0.001, 99.0).empty());
}

TEST(Store, StatsAfterBulkInsert) {
  const roadnet::RoadNetwork net = roadnet::make_grid(6, 6, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 2);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(20, 5);
  TrajectoryStore store(net);
  store.insert(data);

  std::size_t points = 0;
  for (const traj::Trajectory& tr : data) points += tr.size();
  const StoreStats st = store.stats();
  EXPECT_EQ(st.num_trajectories, data.size());
  EXPECT_EQ(st.num_points, points);
  // Every trajectory contributes at least one traversal, and every
  // traversal lands on an indexed segment.
  EXPECT_GE(st.num_traversals, data.size());
  EXPECT_GE(st.num_indexed_segments, 1u);
  EXPECT_LE(st.num_indexed_segments, net.segment_count());
  // The traversal count equals the sum of the per-segment list sizes.
  std::size_t listed = 0;
  for (std::size_t s = 0; s < net.segment_count(); ++s) {
    listed += store.traversals(SegmentId(static_cast<std::int32_t>(s))).size();
  }
  EXPECT_EQ(listed, st.num_traversals);
}

TEST(Store, TimeSlicedClusteringSeesOnlyWindowTraffic) {
  // Morning and evening traffic use disjoint corridors; clustering the
  // morning slice must not see the evening flows.
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 110.0);
  TrajectoryStore store(net);
  // Morning (t ~ 0): along the bottom row. Evening (t ~ 10000): top row.
  std::vector<NodeId> bottom;
  std::vector<NodeId> top;
  for (int c = 0; c < 8; ++c) {
    bottom.push_back(NodeId(c));
    top.push_back(NodeId(7 * 8 + c));
  }
  for (std::int64_t i = 0; i < 5; ++i) {
    store.insert(testutil::make_path_trajectory(net, i, bottom, 0.0));
    store.insert(testutil::make_path_trajectory(net, 100 + i, top, 10000.0));
  }
  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result morning = NeatClusterer(net, cfg).run(store.snapshot_between(0.0, 5000.0));
  const Result evening =
      NeatClusterer(net, cfg).run(store.snapshot_between(9000.0, 20000.0));
  ASSERT_FALSE(morning.flow_clusters.empty());
  ASSERT_FALSE(evening.flow_clusters.empty());
  for (const FlowCluster& f : morning.flow_clusters) {
    for (const NodeId j : f.junctions) {
      EXPECT_LT(net.node(j).pos.y, 200.0) << "morning flows stay on the bottom row";
    }
  }
  for (const FlowCluster& f : evening.flow_clusters) {
    for (const NodeId j : f.junctions) {
      EXPECT_GT(net.node(j).pos.y, 600.0) << "evening flows stay on the top row";
    }
  }
}

TEST(Store, SnapshotFeedsClusteringUnchanged) {
  // Property: clustering the store snapshot equals clustering the original
  // dataset (the store is lossless).
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(30, 44);
  TrajectoryStore store(net);
  store.insert(data);

  Config cfg;
  cfg.mode = Mode::kFlow;
  const Result direct = NeatClusterer(net, cfg).run(data);
  const Result via_store = NeatClusterer(net, cfg).run(store.snapshot());
  ASSERT_EQ(direct.flow_clusters.size(), via_store.flow_clusters.size());
  for (std::size_t i = 0; i < direct.flow_clusters.size(); ++i) {
    EXPECT_EQ(direct.flow_clusters[i].route, via_store.flow_clusters[i].route);
  }
}

TEST(Store, GapRepairedSegmentsAreIndexed) {
  // A trajectory that skips a segment still registers a traversal on it
  // (the store uses Phase 1 extraction, which repairs the gap).
  const roadnet::RoadNetwork net = testutil::line_network(4);
  TrajectoryStore store(net);
  traj::Trajectory tr(TrajectoryId(1));
  tr.append(traj::Location{SegmentId(0), {60, 0}, 0.0, false});
  tr.append(traj::Location{SegmentId(2), {240, 0}, 18.0, false});
  store.insert(std::move(tr));
  EXPECT_EQ(store.trajectories_on(SegmentId(1), -kInf, kInf).size(), 1u);
}

TEST(Store, SegmentNetflowAgreesWithClusterNetflow) {
  // Property: store-level segment netflow equals the Phase 1 base-cluster
  // netflow for every adjacent segment pair.
  const roadnet::RoadNetwork net = roadnet::make_grid(7, 7, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 2);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, scfg).generate(25, 8);
  TrajectoryStore store(net);
  store.insert(data);

  const Fragmenter fragmenter(net);
  const Phase1Output p1 = fragmenter.build_base_clusters(data);
  for (std::size_t i = 0; i < p1.base_clusters.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(p1.base_clusters.size(), i + 5); ++j) {
      const int via_clusters = netflow(p1.base_clusters[i], p1.base_clusters[j]);
      const int via_store =
          store.segment_netflow(p1.base_clusters[i].sid(), p1.base_clusters[j].sid());
      EXPECT_EQ(via_clusters, via_store);
    }
  }
}

}  // namespace
}  // namespace neat::store
