// Tests for the Trajectory-OPTICS whole-trajectory baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/trajectory_optics.h"
#include "roadnet/builder.h"
#include "common/error.h"
#include "core/clusterer.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

namespace neat::baselines {
namespace {

traj::Trajectory straight(std::int64_t id, double y, double t0 = 0.0, double speed = 10.0) {
  traj::Trajectory tr{TrajectoryId(id)};
  for (int i = 0; i <= 10; ++i) {
    tr.append(traj::Location{SegmentId(0), {i * 100.0, y}, t0 + i * 100.0 / speed, false});
  }
  return tr;
}

TEST(TrajectoryDistance, ParallelLinesAtConstantOffset) {
  OpticsConfig cfg;
  const traj::Trajectory a = straight(1, 0.0);
  const traj::Trajectory b = straight(2, 50.0);
  EXPECT_NEAR(trajectory_distance(a, b, cfg), 50.0, 1e-9);
  EXPECT_NEAR(trajectory_distance(a, a, cfg), 0.0, 1e-9);
  EXPECT_NEAR(trajectory_distance(b, a, cfg), trajectory_distance(a, b, cfg), 1e-12);
}

TEST(TrajectoryDistance, AbsoluteTimeRequiresOverlap) {
  OpticsConfig cfg;
  cfg.align = AlignMode::kAbsoluteTime;
  const traj::Trajectory a = straight(1, 0.0, 0.0);
  const traj::Trajectory b = straight(2, 0.0, 5000.0);  // starts after a ends
  EXPECT_TRUE(std::isinf(trajectory_distance(a, b, cfg)));
  // Identical timing: distance equals the offset.
  const traj::Trajectory c = straight(3, 30.0, 0.0);
  EXPECT_NEAR(trajectory_distance(a, c, cfg), 30.0, 1e-9);
}

TEST(TrajectoryDistance, RelativeModeIgnoresDeparture) {
  OpticsConfig cfg;
  cfg.align = AlignMode::kRelativeProgress;
  const traj::Trajectory a = straight(1, 0.0, 0.0);
  const traj::Trajectory b = straight(2, 20.0, 9999.0);  // same shape, later start
  EXPECT_NEAR(trajectory_distance(a, b, cfg), 20.0, 1e-9);
}

TEST(TrajectoryDistance, TimeShiftGrowsAbsoluteDistance) {
  OpticsConfig cfg;
  cfg.align = AlignMode::kAbsoluteTime;
  const traj::Trajectory a = straight(1, 0.0, 0.0);
  const traj::Trajectory late = straight(2, 0.0, 30.0);  // 300 m behind in time
  const double d = trajectory_distance(a, late, cfg);
  EXPECT_GT(d, 100.0);  // substantially apart despite identical geometry
}

TEST(Optics, TwoBundlesTwoClusters) {
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int i = 0; i < 6; ++i) data.add(straight(++id, i * 10.0));
  for (int i = 0; i < 6; ++i) data.add(straight(++id, 5000.0 + i * 10.0));
  OpticsConfig cfg;
  cfg.eps = 200.0;
  cfg.min_pts = 3;
  const OpticsResult res = run_trajectory_optics(data, cfg);
  EXPECT_EQ(res.num_clusters, 2u);
  // All members of one bundle share a label.
  for (int i = 1; i < 6; ++i) EXPECT_EQ(res.labels[static_cast<std::size_t>(i)], res.labels[0]);
  for (int i = 7; i < 12; ++i) EXPECT_EQ(res.labels[static_cast<std::size_t>(i)], res.labels[6]);
  EXPECT_NE(res.labels[0], res.labels[6]);
}

TEST(Optics, OutlierIsNoise) {
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int i = 0; i < 5; ++i) data.add(straight(++id, i * 10.0));
  data.add(straight(++id, 90000.0));
  OpticsConfig cfg;
  cfg.eps = 200.0;
  cfg.min_pts = 3;
  const OpticsResult res = run_trajectory_optics(data, cfg);
  EXPECT_EQ(res.labels.back(), -1);
  EXPECT_EQ(res.num_clusters, 1u);
}

TEST(Optics, OrderingIsAPermutation) {
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int i = 0; i < 9; ++i) data.add(straight(++id, i * 40.0));
  OpticsConfig cfg;
  cfg.eps = 100.0;
  cfg.min_pts = 2;
  const OpticsResult res = run_trajectory_optics(data, cfg);
  ASSERT_EQ(res.ordering.size(), data.size());
  std::vector<std::size_t> sorted = res.ordering;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  ASSERT_EQ(res.reachability.size(), res.ordering.size());
  EXPECT_TRUE(std::isinf(res.reachability.front()));
}

TEST(Optics, DeterministicAndValidated) {
  traj::TrajectoryDataset data;
  std::int64_t id = 0;
  for (int i = 0; i < 8; ++i) data.add(straight(++id, i * 25.0));
  OpticsConfig cfg;
  cfg.eps = 120.0;
  cfg.min_pts = 3;
  const OpticsResult a = run_trajectory_optics(data, cfg);
  const OpticsResult b = run_trajectory_optics(data, cfg);
  EXPECT_EQ(a.ordering, b.ordering);
  EXPECT_EQ(a.labels, b.labels);

  cfg.eps = 0.0;
  EXPECT_THROW(run_trajectory_optics(data, cfg), PreconditionError);
  cfg = OpticsConfig{};
  cfg.min_pts = 0;
  EXPECT_THROW(run_trajectory_optics(data, cfg), PreconditionError);
  cfg = OpticsConfig{};
  cfg.sample_points = 1;
  EXPECT_THROW(run_trajectory_optics(data, cfg), PreconditionError);
}

TEST(Optics, EmptyDataset) {
  const OpticsResult res = run_trajectory_optics(traj::TrajectoryDataset{}, OpticsConfig{});
  EXPECT_TRUE(res.ordering.empty());
  EXPECT_EQ(res.num_clusters, 0u);
}

TEST(Optics, WholeTrajectoryClusteringMissesSharedSubRoutes) {
  // The paper's §I motivation, as an executable claim: two commuter groups
  // with far-apart endpoints share a long middle corridor — a fast central
  // arterial both detour through under time-based routing. Whole-trajectory
  // OPTICS keeps the groups apart (average distance is dominated by the
  // distinct endpoints); NEAT's sub-trajectory flows expose the shared
  // corridor as a flow travelled by members of both groups.
  constexpr int kSize = 13;
  constexpr double kSpacing = 100.0;
  roadnet::RoadNetworkBuilder builder;
  std::vector<NodeId> nodes;
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      nodes.push_back(builder.add_node({c * kSpacing, r * kSpacing}));
    }
  }
  const auto at = [&](int r, int c) { return nodes[static_cast<std::size_t>(r * kSize + c)]; };
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      if (c + 1 < kSize) builder.add_segment(at(r, c), at(r, c + 1), 5.0);
      if (r + 1 < kSize) {
        // The centre column is a 25 m/s arterial; everything else crawls.
        builder.add_segment(at(r, c), at(r + 1, c), c == 6 ? 25.0 : 5.0);
      }
    }
  }
  const roadnet::RoadNetwork net = builder.build();

  // Group A commutes up the left side, group B up the right side; both are
  // pulled through the central arterial by the travel-time metric.
  const auto make_group = [&](NodeId origin, NodeId dest, std::uint64_t seed,
                              std::int64_t id_base) {
    sim::SimConfig scfg;
    scfg.hotspots = {origin};
    scfg.destinations = {dest};
    scfg.hotspot_radius_m = 0.0;
    const traj::TrajectoryDataset raw =
        sim::MobilitySimulator(net, scfg).generate(10, seed);
    traj::TrajectoryDataset tagged;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      tagged.add(traj::Trajectory(TrajectoryId(id_base + static_cast<std::int64_t>(i)),
                                  raw[i].points()));
    }
    return tagged;
  };
  traj::TrajectoryDataset data = make_group(at(0, 2), at(12, 2), 4, 0);
  for (traj::Trajectory tr : make_group(at(0, 10), at(12, 10), 5, 1000)) {
    data.add(std::move(tr));
  }
  // Sanity: the detour really goes through the centre column.
  bool group_a_uses_center = false;
  for (const traj::Location& loc : data[0].points()) {
    if (std::fabs(loc.pos.x - 600.0) < 1.0) group_a_uses_center = true;
  }
  ASSERT_TRUE(group_a_uses_center) << "test premise: routes detour via the arterial";

  OpticsConfig ocfg;
  ocfg.eps = 150.0;
  ocfg.min_pts = 3;
  const OpticsResult optics = run_trajectory_optics(data, ocfg);
  EXPECT_GE(optics.num_clusters, 2u) << "whole-trajectory view separates the groups";

  Config ncfg;
  ncfg.mode = Mode::kFlow;
  const Result neat_res = NeatClusterer(net, ncfg).run(data);
  bool shared_flow = false;
  for (const FlowCluster& f : neat_res.flow_clusters) {
    bool has_a = false;
    bool has_b = false;
    for (const TrajectoryId trid : f.participants) {
      if (trid.value() < 1000) has_a = true;
      if (trid.value() >= 1000) has_b = true;
    }
    if (has_a && has_b) shared_flow = true;
  }
  EXPECT_TRUE(shared_flow) << "NEAT must discover the shared corridor";
}

}  // namespace
}  // namespace neat::baselines
