// Tests for NEAT Phase 2 — flow cluster formation: merging-selectivity
// weight presets (Definitions 9–10), β-domination (the paper's §III-B.2
// example), minCard filtering, bidirectional expansion, and determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/flow_builder.h"
#include "core/fragmenter.h"
#include "roadnet/builder.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "test_util.h"

namespace neat {
namespace {

Phase1Output phase1(const roadnet::RoadNetwork& net, const traj::TrajectoryDataset& data) {
  return Fragmenter(net).build_base_clusters(data);
}

traj::TrajectoryDataset fig1_dataset(const roadnet::RoadNetwork& net) {
  traj::TrajectoryDataset data;
  for (traj::Trajectory& tr : testutil::fig1_trajectories(net)) data.add(std::move(tr));
  return data;
}

TEST(FlowConfigValidation, RejectsBadWeightsAndBeta) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const std::vector<BaseCluster> empty;
  FlowConfig cfg;
  cfg.wq = -1.0;
  EXPECT_THROW(FlowBuilder(net, empty, cfg), PreconditionError);
  cfg = FlowConfig{};
  cfg.wq = cfg.wk = cfg.wv = 0.0;
  EXPECT_THROW(FlowBuilder(net, empty, cfg), PreconditionError);
  cfg = FlowConfig{};
  cfg.beta = 0.5;
  EXPECT_THROW(FlowBuilder(net, empty, cfg), PreconditionError);
}

TEST(FlowBuilder, Fig1MaxFlowMergesS1WithS2) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Phase1Output p1 = phase1(net, fig1_dataset(net));
  FlowConfig cfg;  // (wq, wk, wv) = (1, 0, 0): pure maxFlow-neighbor
  cfg.min_card = 0.0;
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  ASSERT_EQ(out.flows.size(), 3u);
  // Flow 0 grew from the dense-core S1 and merged its maxFlow-neighbor S2.
  std::vector<SegmentId> route0 = out.flows[0].route;
  std::sort(route0.begin(), route0.end());
  EXPECT_EQ(route0, (std::vector<SegmentId>{SegmentId(0), SegmentId(1)}));
  EXPECT_EQ(out.flows[0].cardinality(), 5);
  // The remaining base clusters have no alive f-neighbors: singleton flows.
  EXPECT_EQ(out.flows[1].route.size(), 1u);
  EXPECT_EQ(out.flows[2].route.size(), 1u);
}

TEST(FlowBuilder, Fig1RouteIsValidAndOriented) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Phase1Output p1 = phase1(net, fig1_dataset(net));
  FlowConfig cfg;
  cfg.min_card = 0.0;
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  const FlowCluster& flow = out.flows[0];
  ASSERT_EQ(flow.junctions.size(), flow.route.size() + 1);
  for (std::size_t i = 0; i < flow.route.size(); ++i) {
    EXPECT_TRUE(net.is_endpoint(flow.route[i], flow.junctions[i]));
    EXPECT_TRUE(net.is_endpoint(flow.route[i], flow.junctions[i + 1]));
  }
  EXPECT_DOUBLE_EQ(flow.route_length, 200.0);  // S1 + S2, 100 m each
}

TEST(FlowBuilder, AutoMinCardIsAverageCardinality) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Phase1Output p1 = phase1(net, fig1_dataset(net));
  FlowConfig cfg;  // min_card < 0: dataset-adaptive default
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  // Flows: {S1,S2} card 5, {S4} card 2, {S3} card 1 -> average 8/3.
  EXPECT_NEAR(out.effective_min_card, 8.0 / 3.0, 1e-9);
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_EQ(out.flows[0].cardinality(), 5);
  EXPECT_EQ(out.filtered_flows.size(), 2u);
}

TEST(FlowBuilder, ExplicitMinCardFilter) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Phase1Output p1 = phase1(net, fig1_dataset(net));
  FlowConfig cfg;
  cfg.min_card = 2.0;
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  EXPECT_EQ(out.flows.size(), 2u);      // cards 5 and 2 survive
  EXPECT_EQ(out.filtered_flows.size(), 1u);  // card 1 filtered
  EXPECT_DOUBLE_EQ(out.effective_min_card, 2.0);
}

TEST(FlowBuilder, EveryBaseClusterAssignedExactlyOnce) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const Phase1Output p1 = phase1(net, fig1_dataset(net));
  FlowConfig cfg;
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  std::vector<std::size_t> seen;
  for (const auto* flows : {&out.flows, &out.filtered_flows}) {
    for (const FlowCluster& f : *flows) {
      for (const std::size_t m : f.members) seen.push_back(m);
    }
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::size_t> want(p1.base_clusters.size());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = i;
  EXPECT_EQ(seen, want);
}

// --- weight presets ---------------------------------------------------------

// A junction with two competing continuations: B has the stronger netflow,
// C the higher density and speed. Weight presets must steer the choice.
class WeightPresets : public ::testing::Test {
 protected:
  WeightPresets() {
    roadnet::RoadNetworkBuilder b;
    const NodeId n0 = b.add_node({0, 0});
    const NodeId n1 = b.add_node({100, 0});
    const NodeId n2 = b.add_node({200, 0});
    const NodeId n3 = b.add_node({100, 100});
    b.add_segment(n0, n1, 10.0);  // A (sid 0)
    b.add_segment(n1, n2, 5.0);   // B (sid 1), slow
    b.add_segment(n1, n3, 20.0);  // C (sid 2), fast
    net_ = b.build();

    std::int64_t trid = 0;
    // 5 trips A -> B: f(A, B) = 5, d(B) = 5.
    for (int i = 0; i < 5; ++i) {
      data_.add(testutil::make_path_trajectory(net_, ++trid, {n0, n1, n2}));
    }
    // 1 trip A -> C: f(A, C) = 1.
    data_.add(testutil::make_path_trajectory(net_, ++trid, {n0, n1, n3}));
    // 8 C-only trips: d(C) = 9 > d(B).
    for (int i = 0; i < 8; ++i) {
      data_.add(testutil::make_path_trajectory(net_, ++trid, {n1, n3}));
    }
    // 11 A-only trips so A is the dense-core: d(A) = 17.
    for (int i = 0; i < 11; ++i) {
      data_.add(testutil::make_path_trajectory(net_, ++trid, {n0, n1}));
    }
  }

  SegmentId second_segment_of_first_flow(const FlowConfig& cfg) const {
    const Phase1Output p1 = phase1(net_, data_);
    EXPECT_EQ(p1.base_clusters.front().sid(), SegmentId(0)) << "A must be the dense-core";
    FlowConfig with_all = cfg;
    with_all.min_card = 0.0;
    const Phase2Output out = FlowBuilder(net_, p1.base_clusters, with_all).build();
    for (const FlowCluster& f : out.flows) {
      if (f.route.size() >= 2) {
        // The non-A segment of the dense-core flow.
        return f.route.front() == SegmentId(0) ? f.route[1] : f.route.front();
      }
    }
    return SegmentId::invalid();
  }

  roadnet::RoadNetwork net_;
  traj::TrajectoryDataset data_;
};

TEST_F(WeightPresets, PureFlowWeightPicksMaxFlowNeighbor) {
  FlowConfig cfg;
  cfg.wq = 1.0;
  cfg.wk = 0.0;
  cfg.wv = 0.0;
  EXPECT_EQ(second_segment_of_first_flow(cfg), SegmentId(1));  // B
}

TEST_F(WeightPresets, PureDensityWeightPicksDensestNeighbor) {
  FlowConfig cfg;
  cfg.wq = 0.0;
  cfg.wk = 1.0;
  cfg.wv = 0.0;
  EXPECT_EQ(second_segment_of_first_flow(cfg), SegmentId(2));  // C
}

TEST_F(WeightPresets, PureSpeedWeightPicksFastestNeighbor) {
  FlowConfig cfg;
  cfg.wq = 0.0;
  cfg.wk = 0.0;
  cfg.wv = 1.0;
  EXPECT_EQ(second_segment_of_first_flow(cfg), SegmentId(2));  // C (20 m/s)
}

TEST_F(WeightPresets, SelectivityFactorsHandComputed) {
  const Phase1Output p1 = phase1(net_, data_);
  const BaseCluster* a = nullptr;
  const BaseCluster* bc = nullptr;
  const BaseCluster* c = nullptr;
  for (const BaseCluster& cl : p1.base_clusters) {
    if (cl.sid() == SegmentId(0)) a = &cl;
    if (cl.sid() == SegmentId(1)) bc = &cl;
    if (cl.sid() == SegmentId(2)) c = &cl;
  }
  ASSERT_TRUE(a != nullptr && bc != nullptr && c != nullptr);
  const std::vector<const BaseCluster*> hood{bc, c};
  const SelectivityFactors fb = selectivity_factors(net_, *a, *bc, hood);
  const SelectivityFactors fc = selectivity_factors(net_, *a, *c, hood);
  // q = f(A, X) / |PTr(A)|; |PTr(A)| = 17 trips.
  EXPECT_NEAR(fb.q, 5.0 / 17.0, 1e-12);
  EXPECT_NEAR(fc.q, 1.0 / 17.0, 1e-12);
  // k = d(X) / (d(A) + d(B) + d(C)) = d(X) / 31.
  EXPECT_NEAR(fb.k, 5.0 / 31.0, 1e-12);
  EXPECT_NEAR(fc.k, 9.0 / 31.0, 1e-12);
  // v = speed(X) / (speed(B) + speed(C)) = speed(X) / 25.
  EXPECT_NEAR(fb.v, 5.0 / 25.0, 1e-12);
  EXPECT_NEAR(fc.v, 20.0 / 25.0, 1e-12);
  // SF with normalized equal weights.
  FlowConfig cfg;
  cfg.wq = cfg.wk = cfg.wv = 1.0 / 3.0;
  EXPECT_NEAR(fb.sf(cfg), (fb.q + fb.k + fb.v) / 3.0, 1e-12);
}

// --- β-domination: the paper's worked example -------------------------------

// Base cluster S has f-neighbors S1, S2 with f(S,S1)=5, f(S,S2)=2 and a
// dominant mutual netflow f(S1,S2)=50. With β <= 10 the pair is removed and
// S stays alone; S1 and S2 then form their own flow (§III-B.2).
class BetaDomination : public ::testing::Test {
 protected:
  BetaDomination() {
    roadnet::RoadNetworkBuilder b;
    const NodeId n0 = b.add_node({0, 0});
    const NodeId n1 = b.add_node({100, 0});
    const NodeId n2 = b.add_node({200, 50});
    const NodeId n3 = b.add_node({200, -50});
    b.add_segment(n0, n1, 10.0);  // S  (sid 0)
    b.add_segment(n1, n2, 10.0);  // S1 (sid 1)
    b.add_segment(n1, n3, 10.0);  // S2 (sid 2)
    net_ = b.build();

    std::int64_t trid = 0;
    for (int i = 0; i < 5; ++i) {  // f(S, S1) = 5
      data_.add(testutil::make_path_trajectory(net_, ++trid, {NodeId(0), NodeId(1), NodeId(2)}));
    }
    for (int i = 0; i < 2; ++i) {  // f(S, S2) = 2
      data_.add(testutil::make_path_trajectory(net_, ++trid, {NodeId(0), NodeId(1), NodeId(3)}));
    }
    for (int i = 0; i < 50; ++i) {  // f(S1, S2) = 50
      data_.add(testutil::make_path_trajectory(net_, ++trid, {NodeId(2), NodeId(1), NodeId(3)}));
    }
    for (int i = 0; i < 60; ++i) {  // make S the dense-core: d(S) = 67
      data_.add(testutil::make_path_trajectory(net_, ++trid, {NodeId(0), NodeId(1)}));
    }
  }

  roadnet::RoadNetwork net_;
  traj::TrajectoryDataset data_;
};

TEST_F(BetaDomination, FiniteBetaSplitsDominantPairIntoOwnFlow) {
  const Phase1Output p1 = phase1(net_, data_);
  ASSERT_EQ(p1.base_clusters.front().sid(), SegmentId(0)) << "S must be the dense-core";
  FlowConfig cfg;
  cfg.beta = 5.0;  // 50 / 5 = 10 >= 5: dominated
  cfg.min_card = 0.0;
  const Phase2Output out = FlowBuilder(net_, p1.base_clusters, cfg).build();
  ASSERT_EQ(out.flows.size(), 2u);
  EXPECT_EQ(out.flows[0].route, (std::vector<SegmentId>{SegmentId(0)}));  // S alone
  std::vector<SegmentId> second = out.flows[1].route;
  std::sort(second.begin(), second.end());
  EXPECT_EQ(second, (std::vector<SegmentId>{SegmentId(1), SegmentId(2)}));
}

TEST_F(BetaDomination, InfiniteBetaMissesTheDominantFlow) {
  const Phase1Output p1 = phase1(net_, data_);
  FlowConfig cfg;  // beta = +inf: domination disabled
  cfg.min_card = 0.0;
  const Phase2Output out = FlowBuilder(net_, p1.base_clusters, cfg).build();
  // S greedily absorbs its maxFlow-neighbor S1, so the dominant S1-S2
  // stream (f=50) is cut apart — precisely the failure mode §III-B.2 warns
  // about. S2 attaches at the now-interior junction n1 and stays alone.
  ASSERT_EQ(out.flows.size(), 2u);
  std::vector<SegmentId> first = out.flows[0].route;
  std::sort(first.begin(), first.end());
  EXPECT_EQ(first, (std::vector<SegmentId>{SegmentId(0), SegmentId(1)}));
  EXPECT_EQ(out.flows[1].route, (std::vector<SegmentId>{SegmentId(2)}));
}

TEST_F(BetaDomination, LargeFiniteBetaDoesNotTrigger) {
  const Phase1Output p1 = phase1(net_, data_);
  FlowConfig cfg;
  cfg.beta = 11.0;  // ratio is 10 < 11: not dominated
  cfg.min_card = 0.0;
  const Phase2Output out = FlowBuilder(net_, p1.base_clusters, cfg).build();
  // Same greedy outcome as beta = +infinity.
  ASSERT_EQ(out.flows.size(), 2u);
  std::vector<SegmentId> first = out.flows[0].route;
  std::sort(first.begin(), first.end());
  EXPECT_EQ(first, (std::vector<SegmentId>{SegmentId(0), SegmentId(1)}));
}

// --- expansion and determinism ----------------------------------------------

TEST(FlowBuilder, ExpandsBothEndsFromMiddleDenseCore) {
  const roadnet::RoadNetwork net = testutil::line_network(5);
  traj::TrajectoryDataset data;
  std::int64_t trid = 0;
  const std::vector<NodeId> all{NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4),
                                NodeId(5)};
  for (int i = 0; i < 4; ++i) {
    data.add(testutil::make_path_trajectory(net, ++trid, all));
  }
  // Extra traffic on the middle segment makes it the dense-core.
  for (int i = 0; i < 3; ++i) {
    data.add(testutil::make_path_trajectory(net, ++trid, {NodeId(2), NodeId(3)}));
  }
  const Phase1Output p1 = phase1(net, data);
  EXPECT_EQ(p1.base_clusters.front().sid(), SegmentId(2));
  FlowConfig cfg;
  cfg.min_card = 0.0;
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  ASSERT_EQ(out.flows.size(), 1u);
  // One flow covering the whole line, route in travel order.
  EXPECT_EQ(out.flows[0].route,
            (std::vector<SegmentId>{SegmentId(0), SegmentId(1), SegmentId(2), SegmentId(3),
                                    SegmentId(4)}));
  EXPECT_EQ(out.flows[0].junctions.front(), NodeId(0));
  EXPECT_EQ(out.flows[0].junctions.back(), NodeId(5));
}

TEST(FlowBuilder, DeterministicOnSimulatedData) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  const sim::SimConfig scfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset data = simulator.generate(40, 21);
  const Phase1Output p1 = phase1(net, data);
  FlowConfig cfg;
  const Phase2Output a = FlowBuilder(net, p1.base_clusters, cfg).build();
  const Phase2Output b = FlowBuilder(net, p1.base_clusters, cfg).build();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].route, b.flows[i].route);
    EXPECT_EQ(a.flows[i].participants, b.flows[i].participants);
  }
}

TEST(FlowBuilder, RoutesAreAlwaysValidOnSimulatedData) {
  const roadnet::RoadNetwork net = roadnet::make_grid(9, 9, 110.0);
  const sim::SimConfig scfg = sim::default_config(net, 3, 3);
  const sim::MobilitySimulator simulator(net, scfg);
  const traj::TrajectoryDataset data = simulator.generate(60, 5);
  const Phase1Output p1 = phase1(net, data);
  FlowConfig cfg;
  const Phase2Output out = FlowBuilder(net, p1.base_clusters, cfg).build();
  ASSERT_FALSE(out.flows.empty());
  for (const auto* flows : {&out.flows, &out.filtered_flows}) {
    for (const FlowCluster& f : *flows) {
      ASSERT_EQ(f.junctions.size(), f.route.size() + 1);
      for (std::size_t i = 0; i + 1 < f.route.size(); ++i) {
        EXPECT_TRUE(net.are_adjacent(f.route[i], f.route[i + 1]))
            << "representative route must be a network route (Definition 8)";
      }
      double length = 0.0;
      for (const SegmentId sid : f.route) length += net.segment_length(sid);
      EXPECT_NEAR(length, f.route_length, 1e-6);
      EXPECT_TRUE(std::is_sorted(f.participants.begin(), f.participants.end()));
    }
  }
}

TEST(FlowBuilder, EmptyInputGivesEmptyOutput) {
  const roadnet::RoadNetwork net = testutil::fig1_network();
  const std::vector<BaseCluster> none;
  FlowConfig cfg;
  const Phase2Output out = FlowBuilder(net, none, cfg).build();
  EXPECT_TRUE(out.flows.empty());
  EXPECT_TRUE(out.filtered_flows.empty());
  EXPECT_DOUBLE_EQ(out.effective_min_card, 0.0);
}

}  // namespace
}  // namespace neat
