// Tests for the mobility simulator: physical plausibility invariants of the
// generated traces (on-segment positions, adjacency of consecutive segments,
// speed-limit compliance) plus determinism and config validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "sim/mobility_simulator.h"
#include "sim/trip_planner.h"
#include "test_util.h"

namespace neat::sim {
namespace {

SimConfig line_config(const roadnet::RoadNetwork& net) {
  SimConfig cfg;
  cfg.hotspots = {NodeId(0)};
  cfg.destinations = {NodeId(static_cast<std::int32_t>(net.node_count() - 1))};
  cfg.sample_period_s = 2.0;
  cfg.start_jitter_s = 0.0;
  return cfg;
}

TEST(TripPlanner, CachesPerDestination) {
  const roadnet::RoadNetwork net = roadnet::make_grid(5, 5, 100.0);
  TripPlanner planner(net, roadnet::Metric::kDistance);
  EXPECT_EQ(planner.cached_destinations(), 0u);
  ASSERT_TRUE(planner.plan(NodeId(0), NodeId(24)).has_value());
  ASSERT_TRUE(planner.plan(NodeId(12), NodeId(24)).has_value());
  EXPECT_EQ(planner.cached_destinations(), 1u);
  ASSERT_TRUE(planner.plan(NodeId(24), NodeId(0)).has_value());
  EXPECT_EQ(planner.cached_destinations(), 2u);
  EXPECT_TRUE(planner.reachable(NodeId(0), NodeId(7)));
}

TEST(TripPlanner, RoutesMatchForwardSearch) {
  const roadnet::RoadNetwork net = roadnet::make_grid(6, 6, 100.0);
  TripPlanner planner(net, roadnet::Metric::kDistance);
  for (int s = 0; s < 36; s += 7) {
    const auto planned = planner.plan(NodeId(s), NodeId(35));
    const auto direct =
        roadnet::shortest_route(net, NodeId(s), NodeId(35), roadnet::Metric::kDistance);
    ASSERT_EQ(planned.has_value(), direct.has_value());
    if (planned) {
      EXPECT_NEAR(planned->length, direct->length, 1e-9);
    }
  }
}

TEST(TripPlanner, ChBackedRoutesMatchReverseSsspCosts) {
  roadnet::CityParams params;
  params.rows = 12;
  params.cols = 12;
  params.oneway_probability = 0.3;
  params.seed = 9;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  for (const roadnet::Metric metric :
       {roadnet::Metric::kDistance, roadnet::Metric::kTravelTime}) {
    roadnet::ChOptions copts;
    copts.directed = true;
    copts.metric = metric;
    const auto ch = std::make_shared<const roadnet::ChEngine>(net, copts);
    TripPlanner plain(net, metric);
    TripPlanner hierarchic(net, metric, ch);
    EXPECT_TRUE(hierarchic.uses_ch());
    const auto n = static_cast<std::int32_t>(net.node_count());
    for (std::int32_t s = 0; s < n; s += 17) {
      for (std::int32_t t = n - 1; t > 0; t -= 23) {
        const auto a = plain.plan(NodeId(s), NodeId(t));
        const auto b = hierarchic.plan(NodeId(s), NodeId(t));
        ASSERT_EQ(a.has_value(), b.has_value());
        EXPECT_EQ(plain.reachable(NodeId(s), NodeId(t)), a.has_value());
        EXPECT_EQ(hierarchic.reachable(NodeId(s), NodeId(t)), a.has_value());
        if (!a) continue;
        // Equal-cost routes may differ in the tie-break; the metric total
        // must match exactly.
        if (metric == roadnet::Metric::kDistance) {
          EXPECT_DOUBLE_EQ(a->length, b->length);
        } else {
          EXPECT_DOUBLE_EQ(a->travel_time, b->travel_time);
        }
      }
    }
    EXPECT_EQ(hierarchic.cached_destinations(), 0u);
  }
}

TEST(TripPlanner, RejectsMismatchedChEngine) {
  const roadnet::RoadNetwork net = roadnet::make_grid(4, 4, 100.0);
  const auto undirected = std::make_shared<const roadnet::ChEngine>(net);
  EXPECT_THROW(TripPlanner(net, roadnet::Metric::kDistance, undirected),
               PreconditionError);
  roadnet::ChOptions copts;
  copts.directed = true;
  copts.metric = roadnet::Metric::kTravelTime;
  const auto timed = std::make_shared<const roadnet::ChEngine>(net, copts);
  EXPECT_THROW(TripPlanner(net, roadnet::Metric::kDistance, timed), PreconditionError);
  EXPECT_NO_THROW(TripPlanner(net, roadnet::Metric::kTravelTime, timed));
}

TEST(MobilitySimulator, ChRoutingKeepsTripInvariantsAndDeterminism) {
  roadnet::CityParams params;
  params.rows = 10;
  params.cols = 10;
  params.seed = 4;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  SimConfig cfg = default_config(net, 2, 3);
  cfg.use_ch_routing = true;
  const MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset a = simulator.generate(40, 11);
  const traj::TrajectoryDataset b = simulator.generate(40, 11);
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t p = 0; p < a[i].size(); ++p) {
      EXPECT_EQ(a[i].points()[p].sid, b[i].points()[p].sid);
      EXPECT_EQ(a[i].points()[p].pos.x, b[i].points()[p].pos.x);
    }
    for (const traj::Location& loc : a[i].points()) {
      const roadnet::Segment& s = net.segment(loc.sid);
      const double d =
          point_segment_distance(loc.pos, net.node(s.a).pos, net.node(s.b).pos);
      EXPECT_LT(d, 1e-6) << "sample must lie on its claimed segment";
    }
  }
}

TEST(SimulateTrip, SamplesLieOnClaimedSegments) {
  const roadnet::RoadNetwork net = roadnet::make_grid(4, 4, 100.0);
  const auto route = roadnet::shortest_route(net, NodeId(0), NodeId(15),
                                             roadnet::Metric::kDistance);
  ASSERT_TRUE(route.has_value());
  SimConfig cfg;
  cfg.hotspots = {NodeId(0)};
  cfg.destinations = {NodeId(15)};
  cfg.sample_period_s = 1.5;
  const traj::Trajectory tr =
      simulate_trip(net, cfg, TrajectoryId(1), *route, 0.0, 0.9);
  ASSERT_GE(tr.size(), 2u);
  for (const traj::Location& loc : tr.points()) {
    const roadnet::Segment& s = net.segment(loc.sid);
    const double d = point_segment_distance(loc.pos, net.node(s.a).pos, net.node(s.b).pos);
    EXPECT_LT(d, 1e-6) << "sample must lie on its claimed segment";
  }
}

TEST(SimulateTrip, StartsAtOriginEndsAtDestination) {
  const roadnet::RoadNetwork net = testutil::line_network(5);
  const auto route =
      roadnet::shortest_route(net, NodeId(0), NodeId(5), roadnet::Metric::kDistance);
  ASSERT_TRUE(route.has_value());
  const traj::Trajectory tr =
      simulate_trip(net, line_config(net), TrajectoryId(1), *route, 10.0, 1.0);
  EXPECT_EQ(tr.front().pos, net.node(NodeId(0)).pos);
  EXPECT_DOUBLE_EQ(tr.front().t, 10.0);
  EXPECT_EQ(tr.back().pos, net.node(NodeId(5)).pos);
  // 500 m at 10 m/s -> 50 s travel.
  EXPECT_NEAR(tr.back().t, 60.0, 1e-9);
}

TEST(SimulateTrip, RespectsSpeedLimit) {
  const roadnet::RoadNetwork net = testutil::line_network(5, 100.0, 10.0);
  const auto route =
      roadnet::shortest_route(net, NodeId(0), NodeId(5), roadnet::Metric::kDistance);
  ASSERT_TRUE(route.has_value());
  SimConfig cfg = line_config(net);
  const traj::Trajectory tr = simulate_trip(net, cfg, TrajectoryId(1), *route, 0.0, 0.85);
  for (std::size_t i = 1; i < tr.size(); ++i) {
    const double dt = tr.point(i).t - tr.point(i - 1).t;
    const double dx = distance(tr.point(i).pos, tr.point(i - 1).pos);
    if (dt > 0.0) {
      EXPECT_LE(dx / dt, 10.0 + 1e-9) << "observed speed above the limit";
    }
  }
}

TEST(SimulateTrip, ConsecutiveSegmentsAdjacentOrEqual) {
  const roadnet::RoadNetwork net = roadnet::make_grid(5, 5, 100.0);
  const auto route =
      roadnet::shortest_route(net, NodeId(0), NodeId(24), roadnet::Metric::kDistance);
  ASSERT_TRUE(route.has_value());
  SimConfig cfg;
  cfg.hotspots = {NodeId(0)};
  cfg.destinations = {NodeId(24)};
  cfg.sample_period_s = 3.0;
  const traj::Trajectory tr = simulate_trip(net, cfg, TrajectoryId(1), *route, 0.0, 1.0);
  for (std::size_t i = 1; i < tr.size(); ++i) {
    const SegmentId prev = tr.point(i - 1).sid;
    const SegmentId cur = tr.point(i).sid;
    EXPECT_TRUE(prev == cur || net.are_adjacent(prev, cur))
        << "at point " << i << ": sampling may not skip segments at 3 s period";
  }
}

TEST(Simulator, DeterministicForSeed) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  const SimConfig cfg = default_config(net, 2, 3);
  const MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset a = simulator.generate(20, 7);
  const traj::TrajectoryDataset b = simulator.generate(20, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i].point(j).sid, b[i].point(j).sid);
      EXPECT_DOUBLE_EQ(a[i].point(j).t, b[i].point(j).t);
    }
  }
  const traj::TrajectoryDataset c = simulator.generate(20, 8);
  bool any_difference = c.size() != a.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].size() != c[i].size();
  }
  EXPECT_TRUE(any_difference) << "different seeds should differ";
}

TEST(Simulator, TripsStartInHotspotRegionsEndAtDestinations) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  SimConfig cfg = default_config(net, 2, 3);
  cfg.start_jitter_s = 0.0;
  cfg.hotspot_radius_m = 300.0;
  const MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset data = simulator.generate(25, 3);
  ASSERT_GT(data.size(), 0u);
  for (const traj::Trajectory& tr : data) {
    const Point start = tr.front().pos;
    const Point end = tr.back().pos;
    const bool starts_in_region = std::any_of(
        cfg.hotspots.begin(), cfg.hotspots.end(), [&](NodeId h) {
          return distance(net.node(h).pos, start) <= cfg.hotspot_radius_m + 1e-6;
        });
    const bool ends_at_destination = std::any_of(
        cfg.destinations.begin(), cfg.destinations.end(),
        [&](NodeId d) { return distance(net.node(d).pos, end) < 1e-6; });
    EXPECT_TRUE(starts_in_region);
    EXPECT_TRUE(ends_at_destination);
  }
}

TEST(Simulator, ZeroRadiusPinsOriginsToHotspotCenters) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  SimConfig cfg = default_config(net, 2, 3);
  cfg.start_jitter_s = 0.0;
  cfg.hotspot_radius_m = 0.0;
  const MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset data = simulator.generate(15, 3);
  for (const traj::Trajectory& tr : data) {
    const bool at_center = std::any_of(
        cfg.hotspots.begin(), cfg.hotspots.end(),
        [&](NodeId h) { return distance(net.node(h).pos, tr.front().pos) < 1e-6; });
    EXPECT_TRUE(at_center);
  }
}

TEST(Simulator, WiderRadiusYieldsMoreDistinctOrigins) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 120.0);
  SimConfig narrow = default_config(net, 2, 3);
  narrow.hotspot_radius_m = 0.0;
  SimConfig wide = narrow;
  wide.hotspot_radius_m = 400.0;
  const auto distinct_origins = [&](const SimConfig& cfg) {
    const MobilitySimulator simulator(net, cfg);
    const traj::TrajectoryDataset data = simulator.generate(40, 9);
    std::vector<std::pair<double, double>> origins;
    for (const traj::Trajectory& tr : data) {
      origins.emplace_back(tr.front().pos.x, tr.front().pos.y);
    }
    std::sort(origins.begin(), origins.end());
    origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
    return origins.size();
  };
  EXPECT_GT(distinct_origins(wide), distinct_origins(narrow));
}

TEST(Simulator, WeightedHotspotsRespected) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  SimConfig cfg = default_config(net, 2, 3);
  cfg.hotspot_weights = {1.0, 0.0};  // all trips from the first hotspot
  cfg.start_jitter_s = 0.0;
  cfg.hotspot_radius_m = 0.0;
  const MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset data = simulator.generate(15, 3);
  for (const traj::Trajectory& tr : data) {
    EXPECT_LT(distance(tr.front().pos, net.node(cfg.hotspots[0]).pos), 1e-6);
  }
}

TEST(Simulator, PointCountScalesWithObjects) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 120.0);
  const SimConfig cfg = default_config(net, 2, 3);
  const MobilitySimulator simulator(net, cfg);
  const std::size_t p50 = simulator.generate(50, 1).total_points();
  const std::size_t p100 = simulator.generate(100, 1).total_points();
  EXPECT_GT(p100, p50);
  EXPECT_NEAR(static_cast<double>(p100) / static_cast<double>(p50), 2.0, 0.5);
}

TEST(Simulator, ValidatesConfig) {
  const roadnet::RoadNetwork net = roadnet::make_grid(4, 4, 100.0);
  SimConfig cfg;
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);  // no hotspots
  cfg.hotspots = {NodeId(0)};
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);  // no destinations
  cfg.destinations = {NodeId(15)};
  cfg.sample_period_s = 0.0;
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);
  cfg.sample_period_s = 4.0;
  cfg.min_speed_factor = 1.2;
  cfg.max_speed_factor = 1.0;
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);
  cfg.min_speed_factor = 0.8;
  cfg.hotspot_weights = {1.0, 2.0};  // size mismatch
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);
  cfg.hotspot_weights.clear();
  cfg.hotspots = {NodeId(999)};
  EXPECT_THROW(MobilitySimulator(net, cfg), Error);
}

TEST(Simulator, RawTracesCarryNoise) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  const SimConfig cfg = default_config(net, 2, 3);
  const MobilitySimulator simulator(net, cfg);
  const traj::TrajectoryDataset clean = simulator.generate(10, 5);
  const std::vector<traj::RawTrace> noisy = simulator.generate_raw(10, 5, 8.0);
  ASSERT_EQ(noisy.size(), clean.size());
  double total_offset = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(noisy[i].points.size(), clean[i].size());
    for (std::size_t j = 0; j < clean[i].size(); ++j) {
      total_offset += distance(noisy[i].points[j].pos, clean[i].point(j).pos);
      ++n;
    }
  }
  const double mean_offset = total_offset / static_cast<double>(n);
  // Rayleigh mean for sigma = 8 is ~10; accept a broad band.
  EXPECT_GT(mean_offset, 5.0);
  EXPECT_LT(mean_offset, 20.0);
  const std::vector<traj::RawTrace> exact = simulator.generate_raw(10, 5, 0.0);
  EXPECT_EQ(distance(exact[0].points[0].pos, clean[0].point(0).pos), 0.0);
  EXPECT_THROW(simulator.generate_raw(10, 5, -1.0), PreconditionError);
}

TEST(Congestion, FactorLookup) {
  const std::vector<CongestionWindow> profile{{100.0, 200.0, 0.5}, {200.0, 300.0, 0.8}};
  EXPECT_DOUBLE_EQ(congestion_factor(profile, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(congestion_factor(profile, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(congestion_factor(profile, 199.9), 0.5);
  EXPECT_DOUBLE_EQ(congestion_factor(profile, 200.0), 0.8);
  EXPECT_DOUBLE_EQ(congestion_factor(profile, 300.0), 1.0);
  EXPECT_DOUBLE_EQ(congestion_factor({}, 0.0), 1.0);
}

TEST(Congestion, RushHourSlowsTrips) {
  const roadnet::RoadNetwork net = roadnet::make_grid(8, 8, 120.0);
  SimConfig free_flow = default_config(net, 2, 3);
  free_flow.start_jitter_s = 100.0;
  SimConfig rush = free_flow;
  rush.congestion = {{0.0, 1e9, 0.5}};  // everything at half speed
  const traj::TrajectoryDataset fast = MobilitySimulator(net, free_flow).generate(20, 3);
  const traj::TrajectoryDataset slow = MobilitySimulator(net, rush).generate(20, 3);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    // Same seed picks the same origin/destination/speed draw; congestion
    // halves the effective speed, doubling the trip duration.
    EXPECT_NEAR(slow[i].duration(), fast[i].duration() * 2.0, 1e-6);
  }
}

TEST(Congestion, ValidatesProfile) {
  const roadnet::RoadNetwork net = roadnet::make_grid(4, 4, 100.0);
  SimConfig cfg = default_config(net, 1, 1);
  cfg.congestion = {{100.0, 50.0, 0.5}};  // inverted window
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);
  cfg.congestion = {{0.0, 10.0, 1.5}};  // speed-up is not congestion
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);
  cfg.congestion = {{0.0, 10.0, 0.0}};
  EXPECT_THROW(MobilitySimulator(net, cfg), PreconditionError);
}

TEST(DefaultConfig, PicksDistinctSpreadNodes) {
  const roadnet::RoadNetwork net = roadnet::make_grid(10, 10, 100.0);
  const SimConfig cfg = default_config(net, 3, 3);
  EXPECT_GE(cfg.hotspots.size(), 2u);
  EXPECT_GE(cfg.destinations.size(), 2u);
  EXPECT_THROW(default_config(net, 0, 3), PreconditionError);
}

}  // namespace
}  // namespace neat::sim
