// Multi-threaded stress tests for the observability layer, run under the
// `concurrency` ctest label so CI exercises them with ThreadSanitizer.
//
// The registry's contract is: series creation/lookup takes a mutex, every
// mutation afterwards is a relaxed atomic, and exporting may run at any time
// concurrently with writers. The tracer's contract is: each thread appends
// to its own log, and export/span_count/clear may race with recording.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

TEST(RegistryConcurrency, ParallelWritersOnSharedAndPrivateSeries) {
  Registry reg;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      // Shared series: every thread races create-on-first-use, then hammers
      // the same atomics. Private series: one label set per thread, so the
      // creation path itself races across distinct series of one family.
      Counter& shared = reg.counter("neat_stress_shared_total");
      Counter& mine =
          reg.counter("neat_stress_private_total", {{"worker", str_cat("w", t)}});
      Log2Histogram& h = reg.histogram("neat_stress_latency_seconds");
      Gauge& g = reg.gauge("neat_stress_gauge");
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.add(1);
        mine.add(1);
        h.record(1e-6 * (i % 64));
        g.set(static_cast<double>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Scrape while the writers run: the exporter must never tear or crash.
  // (No content assertion here — early scrapes can race series creation.)
  for (int i = 0; i < 50; ++i) static_cast<void>(reg.to_prometheus());
  for (std::thread& t : pool) t.join();
  EXPECT_NE(reg.to_prometheus().find("neat_stress_shared_total"), std::string::npos);

  EXPECT_EQ(reg.counter_value("neat_stress_shared_total"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter_value("neat_stress_private_total", {{"worker", str_cat("w", t)}}),
              static_cast<std::uint64_t>(kOpsPerThread));
  }
  Log2Histogram& h = reg.histogram("neat_stress_latency_seconds");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(RegistryConcurrency, CreationRaceYieldsOneSeriesPerLabelSet) {
  Registry reg;
  std::atomic<bool> go{false};
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, &go, &seen, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      seen[t] = &reg.counter("neat_stress_race_total", {{"kind", "x"}});
      seen[t]->add(1);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(reg.counter_value("neat_stress_race_total", {{"kind", "x"}}),
            static_cast<std::uint64_t>(kThreads));
}

TEST(TracerConcurrency, ParallelSpansWithConcurrentExport) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      tracer.set_thread_name(str_cat("stress-", t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan outer("stress.outer", tracer);
        outer.arg("i", static_cast<std::uint64_t>(i));
        ScopedSpan inner("stress.inner", tracer);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Export and count while spans are still being recorded.
  for (int i = 0; i < 20; ++i) {
    const std::string json = tracer.to_chrome_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    static_cast<void>(tracer.span_count());
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(tracer.span_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TracerConcurrency, EnableDisableRacesWithSpans) {
  Tracer tracer;
  std::atomic<bool> stop{false};
  std::thread toggler([&tracer, &stop] {
    bool on = true;
    while (!stop.load(std::memory_order_acquire)) {
      tracer.set_enabled(on);
      on = !on;
    }
  });
  for (int i = 0; i < 5000; ++i) {
    ScopedSpan span("stress.toggle", tracer);
    span.arg("i", static_cast<std::uint64_t>(i));
  }
  stop.store(true, std::memory_order_release);
  toggler.join();
  // No assertion beyond "no crash / no data race": the span count depends on
  // the interleaving.
  static_cast<void>(tracer.span_count());
}

}  // namespace
}  // namespace neat::obs
