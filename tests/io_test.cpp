// Round-trip tests for network and dataset persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "roadnet/generators.h"
#include "roadnet/io.h"
#include "test_util.h"
#include "traj/io.h"

namespace neat {
namespace {

TEST(NetworkIo, RoundTripPreservesEverything) {
  roadnet::CityParams p;
  p.rows = 10;
  p.cols = 10;
  p.oneway_probability = 0.2;
  p.seed = 3;
  const roadnet::RoadNetwork original = roadnet::make_city(p);

  std::stringstream ss;
  roadnet::save_network(original, ss);
  const roadnet::RoadNetwork loaded = roadnet::load_network(ss);

  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.segment_count(), original.segment_count());
  for (std::size_t i = 0; i < original.node_count(); ++i) {
    const auto id = NodeId(static_cast<std::int32_t>(i));
    EXPECT_NEAR(loaded.node(id).pos.x, original.node(id).pos.x, 1e-3);
    EXPECT_NEAR(loaded.node(id).pos.y, original.node(id).pos.y, 1e-3);
  }
  for (std::size_t i = 0; i < original.segment_count(); ++i) {
    const auto id = SegmentId(static_cast<std::int32_t>(i));
    EXPECT_EQ(loaded.segment(id).a, original.segment(id).a);
    EXPECT_EQ(loaded.segment(id).b, original.segment(id).b);
    EXPECT_EQ(loaded.segment(id).bidirectional, original.segment(id).bidirectional);
    EXPECT_NEAR(loaded.segment(id).length, original.segment(id).length, 2e-3);
    EXPECT_NEAR(loaded.segment(id).speed_limit, original.segment(id).speed_limit, 1e-3);
  }
}

TEST(NetworkIo, RejectsMalformedRows) {
  {
    std::stringstream ss("node,0,1\n");  // missing y
    EXPECT_THROW(roadnet::load_network(ss), ParseError);
  }
  {
    std::stringstream ss("banana,0\n");
    EXPECT_THROW(roadnet::load_network(ss), ParseError);
  }
  {
    // Segment references a node that never appears.
    std::stringstream ss("node,0,0,0\nsegment,0,0,5,100,10,1\n");
    EXPECT_THROW(roadnet::load_network(ss), ParseError);
  }
}

TEST(NetworkIo, FileErrors) {
  EXPECT_THROW(roadnet::load_network("/nonexistent/dir/net.csv"), Error);
  const roadnet::RoadNetwork net = testutil::line_network(1);
  EXPECT_THROW(roadnet::save_network(net, "/nonexistent/dir/net.csv"), Error);
}

TEST(DatasetIo, RoundTrip) {
  traj::TrajectoryDataset data;
  traj::Trajectory t1(TrajectoryId(10));
  t1.append({SegmentId(0), {0.5, 0.25}, 0.0, false});
  t1.append({SegmentId(1), {10.125, 0}, 1.5, true});
  traj::Trajectory t2(TrajectoryId(11));
  t2.append({SegmentId(2), {-3, 4}, 0.0, false});
  data.add(std::move(t1));
  data.add(std::move(t2));

  std::stringstream ss;
  traj::save_dataset(data, ss);
  const traj::TrajectoryDataset loaded = traj::load_dataset(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id(), TrajectoryId(10));
  EXPECT_EQ(loaded[0].size(), 2u);
  EXPECT_EQ(loaded[0].point(1).sid, SegmentId(1));
  EXPECT_TRUE(loaded[0].point(1).junction_point);
  EXPECT_FALSE(loaded[0].point(0).junction_point);
  EXPECT_NEAR(loaded[0].point(0).pos.x, 0.5, 1e-3);
  EXPECT_NEAR(loaded[0].point(1).t, 1.5, 1e-3);
  EXPECT_EQ(loaded[1].id(), TrajectoryId(11));
}

TEST(DatasetIo, RejectsMalformedRows) {
  std::stringstream ss("1,0,0,0,0\n");  // 5 fields, needs 7
  EXPECT_THROW(traj::load_dataset(ss), ParseError);
  std::stringstream ss2("1,0,0,0,0,5.0,0\n1,1,0,0,0,4.0,0\n");  // time goes backward
  EXPECT_THROW(traj::load_dataset(ss2), ParseError);
}

TEST(DatasetIo, EmptyStreamGivesEmptyDataset) {
  std::stringstream ss;
  EXPECT_TRUE(traj::load_dataset(ss).empty());
}

}  // namespace
}  // namespace neat
