// Round-trip tests for network and dataset persistence, plus equivalence
// of the allocation-free fast trajectory parser with a reference parse
// built on the RFC-4180 CSV reader.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"
#include "roadnet/generators.h"
#include "roadnet/io.h"
#include "test_util.h"
#include "traj/io.h"

namespace neat {
namespace {

/// Reference trajectory parser: the full CsvReader on every row, no fast
/// path. The production loader must produce exactly this.
traj::TrajectoryDataset reference_load_dataset(std::istream& in) {
  traj::TrajectoryDataset data;
  CsvReader reader(in);
  std::vector<std::string> row;
  traj::Trajectory current;
  bool has_current = false;
  while (reader.read_row(row)) {
    if (row.size() == 1 && trim(row[0]).empty()) continue;
    if (row.size() != 7) throw ParseError("location row needs 7 fields");
    const auto trid = TrajectoryId(parse_int(row[0]));
    if (!has_current || current.id() != trid) {
      if (has_current) data.add(std::move(current));
      current = traj::Trajectory(trid);
      has_current = true;
    }
    traj::Location loc;
    loc.sid = SegmentId(static_cast<std::int32_t>(parse_int(row[2])));
    loc.pos = {parse_double(row[3]), parse_double(row[4])};
    loc.t = parse_double(row[5]);
    loc.junction_point = parse_int(row[6]) != 0;
    current.append(loc);
  }
  if (has_current) data.add(std::move(current));
  return data;
}

void expect_same_dataset(const traj::TrajectoryDataset& a, const traj::TrajectoryDataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id(), b[i].id());
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t p = 0; p < a[i].size(); ++p) {
      EXPECT_EQ(a[i].point(p).sid, b[i].point(p).sid);
      EXPECT_EQ(a[i].point(p).pos.x, b[i].point(p).pos.x);
      EXPECT_EQ(a[i].point(p).pos.y, b[i].point(p).pos.y);
      EXPECT_EQ(a[i].point(p).t, b[i].point(p).t);
      EXPECT_EQ(a[i].point(p).junction_point, b[i].point(p).junction_point);
    }
  }
}

TEST(NetworkIo, RoundTripPreservesEverything) {
  roadnet::CityParams p;
  p.rows = 10;
  p.cols = 10;
  p.oneway_probability = 0.2;
  p.seed = 3;
  const roadnet::RoadNetwork original = roadnet::make_city(p);

  std::stringstream ss;
  roadnet::save_network(original, ss);
  const roadnet::RoadNetwork loaded = roadnet::load_network(ss);

  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.segment_count(), original.segment_count());
  for (std::size_t i = 0; i < original.node_count(); ++i) {
    const auto id = NodeId(static_cast<std::int32_t>(i));
    EXPECT_NEAR(loaded.node(id).pos.x, original.node(id).pos.x, 1e-3);
    EXPECT_NEAR(loaded.node(id).pos.y, original.node(id).pos.y, 1e-3);
  }
  for (std::size_t i = 0; i < original.segment_count(); ++i) {
    const auto id = SegmentId(static_cast<std::int32_t>(i));
    EXPECT_EQ(loaded.segment(id).a, original.segment(id).a);
    EXPECT_EQ(loaded.segment(id).b, original.segment(id).b);
    EXPECT_EQ(loaded.segment(id).bidirectional, original.segment(id).bidirectional);
    EXPECT_NEAR(loaded.segment(id).length, original.segment(id).length, 2e-3);
    EXPECT_NEAR(loaded.segment(id).speed_limit, original.segment(id).speed_limit, 1e-3);
  }
}

TEST(NetworkIo, RejectsMalformedRows) {
  {
    std::stringstream ss("node,0,1\n");  // missing y
    EXPECT_THROW(roadnet::load_network(ss), ParseError);
  }
  {
    std::stringstream ss("banana,0\n");
    EXPECT_THROW(roadnet::load_network(ss), ParseError);
  }
  {
    // Segment references a node that never appears.
    std::stringstream ss("node,0,0,0\nsegment,0,0,5,100,10,1\n");
    EXPECT_THROW(roadnet::load_network(ss), ParseError);
  }
}

TEST(NetworkIo, FileErrors) {
  EXPECT_THROW(roadnet::load_network("/nonexistent/dir/net.csv"), Error);
  const roadnet::RoadNetwork net = testutil::line_network(1);
  EXPECT_THROW(roadnet::save_network(net, "/nonexistent/dir/net.csv"), Error);
}

TEST(DatasetIo, RoundTrip) {
  traj::TrajectoryDataset data;
  traj::Trajectory t1(TrajectoryId(10));
  t1.append({SegmentId(0), {0.5, 0.25}, 0.0, false});
  t1.append({SegmentId(1), {10.125, 0}, 1.5, true});
  traj::Trajectory t2(TrajectoryId(11));
  t2.append({SegmentId(2), {-3, 4}, 0.0, false});
  data.add(std::move(t1));
  data.add(std::move(t2));

  std::stringstream ss;
  traj::save_dataset(data, ss);
  const traj::TrajectoryDataset loaded = traj::load_dataset(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id(), TrajectoryId(10));
  EXPECT_EQ(loaded[0].size(), 2u);
  EXPECT_EQ(loaded[0].point(1).sid, SegmentId(1));
  EXPECT_TRUE(loaded[0].point(1).junction_point);
  EXPECT_FALSE(loaded[0].point(0).junction_point);
  EXPECT_NEAR(loaded[0].point(0).pos.x, 0.5, 1e-3);
  EXPECT_NEAR(loaded[0].point(1).t, 1.5, 1e-3);
  EXPECT_EQ(loaded[1].id(), TrajectoryId(11));
}

TEST(DatasetIo, FastParserMatchesReferenceOnGoldenFixture) {
  const std::string path = std::string(NEAT_TEST_DATA_DIR) + "/golden_trajectories.csv";
  std::ifstream fast_in(path);
  ASSERT_TRUE(fast_in) << "missing fixture " << path;
  std::ifstream ref_in(path);
  const traj::TrajectoryDataset fast = traj::load_dataset(fast_in);
  const traj::TrajectoryDataset reference = reference_load_dataset(ref_in);
  ASSERT_GT(fast.size(), 0u);
  expect_same_dataset(fast, reference);
}

TEST(DatasetIo, FastParserMatchesReferenceOnAwkwardCsv) {
  // CRLF line endings, blank lines, surrounding whitespace in numeric
  // fields, and a quoted field (which forces the RFC-4180 fallback path).
  const std::string csv =
      "1,0,0,1.5,2.5,0.0,0\r\n"
      "\r\n"
      "1,1,0, 3.25 ,4.5,1.0,1\n"
      "\"2\",0,\"1\",7.125,8.0,0.5,0\n"
      "\n"
      "2,1,1,9.0,10.0,1.5,0\n";
  std::istringstream fast_in(csv);
  std::istringstream ref_in(csv);
  const traj::TrajectoryDataset fast = traj::load_dataset(fast_in);
  const traj::TrajectoryDataset reference = reference_load_dataset(ref_in);
  ASSERT_EQ(fast.size(), 2u);
  EXPECT_EQ(fast[0].point(1).pos.x, 3.25);
  EXPECT_EQ(fast[1].point(0).sid, SegmentId(1));
  expect_same_dataset(fast, reference);
}

TEST(DatasetIo, RejectsMalformedRows) {
  std::stringstream ss("1,0,0,0,0\n");  // 5 fields, needs 7
  EXPECT_THROW(traj::load_dataset(ss), ParseError);
  std::stringstream ss2("1,0,0,0,0,5.0,0\n1,1,0,0,0,4.0,0\n");  // time goes backward
  EXPECT_THROW(traj::load_dataset(ss2), ParseError);
}

TEST(DatasetIo, EmptyStreamGivesEmptyDataset) {
  std::stringstream ss;
  EXPECT_TRUE(traj::load_dataset(ss).empty());
}

}  // namespace
}  // namespace neat
