// Tests for the NEAT model primitives — base clusters, netflow,
// f-neighborhoods — validated against the paper's worked Figure 1(b)
// example: d(S1)=4, d(S2)=3, d(S3)=1, d(S4)=2; f(S1,S2)=2, f(S1,S3)=1,
// f(S1,S4)=1, f(S2,S3)=0, f(S2,S4)=1; densecore = S1; maxFlow-neighbor of
// S1 at n2 is S2.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/base_cluster.h"
#include "core/fragmenter.h"
#include "core/netflow.h"
#include "test_util.h"

namespace neat {
namespace {

TFragment frag(std::int64_t trid, std::int32_t sid) {
  TFragment f;
  f.trid = TrajectoryId(trid);
  f.sid = SegmentId(sid);
  return f;
}

TEST(BaseCluster, DensityCountsFragmentsCardinalityCountsTrajectories) {
  BaseCluster c(SegmentId(3));
  c.add(frag(1, 3));
  c.add(frag(1, 3));  // same trajectory again (back-and-forth trip)
  c.add(frag(2, 3));
  c.finalize();
  EXPECT_EQ(c.density(), 3);
  EXPECT_EQ(c.cardinality(), 2);
  EXPECT_EQ(c.participants(), (std::vector<TrajectoryId>{TrajectoryId(1), TrajectoryId(2)}));
}

TEST(BaseCluster, RejectsForeignFragments) {
  BaseCluster c(SegmentId(3));
  EXPECT_THROW(c.add(frag(1, 4)), PreconditionError);
}

TEST(BaseCluster, ParticipantsRequireFinalize) {
  BaseCluster c(SegmentId(0));
  c.add(frag(1, 0));
  EXPECT_THROW(static_cast<void>(c.participants()), PreconditionError);
  c.finalize();
  EXPECT_EQ(c.cardinality(), 1);
  // Adding after finalize resets the invariant.
  c.add(frag(2, 0));
  EXPECT_THROW(static_cast<void>(c.participants()), PreconditionError);
}

TEST(Netflow, CountCommon) {
  using V = std::vector<TrajectoryId>;
  const V a{TrajectoryId(1), TrajectoryId(3), TrajectoryId(5)};
  const V b{TrajectoryId(2), TrajectoryId(3), TrajectoryId(5), TrajectoryId(9)};
  EXPECT_EQ(count_common(a, b), 2);
  EXPECT_EQ(count_common(a, V{}), 0);
  EXPECT_EQ(count_common(V{}, V{}), 0);
}

TEST(Netflow, MergeParticipants) {
  using V = std::vector<TrajectoryId>;
  const V a{TrajectoryId(1), TrajectoryId(3)};
  const V b{TrajectoryId(2), TrajectoryId(3)};
  EXPECT_EQ(merge_participants(a, b),
            (V{TrajectoryId(1), TrajectoryId(2), TrajectoryId(3)}));
  EXPECT_EQ(merge_participants(a, V{}), a);
}

// --- the paper's Figure 1 examples ------------------------------------------

class Fig1Example : public ::testing::Test {
 protected:
  Fig1Example() : net_(testutil::fig1_network()) {
    traj::TrajectoryDataset data;
    for (traj::Trajectory& tr : testutil::fig1_trajectories(net_)) data.add(std::move(tr));
    const Fragmenter fragmenter(net_);
    out_ = fragmenter.build_base_clusters(data);
  }

  const BaseCluster& cluster_of(std::int32_t sid) const {
    for (const BaseCluster& c : out_.base_clusters) {
      if (c.sid() == SegmentId(sid)) return c;
    }
    throw std::logic_error("no base cluster for segment");
  }

  roadnet::RoadNetwork net_;
  Phase1Output out_;
};

TEST_F(Fig1Example, FigureOneADecomposesIntoThreeFragments) {
  // Figure 1(a): a trajectory over three consecutive segments yields exactly
  // three t-fragments, in travel order.
  const Fragmenter fragmenter(net_);
  const traj::Trajectory tr =
      testutil::make_path_trajectory(net_, 99, {NodeId(0), NodeId(1), NodeId(2)});
  const auto frags = fragmenter.fragment(tr);
  ASSERT_EQ(frags.size(), 2u);  // n1->n2 on S1, n2->n3 on S2
  EXPECT_EQ(frags[0].sid, SegmentId(0));
  EXPECT_EQ(frags[1].sid, SegmentId(1));
}

TEST_F(Fig1Example, DensitiesMatchPaper) {
  EXPECT_EQ(cluster_of(0).density(), 4);  // d(S1) = 4
  EXPECT_EQ(cluster_of(1).density(), 3);  // d(S2) = 3
  EXPECT_EQ(cluster_of(2).density(), 1);  // d(S3) = 1
  EXPECT_EQ(cluster_of(3).density(), 2);  // d(S4) = 2
}

TEST_F(Fig1Example, DenseCoreIsS1) {
  // Phase 1 sorts by density descending: the first element is densecore(B).
  ASSERT_FALSE(out_.base_clusters.empty());
  EXPECT_EQ(out_.base_clusters.front().sid(), SegmentId(0));
}

TEST_F(Fig1Example, NetflowsMatchPaper) {
  EXPECT_EQ(netflow(cluster_of(0), cluster_of(1)), 2);  // f(S1,S2)
  EXPECT_EQ(netflow(cluster_of(0), cluster_of(2)), 1);  // f(S1,S3)
  EXPECT_EQ(netflow(cluster_of(0), cluster_of(3)), 1);  // f(S1,S4)
  EXPECT_EQ(netflow(cluster_of(1), cluster_of(2)), 0);  // f(S2,S3)
  EXPECT_EQ(netflow(cluster_of(1), cluster_of(3)), 1);  // f(S2,S4)
}

TEST_F(Fig1Example, NetflowIsSymmetric) {
  for (const BaseCluster& a : out_.base_clusters) {
    for (const BaseCluster& b : out_.base_clusters) {
      EXPECT_EQ(netflow(a, b), netflow(b, a));
    }
  }
}

TEST_F(Fig1Example, FNeighborhoodOfS1AtN2) {
  // Nf(S1, n2) = {S2, S3, S4}: all adjacent at n2 with positive netflow.
  const BaseCluster& s1 = cluster_of(0);
  std::vector<SegmentId> hood;
  for (const SegmentId other : net_.adjacent_segments(SegmentId(0), NodeId(1))) {
    for (const BaseCluster& c : out_.base_clusters) {
      if (c.sid() == other && netflow(s1, c) > 0) hood.push_back(other);
    }
  }
  std::sort(hood.begin(), hood.end());
  EXPECT_EQ(hood, (std::vector<SegmentId>{SegmentId(1), SegmentId(2), SegmentId(3)}));
}

TEST_F(Fig1Example, MaxFlowNeighborOfS1IsS2) {
  const BaseCluster& s1 = cluster_of(0);
  int best_flow = -1;
  SegmentId best = SegmentId::invalid();
  for (const BaseCluster& c : out_.base_clusters) {
    if (c.sid() == s1.sid() || !net_.are_adjacent(c.sid(), s1.sid())) continue;
    const int f = netflow(s1, c);
    if (f > best_flow) {
      best_flow = f;
      best = c.sid();
    }
  }
  EXPECT_EQ(best, SegmentId(1));  // S2
  EXPECT_EQ(best_flow, 2);
}

TEST_F(Fig1Example, NetflowFlowVsBaseCluster) {
  // f(F, S) with F = {S1, S2}: PTr(F) = {1,2,3,5} ∪ {1,2,4} = {1,2,3,4,5};
  // f(F, S4) = |{4,5} ∩ PTr(F)| = 2, f(F, S3) = |{3} ∩ PTr(F)| = 1.
  const auto participants =
      merge_participants(cluster_of(0).participants(), cluster_of(1).participants());
  EXPECT_EQ(netflow(participants, cluster_of(3)), 2);
  EXPECT_EQ(netflow(participants, cluster_of(2)), 1);
}

}  // namespace
}  // namespace neat
