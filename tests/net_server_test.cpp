// Tests for the reusable HTTP server core (src/net/http_server.*).
//
// Carries the `concurrency` ctest label: the interesting failure modes are
// races between the acceptor/worker threads and concurrent clients, so CI
// runs this binary under TSan. The hardening bounds (request-line/head size
// caps, read timeout, connection shedding) are exercised with deliberately
// slow and malformed clients.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "obs/registry.h"

namespace neat::net {
namespace {

using namespace std::chrono_literals;

HttpResponse text(int code, std::string body) {
  return HttpResponse{code, "text/plain; charset=utf-8", std::move(body)};
}

TEST(HttpServer, RoutesDispatchAndUnknownPathsGet404) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest& req) {
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/hello");
    return text(200, "hi\n");
  });
  server.handle("/teapot", [](const HttpRequest&) { return text(418, "short\n"); });
  server.start();
  ASSERT_GT(server.port(), 0);  // port 0 resolved to a real ephemeral port

  EXPECT_EQ(http_get(server.port(), "/hello").code, 200);
  EXPECT_EQ(http_get(server.port(), "/hello").body, "hi\n");
  EXPECT_EQ(http_get(server.port(), "/nope").code, 404);
  EXPECT_EQ(server.routes(), (std::vector<std::string>{"/hello", "/teapot"}));
  EXPECT_GE(server.requests_served(), 3u);
}

TEST(HttpServer, MethodFilterMalformedLinesAndHeadSemantics) {
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) { return text(200, "body\n"); });
  server.start();
  const std::uint16_t port = server.port();

  EXPECT_EQ(status_of(raw_request("127.0.0.1", port,
                                  "POST /x HTTP/1.1\r\n\r\n")),
            405);
  EXPECT_EQ(status_of(raw_request("127.0.0.1", port,
                                  "garbage with no structure\r\n\r\n")),
            400);
  EXPECT_EQ(status_of(raw_request("127.0.0.1", port,
                                  "GET noslash HTTP/1.1\r\n\r\n")),
            400);
  EXPECT_EQ(status_of(raw_request("127.0.0.1", port, "GET /x\r\n\r\n")), 400);

  // HEAD gets headers (with the true length) and no body.
  const std::string head = raw_request("127.0.0.1", port, "HEAD /x HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(head), 200);
  EXPECT_EQ(body_of(head), "");
  EXPECT_NE(head.find("Content-Length: 5"), std::string::npos);
}

TEST(HttpServer, QueryParametersArePercentDecodedInOrder) {
  HttpServer server;
  server.handle("/echo", [](const HttpRequest& req) {
    std::string out;
    for (const auto& [k, v] : req.params) out += k + "=" + v + ";";
    const std::string* a = req.param("a");
    EXPECT_NE(a, nullptr);
    EXPECT_EQ(req.param("absent"), nullptr);
    return text(200, out);
  });
  server.start();

  const HttpResult r =
      http_get(server.port(), "/echo?a=1&b=hello%20world&c=x+y&flag&z=%2Fpath");
  EXPECT_EQ(r.code, 200);
  EXPECT_EQ(r.body, "a=1;b=hello world;c=x y;flag=;z=/path;");
}

TEST(HttpServer, RequestLineAndHeadSizeLimits) {
  HttpServerOptions opts;
  opts.max_request_line_bytes = 128;
  opts.max_request_bytes = 1024;
  HttpServer server(opts);
  server.handle("/x", [](const HttpRequest&) { return text(200, "ok\n"); });
  server.start();

  // An oversized request line answers 414 instead of being truncated.
  const std::string long_target = "/x?pad=" + std::string(300, 'a');
  EXPECT_EQ(status_of(raw_request("127.0.0.1", server.port(),
                                  "GET " + long_target + " HTTP/1.1\r\n\r\n")),
            414);

  // A head that never terminates within the cap answers 431.
  const std::string fat_headers =
      "GET /x HTTP/1.1\r\nX-Fat: " + std::string(2048, 'b') + "\r\n";
  EXPECT_EQ(status_of(raw_request("127.0.0.1", server.port(), fat_headers)), 431);

  // A request within both caps still works.
  EXPECT_EQ(http_get(server.port(), "/x").code, 200);
}

TEST(HttpServer, ReadTimeoutUnwedgesSlowClients) {
  HttpServerOptions opts;
  opts.read_timeout = 200ms;
  opts.worker_threads = 1;
  HttpServer server(opts);
  server.handle("/x", [](const HttpRequest&) { return text(200, "ok\n"); });
  server.start();

  // A client that sends half a request and stalls is answered 400 after the
  // read timeout (never the full 2 s default, and the worker is free again).
  const Stopwatch watch;
  const std::string r = raw_request("127.0.0.1", server.port(), "GET /x HT");
  EXPECT_EQ(status_of(r), 400);
  EXPECT_LT(watch.elapsed_seconds(), 1.5);
  EXPECT_EQ(http_get(server.port(), "/x").code, 200);  // worker survived
}

TEST(HttpServer, ShedsConnectionsWhenPendingQueueIsFullAndCountsThem) {
  obs::Registry reg;
  HttpServerOptions opts;
  opts.worker_threads = 1;
  opts.max_pending_connections = 1;
  opts.read_timeout = 400ms;
  opts.registry = &reg;
  std::atomic<std::uint64_t> hook_sheds{0};
  opts.on_shed = [&hook_sheds] { hook_sheds.fetch_add(1); };
  HttpServer server(opts);
  server.handle("/x", [](const HttpRequest&) { return text(200, "ok\n"); });
  server.start();

  // A deliberately slow client (connects, never sends) occupies the single
  // worker until its read timeout...
  std::thread slow([&server] {
    (void)raw_request("127.0.0.1", server.port(), "");
  });
  std::this_thread::sleep_for(100ms);

  // ...so a burst of further silent connections fills the 1-slot pending
  // queue and the rest are shed (closed immediately by the acceptor).
  std::vector<std::thread> burst;
  for (int i = 0; i < 6; ++i) {
    burst.emplace_back([&server] {
      (void)raw_request("127.0.0.1", server.port(), "");
    });
  }
  for (std::thread& t : burst) t.join();
  slow.join();

  EXPECT_GE(server.shed_total(), 1u);
  EXPECT_EQ(reg.counter_value("neat_net_shed_total"), server.shed_total());
  EXPECT_EQ(hook_sheds.load(), server.shed_total());
  EXPECT_EQ(http_get(server.port(), "/x").code, 200);  // plane still serves
}

TEST(HttpServer, SelfInstrumentsRequestsUnderBoundedPathLabels) {
  obs::Registry reg;
  HttpServerOptions opts;
  opts.registry = &reg;
  HttpServer server(opts);
  server.handle("/known", [](const HttpRequest&) { return text(200, "ok\n"); });
  server.start();

  EXPECT_EQ(http_get(server.port(), "/known").code, 200);
  EXPECT_EQ(http_get(server.port(), "/spray1").code, 404);
  EXPECT_EQ(http_get(server.port(), "/spray2").code, 404);

  EXPECT_EQ(reg.counter_value("neat_net_requests_total",
                              {{"path", "/known"}, {"code", "200"}}),
            1u);
  // Unknown paths collapse into one label, not one series per bad path.
  EXPECT_EQ(reg.counter_value("neat_net_requests_total",
                              {{"path", "other"}, {"code", "404"}}),
            2u);
}

TEST(HttpServer, ConcurrentKeepAliveOffClientsAllSucceed) {
  std::atomic<std::uint64_t> handled{0};
  HttpServerOptions opts;
  opts.worker_threads = 3;
  HttpServer server(opts);
  server.handle("/work", [&handled](const HttpRequest&) {
    handled.fetch_add(1, std::memory_order_relaxed);
    return text(200, "done\n");
  });
  server.start();

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &ok] {
      for (int i = 0; i < 25; ++i) {
        const HttpResult r = http_get(server.port(), "/work");
        // One request per connection: the server always closes (keep-alive
        // off), so every exchange must terminate on its own.
        if (r.code == 200 && r.raw.find("Connection: close") != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), 4 * 25);
  EXPECT_EQ(handled.load(), 100u);
}

TEST(HttpServer, StopReleasesThePortAndRouteRegistrationIsFrozen) {
  std::uint16_t port = 0;
  {
    HttpServer server;
    server.handle("/x", [](const HttpRequest&) { return text(200, "ok\n"); });
    server.start();
    port = server.port();
    EXPECT_EQ(http_get(port, "/x").code, 200);
    EXPECT_THROW(
        server.handle("/late", [](const HttpRequest&) { return HttpResponse{}; }),
        PreconditionError);
    server.stop();  // explicit stop; the destructor repeat is a no-op
  }
  // The exact port is free again: binding it succeeds right away.
  HttpServerOptions opts;
  opts.port = port;
  HttpServer rebound(opts);
  rebound.start();
  EXPECT_EQ(rebound.port(), port);
  EXPECT_EQ(http_get(port, "/anything").code, 404);
}

TEST(HttpServer, InvalidRoutesAndDoubleStartThrow) {
  HttpServer server;
  EXPECT_THROW(server.handle("noslash", [](const HttpRequest&) {
    return HttpResponse{};
  }),
               PreconditionError);
  EXPECT_THROW(server.handle("/dup", nullptr), PreconditionError);
  server.handle("/dup", [](const HttpRequest&) { return HttpResponse{}; });
  EXPECT_THROW(server.handle("/dup", [](const HttpRequest&) {
    return HttpResponse{};
  }),
               PreconditionError);
  server.start();
  EXPECT_THROW(server.start(), PreconditionError);

  HttpServerOptions opts;
  opts.bind_address = "not-an-address";
  HttpServer bad(opts);
  EXPECT_THROW(bad.start(), Error);
}

TEST(HttpServer, HandlerExceptionsBecome500NotACrash) {
  HttpServer server;
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler bug");
  });
  server.start();
  const HttpResult r = http_get(server.port(), "/boom");
  EXPECT_EQ(r.code, 500);
  // The exception text must not leak to the wire.
  EXPECT_EQ(r.raw.find("handler bug"), std::string::npos);
}

}  // namespace
}  // namespace neat::net
