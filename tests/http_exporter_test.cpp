// Tests for the embedded HTTP admin server (src/obs/http_exporter.*).
//
// Carries the `concurrency` ctest label: the interesting failure modes are
// races between the acceptor/worker threads, concurrent scrapers, and
// metric writers, so CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/http_exporter.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::obs {
namespace {

/// Minimal blocking HTTP client: sends `request` verbatim to 127.0.0.1:port
/// and returns everything read until the server closes the connection.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return raw_request(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

int status_of(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12 || response.rfind("HTTP/1.1 ", 0) != 0) return -1;
  return std::stoi(response.substr(9, 3));
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

TEST(HttpExporter, ServesMetricsHealthAndStatusOnEphemeralPort) {
  Registry reg;
  reg.counter("neat_test_http_total", {{"kind", "x"}}).add(3);
  HttpExporter server(reg);
  ASSERT_GT(server.port(), 0);  // port 0 resolved to a real ephemeral port

  const std::string metrics = get(server.port(), "/metrics");
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# HELP neat_test_http_total"), std::string::npos);
  EXPECT_NE(metrics.find("neat_test_http_total{kind=\"x\"} 3"), std::string::npos);

  // Content-Length must match the body exactly (curl depends on it).
  const std::size_t cl_at = metrics.find("Content-Length: ");
  ASSERT_NE(cl_at, std::string::npos);
  const std::size_t cl = std::stoul(metrics.substr(cl_at + 16));
  EXPECT_EQ(body_of(metrics).size(), cl);

  EXPECT_EQ(status_of(get(server.port(), "/healthz")), 200);
  const std::string status = get(server.port(), "/statusz");
  EXPECT_EQ(status_of(status), 200);
  EXPECT_NE(status.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(status.find("\"uptime_s\""), std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
}

TEST(HttpExporter, ReadyzFlipsFrom503To200) {
  Registry reg;
  std::atomic<bool> ready{false};
  HttpExporterOptions opts;
  opts.ready = [&ready] { return ready.load(); };
  HttpExporter server(reg, opts);

  const std::string before = get(server.port(), "/readyz");
  EXPECT_EQ(status_of(before), 503);
  EXPECT_EQ(body_of(before), "not ready\n");

  ready.store(true);
  const std::string after = get(server.port(), "/readyz");
  EXPECT_EQ(status_of(after), 200);
  EXPECT_EQ(body_of(after), "ready\n");
}

TEST(HttpExporter, UnknownPathsAndMalformedRequestsGetErrorCodes) {
  Registry reg;
  HttpExporter server(reg);
  EXPECT_EQ(status_of(get(server.port(), "/nope")), 404);
  EXPECT_EQ(status_of(raw_request(server.port(), "garbage with no structure\r\n\r\n")), 400);
  EXPECT_EQ(status_of(raw_request(server.port(), "POST /metrics HTTP/1.1\r\n\r\n")), 405);
  // HEAD gets headers (with the true length) and no body.
  const std::string head =
      raw_request(server.port(), "HEAD /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(head), 200);
  EXPECT_EQ(body_of(head), "");

  // Error responses are counted under bounded labels, not per bad path.
  EXPECT_GE(reg.counter_value("neat_obs_http_requests_total",
                              {{"path", "other"}, {"code", "404"}}),
            1u);
}

TEST(HttpExporter, TracezServesRecentSpansWithTraceIds) {
  Registry reg;
  Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t id = 0;
  {
    ScopedSpan span("test.request", tracer);
    id = next_trace_id();
    span.arg("trace_id", id);
  }
  HttpExporter server(reg, {}, &tracer);
  const std::string tracez = get(server.port(), "/tracez");
  EXPECT_EQ(status_of(tracez), 200);
  EXPECT_NE(tracez.find("test.request"), std::string::npos);
  EXPECT_NE(tracez.find("\"trace_id\":" + std::to_string(id)), std::string::npos);

  // Without a tracer the endpoint does not exist.
  Registry reg2;
  HttpExporter no_tracer(reg2);
  EXPECT_EQ(status_of(get(no_tracer.port(), "/tracez")), 404);
}

TEST(HttpExporter, ConcurrentScrapesWhileWritersRecord) {
  Registry reg;
  HttpExporterOptions opts;
  opts.worker_threads = 3;
  HttpExporter server(reg, opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&reg, &stop, w] {
      Counter& c = reg.counter("neat_test_writes_total",
                               {{"writer", std::to_string(w)}});
      Log2Histogram& h = reg.histogram("neat_test_write_seconds");
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        h.record(1e-6);
      }
    });
  }
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([&server, &ok] {
      for (int i = 0; i < 25; ++i) {
        if (status_of(get(server.port(), "/metrics")) == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(ok.load(), 4 * 25);  // every concurrent scrape succeeded
}

TEST(HttpExporter, StopReleasesThePortForImmediateRebind) {
  Registry reg;
  std::uint16_t port = 0;
  {
    HttpExporter server(reg);
    port = server.port();
    EXPECT_EQ(status_of(get(port, "/healthz")), 200);
    server.stop();  // explicit stop; the destructor repeat is a no-op
  }
  // The exact port is free again: binding it succeeds right away.
  HttpExporterOptions opts;
  opts.port = port;
  HttpExporter rebound(reg, opts);
  EXPECT_EQ(rebound.port(), port);
  EXPECT_EQ(status_of(get(port, "/healthz")), 200);
}

TEST(HttpExporter, InvalidBindAddressThrows) {
  Registry reg;
  HttpExporterOptions opts;
  opts.bind_address = "not-an-address";
  EXPECT_THROW(HttpExporter(reg, opts), Error);
}

}  // namespace
}  // namespace neat::obs
