// Unit tests for the road-network graph model and its NEAT primitives
// (L_n(e), I(ei, ej), segment/edge duality).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "roadnet/builder.h"
#include "roadnet/road_network.h"
#include "test_util.h"

namespace neat::roadnet {
namespace {

RoadNetwork two_segment_line() { return testutil::line_network(2); }

TEST(Builder, CountsAndIds) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(c.value(), 1);
  const SegmentId s = b.add_segment(a, c, 10.0);
  EXPECT_EQ(s.value(), 0);
  EXPECT_EQ(b.node_count(), 2u);
  EXPECT_EQ(b.segment_count(), 1u);
  const RoadNetwork net = b.build();
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.segment_count(), 1u);
  EXPECT_EQ(net.edge_count(), 2u);  // bidirectional -> two directed edges
}

TEST(Builder, DefaultLengthIsStraightLine) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({30, 40});
  b.add_segment(a, c, 10.0);
  const RoadNetwork net = b.build();
  EXPECT_DOUBLE_EQ(net.segment_length(SegmentId(0)), 50.0);
}

TEST(Builder, ExplicitLongerLengthAllowed) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({30, 40});
  b.add_segment(a, c, 10.0, true, 80.0);  // curvy road
  EXPECT_DOUBLE_EQ(b.build().segment_length(SegmentId(0)), 80.0);
}

TEST(Builder, RejectsInvalidInput) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  EXPECT_THROW(b.add_segment(a, a, 10.0), PreconditionError);         // self loop
  EXPECT_THROW(b.add_segment(a, NodeId(99), 10.0), PreconditionError);  // no such node
  EXPECT_THROW(b.add_segment(a, c, 0.0), PreconditionError);           // bad speed
  EXPECT_THROW(b.add_segment(a, c, 10.0, true, 50.0), PreconditionError);  // undercut
}

TEST(Builder, BuildEmptiesBuilder) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  b.add_segment(a, c, 10.0);
  (void)b.build();
  EXPECT_EQ(b.node_count(), 0u);
  EXPECT_EQ(b.segment_count(), 0u);
}

TEST(RoadNetwork, AccessorsValidateIds) {
  const RoadNetwork net = two_segment_line();
  EXPECT_THROW(static_cast<void>(net.node(NodeId(99))), NotFoundError);
  EXPECT_THROW(static_cast<void>(net.node(NodeId::invalid())), NotFoundError);
  EXPECT_THROW(static_cast<void>(net.segment(SegmentId(99))), NotFoundError);
  EXPECT_THROW(static_cast<void>(net.edge(EdgeId(99))), NotFoundError);
}

TEST(RoadNetwork, PointOnSegmentClamps) {
  const RoadNetwork net = two_segment_line();
  EXPECT_EQ(net.point_on_segment(SegmentId(0), 0.0), (Point{0, 0}));
  EXPECT_EQ(net.point_on_segment(SegmentId(0), 50.0), (Point{50, 0}));
  EXPECT_EQ(net.point_on_segment(SegmentId(0), 1e9), (Point{100, 0}));
  EXPECT_EQ(net.point_on_segment(SegmentId(0), -5.0), (Point{0, 0}));
}

TEST(RoadNetwork, ProjectToSegment) {
  const RoadNetwork net = two_segment_line();
  double dist = -1.0;
  const double offset = net.project_to_segment(SegmentId(0), {25, 30}, &dist);
  EXPECT_DOUBLE_EQ(offset, 25.0);
  EXPECT_DOUBLE_EQ(dist, 30.0);
}

TEST(RoadNetwork, SegmentsAtJunction) {
  const RoadNetwork net = two_segment_line();
  const auto star = net.segments_at(NodeId(1));  // middle junction
  EXPECT_EQ(star.size(), 2u);
  EXPECT_EQ(net.junction_degree(NodeId(1)), 2);
  EXPECT_EQ(net.junction_degree(NodeId(0)), 1);
}

TEST(RoadNetwork, AdjacentSegmentsIsLnOfPaper) {
  // Star network: L_{n2}(S1) must be {S2, S3, S4}.
  const RoadNetwork net = testutil::fig1_network();
  auto l = net.adjacent_segments(SegmentId(0), NodeId(1));
  std::sort(l.begin(), l.end());
  EXPECT_EQ(l, (std::vector<SegmentId>{SegmentId(1), SegmentId(2), SegmentId(3)}));
  // At the dead-end n1, L_{n1}(S1) is empty.
  EXPECT_TRUE(net.adjacent_segments(SegmentId(0), NodeId(0)).empty());
  // Node must be an endpoint.
  EXPECT_THROW(net.adjacent_segments(SegmentId(0), NodeId(2)), PreconditionError);
}

TEST(RoadNetwork, SharedJunctionIsIOfPaper) {
  const RoadNetwork net = testutil::fig1_network();
  EXPECT_EQ(net.shared_junction(SegmentId(0), SegmentId(1)), NodeId(1));
  EXPECT_EQ(net.shared_junction(SegmentId(2), SegmentId(3)), NodeId(1));
  EXPECT_TRUE(net.are_adjacent(SegmentId(0), SegmentId(3)));
  EXPECT_FALSE(net.shared_junction(SegmentId(0), SegmentId(0)).valid());
}

TEST(RoadNetwork, NonAdjacentSegments) {
  const RoadNetwork net = testutil::line_network(3);
  EXPECT_FALSE(net.are_adjacent(SegmentId(0), SegmentId(2)));
  EXPECT_FALSE(net.shared_junction(SegmentId(0), SegmentId(2)).valid());
}

TEST(RoadNetwork, ParallelSegmentsSharedJunctionDeterministic) {
  // Two parallel segments between the same junction pair share two nodes;
  // the smaller node id must win, deterministically.
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  b.add_segment(a, c, 10.0);
  b.add_segment(a, c, 10.0, true, 150.0);  // longer parallel road
  const RoadNetwork net = b.build();
  EXPECT_EQ(net.shared_junction(SegmentId(0), SegmentId(1)), a);
}

TEST(RoadNetwork, OtherEndpoint) {
  const RoadNetwork net = two_segment_line();
  EXPECT_EQ(net.other_endpoint(SegmentId(0), NodeId(0)), NodeId(1));
  EXPECT_EQ(net.other_endpoint(SegmentId(0), NodeId(1)), NodeId(0));
  EXPECT_THROW(static_cast<void>(net.other_endpoint(SegmentId(0), NodeId(2))), PreconditionError);
}

TEST(RoadNetwork, DirectedEdgesOfBidirectionalSegment) {
  const RoadNetwork net = two_segment_line();
  const EdgeId f = net.forward_edge(SegmentId(0));
  const EdgeId r = net.backward_edge(SegmentId(0));
  ASSERT_TRUE(f.valid());
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(net.edge(f).from, NodeId(0));
  EXPECT_EQ(net.edge(f).to, NodeId(1));
  EXPECT_EQ(net.edge(r).from, NodeId(1));
  EXPECT_EQ(net.edge(r).to, NodeId(0));
  EXPECT_EQ(net.edge(f).sid, SegmentId(0));
  EXPECT_EQ(net.edge(r).sid, SegmentId(0));
}

TEST(RoadNetwork, OneWaySegmentHasSingleEdge) {
  RoadNetworkBuilder b;
  const NodeId a = b.add_node({0, 0});
  const NodeId c = b.add_node({100, 0});
  b.add_segment(a, c, 10.0, /*bidirectional=*/false);
  const RoadNetwork net = b.build();
  EXPECT_EQ(net.edge_count(), 1u);
  EXPECT_TRUE(net.forward_edge(SegmentId(0)).valid());
  EXPECT_FALSE(net.backward_edge(SegmentId(0)).valid());
  EXPECT_TRUE(net.edge_from(SegmentId(0), a).valid());
  EXPECT_FALSE(net.edge_from(SegmentId(0), c).valid());
  EXPECT_TRUE(net.out_edges(c).empty());
}

TEST(RoadNetwork, EdgeFromNonEndpointIsInvalid) {
  const RoadNetwork net = two_segment_line();
  EXPECT_FALSE(net.edge_from(SegmentId(0), NodeId(2)).valid());
}

TEST(RoadNetwork, StatsMatchHandComputation) {
  const RoadNetwork net = testutil::fig1_network();
  const NetworkStats st = net.stats();
  EXPECT_EQ(st.num_segments, 4u);
  EXPECT_EQ(st.num_junctions, 5u);
  EXPECT_DOUBLE_EQ(st.total_length_km, 0.4);
  EXPECT_DOUBLE_EQ(st.avg_segment_length_m, 100.0);
  EXPECT_EQ(st.max_junction_degree, 4);
  EXPECT_DOUBLE_EQ(st.avg_junction_degree, 8.0 / 5.0);
}

TEST(RoadNetwork, BoundingBox) {
  const Bounds bb = testutil::fig1_network().bounding_box();
  EXPECT_EQ(bb.min, (Point{0, -100}));
  EXPECT_EQ(bb.max, (Point{200, 100}));
}

TEST(RoadNetwork, EmptyNetwork) {
  const RoadNetwork net;
  EXPECT_EQ(net.node_count(), 0u);
  EXPECT_EQ(net.segment_count(), 0u);
  const NetworkStats st = net.stats();
  EXPECT_EQ(st.num_segments, 0u);
  EXPECT_DOUBLE_EQ(st.avg_junction_degree, 0.0);
}

TEST(RoadNetwork, ConstructorValidatesParts) {
  std::vector<Node> nodes{{{0, 0}}, {{100, 0}}};
  {
    std::vector<Segment> segs{{NodeId(0), NodeId(5), 100.0, 10.0, true}};
    EXPECT_THROW(RoadNetwork(nodes, segs), PreconditionError);
  }
  {
    std::vector<Segment> segs{{NodeId(0), NodeId(1), 10.0, 10.0, true}};  // undercut
    EXPECT_THROW(RoadNetwork(nodes, segs), PreconditionError);
  }
}

}  // namespace
}  // namespace neat::roadnet
