// Ablation studies for the design choices DESIGN.md calls out (not a paper
// figure — extensions):
//   1. merging-selectivity weight presets (wq, wk, wv) — §III-B.2 discusses
//      them qualitatively; here their quantitative effect on the clustering,
//   2. the β domination threshold,
//   3. the minCard filter,
//   4. ELB and ε-bounded searches in Phase 3 (work counters).
// All on the ATL1000 dataset.
#include <cmath>
#include <iostream>
#include <limits>

#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/table.h"

using namespace neat;

int main() {
  eval::print_scale_banner(std::cout, "Ablations: SF weights, beta, minCard, ELB (ATL1000)");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("ATL");
  const traj::TrajectoryDataset& data = env.dataset("ATL", 1000);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1. Weight presets.
  struct Preset {
    const char* name;
    double wq, wk, wv;
  };
  const Preset presets[] = {
      {"maxFlow (1,0,0)", 1, 0, 0},          {"densest (0,1,0)", 0, 1, 0},
      {"fastest (0,0,1)", 0, 0, 1},          {"balanced (1/3 each)", 1, 1, 1},
      {"monitoring (1/2,1/2,0)", 1, 1, 0},
  };
  eval::TextTable weights({"preset", "#flows", "avg route m", "max route m",
                           "traj coverage %", "avg cardinality"});
  for (const Preset& p : presets) {
    Config cfg;
    cfg.mode = Mode::kFlow;
    cfg.flow.wq = p.wq;
    cfg.flow.wk = p.wk;
    cfg.flow.wv = p.wv;
    const Result res = NeatClusterer(net, cfg).run(data);
    const eval::RouteLengthStats st = eval::flow_route_stats(res.flow_clusters);
    double card_sum = 0.0;
    for (const FlowCluster& f : res.flow_clusters) card_sum += f.cardinality();
    weights.add_row(
        {p.name, std::to_string(st.count), format_fixed(st.avg_m, 0),
         format_fixed(st.max_m, 0),
         format_fixed(100.0 * eval::trajectory_coverage(res, data.size()), 1),
         format_fixed(st.count ? card_sum / static_cast<double>(st.count) : 0.0, 1)});
  }
  std::cout << "1. merging-selectivity weight presets:\n";
  weights.print(std::cout);
  weights.write_csv(eval::results_dir() + "/ablation_weights.csv");

  // 2. Beta sweep.
  eval::TextTable beta_table({"beta", "#flows", "avg route m", "max route m"});
  for (const double beta : {1.5, 2.0, 3.0, 5.0, 10.0, kInf}) {
    Config cfg;
    cfg.mode = Mode::kFlow;
    cfg.flow.beta = beta;
    const Result res = NeatClusterer(net, cfg).run(data);
    const eval::RouteLengthStats st = eval::flow_route_stats(res.flow_clusters);
    beta_table.add_row({std::isinf(beta) ? "inf" : format_fixed(beta, 1),
                        std::to_string(st.count), format_fixed(st.avg_m, 0),
                        format_fixed(st.max_m, 0)});
  }
  std::cout << "\n2. domination threshold beta:\n";
  beta_table.print(std::cout);
  beta_table.write_csv(eval::results_dir() + "/ablation_beta.csv");

  // 3. minCard sweep (-1 = auto).
  eval::TextTable card_table({"minCard", "effective", "#kept", "#filtered",
                              "fragment coverage %", "traj coverage %"});
  for (const double mc : {0.0, 1.0, 2.0, -1.0, 5.0, 10.0}) {
    Config cfg;
    cfg.mode = Mode::kFlow;
    cfg.flow.min_card = mc;
    const Result res = NeatClusterer(net, cfg).run(data);
    card_table.add_row(
        {mc < 0 ? "auto (avg)" : format_fixed(mc, 0),
         format_fixed(res.effective_min_card, 2), std::to_string(res.flow_clusters.size()),
         std::to_string(res.filtered_flows.size()),
         format_fixed(100.0 * eval::fragment_coverage(res), 1),
         format_fixed(100.0 * eval::trajectory_coverage(res, data.size()), 1)});
  }
  std::cout << "\n3. minCard filter:\n";
  card_table.print(std::cout);
  card_table.write_csv(eval::results_dir() + "/ablation_mincard.csv");

  // 4. Phase 3 work: ELB x bounded-search grid.
  eval::TextTable p3({"variant", "phase3 ms", "sp-calls", "pruned pairs", "#final"});
  struct Variant {
    const char* name;
    bool elb;
    bool bound;
  };
  const Variant variants[] = {{"ELB + bounded (default)", true, true},
                              {"ELB only", true, false},
                              {"bounded only", false, true},
                              {"plain Dijkstra (paper's)", false, false}};
  for (const Variant& v : variants) {
    Config cfg;
    cfg.refine.use_elb = v.elb;
    cfg.refine.bound_searches_at_epsilon = v.bound;
    const Result res = NeatClusterer(net, cfg).run(data);
    p3.add_row({v.name, format_fixed(res.timing.phase3_s * 1000.0, 2),
                std::to_string(res.sp_computations), std::to_string(res.elb_pruned_pairs),
                std::to_string(res.final_clusters.size())});
  }
  std::cout << "\n4. Phase 3 optimizations (identical clusterings, different work):\n";
  p3.print(std::cout);
  p3.write_csv(eval::results_dir() + "/ablation_phase3.csv");

  // 5. Flow distance mode: the paper's endpoint prototype vs the full-route
  // refinement it points toward.
  eval::TextTable mode_table({"distance mode", "#final clusters", "phase3 ms", "sp-calls"});
  for (const auto& [label, mode] :
       {std::pair{"endpoints (paper prototype)", FlowDistanceMode::kEndpoints},
        std::pair{"full route", FlowDistanceMode::kFullRoute}}) {
    Config cfg;
    cfg.refine.distance_mode = mode;
    const Result res = NeatClusterer(net, cfg).run(data);
    mode_table.add_row({label, std::to_string(res.final_clusters.size()),
                        format_fixed(res.timing.phase3_s * 1000.0, 2),
                        std::to_string(res.sp_computations)});
  }
  std::cout << "\n5. flow distance mode (endpoint vs full-route Hausdorff):\n";
  mode_table.print(std::cout);
  mode_table.write_csv(eval::results_dir() + "/ablation_distance_mode.csv");
  return 0;
}
