// Table II — datasets used in the experiments.
//
// The paper reports the number of location points of each dataset
// {ATL,SJ,MIA} x {500,1000,2000,3000,5000}. This binary simulates the same
// grid (at the configured scale) and prints measured point counts beside
// the paper's, plus the points-per-object ratio, which is the
// scale-invariant quantity to compare.
#include <iostream>

#include "common/string_util.h"
#include "eval/experiments.h"
#include "eval/table.h"

using namespace neat;

namespace {

// Paper Table II: number of points per dataset.
constexpr std::size_t kPaperPoints[3][5] = {
    {114878, 233793, 468738, 669924, 1277521},   // ATL
    {131982, 255162, 542598, 794638, 1296739},   // SJ
    {276711, 452224, 893412, 1302145, 2262313},  // MIA
};

}  // namespace

int main() {
  eval::print_scale_banner(std::cout, "Table II: trajectory datasets");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();

  eval::TextTable table({"dataset", "objects (paper)", "objects (sim)", "points (paper)",
                         "points (sim)", "pts/obj (paper)", "pts/obj (sim)"});
  for (std::size_t c = 0; c < eval::kCities.size(); ++c) {
    for (std::size_t i = 0; i < eval::kPaperObjectCounts.size(); ++i) {
      const std::size_t paper_objects = eval::kPaperObjectCounts[i];
      const traj::TrajectoryDataset& data = env.dataset(eval::kCities[c], paper_objects);
      const std::size_t paper_points = kPaperPoints[c][i];
      table.add_row(
          {str_cat(eval::kCities[c], paper_objects), std::to_string(paper_objects),
           std::to_string(data.size()), std::to_string(paper_points),
           std::to_string(data.total_points()),
           format_fixed(static_cast<double>(paper_points) /
                            static_cast<double>(paper_objects),
                        1),
           format_fixed(data.size() == 0
                            ? 0.0
                            : static_cast<double>(data.total_points()) /
                                  static_cast<double>(data.size()),
                        1)});
    }
  }
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/table2_datasets.csv");
  return 0;
}
