// Micro-benchmarks (google-benchmark) for the kernels the paper's cost
// arguments rest on: netflow set intersection, point-to-point and
// one-to-many node distances across the engine ladder (Dijkstra / ALT /
// contraction hierarchy), the bucket-based many-to-many table fill against
// repeated one-to-many queries, grid lookups, the modified Hausdorff distance
// with and without ELB pruning, t-fragment extraction, and the TraClus
// segment distance.
//
// Besides the usual console table, the binary writes
// bench_results/BENCH_micro.json (one row per benchmark, median-free: each
// google-benchmark repetition is already long enough to be stable) so
// tools/bench_diff.py can track the kernels across commits.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/stopwatch.h"
#include "core/clusterer.h"
#include "core/fragmenter.h"
#include "core/netflow.h"
#include "core/refiner.h"
#include "eval/experiments.h"
#include "obs/prof/profiler.h"
#include "roadnet/ch_engine.h"
#include "roadnet/ch_table.h"
#include "roadnet/generators.h"
#include "roadnet/landmark_oracle.h"
#include "roadnet/shortest_path.h"
#include "roadnet/spatial_index.h"
#include "sim/mobility_simulator.h"
#include "traclus/segment_distance.h"

using namespace neat;

namespace {

/// Lazily built shared fixture: one mid-sized city + one dataset + flows,
/// plus the prebuilt distance accelerators the engine-ladder kernels share.
struct Fixture {
  roadnet::RoadNetwork net;
  roadnet::SegmentGridIndex index;
  roadnet::LandmarkOracle landmarks;
  roadnet::ChEngine ch;
  traj::TrajectoryDataset data;
  Result flow_result;

  static const Fixture& get() {
    static Fixture f;
    return f;
  }

 private:
  Fixture()
      : net(roadnet::make_city([] {
          roadnet::CityParams p;
          p.rows = 40;
          p.cols = 40;
          p.spacing_m = 140.0;
          p.seed = 99;
          return p;
        }())),
        index(net),
        landmarks(net),
        ch(net) {
    const sim::SimConfig scfg = sim::default_config(net, 3, 3);
    data = sim::MobilitySimulator(net, scfg).generate(200, 7);
    Config cfg;
    cfg.mode = Mode::kFlow;
    cfg.flow.min_card = 1.0;
    flow_result = NeatClusterer(net, cfg).run(data);
  }
};

void BM_NetflowIntersection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<TrajectoryId> a;
  std::vector<TrajectoryId> b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(TrajectoryId(static_cast<std::int64_t>(2 * i)));
    b.push_back(TrajectoryId(static_cast<std::int64_t>(3 * i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_common(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetflowIntersection)->Arg(16)->Arg(256)->Arg(4096);

void BM_DijkstraNodeDistance(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  roadnet::NodeDistanceOracle oracle(f.net);
  const auto far = NodeId(static_cast<std::int32_t>(f.net.node_count() - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.distance(NodeId(0), far));
  }
}
BENCHMARK(BM_DijkstraNodeDistance);

// The distance-engine ladder: 0 = Dijkstra, 1 = ALT, 2 = CH. Endpoints
// cycle over the network, so the CH rows measure the mixed regime the
// refiner sees: label builds on first touch, pure label merges afterwards.
void BM_PointToPointDistance(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const int engine = static_cast<int>(state.range(0));
  roadnet::NodeDistanceOracle oracle(f.net);
  roadnet::ChEngine::Query query(f.ch);
  const auto n = static_cast<std::int32_t>(f.net.node_count());
  std::int32_t i = 0;
  for (auto _ : state) {
    const NodeId s(i % n);
    const NodeId t((i * 131 + 17) % n);
    ++i;
    const double d = engine == 2
                         ? query.distance(s, t)
                         : oracle.distance(s, t, roadnet::kInfDistance,
                                           engine == 1 ? &f.landmarks : nullptr);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PointToPointDistance)->Arg(0)->Arg(1)->Arg(2);

void BM_OneToManyDistances(benchmark::State& state) {
  // The Phase 3 batch shape: one endpoint settled against a target set in a
  // single computation. 0 = Dijkstra, 1 = ALT, 2 = CH.
  const Fixture& f = Fixture::get();
  const int engine = static_cast<int>(state.range(0));
  roadnet::NodeDistanceOracle oracle(f.net);
  roadnet::ChEngine::Query query(f.ch);
  const auto n = static_cast<std::int32_t>(f.net.node_count());
  constexpr std::size_t kTargets = 8;
  std::vector<NodeId> targets(kTargets, NodeId(0));
  std::vector<double> out(kTargets, 0.0);
  std::int32_t i = 0;
  for (auto _ : state) {
    const NodeId s(i % n);
    for (std::size_t k = 0; k < kTargets; ++k) {
      targets[k] = NodeId(static_cast<std::int32_t>(
          (i * 97 + 31 * static_cast<std::int32_t>(k) + 5) % n));
    }
    ++i;
    if (engine == 2) {
      query.distances(s, targets, out);
    } else {
      oracle.distances(s, targets, out, roadnet::kInfDistance,
                       engine == 1 ? &f.landmarks : nullptr);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTargets));
}
BENCHMARK(BM_OneToManyDistances)->Arg(0)->Arg(1)->Arg(2);

/// Lazily built many-to-many fixture: the fig7 network (ATL, honoring
/// NEAT_BENCH_NET_SCALE) with a hierarchy over it, plus a deterministic
/// 256 x 256 endpoint workload — the matrix shape the refiner's batched
/// chunks aggregate into.
struct TableFixture {
  const roadnet::RoadNetwork& net;
  roadnet::ChEngine ch;
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  /// An ε-style search bound in the refiner's operating range: both kernels
  /// run bounded, the regime the Phase 3 batching actually exercises. The
  /// shared per-finite-cell resolution work (path unpack + re-sum, identical
  /// on both sides) grows with the bound and dilutes the merge-vs-join
  /// difference the kernels exist to measure.
  static constexpr double kBound = 1000.0;
  static constexpr std::size_t kSide = 256;

  static const TableFixture& get() {
    static TableFixture f;
    return f;
  }

 private:
  TableFixture() : net(eval::ExperimentEnv::instance().network("ATL")), ch(net) {
    const auto n = static_cast<std::int32_t>(net.node_count());
    for (std::size_t k = 0; k < kSide; ++k) {
      const auto i = static_cast<std::int32_t>(k);
      sources.push_back(NodeId((i * 131 + 17) % n));
      targets.push_back(NodeId((i * 197 + 59) % n));
    }
  }
};

void BM_TableRepeatedOneToMany(benchmark::State& state) {
  // The pre-table refiner pattern: one ChEngine::Query::distances() call per
  // source, each merging the source label against all 256 target labels.
  const TableFixture& f = TableFixture::get();
  roadnet::ChEngine::Query query(f.ch);
  std::vector<double> out(f.targets.size(), 0.0);
  for (auto _ : state) {
    for (const NodeId s : f.sources) {
      query.distances(s, f.targets, out, TableFixture::kBound);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.sources.size() * f.targets.size()));
}
BENCHMARK(BM_TableRepeatedOneToMany);

void BM_TableManyToMany(benchmark::State& state) {
  // The bucket-based fill: one backward sweep deposits target labels into
  // per-node buckets, one forward scan per source joins against them.
  const TableFixture& f = TableFixture::get();
  roadnet::CHTableEngine table(f.ch);
  std::vector<double> out(f.sources.size() * f.targets.size(), 0.0);
  for (auto _ : state) {
    table.table(f.sources, f.targets, out, TableFixture::kBound);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_TableManyToMany);

void BM_GridNearestSegment(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const roadnet::Bounds bb = f.net.bounding_box();
  double x = bb.min.x;
  for (auto _ : state) {
    x += 97.0;
    if (x > bb.max.x) x = bb.min.x;
    benchmark::DoNotOptimize(
        f.index.nearest_segment({x, (bb.min.y + bb.max.y) / 2}, 500.0));
  }
}
BENCHMARK(BM_GridNearestSegment);

void BM_FlowDistanceEval(benchmark::State& state) {
  // The Phase 3 inner loop: one full four-Dijkstra Hausdorff evaluation.
  const Fixture& f = Fixture::get();
  const auto& flows = f.flow_result.flow_clusters;
  if (flows.size() < 2) {
    state.SkipWithError("not enough flows");
    return;
  }
  RefineConfig cfg;
  const Refiner refiner(f.net, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % flows.size();
    const std::size_t b = (i * 7 + 1) % flows.size();
    ++i;
    benchmark::DoNotOptimize(refiner.flow_distance(flows[a], flows[b]));
  }
}
BENCHMARK(BM_FlowDistanceEval);

void BM_ElbPrefilter(benchmark::State& state) {
  // The O(1) Euclidean check that replaces the four Dijkstras when it fires.
  const Fixture& f = Fixture::get();
  const auto& flows = f.flow_result.flow_clusters;
  if (flows.size() < 2) {
    state.SkipWithError("not enough flows");
    return;
  }
  RefineConfig cfg;
  const Refiner refiner(f.net, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % flows.size();
    const std::size_t b = (i * 7 + 1) % flows.size();
    ++i;
    benchmark::DoNotOptimize(
        refiner.min_euclidean_endpoint_distance(flows[a], flows[b]));
  }
}
BENCHMARK(BM_ElbPrefilter);

void BM_FragmentTrajectory(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const Fragmenter fragmenter(f.net);
  std::size_t i = 0;
  std::size_t points = 0;
  for (auto _ : state) {
    const traj::Trajectory& tr = f.data[i % f.data.size()];
    ++i;
    points += tr.size();
    benchmark::DoNotOptimize(fragmenter.fragment(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(points));
}
BENCHMARK(BM_FragmentTrajectory);

void BM_TraclusSegmentDistance(benchmark::State& state) {
  const Point si{0, 0};
  const Point ei{120, 15};
  const Point sj{10, 22};
  const Point ej{140, 35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(traclus::segment_distance(si, ei, sj, ej));
  }
}
BENCHMARK(BM_TraclusSegmentDistance);

void BM_AstarVsDijkstraRoute(benchmark::State& state) {
  // state.range(0): 0 = Dijkstra, 1 = A*.
  const Fixture& f = Fixture::get();
  const auto far = NodeId(static_cast<std::int32_t>(f.net.node_count() - 1));
  const bool use_astar = state.range(0) == 1;
  for (auto _ : state) {
    if (use_astar) {
      benchmark::DoNotOptimize(
          roadnet::astar_route(f.net, NodeId(0), far, roadnet::Metric::kDistance));
    } else {
      benchmark::DoNotOptimize(
          roadnet::shortest_route(f.net, NodeId(0), far, roadnet::Metric::kDistance));
    }
  }
}
BENCHMARK(BM_AstarVsDijkstraRoute)->Arg(0)->Arg(1);

void BM_LocationDistance(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  roadnet::NodeDistanceOracle oracle(f.net);
  const auto n = static_cast<std::int32_t>(f.net.segment_count());
  std::int32_t i = 0;
  for (auto _ : state) {
    const roadnet::NetworkLocation a{SegmentId(i % n), 30.0};
    const roadnet::NetworkLocation b{SegmentId((i * 31 + 7) % n), 60.0};
    ++i;
    benchmark::DoNotOptimize(roadnet::location_distance(f.net, a, b, oracle));
  }
}
BENCHMARK(BM_LocationDistance);

void BM_Phase1Threads(benchmark::State& state) {
  // Phase 1 scaling with worker threads (results are identical; see tests).
  const Fixture& f = Fixture::get();
  const Fragmenter fragmenter(f.net);
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fragmenter.build_base_clusters(f.data, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.data.total_points()));
}
BENCHMARK(BM_Phase1Threads)->Arg(1)->Arg(2)->Arg(4);

void BM_Phase2FlowFormation(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const Fragmenter fragmenter(f.net);
  const Phase1Output p1 = fragmenter.build_base_clusters(f.data);
  FlowConfig cfg;
  for (auto _ : state) {
    const FlowBuilder builder(f.net, p1.base_clusters, cfg);
    benchmark::DoNotOptimize(builder.build());
  }
}
BENCHMARK(BM_Phase2FlowFormation);

/// Console output as usual, plus one BENCH_micro.json row per finished run
/// (seconds per iteration; counters like items/s stay in the console).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      rows_.emplace_back(run.benchmark_name(),
                         std::vector<std::pair<std::string, double>>{
                             {"real_s_per_iter", run.real_accumulated_time / iters},
                             {"iterations", static_cast<double>(run.iterations)}});
    }
  }

  [[nodiscard]] const auto& rows() const { return rows_; }

 private:
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  bench::BenchJson json("micro", 1.0, 1.0);
  for (const auto& [name, metrics] : reporter.rows()) json.add_row(name, metrics);

  // Derived row: the many-to-many acceptance ratio (repeated one-to-many
  // seconds over bucket-table seconds for the same 256 x 256 fill). Not an
  // `_s` metric, so bench_diff.py reports it without gating on it.
  double repeated_s = 0.0;
  double table_s = 0.0;
  for (const auto& [name, metrics] : reporter.rows()) {
    for (const auto& [key, value] : metrics) {
      if (key != "real_s_per_iter") continue;
      if (name == "BM_TableRepeatedOneToMany") repeated_s = value;
      if (name == "BM_TableManyToMany") table_s = value;
    }
  }
  if (repeated_s > 0.0 && table_s > 0.0) {
    json.add_row("ManyToManyTableSpeedup",
                 {{"speedup_x", repeated_s / table_s}});
  }

  // Hot-spot attribution: one full clustering run over the shared fixture
  // under the sampling profiler (untimed — google-benchmark already owns
  // the timings above), top symbols into the trajectory JSON.
  {
    const Fixture& f = Fixture::get();
    obs::prof::ProfilerOptions popts;
    popts.sample_hz = 997;  // the fixture run is short; sample densely
    Config cfg;
    cfg.refine.epsilon = 2000.0;
    const NeatClusterer profiled(f.net, cfg);
    const obs::prof::Profile profile = obs::prof::profile_call(
        [&] {
          // Re-run until ~a quarter second of work has accumulated so the
          // attribution is statistically meaningful even at smoke scale.
          const Stopwatch sw;
          do {
            static_cast<void>(profiled.run(f.data));
          } while (sw.elapsed_seconds() < 0.25);
        },
        popts);
    json.add_profile_row("ClusterRun_profile", profile.hot_symbols(10));
    std::cout << "profiled clustering run: " << profile.samples
              << " samples, top symbols in BENCH_micro.json\n";
  }
  const std::string json_path = eval::results_dir() + "/BENCH_micro.json";
  json.write(json_path);
  std::cout << "bench trajectory written to " << json_path
            << " (diff against a baseline with tools/bench_diff.py)\n";
  return 0;
}
