// Micro-benchmarks (google-benchmark) for the kernels the paper's cost
// arguments rest on: netflow set intersection, Dijkstra node distances,
// grid lookups, the modified Hausdorff distance with and without ELB
// pruning, t-fragment extraction, and the TraClus segment distance.
#include <benchmark/benchmark.h>

#include "core/clusterer.h"
#include "core/fragmenter.h"
#include "core/netflow.h"
#include "core/refiner.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "roadnet/spatial_index.h"
#include "sim/mobility_simulator.h"
#include "traclus/segment_distance.h"

using namespace neat;

namespace {

/// Lazily built shared fixture: one mid-sized city + one dataset + flows.
struct Fixture {
  roadnet::RoadNetwork net;
  roadnet::SegmentGridIndex index;
  traj::TrajectoryDataset data;
  Result flow_result;

  static const Fixture& get() {
    static Fixture f;
    return f;
  }

 private:
  Fixture()
      : net(roadnet::make_city([] {
          roadnet::CityParams p;
          p.rows = 40;
          p.cols = 40;
          p.spacing_m = 140.0;
          p.seed = 99;
          return p;
        }())),
        index(net) {
    const sim::SimConfig scfg = sim::default_config(net, 3, 3);
    data = sim::MobilitySimulator(net, scfg).generate(200, 7);
    Config cfg;
    cfg.mode = Mode::kFlow;
    cfg.flow.min_card = 1.0;
    flow_result = NeatClusterer(net, cfg).run(data);
  }
};

void BM_NetflowIntersection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<TrajectoryId> a;
  std::vector<TrajectoryId> b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(TrajectoryId(static_cast<std::int64_t>(2 * i)));
    b.push_back(TrajectoryId(static_cast<std::int64_t>(3 * i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_common(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetflowIntersection)->Arg(16)->Arg(256)->Arg(4096);

void BM_DijkstraNodeDistance(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  roadnet::NodeDistanceOracle oracle(f.net);
  const auto far = NodeId(static_cast<std::int32_t>(f.net.node_count() - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.distance(NodeId(0), far));
  }
}
BENCHMARK(BM_DijkstraNodeDistance);

void BM_GridNearestSegment(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const roadnet::Bounds bb = f.net.bounding_box();
  double x = bb.min.x;
  for (auto _ : state) {
    x += 97.0;
    if (x > bb.max.x) x = bb.min.x;
    benchmark::DoNotOptimize(
        f.index.nearest_segment({x, (bb.min.y + bb.max.y) / 2}, 500.0));
  }
}
BENCHMARK(BM_GridNearestSegment);

void BM_FlowDistanceEval(benchmark::State& state) {
  // The Phase 3 inner loop: one full four-Dijkstra Hausdorff evaluation.
  const Fixture& f = Fixture::get();
  const auto& flows = f.flow_result.flow_clusters;
  if (flows.size() < 2) {
    state.SkipWithError("not enough flows");
    return;
  }
  RefineConfig cfg;
  const Refiner refiner(f.net, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % flows.size();
    const std::size_t b = (i * 7 + 1) % flows.size();
    ++i;
    benchmark::DoNotOptimize(refiner.flow_distance(flows[a], flows[b]));
  }
}
BENCHMARK(BM_FlowDistanceEval);

void BM_ElbPrefilter(benchmark::State& state) {
  // The O(1) Euclidean check that replaces the four Dijkstras when it fires.
  const Fixture& f = Fixture::get();
  const auto& flows = f.flow_result.flow_clusters;
  if (flows.size() < 2) {
    state.SkipWithError("not enough flows");
    return;
  }
  RefineConfig cfg;
  const Refiner refiner(f.net, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % flows.size();
    const std::size_t b = (i * 7 + 1) % flows.size();
    ++i;
    benchmark::DoNotOptimize(
        refiner.min_euclidean_endpoint_distance(flows[a], flows[b]));
  }
}
BENCHMARK(BM_ElbPrefilter);

void BM_FragmentTrajectory(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const Fragmenter fragmenter(f.net);
  std::size_t i = 0;
  std::size_t points = 0;
  for (auto _ : state) {
    const traj::Trajectory& tr = f.data[i % f.data.size()];
    ++i;
    points += tr.size();
    benchmark::DoNotOptimize(fragmenter.fragment(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(points));
}
BENCHMARK(BM_FragmentTrajectory);

void BM_TraclusSegmentDistance(benchmark::State& state) {
  const Point si{0, 0};
  const Point ei{120, 15};
  const Point sj{10, 22};
  const Point ej{140, 35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(traclus::segment_distance(si, ei, sj, ej));
  }
}
BENCHMARK(BM_TraclusSegmentDistance);

void BM_AstarVsDijkstraRoute(benchmark::State& state) {
  // state.range(0): 0 = Dijkstra, 1 = A*.
  const Fixture& f = Fixture::get();
  const auto far = NodeId(static_cast<std::int32_t>(f.net.node_count() - 1));
  const bool use_astar = state.range(0) == 1;
  for (auto _ : state) {
    if (use_astar) {
      benchmark::DoNotOptimize(
          roadnet::astar_route(f.net, NodeId(0), far, roadnet::Metric::kDistance));
    } else {
      benchmark::DoNotOptimize(
          roadnet::shortest_route(f.net, NodeId(0), far, roadnet::Metric::kDistance));
    }
  }
}
BENCHMARK(BM_AstarVsDijkstraRoute)->Arg(0)->Arg(1);

void BM_LocationDistance(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  roadnet::NodeDistanceOracle oracle(f.net);
  const auto n = static_cast<std::int32_t>(f.net.segment_count());
  std::int32_t i = 0;
  for (auto _ : state) {
    const roadnet::NetworkLocation a{SegmentId(i % n), 30.0};
    const roadnet::NetworkLocation b{SegmentId((i * 31 + 7) % n), 60.0};
    ++i;
    benchmark::DoNotOptimize(roadnet::location_distance(f.net, a, b, oracle));
  }
}
BENCHMARK(BM_LocationDistance);

void BM_Phase1Threads(benchmark::State& state) {
  // Phase 1 scaling with worker threads (results are identical; see tests).
  const Fixture& f = Fixture::get();
  const Fragmenter fragmenter(f.net);
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fragmenter.build_base_clusters(f.data, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.data.total_points()));
}
BENCHMARK(BM_Phase1Threads)->Arg(1)->Arg(2)->Arg(4);

void BM_Phase2FlowFormation(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  const Fragmenter fragmenter(f.net);
  const Phase1Output p1 = fragmenter.build_base_clusters(f.data);
  FlowConfig cfg;
  for (auto _ : state) {
    const FlowBuilder builder(f.net, p1.base_clusters, cfg);
    benchmark::DoNotOptimize(builder.build());
  }
}
BENCHMARK(BM_Phase2FlowFormation);

}  // namespace

BENCHMARK_MAIN();
