// Figure 3 — NEAT clustering results on ATL500.
//
// The paper plots (a) the 500 input trajectories, (b) the 31 flow clusters
// found by flow-NEAT with minCard = average cardinality, and (c) the 2
// final clusters after density-based refinement with eps = 6500 m. This
// binary reproduces the pipeline on the synthetic ATL network, prints the
// corresponding counts, and writes plottable polylines (input trajectories,
// flow routes tagged by flow id, final clusters tagged by cluster id) to
// bench_results/fig3_*.csv.
#include <fstream>
#include <iostream>

#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/svg.h"
#include "eval/table.h"

using namespace neat;

namespace {

void dump_flow_routes(const roadnet::RoadNetwork& net, const Result& res,
                      const std::string& path) {
  std::ofstream out(path);
  out << "flow,final_cluster,seq,x,y\n";
  std::vector<int> final_of(res.flow_clusters.size(), -1);
  for (std::size_t c = 0; c < res.final_clusters.size(); ++c) {
    for (const std::size_t f : res.final_clusters[c].flows) {
      final_of[f] = static_cast<int>(c);
    }
  }
  for (std::size_t f = 0; f < res.flow_clusters.size(); ++f) {
    const FlowCluster& flow = res.flow_clusters[f];
    for (std::size_t j = 0; j < flow.junctions.size(); ++j) {
      const Point p = net.node(flow.junctions[j]).pos;
      out << f << ',' << final_of[f] << ',' << j << ',' << p.x << ',' << p.y << '\n';
    }
  }
}

void dump_trajectories(const traj::TrajectoryDataset& data, const std::string& path) {
  std::ofstream out(path);
  out << "trid,seq,x,y\n";
  for (const traj::Trajectory& tr : data) {
    for (std::size_t i = 0; i < tr.size(); ++i) {
      out << tr.id().value() << ',' << i << ',' << tr.point(i).pos.x << ','
          << tr.point(i).pos.y << '\n';
    }
  }
}

}  // namespace

int main() {
  eval::print_scale_banner(std::cout, "Figure 3: NEAT clustering results on ATL500");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("ATL");
  const traj::TrajectoryDataset& data = env.dataset("ATL", 500);

  Config cfg;                      // minCard: auto (average cardinality), as in the paper
  cfg.refine.epsilon = 6500.0;     // the paper's Figure 3(c) threshold
  const Result res = NeatClusterer(net, cfg).run(data);

  eval::TextTable table({"stage", "paper (ATL500)", "measured"});
  table.add_row({"input trajectories", "500", std::to_string(data.size())});
  table.add_row({"flow clusters (minCard=avg)", "31",
                 std::to_string(res.flow_clusters.size())});
  table.add_row({"effective minCard", "5", format_fixed(res.effective_min_card, 2)});
  table.add_row({"final clusters (eps=6500m)", "2",
                 std::to_string(res.final_clusters.size())});
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/fig3_counts.csv");

  const eval::RouteLengthStats stats = eval::flow_route_stats(res.flow_clusters);
  std::cout << "\nflow route lengths: avg " << format_fixed(stats.avg_m / 1000.0, 2)
            << " km, max " << format_fixed(stats.max_m / 1000.0, 2) << " km\n";
  std::cout << "trajectory coverage of kept flows: "
            << format_fixed(100.0 * eval::trajectory_coverage(res, data.size()), 1)
            << "%\n";

  dump_trajectories(data, eval::results_dir() + "/fig3_input_trajectories.csv");
  dump_flow_routes(net, res, eval::results_dir() + "/fig3_flow_routes.csv");

  // Render the three panels of the paper's figure as SVG: (a) the input
  // trajectories, (b) the flow clusters, (c) flows colored by final cluster.
  {
    eval::SvgWriter svg(net.bounding_box());
    svg.add_network(net);
    for (const traj::Trajectory& tr : data) {
      std::vector<Point> pts;
      for (const traj::Location& loc : tr.points()) pts.push_back(loc.pos);
      svg.add_polyline(pts, "#2ca02c", 1.0, 0.4);  // green, like the paper
    }
    svg.write(eval::results_dir() + "/fig3a_input.svg");
  }
  const auto flow_polyline = [&](const FlowCluster& f) {
    std::vector<Point> pts;
    for (const NodeId j : f.junctions) pts.push_back(net.node(j).pos);
    return pts;
  };
  {
    eval::SvgWriter svg(net.bounding_box());
    svg.add_network(net);
    for (std::size_t f = 0; f < res.flow_clusters.size(); ++f) {
      svg.add_polyline(flow_polyline(res.flow_clusters[f]),
                       eval::SvgWriter::qualitative_color(f), 2.5, 0.9);
    }
    svg.write(eval::results_dir() + "/fig3b_flows.svg");
  }
  {
    eval::SvgWriter svg(net.bounding_box());
    svg.add_network(net);
    for (std::size_t c = 0; c < res.final_clusters.size(); ++c) {
      for (const std::size_t f : res.final_clusters[c].flows) {
        svg.add_polyline(flow_polyline(res.flow_clusters[f]),
                         eval::SvgWriter::qualitative_color(c), 2.5, 0.9);
      }
    }
    svg.write(eval::results_dir() + "/fig3c_clusters.svg");
  }

  std::cout << "\npolylines written to " << eval::results_dir()
            << "/fig3_input_trajectories.csv and fig3_flow_routes.csv;\n"
            << "figure panels rendered to fig3a_input.svg, fig3b_flows.svg, "
            << "fig3c_clusters.svg\n";
  return 0;
}
