// Figure 4 — TraClus on ATL500 under two parameter settings.
//
// The paper shows (a) 81 clusters at the visually tuned (eps=10 m,
// MinLns=30) and (b) 460 discrete short clusters at (eps=1 m, MinLns=1),
// arguing that neither captures traffic continuity. This binary runs the
// reimplemented TraClus with both settings (MinLns rescaled with the object
// count so the density threshold means the same thing at bench scale) and
// reports cluster counts and representative lengths.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/string_util.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "traclus/traclus.h"

using namespace neat;

int main() {
  eval::print_scale_banner(std::cout, "Figure 4: TraClus parameter sensitivity on ATL500");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const traj::TrajectoryDataset& data = env.dataset("ATL", 500);

  // MinLns=30 was tuned for 500 objects; keep the same fraction of the
  // simulated object count (minimum 2).
  const int scaled_min_lns = std::max(
      2, static_cast<int>(std::lround(30.0 * static_cast<double>(data.size()) / 500.0)));

  struct Setting {
    const char* label;
    double epsilon;
    int min_lns;
    const char* paper_clusters;
  };
  const Setting settings[] = {
      {"tuned (eps=10m, MinLns~30)", 10.0, scaled_min_lns, "81"},
      {"tight (eps=1m, MinLns=1)", 1.0, 1, "460"},
  };

  eval::TextTable table({"setting", "clusters (paper)", "clusters (sim)", "noise segs",
                         "avg rep m", "max rep m", "time ms"});
  for (const Setting& s : settings) {
    traclus::Config cfg;
    cfg.epsilon = s.epsilon;
    cfg.min_lns = s.min_lns;
    const traclus::Result res = traclus::run(data, cfg);
    const eval::RouteLengthStats stats = eval::traclus_route_stats(res.clusters);
    table.add_row({s.label, s.paper_clusters, std::to_string(res.clusters.size()),
                   std::to_string(res.noise_segments), format_fixed(stats.avg_m, 1),
                   format_fixed(stats.max_m, 1), format_fixed(res.total_s() * 1000.0, 1)});
  }
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/fig4_traclus_params.csv");
  std::cout << "\n(the paper's point: the tight setting shatters the data into many\n"
               "short, discrete clusters; representative lengths stay well below the\n"
               "NEAT flow routes of Figure 3/5)\n";
  return 0;
}
