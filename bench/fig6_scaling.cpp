// Figure 6 — performance of the NEAT algorithms.
//   (a) scaling of base-NEAT, flow-NEAT and opt-NEAT over the MIA datasets
//       (the paper's curves are near-linear, with opt-NEAT ~ flow-NEAT
//       because ELB keeps Phase 3 cheap);
//   (b) relative cost of Phase 1 (base cluster formation) vs Phase 2 (flow
//       cluster formation) — Phase 1 dominates because it scans every
//       location sample while Phase 2 only touches base clusters;
//   (c) beyond the paper: Phase 3 wall time with the parallel refiner at
//       1 / 2 / 4 / 8 threads on the largest MIA dataset, pruning disabled so
//       there is enough shortest-path work to distribute. The clusters are
//       bit-identical at every thread count; only the wall time moves.
#include <iostream>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"

using namespace neat;

int main() {
  eval::print_scale_banner(std::cout, "Figure 6: NEAT scaling (MIA datasets)");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("MIA");
  std::cout << "MIA network: " << net.segment_count() << " segments, " << net.node_count()
            << " junctions\n\n";

  Config cfg;
  cfg.refine.epsilon = 3000.0;
  const NeatClusterer clusterer(net, cfg);

  eval::TextTable scaling({"dataset", "points", "base-NEAT s", "flow-NEAT s", "opt-NEAT s",
                           "#flows"});
  eval::TextTable relative({"dataset", "phase1 s", "phase2 s", "phase1 share %"});

  for (const std::size_t objects : eval::kPaperObjectCounts) {
    const traj::TrajectoryDataset& data = env.dataset("MIA", objects);
    const Result res = clusterer.run(data);  // one run, cumulative timings
    const double base_s = res.timing.phase1_s;
    const double flow_s = res.timing.phase1_s + res.timing.phase2_s;
    const double opt_s = res.timing.total_s();
    scaling.add_row({str_cat("MIA", objects), std::to_string(data.total_points()),
                     format_fixed(base_s, 3), format_fixed(flow_s, 3),
                     format_fixed(opt_s, 3), std::to_string(res.flow_clusters.size())});
    const double p12 = res.timing.phase1_s + res.timing.phase2_s;
    relative.add_row({str_cat("MIA", objects), format_fixed(res.timing.phase1_s, 3),
                      format_fixed(res.timing.phase2_s, 3),
                      format_fixed(p12 > 0 ? 100.0 * res.timing.phase1_s / p12 : 0.0, 1)});
  }

  std::cout << "(a) cumulative running time per NEAT version:\n";
  scaling.print(std::cout);
  scaling.write_csv(eval::results_dir() + "/fig6a_scaling.csv");
  std::cout << "\n(shapes to check: near-linear growth in points; opt-NEAT curve nearly\n"
               "overlaps flow-NEAT because ELB makes Phase 3 almost free)\n";

  std::cout << "\n(b) Phase 1 vs Phase 2 relative cost:\n";
  relative.print(std::cout);
  relative.write_csv(eval::results_dir() + "/fig6b_phases.csv");
  std::cout << "\n(shape to check: Phase 1 dominates — it scans every location sample,\n"
               "Phase 2 only processes base clusters)\n";

  // (c) Parallel Phase 3. Disable pruning so the pairwise work is heavy
  // enough for threading to matter even at bench scale.
  const std::size_t largest = eval::kPaperObjectCounts.back();
  const traj::TrajectoryDataset& big = env.dataset("MIA", largest);
  eval::TextTable par({"dataset", "refine threads", "phase3 s", "speedup", "#clusters"});
  double serial_s = 0.0;
  for (const unsigned threads : std::vector<unsigned>{1, 2, 4, 8}) {
    Config pcfg;
    pcfg.refine.epsilon = 3000.0;
    pcfg.refine.use_elb = false;
    pcfg.refine.threads = threads;
    const Result res = NeatClusterer(net, pcfg).run(big);
    if (threads == 1) serial_s = res.timing.phase3_s;
    par.add_row({str_cat("MIA", largest), std::to_string(threads),
                 format_fixed(res.timing.phase3_s, 3),
                 format_fixed(res.timing.phase3_s > 0 ? serial_s / res.timing.phase3_s : 0.0, 2),
                 std::to_string(res.final_clusters.size())});
  }
  std::cout << "\n(c) Phase 3 wall time vs refine threads (pruning off), "
            << std::thread::hardware_concurrency() << " hardware threads:\n";
  par.print(std::cout);
  par.write_csv(eval::results_dir() + "/fig6c_parallel_refine.csv");
  std::cout << "\n(shape to check: phase-3 time falls as threads rise — up to the\n"
               "hardware thread count above — while the cluster count stays constant\n"
               "because the parallel refiner is bit-identical to the serial one)\n";
  return 0;
}
