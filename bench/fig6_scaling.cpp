// Figure 6 — performance of the NEAT algorithms.
//   (a) scaling of base-NEAT, flow-NEAT and opt-NEAT over the MIA datasets
//       (the paper's curves are near-linear, with opt-NEAT ~ flow-NEAT
//       because ELB keeps Phase 3 cheap);
//   (b) relative cost of Phase 1 (base cluster formation) vs Phase 2 (flow
//       cluster formation) — Phase 1 dominates because it scans every
//       location sample while Phase 2 only touches base clusters;
//   (c) beyond the paper: Phase 3 wall time with the parallel refiner at
//       1 / 2 / 4 / 8 threads on the largest MIA dataset, pruning disabled so
//       there is enough shortest-path work to distribute. The clusters are
//       bit-identical at every thread count; only the wall time moves.
#include <iostream>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"
#include "obs/registry.h"

using namespace neat;

namespace {

/// Registry readings the bench tables are built from. Taking before/after
/// deltas of the live metrics — instead of copying Result fields — keeps the
/// bench output and what a scraper would see from ever drifting apart.
struct RegistrySample {
  double phase1_s{};
  double phase2_s{};
  double phase3_s{};
  std::uint64_t flows{};

  static RegistrySample take() {
    const obs::Registry& reg = obs::Registry::global();
    RegistrySample s;
    s.phase1_s =
        reg.histogram_sum_seconds("neat_core_phase_duration_seconds", {{"phase", "1"}});
    s.phase2_s =
        reg.histogram_sum_seconds("neat_core_phase_duration_seconds", {{"phase", "2"}});
    s.phase3_s =
        reg.histogram_sum_seconds("neat_core_phase_duration_seconds", {{"phase", "3"}});
    s.flows = reg.counter_value("neat_core_flow_clusters_total");
    return s;
  }

  RegistrySample operator-(const RegistrySample& rhs) const {
    return {phase1_s - rhs.phase1_s, phase2_s - rhs.phase2_s, phase3_s - rhs.phase3_s,
            flows - rhs.flows};
  }
};

}  // namespace

int main() {
  eval::print_scale_banner(std::cout, "Figure 6: NEAT scaling (MIA datasets)");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("MIA");
  std::cout << "MIA network: " << net.segment_count() << " segments, " << net.node_count()
            << " junctions\n\n";

  Config cfg;
  cfg.refine.epsilon = 3000.0;
  const NeatClusterer clusterer(net, cfg);

  eval::TextTable scaling({"dataset", "points", "base-NEAT s", "flow-NEAT s", "opt-NEAT s",
                           "#flows"});
  eval::TextTable relative({"dataset", "phase1 s", "phase2 s", "phase1 share %"});

  for (const std::size_t objects : eval::kPaperObjectCounts) {
    const traj::TrajectoryDataset& data = env.dataset("MIA", objects);
    const RegistrySample before = RegistrySample::take();
    static_cast<void>(clusterer.run(data));  // one run, cumulative timings
    const RegistrySample d = RegistrySample::take() - before;
    const double base_s = d.phase1_s;
    const double flow_s = d.phase1_s + d.phase2_s;
    const double opt_s = d.phase1_s + d.phase2_s + d.phase3_s;
    scaling.add_row({str_cat("MIA", objects), std::to_string(data.total_points()),
                     format_fixed(base_s, 3), format_fixed(flow_s, 3),
                     format_fixed(opt_s, 3), std::to_string(d.flows)});
    const double p12 = d.phase1_s + d.phase2_s;
    relative.add_row({str_cat("MIA", objects), format_fixed(d.phase1_s, 3),
                      format_fixed(d.phase2_s, 3),
                      format_fixed(p12 > 0 ? 100.0 * d.phase1_s / p12 : 0.0, 1)});
  }

  std::cout << "(a) cumulative running time per NEAT version:\n";
  scaling.print(std::cout);
  scaling.write_csv(eval::results_dir() + "/fig6a_scaling.csv");
  std::cout << "\n(shapes to check: near-linear growth in points; opt-NEAT curve nearly\n"
               "overlaps flow-NEAT because ELB makes Phase 3 almost free)\n";

  std::cout << "\n(b) Phase 1 vs Phase 2 relative cost:\n";
  relative.print(std::cout);
  relative.write_csv(eval::results_dir() + "/fig6b_phases.csv");
  std::cout << "\n(shape to check: Phase 1 dominates — it scans every location sample,\n"
               "Phase 2 only processes base clusters)\n";

  // (c) Parallel Phase 3. Disable pruning so the pairwise work is heavy
  // enough for threading to matter even at bench scale.
  const std::size_t largest = eval::kPaperObjectCounts.back();
  const traj::TrajectoryDataset& big = env.dataset("MIA", largest);
  eval::TextTable par({"dataset", "refine threads", "phase3 s", "speedup", "#clusters"});
  double serial_s = 0.0;
  for (const unsigned threads : std::vector<unsigned>{1, 2, 4, 8}) {
    Config pcfg;
    pcfg.refine.epsilon = 3000.0;
    pcfg.refine.use_elb = false;
    pcfg.refine.threads = threads;
    const RegistrySample before = RegistrySample::take();
    const Result res = NeatClusterer(net, pcfg).run(big);
    const double phase3_s = RegistrySample::take().phase3_s - before.phase3_s;
    if (threads == 1) serial_s = phase3_s;
    par.add_row({str_cat("MIA", largest), std::to_string(threads),
                 format_fixed(phase3_s, 3),
                 format_fixed(phase3_s > 0 ? serial_s / phase3_s : 0.0, 2),
                 std::to_string(res.final_clusters.size())});
  }
  std::cout << "\n(c) Phase 3 wall time vs refine threads (pruning off), "
            << std::thread::hardware_concurrency() << " hardware threads:\n";
  par.print(std::cout);
  par.write_csv(eval::results_dir() + "/fig6c_parallel_refine.csv");
  std::cout << "\n(shape to check: phase-3 time falls as threads rise — up to the\n"
               "hardware thread count above — while the cluster count stays constant\n"
               "because the parallel refiner is bit-identical to the serial one)\n";
  return 0;
}
