// Figure 6 — performance of the NEAT algorithms.
//   (a) scaling of base-NEAT, flow-NEAT and opt-NEAT over the MIA datasets
//       (the paper's curves are near-linear, with opt-NEAT ~ flow-NEAT
//       because ELB keeps Phase 3 cheap);
//   (b) relative cost of Phase 1 (base cluster formation) vs Phase 2 (flow
//       cluster formation) — Phase 1 dominates because it scans every
//       location sample while Phase 2 only touches base clusters;
//   (c) beyond the paper: Phase 3 wall time with the parallel refiner at
//       1 / 2 / 4 / 8 threads on the largest MIA dataset, pruning disabled so
//       there is enough shortest-path work to distribute. The clusters are
//       bit-identical at every thread count; only the wall time moves.
//   (d) beyond the paper: the out-of-core rung. A synthetic 1M-trajectory
//       dataset (scaled like every other dataset) is streamed straight to
//       the columnar format, then Phase 1 runs over the mmap-backed store
//       in bounded-memory batches at 1 / 2 / 4 / 8 threads. The reported
//       peak RSS stays far below the dataset bytes — the point of the
//       out-of-core data plane — and base clusters are bit-identical to an
//       in-memory run by construction (exact batch merge).
#include <cstdio>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"
#include "obs/prof/profiler.h"
#include "obs/registry.h"
#include "obs/resource_sampler.h"
#include "sim/synthetic_stream.h"
#include "store/columnar_store.h"

using namespace neat;

namespace {

/// Registry readings the bench tables are built from. Taking before/after
/// deltas of the live metrics — instead of copying Result fields — keeps the
/// bench output and what a scraper would see from ever drifting apart.
struct RegistrySample {
  double phase1_s{};
  double phase2_s{};
  double phase3_s{};
  std::uint64_t flows{};

  static RegistrySample take() {
    const obs::Registry& reg = obs::Registry::global();
    RegistrySample s;
    s.phase1_s =
        reg.histogram_sum_seconds("neat_core_phase_duration_seconds", {{"phase", "1"}});
    s.phase2_s =
        reg.histogram_sum_seconds("neat_core_phase_duration_seconds", {{"phase", "2"}});
    s.phase3_s =
        reg.histogram_sum_seconds("neat_core_phase_duration_seconds", {{"phase", "3"}});
    s.flows = reg.counter_value("neat_core_flow_clusters_total");
    return s;
  }

  RegistrySample operator-(const RegistrySample& rhs) const {
    return {phase1_s - rhs.phase1_s, phase2_s - rhs.phase2_s, phase3_s - rhs.phase3_s,
            flows - rhs.flows};
  }
};

}  // namespace

int main() {
  eval::print_scale_banner(std::cout, "Figure 6: NEAT scaling (MIA datasets)");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("MIA");
  std::cout << "MIA network: " << net.segment_count() << " segments, " << net.node_count()
            << " junctions (" << bench::repeats() << " repeat(s), medians reported)\n\n";

  Config cfg;
  cfg.refine.epsilon = 3000.0;
  const NeatClusterer clusterer(net, cfg);

  eval::TextTable scaling({"dataset", "points", "base-NEAT s", "flow-NEAT s", "opt-NEAT s",
                           "#flows"});
  eval::TextTable relative({"dataset", "phase1 s", "phase2 s", "phase1 share %"});
  bench::BenchJson json("fig6", env.object_scale(), env.network_scale());

  for (const std::size_t objects : eval::kPaperObjectCounts) {
    const traj::TrajectoryDataset& data = env.dataset("MIA", objects);
    // NEAT_BENCH_REPEATS runs; every reported number is the median, so one
    // scheduler hiccup cannot poison the CI trajectory.
    std::vector<double> p1s, p2s, p3s;
    std::uint64_t flows = 0;
    for (int rep = 0; rep < bench::repeats(); ++rep) {
      const RegistrySample before = RegistrySample::take();
      static_cast<void>(clusterer.run(data));  // one run, cumulative timings
      const RegistrySample d = RegistrySample::take() - before;
      p1s.push_back(d.phase1_s);
      p2s.push_back(d.phase2_s);
      p3s.push_back(d.phase3_s);
      flows = d.flows;  // deterministic across repeats
    }
    const double phase1_s = bench::median(p1s);
    const double phase2_s = bench::median(p2s);
    const double phase3_s = bench::median(p3s);
    const double base_s = phase1_s;
    const double flow_s = phase1_s + phase2_s;
    const double opt_s = phase1_s + phase2_s + phase3_s;
    scaling.add_row({str_cat("MIA", objects), std::to_string(data.total_points()),
                     format_fixed(base_s, 3), format_fixed(flow_s, 3),
                     format_fixed(opt_s, 3), std::to_string(flows)});
    const double p12 = phase1_s + phase2_s;
    relative.add_row({str_cat("MIA", objects), format_fixed(phase1_s, 3),
                      format_fixed(phase2_s, 3),
                      format_fixed(p12 > 0 ? 100.0 * phase1_s / p12 : 0.0, 1)});
    json.add_row(str_cat("MIA", objects),
                 {{"base_s", base_s},
                  {"flow_s", flow_s},
                  {"opt_s", opt_s},
                  {"phase1_s", phase1_s},
                  {"phase2_s", phase2_s},
                  {"phase3_s", phase3_s},
                  {"points", static_cast<double>(data.total_points())},
                  {"flows", static_cast<double>(flows)}});
  }

  std::cout << "(a) cumulative running time per NEAT version:\n";
  scaling.print(std::cout);
  scaling.write_csv(eval::results_dir() + "/fig6a_scaling.csv");
  std::cout << "\n(shapes to check: near-linear growth in points; opt-NEAT curve nearly\n"
               "overlaps flow-NEAT because ELB makes Phase 3 almost free)\n";

  std::cout << "\n(b) Phase 1 vs Phase 2 relative cost:\n";
  relative.print(std::cout);
  relative.write_csv(eval::results_dir() + "/fig6b_phases.csv");
  std::cout << "\n(shape to check: Phase 1 dominates — it scans every location sample,\n"
               "Phase 2 only processes base clusters)\n";

  // (c) Parallel Phase 3. Disable pruning so the pairwise work is heavy
  // enough for threading to matter even at bench scale.
  const std::size_t largest = eval::kPaperObjectCounts.back();
  const traj::TrajectoryDataset& big = env.dataset("MIA", largest);
  eval::TextTable par({"dataset", "refine threads", "phase3 s", "speedup", "#clusters"});
  double serial_s = 0.0;
  for (const unsigned threads : std::vector<unsigned>{1, 2, 4, 8}) {
    Config pcfg;
    pcfg.refine.epsilon = 3000.0;
    pcfg.refine.use_elb = false;
    pcfg.refine.threads = threads;
    std::vector<double> p3s;
    std::size_t clusters = 0;
    for (int rep = 0; rep < bench::repeats(); ++rep) {
      const RegistrySample before = RegistrySample::take();
      const Result res = NeatClusterer(net, pcfg).run(big);
      p3s.push_back(RegistrySample::take().phase3_s - before.phase3_s);
      clusters = res.final_clusters.size();
    }
    const double phase3_s = bench::median(p3s);
    if (threads == 1) serial_s = phase3_s;
    par.add_row({str_cat("MIA", largest), std::to_string(threads),
                 format_fixed(phase3_s, 3),
                 format_fixed(phase3_s > 0 ? serial_s / phase3_s : 0.0, 2),
                 std::to_string(clusters)});
    json.add_row(str_cat("MIA", largest, "_refine_threads", threads),
                 {{"phase3_s", phase3_s},
                  {"clusters", static_cast<double>(clusters)}});
  }
  std::cout << "\n(c) Phase 3 wall time vs refine threads (pruning off), "
            << std::thread::hardware_concurrency() << " hardware threads:\n";
  par.print(std::cout);
  par.write_csv(eval::results_dir() + "/fig6c_parallel_refine.csv");
  std::cout << "\n(shape to check: phase-3 time falls as threads rise — up to the\n"
               "hardware thread count above — while the cluster count stays constant\n"
               "because the parallel refiner is bit-identical to the serial one)\n";

  // (d) The out-of-core rung. Generation, conversion and clustering all
  // stream, so the only O(dataset) storage is the columnar file itself;
  // Phase 1 walks it through the mmap-backed store in bounded batches,
  // releasing consumed pages. Peak RSS is reset before the runs so the
  // reported high-water mark belongs to this section alone.
  {
    const std::size_t ooc_paper_objects = 1'000'000;
    const std::size_t objects = env.scaled_objects(ooc_paper_objects);
    const std::string col_path = eval::results_dir() + "/fig6d_stream.neatcol";
    sim::SyntheticStreamOptions sopts;
    sopts.trajectories = objects;
    Stopwatch gen_watch;
    const sim::SyntheticStreamStats gen =
        sim::generate_columnar_stream(net, col_path, sopts);
    const double generate_s = gen_watch.elapsed_seconds();

    const store::ColumnarTrajectoryStore cstore(col_path);  // checksum-verified open
    const double dataset_bytes = static_cast<double>(cstore.bytes_mapped());
    std::cout << "\n(d) out-of-core Phase 1 over " << gen.trajectories
              << " columnar trajectories (" << gen.points << " points, "
              << format_fixed(dataset_bytes / (1024.0 * 1024.0), 1) << " MiB on disk, "
              << "generated+written in " << format_fixed(generate_s, 2) << " s):\n";

    const bool rss_reset = obs::reset_peak_rss();
    eval::TextTable ooc({"dataset", "phase1 threads", "phase1 s", "speedup",
                         "#base clusters"});
    double serial_s = 0.0;
    std::size_t base_clusters = 0;
    for (const unsigned threads : std::vector<unsigned>{1, 2, 4, 8}) {
      Config ocfg;
      ocfg.mode = Mode::kBase;
      ocfg.phase1_threads = threads;
      const NeatClusterer oclusterer(net, ocfg);
      std::vector<double> p1s;
      for (int rep = 0; rep < bench::repeats(); ++rep) {
        store::ColumnarTrajectorySource source(cstore);
        const RegistrySample before = RegistrySample::take();
        const Result res = oclusterer.run(source);
        p1s.push_back(RegistrySample::take().phase1_s - before.phase1_s);
        base_clusters = res.base_clusters.size();  // deterministic across repeats
      }
      const double phase1_s = bench::median(p1s);
      if (threads == 1) serial_s = phase1_s;
      ooc.add_row({str_cat("OOC", ooc_paper_objects), std::to_string(threads),
                   format_fixed(phase1_s, 3),
                   format_fixed(phase1_s > 0 ? serial_s / phase1_s : 0.0, 2),
                   std::to_string(base_clusters)});
      json.add_row(str_cat("OOC", ooc_paper_objects, "_phase1_threads", threads),
                   {{"phase1_s", phase1_s},
                    {"base_clusters", static_cast<double>(base_clusters)}});
    }
    const double peak_rss = static_cast<double>(obs::peak_rss_bytes());
    ooc.print(std::cout);
    ooc.write_csv(eval::results_dir() + "/fig6d_out_of_core.csv");
    std::cout << "peak RSS across the runs: "
              << format_fixed(peak_rss / (1024.0 * 1024.0), 1) << " MiB ("
              << format_fixed(dataset_bytes > 0 ? 100.0 * peak_rss / dataset_bytes : 0.0, 1)
              << "% of the dataset"
              << (rss_reset ? "" : "; process-lifetime high-water mark, reset unsupported")
              << "), " << std::thread::hardware_concurrency() << " hardware threads\n";
    std::cout << "(shapes to check: phase-1 time falls as threads rise — up to the\n"
                 "hardware thread count — and peak RSS stays well under the dataset\n"
                 "bytes because batches release their pages after the scan passes)\n";
    json.add_row(str_cat("OOC", ooc_paper_objects),
                 {{"generate_s", generate_s},
                  {"points", static_cast<double>(gen.points)},
                  {"dataset_bytes", dataset_bytes},
                  {"peak_rss_bytes", peak_rss},
                  {"rss_over_dataset_pct",
                   dataset_bytes > 0 ? 100.0 * peak_rss / dataset_bytes : 0.0}});
    std::remove(col_path.c_str());
  }

  // One extra repeat of the largest dataset under the sampling profiler —
  // not timed (the profiled run is excluded from every *_s median above),
  // just attributed: the top sampled symbols land in the trajectory JSON so
  // hot-spot drift across commits is as visible as timing drift.
  {
    obs::prof::ProfilerOptions popts;
    popts.sample_hz = 997;  // smoke-scale runs are short; sample densely
    const obs::prof::Profile profile = obs::prof::profile_call(
        [&] {
          // Re-run until ~a quarter second of work has accumulated so the
          // attribution is statistically meaningful even at smoke scale.
          const Stopwatch sw;
          do {
            static_cast<void>(clusterer.run(big));
          } while (sw.elapsed_seconds() < 0.25);
        },
        popts);
    json.add_profile_row(str_cat("MIA", largest, "_profile"),
                         profile.hot_symbols(10));
    std::cout << "\nprofiled repeat (MIA" << largest << "): " << profile.samples
              << " samples, top symbols in BENCH_fig6.json\n";
  }

  const std::string json_path = eval::results_dir() + "/BENCH_fig6.json";
  json.write(json_path);
  std::cout << "\nbench trajectory written to " << json_path
            << " (diff against a baseline with tools/bench_diff.py)\n";
  return 0;
}
