// Machine-readable bench trajectory output.
//
// Each paper-figure bench binary, besides its human tables and CSVs, writes
// one BENCH_<name>.json under bench_results/ so CI can chart a performance
// trajectory across commits and fail on regressions (tools/bench_diff.py
// compares two such files). The payload pins the provenance a later diff
// needs: git sha, UTC timestamp, repeat count, and the NEAT_BENCH_* scales:
//
//   {"bench":"fig6","git_sha":"abc...","timestamp":"2026-08-05T12:00:00Z",
//    "repeats":3,"object_scale":0.1,"network_scale":1.0,
//    "rows":[{"name":"MIA500","metrics":{"opt_s":0.123,...}},...]}
//
// Rows named *_profile carry no timing metrics but a "hot_symbols" array —
// the top CPU symbols of one extra profiled repeat (src/obs/prof/), each
// with its inclusive sample percentage. bench_diff.py ignores them (it
// gates only *_s metrics), so hot-spot drift is visible in the trajectory
// without ever failing a gate.
//
// Repeats: NEAT_BENCH_REPEATS (default 1) is how many times each measured
// run executes; every metric value reported is the median over those runs,
// so one background-noise spike cannot fail a CI gate.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/string_util.h"
#include "obs/prof/profiler.h"  // HotSymbol
#include "obs/trace.h"          // json_escape

#ifndef NEAT_GIT_SHA
#define NEAT_GIT_SHA "unknown"
#endif

namespace neat::bench {

/// Measured runs per data point (NEAT_BENCH_REPEATS, default 1, min 1).
inline int repeats() {
  const char* env = std::getenv("NEAT_BENCH_REPEATS");
  if (env == nullptr) return 1;
  const int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

/// Median of `values` (averages the middle pair on even sizes; 0 on empty).
inline double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return (values[mid - 1] + values[mid]) / 2.0;
}

/// Collects named rows of median metrics and writes one BENCH_*.json.
class BenchJson {
 public:
  /// `name` is the figure tag ("fig6"); scales echo print_scale_banner.
  BenchJson(std::string name, double object_scale, double network_scale)
      : name_(std::move(name)),
        object_scale_(object_scale),
        network_scale_(network_scale) {}

  /// Appends one row; `metrics` values should already be medians.
  void add_row(const std::string& row_name,
               std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back({row_name, std::move(metrics), {}});
  }

  /// Appends a hot-spot attribution row from one profiled repeat: the
  /// top sampled symbols with their inclusive sample percentage. Serialized
  /// as "hot_symbols":[{"symbol":...,"inclusive_pct":...},...] next to an
  /// empty metrics object, so bench_diff (which gates only *_s metrics)
  /// never fails on a profile row.
  void add_profile_row(const std::string& row_name,
                       const std::vector<obs::prof::HotSymbol>& symbols) {
    rows_.push_back({row_name, {}, symbols});
  }

  /// Writes the payload to `path`; throws neat::Error when unwritable.
  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
    out << "{\"bench\":\"" << obs::json_escape(name_) << "\",\"git_sha\":\""
        << obs::json_escape(NEAT_GIT_SHA) << "\",\"timestamp\":\"" << utc_timestamp()
        << "\",\"repeats\":" << repeats() << ",\"object_scale\":" << object_scale_
        << ",\"network_scale\":" << network_scale_ << ",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r > 0) out << ',';
      out << "{\"name\":\"" << obs::json_escape(rows_[r].name) << "\",\"metrics\":{";
      for (std::size_t m = 0; m < rows_[r].metrics.size(); ++m) {
        if (m > 0) out << ',';
        out << '"' << obs::json_escape(rows_[r].metrics[m].first)
            << "\":" << format_metric(rows_[r].metrics[m].second);
      }
      out << '}';
      if (!rows_[r].hot_symbols.empty()) {
        out << ",\"hot_symbols\":[";
        for (std::size_t s = 0; s < rows_[r].hot_symbols.size(); ++s) {
          if (s > 0) out << ',';
          out << "{\"symbol\":\"" << obs::json_escape(rows_[r].hot_symbols[s].symbol)
              << "\",\"inclusive_pct\":"
              << format_fixed(rows_[r].hot_symbols[s].inclusive_pct, 2) << '}';
        }
        out << ']';
      }
      out << '}';
    }
    out << "]}\n";
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<obs::prof::HotSymbol> hot_symbols;
  };

  static std::string utc_timestamp() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
  }

  /// Counters print as integers, durations with µs resolution.
  static std::string format_metric(double v) {
    if (v == static_cast<double>(static_cast<long long>(v))) {
      return std::to_string(static_cast<long long>(v));
    }
    return format_fixed(v, 6);
  }

  std::string name_;
  double object_scale_;
  double network_scale_;
  std::vector<Row> rows_;
};

}  // namespace neat::bench
