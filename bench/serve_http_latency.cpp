// End-to-end HTTP latency of the public query plane (src/net/).
//
// Stands up the full serving stack in-process — clustered city snapshot,
// serve::QueryEngine, sim::TripPlanner, net::QueryService on a
// net::HttpServer — and drives it over loopback with connect-per-request
// clients, exactly the path external traffic takes (socket, parse, validate,
// query, serialize). Reports client-observed per-endpoint p50/p99 and
// throughput, and writes BENCH_serve.json for the CI performance-trajectory
// gate (tools/bench_diff.py).
//
// SLO check (exit 1 on miss): /v1/nearest p99 < 5 ms while the mixed
// workload sustains >= 1000 req/s in total. Latencies come from log2-bucket
// histograms, so the percentiles are conservative bucket upper edges.
//
// Honors NEAT_BENCH_REPEATS: each condition runs that many times and every
// reported metric is the median, so one noise spike cannot fail CI.
//
//   $ ./serve_http_latency [client_threads] [seconds_per_run]
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/query_service.h"
#include "obs/registry.h"
#include "roadnet/generators.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"
#include "sim/trip_planner.h"

using namespace neat;

namespace {

constexpr const char* kEndpoints[4] = {"nearest", "segment", "topk", "route"};

/// Client-observed numbers of one endpoint over one measured run.
struct EndpointRun {
  double p50_s{0.0};
  double p99_s{0.0};
  double rps{0.0};
  std::uint64_t requests{0};
  std::uint64_t failures{0};  ///< Answers other than 200/404.
};

struct Run {
  EndpointRun endpoint[4];
  double total_rps{0.0};
  std::uint64_t total_requests{0};
};

/// One measured run: `threads` clients hammer the mixed workload for
/// `seconds`, one TCP connection per request, latencies timed around the
/// whole exchange (connect + request + response).
Run run_load(const roadnet::RoadNetwork& net, const serve::QueryEngine& engine,
             unsigned threads, double seconds) {
  obs::Registry registry;
  sim::TripPlanner planner(net, roadnet::Metric::kDistance);
  net::QueryService service(net, engine, &planner, registry);
  net::HttpServerOptions sopts;
  sopts.worker_threads = std::max(2u, threads);
  sopts.max_pending_connections = 4 * std::max(1u, threads);
  sopts.registry = &registry;
  net::HttpServer server(sopts);
  service.register_routes(server);
  server.start();

  const roadnet::Bounds bb = net.bounding_box();
  serve::LatencyHistogram latency[4];
  std::atomic<std::uint64_t> requests[4] = {};
  std::atomic<std::uint64_t> failures[4] = {};
  std::mutex latency_mu[4];

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(42 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Point p{rng.uniform(bb.min.x, bb.max.x),
                      rng.uniform(bb.min.y, bb.max.y)};
        const std::string targets[4] = {
            str_cat("/v1/nearest?x=", format_fixed(p.x, 1), "&y=",
                    format_fixed(p.y, 1), "&radius=500"),
            str_cat("/v1/segment?sid=",
                    rng.uniform_int(0, static_cast<int>(net.segment_count()) - 1)),
            "/v1/topk?k=5",
            str_cat("/v1/route?from=",
                    rng.uniform_int(0, static_cast<int>(net.node_count()) - 1),
                    "&to=",
                    rng.uniform_int(0, static_cast<int>(net.node_count()) - 1)),
        };
        for (int e = 0; e < 4; ++e) {
          const Stopwatch req;
          const net::HttpResult r = net::http_get(server.port(), targets[e]);
          const double s = req.elapsed_seconds();
          requests[e].fetch_add(1, std::memory_order_relaxed);
          // 404 is a correct answer under a random workload (no flow in the
          // radius, one-way dead end); anything else non-200 is a failure.
          if (r.code != 200 && r.code != 404) {
            failures[e].fetch_add(1, std::memory_order_relaxed);
          }
          const std::lock_guard<std::mutex> lock(latency_mu[e]);
          latency[e].record(s);
        }
      }
    });
  }

  const Stopwatch wall;
  while (wall.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  const double elapsed = wall.elapsed_seconds();

  Run out;
  for (int e = 0; e < 4; ++e) {
    out.endpoint[e].p50_s = latency[e].quantile_seconds(0.5);
    out.endpoint[e].p99_s = latency[e].quantile_seconds(0.99);
    out.endpoint[e].requests = requests[e].load();
    out.endpoint[e].failures = failures[e].load();
    out.endpoint[e].rps = static_cast<double>(requests[e].load()) / elapsed;
    out.total_requests += requests[e].load();
  }
  out.total_rps = static_cast<double>(out.total_requests) / elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.5;

  // One servable clustering result behind the HTTP edge.
  roadnet::CityParams params;
  params.rows = 22;
  params.cols = 22;
  params.seed = 7;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(net, sim_cfg).generate(400, 31);
  Config cfg;
  cfg.refine.epsilon = 2000.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  serve::SnapshotStore store;
  store.publish(
      serve::ClusterSnapshot::build(net, res.flow_clusters, res.final_clusters, 1));
  const serve::QueryEngine engine(net, store);
  std::cout << "workload: " << net.segment_count() << " segments, "
            << res.flow_clusters.size() << " flows, " << threads
            << " client threads, " << seconds << " s per run, "
            << bench::repeats() << " repeat(s)\n\n";

  // NEAT_BENCH_REPEATS measured runs; every reported number is the median.
  std::vector<Run> runs;
  for (int r = 0; r < bench::repeats(); ++r) {
    runs.push_back(run_load(net, engine, threads, seconds));
  }
  const auto med = [&runs](auto&& pick) {
    std::vector<double> values;
    values.reserve(runs.size());
    for (const Run& r : runs) values.push_back(pick(r));
    return bench::median(values);
  };

  eval::TextTable table({"endpoint", "requests", "req/s", "p50 us", "p99 us",
                         "failures"});
  bench::BenchJson json("serve", 1.0, 1.0);
  const auto us = [](double s) { return format_fixed(s * 1e6, 1); };
  double nearest_p99 = 0.0;
  std::uint64_t total_failures = 0;
  for (int e = 0; e < 4; ++e) {
    const double p50 = med([e](const Run& r) { return r.endpoint[e].p50_s; });
    const double p99 = med([e](const Run& r) { return r.endpoint[e].p99_s; });
    const double rps = med([e](const Run& r) { return r.endpoint[e].rps; });
    const double requests = med([e](const Run& r) {
      return static_cast<double>(r.endpoint[e].requests);
    });
    const double failures = med([e](const Run& r) {
      return static_cast<double>(r.endpoint[e].failures);
    });
    if (e == 0) nearest_p99 = p99;
    total_failures += static_cast<std::uint64_t>(failures);
    table.add_row({kEndpoints[e], format_fixed(requests, 0), format_fixed(rps, 0),
                   us(p50), us(p99), format_fixed(failures, 0)});
    json.add_row(kEndpoints[e], {{"p50_s", p50},
                                 {"p99_s", p99},
                                 {"rps", rps},
                                 {"requests", requests}});
  }
  const double total_rps = med([](const Run& r) { return r.total_rps; });
  const double total_requests =
      med([](const Run& r) { return static_cast<double>(r.total_requests); });
  table.add_row({"total", format_fixed(total_requests, 0), format_fixed(total_rps, 0),
                 "-", "-", "-"});
  json.add_row("total", {{"rps", total_rps}, {"requests", total_requests}});
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/serve_http_latency.csv");
  const std::string json_path = eval::results_dir() + "/BENCH_serve.json";
  json.write(json_path);
  std::cout << "\nwrote " << json_path << '\n';

  // The SLO the query plane ships under. Percentiles are log2-bucket upper
  // edges, so this is a conservative check.
  const bool p99_ok = nearest_p99 < 0.005;
  const bool rps_ok = total_rps >= 1000.0;
  const bool clean = total_failures == 0;
  std::cout << "SLO: /v1/nearest p99 " << us(nearest_p99) << " us (limit 5000 us) — "
            << (p99_ok ? "OK" : "EXCEEDED") << "; total " << format_fixed(total_rps, 0)
            << " req/s (floor 1000) — " << (rps_ok ? "OK" : "MISSED")
            << "; unexpected failures " << total_failures << " — "
            << (clean ? "OK" : "FAILED") << '\n';
  return p99_ok && rps_ok && clean ? 0 : 1;
}
