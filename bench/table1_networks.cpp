// Table I — road networks used in the experiments.
//
// The paper reports, for North West Atlanta / West San Jose / Miami-Dade:
// total length, segment count, junction count, average segment length, and
// average/maximum junction degree. This binary generates the three synthetic
// stand-in networks and prints their measured statistics next to the paper's
// values, so the fidelity of the Table I substitution is auditable. The two
// extra columns characterise the contraction-hierarchy preprocessing on each
// generated network (build seconds and inserted shortcuts) — the one-time
// cost the distance-ladder benchmarks amortise.
#include <iostream>

#include "common/string_util.h"
#include "eval/experiments.h"
#include "eval/table.h"
#include "roadnet/ch_engine.h"

using namespace neat;

namespace {

struct PaperRow {
  const char* city;
  const char* region;
  double total_km;
  int segments;
  int junctions;
  double avg_len;
  double avg_deg;
  int max_deg;
};

constexpr PaperRow kPaper[] = {
    {"ATL", "North West Atlanta, GA", 1384.4, 9187, 6979, 150.7, 2.6, 6},
    {"SJ", "West San Jose, CA", 1821.2, 14600, 10929, 124.7, 2.7, 6},
    {"MIA", "Miami-Dade, FL", 26148.3, 154681, 103377, 169.0, 3.0, 9},
};

}  // namespace

int main() {
  eval::print_scale_banner(std::cout, "Table I: road networks");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();

  eval::TextTable table({"region", "source", "total km", "#segments", "#junctions",
                         "avg seg m", "avg deg", "max deg", "CH prep s", "#shortcuts"});
  for (const PaperRow& row : kPaper) {
    table.add_row({row.region, "paper", format_fixed(row.total_km, 1),
                   std::to_string(row.segments), std::to_string(row.junctions),
                   format_fixed(row.avg_len, 1), format_fixed(row.avg_deg, 1),
                   std::to_string(row.max_deg), "-", "-"});
    const roadnet::RoadNetwork& net = env.network(row.city);
    const roadnet::NetworkStats st = net.stats();
    const roadnet::ChEngine ch(net);
    table.add_row({"", "generated", format_fixed(st.total_length_km, 1),
                   std::to_string(st.num_segments), std::to_string(st.num_junctions),
                   format_fixed(st.avg_segment_length_m, 1),
                   format_fixed(st.avg_junction_degree, 1),
                   std::to_string(st.max_junction_degree),
                   format_fixed(ch.preprocessing_seconds(), 3),
                   std::to_string(ch.shortcut_count())});
  }
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/table1_networks.csv");
  std::cout << "\n(note: generated counts scale with NEAT_BENCH_NET_SCALE; ratios — avg\n"
               "segment length, junction degree — are scale invariant)\n";
  return 0;
}
