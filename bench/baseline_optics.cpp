// Extension bench (not a paper figure): three-way comparison of NEAT
// against both baseline families on ATL1000 — TraClus (partial,
// Euclidean-density) and Trajectory-OPTICS (whole-trajectory). Quantifies
// the related-work positioning of §V: whole-trajectory clustering cannot
// expose shared sub-routes, and both baselines are distance-computation
// bound.
#include <iostream>

#include "baselines/trajectory_optics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "traclus/traclus.h"

using namespace neat;

int main() {
  eval::print_scale_banner(std::cout, "Baselines: NEAT vs TraClus vs Trajectory-OPTICS");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("ATL");
  const traj::TrajectoryDataset& data = env.dataset("ATL", 1000);

  eval::TextTable table({"method", "clusters", "unit", "distance computations", "seconds"});

  {
    Stopwatch watch;
    Config cfg;
    cfg.refine.epsilon = 3000.0;
    const Result res = NeatClusterer(net, cfg).run(data);
    table.add_row({"opt-NEAT",
                   str_cat(res.flow_clusters.size(), " flows + ", res.final_clusters.size(),
                           " final"),
                   "t-fragments / base clusters", std::to_string(res.sp_computations),
                   format_fixed(watch.elapsed_seconds(), 3)});
  }
  {
    Stopwatch watch;
    traclus::Config cfg;
    cfg.epsilon = 10.0;
    cfg.min_lns = std::max<int>(2, static_cast<int>(data.size() * 30 / 500));
    const traclus::Result res = traclus::run(data, cfg);
    table.add_row({"TraClus", std::to_string(res.clusters.size()), "line segments",
                   std::to_string(res.distance_computations),
                   format_fixed(watch.elapsed_seconds(), 3)});
  }
  {
    Stopwatch watch;
    baselines::OpticsConfig cfg;
    cfg.eps = 800.0;
    cfg.min_pts = 4;
    const baselines::OpticsResult res = baselines::run_trajectory_optics(data, cfg);
    std::size_t noise = 0;
    for (const int label : res.labels) {
      if (label < 0) ++noise;
    }
    table.add_row({"Trajectory-OPTICS",
                   str_cat(res.num_clusters, " (+", noise, " noise)"),
                   "whole trajectories", std::to_string(res.distance_computations),
                   format_fixed(watch.elapsed_seconds(), 3)});
  }
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/baseline_optics.csv");
  std::cout << "\n(whole-trajectory clusters group by origin/destination pair and say\n"
               "nothing about shared corridors; NEAT's flows are route-structured)\n";
  return 0;
}
