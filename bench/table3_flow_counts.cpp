// Table III — number of flow clusters produced by opt-NEAT on the SJ
// datasets (paper: 73 / 156 / 55 / 52 / 180 for SJ500..SJ5000).
//
// The paper uses this table to explain the Figure 7(b) anomaly: Phase 3's
// cost depends on the number of flows, not the dataset size. We print the
// measured flow counts plus the Phase 3 work that goes with them.
#include <iostream>

#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"

using namespace neat;

int main() {
  eval::print_scale_banner(std::cout, "Table III: flow clusters produced by opt-NEAT (SJ)");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();

  constexpr int kPaperFlows[] = {73, 156, 55, 52, 180};

  Config cfg;
  cfg.refine.epsilon = 3000.0;
  const NeatClusterer clusterer(env.network("SJ"), cfg);

  eval::TextTable table({"dataset", "#flows (paper)", "#flows (sim)", "#final clusters",
                         "phase3 pairs", "phase3 sp-calls", "phase3 ms"});
  for (std::size_t i = 0; i < eval::kPaperObjectCounts.size(); ++i) {
    const std::size_t objects = eval::kPaperObjectCounts[i];
    const Result res = clusterer.run(env.dataset("SJ", objects));
    table.add_row({str_cat("SJ", objects), std::to_string(kPaperFlows[i]),
                   std::to_string(res.flow_clusters.size()),
                   std::to_string(res.final_clusters.size()),
                   std::to_string(res.pairs_evaluated),
                   std::to_string(res.sp_computations),
                   format_fixed(res.timing.phase3_s * 1000.0, 2)});
  }
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/table3_flow_counts.csv");
  std::cout << "\n(the paper's point: flow counts do not grow monotonically with dataset\n"
               "size, and Phase 3 cost tracks the flow count — compare the last columns)\n";
  return 0;
}
