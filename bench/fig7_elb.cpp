// Figure 7 — effectiveness of the Euclidean lower bound (ELB).
//
// Compares opt-NEAT-ELB against opt-NEAT-Dijkstra (Phase 3 without the
// Euclidean prefilter, computing all four shortest paths per flow pair) on
// the ATL (a) and SJ (b) datasets. The paper's observations to reproduce:
// the Dijkstra variant's cost tracks the *number of flows* (Table III), not
// the dataset size — visible in the SJ series — and ELB removes most of the
// shortest-path work.
#include <iostream>

#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"

using namespace neat;

namespace {

void run_city(const char* city, eval::ExperimentEnv& env) {
  const roadnet::RoadNetwork& net = env.network(city);

  Config elb_cfg;
  elb_cfg.refine.epsilon = 3000.0;
  elb_cfg.refine.use_elb = true;
  Config dij_cfg = elb_cfg;
  dij_cfg.refine.use_elb = false;
  // The paper's opt-NEAT-Dijkstra computes full shortest paths.
  dij_cfg.refine.bound_searches_at_epsilon = false;
  const NeatClusterer with_elb(net, elb_cfg);
  const NeatClusterer with_dijkstra(net, dij_cfg);

  eval::TextTable table({"dataset", "#flows", "opt-NEAT-ELB s", "opt-NEAT-Dijkstra s",
                         "phase3 ELB s", "phase3 Dij s", "sp-calls ELB", "sp-calls Dij",
                         "pruned pairs"});
  for (const std::size_t objects : eval::kPaperObjectCounts) {
    const traj::TrajectoryDataset& data = env.dataset(city, objects);
    const Result a = with_elb.run(data);
    const Result b = with_dijkstra.run(data);
    table.add_row({str_cat(city, objects), std::to_string(a.flow_clusters.size()),
                   format_fixed(a.timing.total_s(), 3), format_fixed(b.timing.total_s(), 3),
                   format_fixed(a.timing.phase3_s, 3), format_fixed(b.timing.phase3_s, 3),
                   std::to_string(a.sp_computations), std::to_string(b.sp_computations),
                   std::to_string(a.elb_pruned_pairs)});
  }
  std::cout << "(" << (city[0] == 'A' ? "a" : "b") << ") " << city << " datasets:\n";
  table.print(std::cout);
  table.write_csv(str_cat(eval::results_dir(), "/fig7_", city, "_elb.csv"));
  std::cout << '\n';
}

}  // namespace

int main() {
  eval::print_scale_banner(std::cout, "Figure 7: ELB vs plain Dijkstra in Phase 3");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  run_city("ATL", env);
  run_city("SJ", env);
  std::cout << "(shapes to check: Dijkstra phase-3 time tracks #flows, not points —\n"
               "the paper's SJ1000 spike, cf. Table III — and ELB collapses both the\n"
               "sp-call count and the phase-3 time)\n";
  return 0;
}
