// Figure 7 — effectiveness of the Phase 3 pruning ladder.
//
// Compares five opt-NEAT variants on the ATL (a) and SJ (b) datasets:
//   none         — opt-NEAT-Dijkstra: no prefilter, full shortest paths;
//   ELB          — the paper's Euclidean lower bound (§III-C.3);
//   ELB+landmark — ELB, then the ALT triangle-inequality bound, with the
//                  landmark tables also steering surviving searches as A*
//                  potentials;
//   ELB+CH       — ELB, with surviving pairs answered by the contraction
//                  hierarchy's memoized upward labels (exact, same
//                  clusters, a fraction of the settled nodes);
//   ELB+CHtable  — like ELB+CH, but each worker chunk's surviving pairs are
//                  batched into one bucket-based many-to-many table fill
//                  (roadnet::CHTableEngine) instead of per-pair label
//                  merges. Same clusters, bit-identical pruning counters.
// The paper's observations to reproduce: the Dijkstra variant's cost tracks
// the *number of flows* (Table III), not the dataset size — visible in the
// SJ series — and ELB removes most of the shortest-path work. The landmark
// row must show strictly fewer Dijkstra runs than ELB alone on these
// grid-like networks, where straight-line bounds are loose. The settled
// column is the ladder's work proxy: ELB+CH must settle >= 5x fewer nodes
// than ELB+landmark.
#include <iostream>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"
#include "obs/prof/profiler.h"
#include "obs/registry.h"

using namespace neat;

namespace {

struct Variant {
  const char* name;
  Config config;
};

/// Pruning counters read back from the metric registry. The table reports
/// before/after deltas of the live counters rather than the Result's copies,
/// so the bench CSV and a scraper's view cannot drift apart.
struct PruneSample {
  std::uint64_t sp_calls{};
  std::uint64_t elb_pruned{};
  std::uint64_t lm_pruned{};
  std::uint64_t settled{};

  static PruneSample take() {
    const obs::Registry& reg = obs::Registry::global();
    return {reg.counter_value("neat_core_sp_computations_total"),
            reg.counter_value("neat_core_elb_pruned_pairs_total"),
            reg.counter_value("neat_core_lm_pruned_pairs_total"),
            reg.counter_value("neat_core_sp_settled_nodes_total")};
  }

  PruneSample operator-(const PruneSample& rhs) const {
    return {sp_calls - rhs.sp_calls, elb_pruned - rhs.elb_pruned,
            lm_pruned - rhs.lm_pruned, settled - rhs.settled};
  }
};

std::vector<Variant> variants() {
  Config none;
  none.refine.epsilon = 3000.0;
  none.refine.use_elb = false;
  // The paper's opt-NEAT-Dijkstra computes full shortest paths.
  none.refine.bound_searches_at_epsilon = false;
  Config elb;
  elb.refine.epsilon = 3000.0;
  elb.refine.use_elb = true;
  Config elb_lm = elb;
  elb_lm.refine.use_landmarks = true;
  // The CH rung keeps the full admissible prefilter stack (ELB + landmark
  // bounds) and swaps the engine answering the surviving queries, so its
  // settled column isolates the per-query win of the hierarchy.
  Config elb_ch = elb_lm;
  elb_ch.refine.distance_engine = DistanceEngine::kCh;
  // The table rung batches each chunk's surviving endpoint pairs into one
  // bucket fill; its sp-calls column counts table() fills, not searches.
  Config elb_table = elb_lm;
  elb_table.refine.distance_engine = DistanceEngine::kChTable;
  return {{"none", none},
          {"ELB", elb},
          {"ELB+landmark", elb_lm},
          {"ELB+CH", elb_ch},
          {"ELB+CHtable", elb_table}};
}

/// Settled-node totals of the two accelerated rungs, accumulated across all
/// datasets — the acceptance evidence that CH answers the surviving queries
/// with >= 5x fewer settled nodes than the landmark-steered A* rung.
struct SettledTotals {
  std::uint64_t elb_lm{0};
  std::uint64_t elb_ch{0};
};

void run_city(const char* city, eval::ExperimentEnv& env, bench::BenchJson& json,
              SettledTotals& totals) {
  const roadnet::RoadNetwork& net = env.network(city);

  eval::TextTable table({"dataset", "#flows", "pruning", "total s", "phase3 s",
                         "sp-calls", "ELB-pruned", "lm-pruned", "settled"});
  for (const std::size_t objects : eval::kPaperObjectCounts) {
    const traj::TrajectoryDataset& data = env.dataset(city, objects);
    for (const Variant& v : variants()) {
      // Medians over NEAT_BENCH_REPEATS runs; the pruning counters are
      // deterministic, only the wall times vary.
      std::vector<double> totals_s, p3s;
      PruneSample d;
      std::size_t flows = 0;
      for (int rep = 0; rep < bench::repeats(); ++rep) {
        const PruneSample before = PruneSample::take();
        const Result r = NeatClusterer(net, v.config).run(data);
        d = PruneSample::take() - before;
        totals_s.push_back(r.timing.total_s());
        p3s.push_back(r.timing.phase3_s);
        flows = r.flow_clusters.size();
      }
      const double total_s = bench::median(totals_s);
      const double phase3_s = bench::median(p3s);
      if (std::string_view(v.name) == "ELB+landmark") totals.elb_lm += d.settled;
      if (std::string_view(v.name) == "ELB+CH") totals.elb_ch += d.settled;
      table.add_row({str_cat(city, objects), std::to_string(flows),
                     v.name, format_fixed(total_s, 3),
                     format_fixed(phase3_s, 3),
                     std::to_string(d.sp_calls),
                     std::to_string(d.elb_pruned),
                     std::to_string(d.lm_pruned),
                     std::to_string(d.settled)});
      json.add_row(str_cat(city, objects, "_", v.name),
                   {{"total_s", total_s},
                    {"phase3_s", phase3_s},
                    {"sp_calls", static_cast<double>(d.sp_calls)},
                    {"elb_pruned", static_cast<double>(d.elb_pruned)},
                    {"lm_pruned", static_cast<double>(d.lm_pruned)},
                    {"settled", static_cast<double>(d.settled)},
                    {"flows", static_cast<double>(flows)}});
    }
  }
  std::cout << "(" << (city[0] == 'A' ? "a" : "b") << ") " << city << " datasets:\n";
  table.print(std::cout);
  table.write_csv(str_cat(eval::results_dir(), "/fig7_", city, "_elb.csv"));
  std::cout << '\n';
}

}  // namespace

int main() {
  eval::print_scale_banner(
      std::cout,
      "Figure 7: pruning ladder (none / ELB / ELB+landmark / ELB+CH / ELB+CHtable) in Phase 3");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  bench::BenchJson json("fig7", env.object_scale(), env.network_scale());
  SettledTotals totals;
  run_city("ATL", env, json, totals);
  run_city("SJ", env, json, totals);
  std::cout << "(shapes to check: Dijkstra phase-3 time tracks #flows, not points —\n"
               "the paper's SJ1000 spike, cf. Table III — ELB collapses both the\n"
               "sp-call count and the phase-3 time, and ELB+landmark strictly\n"
               "undercuts ELB's sp-calls on these grid-like networks)\n";
  const double ratio =
      totals.elb_ch > 0 ? static_cast<double>(totals.elb_lm) / static_cast<double>(totals.elb_ch)
                        : 0.0;
  std::cout << "\nladder settled totals: ELB+landmark " << totals.elb_lm << ", ELB+CH "
            << totals.elb_ch << " (" << format_fixed(ratio, 2)
            << "x fewer nodes settled by the hierarchy)\n";
  json.add_row("ladder_settled",
               {{"elb_landmark", static_cast<double>(totals.elb_lm)},
                {"elb_ch", static_cast<double>(totals.elb_ch)},
                {"lm_over_ch_ratio", ratio}});

  // Hot-spot attribution: one extra (untimed) ELB repeat of the largest ATL
  // dataset under the sampling profiler; the top symbols ride in the
  // trajectory JSON next to the timings they explain.
  {
    const roadnet::RoadNetwork& net = env.network("ATL");
    const std::size_t largest = eval::kPaperObjectCounts.back();
    const traj::TrajectoryDataset& data = env.dataset("ATL", largest);
    Config elb;
    elb.refine.epsilon = 3000.0;
    elb.refine.use_elb = true;
    obs::prof::ProfilerOptions popts;
    popts.sample_hz = 997;  // smoke-scale runs are short; sample densely
    const NeatClusterer profiled(net, elb);
    const obs::prof::Profile profile = obs::prof::profile_call(
        [&] {
          // Re-run until ~a quarter second of work has accumulated so the
          // attribution is statistically meaningful even at smoke scale.
          const Stopwatch sw;
          do {
            static_cast<void>(profiled.run(data));
          } while (sw.elapsed_seconds() < 0.25);
        },
        popts);
    json.add_profile_row(str_cat("ATL", largest, "_ELB_profile"),
                         profile.hot_symbols(10));
    std::cout << "\nprofiled repeat (ATL" << largest << ", ELB): " << profile.samples
              << " samples, top symbols in BENCH_fig7.json\n";
  }

  const std::string json_path = eval::results_dir() + "/BENCH_fig7.json";
  json.write(json_path);
  std::cout << "\nbench trajectory written to " << json_path
            << " (diff against a baseline with tools/bench_diff.py)\n";
  return 0;
}
