// Figure 5 — flow-NEAT vs TraClus on the ATL datasets:
//   (a) average representative route length,
//   (b) maximum representative route length,
//   (c) number of resulting clusters,
//   (d) running time (the paper's semi-log plot; NEAT is orders of
//       magnitude faster).
// Plus the §IV-C TraClus network variant (base clusters + modified
// Hausdorff distance) on one dataset, mirroring the SJ2000 comparison.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "traclus/network_variant.h"
#include "traclus/traclus.h"

using namespace neat;

int main() {
  eval::print_scale_banner(std::cout, "Figure 5: flow-NEAT vs TraClus (ATL datasets)");
  eval::ExperimentEnv& env = eval::ExperimentEnv::instance();
  const roadnet::RoadNetwork& net = env.network("ATL");

  Config neat_cfg;
  neat_cfg.refine.epsilon = 3000.0;
  const NeatClusterer clusterer(net, neat_cfg);

  eval::TextTable table({"dataset", "points", "avg route m (NEAT)", "avg rep m (TraClus)",
                         "max route m (NEAT)", "max rep m (TraClus)", "#clusters (NEAT)",
                         "#clusters (TraClus)", "NEAT s", "TraClus s", "speedup"});

  for (const std::size_t objects : eval::kPaperObjectCounts) {
    const traj::TrajectoryDataset& data = env.dataset("ATL", objects);

    Stopwatch watch;
    const Result neat_res = clusterer.run(data);
    const double neat_s = watch.elapsed_seconds();
    const eval::RouteLengthStats neat_stats = eval::flow_route_stats(neat_res.flow_clusters);

    traclus::Config tcfg;
    tcfg.epsilon = 10.0;
    tcfg.min_lns = std::max(2, static_cast<int>(std::lround(
                                   30.0 * static_cast<double>(data.size()) / 500.0)));
    watch.restart();
    const traclus::Result traclus_res = traclus::run(data, tcfg);
    const double traclus_s = watch.elapsed_seconds();
    const eval::RouteLengthStats tr_stats = eval::traclus_route_stats(traclus_res.clusters);

    table.add_row({str_cat("ATL", objects), std::to_string(data.total_points()),
                   format_fixed(neat_stats.avg_m, 0), format_fixed(tr_stats.avg_m, 0),
                   format_fixed(neat_stats.max_m, 0), format_fixed(tr_stats.max_m, 0),
                   std::to_string(neat_stats.count), std::to_string(tr_stats.count),
                   format_fixed(neat_s, 3), format_fixed(traclus_s, 3),
                   format_fixed(neat_s > 0 ? traclus_s / neat_s : 0.0, 1)});
  }
  table.print(std::cout);
  table.write_csv(eval::results_dir() + "/fig5_comparison.csv");
  std::cout << "\npaper reference points (full scale, Java): TraClus 2573.5 s on ATL500\n"
               "and 334735.1 s on ATL5000 vs opt-NEAT 1.29 s and 59.7 s — a >1000x gap.\n"
               "Shapes to check above: NEAT routes longer (a, b), NEAT clusters fewer\n"
               "(c), NEAT faster with a growing gap (d).\n";

  // §IV-C: the TraClus variant fed with NEAT base clusters + the modified
  // Hausdorff network distance (paper anchor: SJ2000 -> 6396.79 s / 117
  // clusters vs NEAT 11.68 s / 42 flows + 14 clusters).
  std::cout << "\nTraClus network variant (base clusters + network Hausdorff), ATL2000:\n";
  const traj::TrajectoryDataset& data2000 = env.dataset("ATL", 2000);
  Config flow_cfg;
  flow_cfg.mode = Mode::kBase;
  const Result base_only = NeatClusterer(net, flow_cfg).run(data2000);

  Stopwatch watch;
  traclus::NetworkVariantConfig vcfg;
  vcfg.epsilon = 300.0;
  vcfg.min_lns = 3;
  const traclus::NetworkVariantResult variant =
      traclus::run_network_variant(net, base_only.base_clusters, vcfg);
  const double variant_s = watch.elapsed_seconds();

  watch.restart();
  const Result neat_full = clusterer.run(data2000);
  const double neat_s = watch.elapsed_seconds();

  eval::TextTable vtable({"method", "input units", "clusters", "sp-calls", "seconds"});
  vtable.add_row({"TraClus variant", str_cat(base_only.base_clusters.size(), " base clusters"),
                  std::to_string(variant.clusters.size()),
                  std::to_string(variant.sp_computations), format_fixed(variant_s, 3)});
  vtable.add_row({"opt-NEAT",
                  str_cat(neat_full.num_fragments, " t-fragments"),
                  str_cat(neat_full.flow_clusters.size(), " flows + ",
                          neat_full.final_clusters.size(), " final"),
                  std::to_string(neat_full.sp_computations), format_fixed(neat_s, 3)});
  vtable.print(std::cout);
  vtable.write_csv(eval::results_dir() + "/fig5_network_variant.csv");
  return 0;
}
