// Serve-path micro-benchmark: query throughput and latency of the
// src/serve/ subsystem, and the cost (to readers) of snapshot publication.
//
// Two measured conditions, each reported from the built-in metrics
// histogram (log2 buckets, so percentiles are bucket upper edges):
//   idle     — query threads against one static snapshot, no publishes;
//   publish  — the same read workload while the writer republishes a fresh
//              snapshot version continuously (RCU churn).
// The serving design claims readers never block on a publish; the check row
// asserts the publish-condition p99 stays within 5x the idle p99.
//
//   $ ./serve_latency [query_threads] [seconds_per_condition]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/experiments.h"
#include "eval/table.h"
#include "roadnet/generators.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"

using namespace neat;

namespace {

struct ConditionStats {
  double qps{0.0};
  double p50_s{0.0};
  double p99_s{0.0};
  std::uint64_t queries{0};
  std::uint64_t publishes{0};
};

// Runs `query_threads` mixed-workload readers for `seconds`; when `publish`
// is set, the main thread concurrently republishes the snapshot (fresh
// version, same content) as fast as it can.
ConditionStats run_condition(const roadnet::RoadNetwork& net,
                             const std::vector<FlowCluster>& flows,
                             const std::vector<FinalCluster>& finals,
                             unsigned query_threads, double seconds, bool publish) {
  serve::SnapshotStore store;
  serve::Metrics metrics;
  std::uint64_t version = 1;
  store.publish(serve::ClusterSnapshot::build(net, flows, finals, version));
  const serve::QueryEngine engine(net, store, &metrics);
  const roadnet::Bounds bb = net.bounding_box();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < query_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(42 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Point p{rng.uniform(bb.min.x, bb.max.x), rng.uniform(bb.min.y, bb.max.y)};
        (void)engine.nearest_flow(p, 400.0);
        const auto sid = SegmentId(static_cast<std::int32_t>(
            rng.uniform_int(0, static_cast<int>(net.segment_count()) - 1)));
        (void)engine.flows_on_segment(sid);
        (void)engine.top_k_flows(5);
      }
    });
  }

  ConditionStats out;
  const Stopwatch wall;
  if (publish) {
    while (wall.elapsed_seconds() < seconds) {
      store.publish(serve::ClusterSnapshot::build(net, flows, finals, ++version));
      ++out.publishes;
    }
  } else {
    while (wall.elapsed_seconds() < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  const double elapsed = wall.elapsed_seconds();

  const serve::MetricsSnapshot m = metrics.snapshot();
  out.queries = m.queries_total;
  out.qps = static_cast<double>(m.queries_total) / elapsed;
  out.p50_s = m.query_p50_s;
  out.p99_s = m.query_p99_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned query_threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.5;

  // One servable clustering result to query.
  roadnet::CityParams params;
  params.rows = 22;
  params.cols = 22;
  params.seed = 7;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data =
      sim::MobilitySimulator(net, sim_cfg).generate(400, 31);
  Config cfg;
  cfg.refine.epsilon = 2000.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  std::cout << "workload: " << net.segment_count() << " segments, "
            << res.flow_clusters.size() << " flows, " << query_threads
            << " query threads, " << seconds << " s per condition\n\n";

  const ConditionStats idle = run_condition(net, res.flow_clusters, res.final_clusters,
                                            query_threads, seconds, false);
  const ConditionStats churn = run_condition(net, res.flow_clusters, res.final_clusters,
                                             query_threads, seconds, true);

  eval::TextTable table({"condition", "queries", "q/s", "p50 us", "p99 us", "publishes"});
  const auto us = [](double s) { return format_fixed(s * 1e6, 1); };
  table.add_row({"idle", std::to_string(idle.queries),
                 format_fixed(idle.qps, 0), us(idle.p50_s), us(idle.p99_s), "0"});
  table.add_row({"publish-churn", std::to_string(churn.queries),
                 format_fixed(churn.qps, 0), us(churn.p50_s), us(churn.p99_s),
                 std::to_string(churn.publishes)});
  table.print(std::cout);
  table.write_csv(str_cat(eval::results_dir(), "/serve_latency.csv"));

  const double limit = 5.0 * idle.p99_s;
  const bool ok = churn.p99_s <= limit;
  std::cout << "\npublish does not block readers: p99 under churn " << us(churn.p99_s)
            << " us vs limit " << us(limit) << " us (5x idle p99) — "
            << (ok ? "OK" : "EXCEEDED") << '\n';
  return ok ? 0 : 1;
}
