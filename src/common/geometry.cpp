#include "common/geometry.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"

namespace neat {

Projection project_onto_segment(Point p, Point a, Point b) {
  const Point ab = b - a;
  const double len_sq = norm_sq(ab);
  Projection out;
  if (len_sq == 0.0) {
    out.closest = a;
    out.t = 0.0;
  } else {
    out.t = std::clamp(dot(p - a, ab) / len_sq, 0.0, 1.0);
    out.closest = lerp(a, b, out.t);
  }
  out.dist = distance(p, out.closest);
  return out;
}

double point_segment_distance(Point p, Point a, Point b) {
  return project_onto_segment(p, a, b).dist;
}

double polyline_length(const std::vector<Point>& pts) {
  double total = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) total += distance(pts[i - 1], pts[i]);
  return total;
}

Point point_along_polyline(const std::vector<Point>& pts, double s) {
  NEAT_EXPECT(!pts.empty(), "polyline must have at least one point");
  if (s <= 0.0) return pts.front();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double leg = distance(pts[i - 1], pts[i]);
    if (s <= leg) {
      const double t = leg == 0.0 ? 0.0 : s / leg;
      return lerp(pts[i - 1], pts[i], t);
    }
    s -= leg;
  }
  return pts.back();
}

double heading(Point a, Point b) { return std::atan2(b.y - a.y, b.x - a.x); }

double angle_difference(double a, double b) {
  double d = std::fabs(a - b);
  while (d > 2 * M_PI) d -= 2 * M_PI;
  return std::min(d, 2 * M_PI - d);
}

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace neat
