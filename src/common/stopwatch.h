// Wall-clock timing used by the per-phase instrumentation and the bench
// harness.
#pragma once

#include <chrono>

namespace neat {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch from zero.
  void restart();

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const;

  /// Milliseconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_ms() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace neat
