// Strongly typed identifiers used across the NEAT libraries.
//
// Every entity in the system (junction node, directed edge, road segment,
// trajectory) is referenced by a dense integer id. Mixing them up is a silent
// and catastrophic bug class, so each gets its own distinct type: an `Id<Tag>`
// is convertible from/to its underlying integer only explicitly.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace neat {

/// A strongly typed integer id. `Tag` distinguishes id spaces; `Rep` is the
/// underlying representation. Value -1 is reserved as "invalid".
template <class Tag, class Rep = std::int32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  /// Underlying integer value; also usable as a dense array index.
  [[nodiscard]] constexpr Rep value() const { return value_; }

  /// True when this id refers to an actual entity.
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  constexpr auto operator<=>(const Id&) const = default;

  /// Sentinel id that refers to no entity.
  [[nodiscard]] static constexpr Id invalid() { return Id(Rep{-1}); }

 private:
  Rep value_{-1};
};

struct NodeTag {};
struct EdgeTag {};
struct SegmentTag {};
struct TrajectoryTag {};

/// Identifier of a road junction (graph node).
using NodeId = Id<NodeTag>;
/// Identifier of a directed edge (one travel direction of a road segment).
using EdgeId = Id<EdgeTag>;
/// Identifier of a road segment (shared by both directions when bidirectional).
using SegmentId = Id<SegmentTag>;
/// Identifier of a mobile-object trajectory.
using TrajectoryId = Id<TrajectoryTag, std::int64_t>;

template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& os, Id<Tag, Rep> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

}  // namespace neat

template <class Tag, class Rep>
struct std::hash<neat::Id<Tag, Rep>> {
  std::size_t operator()(neat::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
