// Planar geometry primitives.
//
// All road-network geometry lives in a local planar (x, y) coordinate frame
// measured in metres, so Euclidean distance is the physical straight-line
// distance — this is what makes the Euclidean-lower-bound (ELB) pruning of
// NEAT Phase 3 sound.
#pragma once

#include <cmath>
#include <iosfwd>
#include <vector>

namespace neat {

/// A point (or free vector) in the planar metre frame.
struct Point {
  double x{0.0};
  double y{0.0};

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr bool operator==(Point a, Point b) = default;
};

/// Dot product of two vectors.
[[nodiscard]] constexpr double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// Z component of the cross product (signed parallelogram area).
[[nodiscard]] constexpr double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean norm.
[[nodiscard]] constexpr double norm_sq(Point a) { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(Point a) { return std::sqrt(norm_sq(a)); }

/// Squared Euclidean distance between two points.
[[nodiscard]] constexpr double distance_sq(Point a, Point b) { return norm_sq(a - b); }

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(Point a, Point b) { return norm(a - b); }

/// Linear interpolation between `a` (t = 0) and `b` (t = 1).
[[nodiscard]] constexpr Point lerp(Point a, Point b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Result of projecting a point onto a line segment.
struct Projection {
  Point closest;    ///< Closest point on the segment.
  double t{0.0};    ///< Parameter in [0, 1] along the segment (a -> b).
  double dist{0.0}; ///< Euclidean distance from the query point.
};

/// Projects `p` onto segment [a, b], clamping to the segment extent.
/// Degenerate segments (a == b) project everything onto `a`.
[[nodiscard]] Projection project_onto_segment(Point p, Point a, Point b);

/// Distance from point `p` to segment [a, b].
[[nodiscard]] double point_segment_distance(Point p, Point a, Point b);

/// Total length of a polyline (0 for fewer than two points).
[[nodiscard]] double polyline_length(const std::vector<Point>& pts);

/// Point at arc-length `s` along the polyline, clamped to its extent.
/// Requires at least one point.
[[nodiscard]] Point point_along_polyline(const std::vector<Point>& pts, double s);

/// Angle of the direction vector from `a` to `b`, in radians in (-pi, pi].
[[nodiscard]] double heading(Point a, Point b);

/// Smallest absolute difference between two angles, in [0, pi].
[[nodiscard]] double angle_difference(double a, double b);

std::ostream& operator<<(std::ostream& os, Point p);

}  // namespace neat
