// Small string helpers shared by the CSV layer and report formatting.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace neat {

/// Concatenates the streamable arguments into one string.
template <class... Args>
[[nodiscard]] std::string str_cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Splits `s` on `sep`; keeps empty fields ("a,,b" -> {"a", "", "b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; throws neat::ParseError on malformed input.
[[nodiscard]] double parse_double(std::string_view s);

/// Parses a 64-bit integer; throws neat::ParseError on malformed input.
[[nodiscard]] std::int64_t parse_int(std::string_view s);

/// Formats a double with `precision` digits after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int precision);

}  // namespace neat
