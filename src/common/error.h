// Error types and precondition checking for the NEAT libraries.
//
// Per project policy, violated API contracts and malformed inputs raise
// exceptions (never abort); all exceptions derive from neat::Error so callers
// can catch library failures with a single handler.
#pragma once

#include <stdexcept>
#include <string>

namespace neat {

/// Base class of every exception thrown by the NEAT libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when persisted data (CSV files, …) cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when an id does not refer to an existing entity.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace neat

/// Checks a documented precondition; throws neat::PreconditionError on
/// failure. Always on — contract violations must never pass silently.
#define NEAT_EXPECT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::neat::detail::fail_precondition(#cond, __FILE__, __LINE__, \
                                                   (msg));                  \
  } while (false)
