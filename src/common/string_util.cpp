#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <iomanip>

#include "common/error.h"

namespace neat {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError(str_cat("malformed floating-point value: '", std::string(s), "'"));
  }
  return value;
}

std::int64_t parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError(str_cat("malformed integer value: '", std::string(s), "'"));
  }
  return value;
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace neat
