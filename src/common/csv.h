// Minimal CSV reading/writing used for network, trajectory, and result
// persistence. Handles RFC-4180-style quoting for fields containing the
// separator, quotes, or newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace neat {

/// Writes rows of fields as CSV to an std::ostream the writer does not own.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  /// Writes one row; fields are quoted only when necessary.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

/// Reads CSV rows from an std::istream the reader does not own.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char sep = ',') : in_(in), sep_(sep) {}

  /// Reads the next row into `fields`; returns false at end of input.
  /// Throws neat::ParseError on malformed quoting.
  bool read_row(std::vector<std::string>& fields);

 private:
  std::istream& in_;
  char sep_;
};

/// Quotes a single field if needed (exposed for testing).
[[nodiscard]] std::string csv_escape(const std::string& field, char sep = ',');

}  // namespace neat
