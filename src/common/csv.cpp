#include "common/csv.h"

#include <istream>
#include <ostream>

#include "common/error.h"

namespace neat {

std::string csv_escape(const std::string& field, char sep) {
  const bool needs_quotes =
      field.find_first_of(std::string{sep} + "\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << sep_;
    out_ << csv_escape(fields[i], sep_);
  }
  out_ << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  char c = 0;
  while (in_.get(c)) {
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in_.peek() == '"') {
          in_.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty()) throw ParseError("quote in the middle of an unquoted CSV field");
      in_quotes = true;
    } else if (c == sep_) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      return true;
    } else if (c == '\r') {
      // Swallow; handled by the following '\n' if present.
    } else {
      field += c;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  if (!saw_any) return false;
  fields.push_back(std::move(field));
  return true;
}

}  // namespace neat
