// Seeded pseudo-random number generation.
//
// All stochastic components (network generators, mobility simulator, noise
// models) draw from an explicitly seeded Rng so every experiment is exactly
// reproducible. Never use global random state.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"

namespace neat {

/// A seeded random source. Cheap to pass by reference; not thread safe —
/// give each thread (or each generation task) its own instance.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NEAT_EXPECT(lo <= hi, "uniform_int range is empty");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) {
    NEAT_EXPECT(lo <= hi, "uniform range is empty");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniformly chosen index into a container of `size` elements.
  /// Requires size > 0.
  [[nodiscard]] std::size_t index(std::size_t size) {
    NEAT_EXPECT(size > 0, "cannot pick from an empty range");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Uniformly chosen element of a non-empty vector.
  template <class T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    NEAT_EXPECT(!v.empty(), "cannot pick from an empty vector");
    return v[index(v.size())];
  }

  /// Index drawn from the discrete distribution given by non-negative
  /// weights. Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    NEAT_EXPECT(!weights.empty(), "weighted_index needs weights");
    std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Derives an independent child generator (for per-object streams).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Underlying engine, for use with std <random> distributions.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace neat
