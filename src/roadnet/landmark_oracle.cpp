#include "roadnet/landmark_oracle.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"
#include "common/stopwatch.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "roadnet/shortest_path.h"

namespace neat::roadnet {

namespace {

using HeapEntry = std::pair<double, std::int32_t>;  // (cost, node)
using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// Full undirected single-source Dijkstra, writing distances into `out`
/// (kInfDistance for unreachable nodes).
void full_sssp(const RoadNetwork& net, NodeId source, std::span<double> out) {
  std::fill(out.begin(), out.end(), kInfDistance);
  const auto idx = [](NodeId n) { return static_cast<std::size_t>(n.value()); };
  out[idx(source)] = 0.0;
  MinHeap heap;
  heap.emplace(0.0, source.value());
  while (!heap.empty()) {
    const auto [d, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    if (d > out[idx(u)]) continue;  // stale entry
    for (const SegmentId sid : net.segments_at(u)) {
      const Segment& seg = net.segment(sid);
      const NodeId v = (seg.a == u) ? seg.b : seg.a;
      const double nd = d + seg.length;
      if (nd < out[idx(v)]) {
        out[idx(v)] = nd;
        heap.emplace(nd, v.value());
      }
    }
  }
}

/// The node with the largest finite value in `dist` that is not yet used
/// (used nodes are marked with a negative sentinel in `eligible`), smallest
/// id on ties. Returns NodeId::invalid() when every finite node is used.
NodeId farthest_node(std::span<const double> dist, std::span<const char> used) {
  NodeId best = NodeId::invalid();
  double best_d = -1.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (used[i] || dist[i] == kInfDistance) continue;
    if (dist[i] > best_d) {
      best_d = dist[i];
      best = NodeId(static_cast<std::int32_t>(i));
    }
  }
  return best;
}

}  // namespace

LandmarkOracle::LandmarkOracle(const RoadNetwork& net, int num_landmarks) : net_(net) {
  NEAT_EXPECT(num_landmarks >= 1, "LandmarkOracle: num_landmarks must be at least 1");
  NEAT_EXPECT(net.node_count() > 0, "LandmarkOracle: network has no junctions");
  obs::ScopedSpan span("landmark.build");
  const Stopwatch watch;
  const std::size_t n = net.node_count();
  stride_ = n;

  // Farthest-point selection. The probe run from node 0 only seeds the
  // process (its table is discarded): the first landmark is the node
  // farthest from the probe, i.e. on the periphery of node 0's component.
  std::vector<double> probe(n);
  full_sssp(net_, NodeId(0), probe);
  std::vector<char> used(n, 0);
  NodeId first = farthest_node(probe, used);
  if (!first.valid()) first = NodeId(0);  // isolated node 0: it is the landmark

  const std::size_t want = std::min<std::size_t>(static_cast<std::size_t>(num_landmarks), n);
  landmarks_.reserve(want);
  dist_.reserve(want * n);
  // min over chosen landmarks of the distance to each node — the
  // farthest-point criterion for the next pick.
  std::vector<double> min_dist(n, kInfDistance);

  NodeId next = first;
  while (landmarks_.size() < want && next.valid()) {
    used[static_cast<std::size_t>(next.value())] = 1;
    landmarks_.push_back(next);
    const std::size_t row = dist_.size();
    dist_.resize(row + n);
    full_sssp(net_, next, std::span<double>(dist_).subspan(row, n));
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], dist_[row + i]);
    }
    // Next landmark: the unused node farthest (in min-distance) from the
    // current set. Nodes at distance 0 or unreachable add no new bound.
    next = farthest_node(min_dist, used);
    if (next.valid() && min_dist[static_cast<std::size_t>(next.value())] <= 0.0) break;
  }

  obs::Registry& reg = obs::Registry::global();
  reg.counter("neat_roadnet_landmark_builds_total").add(1);
  reg.counter("neat_roadnet_landmarks_selected_total").add(landmarks_.size());
  reg.histogram("neat_roadnet_landmark_build_duration_seconds")
      .record(watch.elapsed_seconds());
  span.arg("landmarks", static_cast<std::uint64_t>(landmarks_.size()));
  span.arg("junctions", static_cast<std::uint64_t>(n));
  NEAT_LOG(kInfo, "roadnet")
      .msg("landmark tables built")
      .kv("landmarks", landmarks_.size())
      .kv("junctions", n)
      .kv("duration_ms", watch.elapsed_seconds() * 1e3);
}

double LandmarkOracle::lower_bound(NodeId s, NodeId t) const {
  static_cast<void>(net_.node(s));
  static_cast<void>(net_.node(t));
  const auto si = static_cast<std::size_t>(s.value());
  const auto ti = static_cast<std::size_t>(t.value());
  double best = 0.0;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double ds = dist_[l * stride_ + si];
    const double dt = dist_[l * stride_ + ti];
    const bool s_seen = ds < kInfDistance;
    const bool t_seen = dt < kInfDistance;
    if (s_seen != t_seen) return kInfDistance;  // provably different components
    if (!s_seen) continue;                      // landmark sees neither: no information
    best = std::max(best, std::fabs(ds - dt));
  }
  return best;
}

double LandmarkOracle::lower_bound_to_any(NodeId u, std::span<const NodeId> targets) const {
  if (targets.empty()) return 0.0;
  double best = kInfDistance;
  for (const NodeId t : targets) {
    best = std::min(best, lower_bound(u, t));
    if (best <= 0.0) return 0.0;
  }
  return best;
}

double LandmarkOracle::landmark_distance(std::size_t i, NodeId n) const {
  NEAT_EXPECT(i < landmarks_.size(), "LandmarkOracle: landmark index out of range");
  static_cast<void>(net_.node(n));
  return dist_[i * stride_ + static_cast<std::size_t>(n.value())];
}

}  // namespace neat::roadnet
