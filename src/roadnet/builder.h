// Incremental construction of RoadNetwork instances.
#pragma once

#include <optional>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "roadnet/road_network.h"

namespace neat::roadnet {

/// Builds a RoadNetwork node by node and segment by segment. Ids are handed
/// out densely in insertion order, so callers can build lookup tables as they
/// insert. `build()` validates and finalizes; the builder is then empty.
class RoadNetworkBuilder {
 public:
  /// Adds a junction at the given position; returns its id.
  NodeId add_node(Point pos);

  /// Adds a road segment between two previously added junctions; returns its
  /// id. `length` defaults to the straight-line distance between endpoints.
  /// Throws neat::PreconditionError on invalid endpoints, non-positive speed,
  /// or a length below the straight-line distance.
  SegmentId add_segment(NodeId a, NodeId b, double speed_limit_mps,
                        bool bidirectional = true,
                        std::optional<double> length = std::nullopt);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

  /// Position of an already-added node.
  [[nodiscard]] Point node_pos(NodeId id) const;

  /// Finalizes the network; the builder is left empty and reusable.
  [[nodiscard]] RoadNetwork build();

 private:
  std::vector<Node> nodes_;
  std::vector<Segment> segments_;
};

}  // namespace neat::roadnet
