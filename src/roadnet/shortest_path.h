// Shortest-path machinery over road networks.
//
// Two families of queries exist because the paper uses the network two ways:
//  * Undirected node-to-node distances (metres) back the modified Hausdorff
//    distance of NEAT Phase 3 — "dN(a, b) and dN(b, a) are the same since we
//    consider undirected graphs" (§III-C.3). NodeDistanceOracle keeps a
//    reusable workspace so the refiner can issue many queries cheaply, and
//    counts its Dijkstra runs so benchmarks can report ELB pruning wins.
//  * Directed routes (respecting one-way segments) back the mobility
//    simulator and the t-fragment gap repair of Phase 1.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "roadnet/road_network.h"

namespace neat::roadnet {

class LandmarkOracle;

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Edge weight to optimize when routing.
enum class Metric {
  kDistance,    ///< Segment length (metres).
  kTravelTime,  ///< Length / speed limit (seconds).
};

/// A directed route through the network.
struct Route {
  std::vector<EdgeId> edges;
  double length{0.0};       ///< Metres.
  double travel_time{0.0};  ///< Seconds at segment speed limits.

  /// Junction sequence visited by the route (edge count + 1 nodes), starting
  /// at the route origin. Empty for an empty route.
  [[nodiscard]] std::vector<NodeId> node_path(const RoadNetwork& net) const;
};

/// Reusable undirected single-pair shortest-distance solver (Dijkstra with a
/// lazy-deletion binary heap and generation-stamped state, so repeated
/// queries do not reallocate). Not thread safe; create one per thread.
///
/// Every query optionally takes a LandmarkOracle: when given, the search
/// runs as A* steered by the landmark (ALT) potential — returned distances
/// are identical (the potential is admissible and consistent), only fewer
/// nodes are settled.
class NodeDistanceOracle {
 public:
  explicit NodeDistanceOracle(const RoadNetwork& net);

  /// Undirected network distance from `s` to `t` in metres. Returns
  /// kInfDistance when unreachable or when the distance exceeds `bound`.
  [[nodiscard]] double distance(NodeId s, NodeId t, double bound = kInfDistance,
                                const LandmarkOracle* alt = nullptr);

  /// Undirected network distance from `s` to the *closest* of `targets`
  /// (min over targets), or kInfDistance when none is reachable within
  /// `bound`. One Dijkstra run: the first settled target is the closest.
  [[nodiscard]] double distance_to_any(NodeId s, std::span<const NodeId> targets,
                                       double bound = kInfDistance,
                                       const LandmarkOracle* alt = nullptr);

  /// One-to-many batch: fills `out[k]` with the undirected network distance
  /// from `s` to `targets[k]` (kInfDistance when unreachable or beyond
  /// `bound`), in ONE search that stops once every target has settled or the
  /// frontier passes `bound`. `out.size()` must equal `targets.size()`.
  /// Counts as a single computation — this is how the Phase 3 refiner
  /// settles a flow endpoint against both endpoints of another flow without
  /// paying per-target searches.
  void distances(NodeId s, std::span<const NodeId> targets, std::span<double> out,
                 double bound = kInfDistance, const LandmarkOracle* alt = nullptr);

  /// Number of Dijkstra runs issued so far (the paper's "number of shortest
  /// path computations").
  [[nodiscard]] std::size_t computations() const { return computations_; }

  /// Total number of settled nodes across all runs (work proxy).
  [[nodiscard]] std::size_t settled_nodes() const { return settled_; }

  /// Resets the instrumentation counters.
  void reset_counters();

 private:
  /// Shared engine behind the three public queries: bounded, optionally
  /// ALT-steered, settling either the first target (returning its distance)
  /// or all of them (filling `out`).
  double search(NodeId s, std::span<const NodeId> targets, std::span<double> out,
                double bound, const LandmarkOracle* alt, bool first_only);

  const RoadNetwork& net_;
  std::vector<double> dist_;
  std::vector<std::uint32_t> stamp_;
  std::vector<char> target_done_;  ///< Per-call scratch, sized to the target set.
  std::uint32_t generation_{0};
  std::size_t computations_{0};
  std::size_t settled_{0};
};

/// One-shot undirected node distance (convenience wrapper for tests/tools).
[[nodiscard]] double node_distance(const RoadNetwork& net, NodeId s, NodeId t,
                                   double bound = kInfDistance);

/// Undirected shortest junction path from `s` to `t` (inclusive), or
/// std::nullopt when unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_node_path(
    const RoadNetwork& net, NodeId s, NodeId t, double bound = kInfDistance);

/// Directed shortest route from `s` to `t` under the given metric, or
/// std::nullopt when `t` is not reachable within `max_cost` (same unit as
/// the metric).
[[nodiscard]] std::optional<Route> shortest_route(const RoadNetwork& net, NodeId s,
                                                  NodeId t, Metric metric,
                                                  double max_cost = kInfDistance);

/// Directed shortest route via A*. The heuristic is the Euclidean distance
/// (for Metric::kDistance) or Euclidean distance over the network's maximum
/// speed limit (for Metric::kTravelTime) — admissible because segment
/// lengths never undercut straight-line distances, so results equal
/// shortest_route() while settling fewer nodes.
[[nodiscard]] std::optional<Route> astar_route(const RoadNetwork& net, NodeId s, NodeId t,
                                               Metric metric);

/// A position on a segment: `offset` metres from the segment's endpoint `a`.
struct NetworkLocation {
  SegmentId sid;
  double offset{0.0};
};

/// Undirected network distance between two on-segment locations (the
/// paper's d_N over road-network locations, §III-C.3): on the same segment
/// it is the offset difference; otherwise the best combination of
/// offset-to-endpoint legs plus a node-to-node shortest path, also
/// considering the direct route across a shared junction. Returns
/// kInfDistance when disconnected. The Euclidean distance between the two
/// positions is always a lower bound (ELB).
[[nodiscard]] double location_distance(const RoadNetwork& net, NetworkLocation a,
                                       NetworkLocation b, NodeDistanceOracle& oracle);

/// Convenience overload constructing a throwaway oracle.
[[nodiscard]] double location_distance(const RoadNetwork& net, NetworkLocation a,
                                       NetworkLocation b);

/// Single-source shortest-path tree over directed edges. Used by the
/// mobility simulator to answer all trips leaving one hotspot with a single
/// Dijkstra run.
class SsspTree {
 public:
  SsspTree(const RoadNetwork& net, NodeId source, Metric metric);

  [[nodiscard]] NodeId source() const { return source_; }
  [[nodiscard]] bool reachable(NodeId t) const;

  /// Cost (metres or seconds, per the metric) from the source, or
  /// kInfDistance when unreachable.
  [[nodiscard]] double cost(NodeId t) const;

  /// Route from the source to `t`, or std::nullopt when unreachable.
  [[nodiscard]] std::optional<Route> route_to(NodeId t) const;

 private:
  const RoadNetwork& net_;
  NodeId source_;
  std::vector<double> cost_;
  std::vector<EdgeId> parent_edge_;
};

/// All-origins-to-one-target shortest-path tree over directed edges (a
/// Dijkstra run on the reversed graph). Used by the mobility simulator:
/// trip destinations come from a small predefined set, so one reverse tree
/// per destination answers every trip toward it in O(route length) —
/// regardless of how many distinct origins the hotspot regions produce.
class ReverseSsspTree {
 public:
  ReverseSsspTree(const RoadNetwork& net, NodeId target, Metric metric);

  [[nodiscard]] NodeId target() const { return target_; }
  [[nodiscard]] bool reachable_from(NodeId s) const;

  /// Cost from `s` to the target, or kInfDistance when unreachable.
  [[nodiscard]] double cost_from(NodeId s) const;

  /// Route from `s` to the target, or std::nullopt when unreachable.
  [[nodiscard]] std::optional<Route> route_from(NodeId s) const;

 private:
  const RoadNetwork& net_;
  NodeId target_;
  std::vector<double> cost_;
  std::vector<EdgeId> next_edge_;  ///< First edge of the path toward the target.
};

}  // namespace neat::roadnet
