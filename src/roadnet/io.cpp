#include "roadnet/io.h"

#include <fstream>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"

namespace neat::roadnet {

void save_network(const RoadNetwork& net, std::ostream& out) {
  CsvWriter writer(out);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const Node& n = net.node(NodeId(static_cast<std::int32_t>(i)));
    writer.write_row({"node", std::to_string(i), format_fixed(n.pos.x, 6),
                      format_fixed(n.pos.y, 6)});
  }
  for (std::size_t i = 0; i < net.segment_count(); ++i) {
    const Segment& s = net.segment(SegmentId(static_cast<std::int32_t>(i)));
    writer.write_row({"segment", std::to_string(i), std::to_string(s.a.value()),
                      std::to_string(s.b.value()), format_fixed(s.length, 6),
                      format_fixed(s.speed_limit, 6), s.bidirectional ? "1" : "0"});
  }
}

void save_network(const RoadNetwork& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  save_network(net, out);
}

RoadNetwork load_network(std::istream& in) {
  CsvReader reader(in);
  std::vector<std::string> row;
  std::vector<Node> nodes;
  std::vector<Segment> segments;
  std::size_t line = 0;
  while (reader.read_row(row)) {
    ++line;
    if (row.empty() || (row.size() == 1 && trim(row[0]).empty())) continue;
    const std::string& kind = row[0];
    if (kind == "node") {
      if (row.size() != 4) throw ParseError(str_cat("line ", line, ": node row needs 4 fields"));
      const auto id = static_cast<std::size_t>(parse_int(row[1]));
      if (nodes.size() <= id) nodes.resize(id + 1);
      nodes[id] = Node{{parse_double(row[2]), parse_double(row[3])}};
    } else if (kind == "segment") {
      if (row.size() != 7) {
        throw ParseError(str_cat("line ", line, ": segment row needs 7 fields"));
      }
      const auto id = static_cast<std::size_t>(parse_int(row[1]));
      if (segments.size() <= id) segments.resize(id + 1);
      Segment s;
      s.a = NodeId(static_cast<std::int32_t>(parse_int(row[2])));
      s.b = NodeId(static_cast<std::int32_t>(parse_int(row[3])));
      s.length = parse_double(row[4]);
      s.speed_limit = parse_double(row[5]);
      s.bidirectional = parse_int(row[6]) != 0;
      segments[id] = s;
    } else {
      throw ParseError(str_cat("line ", line, ": unknown row kind '", kind, "'"));
    }
  }
  // Serialization rounds coordinates and lengths independently, so a stored
  // length can undercut the straight-line distance recomputed from rounded
  // coordinates by a hair. Clamp within a strict tolerance; anything larger
  // is genuinely inconsistent data.
  constexpr double kRoundingTolerance = 1e-2;
  for (Segment& s : segments) {
    if (!s.a.valid() || !s.b.valid()) continue;
    const auto ai = static_cast<std::size_t>(s.a.value());
    const auto bi = static_cast<std::size_t>(s.b.value());
    if (ai >= nodes.size() || bi >= nodes.size()) continue;
    const double straight = distance(nodes[ai].pos, nodes[bi].pos);
    if (s.length < straight && s.length >= straight - kRoundingTolerance) {
      s.length = straight;
    }
  }
  try {
    return RoadNetwork(std::move(nodes), std::move(segments));
  } catch (const PreconditionError& e) {
    throw ParseError(str_cat("inconsistent network file: ", e.what()));
  }
}

RoadNetwork load_network(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(str_cat("cannot open '", path, "' for reading"));
  return load_network(in);
}

}  // namespace neat::roadnet
