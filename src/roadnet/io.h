// CSV persistence for road networks.
//
// Format (one file):
//   node,<id>,<x>,<y>
//   segment,<id>,<a>,<b>,<length>,<speed>,<bidirectional 0|1>
// Rows may appear in any order but ids must be dense and consistent.
#pragma once

#include <iosfwd>
#include <string>

#include "roadnet/road_network.h"

namespace neat::roadnet {

/// Writes the network to a stream in the CSV format above.
void save_network(const RoadNetwork& net, std::ostream& out);

/// Writes the network to a file. Throws neat::Error when the file cannot be
/// opened.
void save_network(const RoadNetwork& net, const std::string& path);

/// Reads a network from a stream. Throws neat::ParseError on malformed data.
[[nodiscard]] RoadNetwork load_network(std::istream& in);

/// Reads a network from a file. Throws neat::Error when the file cannot be
/// opened and neat::ParseError on malformed data.
[[nodiscard]] RoadNetwork load_network(const std::string& path);

}  // namespace neat::roadnet
