// Uniform-grid spatial index over road segments.
//
// Backs two consumers: the map matcher (candidate segments near a raw GPS
// point) and the TraClus baseline (ε-range candidate generation). Cells store
// the segments whose geometry overlaps them; queries expand outward ring by
// ring, so a nearest-segment lookup touches O(1) cells on typical networks.
#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "roadnet/road_network.h"

namespace neat::roadnet {

/// Grid index over the straight-line geometry of every segment in a network.
/// The index keeps a reference to the network; do not outlive it.
///
/// Thread safety: the index is immutable after construction and the const
/// query methods keep no mutable state, so any number of threads may query
/// one index concurrently without synchronization. The serving subsystem
/// (serve::QueryEngine) relies on this guarantee.
class SegmentGridIndex {
 public:
  /// Builds the index. `cell_size` is in metres; pass 0 to pick a size near
  /// twice the average segment length automatically.
  explicit SegmentGridIndex(const RoadNetwork& net, double cell_size = 0.0);

  /// The segment whose geometry is closest to `p`, searching at most
  /// `max_radius` metres; invalid id when none is within the radius.
  /// `out_dist` (optional) receives the point-to-segment distance.
  [[nodiscard]] SegmentId nearest_segment(Point p, double max_radius,
                                          double* out_dist = nullptr) const;

  /// All segments whose geometry lies within `radius` of `p`, in ascending
  /// id order (deterministic).
  [[nodiscard]] std::vector<SegmentId> segments_within(Point p, double radius) const;

  /// Up to `k` nearest segments within `max_radius`, closest first.
  [[nodiscard]] std::vector<SegmentId> k_nearest_segments(Point p, std::size_t k,
                                                          double max_radius) const;

  [[nodiscard]] double cell_size() const { return cell_; }

 private:
  struct CellRange {
    int x0, x1, y0, y1;
  };

  [[nodiscard]] CellRange cells_overlapping(Point min, Point max) const;
  [[nodiscard]] const std::vector<SegmentId>& cell(int cx, int cy) const;

  const RoadNetwork& net_;
  double cell_{0.0};
  Point origin_;
  int nx_{0};
  int ny_{0};
  std::vector<std::vector<SegmentId>> cells_;
  static const std::vector<SegmentId> kEmptyCell;
};

}  // namespace neat::roadnet
