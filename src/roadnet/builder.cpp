#include "roadnet/builder.h"

#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::roadnet {

NodeId RoadNetworkBuilder::add_node(Point pos) {
  NEAT_EXPECT(std::isfinite(pos.x) && std::isfinite(pos.y),
              "add_node: coordinates must be finite");
  nodes_.push_back(Node{pos});
  return NodeId(static_cast<std::int32_t>(nodes_.size() - 1));
}

SegmentId RoadNetworkBuilder::add_segment(NodeId a, NodeId b, double speed_limit_mps,
                                          bool bidirectional, std::optional<double> length) {
  NEAT_EXPECT(a.valid() && static_cast<std::size_t>(a.value()) < nodes_.size(),
              "add_segment: endpoint a does not exist");
  NEAT_EXPECT(b.valid() && static_cast<std::size_t>(b.value()) < nodes_.size(),
              "add_segment: endpoint b does not exist");
  NEAT_EXPECT(a != b, "add_segment: self loops are not supported");
  NEAT_EXPECT(speed_limit_mps > 0.0, "add_segment: speed limit must be positive");
  const double straight = distance(nodes_[static_cast<std::size_t>(a.value())].pos,
                                   nodes_[static_cast<std::size_t>(b.value())].pos);
  const double len = length.value_or(straight);
  NEAT_EXPECT(len >= straight - 1e-6,
              str_cat("add_segment: length ", len, " undercuts straight-line distance ",
                      straight));
  NEAT_EXPECT(len > 0.0, "add_segment: degenerate segment (coincident endpoints)");
  segments_.push_back(Segment{a, b, len, speed_limit_mps, bidirectional});
  return SegmentId(static_cast<std::int32_t>(segments_.size() - 1));
}

Point RoadNetworkBuilder::node_pos(NodeId id) const {
  NEAT_EXPECT(id.valid() && static_cast<std::size_t>(id.value()) < nodes_.size(),
              "node_pos: no such node");
  return nodes_[static_cast<std::size_t>(id.value())].pos;
}

RoadNetwork RoadNetworkBuilder::build() {
  RoadNetwork net(std::move(nodes_), std::move(segments_));
  nodes_.clear();
  segments_.clear();
  return net;
}

}  // namespace neat::roadnet
