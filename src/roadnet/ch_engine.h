// Contraction Hierarchies (Geisberger et al. 2008) over road networks.
//
// A one-time preprocessing pass contracts nodes in importance order (lazy
// edge-difference heuristic), inserting shortcut arcs that preserve all
// shortest-path distances among the not-yet-contracted nodes. Queries then
// run two tiny Dijkstra searches that only climb *upward* in the contraction
// order — forward from the source, backward from the target — and meet at
// the apex of a shortest up-down path. Stall-on-demand prunes upward labels
// that a higher-ranked detour already beats.
//
// Each upward search depends only on its endpoint and the query bound, so a
// Query memoizes the resulting label (the bucket entries of the classic CH
// many-to-many algorithm: every settled node with its distance and parent
// arc). Labels are built out to the requested bound — within it every
// reachable meet hub is retained exactly, beyond it the query answers
// kInfDistance by contract, so the truncation is invisible — and rebuilt
// only if a later query asks for a larger bound. The Phase 3 refiner issues
// O(flows^2) pair queries over O(flows) distinct endpoints at one fixed ε
// bound; after the first touch of an endpoint, every further pair distance
// is a sorted-label merge that settles no nodes at all.
//
// Exactness: answers are not read off the bidirectional meet value. The
// engine unpacks the winning up-down path into its original arcs and re-sums
// the weights sequentially from the source — the same left-to-right
// floating-point accumulation a plain Dijkstra performs along that path — so
// distances are bit-identical to NodeDistanceOracle whenever the shortest
// path is unique (and within rounding ties of equal-length alternatives
// otherwise). Bounded queries keep the Dijkstra contract: the exact distance
// when it is <= bound, kInfDistance otherwise.
//
// Like LandmarkOracle, a built engine is immutable and safe to share across
// threads; per-thread query state lives in ChEngine::Query.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace neat::roadnet {

/// Preprocessing/query options of ChEngine (namespace scope so it is
/// complete where the constructor's default argument needs it).
struct ChOptions {
  /// false: the undirected metric of NEAT Phase 3 (every segment
  /// traversable both ways, matching NodeDistanceOracle); true: one-way
  /// aware routing over directed edges (supports route()).
  bool directed{false};
  /// Arc weight: segment length (metres) or length / speed limit (s).
  Metric metric{Metric::kDistance};
  /// Settled-node budget of each witness search during preprocessing.
  /// Exhausting it inserts a (possibly redundant) shortcut — never wrong,
  /// only larger; raising the budget trades build time for query speed.
  int witness_settle_limit{64};
};

class CHTableEngine;

/// Exact shortest-distance engine with Contraction Hierarchies preprocessing.
class ChEngine {
 public:
  using Options = ChOptions;

  /// One settled node of an upward search: its exact upward distance from
  /// the label's endpoint and the hierarchy arc it was reached through
  /// (-1 at the endpoint itself). Sorted by node id for merge scans.
  struct LabelEntry {
    std::int32_t node;
    double dist;
    std::int32_t parent;
  };
  /// A memoized upward search, valid for any query bound <= `bound`.
  struct Label {
    double bound{0.0};
    std::vector<LabelEntry> entries;
  };

  /// Reusable upward-search workspace: the bounded upward Dijkstra with
  /// stall-on-demand that both Query and CHTableEngine run. Sharing one
  /// implementation is what makes the table engine's entries bit-identical
  /// to Query's — there is only one label construction in the codebase.
  /// Not thread safe; create one per thread.
  class LabelBuilder {
   public:
    explicit LabelBuilder(const ChEngine& engine);

    /// Runs the upward Dijkstra from `src` on the forward (`fwd_graph`) or
    /// reverse upward graph, pruned at `bound`, and overwrites `out` with
    /// the settled entries sorted by node id. Returns the settled count.
    std::size_t build(bool fwd_graph, std::int32_t src, double bound, Label& out);

   private:
    const ChEngine& ch_;
    // Generation-stamped scratch, reused across builds.
    std::vector<double> dist_;
    std::vector<std::uint32_t> stamp_;
    std::vector<std::int32_t> parent_;
    std::uint32_t gen_{0};
  };

  /// Memoized upward labels keyed by endpoint node, built out to the
  /// requested bound and rebuilt only when a later call asks for a larger
  /// one. Undirected hierarchies are arc-symmetric (contract() inserts
  /// shortcut twins), so the backward label of a node carries the same
  /// (node, dist) set as its forward label — both directions share one
  /// cache and one build. unpack_updown() compensates for the flipped
  /// parent arcs. Not thread safe.
  class LabelCache {
   public:
    explicit LabelCache(const ChEngine& engine);

    /// Cached upward label of `src`, built via `builder` on a miss (or on a
    /// larger bound); settled nodes of any build are added to `settled`.
    const Label& get(bool forward, std::int32_t src, double bound,
                     LabelBuilder& builder, std::size_t& settled);
    /// Whole-cache eviction once the entry budget is exhausted (keeps
    /// unbounded query streams from growing without limit; correctness
    /// never depends on a hit). Call only between batches: merges hold
    /// references into the cache.
    void maybe_evict();

   private:
    const ChEngine& ch_;
    std::unordered_map<std::int32_t, Label> fwd_labels_;
    std::unordered_map<std::int32_t, Label> bwd_labels_;
    std::size_t cached_entries_{0};
  };

  /// Preprocesses the network. Throws neat::PreconditionError on an empty
  /// network. Keeps a reference to `net`; do not outlive it.
  explicit ChEngine(const RoadNetwork& net, Options opts = {});

  ChEngine(const ChEngine&) = delete;
  ChEngine& operator=(const ChEngine&) = delete;

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] const RoadNetwork& network() const { return net_; }
  /// Shortcut arcs inserted by preprocessing (on top of the base arcs).
  [[nodiscard]] std::size_t shortcut_count() const { return shortcut_count_; }
  /// Total arcs in the hierarchy (base + shortcuts).
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }
  /// Wall-clock seconds the preprocessing pass took.
  [[nodiscard]] double preprocessing_seconds() const { return preprocessing_seconds_; }
  /// Contraction order of a node (0 = contracted first). For tests.
  [[nodiscard]] std::int32_t rank(NodeId n) const;

  /// Per-thread query workspace over a shared engine. Mirrors the
  /// NodeDistanceOracle interface (bounded queries, batch one-to-many,
  /// computation/settled counters) so the refiner can swap engines without
  /// changing its merge logic. Not thread safe; create one per thread.
  class Query {
   public:
    explicit Query(const ChEngine& engine);

    /// Distance from `s` to `t` in the engine's metric, or kInfDistance
    /// when unreachable or beyond `bound`.
    [[nodiscard]] double distance(NodeId s, NodeId t, double bound = kInfDistance);

    /// Distance from `s` to the closest of `targets` (min over targets).
    [[nodiscard]] double distance_to_any(NodeId s, std::span<const NodeId> targets,
                                         double bound = kInfDistance);

    /// One-to-many batch: merges the source's cached forward label against
    /// each target's cached backward label. `out.size()` must equal
    /// `targets.size()`. Counts as one computation, like the oracle's batch.
    void distances(NodeId s, std::span<const NodeId> targets, std::span<double> out,
                   double bound = kInfDistance);

    /// Shortest route from `s` to `t` (directed engines only; throws
    /// neat::PreconditionError otherwise), or std::nullopt when unreachable.
    [[nodiscard]] std::optional<Route> route(NodeId s, NodeId t);

    /// Query calls issued so far (a batch counts once, as in the oracle).
    [[nodiscard]] std::size_t computations() const { return computations_; }
    /// Nodes settled across all calls, both search directions (work proxy;
    /// directly comparable to NodeDistanceOracle::settled_nodes()). Label
    /// cache hits settle nothing — that is the point of the cache.
    [[nodiscard]] std::size_t settled_nodes() const { return settled_; }
    void reset_counters();

   private:
    void run_batch(NodeId s, std::span<const NodeId> targets, std::span<double> out,
                   double bound, std::vector<std::int32_t>* leaves_of_first);
    /// Cached upward label of `src` (forward = relax up_fwd_, stall via
    /// up_rev_; backward the mirror), built out to at least `bound`.
    const Label& label(bool forward, std::int32_t src, double bound);

    const ChEngine& ch_;
    LabelBuilder builder_;
    LabelCache cache_;
    std::vector<std::int32_t> leaves_scratch_;
    std::vector<double> any_scratch_;
    std::size_t computations_{0};
    std::size_t settled_{0};
  };

 private:
  friend class Query;
  friend class LabelBuilder;
  friend class LabelCache;
  friend class CHTableEngine;

  /// Arena arcs of the up-down path through `meet`, unpacked into base arcs
  /// in s -> t order. `bwd` is a true backward label in directed mode and a
  /// forward label from the target otherwise (see LabelCache).
  void unpack_updown(const Label& fwd, const Label& bwd, std::int32_t meet,
                     std::vector<std::int32_t>& leaves) const;

  /// One arc of the hierarchy. Base arcs carry the directed edge they came
  /// from (invalid in undirected mode); shortcuts carry the two arcs they
  /// replace, so any hierarchy path unpacks into base arcs.
  struct Arc {
    std::int32_t from;
    std::int32_t to;
    double w;
    std::int32_t left{-1};   ///< First replaced arc (arena index), -1 = base.
    std::int32_t right{-1};  ///< Second replaced arc.
    EdgeId eid{EdgeId::invalid()};
  };

  /// CSR entry of the upward search graphs: the higher-ranked endpoint,
  /// the arc weight, and the arena arc (for parent tracking / unpacking).
  struct UpArc {
    std::int32_t other;
    double w;
    std::int32_t arc;
  };

  void add_base_arcs();
  void contract_all();
  void build_upward_graphs();
  /// Shortcuts node `v` would need (simulate) or inserts them (!simulate).
  int contract(std::int32_t v, bool simulate);
  /// Bounded witness Dijkstra from `u` in the remaining graph, skipping `v`.
  void witness_search(std::int32_t u, std::int32_t v, double bound);
  [[nodiscard]] std::int64_t priority(std::int32_t v);

  const RoadNetwork& net_;
  Options opts_;
  std::size_t n_{0};
  std::vector<Arc> arcs_;
  std::vector<std::int32_t> rank_;
  std::size_t shortcut_count_{0};
  double preprocessing_seconds_{0.0};

  // Upward search graphs (built once contraction finishes).
  // up_fwd_: arcs (u -> higher rank), relaxed by the forward search and
  // scanned by the backward search's stall test. up_rev_: arcs
  // (higher rank -> u) stored at u, the mirror roles.
  std::vector<std::int32_t> up_fwd_head_;
  std::vector<UpArc> up_fwd_;
  std::vector<std::int32_t> up_rev_head_;
  std::vector<UpArc> up_rev_;

  // Preprocessing-only state (cleared after the constructor).
  std::vector<std::vector<std::int32_t>> out_adj_;
  std::vector<std::vector<std::int32_t>> in_adj_;
  std::vector<char> contracted_;
  std::vector<std::int32_t> deleted_neighbors_;
  std::vector<std::int32_t> level_;
  /// Reverse-direction twin of each arc (undirected mode only): base arcs
  /// pair up as i <-> i^1, shortcut twins are appended together. Lets
  /// contract() build the reverse shortcut's unpacking children.
  std::vector<std::int32_t> twin_;
  std::vector<double> wdist_;
  std::vector<std::uint32_t> wstamp_;
  std::uint32_t wgen_{0};
  struct Neighbor {
    std::int32_t node;
    std::int32_t arc;  ///< Cheapest arc to/from that neighbor (arena index).
    double w;          ///< Its weight.
  };
  std::vector<Neighbor> in_nb_;   ///< contract() scratch.
  std::vector<Neighbor> out_nb_;  ///< contract() scratch.
};

}  // namespace neat::roadnet
