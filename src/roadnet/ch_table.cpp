#include "roadnet/ch_table.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace neat::roadnet {

namespace {

/// Do the byte ranges of two spans overlap?
template <typename A, typename B>
bool spans_overlap(std::span<A> a, std::span<B> b) {
  const char* ab = reinterpret_cast<const char*>(a.data());
  const char* ae = ab + a.size_bytes();
  const char* bb = reinterpret_cast<const char*>(b.data());
  const char* be = bb + b.size_bytes();
  return ab < be && bb < ae;
}

/// First-appearance deduplication: `uniq` keeps each distinct node once,
/// `uidx[i]` maps original position i to its unique index.
void dedup(std::span<const NodeId> nodes, std::vector<NodeId>& uniq,
           std::vector<std::int32_t>& uidx) {
  uniq.clear();
  uidx.resize(nodes.size());
  std::unordered_map<std::int32_t, std::int32_t> seen;
  seen.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto [it, inserted] =
        seen.try_emplace(nodes[i].value(), static_cast<std::int32_t>(uniq.size()));
    if (inserted) uniq.push_back(nodes[i]);
    uidx[i] = it->second;
  }
}

}  // namespace

CHTableEngine::CHTableEngine(const ChEngine& engine)
    : ch_(engine), builder_(engine), cache_(engine) {}

void CHTableEngine::reset_counters() {
  computations_ = 0;
  settled_ = 0;
}

void CHTableEngine::table(std::span<const NodeId> sources, std::span<const NodeId> targets,
                          std::span<double> out, double bound) {
  NEAT_EXPECT(out.size() == sources.size() * targets.size(),
              "CHTableEngine: output size must be sources x targets");
  // The refiner hands scratch spans straight through engine dispatch; an
  // aliased output would be clobbered mid-join, so reject it outright.
  NEAT_EXPECT(!spans_overlap(out, sources) && !spans_overlap(out, targets),
              "CHTableEngine: out must not alias sources/targets");
  for (const NodeId s : sources) static_cast<void>(ch_.net_.node(s));
  for (const NodeId t : targets) static_cast<void>(ch_.net_.node(t));
  ++computations_;
  std::fill(out.begin(), out.end(), kInfDistance);
  // Whole-cache eviction happens only between fills: the sweeps below hold
  // references into the cache.
  cache_.maybe_evict();
  if (sources.empty() || targets.empty()) return;

  dedup(sources, uniq_sources_, row_uidx_);
  dedup(targets, uniq_targets_, col_uidx_);
  const auto t_count = static_cast<std::int32_t>(uniq_targets_.size());

  // Backward sweep: build (or fetch) each unique target's upward label and
  // deposit its entries into per-node buckets. Counting pass, then fill —
  // the same CSR construction as the hierarchy's upward graphs.
  bucket_head_.assign(ch_.n_ + 1, 0);
  for (const NodeId t : uniq_targets_) {
    const ChEngine::Label& lbl =
        cache_.get(/*forward=*/false, t.value(), bound, builder_, settled_);
    for (const ChEngine::LabelEntry& e : lbl.entries) {
      ++bucket_head_[static_cast<std::size_t>(e.node) + 1];
    }
  }
  for (std::size_t v = 0; v < ch_.n_; ++v) bucket_head_[v + 1] += bucket_head_[v];
  buckets_.resize(static_cast<std::size_t>(bucket_head_[ch_.n_]));
  std::vector<std::int32_t> at(bucket_head_.begin(), bucket_head_.end() - 1);
  for (std::int32_t j = 0; j < t_count; ++j) {
    const ChEngine::Label& lbl = cache_.get(/*forward=*/false, uniq_targets_[j].value(),
                                            bound, builder_, settled_);
    for (const ChEngine::LabelEntry& e : lbl.entries) {
      buckets_[static_cast<std::size_t>(at[e.node]++)] = BucketEntry{j, e.dist};
    }
  }

  // Forward sweep: one upward scan per unique source, joined against the
  // buckets. Iterating the forward entries in ascending node order with a
  // strict `<` reproduces ChEngine::Query's two-pointer merge exactly —
  // same meet hub, same candidate values — because each bucket row holds at
  // most one entry per target.
  const std::size_t t_stride = targets.size();
  for (std::size_t i = 0; i < uniq_sources_.size(); ++i) {
    const ChEngine::Label& fwd = cache_.get(/*forward=*/true, uniq_sources_[i].value(),
                                            bound, builder_, settled_);
    best_.assign(static_cast<std::size_t>(t_count), kInfDistance);
    meet_.assign(static_cast<std::size_t>(t_count), -1);
    for (const ChEngine::LabelEntry& fe : fwd.entries) {
      const std::size_t node = static_cast<std::size_t>(fe.node);
      for (std::int32_t k = bucket_head_[node]; k < bucket_head_[node + 1]; ++k) {
        const BucketEntry& be = buckets_[static_cast<std::size_t>(k)];
        const double cand = fe.dist + be.dist;
        if (cand < best_[static_cast<std::size_t>(be.target)]) {
          best_[static_cast<std::size_t>(be.target)] = cand;
          meet_[static_cast<std::size_t>(be.target)] = fe.node;
        }
      }
    }
    // Resolve: unpack each winning up-down path and re-sum it sequentially
    // from the source — the exact accumulation Dijkstra performs along it.
    row_scratch_.assign(static_cast<std::size_t>(t_count), kInfDistance);
    for (std::int32_t j = 0; j < t_count; ++j) {
      if (meet_[static_cast<std::size_t>(j)] < 0) continue;
      const ChEngine::Label& bwd = cache_.get(
          /*forward=*/false, uniq_targets_[static_cast<std::size_t>(j)].value(), bound,
          builder_, settled_);
      leaves_scratch_.clear();
      ch_.unpack_updown(fwd, bwd, meet_[static_cast<std::size_t>(j)], leaves_scratch_);
      double total = 0.0;
      for (const std::int32_t ai : leaves_scratch_) {
        total += ch_.arcs_[static_cast<std::size_t>(ai)].w;
      }
      row_scratch_[static_cast<std::size_t>(j)] = total > bound ? kInfDistance : total;
    }
    // Fan the unique row out to every original row/column position.
    for (std::size_t r = 0; r < sources.size(); ++r) {
      if (row_uidx_[r] != static_cast<std::int32_t>(i)) continue;
      double* row = out.data() + r * t_stride;
      for (std::size_t c = 0; c < t_stride; ++c) {
        row[c] = row_scratch_[static_cast<std::size_t>(col_uidx_[c])];
      }
    }
  }
}

}  // namespace neat::roadnet
