#include "roadnet/shortest_path.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>

#include "common/error.h"
#include "roadnet/landmark_oracle.h"

namespace neat::roadnet {

namespace {

using HeapEntry = std::pair<double, std::int32_t>;  // (cost, node)
using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

double edge_weight(const RoadNetwork& net, const DirectedEdge& e, Metric metric) {
  const Segment& s = net.segment(e.sid);
  return metric == Metric::kDistance ? s.length : s.length / s.speed_limit;
}

}  // namespace

std::vector<NodeId> Route::node_path(const RoadNetwork& net) const {
  std::vector<NodeId> nodes;
  if (edges.empty()) return nodes;
  nodes.reserve(edges.size() + 1);
  nodes.push_back(net.edge(edges.front()).from);
  for (const EdgeId e : edges) nodes.push_back(net.edge(e).to);
  return nodes;
}

NodeDistanceOracle::NodeDistanceOracle(const RoadNetwork& net)
    : net_(net), dist_(net.node_count(), kInfDistance), stamp_(net.node_count(), 0) {}

double NodeDistanceOracle::search(NodeId s, std::span<const NodeId> targets,
                                  std::span<double> out, double bound,
                                  const LandmarkOracle* alt, bool first_only) {
  for (const NodeId t : targets) static_cast<void>(net_.node(t));
  ++computations_;
  // The ALT potential: a consistent lower bound on the distance from `u` to
  // the nearest target. With it the heap is keyed on f = g + h, turning the
  // Dijkstra into an A* that settles fewer nodes yet returns the exact same
  // distances (h is admissible and h(target) = 0). Without landmarks h = 0
  // and this is the plain bounded Dijkstra.
  const auto potential = [&](NodeId u) {
    return alt == nullptr ? 0.0 : alt->lower_bound_to_any(u, targets);
  };

  if (!out.empty()) std::fill(out.begin(), out.end(), kInfDistance);
  target_done_.assign(targets.size(), 0);
  std::size_t remaining = targets.size();
  for (std::size_t k = 0; k < targets.size(); ++k) {
    if (targets[k] != s) continue;
    if (first_only) return 0.0;
    out[k] = 0.0;
    target_done_[k] = 1;
    --remaining;
  }
  if (remaining == 0) return 0.0;

  ++generation_;
  const auto idx = [](NodeId n) { return static_cast<std::size_t>(n.value()); };
  dist_[idx(s)] = 0.0;
  stamp_[idx(s)] = generation_;

  MinHeap heap;
  heap.emplace(potential(s), s.value());
  while (!heap.empty()) {
    const auto [f, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    const double g = dist_[idx(u)];
    if (f > g + potential(u)) continue;  // stale entry (g improved since push)
    // f lower-bounds the cost of reaching any remaining target through `u`,
    // and pops are non-decreasing in f, so the whole frontier is out of
    // range. Unsettled targets keep kInfDistance.
    if (f > bound) break;
    ++settled_;
    for (std::size_t k = 0; k < targets.size(); ++k) {
      if (target_done_[k] || targets[k] != u) continue;
      if (first_only) return g;
      out[k] = g;
      target_done_[k] = 1;
      if (--remaining == 0) return 0.0;
    }
    for (const SegmentId sid : net_.segments_at(u)) {
      const Segment& seg = net_.segment(sid);
      const NodeId v = (seg.a == u) ? seg.b : seg.a;
      const double nd = g + seg.length;
      if (stamp_[idx(v)] != generation_ || nd < dist_[idx(v)]) {
        dist_[idx(v)] = nd;
        stamp_[idx(v)] = generation_;
        heap.emplace(nd + potential(v), v.value());
      }
    }
  }
  return kInfDistance;
}

double NodeDistanceOracle::distance(NodeId s, NodeId t, double bound,
                                    const LandmarkOracle* alt) {
  static_cast<void>(net_.node(s));
  const NodeId targets[1] = {t};
  return search(s, targets, {}, bound, alt, /*first_only=*/true);
}

double NodeDistanceOracle::distance_to_any(NodeId s, std::span<const NodeId> targets,
                                           double bound, const LandmarkOracle* alt) {
  static_cast<void>(net_.node(s));
  if (targets.empty()) return kInfDistance;  // nothing to reach; no search issued
  return search(s, targets, {}, bound, alt, /*first_only=*/true);
}

void NodeDistanceOracle::distances(NodeId s, std::span<const NodeId> targets,
                                   std::span<double> out, double bound,
                                   const LandmarkOracle* alt) {
  static_cast<void>(net_.node(s));
  NEAT_EXPECT(out.size() == targets.size(),
              "NodeDistanceOracle::distances: out.size() must equal targets.size()");
  if (targets.empty()) return;
  static_cast<void>(search(s, targets, out, bound, alt, /*first_only=*/false));
}

void NodeDistanceOracle::reset_counters() {
  computations_ = 0;
  settled_ = 0;
}

double node_distance(const RoadNetwork& net, NodeId s, NodeId t, double bound) {
  NodeDistanceOracle oracle(net);
  return oracle.distance(s, t, bound);
}

std::optional<std::vector<NodeId>> shortest_node_path(const RoadNetwork& net, NodeId s,
                                                      NodeId t, double bound) {
  static_cast<void>(net.node(s));
  static_cast<void>(net.node(t));
  if (s == t) return std::vector<NodeId>{s};

  const std::size_t n = net.node_count();
  std::vector<double> dist(n, kInfDistance);
  std::vector<NodeId> parent(n, NodeId::invalid());
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  dist[idx(s)] = 0.0;
  MinHeap heap;
  heap.emplace(0.0, s.value());
  while (!heap.empty()) {
    const auto [d, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    if (d > dist[idx(u)]) continue;
    if (d > bound) return std::nullopt;
    if (u == t) break;
    for (const SegmentId sid : net.segments_at(u)) {
      const Segment& seg = net.segment(sid);
      const NodeId v = (seg.a == u) ? seg.b : seg.a;
      const double nd = d + seg.length;
      if (nd < dist[idx(v)]) {
        dist[idx(v)] = nd;
        parent[idx(v)] = u;
        heap.emplace(nd, v.value());
      }
    }
  }
  if (dist[idx(t)] == kInfDistance) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId cur = t; cur.valid(); cur = parent[idx(cur)]) path.push_back(cur);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<Route> shortest_route(const RoadNetwork& net, NodeId s, NodeId t,
                                    Metric metric, double max_cost) {
  static_cast<void>(net.node(s));
  static_cast<void>(net.node(t));
  const std::size_t n = net.node_count();
  std::vector<double> cost(n, kInfDistance);
  std::vector<EdgeId> parent(n, EdgeId::invalid());
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  cost[idx(s)] = 0.0;
  MinHeap heap;
  heap.emplace(0.0, s.value());
  while (!heap.empty()) {
    const auto [d, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    if (d > cost[idx(u)]) continue;
    if (d > max_cost) return std::nullopt;
    if (u == t) break;
    for (const EdgeId eid : net.out_edges(u)) {
      const DirectedEdge& e = net.edge(eid);
      const double nd = d + edge_weight(net, e, metric);
      if (nd < cost[idx(e.to)]) {
        cost[idx(e.to)] = nd;
        parent[idx(e.to)] = eid;
        heap.emplace(nd, e.to.value());
      }
    }
  }
  if (cost[idx(t)] == kInfDistance) return std::nullopt;

  Route route;
  for (NodeId cur = t; cur != s;) {
    const EdgeId eid = parent[idx(cur)];
    route.edges.push_back(eid);
    cur = net.edge(eid).from;
  }
  std::reverse(route.edges.begin(), route.edges.end());
  for (const EdgeId eid : route.edges) {
    const Segment& seg = net.segment(net.edge(eid).sid);
    route.length += seg.length;
    route.travel_time += seg.length / seg.speed_limit;
  }
  return route;
}

SsspTree::SsspTree(const RoadNetwork& net, NodeId source, Metric metric)
    : net_(net),
      source_(source),
      cost_(net.node_count(), kInfDistance),
      parent_edge_(net.node_count(), EdgeId::invalid()) {
  static_cast<void>(net.node(source));
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  cost_[idx(source)] = 0.0;
  MinHeap heap;
  heap.emplace(0.0, source.value());
  while (!heap.empty()) {
    const auto [d, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    if (d > cost_[idx(u)]) continue;
    for (const EdgeId eid : net.out_edges(u)) {
      const DirectedEdge& e = net.edge(eid);
      const double nd = d + edge_weight(net, e, metric);
      if (nd < cost_[idx(e.to)]) {
        cost_[idx(e.to)] = nd;
        parent_edge_[idx(e.to)] = eid;
        heap.emplace(nd, e.to.value());
      }
    }
  }
}

bool SsspTree::reachable(NodeId t) const { return cost(t) < kInfDistance; }

double SsspTree::cost(NodeId t) const {
  static_cast<void>(net_.node(t));
  return cost_[static_cast<std::size_t>(t.value())];
}

std::optional<Route> SsspTree::route_to(NodeId t) const {
  if (!reachable(t)) return std::nullopt;
  Route route;
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  for (NodeId cur = t; cur != source_;) {
    const EdgeId eid = parent_edge_[idx(cur)];
    route.edges.push_back(eid);
    cur = net_.edge(eid).from;
  }
  std::reverse(route.edges.begin(), route.edges.end());
  for (const EdgeId eid : route.edges) {
    const Segment& seg = net_.segment(net_.edge(eid).sid);
    route.length += seg.length;
    route.travel_time += seg.length / seg.speed_limit;
  }
  return route;
}

std::optional<Route> astar_route(const RoadNetwork& net, NodeId s, NodeId t,
                                 Metric metric) {
  static_cast<void>(net.node(s));
  static_cast<void>(net.node(t));

  // Heuristic scale: metres for distance, metres / max speed for time.
  double speed_cap = 0.0;
  if (metric == Metric::kTravelTime) {
    for (const Segment& seg : net.segments()) speed_cap = std::max(speed_cap, seg.speed_limit);
    if (speed_cap <= 0.0) return std::nullopt;
  }
  const Point goal = net.node(t).pos;
  const auto heuristic = [&](NodeId u) {
    const double d = distance(net.node(u).pos, goal);
    return metric == Metric::kDistance ? d : d / speed_cap;
  };

  const std::size_t n = net.node_count();
  std::vector<double> cost(n, kInfDistance);  // g-scores
  std::vector<EdgeId> parent(n, EdgeId::invalid());
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  cost[idx(s)] = 0.0;
  MinHeap heap;  // keyed on f = g + h
  heap.emplace(heuristic(s), s.value());
  while (!heap.empty()) {
    const auto [f, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    if (u == t) break;
    if (f > cost[idx(u)] + heuristic(u) + 1e-9) continue;  // stale entry
    for (const EdgeId eid : net.out_edges(u)) {
      const DirectedEdge& e = net.edge(eid);
      const double nd = cost[idx(u)] + edge_weight(net, e, metric);
      if (nd < cost[idx(e.to)]) {
        cost[idx(e.to)] = nd;
        parent[idx(e.to)] = eid;
        heap.emplace(nd + heuristic(e.to), e.to.value());
      }
    }
  }
  if (cost[idx(t)] == kInfDistance) return std::nullopt;

  Route route;
  for (NodeId cur = t; cur != s;) {
    const EdgeId eid = parent[idx(cur)];
    route.edges.push_back(eid);
    cur = net.edge(eid).from;
  }
  std::reverse(route.edges.begin(), route.edges.end());
  for (const EdgeId eid : route.edges) {
    const Segment& seg = net.segment(net.edge(eid).sid);
    route.length += seg.length;
    route.travel_time += seg.length / seg.speed_limit;
  }
  return route;
}

double location_distance(const RoadNetwork& net, NetworkLocation a, NetworkLocation b,
                         NodeDistanceOracle& oracle) {
  const Segment& sa = net.segment(a.sid);
  const Segment& sb = net.segment(b.sid);
  const double oa = std::clamp(a.offset, 0.0, sa.length);
  const double ob = std::clamp(b.offset, 0.0, sb.length);
  if (a.sid == b.sid) return std::fabs(oa - ob);

  // Legs from each location to its segment's endpoints.
  const std::array<std::pair<NodeId, double>, 2> ends_a{
      std::pair{sa.a, oa}, std::pair{sa.b, sa.length - oa}};
  const std::array<std::pair<NodeId, double>, 2> ends_b{
      std::pair{sb.a, ob}, std::pair{sb.b, sb.length - ob}};
  double best = kInfDistance;
  for (const auto& [u, leg_a] : ends_a) {
    for (const auto& [v, leg_b] : ends_b) {
      const double mid = (u == v) ? 0.0 : oracle.distance(u, v);
      if (mid < kInfDistance) best = std::min(best, leg_a + mid + leg_b);
    }
  }
  return best;
}

double location_distance(const RoadNetwork& net, NetworkLocation a, NetworkLocation b) {
  NodeDistanceOracle oracle(net);
  return location_distance(net, a, b, oracle);
}

ReverseSsspTree::ReverseSsspTree(const RoadNetwork& net, NodeId target, Metric metric)
    : net_(net),
      target_(target),
      cost_(net.node_count(), kInfDistance),
      next_edge_(net.node_count(), EdgeId::invalid()) {
  static_cast<void>(net.node(target));
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  cost_[idx(target)] = 0.0;
  MinHeap heap;
  heap.emplace(0.0, target.value());
  while (!heap.empty()) {
    const auto [d, u_raw] = heap.top();
    heap.pop();
    const auto u = NodeId(u_raw);
    if (d > cost_[idx(u)]) continue;
    for (const EdgeId eid : net.in_edges(u)) {
      const DirectedEdge& e = net.edge(eid);  // e.from -> u
      const double nd = d + edge_weight(net, e, metric);
      if (nd < cost_[idx(e.from)]) {
        cost_[idx(e.from)] = nd;
        next_edge_[idx(e.from)] = eid;
        heap.emplace(nd, e.from.value());
      }
    }
  }
}

bool ReverseSsspTree::reachable_from(NodeId s) const { return cost_from(s) < kInfDistance; }

double ReverseSsspTree::cost_from(NodeId s) const {
  static_cast<void>(net_.node(s));
  return cost_[static_cast<std::size_t>(s.value())];
}

std::optional<Route> ReverseSsspTree::route_from(NodeId s) const {
  if (!reachable_from(s)) return std::nullopt;
  Route route;
  const auto idx = [](NodeId x) { return static_cast<std::size_t>(x.value()); };
  for (NodeId cur = s; cur != target_;) {
    const EdgeId eid = next_edge_[idx(cur)];
    route.edges.push_back(eid);
    cur = net_.edge(eid).to;
  }
  for (const EdgeId eid : route.edges) {
    const Segment& seg = net_.segment(net_.edge(eid).sid);
    route.length += seg.length;
    route.travel_time += seg.length / seg.speed_limit;
  }
  return route;
}

}  // namespace neat::roadnet
