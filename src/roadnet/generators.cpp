#include "roadnet/generators.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "roadnet/builder.h"

namespace neat::roadnet {

namespace {

enum class RoadClass { kLocal, kCollector, kArterial };

struct CandidateEdge {
  int u;  ///< Lattice index of the first node.
  int v;  ///< Lattice index of the second node.
  RoadClass cls;
  bool bidirectional;
};

RoadClass classify(int fixed_index, const CityParams& p) {
  if (fixed_index % p.arterial_period == 0) return RoadClass::kArterial;
  if (fixed_index % p.collector_period == 0) return RoadClass::kCollector;
  return RoadClass::kLocal;
}

double class_speed(RoadClass cls, const CityParams& p) {
  switch (cls) {
    case RoadClass::kArterial: return p.arterial_speed_mps;
    case RoadClass::kCollector: return p.collector_speed_mps;
    case RoadClass::kLocal: return p.local_speed_mps;
  }
  return p.local_speed_mps;
}

double keep_probability(RoadClass cls, const CityParams& p) {
  switch (cls) {
    case RoadClass::kArterial: return 1.0;
    case RoadClass::kCollector:
      return std::min(1.0, p.local_keep_probability + p.collector_keep_bonus);
    case RoadClass::kLocal: return p.local_keep_probability;
  }
  return p.local_keep_probability;
}

}  // namespace

RoadNetwork make_city(const CityParams& p) {
  NEAT_EXPECT(p.rows >= 2 && p.cols >= 2, "make_city: lattice must be at least 2x2");
  NEAT_EXPECT(p.spacing_m > 0.0, "make_city: spacing must be positive");
  NEAT_EXPECT(p.arterial_period >= 1 && p.collector_period >= 1,
              "make_city: periods must be at least 1");
  Rng rng(p.seed);

  const int n_lattice = p.rows * p.cols;
  const auto lattice_index = [&](int r, int c) { return r * p.cols + c; };

  // 1. Jittered node positions.
  std::vector<Point> pos(static_cast<std::size_t>(n_lattice));
  const double jitter = p.jitter_frac * p.spacing_m;
  for (int r = 0; r < p.rows; ++r) {
    for (int c = 0; c < p.cols; ++c) {
      pos[static_cast<std::size_t>(lattice_index(r, c))] = {
          c * p.spacing_m + rng.uniform(-jitter, jitter),
          r * p.spacing_m + rng.uniform(-jitter, jitter)};
    }
  }

  // 2. Candidate edges with hierarchy-aware retention.
  std::vector<CandidateEdge> kept;
  kept.reserve(static_cast<std::size_t>(n_lattice) * 2);
  for (int r = 0; r < p.rows; ++r) {
    for (int c = 0; c < p.cols; ++c) {
      // Horizontal edge (r, c) -> (r, c + 1): its class follows the row.
      if (c + 1 < p.cols) {
        const RoadClass cls = classify(r, p);
        if (rng.bernoulli(keep_probability(cls, p))) {
          const bool oneway =
              cls == RoadClass::kLocal && rng.bernoulli(p.oneway_probability);
          kept.push_back({lattice_index(r, c), lattice_index(r, c + 1), cls, !oneway});
        }
      }
      // Vertical edge (r, c) -> (r + 1, c): its class follows the column.
      if (r + 1 < p.rows) {
        const RoadClass cls = classify(c, p);
        if (rng.bernoulli(keep_probability(cls, p))) {
          const bool oneway =
              cls == RoadClass::kLocal && rng.bernoulli(p.oneway_probability);
          kept.push_back({lattice_index(r, c), lattice_index(r + 1, c), cls, !oneway});
        }
      }
      // Sparse diagonals raise junction degrees above the lattice's 4.
      if (r + 1 < p.rows && c + 1 < p.cols && rng.bernoulli(p.diagonal_probability)) {
        kept.push_back({lattice_index(r, c), lattice_index(r + 1, c + 1),
                        RoadClass::kLocal, true});
      }
      if (p.anti_diagonals && r + 1 < p.rows && c >= 1 &&
          rng.bernoulli(p.diagonal_probability)) {
        kept.push_back({lattice_index(r, c), lattice_index(r + 1, c - 1),
                        RoadClass::kLocal, true});
      }
    }
  }

  // 3. Largest connected component over the undirected skeleton.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n_lattice));
  for (std::size_t i = 0; i < kept.size(); ++i) {
    adj[static_cast<std::size_t>(kept[i].u)].push_back(static_cast<int>(i));
    adj[static_cast<std::size_t>(kept[i].v)].push_back(static_cast<int>(i));
  }
  std::vector<int> component(static_cast<std::size_t>(n_lattice), -1);
  int n_components = 0;
  std::vector<int> component_size;
  for (int start = 0; start < n_lattice; ++start) {
    if (component[static_cast<std::size_t>(start)] != -1 ||
        adj[static_cast<std::size_t>(start)].empty()) {
      continue;
    }
    const int comp = n_components++;
    component_size.push_back(0);
    std::queue<int> frontier;
    frontier.push(start);
    component[static_cast<std::size_t>(start)] = comp;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      ++component_size[static_cast<std::size_t>(comp)];
      for (const int ei : adj[static_cast<std::size_t>(u)]) {
        const CandidateEdge& e = kept[static_cast<std::size_t>(ei)];
        const int w = (e.u == u) ? e.v : e.u;
        if (component[static_cast<std::size_t>(w)] == -1) {
          component[static_cast<std::size_t>(w)] = comp;
          frontier.push(w);
        }
      }
    }
  }
  NEAT_EXPECT(n_components > 0, "make_city: generated an empty network");
  const int biggest = static_cast<int>(
      std::max_element(component_size.begin(), component_size.end()) -
      component_size.begin());

  // 4. Relabel and build.
  RoadNetworkBuilder builder;
  std::vector<NodeId> node_of(static_cast<std::size_t>(n_lattice), NodeId::invalid());
  for (int i = 0; i < n_lattice; ++i) {
    if (component[static_cast<std::size_t>(i)] == biggest) {
      node_of[static_cast<std::size_t>(i)] = builder.add_node(pos[static_cast<std::size_t>(i)]);
    }
  }
  for (const CandidateEdge& e : kept) {
    const NodeId a = node_of[static_cast<std::size_t>(e.u)];
    const NodeId b = node_of[static_cast<std::size_t>(e.v)];
    if (!a.valid() || !b.valid()) continue;
    builder.add_segment(a, b, class_speed(e.cls, p), e.bidirectional);
  }
  return builder.build();
}

RoadNetwork make_grid(int rows, int cols, double spacing_m, double speed_mps) {
  NEAT_EXPECT(rows >= 1 && cols >= 1, "make_grid: dimensions must be positive");
  NEAT_EXPECT(spacing_m > 0.0, "make_grid: spacing must be positive");
  RoadNetworkBuilder builder;
  std::vector<NodeId> nodes(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      nodes[static_cast<std::size_t>(r * cols + c)] =
          builder.add_node({c * spacing_m, r * spacing_m});
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_segment(nodes[static_cast<std::size_t>(r * cols + c)],
                            nodes[static_cast<std::size_t>(r * cols + c + 1)], speed_mps);
      }
      if (r + 1 < rows) {
        builder.add_segment(nodes[static_cast<std::size_t>(r * cols + c)],
                            nodes[static_cast<std::size_t>((r + 1) * cols + c)], speed_mps);
      }
    }
  }
  return builder.build();
}

namespace {

int scaled_dim(int dim, double scale) {
  NEAT_EXPECT(scale > 0.0 && scale <= 1.0, "preset scale must be in (0, 1]");
  return std::max(8, static_cast<int>(std::lround(dim * std::sqrt(scale))));
}

}  // namespace

CityParams atl_params(double scale) {
  CityParams p;
  p.rows = scaled_dim(85, scale);
  p.cols = scaled_dim(85, scale);
  p.spacing_m = 148.0;
  p.local_keep_probability = 0.56;
  p.collector_keep_bonus = 0.15;
  p.arterial_period = 8;
  p.collector_period = 4;
  p.diagonal_probability = 0.02;
  p.anti_diagonals = false;
  p.oneway_probability = 0.02;
  p.seed = 42;
  return p;
}

CityParams sj_params(double scale) {
  CityParams p;
  p.rows = scaled_dim(105, scale);
  p.cols = scaled_dim(105, scale);
  p.spacing_m = 122.5;
  p.local_keep_probability = 0.59;
  p.collector_keep_bonus = 0.15;
  p.arterial_period = 8;
  p.collector_period = 4;
  p.diagonal_probability = 0.02;
  p.anti_diagonals = false;
  p.oneway_probability = 0.02;
  p.seed = 43;
  return p;
}

CityParams mia_params(double scale) {
  CityParams p;
  p.rows = scaled_dim(325, scale);
  p.cols = scaled_dim(325, scale);
  p.spacing_m = 167.0;
  p.local_keep_probability = 0.67;
  p.collector_keep_bonus = 0.15;
  p.arterial_period = 10;
  p.collector_period = 5;
  p.diagonal_probability = 0.03;
  p.anti_diagonals = true;
  p.oneway_probability = 0.02;
  p.seed = 44;
  return p;
}

RoadNetwork make_radial_city(const RadialCityParams& p) {
  NEAT_EXPECT(p.rings >= 1 && p.spokes >= 3, "make_radial_city: need >=1 ring, >=3 spokes");
  NEAT_EXPECT(p.ring_spacing_m > 0.0, "make_radial_city: spacing must be positive");
  Rng rng(p.seed);

  // Lattice in polar coordinates: node (r, s) sits on ring r at spoke s;
  // index 0 is the center.
  const auto polar_index = [&](int r, int s) { return 1 + (r - 1) * p.spokes + s; };
  const int n_nodes = 1 + p.rings * p.spokes;
  std::vector<Point> pos(static_cast<std::size_t>(n_nodes));
  pos[0] = {0.0, 0.0};
  const double jitter = p.jitter_frac * p.ring_spacing_m;
  for (int r = 1; r <= p.rings; ++r) {
    for (int s = 0; s < p.spokes; ++s) {
      const double angle = 2.0 * M_PI * s / p.spokes + rng.uniform(-0.02, 0.02);
      const double radius = r * p.ring_spacing_m + rng.uniform(-jitter, jitter);
      pos[static_cast<std::size_t>(polar_index(r, s))] = {radius * std::cos(angle),
                                                          radius * std::sin(angle)};
    }
  }

  struct Candidate {
    int u, v;
    double speed;
  };
  std::vector<Candidate> kept;
  for (int s = 0; s < p.spokes; ++s) {
    // Radial segments: center -> ring1 -> ring2 -> ...
    if (rng.bernoulli(p.spoke_keep_probability)) {
      kept.push_back({0, polar_index(1, s), p.radial_speed_mps});
    }
    for (int r = 2; r <= p.rings; ++r) {
      if (rng.bernoulli(p.spoke_keep_probability)) {
        kept.push_back({polar_index(r - 1, s), polar_index(r, s), p.radial_speed_mps});
      }
    }
    // Ring segments: (r, s) -> (r, s+1).
    for (int r = 1; r <= p.rings; ++r) {
      if (rng.bernoulli(p.ring_keep_probability)) {
        kept.push_back({polar_index(r, s), polar_index(r, (s + 1) % p.spokes),
                        p.ring_speed_mps});
      }
    }
  }

  // Largest connected component (same scheme as make_city).
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n_nodes));
  for (std::size_t i = 0; i < kept.size(); ++i) {
    adj[static_cast<std::size_t>(kept[i].u)].push_back(static_cast<int>(i));
    adj[static_cast<std::size_t>(kept[i].v)].push_back(static_cast<int>(i));
  }
  std::vector<int> component(static_cast<std::size_t>(n_nodes), -1);
  std::vector<int> component_size;
  for (int start = 0; start < n_nodes; ++start) {
    if (component[static_cast<std::size_t>(start)] != -1 ||
        adj[static_cast<std::size_t>(start)].empty()) {
      continue;
    }
    const int comp = static_cast<int>(component_size.size());
    component_size.push_back(0);
    std::queue<int> frontier;
    frontier.push(start);
    component[static_cast<std::size_t>(start)] = comp;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      ++component_size[static_cast<std::size_t>(comp)];
      for (const int ei : adj[static_cast<std::size_t>(u)]) {
        const Candidate& e = kept[static_cast<std::size_t>(ei)];
        const int w = (e.u == u) ? e.v : e.u;
        if (component[static_cast<std::size_t>(w)] == -1) {
          component[static_cast<std::size_t>(w)] = comp;
          frontier.push(w);
        }
      }
    }
  }
  NEAT_EXPECT(!component_size.empty(), "make_radial_city: generated an empty network");
  const int biggest = static_cast<int>(
      std::max_element(component_size.begin(), component_size.end()) -
      component_size.begin());

  RoadNetworkBuilder builder;
  std::vector<NodeId> node_of(static_cast<std::size_t>(n_nodes), NodeId::invalid());
  for (int i = 0; i < n_nodes; ++i) {
    if (component[static_cast<std::size_t>(i)] == biggest) {
      node_of[static_cast<std::size_t>(i)] = builder.add_node(pos[static_cast<std::size_t>(i)]);
    }
  }
  for (const Candidate& e : kept) {
    const NodeId a = node_of[static_cast<std::size_t>(e.u)];
    const NodeId b = node_of[static_cast<std::size_t>(e.v)];
    if (a.valid() && b.valid()) builder.add_segment(a, b, e.speed);
  }
  return builder.build();
}

RoadNetwork make_named_city(std::string_view name, double scale) {
  if (name == "ATL") return make_city(atl_params(scale));
  if (name == "SJ") return make_city(sj_params(scale));
  if (name == "MIA") return make_city(mia_params(scale));
  throw PreconditionError(str_cat("unknown city preset: '", std::string(name),
                                  "' (expected ATL, SJ or MIA)"));
}

}  // namespace neat::roadnet
