// ALT-style landmark distance bounds (the "A*, Landmarks, Triangle
// inequality" technique of Goldberg & Harrelson).
//
// A LandmarkOracle precomputes the exact undirected network distance from K
// landmark junctions to every junction. For any query pair (s, t) the
// triangle inequality gives an *admissible* lower bound
//
//     d_N(s, t) >= |d_N(L, s) - d_N(L, t)|        for every landmark L,
//
// and the maximum over landmarks is the oracle's bound. It complements
// NEAT's Euclidean lower bound (ELB, paper §III-C.3): ELB is tight only when
// the shortest path is nearly straight, while the landmark bound follows
// network geodesics — on grid-like city networks, where network distance
// approaches the Manhattan distance, it is routinely ~sqrt(2) tighter. The
// same tables serve as consistent A* potentials, so the Dijkstra runs that
// survive pruning settle fewer nodes while returning the exact distances.
//
// Landmarks are chosen by deterministic farthest-point selection, which
// pushes them to the network periphery where the bounds are tightest.
// Construction costs K + 1 full Dijkstra runs and K * |V| doubles of memory;
// instances are immutable afterwards and safe to share across threads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.h"
#include "roadnet/road_network.h"

namespace neat::roadnet {

/// Precomputed landmark distance tables over one road network.
class LandmarkOracle {
 public:
  /// Selects min(num_landmarks, reachable junctions) landmarks and runs one
  /// full undirected Dijkstra per landmark. Keeps a reference to the
  /// network; do not outlive it. Throws neat::PreconditionError when
  /// `num_landmarks` < 1 or the network has no junctions.
  explicit LandmarkOracle(const RoadNetwork& net, int num_landmarks = kDefaultLandmarks);

  static constexpr int kDefaultLandmarks = 8;

  /// Lower bound on the undirected network distance d_N(s, t): the best
  /// triangle-inequality bound over all landmarks. Returns kInfDistance when
  /// the tables prove s and t lie in different connected components; returns
  /// 0.0 when no landmark sees either node (never overestimates).
  [[nodiscard]] double lower_bound(NodeId s, NodeId t) const;

  /// Lower bound on min over `targets` of d_N(u, target) — the consistent
  /// A* potential for one-to-many searches. Empty target sets bound nothing
  /// (returns 0.0).
  [[nodiscard]] double lower_bound_to_any(NodeId u, std::span<const NodeId> targets) const;

  /// The selected landmark junctions (deterministic for a given network).
  [[nodiscard]] const std::vector<NodeId>& landmarks() const { return landmarks_; }

  [[nodiscard]] std::size_t landmark_count() const { return landmarks_.size(); }

  /// Exact distance from landmark `i` to junction `n` (kInfDistance when
  /// unreachable). Exposed for tests.
  [[nodiscard]] double landmark_distance(std::size_t i, NodeId n) const;

 private:
  const RoadNetwork& net_;
  std::vector<NodeId> landmarks_;
  /// Row-major K x node_count table of exact distances.
  std::vector<double> dist_;
  std::size_t stride_{0};
};

}  // namespace neat::roadnet
