// Synthetic road-network generators.
//
// The paper evaluates on three real maps — North West Atlanta (USGS), West
// San Jose (USGS) and Miami-Dade (TIGER/Line) — summarized by the statistics
// of its Table I. Those map files are not redistributable, so this module
// generates networks with matched statistics instead: a jittered lattice with
// an arterial / collector / local road hierarchy, random local-street
// drop-out (creating dead ends and irregular blocks), sparse diagonal links
// (raising junction degree above 4), occasional one-way streets, and
// per-class speed limits. NEAT's behaviour depends on segment counts,
// junction degrees, route-length distributions and speed classes — all of
// which the presets reproduce — not on absolute coordinates.
#pragma once

#include <cstdint>
#include <string_view>

#include "roadnet/road_network.h"

namespace neat::roadnet {

/// Parameters of the synthetic city generator.
struct CityParams {
  int rows{50};                       ///< Lattice rows.
  int cols{50};                       ///< Lattice columns.
  double spacing_m{150.0};            ///< Nominal block edge length.
  double jitter_frac{0.15};           ///< Node jitter as a fraction of spacing.
  double local_keep_probability{0.6}; ///< Retention of local-street edges.
  double collector_keep_bonus{0.15};  ///< Added to retention for collectors.
  int arterial_period{8};             ///< Every k-th row/col is an arterial.
  int collector_period{4};            ///< Every k-th row/col is (at least) a collector.
  double diagonal_probability{0.02};  ///< Chance a node sports a NE diagonal.
  bool anti_diagonals{false};         ///< Also allow NW diagonals (denser cities).
  double oneway_probability{0.02};    ///< Chance a local street is one-way.
  double arterial_speed_mps{22.2};    ///< ~80 km/h.
  double collector_speed_mps{16.7};   ///< ~60 km/h.
  double local_speed_mps{11.1};       ///< ~40 km/h.
  std::uint64_t seed{1};
};

/// Generates a city network: builds the lattice, applies the hierarchy and
/// drop-out, then keeps only the largest connected component (so every pair
/// of junctions is connected ignoring one-way restrictions).
[[nodiscard]] RoadNetwork make_city(const CityParams& params);

/// Full rectangular lattice with uniform spacing and speed — deterministic,
/// no drop-out. Convenient for unit tests. Node ids are row-major.
[[nodiscard]] RoadNetwork make_grid(int rows, int cols, double spacing_m,
                                    double speed_mps = 13.9);

/// Preset matched to Table I "North West Atlanta, GA" (9187 segments, 6979
/// junctions, 1384 km, avg segment 150.7 m, degree avg 2.6 / max 6).
/// `scale` in (0, 1] shrinks linear dimensions so segment counts scale
/// roughly linearly with it.
[[nodiscard]] CityParams atl_params(double scale = 1.0);

/// Preset matched to Table I "West San Jose, CA" (14600 segments, 10929
/// junctions, 1821 km, avg segment 124.7 m, degree avg 2.7 / max 6).
[[nodiscard]] CityParams sj_params(double scale = 1.0);

/// Preset matched to Table I "Miami-Dade, FL" (154681 segments, 103377
/// junctions, 26148 km, avg segment 169.0 m, degree avg 3.0 / max 9).
[[nodiscard]] CityParams mia_params(double scale = 1.0);

/// Builds one of the named presets: "ATL", "SJ" or "MIA".
/// Throws neat::PreconditionError for unknown names.
[[nodiscard]] RoadNetwork make_named_city(std::string_view name, double scale = 1.0);

/// Parameters of the radial ("spider web") city generator: concentric ring
/// roads crossed by radial arterials — the classic European-city topology,
/// complementing the lattice generator for robustness testing.
struct RadialCityParams {
  int rings{8};                       ///< Number of concentric rings.
  int spokes{12};                     ///< Radial roads.
  double ring_spacing_m{300.0};       ///< Distance between rings.
  double jitter_frac{0.05};           ///< Node jitter as a fraction of spacing.
  double ring_keep_probability{0.9};  ///< Retention of ring-road segments.
  double spoke_keep_probability{0.97};///< Retention of radial segments.
  double radial_speed_mps{22.2};      ///< Spokes are arterials.
  double ring_speed_mps{13.9};        ///< Rings are collectors.
  std::uint64_t seed{1};
};

/// Generates a radial city; keeps only the largest connected component.
[[nodiscard]] RoadNetwork make_radial_city(const RadialCityParams& params);

}  // namespace neat::roadnet
