// The road-network graph model of the NEAT paper (§II-A).
//
// A road network is a directed graph G = (V, E) of junction nodes and
// directed edges, where a *road segment* (identified by SegmentId, the
// paper's `sid`) contributes one directed edge per travel direction; both
// directions of a bidirectional segment share the same sid. NEAT's
// clustering operates at the segment level (base clusters are keyed by sid),
// while the mobility simulator routes over directed edges.
//
// The class exposes the paper's primitive operations:
//   * L_n(e)  — adjacent segments of segment e at junction n
//               (`adjacent_segments`),
//   * L(e)    — adjacency at either endpoint (union of the two calls),
//   * I(e,e') — the shared junction of two adjacent segments
//               (`shared_junction`).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"

namespace neat::roadnet {

/// A road junction.
struct Node {
  Point pos;
};

/// An undirected road segment between two junctions. Geometry is the straight
/// line between the endpoint positions; `length` may exceed the straight-line
/// distance (curvy roads) but never undercuts it, preserving the Euclidean
/// lower bound used by NEAT Phase 3.
struct Segment {
  NodeId a;                  ///< First endpoint (travel origin if one-way).
  NodeId b;                  ///< Second endpoint.
  double length{0.0};        ///< Metres.
  double speed_limit{13.9};  ///< Metres/second.
  bool bidirectional{true};  ///< False: traversable only a -> b.
};

/// One travel direction of a segment.
struct DirectedEdge {
  SegmentId sid;
  NodeId from;
  NodeId to;
};

/// Aggregate statistics in the shape of the paper's Table I.
struct NetworkStats {
  std::size_t num_segments{0};
  std::size_t num_junctions{0};
  double total_length_km{0.0};
  double avg_segment_length_m{0.0};
  double avg_junction_degree{0.0};
  int max_junction_degree{0};
};

/// Axis-aligned bounding box of the network geometry.
struct Bounds {
  Point min;
  Point max;
};

/// Immutable road-network graph. Build instances with RoadNetworkBuilder or
/// load them with roadnet::load_network.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Constructs from parts; validates endpoint ids, lengths and speeds.
  /// Throws neat::PreconditionError on malformed input. Prefer the builder.
  RoadNetwork(std::vector<Node> nodes, std::vector<Segment> segments);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Junction accessor. Throws neat::NotFoundError for invalid ids.
  [[nodiscard]] const Node& node(NodeId id) const;
  /// Segment accessor. Throws neat::NotFoundError for invalid ids.
  [[nodiscard]] const Segment& segment(SegmentId id) const;
  /// Directed-edge accessor. Throws neat::NotFoundError for invalid ids.
  [[nodiscard]] const DirectedEdge& edge(EdgeId id) const;

  /// Length of a segment in metres.
  [[nodiscard]] double segment_length(SegmentId id) const { return segment(id).length; }

  /// Speed limit of a segment in metres/second.
  [[nodiscard]] double segment_speed(SegmentId id) const { return segment(id).speed_limit; }

  /// Geometric point at `offset` metres from endpoint `a` along the segment
  /// (clamped to [0, length]).
  [[nodiscard]] Point point_on_segment(SegmentId id, double offset) const;

  /// Offset (from endpoint `a`) of the projection of `p` onto the segment,
  /// plus the projection distance via `out_dist` when non-null.
  [[nodiscard]] double project_to_segment(SegmentId id, Point p,
                                          double* out_dist = nullptr) const;

  // --- segment-level (undirected) topology: the NEAT primitives ------------

  /// All segments incident to junction `n` (the junction's star).
  [[nodiscard]] std::span<const SegmentId> segments_at(NodeId n) const;

  /// The paper's L_n(e): segments adjacent to `s` at its endpoint `n`,
  /// excluding `s` itself. `n` must be an endpoint of `s`.
  [[nodiscard]] std::vector<SegmentId> adjacent_segments(SegmentId s, NodeId n) const;

  /// The paper's I(ei, ej): the junction shared by two distinct segments, or
  /// NodeId::invalid() when they are not adjacent. When the segments share
  /// both endpoints (parallel segments) the endpoint with the smaller id is
  /// returned, deterministically.
  [[nodiscard]] NodeId shared_junction(SegmentId s1, SegmentId s2) const;

  /// True when the two distinct segments share at least one junction.
  [[nodiscard]] bool are_adjacent(SegmentId s1, SegmentId s2) const;

  /// The endpoint of `s` that is not `n`. `n` must be an endpoint of `s`.
  [[nodiscard]] NodeId other_endpoint(SegmentId s, NodeId n) const;

  /// True when `n` is an endpoint of `s`.
  [[nodiscard]] bool is_endpoint(SegmentId s, NodeId n) const;

  /// Number of segments incident to the junction.
  [[nodiscard]] int junction_degree(NodeId n) const;

  // --- directed topology: used by routing / simulation ----------------------

  /// Directed edges leaving junction `n`.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId n) const;

  /// Directed edges entering junction `n`.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId n) const;

  /// The a->b directed edge of a segment.
  [[nodiscard]] EdgeId forward_edge(SegmentId s) const;

  /// The b->a directed edge, or EdgeId::invalid() for one-way segments.
  [[nodiscard]] EdgeId backward_edge(SegmentId s) const;

  /// The directed edge of segment `s` leaving node `from`, or invalid if the
  /// segment cannot be entered at that node.
  [[nodiscard]] EdgeId edge_from(SegmentId s, NodeId from) const;

  // --- whole-network queries -------------------------------------------------

  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] Bounds bounding_box() const;

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] const std::vector<DirectedEdge>& edges() const { return edges_; }

 private:
  void build_topology();

  std::vector<Node> nodes_;
  std::vector<Segment> segments_;
  std::vector<DirectedEdge> edges_;
  std::vector<std::vector<SegmentId>> segments_at_node_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  // Per segment: [forward edge, backward edge (invalid if one-way)].
  std::vector<std::array<EdgeId, 2>> segment_edges_;
};

}  // namespace neat::roadnet
