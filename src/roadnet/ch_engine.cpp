#include "roadnet/ch_engine.h"

#include <algorithm>
#include <queue>

#include "common/error.h"
#include "common/stopwatch.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::roadnet {

namespace {

using HeapEntry = std::pair<double, std::int32_t>;  // (cost, node)
using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
// (priority, node): ties contract the smallest node id first, so the
// hierarchy — and therefore every query's unpacked path — is deterministic.
using PrioEntry = std::pair<std::int64_t, std::int32_t>;
using PrioHeap = std::priority_queue<PrioEntry, std::vector<PrioEntry>, std::greater<>>;

double arc_weight(const Segment& seg, Metric metric) {
  return metric == Metric::kDistance ? seg.length : seg.length / seg.speed_limit;
}

}  // namespace

ChEngine::ChEngine(const RoadNetwork& net, Options opts) : net_(net), opts_(opts) {
  NEAT_EXPECT(net_.node_count() > 0, "ChEngine: network has no junctions");
  NEAT_EXPECT(opts_.witness_settle_limit >= 1,
              "ChEngine: witness_settle_limit must be at least 1");
  obs::ScopedSpan span("ch.build");
  const Stopwatch watch;
  n_ = net_.node_count();

  add_base_arcs();
  const std::size_t base_arcs = arcs_.size();
  contract_all();
  shortcut_count_ = arcs_.size() - base_arcs;
  build_upward_graphs();

  // Drop the preprocessing-only state; queries touch only the CSR graphs.
  out_adj_.clear();
  out_adj_.shrink_to_fit();
  in_adj_.clear();
  in_adj_.shrink_to_fit();
  contracted_.clear();
  contracted_.shrink_to_fit();
  deleted_neighbors_.clear();
  deleted_neighbors_.shrink_to_fit();
  level_.clear();
  level_.shrink_to_fit();
  twin_.clear();
  twin_.shrink_to_fit();
  wdist_.clear();
  wdist_.shrink_to_fit();
  wstamp_.clear();
  wstamp_.shrink_to_fit();

  preprocessing_seconds_ = watch.elapsed_seconds();
  obs::Registry& reg = obs::Registry::global();
  reg.counter("neat_roadnet_ch_builds_total").add(1);
  reg.counter("neat_roadnet_ch_shortcuts_total").add(shortcut_count_);
  reg.histogram("neat_roadnet_ch_build_duration_seconds").record(preprocessing_seconds_);
  span.arg("junctions", static_cast<std::uint64_t>(n_));
  span.arg("base_arcs", static_cast<std::uint64_t>(base_arcs));
  span.arg("shortcuts", static_cast<std::uint64_t>(shortcut_count_));
  NEAT_LOG(kInfo, "roadnet")
      .msg("CH hierarchy built")
      .kv("junctions", n_)
      .kv("base_arcs", base_arcs)
      .kv("shortcuts", shortcut_count_)
      .kv("duration_ms", preprocessing_seconds_ * 1e3);
}

std::int32_t ChEngine::rank(NodeId n) const {
  static_cast<void>(net_.node(n));
  return rank_[static_cast<std::size_t>(n.value())];
}

void ChEngine::add_base_arcs() {
  out_adj_.assign(n_, {});
  in_adj_.assign(n_, {});
  const auto push = [&](std::int32_t from, std::int32_t to, double w, EdgeId eid) {
    if (from == to) return;  // self-loops never lie on a shortest path
    const auto idx = static_cast<std::int32_t>(arcs_.size());
    arcs_.push_back(Arc{from, to, w, -1, -1, eid});
    out_adj_[static_cast<std::size_t>(from)].push_back(idx);
    in_adj_[static_cast<std::size_t>(to)].push_back(idx);
  };
  if (opts_.directed) {
    const std::vector<DirectedEdge>& edges = net_.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Segment& seg = net_.segment(edges[i].sid);
      push(edges[i].from.value(), edges[i].to.value(), arc_weight(seg, opts_.metric),
           EdgeId(static_cast<std::int32_t>(i)));
    }
  } else {
    // Undirected mode mirrors NodeDistanceOracle: every segment is
    // traversable both ways regardless of its one-way flag (§III-C.3).
    // Arcs land in twin pairs (twin of arc i is i^1), the invariant that
    // keeps the hierarchy arc-symmetric — see contract().
    for (std::size_t s = 0; s < net_.segment_count(); ++s) {
      const Segment& seg = net_.segment(SegmentId(static_cast<std::int32_t>(s)));
      const double w = arc_weight(seg, opts_.metric);
      push(seg.a.value(), seg.b.value(), w, EdgeId::invalid());
      push(seg.b.value(), seg.a.value(), w, EdgeId::invalid());
    }
    twin_.resize(arcs_.size());
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
      twin_[i] = static_cast<std::int32_t>(i ^ 1);
    }
  }
}

void ChEngine::witness_search(std::int32_t u, std::int32_t v, double bound) {
  ++wgen_;
  const auto stamp = [&](std::int32_t x) -> bool { return wstamp_[x] == wgen_; };
  wdist_[u] = 0.0;
  wstamp_[u] = wgen_;
  MinHeap heap;
  heap.emplace(0.0, u);
  int settled = 0;
  while (!heap.empty()) {
    const auto [d, x] = heap.top();
    heap.pop();
    if (d > wdist_[x]) continue;  // stale entry
    if (d > bound) break;
    if (++settled > opts_.witness_settle_limit) break;
    for (const std::int32_t ai : out_adj_[x]) {
      const Arc& a = arcs_[ai];
      if (a.to == v || contracted_[a.to]) continue;
      const double nd = d + a.w;
      if (nd > bound) continue;
      if (!stamp(a.to) || nd < wdist_[a.to]) {
        wdist_[a.to] = nd;
        wstamp_[a.to] = wgen_;
        heap.emplace(nd, a.to);
      }
    }
  }
}

int ChEngine::contract(std::int32_t v, bool simulate) {
  // Cheapest surviving arc per distinct in/out neighbor; dominated parallels
  // can never force a shortcut.
  in_nb_.clear();
  out_nb_.clear();
  const auto collect = [&](const std::vector<std::int32_t>& adj, bool incoming,
                           std::vector<Neighbor>& nbs) {
    for (const std::int32_t ai : adj) {
      const Arc& a = arcs_[ai];
      const std::int32_t other = incoming ? a.from : a.to;
      if (other == v || contracted_[other]) continue;
      auto it = std::find_if(nbs.begin(), nbs.end(),
                             [&](const Neighbor& nb) { return nb.node == other; });
      if (it == nbs.end()) {
        nbs.push_back(Neighbor{other, ai, a.w});
      } else if (a.w < it->w) {
        it->arc = ai;
        it->w = a.w;
      }
    }
  };
  collect(in_adj_[v], /*incoming=*/true, in_nb_);
  collect(out_adj_[v], /*incoming=*/false, out_nb_);
  if (in_nb_.empty() || out_nb_.empty()) return 0;

  int shortcuts = 0;
  const auto insert_arc = [&](std::int32_t from, std::int32_t to, double w,
                              std::int32_t left, std::int32_t right) {
    const auto idx = static_cast<std::int32_t>(arcs_.size());
    arcs_.push_back(Arc{from, to, w, left, right, EdgeId::invalid()});
    out_adj_[static_cast<std::size_t>(from)].push_back(idx);
    in_adj_[static_cast<std::size_t>(to)].push_back(idx);
    return idx;
  };
  for (const Neighbor& in : in_nb_) {
    double max_need = 0.0;
    bool any_target = false;
    for (const Neighbor& out : out_nb_) {
      if (out.node == in.node) continue;
      // Undirected hierarchies stay arc-symmetric: each unordered neighbor
      // pair is decided by ONE witness run (from the smaller node id) and,
      // when that fails, gets BOTH shortcut directions inserted as twins.
      // Deciding each direction independently could leave a one-sided
      // shortcut (witness runs are settle-limited), and the shared-label
      // query path relies on the reverse of every down-path existing as an
      // up-path.
      if (!opts_.directed && out.node < in.node) continue;
      max_need = std::max(max_need, in.w + out.w);
      any_target = true;
    }
    if (!any_target) continue;
    // One witness run from `in` covers every out-neighbor: does a path
    // avoiding v already match the would-be shortcut?
    witness_search(in.node, v, max_need);
    for (const Neighbor& out : out_nb_) {
      if (out.node == in.node) continue;
      if (!opts_.directed && out.node < in.node) continue;
      const double sc = in.w + out.w;
      if (wstamp_[out.node] == wgen_ && wdist_[out.node] <= sc) continue;
      shortcuts += opts_.directed ? 1 : 2;
      if (!simulate) {
        const std::int32_t fwd_idx =
            insert_arc(in.node, out.node, sc, in.arc, out.arc);
        if (!opts_.directed) {
          // The reverse shortcut unpacks through the twins of the forward
          // one's children, in swapped order (reverse of u->v->w is
          // w->v->u). Its weight out.w + in.w is bitwise equal to sc.
          const std::int32_t rev_idx = insert_arc(
              out.node, in.node, sc, twin_[static_cast<std::size_t>(out.arc)],
              twin_[static_cast<std::size_t>(in.arc)]);
          twin_.push_back(rev_idx);  // twin of fwd_idx
          twin_.push_back(fwd_idx);  // twin of rev_idx
        }
      }
    }
  }
  return shortcuts;
}

std::int64_t ChEngine::priority(std::int32_t v) {
  // Lazy edge difference: shortcuts the contraction would insert minus arcs
  // it removes, plus a deleted-neighbors and a hierarchy-level term. The
  // level term is load-bearing on lattice-like networks: without it,
  // contracting a node only *lowers* its neighbors' priorities (fewer
  // incident arcs, equal-length witnesses everywhere), so contraction peels
  // the network inward from the boundary and queries degenerate into full
  // bidirectional sweeps. Penalising nodes above already-contracted ones
  // forces independent-set-like rounds and a balanced hierarchy instead.
  std::int64_t incident = 0;
  for (const std::int32_t ai : in_adj_[v]) {
    if (!contracted_[arcs_[ai].from]) ++incident;
  }
  for (const std::int32_t ai : out_adj_[v]) {
    if (!contracted_[arcs_[ai].to]) ++incident;
  }
  return 4 * static_cast<std::int64_t>(contract(v, /*simulate=*/true)) - incident +
         deleted_neighbors_[v] + 2 * static_cast<std::int64_t>(level_[v]);
}

void ChEngine::contract_all() {
  contracted_.assign(n_, 0);
  deleted_neighbors_.assign(n_, 0);
  level_.assign(n_, 0);
  rank_.assign(n_, -1);
  wdist_.assign(n_, 0.0);
  wstamp_.assign(n_, 0);

  PrioHeap heap;
  for (std::size_t v = 0; v < n_; ++v) {
    heap.emplace(priority(static_cast<std::int32_t>(v)), static_cast<std::int32_t>(v));
  }

  std::int32_t order = 0;
  while (!heap.empty()) {
    const auto [p, v] = heap.top();
    heap.pop();
    if (contracted_[v]) continue;
    // Lazy update: the stored priority may predate neighbor contractions.
    // Recompute; if the node no longer wins, push it back and try the next.
    const std::int64_t now = priority(v);
    if (now > p && !heap.empty() && now > heap.top().first) {
      heap.emplace(now, v);
      continue;
    }
    contract(v, /*simulate=*/false);
    contracted_[v] = 1;
    rank_[v] = order++;
    for (const std::int32_t ai : in_adj_[v]) {
      const std::int32_t u = arcs_[ai].from;
      if (contracted_[u]) continue;
      ++deleted_neighbors_[u];
      level_[u] = std::max(level_[u], level_[v] + 1);
    }
    for (const std::int32_t ai : out_adj_[v]) {
      const std::int32_t u = arcs_[ai].to;
      if (contracted_[u]) continue;
      ++deleted_neighbors_[u];
      level_[u] = std::max(level_[u], level_[v] + 1);
    }
  }
}

void ChEngine::build_upward_graphs() {
  // Counting pass, then fill: every arc has exactly one lower-ranked
  // endpoint and lands in exactly one CSR — up_fwd_ at its tail when the
  // head ranks higher, up_rev_ at its head otherwise.
  std::vector<std::int32_t> fwd_count(n_, 0);
  std::vector<std::int32_t> rev_count(n_, 0);
  for (const Arc& a : arcs_) {
    if (rank_[a.from] < rank_[a.to]) {
      ++fwd_count[a.from];
    } else {
      ++rev_count[a.to];
    }
  }
  up_fwd_head_.assign(n_ + 1, 0);
  up_rev_head_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    up_fwd_head_[v + 1] = up_fwd_head_[v] + fwd_count[v];
    up_rev_head_[v + 1] = up_rev_head_[v] + rev_count[v];
  }
  up_fwd_.resize(arcs_.empty() ? 0 : static_cast<std::size_t>(up_fwd_head_[n_]));
  up_rev_.resize(arcs_.empty() ? 0 : static_cast<std::size_t>(up_rev_head_[n_]));
  std::vector<std::int32_t> fwd_at(up_fwd_head_.begin(), up_fwd_head_.end() - 1);
  std::vector<std::int32_t> rev_at(up_rev_head_.begin(), up_rev_head_.end() - 1);
  for (std::size_t ai = 0; ai < arcs_.size(); ++ai) {
    const Arc& a = arcs_[ai];
    if (rank_[a.from] < rank_[a.to]) {
      up_fwd_[static_cast<std::size_t>(fwd_at[a.from]++)] =
          UpArc{a.to, a.w, static_cast<std::int32_t>(ai)};
    } else {
      up_rev_[static_cast<std::size_t>(rev_at[a.to]++)] =
          UpArc{a.from, a.w, static_cast<std::int32_t>(ai)};
    }
  }
}

// ---------------------------------------------------------------------------
// LabelBuilder / LabelCache
// ---------------------------------------------------------------------------

ChEngine::LabelBuilder::LabelBuilder(const ChEngine& engine)
    : ch_(engine), dist_(engine.n_, 0.0), stamp_(engine.n_, 0), parent_(engine.n_, -1) {}

std::size_t ChEngine::LabelBuilder::build(bool fwd_graph, std::int32_t src, double bound,
                                          Label& out_label) {
  // Upward Dijkstra from `src`, pruned at `bound`: every node whose upward
  // distance is within the bound is settled exactly, so any meet hub of a
  // shortest path <= bound survives in the label (both halves of an up-down
  // path are themselves <= the total). Paths beyond the bound answer
  // kInfDistance by contract, where a truncated label is indistinguishable
  // from a full one. The forward search relaxes up_fwd_ and stalls via
  // up_rev_; the backward search mirrors the roles.
  const std::span<const std::int32_t> relax_head(fwd_graph ? ch_.up_fwd_head_
                                                           : ch_.up_rev_head_);
  const std::span<const UpArc> relax(fwd_graph ? ch_.up_fwd_ : ch_.up_rev_);
  const std::span<const std::int32_t> stall_head(fwd_graph ? ch_.up_rev_head_
                                                           : ch_.up_fwd_head_);
  const std::span<const UpArc> stall(fwd_graph ? ch_.up_rev_ : ch_.up_fwd_);

  out_label.bound = bound;
  std::vector<LabelEntry>& out = out_label.entries;
  std::size_t settled = 0;
  ++gen_;
  dist_[static_cast<std::size_t>(src)] = 0.0;
  stamp_[static_cast<std::size_t>(src)] = gen_;
  parent_[static_cast<std::size_t>(src)] = -1;
  MinHeap heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (stamp_[u] != gen_ || d > dist_[u]) continue;  // stale entry
    ++settled;
    out.push_back(LabelEntry{u, d, parent_[u]});
    // Stall-on-demand: a higher-ranked node on the opposite side already
    // reaches u more cheaply, so no shortest up-down path climbs through u
    // from here. The stalled node stays in the label (its distance is a
    // valid path length and the meet candidate set then matches a plain
    // bidirectional sweep), it just stops expanding.
    bool stalled = false;
    for (std::int32_t i = stall_head[u]; i < stall_head[u + 1]; ++i) {
      const UpArc& a = stall[static_cast<std::size_t>(i)];
      if (stamp_[a.other] == gen_ && dist_[a.other] + a.w < d) {
        stalled = true;
        break;
      }
    }
    if (stalled) continue;
    for (std::int32_t i = relax_head[u]; i < relax_head[u + 1]; ++i) {
      const UpArc& a = relax[static_cast<std::size_t>(i)];
      const double nd = d + a.w;
      if (nd > bound || (stamp_[a.other] == gen_ && nd >= dist_[a.other])) continue;
      // Push-time stall: if some settled-or-queued node on the opposite side
      // already reaches the head more cheaply (its tentative distance is an
      // upper bound, so the test is conservative), the head is strictly
      // dominated — it can never be the apex of a shortest up-down path and
      // need not be settled at all.
      bool dominated = false;
      for (std::int32_t j = stall_head[a.other]; j < stall_head[a.other + 1]; ++j) {
        const UpArc& b = stall[static_cast<std::size_t>(j)];
        if (stamp_[b.other] == gen_ && dist_[b.other] + b.w < nd) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      dist_[a.other] = nd;
      stamp_[a.other] = gen_;
      parent_[a.other] = a.arc;
      heap.emplace(nd, a.other);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LabelEntry& a, const LabelEntry& b) { return a.node < b.node; });
  return settled;
}

ChEngine::LabelCache::LabelCache(const ChEngine& engine) : ch_(engine) {}

const ChEngine::Label& ChEngine::LabelCache::get(bool forward, std::int32_t src,
                                                 double bound, LabelBuilder& builder,
                                                 std::size_t& settled) {
  // Undirected hierarchies share one cache across both directions — the
  // backward label of a node carries the same (node, dist) set as its
  // forward label, halving the settled work of workloads that touch a node
  // from both sides. unpack_updown() compensates for the flipped parents.
  const bool fwd_graph = forward || !ch_.opts_.directed;
  auto& cache = fwd_graph ? fwd_labels_ : bwd_labels_;
  const auto [it, inserted] = cache.try_emplace(src);
  if (!inserted && it->second.bound >= bound) return it->second;
  if (!inserted) {
    // A later query wants a larger bound: rebuild from scratch. Workloads
    // use one fixed bound (the refiner's ε, the planner's +inf), so this is
    // the cold path.
    cached_entries_ -= it->second.entries.size();
    it->second.entries.clear();
  }
  settled += builder.build(fwd_graph, src, bound, it->second);
  cached_entries_ += it->second.entries.size();
  return it->second;
}

void ChEngine::LabelCache::maybe_evict() {
  constexpr std::size_t kMaxCachedEntries = std::size_t{1} << 22;
  if (cached_entries_ > kMaxCachedEntries) {
    fwd_labels_.clear();
    bwd_labels_.clear();
    cached_entries_ = 0;
  }
}

void ChEngine::unpack_updown(const Label& fwd, const Label& bwd, std::int32_t meet,
                             std::vector<std::int32_t>& leaves) const {
  // Unpack a hierarchy arc into the base arcs it replaces, preserving
  // path order (left child first).
  const auto unpack = [&](auto&& self, std::int32_t ai) -> void {
    const Arc& a = arcs_[static_cast<std::size_t>(ai)];
    if (a.left < 0) {
      leaves.push_back(ai);
      return;
    }
    self(self, a.left);
    self(self, a.right);
  };
  const auto parent_of = [](const Label& lbl, std::int32_t node) -> std::int32_t {
    const auto it = std::lower_bound(
        lbl.entries.begin(), lbl.entries.end(), node,
        [](const LabelEntry& e, std::int32_t n) { return e.node < n; });
    NEAT_EXPECT(it != lbl.entries.end() && it->node == node,
                "ChEngine: broken label parent chain");
    return it->parent;
  };
  // Forward half: walk parent arcs from the apex back to s, then reverse so
  // unpacking emits arcs in s -> apex order.
  std::vector<std::int32_t> fwd_chain;
  for (std::int32_t u = meet;;) {
    const std::int32_t ai = parent_of(fwd, u);
    if (ai < 0) break;
    fwd_chain.push_back(ai);
    u = arcs_[static_cast<std::size_t>(ai)].from;
  }
  for (auto it = fwd_chain.rbegin(); it != fwd_chain.rend(); ++it) unpack(unpack, *it);
  // Backward half. Directed engines keep true backward labels: each parent
  // arc leads from the current node toward the target, so the walk already
  // emits arcs in apex -> t order.
  if (opts_.directed) {
    for (std::int32_t u = meet;;) {
      const std::int32_t ai = parent_of(bwd, u);
      if (ai < 0) break;
      unpack(unpack, ai);
      u = arcs_[static_cast<std::size_t>(ai)].to;
    }
    return;
  }
  // Undirected engines share one label cache, so `bwd` is a *forward* label
  // from t and its parent arcs point toward the apex. Unpack each hop and
  // reverse its leaves in place: the result lists the apex -> t hops in
  // path order, every leaf being the weight-equal twin of the true arc, so
  // the re-summation downstream is bitwise identical.
  for (std::int32_t u = meet;;) {
    const std::int32_t ai = parent_of(bwd, u);
    if (ai < 0) break;
    const auto pre = static_cast<std::ptrdiff_t>(leaves.size());
    unpack(unpack, ai);
    std::reverse(leaves.begin() + pre, leaves.end());
    u = arcs_[static_cast<std::size_t>(ai)].from;
  }
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

ChEngine::Query::Query(const ChEngine& engine)
    : ch_(engine), builder_(engine), cache_(engine) {}

void ChEngine::Query::reset_counters() {
  computations_ = 0;
  settled_ = 0;
}

const ChEngine::Label& ChEngine::Query::label(bool forward, std::int32_t src,
                                              double bound) {
  return cache_.get(forward, src, bound, builder_, settled_);
}

void ChEngine::Query::run_batch(NodeId s, std::span<const NodeId> targets,
                                std::span<double> out, double bound,
                                std::vector<std::int32_t>* leaves_of_first) {
  NEAT_EXPECT(out.size() == targets.size(),
              "ChEngine: output size must match target count");
  static_cast<void>(ch_.net_.node(s));
  ++computations_;
  std::fill(out.begin(), out.end(), kInfDistance);
  // Whole-cache eviction happens only between batches: merges below hold
  // references into the cache.
  cache_.maybe_evict();
  if (targets.empty()) return;

  const Label& fwd = label(/*forward=*/true, s.value(), bound);
  for (std::size_t k = 0; k < targets.size(); ++k) {
    static_cast<void>(ch_.net_.node(targets[k]));
    const Label& bwd = label(/*forward=*/false, targets[k].value(), bound);
    // Sorted two-pointer merge: the cheapest meet over common label nodes
    // is the apex of a shortest up-down path (or no meet: unreachable /
    // beyond the bound).
    double best = kInfDistance;
    std::int32_t meet = -1;
    auto bi = bwd.entries.begin();
    for (const LabelEntry& fe : fwd.entries) {
      while (bi != bwd.entries.end() && bi->node < fe.node) ++bi;
      if (bi == bwd.entries.end()) break;
      if (bi->node != fe.node) continue;
      const double cand = fe.dist + bi->dist;
      if (cand < best) {
        best = cand;
        meet = fe.node;
      }
    }
    if (meet < 0) continue;
    // Resolve: unpack the winning up-down path and re-sum it sequentially
    // from s — the exact accumulation Dijkstra performs along that path.
    leaves_scratch_.clear();
    ch_.unpack_updown(fwd, bwd, meet, leaves_scratch_);
    double total = 0.0;
    for (const std::int32_t ai : leaves_scratch_) {
      total += ch_.arcs_[static_cast<std::size_t>(ai)].w;
    }
    out[k] = total > bound ? kInfDistance : total;
    if (k == 0 && leaves_of_first != nullptr && out[k] < kInfDistance) {
      *leaves_of_first = leaves_scratch_;
    }
  }
}

double ChEngine::Query::distance(NodeId s, NodeId t, double bound) {
  double out = kInfDistance;
  run_batch(s, std::span<const NodeId>(&t, 1), std::span<double>(&out, 1), bound, nullptr);
  return out;
}

double ChEngine::Query::distance_to_any(NodeId s, std::span<const NodeId> targets,
                                        double bound) {
  if (targets.empty()) return kInfDistance;
  any_scratch_.assign(targets.size(), kInfDistance);
  run_batch(s, targets, any_scratch_, bound, nullptr);
  double best = kInfDistance;
  for (const double d : any_scratch_) best = std::min(best, d);
  return best;
}

void ChEngine::Query::distances(NodeId s, std::span<const NodeId> targets,
                                std::span<double> out, double bound) {
  run_batch(s, targets, out, bound, nullptr);
}

std::optional<Route> ChEngine::Query::route(NodeId s, NodeId t) {
  NEAT_EXPECT(ch_.opts_.directed, "ChEngine: route() requires a directed engine");
  std::vector<std::int32_t> leaves;
  double out = kInfDistance;
  run_batch(s, std::span<const NodeId>(&t, 1), std::span<double>(&out, 1), kInfDistance,
            &leaves);
  if (out == kInfDistance) return std::nullopt;
  Route route;
  route.edges.reserve(leaves.size());
  for (const std::int32_t ai : leaves) {
    const Arc& a = ch_.arcs_[static_cast<std::size_t>(ai)];
    route.edges.push_back(a.eid);
    const Segment& seg = ch_.net_.segment(ch_.net_.edge(a.eid).sid);
    route.length += seg.length;
    route.travel_time += seg.length / seg.speed_limit;
  }
  return route;
}

}  // namespace neat::roadnet
