#include "roadnet/road_network.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::roadnet {

namespace {

void validate_parts(const std::vector<Node>& nodes, const std::vector<Segment>& segments) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    NEAT_EXPECT(std::isfinite(nodes[i].pos.x) && std::isfinite(nodes[i].pos.y),
                str_cat("node ", i, ": coordinates must be finite"));
  }
  const auto n = static_cast<std::int64_t>(nodes.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const Segment& s = segments[i];
    NEAT_EXPECT(std::isfinite(s.length) && std::isfinite(s.speed_limit),
                str_cat("segment ", i, ": length and speed must be finite"));
    NEAT_EXPECT(s.a.valid() && s.a.value() < n,
                str_cat("segment ", i, ": endpoint a out of range"));
    NEAT_EXPECT(s.b.valid() && s.b.value() < n,
                str_cat("segment ", i, ": endpoint b out of range"));
    NEAT_EXPECT(s.a != s.b, str_cat("segment ", i, ": self loops are not supported"));
    NEAT_EXPECT(s.length > 0.0, str_cat("segment ", i, ": length must be positive"));
    NEAT_EXPECT(s.speed_limit > 0.0, str_cat("segment ", i, ": speed limit must be positive"));
    const double straight = distance(nodes[static_cast<std::size_t>(s.a.value())].pos,
                                     nodes[static_cast<std::size_t>(s.b.value())].pos);
    NEAT_EXPECT(s.length >= straight - 1e-6,
                str_cat("segment ", i, ": length ", s.length,
                        " undercuts the straight-line distance ", straight,
                        " (would break the Euclidean lower bound)"));
  }
}

}  // namespace

RoadNetwork::RoadNetwork(std::vector<Node> nodes, std::vector<Segment> segments)
    : nodes_(std::move(nodes)), segments_(std::move(segments)) {
  validate_parts(nodes_, segments_);
  build_topology();
}

void RoadNetwork::build_topology() {
  segments_at_node_.assign(nodes_.size(), {});
  out_edges_.assign(nodes_.size(), {});
  in_edges_.assign(nodes_.size(), {});
  segment_edges_.assign(segments_.size(), {EdgeId::invalid(), EdgeId::invalid()});
  edges_.clear();
  edges_.reserve(segments_.size() * 2);

  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto sid = SegmentId(static_cast<std::int32_t>(i));
    const Segment& s = segments_[i];
    segments_at_node_[static_cast<std::size_t>(s.a.value())].push_back(sid);
    segments_at_node_[static_cast<std::size_t>(s.b.value())].push_back(sid);

    const auto fwd = EdgeId(static_cast<std::int32_t>(edges_.size()));
    edges_.push_back(DirectedEdge{sid, s.a, s.b});
    out_edges_[static_cast<std::size_t>(s.a.value())].push_back(fwd);
    in_edges_[static_cast<std::size_t>(s.b.value())].push_back(fwd);
    segment_edges_[i][0] = fwd;

    if (s.bidirectional) {
      const auto bwd = EdgeId(static_cast<std::int32_t>(edges_.size()));
      edges_.push_back(DirectedEdge{sid, s.b, s.a});
      out_edges_[static_cast<std::size_t>(s.b.value())].push_back(bwd);
      in_edges_[static_cast<std::size_t>(s.a.value())].push_back(bwd);
      segment_edges_[i][1] = bwd;
    }
  }
}

const Node& RoadNetwork::node(NodeId id) const {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= nodes_.size()) {
    throw NotFoundError(str_cat("no such node: ", id.value()));
  }
  return nodes_[static_cast<std::size_t>(id.value())];
}

const Segment& RoadNetwork::segment(SegmentId id) const {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= segments_.size()) {
    throw NotFoundError(str_cat("no such segment: ", id.value()));
  }
  return segments_[static_cast<std::size_t>(id.value())];
}

const DirectedEdge& RoadNetwork::edge(EdgeId id) const {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= edges_.size()) {
    throw NotFoundError(str_cat("no such edge: ", id.value()));
  }
  return edges_[static_cast<std::size_t>(id.value())];
}

Point RoadNetwork::point_on_segment(SegmentId id, double offset) const {
  const Segment& s = segment(id);
  const double t = s.length == 0.0 ? 0.0 : std::clamp(offset / s.length, 0.0, 1.0);
  return lerp(node(s.a).pos, node(s.b).pos, t);
}

double RoadNetwork::project_to_segment(SegmentId id, Point p, double* out_dist) const {
  const Segment& s = segment(id);
  const Projection proj = project_onto_segment(p, node(s.a).pos, node(s.b).pos);
  if (out_dist != nullptr) *out_dist = proj.dist;
  return proj.t * s.length;
}

std::span<const SegmentId> RoadNetwork::segments_at(NodeId n) const {
  static_cast<void>(node(n));  // bounds check
  return segments_at_node_[static_cast<std::size_t>(n.value())];
}

std::vector<SegmentId> RoadNetwork::adjacent_segments(SegmentId s, NodeId n) const {
  NEAT_EXPECT(is_endpoint(s, n), "adjacent_segments: node is not an endpoint of the segment");
  std::vector<SegmentId> out;
  for (const SegmentId other : segments_at(n)) {
    if (other != s) out.push_back(other);
  }
  return out;
}

NodeId RoadNetwork::shared_junction(SegmentId s1, SegmentId s2) const {
  const Segment& a = segment(s1);
  const Segment& b = segment(s2);
  if (s1 == s2) return NodeId::invalid();
  NodeId best = NodeId::invalid();
  for (const NodeId u : {a.a, a.b}) {
    if (u == b.a || u == b.b) {
      if (!best.valid() || u < best) best = u;
    }
  }
  return best;
}

bool RoadNetwork::are_adjacent(SegmentId s1, SegmentId s2) const {
  return shared_junction(s1, s2).valid();
}

NodeId RoadNetwork::other_endpoint(SegmentId s, NodeId n) const {
  const Segment& seg = segment(s);
  if (seg.a == n) return seg.b;
  if (seg.b == n) return seg.a;
  throw PreconditionError(str_cat("node ", n.value(), " is not an endpoint of segment ",
                                  s.value()));
}

bool RoadNetwork::is_endpoint(SegmentId s, NodeId n) const {
  const Segment& seg = segment(s);
  return seg.a == n || seg.b == n;
}

int RoadNetwork::junction_degree(NodeId n) const {
  return static_cast<int>(segments_at(n).size());
}

std::span<const EdgeId> RoadNetwork::out_edges(NodeId n) const {
  static_cast<void>(node(n));  // bounds check
  return out_edges_[static_cast<std::size_t>(n.value())];
}

std::span<const EdgeId> RoadNetwork::in_edges(NodeId n) const {
  static_cast<void>(node(n));  // bounds check
  return in_edges_[static_cast<std::size_t>(n.value())];
}

EdgeId RoadNetwork::forward_edge(SegmentId s) const {
  static_cast<void>(segment(s));  // bounds check
  return segment_edges_[static_cast<std::size_t>(s.value())][0];
}

EdgeId RoadNetwork::backward_edge(SegmentId s) const {
  static_cast<void>(segment(s));  // bounds check
  return segment_edges_[static_cast<std::size_t>(s.value())][1];
}

EdgeId RoadNetwork::edge_from(SegmentId s, NodeId from) const {
  const Segment& seg = segment(s);
  if (seg.a == from) return forward_edge(s);
  if (seg.b == from) return backward_edge(s);
  return EdgeId::invalid();
}

NetworkStats RoadNetwork::stats() const {
  NetworkStats st;
  st.num_segments = segments_.size();
  st.num_junctions = nodes_.size();
  double total_m = 0.0;
  for (const Segment& s : segments_) total_m += s.length;
  st.total_length_km = total_m / 1000.0;
  st.avg_segment_length_m = segments_.empty() ? 0.0 : total_m / static_cast<double>(segments_.size());
  std::size_t degree_sum = 0;
  for (const auto& star : segments_at_node_) {
    degree_sum += star.size();
    st.max_junction_degree = std::max(st.max_junction_degree, static_cast<int>(star.size()));
  }
  st.avg_junction_degree =
      nodes_.empty() ? 0.0 : static_cast<double>(degree_sum) / static_cast<double>(nodes_.size());
  return st;
}

Bounds RoadNetwork::bounding_box() const {
  Bounds b{{0, 0}, {0, 0}};
  if (nodes_.empty()) return b;
  b.min = b.max = nodes_.front().pos;
  for (const Node& n : nodes_) {
    b.min.x = std::min(b.min.x, n.pos.x);
    b.min.y = std::min(b.min.y, n.pos.y);
    b.max.x = std::max(b.max.x, n.pos.x);
    b.max.y = std::max(b.max.y, n.pos.y);
  }
  return b;
}

}  // namespace neat::roadnet
