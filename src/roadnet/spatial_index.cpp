#include "roadnet/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace neat::roadnet {

const std::vector<SegmentId> SegmentGridIndex::kEmptyCell;

SegmentGridIndex::SegmentGridIndex(const RoadNetwork& net, double cell_size) : net_(net) {
  const Bounds bb = net.bounding_box();
  const NetworkStats st = net.stats();
  cell_ = cell_size > 0.0 ? cell_size : std::max(50.0, 2.0 * st.avg_segment_length_m);
  // Pad the box so boundary geometry maps to valid cells.
  origin_ = {bb.min.x - cell_, bb.min.y - cell_};
  const double w = (bb.max.x - origin_.x) + 2 * cell_;
  const double h = (bb.max.y - origin_.y) + 2 * cell_;
  nx_ = std::max(1, static_cast<int>(std::ceil(w / cell_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(h / cell_)));
  cells_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));

  for (std::size_t i = 0; i < net.segment_count(); ++i) {
    const auto sid = SegmentId(static_cast<std::int32_t>(i));
    const Segment& s = net.segment(sid);
    const Point pa = net.node(s.a).pos;
    const Point pb = net.node(s.b).pos;
    const Point lo{std::min(pa.x, pb.x), std::min(pa.y, pb.y)};
    const Point hi{std::max(pa.x, pb.x), std::max(pa.y, pb.y)};
    const CellRange r = cells_overlapping(lo, hi);
    for (int cy = r.y0; cy <= r.y1; ++cy) {
      for (int cx = r.x0; cx <= r.x1; ++cx) {
        // Only register in cells the segment actually comes near, so queries
        // do not scan the full bounding box of long diagonals.
        const Point cell_min{origin_.x + cx * cell_, origin_.y + cy * cell_};
        const Point cell_center{cell_min.x + cell_ / 2, cell_min.y + cell_ / 2};
        const double half_diag = cell_ * 0.70710678 + 1e-9;
        if (point_segment_distance(cell_center, pa, pb) <= half_diag) {
          cells_[static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx)]
              .push_back(sid);
        }
      }
    }
  }
}

SegmentGridIndex::CellRange SegmentGridIndex::cells_overlapping(Point lo, Point hi) const {
  const auto clamp_x = [this](int v) { return std::clamp(v, 0, nx_ - 1); };
  const auto clamp_y = [this](int v) { return std::clamp(v, 0, ny_ - 1); };
  CellRange r{};
  r.x0 = clamp_x(static_cast<int>(std::floor((lo.x - origin_.x) / cell_)));
  r.x1 = clamp_x(static_cast<int>(std::floor((hi.x - origin_.x) / cell_)));
  r.y0 = clamp_y(static_cast<int>(std::floor((lo.y - origin_.y) / cell_)));
  r.y1 = clamp_y(static_cast<int>(std::floor((hi.y - origin_.y) / cell_)));
  return r;
}

const std::vector<SegmentId>& SegmentGridIndex::cell(int cx, int cy) const {
  if (cx < 0 || cx >= nx_ || cy < 0 || cy >= ny_) return kEmptyCell;
  return cells_[static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx)];
}

SegmentId SegmentGridIndex::nearest_segment(Point p, double max_radius,
                                            double* out_dist) const {
  const int px = static_cast<int>(std::floor((p.x - origin_.x) / cell_));
  const int py = static_cast<int>(std::floor((p.y - origin_.y) / cell_));
  const int grid_span = nx_ + ny_;  // covers the whole grid from any cell
  const int max_ring =
      std::isfinite(max_radius)
          ? std::min(grid_span, static_cast<int>(std::ceil(max_radius / cell_)) + 1)
          : grid_span;

  double best = std::numeric_limits<double>::infinity();
  SegmentId best_sid = SegmentId::invalid();
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is found, geometry in rings beyond (found_ring + 1)
    // cannot beat it; stop after one extra ring.
    if (best_sid.valid() && static_cast<double>(ring - 1) * cell_ > best) break;
    if (static_cast<double>(ring - 1) * cell_ > max_radius) break;
    const auto visit = [&](int cx, int cy) {
      for (const SegmentId sid : cell(cx, cy)) {
        const Segment& s = net_.segment(sid);
        const double d = point_segment_distance(p, net_.node(s.a).pos, net_.node(s.b).pos);
        if (d < best || (d == best && (!best_sid.valid() || sid < best_sid))) {
          best = d;
          best_sid = sid;
        }
      }
    };
    if (ring == 0) {
      visit(px, py);
      continue;
    }
    for (int cx = px - ring; cx <= px + ring; ++cx) {
      visit(cx, py - ring);
      visit(cx, py + ring);
    }
    for (int cy = py - ring + 1; cy <= py + ring - 1; ++cy) {
      visit(px - ring, cy);
      visit(px + ring, cy);
    }
  }
  if (best > max_radius) return SegmentId::invalid();
  if (out_dist != nullptr && best_sid.valid()) *out_dist = best;
  return best_sid;
}

std::vector<SegmentId> SegmentGridIndex::segments_within(Point p, double radius) const {
  const CellRange r = cells_overlapping({p.x - radius, p.y - radius},
                                        {p.x + radius, p.y + radius});
  std::vector<SegmentId> out;
  for (int cy = r.y0; cy <= r.y1; ++cy) {
    for (int cx = r.x0; cx <= r.x1; ++cx) {
      for (const SegmentId sid : cell(cx, cy)) {
        const Segment& s = net_.segment(sid);
        if (point_segment_distance(p, net_.node(s.a).pos, net_.node(s.b).pos) <= radius) {
          out.push_back(sid);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SegmentId> SegmentGridIndex::k_nearest_segments(Point p, std::size_t k,
                                                            double max_radius) const {
  std::vector<SegmentId> candidates = segments_within(p, max_radius);
  std::vector<std::pair<double, SegmentId>> scored;
  scored.reserve(candidates.size());
  for (const SegmentId sid : candidates) {
    const Segment& s = net_.segment(sid);
    scored.emplace_back(point_segment_distance(p, net_.node(s.a).pos, net_.node(s.b).pos),
                        sid);
  }
  std::sort(scored.begin(), scored.end());
  if (scored.size() > k) scored.resize(k);
  std::vector<SegmentId> out;
  out.reserve(scored.size());
  for (const auto& [d, sid] : scored) out.push_back(sid);
  return out;
}

}  // namespace neat::roadnet
