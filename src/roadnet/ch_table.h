// Bucket-based many-to-many distance tables over a contraction hierarchy
// (Knopp et al. 2007; OSRM's matrix plugin is the production exemplar).
//
// A table fill runs one backward sweep over the targets — each target's
// upward label deposits (target, dist-to-hub) entries into a per-node bucket
// CSR — followed by one forward upward scan per source that joins its label
// against the buckets. That is O(sources + targets) bounded upward searches
// with stall-on-demand, where repeated one-to-many querying performs a full
// sorted-label merge per (source, target) pair: the join visits only the
// nodes the forward label actually settled, and each bucket row is exactly
// the set of targets whose backward search reached that hub.
//
// Exactness matches ChEngine::Query bit for bit, by construction: labels
// come from the shared ChEngine::LabelBuilder, meets are selected with the
// same strict `<` over node-id-ascending candidates, and every finite cell
// is resolved by unpacking the winning up-down path and re-summing its base
// arcs sequentially from the source. Bounded fills keep the Dijkstra
// contract — the exact distance when it is <= bound, kInfDistance otherwise
// — and the bound prunes both sweeps (early termination), so ε-bounded
// refiner tables never build labels past ε.
//
// Not thread safe; create one per thread over a shared immutable ChEngine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "roadnet/ch_engine.h"
#include "roadnet/shortest_path.h"

namespace neat::roadnet {

/// Many-to-many table engine over a shared ChEngine hierarchy.
class CHTableEngine {
 public:
  /// Binds to a built engine. Keeps a reference; do not outlive it.
  explicit CHTableEngine(const ChEngine& engine);

  CHTableEngine(const CHTableEngine&) = delete;
  CHTableEngine& operator=(const CHTableEngine&) = delete;
  CHTableEngine(CHTableEngine&&) = default;

  /// Fills `out` (row-major, sources.size() x targets.size(): cell (i, k)
  /// at out[i * targets.size() + k]) with exact shortest distances in the
  /// engine's metric, kInfDistance when unreachable or beyond `bound`.
  /// Duplicate nodes in either span are deduplicated internally — each
  /// distinct endpoint costs one upward search — and `out` must not alias
  /// the input spans. Counts as one computation, like the oracle's batch.
  void table(std::span<const NodeId> sources, std::span<const NodeId> targets,
             std::span<double> out, double bound = kInfDistance);

  [[nodiscard]] const ChEngine& engine() const { return ch_; }
  /// table() calls issued so far.
  [[nodiscard]] std::size_t computations() const { return computations_; }
  /// Nodes settled across all calls, both sweep directions (work proxy;
  /// directly comparable to ChEngine::Query::settled_nodes()). Label cache
  /// hits settle nothing.
  [[nodiscard]] std::size_t settled_nodes() const { return settled_; }
  void reset_counters();

 private:
  /// One deposited backward-label entry: which unique target reached this
  /// hub and at what upward distance.
  struct BucketEntry {
    std::int32_t target;  ///< Index into the unique-target list.
    double dist;
  };

  const ChEngine& ch_;
  ChEngine::LabelBuilder builder_;
  ChEngine::LabelCache cache_;
  std::size_t computations_{0};
  std::size_t settled_{0};

  // table() scratch, reused across calls.
  std::vector<NodeId> uniq_sources_;
  std::vector<NodeId> uniq_targets_;
  std::vector<std::int32_t> row_uidx_;  ///< Original row -> unique source.
  std::vector<std::int32_t> col_uidx_;  ///< Original column -> unique target.
  std::vector<std::int32_t> bucket_head_;
  std::vector<BucketEntry> buckets_;
  std::vector<double> best_;
  std::vector<std::int32_t> meet_;
  std::vector<double> row_scratch_;
  std::vector<std::int32_t> leaves_scratch_;
};

}  // namespace neat::roadnet
