// In-memory trajectory store with spatio-temporal indexes — the NEAT
// server's storage substrate (paper §I cites the collecting/storing/
// indexing/querying line of work [1-5]; §II-C has clients upload
// trajectories to a server that the clustering application then reads).
//
// The store keeps trajectories immutable once inserted and maintains two
// indexes incrementally:
//  * a segment inverted index: segment id -> the trajectories that traverse
//    it, with per-traversal time intervals (the primitive behind netflow
//    queries and "who drove here when?"),
//  * a time index over trajectory spans for window queries.
//
// All query results are returned in deterministic (ascending id) order.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "core/fragmenter.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace neat::store {

/// One traversal of a segment by a trajectory.
struct Traversal {
  TrajectoryId trid;
  double enter_t{0.0};  ///< Time the object entered the segment.
  double exit_t{0.0};   ///< Time it left (or the trajectory ended).
};

/// Store statistics.
struct StoreStats {
  std::size_t num_trajectories{0};
  std::size_t num_points{0};
  std::size_t num_traversals{0};
  std::size_t num_indexed_segments{0};
};

/// Append-only trajectory store over one road network.
class TrajectoryStore {
 public:
  /// Keeps a reference to the network; do not outlive it.
  explicit TrajectoryStore(const roadnet::RoadNetwork& net);

  /// Inserts a trajectory (validated against the network; Phase 1 fragment
  /// extraction drives the segment index, so gap repair applies). Throws
  /// neat::PreconditionError on duplicate ids or invalid segment
  /// references.
  void insert(traj::Trajectory tr);

  /// Bulk insert.
  void insert(const traj::TrajectoryDataset& data);

  [[nodiscard]] std::size_t size() const { return trajectories_.size(); }
  [[nodiscard]] bool empty() const { return trajectories_.empty(); }
  [[nodiscard]] StoreStats stats() const;

  /// Trajectory lookup by id; nullptr when absent.
  [[nodiscard]] const traj::Trajectory* find(TrajectoryId id) const;

  /// All traversals of a segment, ordered by (enter time, trajectory id).
  /// Zero-copy: the list is maintained sorted at insert (reads never
  /// re-sort) and the reference is valid until the next insert.
  [[nodiscard]] const std::vector<Traversal>& traversals(SegmentId sid) const;

  /// Distinct trajectories that traversed `sid` with a traversal interval
  /// intersecting [t_begin, t_end], ascending. Pass an unbounded window via
  /// infinities for "ever".
  [[nodiscard]] std::vector<TrajectoryId> trajectories_on(SegmentId sid, double t_begin,
                                                          double t_end) const;

  /// Distinct trajectories active (their time span intersects the window)
  /// during [t_begin, t_end], ascending.
  [[nodiscard]] std::vector<TrajectoryId> active_between(double t_begin,
                                                         double t_end) const;

  /// The netflow (Definition 5 applied at store level) between two road
  /// segments: the number of trajectories that traversed both.
  [[nodiscard]] int segment_netflow(SegmentId a, SegmentId b) const;

  /// Materializes the stored trajectories whose ids are in [from, to]
  /// (inclusive) as a dataset — feeding a clustering run on a subset.
  [[nodiscard]] traj::TrajectoryDataset snapshot(TrajectoryId from, TrajectoryId to) const;

  /// Materializes everything.
  [[nodiscard]] traj::TrajectoryDataset snapshot() const;

  /// Materializes the trajectories active during [t_begin, t_end] (their
  /// time span intersects the window), ascending by id — rush-hour slices
  /// for time-of-day clustering.
  [[nodiscard]] traj::TrajectoryDataset snapshot_between(double t_begin,
                                                         double t_end) const;

 private:
  const roadnet::RoadNetwork& net_;
  Fragmenter fragmenter_;
  std::vector<traj::Trajectory> trajectories_;
  std::unordered_map<TrajectoryId, std::size_t> index_of_;
  /// Per segment: traversal list, kept sorted by (enter_t, trid) at insert.
  std::unordered_map<SegmentId, std::vector<Traversal>> segment_index_;
  std::size_t num_traversals_{0};
};

}  // namespace neat::store
