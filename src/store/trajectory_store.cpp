#include "store/trajectory_store.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::store {

TrajectoryStore::TrajectoryStore(const roadnet::RoadNetwork& net)
    : net_(net), fragmenter_(net) {}

void TrajectoryStore::insert(traj::Trajectory tr) {
  NEAT_EXPECT(!tr.empty(), "TrajectoryStore: cannot insert an empty trajectory");
  NEAT_EXPECT(index_of_.find(tr.id()) == index_of_.end(),
              str_cat("TrajectoryStore: duplicate trajectory id ", tr.id().value()));

  // Fragment extraction both validates the segment references and yields
  // the traversal intervals for the segment index. Each per-segment list is
  // kept sorted by (enter time, trajectory id) at insert, so reads are
  // zero-copy; one trajectory's fragments arrive in time order, making the
  // common upper_bound position the list's end.
  const std::vector<TFragment> fragments = fragmenter_.fragment(tr);
  for (const TFragment& f : fragments) {
    std::vector<Traversal>& list = segment_index_[f.sid];
    const Traversal t{tr.id(), f.entry.t, f.exit.t};
    const auto pos = std::upper_bound(list.begin(), list.end(), t,
                                      [](const Traversal& a, const Traversal& b) {
                                        if (a.enter_t != b.enter_t) return a.enter_t < b.enter_t;
                                        return a.trid < b.trid;
                                      });
    list.insert(pos, t);
    ++num_traversals_;
  }
  index_of_.emplace(tr.id(), trajectories_.size());
  trajectories_.push_back(std::move(tr));
}

void TrajectoryStore::insert(const traj::TrajectoryDataset& data) {
  for (const traj::Trajectory& tr : data) insert(tr);
}

StoreStats TrajectoryStore::stats() const {
  StoreStats st;
  st.num_trajectories = trajectories_.size();
  for (const traj::Trajectory& tr : trajectories_) st.num_points += tr.size();
  st.num_traversals = num_traversals_;
  st.num_indexed_segments = segment_index_.size();
  return st;
}

const traj::Trajectory* TrajectoryStore::find(TrajectoryId id) const {
  const auto it = index_of_.find(id);
  return it == index_of_.end() ? nullptr : &trajectories_[it->second];
}

const std::vector<Traversal>& TrajectoryStore::traversals(SegmentId sid) const {
  static_cast<void>(net_.segment(sid));  // bounds check
  static const std::vector<Traversal> kEmpty;
  const auto it = segment_index_.find(sid);
  return it == segment_index_.end() ? kEmpty : it->second;
}

std::vector<TrajectoryId> TrajectoryStore::trajectories_on(SegmentId sid, double t_begin,
                                                           double t_end) const {
  NEAT_EXPECT(t_begin <= t_end, "trajectories_on: empty time window");
  std::vector<TrajectoryId> out;
  for (const Traversal& t : traversals(sid)) {
    if (t.exit_t >= t_begin && t.enter_t <= t_end) out.push_back(t.trid);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TrajectoryId> TrajectoryStore::active_between(double t_begin,
                                                          double t_end) const {
  NEAT_EXPECT(t_begin <= t_end, "active_between: empty time window");
  std::vector<TrajectoryId> out;
  for (const traj::Trajectory& tr : trajectories_) {
    if (tr.back().t >= t_begin && tr.front().t <= t_end) out.push_back(tr.id());
  }
  std::sort(out.begin(), out.end());
  return out;
}

int TrajectoryStore::segment_netflow(SegmentId a, SegmentId b) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<TrajectoryId> on_a = trajectories_on(a, -kInf, kInf);
  const std::vector<TrajectoryId> on_b = trajectories_on(b, -kInf, kInf);
  int common = 0;
  auto ia = on_a.begin();
  auto ib = on_b.begin();
  while (ia != on_a.end() && ib != on_b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++common;
      ++ia;
      ++ib;
    }
  }
  return common;
}

traj::TrajectoryDataset TrajectoryStore::snapshot(TrajectoryId from, TrajectoryId to) const {
  NEAT_EXPECT(from <= to, "snapshot: empty id range");
  std::vector<const traj::Trajectory*> selected;
  for (const traj::Trajectory& tr : trajectories_) {
    if (from <= tr.id() && tr.id() <= to) selected.push_back(&tr);
  }
  std::sort(selected.begin(), selected.end(),
            [](const traj::Trajectory* a, const traj::Trajectory* b) {
              return a->id() < b->id();
            });
  traj::TrajectoryDataset out;
  for (const traj::Trajectory* tr : selected) out.add(*tr);
  return out;
}

traj::TrajectoryDataset TrajectoryStore::snapshot() const {
  return snapshot(TrajectoryId(std::numeric_limits<std::int64_t>::min()),
                  TrajectoryId(std::numeric_limits<std::int64_t>::max()));
}

traj::TrajectoryDataset TrajectoryStore::snapshot_between(double t_begin,
                                                          double t_end) const {
  NEAT_EXPECT(t_begin <= t_end, "snapshot_between: empty time window");
  std::vector<const traj::Trajectory*> selected;
  for (const traj::Trajectory& tr : trajectories_) {
    if (tr.back().t >= t_begin && tr.front().t <= t_end) selected.push_back(&tr);
  }
  std::sort(selected.begin(), selected.end(),
            [](const traj::Trajectory* a, const traj::Trajectory* b) {
              return a->id() < b->id();
            });
  traj::TrajectoryDataset out;
  for (const traj::Trajectory* tr : selected) out.add(*tr);
  return out;
}

}  // namespace neat::store
