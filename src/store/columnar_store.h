// Memory-mapped reader over the columnar trajectory format — the
// out-of-core half of the storage substrate (traj/columnar.h documents the
// file layout). The whole file is mapped read-only once; trajectories are
// exposed as zero-copy SoA spans into the mapping, so a scan over a dataset
// larger than RAM pages columns in on demand and release() hands consumed
// ranges back to the OS, keeping the resident footprint bounded by the
// working set instead of the dataset.
//
// The mapping is immutable and the store does no caching, so all accessors
// are safe to call concurrently. Views borrow the mapping: they are valid
// until the store is destroyed, and their pages may be evicted (transparently
// faulted back in) by release().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/ids.h"
#include "core/fragmenter.h"
#include "traj/columnar.h"
#include "traj/trajectory.h"

namespace neat::store {

/// Zero-copy SoA view of one trajectory: parallel spans into the mapped
/// point columns. Valid while the owning store lives.
struct TrajectoryView {
  TrajectoryId id;
  std::span<const double> t;
  std::span<const std::int32_t> seg;
  std::span<const double> x;
  std::span<const double> y;
  std::span<const std::uint8_t> flags;  ///< Bit 0 = junction point.

  [[nodiscard]] std::size_t size() const { return t.size(); }

  /// Copies the view into an owning row-oriented Trajectory.
  [[nodiscard]] traj::Trajectory materialize() const;
};

/// Tuning of a columnar store open.
struct ColumnarStoreOptions {
  /// Verify the footer checksum on open by streaming the file through
  /// read() (not the mapping, so verification does not inflate RSS).
  /// Disable only for huge files whose integrity is established elsewhere.
  bool verify_checksum{true};
};

/// Read-only mmap-backed store over one `.neatcol` file.
class ColumnarTrajectoryStore {
 public:
  /// Opens and maps `path`, validating header, section layout and footer
  /// (plus the checksum per `options`). Throws neat::Error when the file
  /// cannot be opened or mapped, neat::ParseError when it is not a valid
  /// columnar trajectory file.
  explicit ColumnarTrajectoryStore(const std::string& path, ColumnarStoreOptions options = {});
  ~ColumnarTrajectoryStore();

  ColumnarTrajectoryStore(const ColumnarTrajectoryStore&) = delete;
  ColumnarTrajectoryStore& operator=(const ColumnarTrajectoryStore&) = delete;

  [[nodiscard]] std::size_t size() const { return num_trajectories_; }
  [[nodiscard]] bool empty() const { return num_trajectories_ == 0; }
  [[nodiscard]] std::size_t num_points() const { return num_points_; }

  /// Bytes of file this store has mapped (the whole file).
  [[nodiscard]] std::uint64_t bytes_mapped() const { return size_; }

  /// Bytes of the mapped point columns, i.e. the dataset payload a full
  /// scan touches (excludes header, ids, index and padding).
  [[nodiscard]] std::uint64_t point_bytes() const;

  /// Zero-copy view of trajectory `i` (file order). Thread-safe.
  [[nodiscard]] TrajectoryView view(std::size_t i) const;

  /// Owning copy of trajectory `i`. Thread-safe.
  [[nodiscard]] traj::Trajectory materialize(std::size_t i) const;

  /// Advises the OS to drop the resident pages backing trajectories
  /// [begin, end) — the bounded-memory scan primitive. The data stays
  /// valid (it faults back in from the file); only whole pages fully
  /// inside the range are dropped. Thread-safe; no-op on ranges too small
  /// to cover a page.
  void release(std::size_t begin, std::size_t end) const;

  /// Sum of bytes_mapped() over all live stores in the process (what the
  /// neat_store_bytes_mapped gauge exports).
  [[nodiscard]] static std::uint64_t total_bytes_mapped();

 private:
  /// Point index range [first, last) of trajectory `i`.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> point_range(std::size_t i) const;

  std::string path_;
  const std::byte* map_{nullptr};
  std::uint64_t size_{0};
  traj::ColumnarHeader header_{};
  std::size_t num_trajectories_{0};
  std::size_t num_points_{0};
  const std::int64_t* trids_{nullptr};
  const std::uint64_t* index_{nullptr};
};

/// Adapts a columnar store to the Phase 1 TrajectorySource interface.
/// `at` materializes from the mapping; `batch_done` releases the consumed
/// range (when `release_batches`), so a streaming Phase 1 run keeps only
/// about one batch of points resident.
class ColumnarTrajectorySource final : public TrajectorySource {
 public:
  /// Keeps a reference to `store`; do not outlive it.
  explicit ColumnarTrajectorySource(const ColumnarTrajectoryStore& store,
                                    bool release_batches = true)
      : store_(store), release_batches_(release_batches) {}

  [[nodiscard]] std::size_t size() const override { return store_.size(); }
  [[nodiscard]] traj::Trajectory at(std::size_t i) const override {
    return store_.materialize(i);
  }
  void batch_done(std::size_t begin, std::size_t end) override {
    if (release_batches_) store_.release(begin, end);
  }

 private:
  const ColumnarTrajectoryStore& store_;
  bool release_batches_;
};

}  // namespace neat::store
