#include "store/columnar_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/string_util.h"
#include "obs/registry.h"

namespace neat::store {

namespace {

using traj::ColumnarFooter;
using traj::ColumnarHeader;
using traj::Fnv1a;

/// Sum of live mappings across all stores, exported as the
/// neat_store_bytes_mapped gauge.
std::atomic<std::uint64_t> g_total_mapped{0};

void publish_total_mapped() {
  obs::Registry& reg = obs::Registry::global();
  reg.set_help("neat_store_bytes_mapped",
               "Bytes of columnar trajectory files currently memory-mapped.");
  reg.gauge("neat_store_bytes_mapped")
      .set(static_cast<double>(g_total_mapped.load(std::memory_order_relaxed)));
}

/// Closes `fd` on scope exit (the mapping outlives the descriptor).
struct FdCloser {
  int fd{-1};
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

void read_exact(int fd, std::uint64_t off, void* buf, std::size_t n, const std::string& path) {
  auto* out = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::pread(fd, out, n, static_cast<off_t>(off));
    if (got <= 0) throw Error(str_cat("short read from columnar file '", path, "'"));
    out += got;
    off += static_cast<std::uint64_t>(got);
    n -= static_cast<std::size_t>(got);
  }
}

std::uint64_t pad8(std::uint64_t pos) { return (8 - pos % 8) % 8; }

/// Column byte widths in section order (t, seg, x, y, flags).
constexpr std::uint64_t kColStride[5] = {8, 4, 8, 8, 1};

std::size_t page_size() {
  static const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

traj::Trajectory TrajectoryView::materialize() const {
  std::vector<traj::Location> points;
  points.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    points.push_back(traj::Location{SegmentId(seg[i]), Point{x[i], y[i]}, t[i],
                                    (flags[i] & 1u) != 0});
  }
  return traj::Trajectory(id, std::move(points));
}

ColumnarTrajectoryStore::ColumnarTrajectoryStore(const std::string& path,
                                                 ColumnarStoreOptions options)
    : path_(path) {
  FdCloser fd;
  fd.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd.fd < 0) throw Error(str_cat("cannot open '", path, "' for reading"));
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) throw Error(str_cat("cannot stat '", path, "'"));
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ < sizeof(ColumnarHeader) + sizeof(ColumnarFooter)) {
    throw ParseError(str_cat("'", path, "' is too small to be a columnar trajectory file"));
  }

  read_exact(fd.fd, 0, &header_, sizeof(header_), path_);
  if (header_.magic != traj::kColumnarMagic) {
    throw ParseError(str_cat("'", path,
                             "' is not a columnar trajectory file (bad magic; "
                             "foreign-endian files are not supported)"));
  }
  if (header_.version != traj::kColumnarVersion) {
    throw ParseError(str_cat("'", path, "' has unsupported columnar version ", header_.version,
                             " (this build reads version ", traj::kColumnarVersion, ")"));
  }
  if (header_.flags != 0) {
    throw ParseError(str_cat("'", path, "' has unknown columnar flags ", header_.flags));
  }
  if (header_.num_trajectories > size_ / 8 || header_.num_points > size_ / 8) {
    throw ParseError(str_cat("'", path, "' declares more data than the file holds"));
  }

  // The layout is canonical: recomputing it from the counts must reproduce
  // the header's offsets and land the footer at end of file. This bounds-
  // checks every section in one go.
  std::uint64_t pos = sizeof(ColumnarHeader);
  const auto place = [&pos](std::uint64_t bytes) {
    pos += pad8(pos);
    const std::uint64_t at = pos;
    pos += bytes;
    return at;
  };
  const std::uint64_t expect[7] = {place(header_.num_trajectories * 8),
                                   place((header_.num_trajectories + 1) * 8),
                                   place(header_.num_points * kColStride[0]),
                                   place(header_.num_points * kColStride[1]),
                                   place(header_.num_points * kColStride[2]),
                                   place(header_.num_points * kColStride[3]),
                                   place(header_.num_points * kColStride[4])};
  pos += pad8(pos);
  const std::uint64_t actual[7] = {header_.off_trid, header_.off_index, header_.off_t,
                                   header_.off_seg,  header_.off_x,     header_.off_y,
                                   header_.off_flags};
  for (int i = 0; i < 7; ++i) {
    if (expect[i] != actual[i]) {
      throw ParseError(str_cat("'", path, "' has a malformed section layout"));
    }
  }
  if (size_ != pos + sizeof(ColumnarFooter)) {
    throw ParseError(str_cat("'", path, "' is truncated or padded (", size_, " bytes, expected ",
                             pos + sizeof(ColumnarFooter), ")"));
  }

  ColumnarFooter footer;
  read_exact(fd.fd, pos, &footer, sizeof(footer), path_);
  if (footer.end_magic != traj::kColumnarEndMagic) {
    throw ParseError(str_cat("'", path, "' is truncated (bad end magic)"));
  }

  // The offsets index must be monotone and span exactly num_points; checked
  // streaming through read() so huge files do not fault pages in.
  {
    std::vector<std::uint64_t> buf(1 << 16);
    std::uint64_t prev = 0;
    std::uint64_t remaining = header_.num_trajectories + 1;
    std::uint64_t off = header_.off_index;
    bool first = true;
    while (remaining > 0) {
      const std::uint64_t n = std::min<std::uint64_t>(remaining, buf.size());
      read_exact(fd.fd, off, buf.data(), n * 8, path_);
      for (std::uint64_t i = 0; i < n; ++i) {
        if ((first && buf[i] != 0) || (!first && buf[i] < prev)) {
          throw ParseError(str_cat("'", path, "' has a corrupt trajectory index"));
        }
        prev = buf[i];
        first = false;
      }
      off += n * 8;
      remaining -= n;
    }
    if (prev != header_.num_points) {
      throw ParseError(str_cat("'", path, "' has a corrupt trajectory index"));
    }
  }

  if (options.verify_checksum) {
    // Stream each section through read() and chain the digests exactly as
    // the writer does. Reading via the fd (not the future mapping) keeps
    // verification from inflating the resident set.
    const std::uint64_t sections[7][2] = {
        {actual[0], header_.num_trajectories * 8},
        {actual[1], (header_.num_trajectories + 1) * 8},
        {actual[2], header_.num_points * kColStride[0]},
        {actual[3], header_.num_points * kColStride[1]},
        {actual[4], header_.num_points * kColStride[2]},
        {actual[5], header_.num_points * kColStride[3]},
        {actual[6], header_.num_points * kColStride[4]}};
    std::vector<char> buf(1 << 20);
    Fnv1a combined;
    for (const auto& [off0, len] : sections) {
      Fnv1a section;
      std::uint64_t off = off0;
      std::uint64_t remaining = len;
      while (remaining > 0) {
        const std::uint64_t n = std::min<std::uint64_t>(remaining, buf.size());
        read_exact(fd.fd, off, buf.data(), n, path_);
        section.update(buf.data(), n);
        off += n;
        remaining -= n;
      }
      const std::uint64_t d = section.digest();
      combined.update(&d, sizeof(d));
    }
    if (combined.digest() != footer.checksum) {
      throw ParseError(str_cat("'", path, "' failed checksum verification"));
    }
  }

  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd.fd, 0);
  if (map == MAP_FAILED) throw Error(str_cat("cannot mmap '", path, "'"));
  map_ = static_cast<const std::byte*>(map);
  num_trajectories_ = header_.num_trajectories;
  num_points_ = header_.num_points;
  trids_ = reinterpret_cast<const std::int64_t*>(map_ + header_.off_trid);
  index_ = reinterpret_cast<const std::uint64_t*>(map_ + header_.off_index);

  g_total_mapped.fetch_add(size_, std::memory_order_relaxed);
  publish_total_mapped();
}

ColumnarTrajectoryStore::~ColumnarTrajectoryStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::byte*>(map_), size_);
    g_total_mapped.fetch_sub(size_, std::memory_order_relaxed);
    publish_total_mapped();
  }
}

std::uint64_t ColumnarTrajectoryStore::point_bytes() const {
  std::uint64_t per_point = 0;
  for (const std::uint64_t s : kColStride) per_point += s;
  return num_points_ * per_point;
}

std::pair<std::uint64_t, std::uint64_t> ColumnarTrajectoryStore::point_range(
    std::size_t i) const {
  NEAT_EXPECT(i < num_trajectories_, "columnar store index out of range");
  return {index_[i], index_[i + 1]};
}

TrajectoryView ColumnarTrajectoryStore::view(std::size_t i) const {
  const auto [lo, hi] = point_range(i);
  const std::size_t n = hi - lo;
  TrajectoryView v;
  v.id = TrajectoryId(trids_[i]);
  v.t = {reinterpret_cast<const double*>(map_ + header_.off_t) + lo, n};
  v.seg = {reinterpret_cast<const std::int32_t*>(map_ + header_.off_seg) + lo, n};
  v.x = {reinterpret_cast<const double*>(map_ + header_.off_x) + lo, n};
  v.y = {reinterpret_cast<const double*>(map_ + header_.off_y) + lo, n};
  v.flags = {reinterpret_cast<const std::uint8_t*>(map_ + header_.off_flags) + lo, n};
  return v;
}

traj::Trajectory ColumnarTrajectoryStore::materialize(std::size_t i) const {
  return view(i).materialize();
}

void ColumnarTrajectoryStore::release(std::size_t begin, std::size_t end) const {
  if (begin >= end || begin >= num_trajectories_) return;
  end = std::min(end, num_trajectories_);
  const std::uint64_t lo = index_[begin];
  const std::uint64_t hi = index_[end];
  const std::uint64_t col_off[5] = {header_.off_t, header_.off_x, header_.off_y,
                                    header_.off_seg, header_.off_flags};
  const std::uint64_t col_stride[5] = {8, 8, 8, 4, 1};
  const std::uint64_t page = page_size();
  for (int c = 0; c < 5; ++c) {
    // Round inward to whole pages: neighbours sharing an edge page keep it.
    std::uint64_t from = col_off[c] + lo * col_stride[c];
    std::uint64_t to = col_off[c] + hi * col_stride[c];
    from = (from + page - 1) / page * page;
    to = to / page * page;
    if (from >= to) continue;
    ::madvise(const_cast<std::byte*>(map_) + from, to - from, MADV_DONTNEED);
  }
}

std::uint64_t ColumnarTrajectoryStore::total_bytes_mapped() {
  return g_total_mapped.load(std::memory_order_relaxed);
}

}  // namespace neat::store
