// Reusable embedded HTTP/1.1 server — the socket core every network plane
// in the process shares.
//
// Extracted from the admin server (obs::HttpExporter, which is now a thin
// set of routes on top of this class) so the public query plane
// (net::QueryService) and any future service run on one hardened core:
// POSIX sockets, a blocking accept loop on a background thread, a small
// bounded worker pool, and an exact-match route table registered before
// start().
//
//   net::HttpServer server(opts);
//   server.handle("/v1/ping", [](const net::HttpRequest& q) {
//     return net::HttpResponse{200, "application/json", "{\"pong\":true}"};
//   });
//   server.start();           // binds, listens, spawns threads; throws on error
//   ... server.port() ...
//   server.stop();            // idempotent; port is free again afterwards
//
// Request model: GET and HEAD are accepted everywhere; PUT only on routes
// registered with `allow_put` (admin control surfaces like /logz — request
// bodies are never read, parameters travel in the query string). Anything
// else answers 405. The query string is split off the target and
// percent-decoded into ordered key/value parameters before the handler
// runs. Unknown paths answer 404, malformed request lines 400. Every
// response carries Content-Length and `Connection: close` and the socket
// is closed after the write, so plain `curl` always terminates.
//
// Hardening (all bounds tunable through HttpServerOptions):
//   * request head capped at `max_request_bytes` — exceeding it without a
//     blank line answers 431 Request Header Fields Too Large;
//   * request line capped at `max_request_line_bytes` — exceeding it
//     answers 414 URI Too Long;
//   * per-socket read/write timeouts (SO_RCVTIMEO/SO_SNDTIMEO) from
//     `read_timeout`, so a stalled client can never wedge a worker or
//     shutdown for long;
//   * accepted connections wait in a bounded queue; when it is full the
//     connection is closed immediately (load shedding). Sheds bump
//     shed_total(), the `neat_net_shed_total` registry counter (when a
//     registry is attached) and the `on_shed` hook.
//
// Self-instrumentation: with `options.registry` set, every answered request
// is counted as `neat_net_requests_total{path=...,code=...}` (path label
// bounded to registered routes, anything else is "other"). The `observer`
// hook additionally sees every (path, code) pair — the admin exporter uses
// it to keep its legacy `neat_obs_http_*` counters byte-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace neat::net {

/// One parsed request as seen by a route handler.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", or "PUT" on an allow_put route.
  std::string path;    ///< Target up to (not including) '?'.
  std::string query;   ///< Raw query string after '?', "" when absent.
  /// Percent-decoded query parameters in request order ('+' decodes to a
  /// space; a key without '=' carries an empty value).
  std::vector<std::pair<std::string, std::string>> params;

  /// Value of the first parameter named `key`, or nullptr when absent.
  [[nodiscard]] const std::string* param(std::string_view key) const;
};

/// What a route handler returns; rendered with Content-Length and
/// `Connection: close` (body omitted for HEAD, length kept truthful).
struct HttpResponse {
  int code{200};
  std::string content_type{"text/plain; charset=utf-8"};
  std::string body;
};

/// A route handler. Invoked from worker threads: must be thread-safe and
/// must not throw (a throwing handler is answered as 500 defensively).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Tuning of an HttpServer.
struct HttpServerOptions {
  /// IPv4 address to bind; "0.0.0.0" exposes the plane beyond localhost.
  std::string bind_address{"127.0.0.1"};
  /// TCP port; 0 picks an ephemeral port, queried back via port().
  std::uint16_t port{0};
  /// Worker threads answering requests (>= 1).
  std::size_t worker_threads{2};
  /// Accepted connections allowed to wait for a worker before shedding.
  std::size_t max_pending_connections{16};
  /// Upper bound on the request head (request line + headers) in bytes;
  /// exceeded without a terminating blank line answers 431.
  std::size_t max_request_bytes{8192};
  /// Upper bound on the request line alone; exceeded answers 414.
  std::size_t max_request_line_bytes{2048};
  /// SO_RCVTIMEO / SO_SNDTIMEO on every accepted socket.
  std::chrono::milliseconds read_timeout{2000};
  /// When set, the server self-instruments into this registry:
  /// neat_net_requests_total{path,code} and neat_net_shed_total.
  obs::Registry* registry{nullptr};
  /// Invoked (from worker threads) for every answered request with the
  /// request path ("" when the request line never parsed) and status code.
  std::function<void(const std::string& path, int code)> observer;
  /// Invoked (from the acceptor thread) per shed connection.
  std::function<void()> on_shed;
};

/// Embedded multi-threaded HTTP server with an exact-match route table.
/// Register routes with handle(), then start(); stop() (also run by the
/// destructor) joins every thread and releases the port.
class HttpServer {
 public:
  /// Stores the options; no sockets or threads yet. Callbacks and handlers
  /// are invoked from server threads and must be thread-safe.
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (must start with '/').
  /// `allow_put` additionally routes PUT requests to the handler (which
  /// branches on HttpRequest::method); GET/HEAD are always routed.
  /// Throws neat::PreconditionError after start() or on a duplicate path.
  void handle(std::string path, HttpHandler handler, bool allow_put = false);

  /// Binds + listens and starts the acceptor and worker threads. Throws
  /// neat::Error when the address is unavailable; at most one call.
  void start();

  /// Stops accepting, wakes and joins every thread, closes all sockets.
  /// Idempotent; after it returns the bound port is released.
  void stop();

  /// The actually bound TCP port (resolves port 0 requests); 0 before
  /// start().
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Requests answered so far (any status code, handle_request included).
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Connections shed because the pending queue was full.
  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_.load(std::memory_order_relaxed);
  }

  /// Registered route paths, in registration order.
  [[nodiscard]] std::vector<std::string> routes() const;

  /// Dispatches one already-parsed request line through the route table and
  /// returns the full HTTP response bytes (headers always; body unless
  /// HEAD). Exposed for tests and in-process callers; socket connections go
  /// through exactly this, so counters and observers fire here too.
  [[nodiscard]] std::string handle_request(const std::string& method,
                                           const std::string& target) const;

 private:
  struct Route {
    std::string path;
    HttpHandler handler;
    bool allow_put{false};
  };

  [[nodiscard]] HttpResponse dispatch(const std::string& method,
                                      const std::string& target,
                                      std::string* path_out) const;
  void count_request(const std::string& path, int code) const;
  [[nodiscard]] static std::string render(const HttpResponse& r, bool include_body);

  void accept_loop();
  void worker_loop();
  void serve_connection(int fd) const;

  HttpServerOptions options_;
  std::vector<Route> routes_;  ///< Frozen at start().
  std::atomic<bool> started_{false};
  std::atomic<int> listen_fd_{-1};  ///< Written by stop() while the acceptor reads it.
  std::uint16_t port_{0};
  std::atomic<bool> stopping_{false};
  mutable std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted fds waiting for a worker.

  std::vector<std::thread> workers_;
  std::thread acceptor_;  ///< Started last, after all state.
};

}  // namespace neat::net
