#include "net/query_service.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/log/log.h"
#include "obs/trace.h"

namespace neat::net {

namespace {

/// Internal control flow of one request: thrown by validation helpers,
/// caught by QueryService::answer and rendered as the structured error body.
struct RequestError {
  int code;            ///< HTTP status.
  const char* error;   ///< Machine-readable error code.
  std::string detail;  ///< Human-readable explanation.
};

HttpResponse json_response(int code, std::string body) {
  return {code, "application/json", std::move(body)};
}

HttpResponse error_response(int code, const char* error, const std::string& detail) {
  return json_response(code, str_cat("{\"error\":\"", error, "\",\"detail\":\"",
                                     obs::json_escape(detail), "\"}"));
}

/// Required numeric parameter: present and parseable or the request fails.
double require_double(const HttpRequest& req, const char* key) {
  const std::string* raw = req.param(key);
  if (raw == nullptr) {
    throw RequestError{400, "missing_parameter",
                       str_cat("required parameter '", key, "' is missing")};
  }
  double v = 0.0;
  try {
    v = parse_double(*raw);
  } catch (const ParseError&) {
    throw RequestError{400, "invalid_parameter",
                       str_cat("parameter '", key, "' is not a number: '", *raw, "'")};
  }
  if (!std::isfinite(v)) {
    throw RequestError{400, "invalid_parameter",
                       str_cat("parameter '", key, "' must be finite")};
  }
  return v;
}

std::int64_t parse_int_param(const HttpRequest& req, const char* key,
                             const std::string& raw) {
  (void)req;
  try {
    return parse_int(raw);
  } catch (const ParseError&) {
    throw RequestError{400, "invalid_parameter",
                       str_cat("parameter '", key, "' is not an integer: '", raw, "'")};
  }
}

std::int64_t require_int(const HttpRequest& req, const char* key) {
  const std::string* raw = req.param(key);
  if (raw == nullptr) {
    throw RequestError{400, "missing_parameter",
                       str_cat("required parameter '", key, "' is missing")};
  }
  return parse_int_param(req, key, *raw);
}

std::int64_t optional_int(const HttpRequest& req, const char* key,
                          std::int64_t fallback) {
  const std::string* raw = req.param(key);
  return raw == nullptr ? fallback : parse_int_param(req, key, *raw);
}

/// The request's correlation id: the `trace_id` parameter when given (must
/// be a non-negative integer; 0 = mint), a fresh obs::next_trace_id()
/// otherwise.
std::uint64_t resolve_trace_id(const HttpRequest& req) {
  const std::int64_t raw = optional_int(req, "trace_id", 0);
  if (raw < 0) {
    throw RequestError{400, "invalid_parameter", "parameter 'trace_id' must be >= 0"};
  }
  const auto id = static_cast<std::uint64_t>(raw);
  return id == 0 ? obs::next_trace_id() : id;
}

std::string json_int_array(const std::vector<std::uint32_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

/// Required comma-separated junction-id list ("0,5,12"): every element must
/// parse as an integer and name an existing node, and the list must be
/// non-empty — an empty table has no meaningful answer over HTTP.
std::vector<NodeId> require_node_list(const HttpRequest& req, const char* key,
                                      std::size_t node_count) {
  const std::string* raw = req.param(key);
  if (raw == nullptr) {
    throw RequestError{400, "missing_parameter",
                       str_cat("required parameter '", key, "' is missing")};
  }
  if (trim(*raw).empty()) {
    throw RequestError{400, "invalid_parameter",
                       str_cat("parameter '", key, "' must list at least one junction")};
  }
  std::vector<NodeId> nodes;
  for (const std::string& field : split(*raw, ',')) {
    const std::string_view token = trim(field);
    std::int64_t v = 0;
    try {
      v = parse_int(token);
    } catch (const ParseError&) {
      throw RequestError{400, "invalid_parameter",
                         str_cat("parameter '", key,
                                 "' must be a comma-separated list of junction ids; '",
                                 std::string(token), "' is not an integer")};
    }
    if (v < 0 || v >= static_cast<std::int64_t>(node_count)) {
      throw RequestError{404, "unknown_node",
                         str_cat("node ", v, " does not exist (network has ",
                                 node_count, " junctions)")};
    }
    nodes.push_back(NodeId(static_cast<std::int32_t>(v)));
  }
  if (nodes.empty()) {
    throw RequestError{400, "invalid_parameter",
                       str_cat("parameter '", key, "' must list at least one junction")};
  }
  return nodes;
}

std::string json_node_array(const std::vector<NodeId>& nodes) {
  std::string out = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(nodes[i].value());
  }
  out += ']';
  return out;
}

}  // namespace

QueryService::QueryService(const roadnet::RoadNetwork& net,
                           const serve::QueryEngine& engine, sim::TripPlanner* planner,
                           obs::Registry& registry, QueryServiceOptions options)
    : net_(net),
      engine_(engine),
      planner_(planner),
      registry_(registry),
      options_(options),
      nearest_ep_(make_endpoint("net.nearest", "nearest")),
      segment_ep_(make_endpoint("net.segment", "segment")),
      topk_ep_(make_endpoint("net.topk", "topk")),
      route_ep_(make_endpoint("net.route", "route")),
      table_ep_(make_endpoint("net.table", "table")) {
  NEAT_EXPECT(options_.default_radius_m > 0.0, "default_radius_m must be positive");
  NEAT_EXPECT(options_.max_radius_m >= options_.default_radius_m,
              "max_radius_m must cover default_radius_m");
  NEAT_EXPECT(options_.default_k >= 1 && options_.default_k <= options_.max_k,
              "default_k must be in [1, max_k]");
  NEAT_EXPECT(options_.max_table_cells >= 1, "max_table_cells must be at least 1");
  registry_.set_help("neat_net_request_seconds",
                     "Query-plane request latency by endpoint.");
  registry_.set_help("neat_net_errors_total",
                     "Query-plane 4xx/5xx responses by endpoint.");
}

QueryService::Endpoint QueryService::make_endpoint(const char* span_name,
                                                   const char* label) {
  return Endpoint{
      span_name, label,
      registry_.histogram("neat_net_request_seconds", {{"endpoint", label}}),
      registry_.counter("neat_net_errors_total", {{"endpoint", label}})};
}

void QueryService::register_routes(HttpServer& server) {
  server.handle("/v1/nearest", [this](const HttpRequest& req) { return nearest(req); });
  server.handle("/v1/segment", [this](const HttpRequest& req) { return segment(req); });
  server.handle("/v1/topk", [this](const HttpRequest& req) { return topk(req); });
  server.handle("/v1/route", [this](const HttpRequest& req) { return route(req); });
  server.handle("/v1/table", [this](const HttpRequest& req) { return table(req); });
}

template <class Fn>
HttpResponse QueryService::answer(const Endpoint& ep, const HttpRequest& req,
                                  Fn&& fn) const {
  const Stopwatch watch;
  obs::ScopedSpan span(ep.span_name);
  HttpResponse r;
  std::uint64_t trace_id = 0;
  try {
    trace_id = resolve_trace_id(req);
    // Ambient for the whole handler: every NEAT_LOG line emitted below this
    // frame (engine, roadnet, serve) carries the request's trace_id.
    const obs::TraceIdScope trace_scope(trace_id);
    r = fn(trace_id);
  } catch (const RequestError& e) {
    r = error_response(e.code, e.error, e.detail);
  }
  span.arg("trace_id", trace_id);
  span.arg("code", static_cast<std::int64_t>(r.code));
  const double seconds = watch.elapsed_seconds();
  ep.latency.record(seconds);
  if (r.code >= 400) ep.errors.add(1);
  const obs::TraceIdScope trace_scope(trace_id);
  NEAT_LOG(kDebug, "net")
      .msg("request answered")
      .kv("endpoint", ep.label)
      .kv("code", r.code)
      .kv("duration_ms", seconds * 1e3);
  if (options_.slow_request_seconds > 0.0 && seconds >= options_.slow_request_seconds) {
    NEAT_LOG(kWarn, "net")
        .msg("slow request")
        .kv("endpoint", ep.label)
        .kv("code", r.code)
        .kv("duration_ms", seconds * 1e3)
        .kv("threshold_ms", options_.slow_request_seconds * 1e3);
  }
  return r;
}

HttpResponse QueryService::nearest(const HttpRequest& req) const {
  return answer(nearest_ep_, req, [&](std::uint64_t trace_id) {
    const double x = require_double(req, "x");
    const double y = require_double(req, "y");
    const std::string* radius_raw = req.param("radius");
    double radius = options_.default_radius_m;
    if (radius_raw != nullptr) radius = require_double(req, "radius");
    if (radius <= 0.0 || radius > options_.max_radius_m) {
      throw RequestError{400, "invalid_parameter",
                         str_cat("parameter 'radius' must be in (0, ",
                                 format_fixed(options_.max_radius_m, 0), "]")};
    }
    if (engine_.snapshot() == nullptr) {
      throw RequestError{503, "no_snapshot", "no cluster snapshot published yet"};
    }
    const auto hit = engine_.nearest_flow(Point{x, y}, radius, trace_id);
    if (!hit) {
      throw RequestError{404, "no_flow",
                         str_cat("no flow within ", format_fixed(radius, 1),
                                 " m of (", format_fixed(x, 1), ", ",
                                 format_fixed(y, 1), ")")};
    }
    return json_response(
        200, str_cat("{\"trace_id\":", hit->trace_id,
                     ",\"snapshot_version\":", hit->snapshot_version,
                     ",\"flow\":", hit->flow, ",\"segment\":", hit->segment.value(),
                     ",\"distance_m\":", format_fixed(hit->distance_m, 3),
                     ",\"final_cluster\":", hit->final_cluster,
                     ",\"cardinality\":", hit->cardinality, "}"));
  });
}

HttpResponse QueryService::segment(const HttpRequest& req) const {
  return answer(segment_ep_, req, [&](std::uint64_t trace_id) {
    const std::int64_t sid = require_int(req, "sid");
    if (sid < 0 || sid >= static_cast<std::int64_t>(net_.segment_count())) {
      throw RequestError{404, "unknown_segment",
                         str_cat("segment ", sid, " does not exist (network has ",
                                 net_.segment_count(), " segments)")};
    }
    if (engine_.snapshot() == nullptr) {
      throw RequestError{503, "no_snapshot", "no cluster snapshot published yet"};
    }
    const serve::SegmentFlows flows =
        engine_.flows_on_segment(SegmentId(static_cast<std::int32_t>(sid)), trace_id);
    return json_response(
        200, str_cat("{\"trace_id\":", flows.trace_id,
                     ",\"snapshot_version\":", flows.snapshot_version,
                     ",\"segment\":", sid, ",\"flows\":", json_int_array(flows.flows),
                     "}"));
  });
}

HttpResponse QueryService::topk(const HttpRequest& req) const {
  return answer(topk_ep_, req, [&](std::uint64_t trace_id) {
    const std::int64_t k =
        optional_int(req, "k", static_cast<std::int64_t>(options_.default_k));
    if (k < 1 || k > static_cast<std::int64_t>(options_.max_k)) {
      throw RequestError{400, "invalid_parameter",
                         str_cat("parameter 'k' must be in [1, ", options_.max_k, "]")};
    }
    if (engine_.snapshot() == nullptr) {
      throw RequestError{503, "no_snapshot", "no cluster snapshot published yet"};
    }
    const serve::TopFlows top =
        engine_.top_k_flows(static_cast<std::size_t>(k), trace_id);
    std::string body = str_cat("{\"trace_id\":", top.trace_id,
                               ",\"snapshot_version\":", top.snapshot_version,
                               ",\"k\":", k, ",\"flows\":[");
    for (std::size_t i = 0; i < top.flows.size(); ++i) {
      const serve::RankedFlow& f = top.flows[i];
      if (i > 0) body += ',';
      body += str_cat("{\"flow\":", f.flow, ",\"cardinality\":", f.cardinality,
                      ",\"route_length_m\":", format_fixed(f.route_length_m, 3),
                      ",\"final_cluster\":", f.final_cluster, "}");
    }
    body += "]}";
    return json_response(200, std::move(body));
  });
}

HttpResponse QueryService::route(const HttpRequest& req) const {
  return answer(route_ep_, req, [&](std::uint64_t trace_id) {
    const std::int64_t from = require_int(req, "from");
    const std::int64_t to = require_int(req, "to");
    const auto node_count = static_cast<std::int64_t>(net_.node_count());
    for (const auto& [key, value] : {std::pair<const char*, std::int64_t>{"from", from},
                                     {"to", to}}) {
      if (value < 0 || value >= node_count) {
        throw RequestError{404, "unknown_node",
                           str_cat("node ", value, " does not exist (network has ",
                                   node_count, " junctions)")};
      }
      (void)key;
    }
    if (planner_ == nullptr) {
      throw RequestError{503, "route_planning_disabled",
                         "this server runs without a route planner"};
    }
    std::optional<roadnet::Route> planned;
    bool via_ch = false;
    {
      const std::lock_guard<std::mutex> lock(planner_mu_);
      planned = planner_->plan(NodeId(static_cast<std::int32_t>(from)),
                               NodeId(static_cast<std::int32_t>(to)));
      via_ch = planner_->uses_ch();
    }
    if (!planned) {
      throw RequestError{404, "unreachable",
                         str_cat("no route from node ", from, " to node ", to)};
    }
    std::vector<std::uint32_t> segments;
    segments.reserve(planned->edges.size());
    for (const EdgeId e : planned->edges) {
      segments.push_back(static_cast<std::uint32_t>(net_.edge(e).sid.value()));
    }
    std::vector<std::uint32_t> nodes;
    for (const NodeId n : planned->node_path(net_)) {
      nodes.push_back(static_cast<std::uint32_t>(n.value()));
    }
    return json_response(
        200, str_cat("{\"trace_id\":", trace_id, ",\"from\":", from, ",\"to\":", to,
                     ",\"engine\":\"", via_ch ? "ch" : "sssp",
                     "\",\"length_m\":", format_fixed(planned->length, 3),
                     ",\"travel_time_s\":", format_fixed(planned->travel_time, 3),
                     ",\"segments\":", json_int_array(segments),
                     ",\"nodes\":", json_int_array(nodes), "}"));
  });
}

HttpResponse QueryService::table(const HttpRequest& req) const {
  return answer(table_ep_, req, [&](std::uint64_t trace_id) {
    const std::vector<NodeId> sources =
        require_node_list(req, "sources", net_.node_count());
    const std::vector<NodeId> targets =
        require_node_list(req, "targets", net_.node_count());
    const std::size_t cells = sources.size() * targets.size();
    if (cells > options_.max_table_cells) {
      throw RequestError{
          400, "table_too_large",
          str_cat("table of ", sources.size(), " x ", targets.size(), " = ", cells,
                  " cells exceeds the cap of ", options_.max_table_cells)};
    }
    double bound = roadnet::kInfDistance;
    if (req.param("bound") != nullptr) {
      bound = require_double(req, "bound");
      if (bound <= 0.0) {
        throw RequestError{400, "invalid_parameter",
                           "parameter 'bound' must be positive"};
      }
    }
    // Same plane-readiness gate as the other endpoints: a server whose store
    // has never published is not serving traffic yet, and answering tables
    // from it would hide the operational problem.
    if (engine_.snapshot() == nullptr) {
      throw RequestError{503, "no_snapshot", "no cluster snapshot published yet"};
    }

    std::vector<double> distances(cells);
    {
      const std::lock_guard<std::mutex> lock(table_mu_);
      if (!table_engine_) {
        // First table request pays the one-time hierarchy build (undirected,
        // metres — the Phase 3 metric the flow map itself is clustered in).
        table_ch_ = std::make_unique<const roadnet::ChEngine>(net_);
        table_engine_ = std::make_unique<roadnet::CHTableEngine>(*table_ch_);
      }
      table_engine_->table(sources, targets, distances, bound);
    }

    std::string body = str_cat("{\"trace_id\":", trace_id,
                               ",\"sources\":", json_node_array(sources),
                               ",\"targets\":", json_node_array(targets),
                               ",\"distances_m\":[");
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (i > 0) body += ',';
      body += '[';
      for (std::size_t k = 0; k < targets.size(); ++k) {
        if (k > 0) body += ',';
        const double d = distances[i * targets.size() + k];
        // Unreachable (or beyond the bound) cells are JSON null: every
        // consumer — including `python3 -m json.tool` in CI — can parse the
        // body without an out-of-band infinity convention.
        body += d == roadnet::kInfDistance ? "null" : format_fixed(d, 3);
      }
      body += ']';
    }
    body += "]}";
    return json_response(200, std::move(body));
  });
}

}  // namespace neat::net
