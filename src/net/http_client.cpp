#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace neat::net {

namespace {

void set_timeouts(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

std::string raw_request(const std::string& host, std::uint16_t port,
                        const std::string& request_bytes,
                        std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return "";
  set_timeouts(fd, timeout);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request_bytes.size()) {
    const ssize_t n = ::send(fd, request_bytes.data() + sent,
                             request_bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

HttpResult http_get(std::uint16_t port, const std::string& target,
                    std::chrono::milliseconds timeout) {
  HttpResult out;
  out.raw = raw_request("127.0.0.1", port,
                        "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n",
                        timeout);
  out.code = status_of(out.raw);
  out.body = body_of(out.raw);
  return out;
}

HttpResult http_put(std::uint16_t port, const std::string& target,
                    std::chrono::milliseconds timeout) {
  HttpResult out;
  out.raw = raw_request("127.0.0.1", port,
                        "PUT " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n",
                        timeout);
  out.code = status_of(out.raw);
  out.body = body_of(out.raw);
  return out;
}

int status_of(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12 || response.rfind("HTTP/1.1 ", 0) != 0) return -1;
  int code = 0;
  for (int i = 9; i < 12; ++i) {
    if (response[i] < '0' || response[i] > '9') return -1;
    code = code * 10 + (response[i] - '0');
  }
  return code;
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

}  // namespace neat::net
