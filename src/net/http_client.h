// Minimal blocking HTTP/1.1 client for loopback traffic.
//
// One request per connection (the server answers `Connection: close`), no
// keep-alive, no TLS, no redirects — exactly enough to drive and test the
// in-process HTTP planes (net::HttpServer, obs::HttpExporter) from load
// generators, benches and unit tests without pulling in a dependency.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace neat::net {

/// One finished exchange. `code` is -1 when no parseable status line came
/// back (connection refused, timeout, empty response).
struct HttpResult {
  int code{-1};
  std::string body;  ///< Bytes after the blank line; "" when none.
  std::string raw;   ///< Everything read from the socket, headers included.

  [[nodiscard]] bool ok() const { return code == 200; }
};

/// Sends `request_bytes` verbatim to `host`:`port` and reads until the
/// server closes the connection (or `timeout` elapses per socket op).
/// Returns the raw response bytes; "" on connect/send failure.
[[nodiscard]] std::string raw_request(
    const std::string& host, std::uint16_t port, const std::string& request_bytes,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

/// Issues `GET target HTTP/1.1` against 127.0.0.1:`port` and parses the
/// status code and body out of the response.
[[nodiscard]] HttpResult http_get(
    std::uint16_t port, const std::string& target,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

/// Issues `PUT target HTTP/1.1` (no body — parameters travel in the query
/// string, matching the admin plane's control endpoints such as /logz).
[[nodiscard]] HttpResult http_put(
    std::uint16_t port, const std::string& target,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

/// Status code of a raw HTTP/1.1 response, -1 when unparseable.
[[nodiscard]] int status_of(const std::string& response);

/// Body of a raw HTTP/1.1 response ("" when no blank line was seen).
[[nodiscard]] std::string body_of(const std::string& response);

}  // namespace neat::net
