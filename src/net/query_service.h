// Public HTTP query plane: JSON endpoints over the serving stack.
//
// A QueryService turns the in-process read path (serve::QueryEngine over a
// SnapshotStore) and the road-network route planner (sim::TripPlanner,
// optionally CH-backed) into versioned public endpoints on a
// net::HttpServer:
//
//   GET /v1/nearest?x=&y=[&radius=][&trace_id=]   flow clusters near a point
//   GET /v1/segment?sid=[&trace_id=]              flows through a segment
//   GET /v1/topk[?k=][&trace_id=]                 densest flows
//   GET /v1/route?from=&to=[&trace_id=]           directed shortest route
//   GET /v1/table?sources=&targets=[&bound=][&trace_id=]
//                                                 many-to-many distance table
//
// /v1/table takes comma-separated junction id lists and answers the full
// sources x targets matrix of undirected network distances (metres, the
// Phase 3 metric) from one bucket-based CH fill (roadnet::CHTableEngine);
// unreachable or beyond-`bound` cells are JSON null. The matrix size is
// capped (QueryServiceOptions::max_table_cells, answering 400
// `table_too_large`) because response size and fill work grow with it.
//
// Every response is JSON. Errors are structured, machine-readable objects
// `{"error":"<code>","detail":"<human text>"}`:
//   400  missing_parameter / invalid_parameter — strict validation: every
//        parameter must parse, radii and k must be within configured caps;
//        table_too_large (sources x targets above the cap);
//   404  unknown_segment / unknown_node (well-formed but nonexistent id),
//        no_flow (nothing within the radius), unreachable (no route);
//   503  no_snapshot (the store has never published — queries against an
//        empty store are an operational error, not an empty success),
//        route_planning_disabled (no planner attached).
//
// Request correlation: each endpoint accepts an optional `trace_id` query
// parameter (a fresh obs::next_trace_id() is minted when absent or 0). The
// id is attached to the endpoint's span and echoed in the response body, so
// one /tracez search follows one request from the HTTP edge through the
// engine's query spans — the same convention the ingest path uses.
//
// Observability: the service records, per endpoint, a
// `neat_net_request_seconds{endpoint=...}` obs::Log2Histogram and a
// `neat_net_errors_total{endpoint=...}` counter (4xx/5xx) into its
// registry; the underlying HttpServer contributes
// `neat_net_requests_total{path=...,code=...}` and `neat_net_shed_total`
// when constructed with the same registry attached. Structured logging: the
// request's trace id is installed as the thread's ambient id for the whole
// handler, every request emits a debug line, and requests slower than
// QueryServiceOptions::slow_request_seconds emit a warn "slow request" line
// (endpoint, status, duration, trace_id) joinable against /tracez.
//
// Thread safety: handlers run on the server's worker pool. QueryEngine is
// already thread-safe; the TripPlanner is not and is serialized behind an
// internal mutex (route planning is the only stateful endpoint).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/http_server.h"
#include "obs/registry.h"
#include "roadnet/ch_table.h"
#include "serve/query_engine.h"
#include "sim/trip_planner.h"

namespace neat::net {

/// Validation caps and defaults of the query plane.
struct QueryServiceOptions {
  /// /v1/nearest search radius when the parameter is omitted.
  double default_radius_m{500.0};
  /// Largest accepted /v1/nearest radius (grid scans grow with it).
  double max_radius_m{10000.0};
  /// /v1/topk answer size when the parameter is omitted.
  std::size_t default_k{10};
  /// Largest accepted /v1/topk k.
  std::size_t max_k{1000};
  /// Largest accepted /v1/table matrix (sources x targets cells): both the
  /// response body and the fill work grow with the product, so oversized
  /// requests answer 400 table_too_large instead of stalling a worker.
  std::size_t max_table_cells{4096};
  /// Requests slower than this emit one structured warn line (module "net":
  /// endpoint, status, duration_ms, trace_id) so operators can join the
  /// line against /tracez and /profilez. <= 0 disables the slow log.
  double slow_request_seconds{0.5};
};

/// The /v1/* endpoint family. Keeps references to `net`, `engine`,
/// `planner` (nullable: /v1/route answers 503) and `registry`; do not
/// outlive them.
class QueryService {
 public:
  QueryService(const roadnet::RoadNetwork& net, const serve::QueryEngine& engine,
               sim::TripPlanner* planner, obs::Registry& registry,
               QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers the five /v1/* routes on `server` (before server.start()).
  /// Attach the same registry to the server's options to get the
  /// neat_net_requests_total / neat_net_shed_total counters alongside the
  /// service's per-endpoint series.
  void register_routes(HttpServer& server);

  // Endpoint handlers, exposed for in-process tests; the registered routes
  // call exactly these.
  [[nodiscard]] HttpResponse nearest(const HttpRequest& req) const;
  [[nodiscard]] HttpResponse segment(const HttpRequest& req) const;
  [[nodiscard]] HttpResponse topk(const HttpRequest& req) const;
  [[nodiscard]] HttpResponse route(const HttpRequest& req) const;
  [[nodiscard]] HttpResponse table(const HttpRequest& req) const;

 private:
  /// Per-endpoint cached registry series (creation is the cold path).
  struct Endpoint {
    const char* span_name;       ///< Static-storage span name ("net.nearest").
    const char* label;           ///< Metric/log endpoint label ("nearest").
    obs::Log2Histogram& latency;
    obs::Counter& errors;
  };

  template <class Fn>
  [[nodiscard]] HttpResponse answer(const Endpoint& ep, const HttpRequest& req,
                                    Fn&& fn) const;

  Endpoint make_endpoint(const char* span_name, const char* label);

  const roadnet::RoadNetwork& net_;
  const serve::QueryEngine& engine_;
  sim::TripPlanner* planner_;
  obs::Registry& registry_;
  QueryServiceOptions options_;
  mutable std::mutex planner_mu_;  ///< TripPlanner is stateful; serialize it.
  /// /v1/table backend, built lazily on the first table request (an
  /// undirected hierarchy over the whole network — a one-time cost most
  /// deployments never pay) and serialized like the planner: the table
  /// engine's label caches are stateful.
  mutable std::mutex table_mu_;
  mutable std::unique_ptr<const roadnet::ChEngine> table_ch_;
  mutable std::unique_ptr<roadnet::CHTableEngine> table_engine_;
  Endpoint nearest_ep_;
  Endpoint segment_ep_;
  Endpoint topk_ep_;
  Endpoint route_ep_;
  Endpoint table_ep_;
};

}  // namespace neat::net
