#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/string_util.h"
#include "obs/log/log.h"

namespace neat::net {

namespace {

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void set_socket_timeouts(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decoding of one query-string token ('+' is a space; a malformed
/// %-escape is kept literally, never an error).
std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && hex_digit(s[i + 1]) >= 0 &&
               hex_digit(s[i + 2]) >= 0) {
      out += static_cast<char>(hex_digit(s[i + 1]) * 16 + hex_digit(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Splits `query` ("a=1&b=x%20y") into decoded key/value pairs in order.
std::vector<std::pair<std::string, std::string>> parse_query(std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t at = 0;
  while (at <= query.size()) {
    const std::size_t amp = query.find('&', at);
    const std::string_view pair =
        query.substr(at, amp == std::string_view::npos ? amp : amp - at);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(url_decode(pair), "");
      } else {
        params.emplace_back(url_decode(pair.substr(0, eq)),
                            url_decode(pair.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    at = amp + 1;
  }
  return params;
}

}  // namespace

const std::string* HttpRequest::param(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

HttpServer::HttpServer(HttpServerOptions options) : options_(std::move(options)) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.max_pending_connections == 0) options_.max_pending_connections = 1;
  if (options_.max_request_bytes == 0) options_.max_request_bytes = 1024;
  if (options_.max_request_line_bytes == 0) options_.max_request_line_bytes = 256;
  if (options_.read_timeout.count() <= 0) {
    options_.read_timeout = std::chrono::milliseconds(2000);
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler, bool allow_put) {
  if (started_.load(std::memory_order_acquire)) {
    throw PreconditionError("HttpServer: handle() after start()");
  }
  if (path.empty() || path.front() != '/') {
    throw PreconditionError(str_cat("HttpServer: route '", path,
                                    "' must start with '/'"));
  }
  if (handler == nullptr) {
    throw PreconditionError(str_cat("HttpServer: null handler for '", path, "'"));
  }
  for (const Route& existing : routes_) {
    if (existing.path == path) {
      throw PreconditionError(str_cat("HttpServer: duplicate route '", path, "'"));
    }
  }
  routes_.push_back({std::move(path), std::move(handler), allow_put});
}

void HttpServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw PreconditionError("HttpServer: start() called twice");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error(str_cat("HttpServer: socket() failed: ", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error(str_cat("HttpServer: invalid bind address '",
                        options_.bind_address, "'"));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(str_cat("HttpServer: cannot listen on ", options_.bind_address, ":",
                        options_.port, ": ", why));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(str_cat("HttpServer: getsockname() failed: ", why));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  NEAT_LOG(kInfo, "net")
      .msg("listening")
      .kv("address", options_.bind_address)
      .kv("port", port_)
      .kv("workers", options_.worker_threads)
      .kv("routes", routes_.size());

  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (acceptor_.joinable()) acceptor_.join();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    return;
  }
  // Unblock the acceptor: shutdown() makes a blocked accept() return on
  // Linux, close() releases the port.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Connections still queued were never answered; just release them.
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    for (const int pending_fd : pending_) ::close(pending_fd);
    pending_.clear();
  }
  if (port_ != 0) {
    NEAT_LOG(kInfo, "net")
        .msg("stopped")
        .kv("port", port_)
        .kv("requests_served", served_.load(std::memory_order_relaxed))
        .kv("shed", shed_.load(std::memory_order_relaxed));
  }
}

std::vector<std::string> HttpServer::routes() const {
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const Route& route : routes_) out.push_back(route.path);
  return out;
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket gone (EBADF/EINVAL after stop, or fatal)
    }
    set_socket_timeouts(fd, options_.read_timeout);
    bool shed = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      ::close(fd);
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (options_.registry != nullptr) {
        options_.registry->counter("neat_net_shed_total").add(1);
      }
      // The logger's rate limiter collapses a shed storm into summary lines.
      NEAT_LOG(kWarn, "net")
          .msg("connection shed: pending queue full")
          .kv("port", port_)
          .kv("max_pending", options_.max_pending_connections);
      if (options_.on_shed) options_.on_shed();
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) const {
  // Read until the end of the request head (bodies are never consumed) or
  // until the size cap / timeout; a client that sends nothing valid within
  // either bound gets an error response or a plain close.
  std::string request;
  char buf[1024];
  bool head_complete = false;
  while (request.size() < options_.max_request_bytes) {
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      head_complete = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {  // EOF, timeout or error
      if (!request.empty()) {
        NEAT_LOG(kDebug, "net")
            .msg("request read ended before head completed")
            .kv("bytes_read", request.size())
            .kv("timed_out", errno == EAGAIN || errno == EWOULDBLOCK);
      }
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.empty()) return;  // connected and left: nothing to answer

  if (!head_complete && request.size() >= options_.max_request_bytes) {
    count_request("", 431);
    NEAT_LOG(kWarn, "net")
        .msg("request head too large")
        .kv("limit", options_.max_request_bytes);
    send_all(fd, render({431, "text/plain; charset=utf-8",
                         "request head too large\n"},
                        true));
    return;
  }

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::size_t eol = request.find_first_of("\r\n");
  const std::string line = request.substr(0, eol);
  if (line.size() > options_.max_request_line_bytes) {
    count_request("", 414);
    NEAT_LOG(kWarn, "net")
        .msg("request line too long")
        .kv("length", line.size())
        .kv("limit", options_.max_request_line_bytes);
    send_all(fd, render({414, "text/plain; charset=utf-8",
                         "request line too long\n"},
                        true));
    return;
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  std::string method, target, version;
  if (sp1 != std::string::npos && sp2 != std::string::npos && sp2 > sp1 + 1) {
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    version = line.substr(sp2 + 1);
  }
  if (method.empty() || target.empty() || target.front() != '/' ||
      version.rfind("HTTP/", 0) != 0) {
    count_request("", 400);
    NEAT_LOG(kDebug, "net").msg("malformed request line");
    send_all(fd,
             render({400, "text/plain; charset=utf-8", "bad request\n"}, true));
    return;
  }
  send_all(fd, handle_request(method, target));
}

std::string HttpServer::handle_request(const std::string& method,
                                       const std::string& target) const {
  std::string path;
  const HttpResponse r = dispatch(method, target, &path);
  count_request(path, r.code);
  return render(r, method != "HEAD");
}

HttpResponse HttpServer::dispatch(const std::string& method,
                                  const std::string& target,
                                  std::string* path_out) const {
  const std::size_t qmark = target.find('?');
  *path_out = target.substr(0, qmark);
  if (method != "GET" && method != "HEAD" && method != "PUT") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  for (const Route& route : routes_) {
    if (route.path != *path_out) continue;
    if (method == "PUT" && !route.allow_put) {
      return {405, "text/plain; charset=utf-8", "method not allowed\n"};
    }
    HttpRequest req;
    req.method = method;
    req.path = *path_out;
    if (qmark != std::string::npos) req.query = target.substr(qmark + 1);
    req.params = parse_query(req.query);
    try {
      return route.handler(req);
    } catch (const std::exception&) {
      // Handlers are documented not to throw; answer rather than crash a
      // worker, and never leak exception text to the wire.
      return {500, "text/plain; charset=utf-8", "internal error\n"};
    }
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

void HttpServer::count_request(const std::string& path, int code) const {
  served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    // Bound the label cardinality: only the registered route table appears
    // as a path label, anything else (including malformed requests) is
    // "other".
    bool known = false;
    for (const Route& route : routes_) {
      if (route.path == path) {
        known = true;
        break;
      }
    }
    options_.registry
        ->counter("neat_net_requests_total",
                  {{"path", known ? path : "other"}, {"code", std::to_string(code)}})
        .add(1);
  }
  if (options_.observer) options_.observer(path, code);
}

std::string HttpServer::render(const HttpResponse& r, bool include_body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(r.code);
  out += ' ';
  out += reason_phrase(r.code);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (include_body) out += r.body;
  return out;
}

}  // namespace neat::net
