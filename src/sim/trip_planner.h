// Route planning for the mobility simulator.
//
// Trips target a small predefined destination set while originating from
// many distinct junctions inside the hotspot regions, so the planner caches
// one *reverse* shortest-path tree per destination and answers every trip
// toward it in O(route length), independent of the origin count.
//
// Alternatively the planner reuses a directed ChEngine (see
// roadnet/ch_engine.h): route costs are identical, but planning stays cheap
// even when the destination set is large or trips are ad hoc, because the
// per-endpoint upward labels the engine's Query memoizes are tiny compared
// to a full reverse SSSP tree per destination.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "roadnet/ch_engine.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace neat::sim {

/// Shortest-route planner with per-destination reverse-SSSP caching, or
/// CH-backed planning when given an engine. Keeps a reference to the
/// network; do not outlive it. Not thread safe.
class TripPlanner {
 public:
  /// `ch`, when given, must be a *directed* engine built over `net` with
  /// the same metric (throws neat::PreconditionError otherwise); the
  /// planner then answers plan()/reachable() from the hierarchy instead of
  /// growing reverse SSSP trees.
  TripPlanner(const roadnet::RoadNetwork& net, roadnet::Metric metric,
              std::shared_ptr<const roadnet::ChEngine> ch = nullptr);

  /// Shortest route from `origin` to `dest` under the planner's metric, or
  /// std::nullopt when unreachable.
  [[nodiscard]] std::optional<roadnet::Route> plan(NodeId origin, NodeId dest);

  /// True when `dest` is reachable from `origin`.
  [[nodiscard]] bool reachable(NodeId origin, NodeId dest);

  /// Number of cached reverse SSSP trees (one per distinct destination;
  /// always 0 in CH mode).
  [[nodiscard]] std::size_t cached_destinations() const { return trees_.size(); }

  /// True when routes come from a contraction hierarchy.
  [[nodiscard]] bool uses_ch() const { return query_.has_value(); }

 private:
  const roadnet::ReverseSsspTree& tree_for(NodeId dest);

  const roadnet::RoadNetwork& net_;
  roadnet::Metric metric_;
  std::unordered_map<NodeId, std::unique_ptr<roadnet::ReverseSsspTree>> trees_;
  std::shared_ptr<const roadnet::ChEngine> ch_;
  std::optional<roadnet::ChEngine::Query> query_;
};

}  // namespace neat::sim
