// Route planning for the mobility simulator.
//
// Trips target a small predefined destination set while originating from
// many distinct junctions inside the hotspot regions, so the planner caches
// one *reverse* shortest-path tree per destination and answers every trip
// toward it in O(route length), independent of the origin count.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace neat::sim {

/// Shortest-route planner with per-destination reverse-SSSP caching. Keeps
/// a reference to the network; do not outlive it. Not thread safe.
class TripPlanner {
 public:
  TripPlanner(const roadnet::RoadNetwork& net, roadnet::Metric metric);

  /// Shortest route from `origin` to `dest` under the planner's metric, or
  /// std::nullopt when unreachable.
  [[nodiscard]] std::optional<roadnet::Route> plan(NodeId origin, NodeId dest);

  /// True when `dest` is reachable from `origin`.
  [[nodiscard]] bool reachable(NodeId origin, NodeId dest);

  /// Number of cached reverse SSSP trees (one per distinct destination).
  [[nodiscard]] std::size_t cached_destinations() const { return trees_.size(); }

 private:
  const roadnet::ReverseSsspTree& tree_for(NodeId dest);

  const roadnet::RoadNetwork& net_;
  roadnet::Metric metric_;
  std::unordered_map<NodeId, std::unique_ptr<roadnet::ReverseSsspTree>> trees_;
};

}  // namespace neat::sim
