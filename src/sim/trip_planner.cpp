#include "sim/trip_planner.h"

#include "common/error.h"

namespace neat::sim {

TripPlanner::TripPlanner(const roadnet::RoadNetwork& net, roadnet::Metric metric,
                         std::shared_ptr<const roadnet::ChEngine> ch)
    : net_(net), metric_(metric), ch_(std::move(ch)) {
  if (ch_ != nullptr) {
    NEAT_EXPECT(ch_->options().directed, "TripPlanner: CH engine must be directed");
    NEAT_EXPECT(ch_->options().metric == metric_,
                "TripPlanner: CH engine metric must match the planner metric");
    NEAT_EXPECT(&ch_->network() == &net_,
                "TripPlanner: CH engine must be built over the planner's network");
    query_.emplace(*ch_);
  }
}

const roadnet::ReverseSsspTree& TripPlanner::tree_for(NodeId dest) {
  auto it = trees_.find(dest);
  if (it == trees_.end()) {
    it = trees_
             .emplace(dest, std::make_unique<roadnet::ReverseSsspTree>(net_, dest, metric_))
             .first;
  }
  return *it->second;
}

std::optional<roadnet::Route> TripPlanner::plan(NodeId origin, NodeId dest) {
  if (query_) return query_->route(origin, dest);
  return tree_for(dest).route_from(origin);
}

bool TripPlanner::reachable(NodeId origin, NodeId dest) {
  if (query_) return query_->distance(origin, dest) < roadnet::kInfDistance;
  return tree_for(dest).reachable_from(origin);
}

}  // namespace neat::sim
