#include "sim/trip_planner.h"

namespace neat::sim {

TripPlanner::TripPlanner(const roadnet::RoadNetwork& net, roadnet::Metric metric)
    : net_(net), metric_(metric) {}

const roadnet::ReverseSsspTree& TripPlanner::tree_for(NodeId dest) {
  auto it = trees_.find(dest);
  if (it == trees_.end()) {
    it = trees_
             .emplace(dest, std::make_unique<roadnet::ReverseSsspTree>(net_, dest, metric_))
             .first;
  }
  return *it->second;
}

std::optional<roadnet::Route> TripPlanner::plan(NodeId origin, NodeId dest) {
  return tree_for(dest).route_from(origin);
}

bool TripPlanner::reachable(NodeId origin, NodeId dest) {
  return tree_for(dest).reachable_from(origin);
}

}  // namespace neat::sim
