// Event-based mobility trace generator (GTMobiSIM substitute, paper §IV-A).
//
// Mirrors the paper's generation process: mobile objects are placed at a
// small set of hotspot junctions, each picks a destination at random from a
// predefined destination set, travels the shortest route under per-segment
// speed limits, and records its road-network location every sample period.
// The hotspot/destination structure is what concentrates traffic into the
// major flows NEAT discovers (paper Figure 3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "traj/dataset.h"

namespace neat::sim {

/// One window of a congestion profile: departures in [begin_s, end_s) are
/// slowed to `speed_multiplier` of free flow.
struct CongestionWindow {
  double begin_s{0.0};
  double end_s{0.0};
  double speed_multiplier{1.0};
};

/// The congestion multiplier in effect at departure time `t` (1.0 outside
/// every window; the first matching window wins).
[[nodiscard]] double congestion_factor(const std::vector<CongestionWindow>& profile,
                                       double t);

/// Simulation parameters.
struct SimConfig {
  /// Hotspot centers. Trips originate from junctions within
  /// `hotspot_radius_m` of a chosen center — the paper's "dense regions
  /// that concentrate the short flows" (Figure 3 discussion). Empty:
  /// `default_config` picks spread-out junctions.
  std::vector<NodeId> hotspots;
  /// Relative hotspot popularity; empty means uniform.
  std::vector<double> hotspot_weights;
  /// Origin spread around each hotspot center (0: exact center only).
  double hotspot_radius_m{600.0};
  /// Predefined destination set (the paper's "X" marks). Must be non-empty
  /// at generate() time.
  std::vector<NodeId> destinations;
  double sample_period_s{4.0};    ///< Location recording period.
  double min_speed_factor{0.8};   ///< Objects drive in [min, max] × speed limit.
  double max_speed_factor{1.0};
  double start_jitter_s{600.0};   ///< Trip start times spread over [0, jitter].
  roadnet::Metric metric{roadnet::Metric::kTravelTime};  ///< Routing metric.
  /// Optional time-of-day congestion profile: piecewise-constant speed
  /// multipliers. Empty: free flow. An object departing at t drives at
  /// speed_limit × speed_factor × congestion_factor(t) for its whole trip
  /// (departure-time congestion — the rush-hour effect without modelling
  /// vehicle interaction). Factors must be in (0, 1].
  std::vector<CongestionWindow> congestion;
  /// Route trips through a directed contraction hierarchy instead of
  /// per-destination reverse SSSP trees. Route *costs* are identical; the
  /// tie-break between equal-cost routes may differ, so this is a distinct
  /// deterministic universe, not a drop-in replacement for existing seeds.
  bool use_ch_routing{false};
};

/// Picks `n_hotspots` origins and `n_destinations` destinations spread over
/// the network (deterministic for a given network) and returns a config with
/// the remaining fields at their defaults.
[[nodiscard]] SimConfig default_config(const roadnet::RoadNetwork& net,
                                       int n_hotspots = 2, int n_destinations = 3);

/// Generates trajectory datasets over one road network.
class MobilitySimulator {
 public:
  /// Keeps a reference to the network; do not outlive it.
  /// Throws neat::PreconditionError on malformed configs.
  MobilitySimulator(const roadnet::RoadNetwork& net, SimConfig config);

  /// Simulates `n_objects` trips and returns their trajectories. Objects
  /// whose sampled destination is unreachable retry a few times and are
  /// skipped if still unlucky (rare: generated networks are connected
  /// ignoring one-way restrictions). Deterministic in (network, config,
  /// seed).
  [[nodiscard]] traj::TrajectoryDataset generate(std::size_t n_objects,
                                                 std::uint64_t seed) const;

  /// Like generate(), but returns raw GPS traces: positions carry Gaussian
  /// noise of the given standard deviation and no segment ids — input for
  /// the map matcher.
  [[nodiscard]] std::vector<traj::RawTrace> generate_raw(std::size_t n_objects,
                                                         std::uint64_t seed,
                                                         double noise_stddev_m) const;

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  const roadnet::RoadNetwork& net_;
  SimConfig config_;
};

/// Simulates a single trip along `route` starting at `t0`, sampling every
/// `config.sample_period_s`. Exposed for tests.
[[nodiscard]] traj::Trajectory simulate_trip(const roadnet::RoadNetwork& net,
                                             const SimConfig& config, TrajectoryId id,
                                             const roadnet::Route& route, double t0,
                                             double speed_factor);

}  // namespace neat::sim
