#include "sim/mobility_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "sim/trip_planner.h"

namespace neat::sim {

namespace {

NodeId nearest_node(const roadnet::RoadNetwork& net, Point target) {
  NodeId best = NodeId::invalid();
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto id = NodeId(static_cast<std::int32_t>(i));
    // Only junctions with at least one incident segment make useful trip
    // endpoints.
    if (net.segments_at(id).empty()) continue;
    const double d = distance_sq(net.node(id).pos, target);
    if (d < best_d) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

void validate_config(const roadnet::RoadNetwork& net, const SimConfig& c) {
  NEAT_EXPECT(!c.hotspots.empty(), "SimConfig: at least one hotspot is required");
  NEAT_EXPECT(!c.destinations.empty(), "SimConfig: at least one destination is required");
  NEAT_EXPECT(c.sample_period_s > 0.0, "SimConfig: sample period must be positive");
  NEAT_EXPECT(c.min_speed_factor > 0.0 && c.min_speed_factor <= c.max_speed_factor,
              "SimConfig: speed factors must satisfy 0 < min <= max");
  NEAT_EXPECT(c.hotspot_weights.empty() || c.hotspot_weights.size() == c.hotspots.size(),
              "SimConfig: hotspot_weights must match hotspots in size");
  NEAT_EXPECT(c.start_jitter_s >= 0.0, "SimConfig: start jitter must be non-negative");
  NEAT_EXPECT(c.hotspot_radius_m >= 0.0, "SimConfig: hotspot radius must be non-negative");
  for (const CongestionWindow& w : c.congestion) {
    NEAT_EXPECT(w.begin_s <= w.end_s, "SimConfig: congestion window is inverted");
    NEAT_EXPECT(w.speed_multiplier > 0.0 && w.speed_multiplier <= 1.0,
                "SimConfig: congestion multiplier must be in (0, 1]");
  }
  for (const NodeId h : c.hotspots) static_cast<void>(net.node(h));
  for (const NodeId d : c.destinations) static_cast<void>(net.node(d));
}

}  // namespace

double congestion_factor(const std::vector<CongestionWindow>& profile, double t) {
  for (const CongestionWindow& w : profile) {
    if (t >= w.begin_s && t < w.end_s) return w.speed_multiplier;
  }
  return 1.0;
}

SimConfig default_config(const roadnet::RoadNetwork& net, int n_hotspots,
                         int n_destinations) {
  NEAT_EXPECT(n_hotspots >= 1 && n_destinations >= 1,
              "default_config: need at least one hotspot and one destination");
  const roadnet::Bounds bb = net.bounding_box();
  const auto at_frac = [&](double fx, double fy) {
    return nearest_node(net, {bb.min.x + fx * (bb.max.x - bb.min.x),
                              bb.min.y + fy * (bb.max.y - bb.min.y)});
  };
  // Hotspots in the lower half, destinations along the top and sides — the
  // same "commute across town" structure as the paper's Figure 3.
  const std::vector<std::pair<double, double>> hotspot_fracs = {
      {0.25, 0.2}, {0.75, 0.25}, {0.5, 0.1}, {0.1, 0.35}, {0.9, 0.1}, {0.4, 0.3}};
  const std::vector<std::pair<double, double>> dest_fracs = {
      {0.15, 0.9}, {0.85, 0.85}, {0.5, 0.95}, {0.05, 0.6}, {0.95, 0.55}, {0.65, 0.75}};

  SimConfig cfg;
  for (int i = 0; i < n_hotspots; ++i) {
    const auto [fx, fy] = hotspot_fracs[static_cast<std::size_t>(i) % hotspot_fracs.size()];
    const NodeId n = at_frac(fx, fy);
    if (n.valid() && std::find(cfg.hotspots.begin(), cfg.hotspots.end(), n) ==
                         cfg.hotspots.end()) {
      cfg.hotspots.push_back(n);
    }
  }
  for (int i = 0; i < n_destinations; ++i) {
    const auto [fx, fy] = dest_fracs[static_cast<std::size_t>(i) % dest_fracs.size()];
    const NodeId n = at_frac(fx, fy);
    if (n.valid() && std::find(cfg.destinations.begin(), cfg.destinations.end(), n) ==
                         cfg.destinations.end()) {
      cfg.destinations.push_back(n);
    }
  }
  NEAT_EXPECT(!cfg.hotspots.empty() && !cfg.destinations.empty(),
              "default_config: network has no usable junctions");
  return cfg;
}

MobilitySimulator::MobilitySimulator(const roadnet::RoadNetwork& net, SimConfig config)
    : net_(net), config_(std::move(config)) {
  validate_config(net_, config_);
}

traj::Trajectory simulate_trip(const roadnet::RoadNetwork& net, const SimConfig& config,
                               TrajectoryId id, const roadnet::Route& route, double t0,
                               double speed_factor) {
  NEAT_EXPECT(!route.edges.empty(), "simulate_trip: route must have at least one edge");
  traj::Trajectory tr(id);

  // Walk the route edge by edge; `t` advances with physical motion, and a
  // sample is recorded whenever `t` crosses the next sampling instant.
  double t = t0;
  double next_sample = t0;  // the first sample is the trip origin
  for (const EdgeId eid : route.edges) {
    const roadnet::DirectedEdge& e = net.edge(eid);
    const roadnet::Segment& seg = net.segment(e.sid);
    const double speed = seg.speed_limit * speed_factor;
    const double edge_time = seg.length / speed;
    const Point from = net.node(e.from).pos;
    const Point to = net.node(e.to).pos;
    const double t_end = t + edge_time;
    while (next_sample <= t_end + 1e-12) {
      const double frac = std::clamp((next_sample - t) / edge_time, 0.0, 1.0);
      tr.append(traj::Location{e.sid, lerp(from, to, frac), next_sample, false});
      next_sample += config.sample_period_s;
    }
    t = t_end;
  }
  // Always record the arrival point so the trajectory ends at the
  // destination even when it falls between sampling instants.
  const roadnet::DirectedEdge& last = net.edge(route.edges.back());
  if (tr.empty() || tr.back().t < t - 1e-12) {
    tr.append(traj::Location{last.sid, net.node(last.to).pos, t, false});
  }
  return tr;
}

traj::TrajectoryDataset MobilitySimulator::generate(std::size_t n_objects,
                                                    std::uint64_t seed) const {
  Rng rng(seed);
  std::shared_ptr<const roadnet::ChEngine> ch;
  if (config_.use_ch_routing) {
    roadnet::ChOptions copts;
    copts.directed = true;
    copts.metric = config_.metric;
    ch = std::make_shared<const roadnet::ChEngine>(net_, copts);
  }
  TripPlanner planner(net_, config_.metric, std::move(ch));
  traj::TrajectoryDataset data;
  constexpr int kMaxDestinationRetries = 8;

  // Junctions within the hotspot radius of each center: the candidate trip
  // origins per region. Centers with no in-radius neighbours fall back to
  // the center itself.
  std::vector<std::vector<NodeId>> region_origins(config_.hotspots.size());
  for (std::size_t h = 0; h < config_.hotspots.size(); ++h) {
    const Point center = net_.node(config_.hotspots[h]).pos;
    if (config_.hotspot_radius_m > 0.0) {
      for (std::size_t i = 0; i < net_.node_count(); ++i) {
        const auto id = NodeId(static_cast<std::int32_t>(i));
        if (net_.segments_at(id).empty()) continue;
        if (distance(net_.node(id).pos, center) <= config_.hotspot_radius_m) {
          region_origins[h].push_back(id);
        }
      }
    }
    if (region_origins[h].empty()) region_origins[h].push_back(config_.hotspots[h]);
  }

  for (std::size_t obj = 0; obj < n_objects; ++obj) {
    const std::size_t h = config_.hotspot_weights.empty()
                              ? rng.index(config_.hotspots.size())
                              : rng.weighted_index(config_.hotspot_weights);
    const NodeId origin = rng.pick(region_origins[h]);

    std::optional<roadnet::Route> route;
    for (int attempt = 0; attempt < kMaxDestinationRetries && !route; ++attempt) {
      const NodeId dest = rng.pick(config_.destinations);
      if (dest == origin) continue;
      route = planner.plan(origin, dest);
    }
    if (!route) continue;  // isolated by one-way restrictions; skip the object

    const double t0 = config_.start_jitter_s > 0.0 ? rng.uniform(0.0, config_.start_jitter_s)
                                                   : 0.0;
    const double factor = rng.uniform(config_.min_speed_factor, config_.max_speed_factor) *
                          congestion_factor(config_.congestion, t0);
    data.add(simulate_trip(net_, config_, TrajectoryId(static_cast<std::int64_t>(obj)),
                           *route, t0, factor));
  }
  return data;
}

std::vector<traj::RawTrace> MobilitySimulator::generate_raw(std::size_t n_objects,
                                                            std::uint64_t seed,
                                                            double noise_stddev_m) const {
  NEAT_EXPECT(noise_stddev_m >= 0.0, "generate_raw: noise stddev must be non-negative");
  const traj::TrajectoryDataset data = generate(n_objects, seed);
  Rng noise(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<traj::RawTrace> traces;
  traces.reserve(data.size());
  for (const traj::Trajectory& tr : data) {
    traj::RawTrace raw;
    raw.id = tr.id();
    raw.points.reserve(tr.size());
    for (const traj::Location& loc : tr.points()) {
      Point p = loc.pos;
      if (noise_stddev_m > 0.0) {
        p.x += noise.gaussian(0.0, noise_stddev_m);
        p.y += noise.gaussian(0.0, noise_stddev_m);
      }
      raw.points.push_back(traj::RawPoint{p, loc.t});
    }
    traces.push_back(std::move(raw));
  }
  return traces;
}

}  // namespace neat::sim
