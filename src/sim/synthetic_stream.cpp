#include "sim/synthetic_stream.h"

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "traj/columnar.h"

namespace neat::sim {

SyntheticStreamStats generate_columnar_stream(const roadnet::RoadNetwork& net,
                                              const std::string& path,
                                              const SyntheticStreamOptions& options) {
  NEAT_EXPECT(net.segment_count() > 0, "synthetic stream needs a non-empty network");
  NEAT_EXPECT(options.segments_per_trajectory > 0,
              "synthetic stream needs at least one segment per trajectory");
  NEAT_EXPECT(options.samples_per_segment > 0,
              "synthetic stream needs at least one sample per segment");
  NEAT_EXPECT(options.sample_period_s > 0.0, "sample period must be positive");

  traj::ColumnarWriter writer(path);
  Rng rng(options.seed);

  const std::size_t n_points =
      options.segments_per_trajectory * options.samples_per_segment;
  std::vector<double> ts(n_points), xs(n_points), ys(n_points);
  std::vector<std::int32_t> segs(n_points);
  const std::vector<std::uint8_t> flags(n_points, 0);  // raw samples only

  for (std::size_t obj = 0; obj < options.trajectories; ++obj) {
    // Start on a random segment, entering at a random endpoint; each object
    // starts at a slightly different wall-clock time so traversal intervals
    // are not all identical.
    SegmentId sid(static_cast<std::int32_t>(rng.index(net.segment_count())));
    const roadnet::Segment* seg = &net.segment(sid);
    NodeId enter = rng.bernoulli(0.5) ? seg->a : seg->b;
    double t = static_cast<double>(obj % 1024) * 0.25;

    std::size_t p = 0;
    for (std::size_t leg = 0; leg < options.segments_per_trajectory; ++leg) {
      // Sample the walk across this segment. Offsets are measured from
      // endpoint `a`, so a walk entering at `b` runs them backwards.
      const double len = seg->length;
      const bool from_a = enter == seg->a;
      for (std::size_t k = 0; k < options.samples_per_segment; ++k) {
        const double frac = (static_cast<double>(k) + 0.5) /
                            static_cast<double>(options.samples_per_segment);
        const double offset = from_a ? len * frac : len * (1.0 - frac);
        const Point pos = net.point_on_segment(sid, offset);
        ts[p] = t;
        segs[p] = sid.value();
        xs[p] = pos.x;
        ys[p] = pos.y;
        ++p;
        t += options.sample_period_s;
      }

      // Cross the reached junction into an adjacent segment; dead ends turn
      // the walk around. Adjacency keeps Phase 1 on its junction-insertion
      // fast path (no shortest-path gap repair).
      const NodeId exit = net.other_endpoint(sid, enter);
      const std::span<const SegmentId> star = net.segments_at(exit);
      SegmentId next = sid;
      if (star.size() > 1) {
        do {
          next = star[rng.index(star.size())];
        } while (next == sid);
      }
      enter = exit;
      sid = next;
      seg = &net.segment(sid);
    }

    writer.append(TrajectoryId(static_cast<std::int64_t>(obj)), ts.data(), segs.data(),
                  xs.data(), ys.data(), flags.data(), n_points);
  }

  SyntheticStreamStats stats;
  stats.trajectories = writer.trajectories();
  stats.points = writer.points();
  writer.finish();
  return stats;
}

}  // namespace neat::sim
