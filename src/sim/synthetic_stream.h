// Bulk synthetic trajectory generation straight to the columnar format.
//
// The mobility simulator (mobility_simulator.h) reproduces the paper's
// hotspot/destination generation process but materializes every trajectory
// in memory and routes each trip with a shortest-path search — at the
// million-trajectory scale of the out-of-core benchmarks both are
// prohibitive. This generator instead emits corridor walks: each object
// starts on a random segment and keeps crossing into an adjacent segment at
// the junction it reaches, sampling its position as it goes. Consecutive
// samples therefore always sit on the same or an adjacent segment, which
// exercises exactly the Phase 1 fast path (junction-point insertion, no
// shortest-path gap repair), and trajectories stream into a ColumnarWriter
// one at a time, so generation is bounded-memory at any scale.
// Deterministic in (network, options).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "roadnet/road_network.h"

namespace neat::sim {

/// Parameters of one synthetic columnar dataset.
struct SyntheticStreamOptions {
  std::size_t trajectories{1'000'000};
  std::size_t segments_per_trajectory{6};  ///< Corridor length in segments.
  std::size_t samples_per_segment{24};     ///< Location samples per segment.
  double sample_period_s{2.0};             ///< Time between samples.
  std::uint64_t seed{42};
};

/// What generate_columnar_stream wrote.
struct SyntheticStreamStats {
  std::size_t trajectories{0};
  std::size_t points{0};
};

/// Generates `options.trajectories` corridor walks over `net` and streams
/// them into the columnar file at `path`. Peak memory is one trajectory's
/// columns plus the writer's per-trajectory index, independent of the
/// dataset size. Throws neat::Error on I/O failure.
SyntheticStreamStats generate_columnar_stream(const roadnet::RoadNetwork& net,
                                              const std::string& path,
                                              const SyntheticStreamOptions& options);

}  // namespace neat::sim
