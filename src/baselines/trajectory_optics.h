// Trajectory-OPTICS — whole-trajectory density clustering (Nanni &
// Pedreschi, "Time-focused clustering of trajectories of moving objects",
// J. Intell. Inf. Syst. 2006 — the paper's reference [24]).
//
// The paper positions this family as the representative approach for
// clustering trajectories *as a whole*: the distance between two
// trajectories is the average Euclidean distance between the two objects
// over time, and OPTICS (Ankerst et al., SIGMOD'99) orders the trajectories
// by density reachability. NEAT's §I argues whole-trajectory clustering
// cannot find shared sub-routes; this implementation exists so that claim
// is testable against a faithful baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "traj/dataset.h"

namespace neat::baselines {

/// How two trajectories are aligned before averaging point distances.
enum class AlignMode {
  /// Sample both trajectories at common absolute timestamps across the
  /// overlap of their time spans ([24]'s time-focused distance). Pairs with
  /// no temporal overlap are infinitely far apart.
  kAbsoluteTime,
  /// Sample both at equal fractions of their own durations — a
  /// shape-focused variant that ignores departure-time offsets.
  kRelativeProgress,
};

/// OPTICS parameters.
struct OpticsConfig {
  double eps{1000.0};          ///< Generating distance (metres).
  int min_pts{5};              ///< Core condition (neighbours incl. self).
  std::size_t sample_points{32};  ///< Alignment samples per trajectory pair.
  AlignMode align{AlignMode::kRelativeProgress};
  /// Extraction threshold for the flat clustering read off the reachability
  /// plot; non-positive means "use eps".
  double extract_eps{-1.0};
};

/// OPTICS output: the cluster ordering, the reachability plot, and a flat
/// DBSCAN-equivalent clustering extracted at `extract_eps`.
struct OpticsResult {
  std::vector<std::size_t> ordering;   ///< Trajectory indices in OPTICS order.
  std::vector<double> reachability;    ///< Reachability per ordering position
                                       ///< (infinity starts a new group).
  std::vector<int> labels;             ///< Cluster id per trajectory; -1 noise.
  std::size_t num_clusters{0};
  std::size_t distance_computations{0};
};

/// Average aligned Euclidean distance between two trajectories (exposed for
/// tests). Returns infinity for kAbsoluteTime pairs without overlap.
[[nodiscard]] double trajectory_distance(const traj::Trajectory& a,
                                         const traj::Trajectory& b,
                                         const OpticsConfig& config);

/// Runs Trajectory-OPTICS over the dataset. Deterministic (seeds unprocessed
/// trajectories in index order). Throws neat::PreconditionError on invalid
/// parameters.
[[nodiscard]] OpticsResult run_trajectory_optics(const traj::TrajectoryDataset& data,
                                                 const OpticsConfig& config);

}  // namespace neat::baselines
