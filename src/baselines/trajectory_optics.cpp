#include "baselines/trajectory_optics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.h"
#include "common/geometry.h"

namespace neat::baselines {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Position of a trajectory at absolute time `t` (clamped linear
/// interpolation between samples).
Point position_at_time(const traj::Trajectory& tr, double t) {
  if (t <= tr.front().t) return tr.front().pos;
  if (t >= tr.back().t) return tr.back().pos;
  // Binary search for the sample interval containing t.
  std::size_t lo = 0;
  std::size_t hi = tr.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (tr.point(mid).t <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const traj::Location& a = tr.point(lo);
  const traj::Location& b = tr.point(hi);
  const double span = b.t - a.t;
  const double frac = span > 0.0 ? (t - a.t) / span : 0.0;
  return lerp(a.pos, b.pos, frac);
}

/// Position at arc-progress `frac` in [0, 1] of the trajectory's duration.
Point position_at_progress(const traj::Trajectory& tr, double frac) {
  return position_at_time(tr, tr.front().t + frac * tr.duration());
}

}  // namespace

double trajectory_distance(const traj::Trajectory& a, const traj::Trajectory& b,
                           const OpticsConfig& config) {
  NEAT_EXPECT(config.sample_points >= 2, "OpticsConfig: need at least 2 sample points");
  NEAT_EXPECT(!a.empty() && !b.empty(), "trajectory_distance: empty trajectory");
  const std::size_t k = config.sample_points;
  double sum = 0.0;
  if (config.align == AlignMode::kAbsoluteTime) {
    const double lo = std::max(a.front().t, b.front().t);
    const double hi = std::min(a.back().t, b.back().t);
    if (lo > hi) return kInf;  // no temporal overlap
    for (std::size_t i = 0; i < k; ++i) {
      const double t = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(k - 1);
      sum += distance(position_at_time(a, t), position_at_time(b, t));
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(k - 1);
      sum += distance(position_at_progress(a, frac), position_at_progress(b, frac));
    }
  }
  return sum / static_cast<double>(k);
}

OpticsResult run_trajectory_optics(const traj::TrajectoryDataset& data,
                                   const OpticsConfig& config) {
  NEAT_EXPECT(config.eps > 0.0, "OpticsConfig: eps must be positive");
  NEAT_EXPECT(config.min_pts >= 1, "OpticsConfig: min_pts must be at least 1");
  NEAT_EXPECT(config.sample_points >= 2, "OpticsConfig: need at least 2 sample points");

  OpticsResult res;
  const std::size_t n = data.size();
  if (n == 0) return res;

  // Pairwise distances are cached: OPTICS revisits neighbourhoods.
  std::vector<double> dist_cache(n * n, -1.0);
  const auto pair_distance = [&](std::size_t i, std::size_t j) {
    if (i == j) return 0.0;
    double& slot = dist_cache[std::min(i, j) * n + std::max(i, j)];
    if (slot < 0.0) {
      slot = trajectory_distance(data[i], data[j], config);
      ++res.distance_computations;
    }
    return slot;
  };

  // Eps-neighbourhood (including self), plus the core distance (min_pts-th
  // smallest neighbour distance, or infinity when not core).
  const auto neighborhood = [&](std::size_t i, std::vector<std::size_t>& out) {
    out.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (pair_distance(i, j) <= config.eps) out.push_back(j);
    }
  };
  const auto core_distance = [&](std::size_t i, const std::vector<std::size_t>& hood) {
    if (hood.size() < static_cast<std::size_t>(config.min_pts)) return kInf;
    std::vector<double> ds;
    ds.reserve(hood.size());
    for (const std::size_t j : hood) ds.push_back(pair_distance(i, j));
    std::nth_element(ds.begin(), ds.begin() + (config.min_pts - 1), ds.end());
    return ds[static_cast<std::size_t>(config.min_pts - 1)];
  };

  // OPTICS main loop (Ankerst et al., Figure 5): expand each unprocessed
  // point; the seed list is a min-heap on reachability with lazy deletion.
  std::vector<bool> processed(n, false);
  std::vector<double> reach(n, kInf);
  using Entry = std::pair<double, std::size_t>;
  std::vector<std::size_t> hood;

  const auto update_seeds = [&](std::size_t center, double core_d,
                                std::priority_queue<Entry, std::vector<Entry>,
                                                    std::greater<>>& seeds) {
    for (const std::size_t j : hood) {
      if (processed[j]) continue;
      const double new_reach = std::max(core_d, pair_distance(center, j));
      if (new_reach < reach[j]) {
        reach[j] = new_reach;
        seeds.emplace(new_reach, j);
      }
    }
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    neighborhood(start, hood);
    res.ordering.push_back(start);
    res.reachability.push_back(kInf);
    double core_d = core_distance(start, hood);
    if (core_d <= config.eps) {
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> seeds;
      update_seeds(start, core_d, seeds);
      while (!seeds.empty()) {
        const auto [r, cur] = seeds.top();
        seeds.pop();
        if (processed[cur] || r > reach[cur]) continue;  // stale entry
        processed[cur] = true;
        neighborhood(cur, hood);
        res.ordering.push_back(cur);
        res.reachability.push_back(reach[cur]);
        core_d = core_distance(cur, hood);
        if (core_d <= config.eps) update_seeds(cur, core_d, seeds);
      }
    }
  }

  // Flat clustering: cut the reachability plot at extract_eps.
  const double cut = config.extract_eps > 0.0 ? config.extract_eps : config.eps;
  res.labels.assign(n, -1);
  int cluster = -1;
  bool open = false;
  for (std::size_t k = 0; k < res.ordering.size(); ++k) {
    if (res.reachability[k] > cut) {
      open = false;  // a new group may start at the next low-reach point
      continue;
    }
    if (!open) {
      ++cluster;
      open = true;
      // The point that *preceded* this valley seeded it; give it the label
      // too when it is still unlabelled (standard ExtractDBSCAN behaviour).
      if (k > 0 && res.labels[res.ordering[k - 1]] == -1) {
        res.labels[res.ordering[k - 1]] = cluster;
      }
    }
    res.labels[res.ordering[k]] = cluster;
  }
  res.num_clusters = static_cast<std::size_t>(cluster + 1);
  return res;
}

}  // namespace neat::baselines
