#include "core/refiner.h"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>

#include "common/error.h"
#include "core/netflow.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "roadnet/landmark_oracle.h"

namespace neat {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

namespace detail {

void add_phase3_metrics(const Phase3Output& counters, std::size_t total_pairs,
                        bool landmarks_enabled) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("neat_core_pairs_total").add(total_pairs);
  reg.counter("neat_core_pairs_evaluated_total").add(counters.pairs_evaluated);
  reg.counter("neat_core_elb_pruned_pairs_total").add(counters.elb_pruned_pairs);
  reg.counter("neat_core_lm_pruned_pairs_total").add(counters.lm_pruned_pairs);
  reg.counter("neat_core_sp_computations_total").add(counters.sp_computations);
  reg.counter("neat_core_sp_settled_nodes_total").add(counters.settled_nodes);
  if (landmarks_enabled) {
    // Landmark-bound hit rate: checks are the pairs that survived ELB and
    // reached the triangle-inequality test, hits the pairs it eliminated.
    reg.counter("neat_core_lm_bound_checks_total")
        .add(total_pairs - counters.elb_pruned_pairs);
    reg.counter("neat_core_lm_bound_hits_total").add(counters.lm_pruned_pairs);
  }
}

}  // namespace detail

double hausdorff_from_parts(double d11, double d12, double d21, double d22) {
  // Eq. 5: max over each endpoint of one route of its distance to the
  // closest endpoint of the other route, symmetrized.
  const double fwd = std::max(std::min(d11, d12), std::min(d21, d22));
  const double bwd = std::max(std::min(d11, d21), std::min(d12, d22));
  return std::max(fwd, bwd);
}

Refiner::Refiner(const roadnet::RoadNetwork& net, RefineConfig config)
    : net_(net), config_(config) {
  NEAT_EXPECT(config_.epsilon > 0.0, "RefineConfig: epsilon must be positive");
  NEAT_EXPECT(config_.min_pts >= 1, "RefineConfig: min_pts must be at least 1");
  // Normalize the legacy landmark flag against the engine choice: the old
  // use_landmarks spelling selects the ALT rung, and the ALT rung implies
  // the landmark tables it runs on.
  if (config_.use_landmarks && config_.distance_engine == DistanceEngine::kDijkstra) {
    config_.distance_engine = DistanceEngine::kAlt;
  }
  if (config_.distance_engine == DistanceEngine::kAlt) config_.use_landmarks = true;
  NEAT_EXPECT(!config_.use_landmarks || config_.num_landmarks >= 1,
              "RefineConfig: num_landmarks must be at least 1 when landmarks are enabled");
}

void Refiner::set_landmarks(std::shared_ptr<const roadnet::LandmarkOracle> landmarks) {
  const std::lock_guard<std::mutex> lock(accel_mu_);
  landmarks_ = std::move(landmarks);
}

const roadnet::LandmarkOracle* Refiner::landmark_oracle() const {
  if (!config_.use_landmarks) return nullptr;
  const std::lock_guard<std::mutex> lock(accel_mu_);
  if (!landmarks_) {
    landmarks_ =
        std::make_shared<const roadnet::LandmarkOracle>(net_, config_.num_landmarks);
  }
  return landmarks_.get();
}

void Refiner::set_ch_engine(std::shared_ptr<const roadnet::ChEngine> ch) {
  if (ch) {
    NEAT_EXPECT(!ch->options().directed && &ch->network() == &net_,
                "Refiner: needs an undirected ChEngine over the same network");
  }
  const std::lock_guard<std::mutex> lock(accel_mu_);
  ch_ = std::move(ch);
}

const roadnet::ChEngine* Refiner::ch_engine() const {
  if (config_.distance_engine != DistanceEngine::kCh &&
      config_.distance_engine != DistanceEngine::kChTable) {
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(accel_mu_);
  if (!ch_) {
    // Undirected, metres — the same metric NodeDistanceOracle answers in.
    ch_ = std::make_shared<const roadnet::ChEngine>(net_);
  }
  return ch_.get();
}

Refiner::DistanceContext Refiner::make_context() const {
  DistanceContext ctx{roadnet::NodeDistanceOracle(net_)};
  if (const roadnet::ChEngine* ch = ch_engine()) {
    ctx.ch.emplace(*ch);
    if (config_.distance_engine == DistanceEngine::kChTable) ctx.table.emplace(*ch);
  }
  return ctx;
}

double Refiner::min_euclidean_endpoint_distance(const FlowCluster& a,
                                                const FlowCluster& b) const {
  const Point a1 = net_.node(a.start_junction()).pos;
  const Point a2 = net_.node(a.end_junction()).pos;
  const Point b1 = net_.node(b.start_junction()).pos;
  const Point b2 = net_.node(b.end_junction()).pos;
  return std::min(std::min(distance(a1, b1), distance(a1, b2)),
                  std::min(distance(a2, b1), distance(a2, b2)));
}

double Refiner::landmark_hausdorff_bound(const FlowCluster& a, const FlowCluster& b,
                                         const roadnet::LandmarkOracle& lm) const {
  const NodeId a1 = a.start_junction();
  const NodeId a2 = a.end_junction();
  const NodeId b1 = b.start_junction();
  const NodeId b2 = b.end_junction();
  // hausdorff_from_parts is monotone in each argument, so feeding it
  // per-pair lower bounds yields a lower bound of the true Hausdorff value —
  // strictly sharper than the min-of-four key ELB uses.
  return hausdorff_from_parts(lm.lower_bound(a1, b1), lm.lower_bound(a1, b2),
                              lm.lower_bound(a2, b1), lm.lower_bound(a2, b2));
}

double Refiner::network_hausdorff(const FlowCluster& a, const FlowCluster& b,
                                  DistanceContext& ctx,
                                  const roadnet::LandmarkOracle* lm) const {
  const double bound = config_.bound_searches_at_epsilon ? config_.epsilon : kInf;
  const std::array<NodeId, 2> b_ends{b.start_junction(), b.end_junction()};
  std::array<double, 2> row1{};
  std::array<double, 2> row2{};
  // One batched search per endpoint of `a` settles both endpoints of `b`:
  // two searches per pair instead of four. Every engine returns the same
  // distances; only the settled work differs.
  if (ctx.ch) {
    ctx.ch->distances(a.start_junction(), b_ends, row1, bound);
  } else {
    ctx.oracle.distances(a.start_junction(), b_ends, row1, bound, lm);
  }
  if (config_.bound_searches_at_epsilon &&
      std::min(row1[0], row1[1]) > config_.epsilon) {
    // Formula 5's forward term is already > ε, so the pair cannot merge;
    // both legs bounded out, so the exact value is +inf either way. Skip
    // the second search.
    return kInf;
  }
  if (ctx.ch) {
    ctx.ch->distances(a.end_junction(), b_ends, row2, bound);
  } else {
    ctx.oracle.distances(a.end_junction(), b_ends, row2, bound, lm);
  }
  return hausdorff_from_parts(row1[0], row1[1], row2[0], row2[1]);
}

double Refiner::euclidean_route_hausdorff(const FlowCluster& a, const FlowCluster& b) const {
  const auto directed = [&](const std::vector<NodeId>& from, const std::vector<NodeId>& to) {
    double worst = 0.0;
    for (const NodeId u : from) {
      const Point up = net_.node(u).pos;
      double best = kInf;
      for (const NodeId v : to) {
        best = std::min(best, distance(up, net_.node(v).pos));
      }
      worst = std::max(worst, best);
    }
    return worst;
  };
  return std::max(directed(a.junctions, b.junctions), directed(b.junctions, a.junctions));
}

double Refiner::network_route_hausdorff(const FlowCluster& a, const FlowCluster& b,
                                        DistanceContext& ctx,
                                        const roadnet::LandmarkOracle* lm) const {
  const double bound = config_.bound_searches_at_epsilon ? config_.epsilon : kInf;
  const auto directed = [&](const std::vector<NodeId>& from, const std::vector<NodeId>& to) {
    double worst = 0.0;
    for (const NodeId u : from) {
      // One multi-target query: min_v d_N(u, v) over the other route's
      // junctions (the oracle settles the first target; CH buckets them).
      worst = std::max(worst, ctx.ch ? ctx.ch->distance_to_any(u, to, bound)
                                     : ctx.oracle.distance_to_any(u, to, bound, lm));
      if (worst > config_.epsilon) break;  // the max can only grow
    }
    return worst;
  };
  return std::max(directed(a.junctions, b.junctions), directed(b.junctions, a.junctions));
}

double Refiner::elb_key(const FlowCluster& a, const FlowCluster& b) const {
  return config_.distance_mode == FlowDistanceMode::kEndpoints
             ? min_euclidean_endpoint_distance(a, b)
             : euclidean_route_hausdorff(a, b);
}

double Refiner::flow_distance(const FlowCluster& a, const FlowCluster& b) const {
  DistanceContext ctx = make_context();
  const roadnet::LandmarkOracle* lm = landmark_oracle();
  return config_.distance_mode == FlowDistanceMode::kEndpoints
             ? network_hausdorff(a, b, ctx, lm)
             : network_route_hausdorff(a, b, ctx, lm);
}

bool Refiner::pair_pruned(const FlowCluster& a, const FlowCluster& b,
                          const roadnet::LandmarkOracle* lm,
                          Phase3Output& counters) const {
  if (config_.use_elb && elb_key(a, b) > config_.epsilon) {
    // ELB: the true network distance can only be larger; prune without any
    // shortest-path computation.
    ++counters.elb_pruned_pairs;
    return true;
  }
  if (lm != nullptr && config_.distance_mode == FlowDistanceMode::kEndpoints &&
      landmark_hausdorff_bound(a, b, *lm) > config_.epsilon) {
    // Landmark (ALT) bound: admissible like ELB but follows network
    // geodesics, so it catches pairs whose straight-line distance is small
    // while every road route is long.
    ++counters.lm_pruned_pairs;
    return true;
  }
  return false;
}

double Refiner::refine_pair_distance(const FlowCluster& a, const FlowCluster& b,
                                     DistanceContext& ctx, Phase3Output& counters) const {
  const roadnet::LandmarkOracle* lm = landmark_oracle();
  if (pair_pruned(a, b, lm, counters)) return kInf;
  const std::size_t before = ctx.computations();
  const std::size_t before_settled = ctx.settled_nodes();
  const double d = config_.distance_mode == FlowDistanceMode::kEndpoints
                       ? network_hausdorff(a, b, ctx, lm)
                       : network_route_hausdorff(a, b, ctx, lm);
  counters.sp_computations += ctx.computations() - before;
  counters.settled_nodes += ctx.settled_nodes() - before_settled;
  ++counters.pairs_evaluated;
  return d;
}

void Refiner::fill_pair_distances(const std::vector<FlowCluster>& flows, std::size_t begin,
                                  std::size_t end, DistanceContext& ctx,
                                  std::span<double> pair_dist,
                                  Phase3Output& counters) const {
  const std::size_t n = flows.size();
  NEAT_EXPECT(pair_dist.size() == n * (n - 1) / 2 && end <= pair_dist.size(),
              "fill_pair_distances: range must lie in the condensed matrix");
  // Recover (i, j) from the condensed index p = i*n - i*(i+1)/2 + (j-i-1) by
  // walking rows; the range is contiguous, so the walk is amortized O(1) per
  // pair.
  const auto row_end = [&](std::size_t i) { return (i + 1) * n - (i + 1) * (i + 2) / 2; };
  std::size_t i = 0;
  while (row_end(i) <= begin) ++i;
  std::size_t j = i + 1 + (begin - (i * n - i * (i + 1) / 2));
  const auto advance = [&] {
    if (++j == n) {
      ++i;
      j = i + 1;
    }
  };

  if (!ctx.table || config_.distance_mode != FlowDistanceMode::kEndpoints) {
    for (std::size_t p = begin; p < end; ++p) {
      pair_dist[p] = refine_pair_distance(flows[i], flows[j], ctx, counters);
      advance();
    }
    return;
  }

  // Batched many-to-many path (kChTable, endpoint mode): apply the
  // admissible prunes per pair, then answer every surviving pair's four
  // endpoint legs from ONE table() fill over the chunk's endpoints (the
  // table engine deduplicates shared junctions internally). Values are
  // bit-identical to the per-pair path: the table resolves each cell by the
  // same unpack-and-re-sum as ChEngine::Query, and under an ε bound a leg
  // that bounds out is kInfDistance on both paths, so the assembled
  // Hausdorff — and every merge decision downstream — cannot differ.
  struct Survivor {
    std::size_t p;
    std::size_t a;
    std::size_t b;
  };
  std::vector<Survivor> survivors;
  survivors.reserve(end - begin);
  const roadnet::LandmarkOracle* lm = landmark_oracle();
  for (std::size_t p = begin; p < end; ++p) {
    if (pair_pruned(flows[i], flows[j], lm, counters)) {
      pair_dist[p] = kInf;
    } else {
      survivors.push_back(Survivor{p, i, j});
    }
    advance();
  }
  if (survivors.empty()) return;

  ctx.table_sources.clear();
  ctx.table_targets.clear();
  for (const Survivor& s : survivors) {
    ctx.table_sources.push_back(flows[s.a].start_junction());
    ctx.table_sources.push_back(flows[s.a].end_junction());
    ctx.table_targets.push_back(flows[s.b].start_junction());
    ctx.table_targets.push_back(flows[s.b].end_junction());
  }
  const double bound = config_.bound_searches_at_epsilon ? config_.epsilon : kInf;
  const std::size_t before = ctx.computations();
  const std::size_t before_settled = ctx.settled_nodes();
  ctx.table_cells.assign(ctx.table_sources.size() * ctx.table_targets.size(), kInf);
  ctx.table->table(ctx.table_sources, ctx.table_targets, ctx.table_cells, bound);
  counters.sp_computations += ctx.computations() - before;
  counters.settled_nodes += ctx.settled_nodes() - before_settled;
  const std::size_t stride = ctx.table_targets.size();
  for (std::size_t k = 0; k < survivors.size(); ++k) {
    const double* row1 = ctx.table_cells.data() + (2 * k) * stride;
    const double* row2 = ctx.table_cells.data() + (2 * k + 1) * stride;
    pair_dist[survivors[k].p] = hausdorff_from_parts(row1[2 * k], row1[2 * k + 1],
                                                     row2[2 * k], row2[2 * k + 1]);
    ++counters.pairs_evaluated;
  }
}

Phase3Output Refiner::cluster_from_pair_distances(
    const std::vector<FlowCluster>& flows, std::span<const double> pair_distances) const {
  Phase3Output out;
  const std::size_t n = flows.size();
  NEAT_EXPECT(pair_distances.size() == n * (n - 1) / 2 || n == 0,
              "cluster_from_pair_distances: matrix size must be n*(n-1)/2");
  if (n == 0) return out;

  const auto pair_distance = [&](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    return pair_distances[i * n - i * (i + 1) / 2 + (j - i - 1)];
  };

  // Deterministic processing order: longest representative route first
  // (paper modification 4), ties on the original flow index.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (flows[x].route_length != flows[y].route_length) {
      return flows[x].route_length > flows[y].route_length;
    }
    return x < y;
  });

  // ε-neighborhood of flow i (includes i itself), ascending indices.
  const auto region_query = [&](std::size_t i) {
    std::vector<std::size_t> region;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || pair_distance(i, j) <= config_.epsilon) region.push_back(j);
    }
    return region;
  };

  // DBSCAN over flows.
  constexpr std::size_t kUnclassified = std::numeric_limits<std::size_t>::max();
  constexpr std::size_t kNoise = kUnclassified - 1;
  std::vector<std::size_t> label(n, kUnclassified);
  std::vector<std::vector<std::size_t>> groups;

  for (const std::size_t seed : order) {
    if (label[seed] != kUnclassified) continue;
    const std::vector<std::size_t> region = region_query(seed);
    if (region.size() < static_cast<std::size_t>(config_.min_pts)) {
      label[seed] = kNoise;
      continue;
    }
    const std::size_t cluster_id = groups.size();
    groups.emplace_back();
    label[seed] = cluster_id;
    groups[cluster_id].push_back(seed);
    std::deque<std::size_t> frontier(region.begin(), region.end());
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      if (label[cur] == kNoise) {  // border point
        label[cur] = cluster_id;
        groups[cluster_id].push_back(cur);
        continue;
      }
      if (label[cur] != kUnclassified) continue;
      label[cur] = cluster_id;
      groups[cluster_id].push_back(cur);
      const std::vector<std::size_t> sub_region = region_query(cur);
      if (sub_region.size() >= static_cast<std::size_t>(config_.min_pts)) {
        for (const std::size_t nb : sub_region) {
          if (label[nb] == kUnclassified || label[nb] == kNoise) frontier.push_back(nb);
        }
      }
    }
  }

  // NEAT partitions all kept flows: residual noise flows (possible only when
  // min_pts > 1) become singleton clusters, in processing order.
  for (const std::size_t i : order) {
    if (label[i] == kNoise || label[i] == kUnclassified) {
      label[i] = groups.size();
      groups.push_back({i});
    }
  }

  for (std::vector<std::size_t>& members : groups) {
    std::sort(members.begin(), members.end());
    FinalCluster fc;
    fc.flows = std::move(members);
    for (const std::size_t fi : fc.flows) {
      fc.total_route_length += flows[fi].route_length;
      fc.participants = merge_participants(fc.participants, flows[fi].participants);
    }
    out.clusters.push_back(std::move(fc));
  }
  return out;
}

Phase3Output Refiner::refine(const std::vector<FlowCluster>& flows) const {
  const std::size_t n = flows.size();
  if (n == 0) return {};
  obs::ScopedSpan span("phase3.refine");
  span.arg("flows", static_cast<std::uint64_t>(n));

  // The DBSCAN below queries the ε-neighborhood of every flow exactly once,
  // so every unordered pair is needed regardless of how the merge unfolds.
  // Evaluating the full condensed matrix up front keeps the serial and
  // parallel refiners on one code path with bit-identical results.
  Phase3Output counters;
  DistanceContext ctx = make_context();
  std::vector<double> pair_dist(n * (n - 1) / 2);
  {
    obs::ScopedSpan pairs_span("phase3.pair_distances");
    // Same kPairChunk walk the parallel workers claim, so chunk-dependent
    // work (the kChTable batching) and every deterministic counter match
    // ParallelRefiner bit for bit.
    for (std::size_t begin = 0; begin < pair_dist.size(); begin += kPairChunk) {
      fill_pair_distances(flows, begin, std::min(begin + kPairChunk, pair_dist.size()),
                          ctx, pair_dist, counters);
    }
    pairs_span.arg("pairs", static_cast<std::uint64_t>(pair_dist.size()));
    pairs_span.arg("elb_pruned", static_cast<std::uint64_t>(counters.elb_pruned_pairs));
    pairs_span.arg("lm_pruned", static_cast<std::uint64_t>(counters.lm_pruned_pairs));
    pairs_span.arg("sp_computations",
                   static_cast<std::uint64_t>(counters.sp_computations));
  }

  obs::ScopedSpan merge_span("phase3.cluster");
  Phase3Output out = cluster_from_pair_distances(flows, pair_dist);
  detail::add_phase3_metrics(counters, pair_dist.size(), config_.use_landmarks);
  out.sp_computations = counters.sp_computations;
  out.elb_pruned_pairs = counters.elb_pruned_pairs;
  out.lm_pruned_pairs = counters.lm_pruned_pairs;
  out.pairs_evaluated = counters.pairs_evaluated;
  out.settled_nodes = counters.settled_nodes;
  obs::Registry::global()
      .counter("neat_core_final_clusters_total")
      .add(out.clusters.size());
  span.arg("final_clusters", static_cast<std::uint64_t>(out.clusters.size()));
  return out;
}

}  // namespace neat
