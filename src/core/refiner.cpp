#include "core/refiner.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "core/netflow.h"

namespace neat {

double hausdorff_from_parts(double d11, double d12, double d21, double d22) {
  // Eq. 5: max over each endpoint of one route of its distance to the
  // closest endpoint of the other route, symmetrized.
  const double fwd = std::max(std::min(d11, d12), std::min(d21, d22));
  const double bwd = std::max(std::min(d11, d21), std::min(d12, d22));
  return std::max(fwd, bwd);
}

Refiner::Refiner(const roadnet::RoadNetwork& net, RefineConfig config)
    : net_(net), config_(config) {
  NEAT_EXPECT(config_.epsilon > 0.0, "RefineConfig: epsilon must be positive");
  NEAT_EXPECT(config_.min_pts >= 1, "RefineConfig: min_pts must be at least 1");
}

double Refiner::min_euclidean_endpoint_distance(const FlowCluster& a,
                                                const FlowCluster& b) const {
  const Point a1 = net_.node(a.start_junction()).pos;
  const Point a2 = net_.node(a.end_junction()).pos;
  const Point b1 = net_.node(b.start_junction()).pos;
  const Point b2 = net_.node(b.end_junction()).pos;
  return std::min(std::min(distance(a1, b1), distance(a1, b2)),
                  std::min(distance(a2, b1), distance(a2, b2)));
}

double Refiner::network_hausdorff(const FlowCluster& a, const FlowCluster& b,
                                  roadnet::NodeDistanceOracle& oracle) const {
  const double bound = config_.bound_searches_at_epsilon
                           ? config_.epsilon
                           : std::numeric_limits<double>::infinity();
  const NodeId a1 = a.start_junction();
  const NodeId a2 = a.end_junction();
  const NodeId b1 = b.start_junction();
  const NodeId b2 = b.end_junction();
  const double d11 = oracle.distance(a1, b1, bound);
  const double d12 = oracle.distance(a1, b2, bound);
  const double d21 = oracle.distance(a2, b1, bound);
  const double d22 = oracle.distance(a2, b2, bound);
  return hausdorff_from_parts(d11, d12, d21, d22);
}

double Refiner::euclidean_route_hausdorff(const FlowCluster& a, const FlowCluster& b) const {
  const auto directed = [&](const std::vector<NodeId>& from, const std::vector<NodeId>& to) {
    double worst = 0.0;
    for (const NodeId u : from) {
      const Point up = net_.node(u).pos;
      double best = std::numeric_limits<double>::infinity();
      for (const NodeId v : to) {
        best = std::min(best, distance(up, net_.node(v).pos));
      }
      worst = std::max(worst, best);
    }
    return worst;
  };
  return std::max(directed(a.junctions, b.junctions), directed(b.junctions, a.junctions));
}

double Refiner::network_route_hausdorff(const FlowCluster& a, const FlowCluster& b,
                                        roadnet::NodeDistanceOracle& oracle) const {
  const double bound = config_.bound_searches_at_epsilon
                           ? config_.epsilon
                           : std::numeric_limits<double>::infinity();
  const auto directed = [&](const std::vector<NodeId>& from, const std::vector<NodeId>& to) {
    double worst = 0.0;
    for (const NodeId u : from) {
      // One multi-target Dijkstra: the first settled junction of `to` is
      // the closest, i.e. min_v d_N(u, v).
      worst = std::max(worst, oracle.distance_to_any(u, to, bound));
      if (worst > config_.epsilon) break;  // the max can only grow
    }
    return worst;
  };
  return std::max(directed(a.junctions, b.junctions), directed(b.junctions, a.junctions));
}

double Refiner::elb_key(const FlowCluster& a, const FlowCluster& b) const {
  return config_.distance_mode == FlowDistanceMode::kEndpoints
             ? min_euclidean_endpoint_distance(a, b)
             : euclidean_route_hausdorff(a, b);
}

double Refiner::flow_distance(const FlowCluster& a, const FlowCluster& b) const {
  roadnet::NodeDistanceOracle oracle(net_);
  return config_.distance_mode == FlowDistanceMode::kEndpoints
             ? network_hausdorff(a, b, oracle)
             : network_route_hausdorff(a, b, oracle);
}

Phase3Output Refiner::refine(const std::vector<FlowCluster>& flows) const {
  Phase3Output out;
  const std::size_t n = flows.size();
  if (n == 0) return out;

  roadnet::NodeDistanceOracle oracle(net_);

  // Deterministic processing order: longest representative route first
  // (paper modification 4), ties on the original flow index.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (flows[x].route_length != flows[y].route_length) {
      return flows[x].route_length > flows[y].route_length;
    }
    return x < y;
  });

  // Symmetric pair cache so (i, j) and (j, i) cost one evaluation.
  std::unordered_map<std::uint64_t, double> pair_cache;
  const auto pair_key = [n](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    return static_cast<std::uint64_t>(i) * n + j;
  };

  const auto pair_distance = [&](std::size_t i, std::size_t j) {
    const auto it = pair_cache.find(pair_key(i, j));
    if (it != pair_cache.end()) return it->second;
    if (config_.use_elb && elb_key(flows[i], flows[j]) > config_.epsilon) {
      // ELB: the true network distance can only be larger; prune without any
      // shortest-path computation.
      ++out.elb_pruned_pairs;
      const double inf = std::numeric_limits<double>::infinity();
      pair_cache.emplace(pair_key(i, j), inf);
      return inf;
    }
    const std::size_t before = oracle.computations();
    const double d = config_.distance_mode == FlowDistanceMode::kEndpoints
                         ? network_hausdorff(flows[i], flows[j], oracle)
                         : network_route_hausdorff(flows[i], flows[j], oracle);
    out.sp_computations += oracle.computations() - before;
    ++out.pairs_evaluated;
    pair_cache.emplace(pair_key(i, j), d);
    return d;
  };

  // ε-neighborhood of flow i (includes i itself), ascending indices.
  const auto region_query = [&](std::size_t i) {
    std::vector<std::size_t> region;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        region.push_back(j);
        continue;
      }
      if (pair_distance(i, j) <= config_.epsilon) region.push_back(j);
    }
    return region;
  };

  // DBSCAN over flows.
  constexpr std::size_t kUnclassified = std::numeric_limits<std::size_t>::max();
  constexpr std::size_t kNoise = kUnclassified - 1;
  std::vector<std::size_t> label(n, kUnclassified);
  std::vector<std::vector<std::size_t>> groups;

  for (const std::size_t seed : order) {
    if (label[seed] != kUnclassified) continue;
    const std::vector<std::size_t> region = region_query(seed);
    if (region.size() < static_cast<std::size_t>(config_.min_pts)) {
      label[seed] = kNoise;
      continue;
    }
    const std::size_t cluster_id = groups.size();
    groups.emplace_back();
    label[seed] = cluster_id;
    groups[cluster_id].push_back(seed);
    std::deque<std::size_t> frontier(region.begin(), region.end());
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      if (label[cur] == kNoise) {  // border point
        label[cur] = cluster_id;
        groups[cluster_id].push_back(cur);
        continue;
      }
      if (label[cur] != kUnclassified) continue;
      label[cur] = cluster_id;
      groups[cluster_id].push_back(cur);
      const std::vector<std::size_t> sub_region = region_query(cur);
      if (sub_region.size() >= static_cast<std::size_t>(config_.min_pts)) {
        for (const std::size_t nb : sub_region) {
          if (label[nb] == kUnclassified || label[nb] == kNoise) frontier.push_back(nb);
        }
      }
    }
  }

  // NEAT partitions all kept flows: residual noise flows (possible only when
  // min_pts > 1) become singleton clusters, in processing order.
  for (const std::size_t i : order) {
    if (label[i] == kNoise || label[i] == kUnclassified) {
      label[i] = groups.size();
      groups.push_back({i});
    }
  }

  for (std::vector<std::size_t>& members : groups) {
    std::sort(members.begin(), members.end());
    FinalCluster fc;
    fc.flows = std::move(members);
    for (const std::size_t fi : fc.flows) {
      fc.total_route_length += flows[fi].route_length;
      fc.participants = merge_participants(fc.participants, flows[fi].participants);
    }
    out.clusters.push_back(std::move(fc));
  }
  return out;
}

}  // namespace neat
