#include "core/incremental.h"

#include "common/error.h"
#include "common/string_util.h"
#include "obs/log/log.h"

namespace neat {

IncrementalClusterer::IncrementalClusterer(const roadnet::RoadNetwork& net, Config config,
                                           IncrementalOptions options)
    : net_(net), config_(config), options_(options), refiner_(net, config.refine) {
  // Online operation always needs all three phases.
  config_.mode = Mode::kOpt;
}

const std::vector<FinalCluster>& IncrementalClusterer::add_batch(
    const traj::TrajectoryDataset& batch) {
  for (const traj::Trajectory& tr : batch) {
    NEAT_EXPECT(seen_ids_.insert(tr.id()).second,
                str_cat("trajectory id ", tr.id().value(),
                        " appeared in an earlier batch; ids must be globally unique"));
  }

  // Phases 1–2 on the new batch only.
  Config batch_cfg = config_;
  batch_cfg.mode = Mode::kFlow;
  const NeatClusterer clusterer(net_, batch_cfg);
  Result res = clusterer.run(batch);

  // Member/base-cluster indices refer to the batch-local Phase 1 output,
  // which is not retained; clear them so stale indices cannot be misused.
  for (FlowCluster& f : res.flow_clusters) {
    f.members.clear();
    flows_.push_back(std::move(f));
    flow_batch_.push_back(batches_);
  }

  // Sliding window: evict flows from batches older than the window.
  if (options_.window_batches > 0 && batches_ + 1 > options_.window_batches) {
    const std::size_t oldest_kept = batches_ + 1 - options_.window_batches;
    const std::size_t before = flows_.size();
    std::size_t write = 0;
    for (std::size_t read = 0; read < flows_.size(); ++read) {
      if (flow_batch_[read] >= oldest_kept) {
        flows_[write] = std::move(flows_[read]);
        flow_batch_[write] = flow_batch_[read];
        ++write;
      }
    }
    flows_.resize(write);
    flow_batch_.resize(write);
    if (write < before) {
      NEAT_LOG(kInfo, "core")
          .msg("sliding window evicted flows")
          .kv("evicted", before - write)
          .kv("kept", write)
          .kv("window_batches", options_.window_batches);
    }
  }

  // Phase 3 over the (windowed) accumulated flow set. The refiner member
  // persists across batches so the landmark tables (when enabled) are built
  // once, not per batch.
  Phase3Output p3 = refiner_.refine(flows_);
  clusters_ = std::move(p3.clusters);
  ++batches_;
  return clusters_;
}

}  // namespace neat
