// Netflow — the traffic-flow coupling between clusters (paper Definition 5).
//
// The netflow f(Si, Sj) is the number of trajectories participating in both
// clusters: it measures how many objects travelled both representative road
// segments, and is the signal Phase 2 follows when chaining base clusters
// into flow clusters.
#pragma once

#include <vector>

#include "common/ids.h"
#include "core/base_cluster.h"

namespace neat {

/// Size of the intersection of two ascending, deduplicated id lists.
[[nodiscard]] int count_common(const std::vector<TrajectoryId>& a,
                               const std::vector<TrajectoryId>& b);

/// Netflow f(Si, Sj) between two finalized base clusters (Definition 5).
/// Symmetric.
[[nodiscard]] int netflow(const BaseCluster& a, const BaseCluster& b);

/// Netflow f(F, S) between a flow cluster (given by its sorted participant
/// list) and a base cluster (paper, end of §II-B).
[[nodiscard]] int netflow(const std::vector<TrajectoryId>& flow_participants,
                          const BaseCluster& b);

/// Merges two ascending, deduplicated id lists into one (set union).
[[nodiscard]] std::vector<TrajectoryId> merge_participants(
    const std::vector<TrajectoryId>& a, const std::vector<TrajectoryId>& b);

}  // namespace neat
