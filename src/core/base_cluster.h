// Base clusters (paper Definitions 2–4).
//
// A base cluster groups all t-fragments that lie on one road segment: the
// locally dense unit of NEAT. Its *density* is the number of t-fragments
// (Definition 4); its *trajectory cardinality* is the number of distinct
// participating trajectories (Definition 3). The densest base cluster of a
// set is the dense-core, where Phase 2 starts.
#pragma once

#include <vector>

#include "common/ids.h"
#include "core/fragment.h"

namespace neat {

/// All t-fragments associated with one road segment (Definition 2).
class BaseCluster {
 public:
  BaseCluster() = default;
  explicit BaseCluster(SegmentId sid) : sid_(sid) {}

  /// The representative road segment e_S.
  [[nodiscard]] SegmentId sid() const { return sid_; }

  /// Adds a t-fragment; it must lie on this cluster's segment.
  void add(const TFragment& fragment);

  /// Sorts and deduplicates the participant list. Must be called after the
  /// last add() and before participants()/cardinality()/netflow use.
  void finalize();

  /// Cluster density d(S): the number of t-fragments (Definition 4).
  [[nodiscard]] int density() const { return static_cast<int>(fragments_.size()); }

  /// Distinct participating trajectories PTr(S), ascending (Definition 3).
  /// Requires finalize().
  [[nodiscard]] const std::vector<TrajectoryId>& participants() const;

  /// Trajectory cardinality |PTr(S)|. Requires finalize().
  [[nodiscard]] int cardinality() const;

  [[nodiscard]] const std::vector<TFragment>& fragments() const { return fragments_; }

 private:
  SegmentId sid_;
  std::vector<TFragment> fragments_;
  std::vector<TrajectoryId> participants_;
  bool finalized_{false};
};

}  // namespace neat
