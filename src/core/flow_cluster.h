// Flow clusters (paper Definition 8).
//
// A flow cluster is an ordered list of base clusters whose representative
// road segments concatenate into a route — a dense *and continuous* traffic
// stream. Phase 2 produces them; Phase 3 merges nearby ones.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"

namespace neat {

/// An ordered chain of base clusters forming a route (Definition 8).
struct FlowCluster {
  /// Indices into the Phase 1 base-cluster vector, in route order.
  std::vector<std::size_t> members;
  /// The representative route r_F: one segment per member, in route order.
  std::vector<SegmentId> route;
  /// Junction sequence of the route: route.size() + 1 nodes. front() and
  /// back() are the flow's endpoints used by the Phase 3 distance.
  std::vector<NodeId> junctions;
  /// Distinct participating trajectories, ascending.
  std::vector<TrajectoryId> participants;
  /// Total length of the representative route in metres.
  double route_length{0.0};

  /// Trajectory cardinality |PTr(F)| (Definition 3 applied to flows).
  [[nodiscard]] int cardinality() const { return static_cast<int>(participants.size()); }

  /// First endpoint junction of the representative route.
  [[nodiscard]] NodeId start_junction() const { return junctions.front(); }

  /// Last endpoint junction of the representative route.
  [[nodiscard]] NodeId end_junction() const { return junctions.back(); }
};

}  // namespace neat
