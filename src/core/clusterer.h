// Top-level NEAT clustering API (paper §II-C).
//
// Usage:
//   neat::Config cfg;                       // defaults: opt-NEAT, maxFlow weights
//   neat::NeatClusterer clusterer(net, cfg);
//   neat::Result res = clusterer.run(dataset);
//
// The paper exposes three operating points which differ in how many phases
// run: base-NEAT (Phase 1), flow-NEAT (Phases 1–2), opt-NEAT (all three).
// Result always carries the outputs of every executed phase plus per-phase
// wall-clock timings and the Phase 3 shortest-path instrumentation.
#pragma once

#include <functional>

#include "core/base_cluster.h"
#include "core/flow_builder.h"
#include "core/fragmenter.h"
#include "core/refiner.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace neat {

/// Which NEAT phases to run.
enum class Mode {
  kBase,  ///< Phase 1 only: base clusters.
  kFlow,  ///< Phases 1–2: flow clusters.
  kOpt,   ///< Phases 1–3: refined trajectory clusters.
};

/// Full NEAT configuration.
struct Config {
  Mode mode{Mode::kOpt};
  FlowConfig flow;      ///< Phase 2 parameters (SF weights, β, minCard).
  RefineConfig refine;  ///< Phase 3 parameters (ε, ELB, minPts).
  /// Worker threads for Phase 1 fragment extraction (trajectories are
  /// independent). Results are identical for any value; 0/1 = serial.
  unsigned phase1_threads{1};
};

/// Wall-clock seconds spent in each phase.
struct PhaseTiming {
  double phase1_s{0.0};
  double phase2_s{0.0};
  double phase3_s{0.0};

  [[nodiscard]] double total_s() const { return phase1_s + phase2_s + phase3_s; }
};

/// Output of a NEAT run. Vectors for phases that did not run are empty.
struct Result {
  // Phase 1.
  std::vector<BaseCluster> base_clusters;  ///< Sorted by density desc.
  std::size_t num_fragments{0};
  std::size_t num_gap_repairs{0};
  // Phase 2.
  std::vector<FlowCluster> flow_clusters;      ///< Kept flows.
  std::vector<FlowCluster> filtered_flows;     ///< Below the minCard threshold.
  double effective_min_card{0.0};
  // Phase 3.
  std::vector<FinalCluster> final_clusters;
  std::size_t sp_computations{0};
  std::size_t elb_pruned_pairs{0};
  std::size_t lm_pruned_pairs{0};
  std::size_t pairs_evaluated{0};
  std::size_t settled_nodes{0};

  PhaseTiming timing;
};

/// Runs the NEAT three-phase framework over one road network.
class NeatClusterer {
 public:
  /// Keeps a reference to the network; do not outlive it. Configuration is
  /// validated eagerly (throws neat::PreconditionError).
  NeatClusterer(const roadnet::RoadNetwork& net, Config config);

  /// Clusters a dataset. Deterministic: identical inputs yield identical
  /// results (the paper's design guarantee from the dense-core start order
  /// and the longest-route-first refinement order).
  [[nodiscard]] Result run(const traj::TrajectoryDataset& data) const;

  /// Out-of-core variant: Phase 1 streams `source` in bounded-memory
  /// batches (see Fragmenter); Phases 2-3 run on the merged base clusters.
  /// Results are bit-identical to run() on the materialized dataset.
  [[nodiscard]] Result run(TrajectorySource& source,
                           const StreamingPhase1Options& options = {}) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Shared run body: `phase1` produces the Phase 1 output inside the
  /// neat.phase1 span; Phases 2-3 follow per `config_`.
  [[nodiscard]] Result run_impl(std::size_t num_trajectories,
                                const std::function<Phase1Output(const Fragmenter&)>& phase1) const;

  const roadnet::RoadNetwork& net_;
  Config config_;
};

}  // namespace neat
