// NEAT Phase 2 — flow cluster formation (paper §III-B).
//
// Starting from the dense-core (the densest unmerged base cluster), a flow
// cluster is grown at both ends of its route. At each end, the candidate set
// is the f-neighborhood at that endpoint (adjacent segments whose base
// clusters share at least one trajectory, Definition 6). The winner is the
// candidate with the highest *merging selectivity* SF = wq·q + wk·k + wv·v
// (Definitions 9–10). Before selection, the β-domination rule removes
// f-neighbor pairs whose mutual netflow dominates the candidate maxFlow —
// those two belong to a different major flow (§III-B.2). Flows whose
// trajectory cardinality falls below minCard are filtered out.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/base_cluster.h"
#include "core/flow_cluster.h"
#include "roadnet/road_network.h"

namespace neat {

/// Parameters of Phase 2.
struct FlowConfig {
  double wq{1.0};  ///< Weight of the flow factor q (Definition 9, Eq. 1).
  double wk{0.0};  ///< Weight of the density factor k (Eq. 2).
  double wv{0.0};  ///< Weight of the speed-limit factor v (Eq. 3).
  /// Domination threshold β: f1 dominates f2 iff f1, f2 > 0 and f1/f2 >= β.
  /// +infinity disables domination handling (pure maxFlow-neighbor merging).
  double beta{std::numeric_limits<double>::infinity()};
  /// Minimum trajectory cardinality of a kept flow cluster. Negative: use
  /// the dataset-adaptive default — the average cardinality over all flows,
  /// which is exactly the paper's choice for Figure 3 ("minCard=5, which is
  /// the average number of participating trajectories").
  double min_card{-1.0};
};

/// Result of Phase 2.
struct Phase2Output {
  std::vector<FlowCluster> flows;           ///< Kept flows (cardinality >= minCard).
  std::vector<FlowCluster> filtered_flows;  ///< Flows removed by the minCard filter.
  double effective_min_card{0.0};           ///< The threshold actually applied.
};

/// Merging-selectivity factors of one candidate (exposed for tests).
struct SelectivityFactors {
  double q{0.0};
  double k{0.0};
  double v{0.0};

  [[nodiscard]] double sf(const FlowConfig& cfg) const {
    return cfg.wq * q + cfg.wk * k + cfg.wv * v;
  }
};

/// Computes Definition 9's (q, k, v) for candidate `candidate` against end
/// cluster `end_cluster`, where `neighborhood` is the (post-domination)
/// f-neighborhood of the end cluster at the expansion endpoint.
[[nodiscard]] SelectivityFactors selectivity_factors(
    const roadnet::RoadNetwork& net, const BaseCluster& end_cluster,
    const BaseCluster& candidate, const std::vector<const BaseCluster*>& neighborhood);

/// Builds flow clusters from the Phase 1 base clusters. The input vector
/// must be sorted by (density desc, sid asc) — Phase 1's output order — so
/// the merge order is deterministic (paper §III-B.1).
class FlowBuilder {
 public:
  /// Keeps references to the network and the base clusters; both must
  /// outlive the builder. Throws neat::PreconditionError on invalid weights
  /// (negative, or summing to zero) or β < 1.
  FlowBuilder(const roadnet::RoadNetwork& net, const std::vector<BaseCluster>& base_clusters,
              FlowConfig config);

  /// Runs Phase 2. Every base cluster ends up in exactly one flow (kept or
  /// filtered).
  [[nodiscard]] Phase2Output build() const;

 private:
  const roadnet::RoadNetwork& net_;
  const std::vector<BaseCluster>& base_;
  FlowConfig config_;
};

}  // namespace neat
