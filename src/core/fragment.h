// t-fragments — the atomic clustering unit of NEAT (paper Definition 1).
//
// A t-fragment is a maximal sub-trajectory whose points all lie on one road
// segment. Phase 1 compresses each fragment to its entry and exit locations
// (the paper keeps "only the first and the last point in the original
// trajectory … together with the newly inserted road junction points"),
// which is sufficient for all later phases while preserving travel route,
// movement direction, and the originating trajectory id.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "traj/trajectory.h"

namespace neat {

/// A t-fragment of a trajectory (Definition 1).
struct TFragment {
  TrajectoryId trid;        ///< Originating trajectory.
  SegmentId sid;            ///< Road segment the fragment lies on.
  traj::Location entry;     ///< First location on the segment (time order).
  traj::Location exit;      ///< Last location on the segment (time order).
  std::uint32_t num_samples{0};  ///< Raw samples covered (0: inferred gap fragment).

  /// Euclidean length between entry and exit (straight segments make this the
  /// on-segment travel distance).
  [[nodiscard]] double length() const { return distance(entry.pos, exit.pos); }
};

}  // namespace neat
