// Multi-threaded Phase 3 refinement.
//
// The refiner's DBSCAN queries the ε-neighborhood of every flow exactly once,
// so the full condensed pair-distance matrix is needed no matter how the
// merge unfolds. That makes the expensive part — C(n,2) network Hausdorff
// evaluations, each a handful of bounded Dijkstra/A* runs — embarrassingly
// parallel: workers claim chunks of the condensed index space, write disjoint
// matrix slots, and keep private oracles and counters. The merge itself runs
// serially on the finished matrix, so the output (clusters AND counters) is
// bit-identical to Refiner::refine() for every thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "core/refiner.h"

namespace neat {

/// Runs Phase 3 with the pairwise-distance evaluation spread across
/// RefineConfig::threads worker threads. threads <= 1 delegates to the serial
/// path. Landmark tables (when enabled) are built once up front and shared
/// read-only by all workers.
class ParallelRefiner {
 public:
  /// Same contract as Refiner's constructor; keeps a reference to the network.
  ParallelRefiner(const roadnet::RoadNetwork& net, RefineConfig config);

  /// Deterministic: identical output to Refiner::refine() for any thread
  /// count, including the instrumentation counters.
  [[nodiscard]] Phase3Output refine(const std::vector<FlowCluster>& flows) const;

  /// The underlying serial refiner (shared landmark state, test hooks).
  [[nodiscard]] const Refiner& refiner() const { return refiner_; }
  [[nodiscard]] Refiner& refiner() { return refiner_; }

 private:
  Refiner refiner_;
};

}  // namespace neat
