#include "core/result_io.h"

#include <fstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"
#include "core/netflow.h"

namespace neat {

void save_snapshot(const ClusteringSnapshot& snapshot, std::ostream& out) {
  CsvWriter writer(out);
  for (std::size_t f = 0; f < snapshot.flows.size(); ++f) {
    const FlowCluster& flow = snapshot.flows[f];
    writer.write_row({"flow", std::to_string(f), format_fixed(flow.route_length, 6)});
    for (std::size_t i = 0; i < flow.route.size(); ++i) {
      writer.write_row({"flowroute", std::to_string(f), std::to_string(i),
                        std::to_string(flow.route[i].value())});
    }
    for (std::size_t i = 0; i < flow.junctions.size(); ++i) {
      writer.write_row({"flowjunction", std::to_string(f), std::to_string(i),
                        std::to_string(flow.junctions[i].value())});
    }
    for (const TrajectoryId trid : flow.participants) {
      writer.write_row({"flowpart", std::to_string(f), std::to_string(trid.value())});
    }
  }
  for (std::size_t c = 0; c < snapshot.final_clusters.size(); ++c) {
    const FinalCluster& fc = snapshot.final_clusters[c];
    writer.write_row({"final", std::to_string(c), format_fixed(fc.total_route_length, 6)});
    for (const std::size_t f : fc.flows) {
      writer.write_row({"finalflow", std::to_string(c), std::to_string(f)});
    }
  }
}

void save_snapshot(const ClusteringSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  save_snapshot(snapshot, out);
}

ClusteringSnapshot load_snapshot(std::istream& in) {
  ClusteringSnapshot snap;
  CsvReader reader(in);
  std::vector<std::string> row;
  std::size_t line = 0;

  const auto flow_at = [&](std::int64_t idx) -> FlowCluster& {
    NEAT_EXPECT(idx >= 0, "snapshot: negative flow index");
    const auto i = static_cast<std::size_t>(idx);
    if (snap.flows.size() <= i) snap.flows.resize(i + 1);
    return snap.flows[i];
  };
  const auto final_at = [&](std::int64_t idx) -> FinalCluster& {
    NEAT_EXPECT(idx >= 0, "snapshot: negative final-cluster index");
    const auto i = static_cast<std::size_t>(idx);
    if (snap.final_clusters.size() <= i) snap.final_clusters.resize(i + 1);
    return snap.final_clusters[i];
  };
  const auto need = [&](std::size_t n) {
    if (row.size() != n) {
      throw ParseError(str_cat("snapshot line ", line, ": expected ", n, " fields, got ",
                               row.size()));
    }
  };

  try {
    while (reader.read_row(row)) {
      ++line;
      if (row.empty() || (row.size() == 1 && trim(row[0]).empty())) continue;
      const std::string& kind = row[0];
      if (kind == "flow") {
        need(3);
        flow_at(parse_int(row[1])).route_length = parse_double(row[2]);
      } else if (kind == "flowroute") {
        need(4);
        FlowCluster& f = flow_at(parse_int(row[1]));
        const auto seq = static_cast<std::size_t>(parse_int(row[2]));
        if (f.route.size() <= seq) f.route.resize(seq + 1);
        f.route[seq] = SegmentId(static_cast<std::int32_t>(parse_int(row[3])));
      } else if (kind == "flowjunction") {
        need(4);
        FlowCluster& f = flow_at(parse_int(row[1]));
        const auto seq = static_cast<std::size_t>(parse_int(row[2]));
        if (f.junctions.size() <= seq) f.junctions.resize(seq + 1);
        f.junctions[seq] = NodeId(static_cast<std::int32_t>(parse_int(row[3])));
      } else if (kind == "flowpart") {
        need(3);
        flow_at(parse_int(row[1])).participants.push_back(TrajectoryId(parse_int(row[2])));
      } else if (kind == "final") {
        need(3);
        final_at(parse_int(row[1])).total_route_length = parse_double(row[2]);
      } else if (kind == "finalflow") {
        need(3);
        FinalCluster& fc = final_at(parse_int(row[1]));
        fc.flows.push_back(static_cast<std::size_t>(parse_int(row[2])));
      } else {
        throw ParseError(str_cat("snapshot line ", line, ": unknown row kind '", kind, "'"));
      }
    }
  } catch (const PreconditionError& e) {
    throw ParseError(str_cat("inconsistent snapshot: ", e.what()));
  }

  // Structural validation: routes and junction paths must be complete, and
  // final clusters must reference existing flows.
  for (std::size_t f = 0; f < snap.flows.size(); ++f) {
    const FlowCluster& flow = snap.flows[f];
    if (flow.junctions.size() != flow.route.size() + 1) {
      throw ParseError(str_cat("snapshot: flow ", f, " has ", flow.route.size(),
                               " route segments but ", flow.junctions.size(), " junctions"));
    }
    for (const SegmentId sid : flow.route) {
      if (!sid.valid()) throw ParseError(str_cat("snapshot: flow ", f, " has a route hole"));
    }
  }
  for (std::size_t c = 0; c < snap.final_clusters.size(); ++c) {
    FinalCluster& fc = snap.final_clusters[c];
    for (const std::size_t f : fc.flows) {
      if (f >= snap.flows.size()) {
        throw ParseError(str_cat("snapshot: final cluster ", c,
                                 " references missing flow ", f));
      }
      fc.participants = merge_participants(fc.participants, snap.flows[f].participants);
    }
  }
  return snap;
}

ClusteringSnapshot load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(str_cat("cannot open '", path, "' for reading"));
  return load_snapshot(in);
}

}  // namespace neat
