// Incremental (online) NEAT clustering.
//
// The paper notes (§III-C) that the Phase 3 optimization "is especially
// effective for real time trajectory clustering where online clustering can
// be executed in an incremental and distributed manner. In particular, the
// first two phases of NEAT can be performed on each newly arrived set of
// trajectories. The new flow clusters are then merged with the available
// flow clusters to produce compact clustering results." This class
// implements exactly that scheme: per batch, Phases 1–2 run on the new
// trajectories only, the resulting flows join the accumulated flow set, and
// Phase 3 re-refines the accumulated flows.
#pragma once

#include <unordered_set>
#include <utility>
#include <vector>

#include "core/clusterer.h"
#include "core/parallel_refiner.h"

namespace neat {

/// Options specific to online operation.
struct IncrementalOptions {
  /// Sliding window: keep only flows discovered in the most recent
  /// `window_batches` batches (0 = unbounded, keep everything). Evicted
  /// flows drop out of the refinement — the live picture follows current
  /// traffic instead of the whole history.
  std::size_t window_batches{0};
};

/// Online NEAT over trajectory batches.
class IncrementalClusterer {
 public:
  /// Keeps a reference to the network; do not outlive it.
  IncrementalClusterer(const roadnet::RoadNetwork& net, Config config,
                       IncrementalOptions options = {});

  /// Processes one batch of newly arrived trajectories. Trajectory ids must
  /// be unique across all batches (throws neat::PreconditionError
  /// otherwise). Returns the refreshed final clusters (indices into
  /// flows()).
  const std::vector<FinalCluster>& add_batch(const traj::TrajectoryDataset& batch);

  /// All kept flow clusters accumulated so far, in arrival order.
  [[nodiscard]] const std::vector<FlowCluster>& flows() const { return flows_; }

  /// Final clusters over the accumulated flows (refreshed per batch).
  [[nodiscard]] const std::vector<FinalCluster>& clusters() const { return clusters_; }

  [[nodiscard]] std::size_t batches_processed() const { return batches_; }

  /// Deep copy of the current servable state (kept flows + final clusters),
  /// decoupled from this clusterer's lifetime. The snapshot-extraction hook
  /// for serving layers (serve::IngestService publishes the copy as an
  /// immutable serve::ClusterSnapshot while add_batch keeps mutating the
  /// live state).
  [[nodiscard]] std::pair<std::vector<FlowCluster>, std::vector<FinalCluster>>
  snapshot_state() const {
    return {flows_, clusters_};
  }

 private:
  const roadnet::RoadNetwork& net_;
  Config config_;
  IncrementalOptions options_;
  /// Persistent so landmark tables survive across batches.
  ParallelRefiner refiner_;
  std::vector<FlowCluster> flows_;
  std::vector<std::size_t> flow_batch_;  ///< Arrival batch index per flow.
  std::vector<FinalCluster> clusters_;
  std::unordered_set<TrajectoryId> seen_ids_;
  std::size_t batches_{0};
};

}  // namespace neat
