#include "core/fragmenter.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/string_util.h"
#include "core/distributed.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "roadnet/shortest_path.h"

namespace neat {

namespace {

using roadnet::RoadNetwork;

/// The junction shared by two adjacent segments that the object most
/// plausibly crossed: the one minimizing detour between the two observed
/// positions. Ties break toward the smaller node id (determinism).
NodeId crossing_junction(const RoadNetwork& net, SegmentId from, SegmentId to,
                         Point from_pos, Point to_pos) {
  const roadnet::Segment& a = net.segment(from);
  const roadnet::Segment& b = net.segment(to);
  NodeId best = NodeId::invalid();
  double best_cost = std::numeric_limits<double>::infinity();
  for (const NodeId u : {a.a, a.b}) {
    if (u != b.a && u != b.b) continue;
    const Point up = net.node(u).pos;
    const double cost = distance(from_pos, up) + distance(up, to_pos);
    if (cost < best_cost - 1e-12 || (cost < best_cost + 1e-12 && (!best.valid() || u < best))) {
      best_cost = cost;
      best = u;
    }
  }
  return best;
}

/// A repaired gap between two non-contiguous samples: the junction sequence
/// (exit endpoint of the old segment … entry endpoint of the new one) plus
/// the intermediate segments between consecutive junctions.
struct GapRepair {
  std::vector<NodeId> junctions;       ///< At least {u, v}.
  std::vector<SegmentId> between;      ///< junctions.size() - 1 segments.
};

std::optional<SegmentId> segment_between(const RoadNetwork& net, NodeId a, NodeId b) {
  SegmentId best = SegmentId::invalid();
  for (const SegmentId sid : net.segments_at(a)) {
    if (net.other_endpoint(sid, a) == b && (!best.valid() || sid < best)) best = sid;
  }
  if (!best.valid()) return std::nullopt;
  return best;
}

std::optional<GapRepair> repair_gap(const RoadNetwork& net, SegmentId from, SegmentId to,
                                    Point from_pos, Point to_pos) {
  const roadnet::Segment& a = net.segment(from);
  const roadnet::Segment& b = net.segment(to);

  // Try the four exit/entry endpoint combinations with a bounded directed
  // search; the travelled detour between two consecutive samples is short.
  std::optional<GapRepair> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const NodeId u : {a.a, a.b}) {
    for (const NodeId v : {b.a, b.b}) {
      if (u == v) continue;  // would mean the segments are adjacent
      const double crowfly = distance(net.node(u).pos, net.node(v).pos);
      const double bound = 4.0 * crowfly + 2000.0;
      const auto route = roadnet::shortest_route(net, u, v, roadnet::Metric::kDistance, bound);
      if (!route) continue;
      const double cost =
          distance(from_pos, net.node(u).pos) + route->length + distance(net.node(v).pos, to_pos);
      if (cost < best_cost) {
        best_cost = cost;
        GapRepair repair;
        repair.junctions = route->node_path(net);
        repair.between.clear();
        for (const EdgeId eid : route->edges) repair.between.push_back(net.edge(eid).sid);
        best = std::move(repair);
      }
    }
  }
  if (best) return best;

  // Fallback: undirected, unbounded — covers data recorded against one-way
  // restrictions or very long outages.
  NodeId bu = NodeId::invalid();
  NodeId bv = NodeId::invalid();
  double approach_best = std::numeric_limits<double>::infinity();
  for (const NodeId u : {a.a, a.b}) {
    for (const NodeId v : {b.a, b.b}) {
      if (u == v) continue;
      const double c = distance(from_pos, net.node(u).pos) +
                       distance(net.node(v).pos, to_pos);
      if (c < approach_best) {
        approach_best = c;
        bu = u;
        bv = v;
      }
    }
  }
  if (!bu.valid()) return std::nullopt;
  const auto nodes = roadnet::shortest_node_path(net, bu, bv);
  if (!nodes) return std::nullopt;
  GapRepair repair;
  repair.junctions = *nodes;
  for (std::size_t i = 1; i < nodes->size(); ++i) {
    const auto sid = segment_between(net, (*nodes)[i - 1], (*nodes)[i]);
    if (!sid) return std::nullopt;
    repair.between.push_back(*sid);
  }
  return repair;
}

/// Shared Phase 1 walk. Emits fragments into `fragments` (if non-null) and
/// the augmented point sequence into `augmented` (if non-null).
void walk(const RoadNetwork& net, const traj::Trajectory& tr,
          std::vector<TFragment>* fragments, traj::Trajectory* augmented,
          std::size_t* gap_repairs) {
  if (tr.empty()) return;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    static_cast<void>(net.segment(tr.point(i).sid));  // validates every referenced segment
  }

  TFragment cur;
  cur.trid = tr.id();
  cur.sid = tr.front().sid;
  cur.entry = tr.front();
  cur.exit = tr.front();
  cur.num_samples = 1;
  if (augmented != nullptr) augmented->append(tr.front());

  const auto close_and_reopen = [&](const traj::Location& boundary, SegmentId next_sid) {
    // `boundary` is a junction point: it ends the current fragment and
    // starts the next one (on `next_sid`).
    traj::Location exit_loc = boundary;
    exit_loc.sid = cur.sid;
    cur.exit = exit_loc;
    if (fragments != nullptr) fragments->push_back(cur);
    traj::Location entry_loc = boundary;
    entry_loc.sid = next_sid;
    cur = TFragment{};
    cur.trid = tr.id();
    cur.sid = next_sid;
    cur.entry = entry_loc;
    cur.exit = entry_loc;
    cur.num_samples = 0;
    if (augmented != nullptr) augmented->append(entry_loc);
  };

  for (std::size_t i = 1; i < tr.size(); ++i) {
    const traj::Location& p = tr.point(i);
    if (p.sid == cur.sid) {
      cur.exit = p;
      ++cur.num_samples;
      if (augmented != nullptr) augmented->append(p);
      continue;
    }

    const double t_prev = cur.exit.t;
    const NodeId shared = crossing_junction(net, cur.sid, p.sid, cur.exit.pos, p.pos);
    if (shared.valid()) {
      // Contiguous segments: insert the crossing junction (paper §III-A.1).
      const Point jp = net.node(shared).pos;
      const double d0 = distance(cur.exit.pos, jp);
      const double d1 = distance(jp, p.pos);
      const double frac = (d0 + d1) > 0.0 ? d0 / (d0 + d1) : 0.0;
      const double jt = t_prev + (p.t - t_prev) * frac;
      close_and_reopen(traj::Location{cur.sid, jp, jt, true}, p.sid);
    } else {
      // Non-contiguous: recover the junction sequence along the travel path.
      const auto repair = repair_gap(net, cur.sid, p.sid, cur.exit.pos, p.pos);
      if (repair && !repair->junctions.empty()) {
        if (gap_repairs != nullptr) ++(*gap_repairs);
        // Distance-proportional timestamps over exit -> u -> … -> v -> p.
        std::vector<double> cum;
        cum.reserve(repair->junctions.size() + 1);
        double run = distance(cur.exit.pos, net.node(repair->junctions.front()).pos);
        cum.push_back(run);
        for (std::size_t k = 1; k < repair->junctions.size(); ++k) {
          run += net.segment_length(repair->between[k - 1]);
          cum.push_back(run);
        }
        const double total =
            run + distance(net.node(repair->junctions.back()).pos, p.pos);
        const auto time_at = [&](double d) {
          return total > 0.0 ? t_prev + (p.t - t_prev) * (d / total) : t_prev;
        };
        for (std::size_t k = 0; k < repair->junctions.size(); ++k) {
          const SegmentId next_sid =
              (k < repair->between.size()) ? repair->between[k] : p.sid;
          close_and_reopen(traj::Location{cur.sid, net.node(repair->junctions[k]).pos,
                                          time_at(cum[k]), true},
                           next_sid);
        }
      } else {
        // Unrepairable (different components): break the trajectory here.
        if (fragments != nullptr) fragments->push_back(cur);
        cur = TFragment{};
        cur.trid = tr.id();
        cur.sid = p.sid;
        cur.entry = p;
        cur.num_samples = 0;
      }
    }
    cur.exit = p;
    ++cur.num_samples;
    if (augmented != nullptr) augmented->append(p);
  }
  if (fragments != nullptr) fragments->push_back(cur);
}

/// Phase 1 step 2: groups fragments (iterated in dataset order) into
/// finalized base clusters sorted by (density desc, sid asc), accumulating
/// the fragment count into `out`. Shared by the in-memory and streaming
/// builds — per-batch grouping followed by the exact merge reproduces this
/// function applied to the whole dataset.
void group_and_sort(const std::vector<std::vector<TFragment>>& per_trajectory,
                    std::size_t segment_count, Phase1Output& out) {
  std::vector<std::int32_t> cluster_of(segment_count, -1);
  std::vector<BaseCluster> clusters;
  for (const std::vector<TFragment>& fragments : per_trajectory) {
    for (const TFragment& f : fragments) {
      auto& slot = cluster_of[static_cast<std::size_t>(f.sid.value())];
      if (slot < 0) {
        slot = static_cast<std::int32_t>(clusters.size());
        clusters.emplace_back(f.sid);
      }
      clusters[static_cast<std::size_t>(slot)].add(f);
      ++out.num_fragments;
    }
  }
  for (BaseCluster& c : clusters) c.finalize();

  std::sort(clusters.begin(), clusters.end(), [](const BaseCluster& a, const BaseCluster& b) {
    if (a.density() != b.density()) return a.density() > b.density();
    return a.sid() < b.sid();
  });
  out.base_clusters = std::move(clusters);
}

/// Bulk registry update once per build, so per-fragment loops stay free of
/// shared atomics.
void record_phase1_counters(std::size_t trajectories, const Phase1Output& out) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("neat_core_trajectories_total").add(trajectories);
  reg.counter("neat_core_fragments_total").add(out.num_fragments);
  reg.counter("neat_core_gap_repairs_total").add(out.num_gap_repairs);
  reg.counter("neat_core_base_clusters_total").add(out.base_clusters.size());
}

}  // namespace

void TrajectorySource::batch_done(std::size_t /*begin*/, std::size_t /*end*/) {}

Fragmenter::Fragmenter(const roadnet::RoadNetwork& net) : net_(net) {}

std::vector<TFragment> Fragmenter::fragment(const traj::Trajectory& tr,
                                            std::size_t* gap_repairs) const {
  std::vector<TFragment> out;
  walk(net_, tr, &out, nullptr, gap_repairs);
  return out;
}

traj::Trajectory Fragmenter::augmented(const traj::Trajectory& tr) const {
  traj::Trajectory out(tr.id());
  walk(net_, tr, nullptr, &out, nullptr);
  return out;
}

Phase1Output Fragmenter::build_base_clusters(const traj::TrajectoryDataset& data,
                                             unsigned n_threads) const {
  obs::ScopedSpan span("phase1.build_base_clusters");
  Phase1Output out;

  // Fragment extraction, optionally parallel over trajectories. Results are
  // stored per trajectory index and merged in dataset order, so the output
  // is identical regardless of the thread count.
  std::vector<std::vector<TFragment>> per_trajectory(data.size());
  const unsigned workers =
      std::min<unsigned>(std::max(1u, n_threads), std::max<std::size_t>(1, data.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      per_trajectory[i] = fragment(data[i], &out.num_gap_repairs);
    }
  } else {
    std::vector<std::size_t> gap_counts(workers, 0);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    std::atomic<std::size_t> next{0};
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (std::size_t i = next.fetch_add(1); i < data.size(); i = next.fetch_add(1)) {
          per_trajectory[i] = fragment(data[i], &gap_counts[w]);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const std::size_t g : gap_counts) out.num_gap_repairs += g;
  }

  // Grouping (serial; it is a tiny fraction of Phase 1).
  group_and_sort(per_trajectory, net_.segment_count(), out);

  record_phase1_counters(data.size(), out);
  span.arg("trajectories", static_cast<std::uint64_t>(data.size()));
  span.arg("fragments", static_cast<std::uint64_t>(out.num_fragments));
  span.arg("gap_repairs", static_cast<std::uint64_t>(out.num_gap_repairs));
  span.arg("threads", static_cast<std::uint64_t>(workers));
  return out;
}

Phase1Output Fragmenter::build_base_clusters(TrajectorySource& source, unsigned n_threads,
                                             const StreamingPhase1Options& options) const {
  obs::ScopedSpan span("phase1.build_base_clusters");
  const std::size_t total = source.size();
  const std::size_t batch_size = std::max<std::size_t>(1, options.batch_size);

  // One Phase1Output per batch, merged at the end with the exact
  // distributed merge: fragments of a shared segment are concatenated in
  // batch (= dataset) order, so the result is bit-identical to the
  // in-memory build regardless of batch size and thread count.
  std::vector<Phase1Output> batches;
  batches.reserve((total + batch_size - 1) / batch_size);
  std::vector<std::vector<TFragment>> per_trajectory;
  std::size_t num_batches = 0;
  for (std::size_t begin = 0; begin < total; begin += batch_size) {
    const std::size_t end = std::min(total, begin + batch_size);
    per_trajectory.assign(end - begin, {});
    Phase1Output batch;
    const unsigned workers =
        std::min<unsigned>(std::max(1u, n_threads), static_cast<unsigned>(end - begin));
    if (workers <= 1) {
      for (std::size_t i = begin; i < end; ++i) {
        per_trajectory[i - begin] = fragment(source.at(i), &batch.num_gap_repairs);
      }
    } else {
      std::vector<std::size_t> gap_counts(workers, 0);
      std::vector<std::thread> threads;
      threads.reserve(workers);
      std::atomic<std::size_t> next{begin};
      for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          for (std::size_t i = next.fetch_add(1); i < end; i = next.fetch_add(1)) {
            per_trajectory[i - begin] = fragment(source.at(i), &gap_counts[w]);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (const std::size_t g : gap_counts) batch.num_gap_repairs += g;
    }
    group_and_sort(per_trajectory, net_.segment_count(), batch);
    batches.push_back(std::move(batch));
    ++num_batches;
    source.batch_done(begin, end);
  }

  Phase1Output out = merge_phase1_outputs(std::move(batches));
  record_phase1_counters(total, out);
  span.arg("trajectories", static_cast<std::uint64_t>(total));
  span.arg("fragments", static_cast<std::uint64_t>(out.num_fragments));
  span.arg("gap_repairs", static_cast<std::uint64_t>(out.num_gap_repairs));
  span.arg("batches", static_cast<std::uint64_t>(num_batches));
  span.arg("threads", static_cast<std::uint64_t>(std::max(1u, n_threads)));
  return out;
}

}  // namespace neat
