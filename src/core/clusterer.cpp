#include "core/clusterer.h"

#include "common/stopwatch.h"
#include "core/parallel_refiner.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat {

namespace {

// Phase wall-clock goes to the registry under the naming convention of
// DESIGN.md §"Observability"; one histogram series per phase label.
void record_phase_seconds(const char* phase, double seconds) {
  obs::Registry::global()
      .histogram("neat_core_phase_duration_seconds", {{"phase", phase}})
      .record(seconds);
}

}  // namespace

NeatClusterer::NeatClusterer(const roadnet::RoadNetwork& net, Config config)
    : net_(net), config_(config) {
  // Validate both sub-configs now rather than at run() time: constructing
  // the phase objects performs their precondition checks.
  const std::vector<BaseCluster> empty;
  (void)FlowBuilder(net_, empty, config_.flow);
  (void)Refiner(net_, config_.refine);
}

Result NeatClusterer::run(const traj::TrajectoryDataset& data) const {
  return run_impl(data.size(), [&](const Fragmenter& fragmenter) {
    return fragmenter.build_base_clusters(data, config_.phase1_threads);
  });
}

Result NeatClusterer::run(TrajectorySource& source, const StreamingPhase1Options& options) const {
  return run_impl(source.size(), [&](const Fragmenter& fragmenter) {
    return fragmenter.build_base_clusters(source, config_.phase1_threads, options);
  });
}

Result NeatClusterer::run_impl(
    std::size_t num_trajectories,
    const std::function<Phase1Output(const Fragmenter&)>& phase1) const {
  obs::ScopedSpan run_span("neat.run");
  run_span.arg("trajectories", static_cast<std::uint64_t>(num_trajectories));
  Result result;
  Stopwatch watch;

  // Phase 1: base cluster formation.
  NEAT_LOG(kDebug, "core").msg("phase 1 starting")
      .kv("trajectories", num_trajectories);
  {
    obs::ScopedSpan span("neat.phase1");
    const Fragmenter fragmenter(net_);
    Phase1Output p1 = phase1(fragmenter);
    result.base_clusters = std::move(p1.base_clusters);
    result.num_fragments = p1.num_fragments;
    result.num_gap_repairs = p1.num_gap_repairs;
    span.arg("fragments", static_cast<std::uint64_t>(result.num_fragments));
    span.arg("base_clusters", static_cast<std::uint64_t>(result.base_clusters.size()));
  }
  result.timing.phase1_s = watch.elapsed_seconds();
  record_phase_seconds("1", result.timing.phase1_s);
  NEAT_LOG(kInfo, "core")
      .msg("phase 1 finished")
      .kv("fragments", result.num_fragments)
      .kv("base_clusters", result.base_clusters.size())
      .kv("duration_ms", result.timing.phase1_s * 1e3);
  if (config_.mode == Mode::kBase) return result;

  // Phase 2: flow cluster formation.
  watch.restart();
  NEAT_LOG(kDebug, "core").msg("phase 2 starting")
      .kv("base_clusters", result.base_clusters.size());
  {
    obs::ScopedSpan span("neat.phase2");
    const FlowBuilder builder(net_, result.base_clusters, config_.flow);
    Phase2Output p2 = builder.build();
    result.flow_clusters = std::move(p2.flows);
    result.filtered_flows = std::move(p2.filtered_flows);
    result.effective_min_card = p2.effective_min_card;
    span.arg("flows", static_cast<std::uint64_t>(result.flow_clusters.size()));
    span.arg("filtered", static_cast<std::uint64_t>(result.filtered_flows.size()));
  }
  result.timing.phase2_s = watch.elapsed_seconds();
  record_phase_seconds("2", result.timing.phase2_s);
  NEAT_LOG(kInfo, "core")
      .msg("phase 2 finished")
      .kv("flows", result.flow_clusters.size())
      .kv("filtered", result.filtered_flows.size())
      .kv("duration_ms", result.timing.phase2_s * 1e3);
  if (config_.mode == Mode::kFlow) return result;

  // Phase 3: flow cluster refinement (parallel across RefineConfig::threads;
  // output is bit-identical to the serial refiner).
  watch.restart();
  NEAT_LOG(kDebug, "core").msg("phase 3 starting")
      .kv("flows", result.flow_clusters.size());
  {
    obs::ScopedSpan span("neat.phase3");
    const ParallelRefiner refiner(net_, config_.refine);
    Phase3Output p3 = refiner.refine(result.flow_clusters);
    result.final_clusters = std::move(p3.clusters);
    result.sp_computations = p3.sp_computations;
    result.elb_pruned_pairs = p3.elb_pruned_pairs;
    result.lm_pruned_pairs = p3.lm_pruned_pairs;
    result.pairs_evaluated = p3.pairs_evaluated;
    result.settled_nodes = p3.settled_nodes;
    span.arg("final_clusters", static_cast<std::uint64_t>(result.final_clusters.size()));
    span.arg("sp_computations", static_cast<std::uint64_t>(result.sp_computations));
  }
  result.timing.phase3_s = watch.elapsed_seconds();
  record_phase_seconds("3", result.timing.phase3_s);
  NEAT_LOG(kInfo, "core")
      .msg("phase 3 finished")
      .kv("final_clusters", result.final_clusters.size())
      .kv("sp_computations", result.sp_computations)
      .kv("duration_ms", result.timing.phase3_s * 1e3);
  return result;
}

}  // namespace neat
