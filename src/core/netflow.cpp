#include "core/netflow.h"

#include <algorithm>

namespace neat {

int count_common(const std::vector<TrajectoryId>& a, const std::vector<TrajectoryId>& b) {
  int common = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++common;
      ++ia;
      ++ib;
    }
  }
  return common;
}

int netflow(const BaseCluster& a, const BaseCluster& b) {
  return count_common(a.participants(), b.participants());
}

int netflow(const std::vector<TrajectoryId>& flow_participants, const BaseCluster& b) {
  return count_common(flow_participants, b.participants());
}

std::vector<TrajectoryId> merge_participants(const std::vector<TrajectoryId>& a,
                                             const std::vector<TrajectoryId>& b) {
  std::vector<TrajectoryId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace neat
