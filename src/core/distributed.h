// Distributed (sharded) Phase 1 — the paper's §II-C deployment sketch.
//
// "The NEAT server also distributes trajectory datasets across multiple
// nodes in a cluster. These data nodes can perform some data preprocessing
// tasks." Phase 1 is exactly that preprocessing: t-fragment extraction and
// base-cluster formation are per-trajectory local, so data nodes can each
// run Phase 1 on their shard and ship back only base clusters — orders of
// magnitude smaller than raw trajectories. The coordinator merges the
// shard outputs (base clusters keyed by segment) and runs Phases 2-3.
//
// merge_phase1_outputs is exact: merging shard outputs of a contiguous
// dataset partition reproduces the monolithic Phase 1 output bit for bit.
#pragma once

#include <vector>

#include "core/clusterer.h"
#include "core/fragmenter.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace neat {

/// Merges per-shard Phase 1 outputs into one, combining base clusters of
/// the same segment and re-sorting by (density desc, sid asc). Fragments of
/// a shared segment are concatenated in shard order, so passing shards that
/// partition a dataset contiguously reproduces the monolithic output
/// exactly. Trajectory ids must not repeat across shards — a duplicate
/// would silently deflate trajectory cardinalities (two shards' fragments
/// of "different" trajectories collapsing into one participant), so the
/// merge checks and throws neat::PreconditionError naming the offending id.
[[nodiscard]] Phase1Output merge_phase1_outputs(std::vector<Phase1Output> shards);

/// Runs the full sharded pipeline: Phase 1 per shard (sequentially here —
/// in a real deployment each shard runs on its own data node), merge, then
/// Phases 2-3 per `config` on the coordinator. Results are identical to
/// NeatClusterer::run on the concatenated dataset.
[[nodiscard]] Result run_sharded(const roadnet::RoadNetwork& net,
                                 const std::vector<const traj::TrajectoryDataset*>& shards,
                                 const Config& config);

}  // namespace neat
