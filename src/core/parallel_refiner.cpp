#include "core/parallel_refiner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/string_util.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "roadnet/landmark_oracle.h"

namespace neat {

namespace {
// Pairs claimed per fetch_add — Refiner::kPairChunk, the same granularity
// the serial refiner walks, so chunk-dependent work (the kChTable batched
// table fills) and all deterministic counters match at any thread count.
constexpr std::size_t kChunkPairs = Refiner::kPairChunk;
}  // namespace

ParallelRefiner::ParallelRefiner(const roadnet::RoadNetwork& net, RefineConfig config)
    : refiner_(net, config) {}

Phase3Output ParallelRefiner::refine(const std::vector<FlowCluster>& flows) const {
  const std::size_t n = flows.size();
  const unsigned threads = std::max(1u, refiner_.config().threads);
  if (threads <= 1 || n < 2) return refiner_.refine(flows);

  obs::ScopedSpan span("phase3.refine.parallel");
  span.arg("flows", static_cast<std::uint64_t>(n));
  span.arg("threads", static_cast<std::uint64_t>(threads));

  // Build the shared accelerators (landmark tables, contraction hierarchy)
  // before spawning: workers only read.
  const roadnet::LandmarkOracle* lm = refiner_.landmark_oracle();
  static_cast<void>(lm);
  const roadnet::ChEngine* ch = refiner_.ch_engine();
  static_cast<void>(ch);

  const std::size_t total_pairs = n * (n - 1) / 2;
  std::vector<double> pair_dist(total_pairs);
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, total_pairs));

  std::atomic<std::size_t> next{0};
  std::vector<Phase3Output> counters(workers);
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        // One span per worker: the trace shows every worker's lifetime side
        // by side, with its share of the prune/search work as args.
        obs::Tracer::global().set_thread_name(str_cat("refine-worker-", w));
        obs::ScopedSpan worker_span("phase3.worker");
        worker_span.arg("worker", static_cast<std::uint64_t>(w));
        Refiner::DistanceContext ctx = refiner_.make_context();
        // Stack-local counters avoid false sharing between workers' slots of
        // the shared vector; merged once at thread end.
        Phase3Output local;
        std::size_t claimed = 0;
        for (;;) {
          const std::size_t begin = next.fetch_add(kChunkPairs, std::memory_order_relaxed);
          if (begin >= total_pairs) break;
          const std::size_t end = std::min(begin + kChunkPairs, total_pairs);
          claimed += end - begin;
          // One shared evaluation path with the serial refiner (including
          // the kChTable per-chunk table batching); chunks never overlap, so
          // the concurrent writes into pair_dist are disjoint.
          refiner_.fill_pair_distances(flows, begin, end, ctx, pair_dist, local);
        }
        worker_span.arg("pairs_claimed", static_cast<std::uint64_t>(claimed));
        worker_span.arg("pairs_evaluated",
                        static_cast<std::uint64_t>(local.pairs_evaluated));
        worker_span.arg("elb_pruned", static_cast<std::uint64_t>(local.elb_pruned_pairs));
        worker_span.arg("lm_pruned", static_cast<std::uint64_t>(local.lm_pruned_pairs));
        worker_span.arg("sp_computations",
                        static_cast<std::uint64_t>(local.sp_computations));
        counters[w] = std::move(local);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  obs::ScopedSpan merge_span("phase3.cluster");
  Phase3Output out = refiner_.cluster_from_pair_distances(flows, pair_dist);
  // Counters are order-independent sums, so the totals match the serial run
  // exactly no matter how chunks were interleaved — except settled_nodes
  // under the CH engines (kCh/kChTable), where each worker memoizes hub
  // labels and the total therefore depends on how chunks land on workers.
  for (const Phase3Output& c : counters) {
    out.sp_computations += c.sp_computations;
    out.elb_pruned_pairs += c.elb_pruned_pairs;
    out.lm_pruned_pairs += c.lm_pruned_pairs;
    out.pairs_evaluated += c.pairs_evaluated;
    out.settled_nodes += c.settled_nodes;
  }
  detail::add_phase3_metrics(out, total_pairs, refiner_.config().use_landmarks);
  obs::Registry::global()
      .counter("neat_core_final_clusters_total")
      .add(out.clusters.size());
  span.arg("final_clusters", static_cast<std::uint64_t>(out.clusters.size()));
  return out;
}

}  // namespace neat
