#include "core/distributed.h"

#include <unordered_map>
#include <unordered_set>

#include <algorithm>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/parallel_refiner.h"

namespace neat {

Phase1Output merge_phase1_outputs(std::vector<Phase1Output> shards) {
  // A trajectory id appearing in two shards means the shards do not
  // partition the dataset; merging would silently collapse the two
  // trajectories' fragments into one participant.
  {
    std::unordered_set<TrajectoryId> earlier_shards;
    std::unordered_set<TrajectoryId> this_shard;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      this_shard.clear();
      for (const BaseCluster& c : shards[s].base_clusters) {
        for (const TrajectoryId trid : c.participants()) this_shard.insert(trid);
      }
      for (const TrajectoryId trid : this_shard) {
        NEAT_EXPECT(!earlier_shards.contains(trid),
                    str_cat("trajectory id ", trid.value(), " appears in shard ", s,
                            " and an earlier shard; shards must partition the dataset"));
      }
      earlier_shards.merge(this_shard);
    }
  }

  Phase1Output merged;
  // Segment id -> index in the merged cluster vector.
  std::vector<BaseCluster> clusters;
  std::unordered_map<std::int32_t, std::size_t> index_of;

  for (Phase1Output& shard : shards) {
    merged.num_fragments += shard.num_fragments;
    merged.num_gap_repairs += shard.num_gap_repairs;
    for (BaseCluster& c : shard.base_clusters) {
      const auto [it, inserted] = index_of.emplace(c.sid().value(), clusters.size());
      if (inserted) {
        clusters.push_back(std::move(c));
      } else {
        BaseCluster& target = clusters[it->second];
        for (const TFragment& f : c.fragments()) target.add(f);
      }
    }
  }
  for (BaseCluster& c : clusters) c.finalize();
  std::sort(clusters.begin(), clusters.end(), [](const BaseCluster& a, const BaseCluster& b) {
    if (a.density() != b.density()) return a.density() > b.density();
    return a.sid() < b.sid();
  });
  merged.base_clusters = std::move(clusters);
  return merged;
}

Result run_sharded(const roadnet::RoadNetwork& net,
                   const std::vector<const traj::TrajectoryDataset*>& shards,
                   const Config& config) {
  for (const auto* shard : shards) {
    NEAT_EXPECT(shard != nullptr, "run_sharded: null shard");
  }
  Result result;
  Stopwatch watch;

  // Phase 1, one shard at a time ("on the data nodes").
  const Fragmenter fragmenter(net);
  std::vector<Phase1Output> outputs;
  outputs.reserve(shards.size());
  for (const auto* shard : shards) {
    outputs.push_back(fragmenter.build_base_clusters(*shard, config.phase1_threads));
  }
  Phase1Output merged = merge_phase1_outputs(std::move(outputs));
  result.base_clusters = std::move(merged.base_clusters);
  result.num_fragments = merged.num_fragments;
  result.num_gap_repairs = merged.num_gap_repairs;
  result.timing.phase1_s = watch.elapsed_seconds();
  if (config.mode == Mode::kBase) return result;

  // Phases 2-3 on the coordinator.
  watch.restart();
  Phase2Output p2 = FlowBuilder(net, result.base_clusters, config.flow).build();
  result.flow_clusters = std::move(p2.flows);
  result.filtered_flows = std::move(p2.filtered_flows);
  result.effective_min_card = p2.effective_min_card;
  result.timing.phase2_s = watch.elapsed_seconds();
  if (config.mode == Mode::kFlow) return result;

  watch.restart();
  Phase3Output p3 = ParallelRefiner(net, config.refine).refine(result.flow_clusters);
  result.final_clusters = std::move(p3.clusters);
  result.sp_computations = p3.sp_computations;
  result.elb_pruned_pairs = p3.elb_pruned_pairs;
  result.lm_pruned_pairs = p3.lm_pruned_pairs;
  result.pairs_evaluated = p3.pairs_evaluated;
  result.timing.phase3_s = watch.elapsed_seconds();
  return result;
}

}  // namespace neat
