#include "core/base_cluster.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"

namespace neat {

void BaseCluster::add(const TFragment& fragment) {
  NEAT_EXPECT(fragment.sid == sid_,
              str_cat("fragment on segment ", fragment.sid.value(),
                      " added to base cluster of segment ", sid_.value()));
  fragments_.push_back(fragment);
  participants_.push_back(fragment.trid);
  finalized_ = false;
}

void BaseCluster::finalize() {
  std::sort(participants_.begin(), participants_.end());
  participants_.erase(std::unique(participants_.begin(), participants_.end()),
                      participants_.end());
  finalized_ = true;
}

const std::vector<TrajectoryId>& BaseCluster::participants() const {
  NEAT_EXPECT(finalized_, "BaseCluster::finalize() must be called before participants()");
  return participants_;
}

int BaseCluster::cardinality() const {
  return static_cast<int>(participants().size());
}

}  // namespace neat
