// Persistence for clustering results.
//
// The NEAT server (paper §II-C) answers client requests for "trajectory
// clustering results for a particular road network" — which means computed
// flow/final clusters must be storable and reloadable without re-running
// the pipeline. The snapshot format is CSV rows, one concern per row kind:
//
//   flow,<idx>,<route_length>
//   flowroute,<idx>,<seq>,<sid>              (route, in order)
//   flowjunction,<idx>,<seq>,<node>          (route.size() + 1 rows)
//   flowpart,<idx>,<trid>                    (participants, ascending)
//   final,<idx>,<total_route_length>
//   finalflow,<idx>,<flow_idx>               (member flows, ascending)
//
// Base clusters and t-fragments are intentionally not persisted: they are
// cheap to recompute and bulky to store; the snapshot is the *servable*
// output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/flow_cluster.h"
#include "core/refiner.h"

namespace neat {

/// The servable part of a clustering result.
struct ClusteringSnapshot {
  std::vector<FlowCluster> flows;         ///< members are not persisted.
  std::vector<FinalCluster> final_clusters;
};

/// Writes a snapshot to a stream.
void save_snapshot(const ClusteringSnapshot& snapshot, std::ostream& out);

/// Writes a snapshot to a file; throws neat::Error on failure to open.
void save_snapshot(const ClusteringSnapshot& snapshot, const std::string& path);

/// Reads a snapshot; throws neat::ParseError on malformed data.
[[nodiscard]] ClusteringSnapshot load_snapshot(std::istream& in);

/// Reads a snapshot from a file; throws neat::Error / neat::ParseError.
[[nodiscard]] ClusteringSnapshot load_snapshot(const std::string& path);

}  // namespace neat
