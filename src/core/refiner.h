// NEAT Phase 3 — flow cluster refinement (paper §III-C).
//
// Flow clusters whose representative routes end near each other (in *network*
// distance) are merged into final trajectory clusters, revealing groups of
// frequent routes between hotspot areas. The distance between two flows is
// the paper's modified Hausdorff metric over the route endpoints (Definition
// 11, Eq. 5), evaluated with undirected shortest-path distances. The merge
// is a deterministic adaptation of DBSCAN: flows are data units, there is no
// minimum cardinality for resulting clusters, and each round starts from the
// unprocessed flow with the longest representative route.
//
// Two admissible prunes may skip a pair's shortest-path work entirely:
//  * The Euclidean lower bound (ELB, §III-C.3) — segment lengths never
//    undercut straight-line distances, so d_E(a, b) <= d_N(a, b).
//  * The landmark (ALT) bound — triangle inequality over precomputed
//    landmark distance tables (roadnet::LandmarkOracle); tighter than ELB
//    whenever shortest paths bend, e.g. on grid networks. The same tables
//    steer the surviving searches as A* potentials.
// Neither prune ever changes a merge decision, only the work performed.
//
// Queries that survive pruning run on a configurable DistanceEngine ladder
// (plain Dijkstra / ALT-steered A* / Contraction Hierarchies); every rung
// returns the same distances, so clusters are bit-identical across engines.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/flow_cluster.h"
#include "roadnet/ch_engine.h"
#include "roadnet/ch_table.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace neat {

/// How the distance between two flow clusters is measured.
enum class FlowDistanceMode {
  /// The paper's first prototype (§III-C.1): modified Hausdorff over the
  /// two ends of each representative route (four shortest paths per pair).
  kEndpoints,
  /// Full-route refinement the paper leaves for later prototypes: modified
  /// Hausdorff over *all* junctions of both representative routes — two
  /// routes are close only when every part of each runs near the other.
  /// One multi-target Dijkstra per junction.
  kFullRoute,
};

/// Which engine answers the shortest-path queries that survive pruning.
/// Every rung returns identical distances — the ladder only trades
/// preprocessing for per-query work, never merge decisions.
enum class DistanceEngine {
  /// Plain bounded Dijkstra (NodeDistanceOracle), no preprocessing.
  kDijkstra,
  /// ALT: landmark tables prune pairs and steer the surviving searches as
  /// A*. Equivalent to kDijkstra + use_landmarks (kept for compatibility).
  kAlt,
  /// Contraction Hierarchies: one-time node-contraction preprocessing, then
  /// bidirectional upward searches that settle orders of magnitude fewer
  /// nodes per query (roadnet::ChEngine).
  kCh,
  /// CH plus bucket-based many-to-many tables (roadnet::CHTableEngine): the
  /// endpoint-mode refiner batches each chunk's surviving pairs into one
  /// table() fill — O(endpoints) upward searches instead of O(pairs) label
  /// merges. Distances, and therefore clusters, stay bit-identical to every
  /// other rung; full-route mode falls back to per-pair CH queries.
  kChTable,
};

/// Parameters of Phase 3.
struct RefineConfig {
  double epsilon{3000.0};  ///< DBSCAN ε in metres of network distance.
  FlowDistanceMode distance_mode{FlowDistanceMode::kEndpoints};
  bool use_elb{true};      ///< Euclidean-lower-bound pruning on/off.
  /// Landmark (ALT) acceleration: a second admissible prune from
  /// triangle-inequality bounds over precomputed landmark tables, plus A*
  /// potentials for the searches that survive pruning. Merge decisions are
  /// unchanged; only the Dijkstra work shrinks. Costs num_landmarks + 1 full
  /// Dijkstra runs to build (lazily, on first refine()).
  bool use_landmarks{false};
  int num_landmarks{8};    ///< Landmark count when use_landmarks is set.
  /// Shortest-path engine for the queries pruning cannot skip. The Refiner
  /// constructor normalizes the legacy flag: use_landmarks with kDijkstra
  /// becomes kAlt, and kAlt implies use_landmarks. kCh builds a
  /// roadnet::ChEngine lazily on first refine() (or accepts a shared one
  /// via Refiner::set_ch_engine).
  DistanceEngine distance_engine{DistanceEngine::kDijkstra};
  /// Stop each Dijkstra once the search frontier passes ε. Every clustering
  /// decision is identical (DBSCAN only asks whether d <= ε; a leg that
  /// bounds out is > ε, and Formula 5's max/min structure preserves the
  /// comparison), only the work shrinks. Disable to mirror the paper's
  /// opt-NEAT-Dijkstra variant, which computes full shortest paths.
  bool bound_searches_at_epsilon{true};
  /// DBSCAN minPts over flows. 1 (the default) makes every flow core, which
  /// matches the paper's "no minimum cardinality" modification.
  int min_pts{1};
  /// Worker threads for the pairwise-distance evaluation (see
  /// ParallelRefiner). The output is bit-identical for any value; 0/1 =
  /// serial. Honored by NeatClusterer and the serving/incremental paths.
  unsigned threads{1};
};

/// A final trajectory cluster: a set of merged flow clusters.
struct FinalCluster {
  /// Indices into the Phase 2 flow vector, ascending.
  std::vector<std::size_t> flows;
  /// Sum of the members' representative-route lengths (metres).
  double total_route_length{0.0};
  /// Distinct participating trajectories, ascending.
  std::vector<TrajectoryId> participants;

  [[nodiscard]] int cardinality() const { return static_cast<int>(participants.size()); }
};

/// Result of Phase 3 with the instrumentation the paper's Figure 7 reports.
struct Phase3Output {
  std::vector<FinalCluster> clusters;
  std::size_t sp_computations{0};   ///< Shortest-path (Dijkstra/A*) runs issued.
  std::size_t elb_pruned_pairs{0};  ///< Flow pairs eliminated by ELB alone.
  std::size_t lm_pruned_pairs{0};   ///< Pairs eliminated by the landmark bound (after ELB).
  std::size_t pairs_evaluated{0};   ///< Flow pairs whose network distance was computed.
  std::size_t settled_nodes{0};     ///< Nodes settled across all searches (work proxy).
};

/// The modified Hausdorff distance of Definition 11 given the four pairwise
/// endpoint distances d(a_i, b_j). Exposed for tests.
[[nodiscard]] double hausdorff_from_parts(double d11, double d12, double d21, double d22);

namespace detail {
/// Adds one Phase-3 run's work counters to the global metric registry —
/// one bulk update so the per-pair hot loop never touches shared atomics.
/// Shared by the serial and parallel refiners.
void add_phase3_metrics(const Phase3Output& counters, std::size_t total_pairs,
                        bool landmarks_enabled);
}  // namespace detail

/// Merges flow clusters into final trajectory clusters.
class Refiner {
 public:
  /// Keeps a reference to the network; do not outlive it. Throws
  /// neat::PreconditionError on non-positive ε, minPts < 1 or
  /// num_landmarks < 1 (with use_landmarks). Construction is cheap; the
  /// landmark tables are built lazily on first use.
  Refiner(const roadnet::RoadNetwork& net, RefineConfig config);

  /// Runs the refinement over the given flows. Deterministic.
  [[nodiscard]] Phase3Output refine(const std::vector<FlowCluster>& flows) const;

  /// Network (modified Hausdorff) distance between two flow clusters under
  /// the configured mode, computed with a fresh oracle. For tests/tools.
  [[nodiscard]] double flow_distance(const FlowCluster& a, const FlowCluster& b) const;

  /// Smallest Euclidean distance among the four endpoint pairs — the ELB
  /// pruning key of the endpoint mode. Exposed for tests.
  [[nodiscard]] double min_euclidean_endpoint_distance(const FlowCluster& a,
                                                       const FlowCluster& b) const;

  /// Euclidean full-route Hausdorff over the junction sets — the ELB
  /// pruning key of the full-route mode (a lower bound of the network
  /// value, since d_E <= d_N junction-wise). Exposed for tests.
  [[nodiscard]] double euclidean_route_hausdorff(const FlowCluster& a,
                                                 const FlowCluster& b) const;

  /// Landmark lower bound on the endpoint Hausdorff distance (Formula 5 over
  /// the four per-pair landmark bounds — monotonicity keeps it admissible).
  /// Exposed for tests.
  [[nodiscard]] double landmark_hausdorff_bound(const FlowCluster& a, const FlowCluster& b,
                                                const roadnet::LandmarkOracle& lm) const;

  // --- building blocks shared with ParallelRefiner ---------------------------

  /// Per-thread distance-evaluation workspace: a Dijkstra/ALT oracle plus,
  /// under DistanceEngine::kCh/kChTable, a query head (and for kChTable a
  /// table engine) bound to the shared hierarchy. Obtain via make_context();
  /// not thread safe, create one per thread.
  struct DistanceContext {
    roadnet::NodeDistanceOracle oracle;
    std::optional<roadnet::ChEngine::Query> ch;
    std::optional<roadnet::CHTableEngine> table;
    // Batched-table scratch of fill_pair_distances, reused across chunks.
    // Kept beside the engines so the spans handed to table() are per-thread
    // and provably disjoint from the shared condensed matrix.
    std::vector<NodeId> table_sources;
    std::vector<NodeId> table_targets;
    std::vector<double> table_cells;

    [[nodiscard]] std::size_t computations() const {
      return oracle.computations() + (ch ? ch->computations() : 0) +
             (table ? table->computations() : 0);
    }
    [[nodiscard]] std::size_t settled_nodes() const {
      return oracle.settled_nodes() + (ch ? ch->settled_nodes() : 0) +
             (table ? table->settled_nodes() : 0);
    }
  };

  /// Pairs per fill_pair_distances() chunk, shared by the serial refiner's
  /// loop and ParallelRefiner's work claiming. One constant keeps the chunk
  /// boundaries — and with them the kChTable batching and every
  /// deterministic counter — identical at any thread count. Large enough to
  /// amortize the claim atomic and the per-chunk table fill, small enough
  /// that an unlucky worker stuck with expensive pairs cannot stall the
  /// others at the end of the matrix.
  static constexpr std::size_t kPairChunk = 64;

  /// Builds a workspace for the configured engine. Under kCh this triggers
  /// the (thread-safe, once-only) lazy hierarchy build.
  [[nodiscard]] DistanceContext make_context() const;

  /// Distance of one candidate pair exactly as refine() uses it: applies the
  /// ELB and landmark prunes (returning +inf without any search when one
  /// fires), otherwise evaluates the configured network Hausdorff with
  /// batched one-to-many searches. Work counters accumulate into `counters`
  /// (the `clusters` member is untouched).
  [[nodiscard]] double refine_pair_distance(const FlowCluster& a, const FlowCluster& b,
                                            DistanceContext& ctx,
                                            Phase3Output& counters) const;

  /// Evaluates the condensed-matrix entries [begin, end) into the matching
  /// slots of `pair_dist` (the FULL condensed matrix span; entries outside
  /// the range are untouched). The one pair-evaluation code path of both
  /// refiners: the serial refine() walks it chunk by chunk and
  /// ParallelRefiner's workers claim chunks concurrently, so prune and
  /// computation counters are bit-identical at any thread count. Under
  /// kChTable (endpoint mode) the chunk's surviving pairs are answered by a
  /// single CHTableEngine::table() fill over their deduplicated endpoints.
  void fill_pair_distances(const std::vector<FlowCluster>& flows, std::size_t begin,
                           std::size_t end, DistanceContext& ctx,
                           std::span<double> pair_dist, Phase3Output& counters) const;

  /// The deterministic DBSCAN merge over a precomputed condensed pair
  /// distance matrix: entry for pair (i, j), i < j, lives at index
  /// i * n - i * (i + 1) / 2 + (j - i - 1). Only the `clusters` member of
  /// the result is populated.
  [[nodiscard]] Phase3Output cluster_from_pair_distances(
      const std::vector<FlowCluster>& flows, std::span<const double> pair_distances) const;

  /// Pre-seeds the landmark tables (e.g. to share one oracle across many
  /// refiners or batches). Ignored unless the config enables landmarks.
  void set_landmarks(std::shared_ptr<const roadnet::LandmarkOracle> landmarks);

  /// The landmark oracle used by this refiner: nullptr when disabled,
  /// otherwise the seeded or lazily built instance. Thread safe.
  [[nodiscard]] const roadnet::LandmarkOracle* landmark_oracle() const;

  /// Pre-seeds the contraction hierarchy (e.g. to amortize one build across
  /// refiners or batches). Ignored unless distance_engine is kCh/kChTable;
  /// the engine must be undirected over the same network.
  void set_ch_engine(std::shared_ptr<const roadnet::ChEngine> ch);

  /// The hierarchy used by this refiner: nullptr unless distance_engine is
  /// kCh/kChTable, otherwise the seeded or lazily built instance. Thread safe.
  [[nodiscard]] const roadnet::ChEngine* ch_engine() const;

  [[nodiscard]] const RefineConfig& config() const { return config_; }
  [[nodiscard]] const roadnet::RoadNetwork& network() const { return net_; }

 private:
  /// Applies the admissible ELB and landmark prunes to one pair, bumping the
  /// matching counter. True = pruned (the pair's distance is > ε without any
  /// shortest-path work).
  bool pair_pruned(const FlowCluster& a, const FlowCluster& b,
                   const roadnet::LandmarkOracle* lm, Phase3Output& counters) const;
  double network_hausdorff(const FlowCluster& a, const FlowCluster& b, DistanceContext& ctx,
                           const roadnet::LandmarkOracle* lm) const;
  double network_route_hausdorff(const FlowCluster& a, const FlowCluster& b,
                                 DistanceContext& ctx,
                                 const roadnet::LandmarkOracle* lm) const;
  double elb_key(const FlowCluster& a, const FlowCluster& b) const;

  const roadnet::RoadNetwork& net_;
  RefineConfig config_;
  mutable std::mutex accel_mu_;  ///< Guards the lazily built accelerators.
  mutable std::shared_ptr<const roadnet::LandmarkOracle> landmarks_;
  mutable std::shared_ptr<const roadnet::ChEngine> ch_;
};

}  // namespace neat
