// NEAT Phase 1 — base cluster formation (paper §III-A).
//
// Step 1: each trajectory is partitioned into t-fragments. Consecutive
// samples either share a segment, sit on adjacent segments (a junction point
// is inserted between them, the paper's trajectory splitting points), or sit
// on non-contiguous segments — in which case the junction sequence connecting
// them along the travel path is recovered with a (bounded) shortest-path
// search, mirroring the paper's map-matching-based gap repair, and a
// zero-sample fragment is emitted for every intermediate segment.
//
// Step 2: fragments are grouped by segment id into base clusters, which are
// returned sorted by density (descending) so the first element is the
// dense-core the Phase 2 merge starts from.
#pragma once

#include <cstddef>
#include <vector>

#include "core/base_cluster.h"
#include "core/fragment.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace neat {

/// Abstract random-access trajectory source for the out-of-core Phase 1
/// walk. Implementations materialize trajectories on demand (e.g. from an
/// mmap-backed columnar file), so the dataset never has to fit in memory.
/// The interface lives in core (not store) because the fragmenter consumes
/// it; store provides the columnar-backed implementation.
class TrajectorySource {
 public:
  virtual ~TrajectorySource() = default;

  /// Number of trajectories.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Materializes trajectory `i`. Must be safe to call concurrently for
  /// distinct indices (Phase 1 workers pull from one batch in parallel).
  [[nodiscard]] virtual traj::Trajectory at(std::size_t i) const = 0;

  /// Called serially after trajectories [begin, end) have been consumed —
  /// a paging source can drop the range's backing pages here.
  virtual void batch_done(std::size_t begin, std::size_t end);
};

/// Tuning of the streaming (out-of-core) Phase 1 overload.
struct StreamingPhase1Options {
  /// Trajectories materialized per batch; bounds peak memory. Values of 0
  /// are treated as 1.
  std::size_t batch_size{4096};
};

/// Result of Phase 1 over a dataset.
struct Phase1Output {
  /// Base clusters sorted by (density desc, sid asc); index 0 is the
  /// dense-core. Every cluster is finalized.
  std::vector<BaseCluster> base_clusters;
  std::size_t num_fragments{0};    ///< Total t-fragments extracted.
  std::size_t num_gap_repairs{0};  ///< Non-contiguous sample pairs repaired.
};

/// Extracts t-fragments and forms base clusters over one road network.
/// Keeps a reference to the network; do not outlive it.
class Fragmenter {
 public:
  explicit Fragmenter(const roadnet::RoadNetwork& net);

  /// Partitions one trajectory into its t-fragment sequence (travel order).
  /// Throws neat::PreconditionError when a sample references a segment that
  /// does not exist. `gap_repairs` (optional) is incremented per repaired
  /// non-contiguous sample pair.
  [[nodiscard]] std::vector<TFragment> fragment(const traj::Trajectory& tr,
                                                std::size_t* gap_repairs = nullptr) const;

  /// The trajectory with the Phase 1 junction points inserted between
  /// samples that change segments (flagged `junction_point`), as described
  /// in §III-A.1. Mainly for inspection and tests.
  [[nodiscard]] traj::Trajectory augmented(const traj::Trajectory& tr) const;

  /// Runs both Phase 1 steps over a dataset. `n_threads` > 1 fragments
  /// trajectories concurrently (trajectories are independent; the network
  /// is read-only) and merges per-trajectory results in dataset order, so
  /// the output is bit-identical to the serial run. Values of 0 and 1 both
  /// mean serial.
  [[nodiscard]] Phase1Output build_base_clusters(const traj::TrajectoryDataset& data,
                                                 unsigned n_threads = 1) const;

  /// Out-of-core Phase 1: walks `source` in batches of
  /// `options.batch_size` trajectories (each batch fragmented across
  /// `n_threads` workers, grouped serially) and merges the per-batch
  /// outputs with the exact distributed merge, so the result is
  /// bit-identical to the in-memory overload at any batch size and thread
  /// count while peak memory stays bounded by one batch.
  [[nodiscard]] Phase1Output build_base_clusters(TrajectorySource& source,
                                                 unsigned n_threads = 1,
                                                 const StreamingPhase1Options& options = {}) const;

 private:
  const roadnet::RoadNetwork& net_;
};

}  // namespace neat
