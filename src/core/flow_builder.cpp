#include "core/flow_builder.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/netflow.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat {

SelectivityFactors selectivity_factors(const roadnet::RoadNetwork& net,
                                       const BaseCluster& end_cluster,
                                       const BaseCluster& candidate,
                                       const std::vector<const BaseCluster*>& neighborhood) {
  SelectivityFactors f;
  // Flow factor q (Eq. 1): shared trajectories over the end cluster's own
  // cardinality.
  const int card = end_cluster.cardinality();
  f.q = card > 0 ? static_cast<double>(netflow(end_cluster, candidate)) / card : 0.0;

  // Density factor k (Eq. 2): candidate density relative to the end cluster
  // plus its whole neighborhood.
  double density_sum = end_cluster.density();
  for (const BaseCluster* s : neighborhood) density_sum += s->density();
  f.k = density_sum > 0.0 ? candidate.density() / density_sum : 0.0;

  // Speed-limit factor v (Eq. 3): candidate speed relative to the
  // neighborhood's total speed.
  double speed_sum = 0.0;
  for (const BaseCluster* s : neighborhood) speed_sum += net.segment_speed(s->sid());
  f.v = speed_sum > 0.0 ? net.segment_speed(candidate.sid()) / speed_sum : 0.0;
  return f;
}

namespace {

/// Working state while one flow cluster is grown.
struct GrowingFlow {
  FlowCluster flow;
};

}  // namespace

FlowBuilder::FlowBuilder(const roadnet::RoadNetwork& net,
                         const std::vector<BaseCluster>& base_clusters, FlowConfig config)
    : net_(net), base_(base_clusters), config_(config) {
  NEAT_EXPECT(config_.wq >= 0.0 && config_.wk >= 0.0 && config_.wv >= 0.0,
              "FlowConfig: weights must be non-negative");
  const double sum = config_.wq + config_.wk + config_.wv;
  NEAT_EXPECT(sum > 0.0, "FlowConfig: at least one weight must be positive");
  // Normalize so wq + wk + wv = 1 as Definition 10 requires.
  config_.wq /= sum;
  config_.wk /= sum;
  config_.wv /= sum;
  NEAT_EXPECT(config_.beta >= 1.0, "FlowConfig: beta must be >= 1 (or +infinity)");
}

Phase2Output FlowBuilder::build() const {
  obs::ScopedSpan span("phase2.build_flows");
  Phase2Output out;
  std::vector<bool> alive(base_.size(), true);
  // Dense lookup: segment id -> index into base_ (for alive neighbors).
  std::vector<std::int32_t> index_of(net_.segment_count(), -1);
  for (std::size_t i = 0; i < base_.size(); ++i) {
    index_of[static_cast<std::size_t>(base_[i].sid().value())] = static_cast<std::int32_t>(i);
  }

  // Collects the f-neighborhood of base cluster `ci` at endpoint `n`:
  // alive base clusters on adjacent segments with positive netflow
  // (Definition 6 restricted to unmerged clusters).
  const auto f_neighborhood = [&](std::size_t ci, NodeId n) {
    std::vector<std::size_t> hood;
    for (const SegmentId other : net_.segments_at(n)) {
      if (other == base_[ci].sid()) continue;
      const std::int32_t oi = index_of[static_cast<std::size_t>(other.value())];
      if (oi < 0 || !alive[static_cast<std::size_t>(oi)]) continue;
      if (netflow(base_[ci], base_[static_cast<std::size_t>(oi)]) > 0) {
        hood.push_back(static_cast<std::size_t>(oi));
      }
    }
    // segments_at order is construction order; sort for a stable contract.
    std::sort(hood.begin(), hood.end(),
              [&](std::size_t a, std::size_t b) { return base_[a].sid() < base_[b].sid(); });
    return hood;
  };

  // Picks the next base cluster to merge at endpoint `n` of end cluster
  // `ci`, honouring β-domination; returns base_.size() when the end stops.
  const auto select_merge = [&](std::size_t ci, NodeId n,
                                const std::vector<TrajectoryId>& flow_participants) {
    std::vector<std::size_t> hood = f_neighborhood(ci, n);
    // β-domination (§III-B.2): while some pair of f-neighbors has a mutual
    // netflow dominating the current maxFlow of `ci` at `n`, drop the pair —
    // they belong to a different major flow — and retry.
    while (hood.size() >= 2 && std::isfinite(config_.beta)) {
      int max_flow = 0;
      for (const std::size_t h : hood) max_flow = std::max(max_flow, netflow(base_[ci], base_[h]));
      if (max_flow == 0) break;
      bool removed = false;
      for (std::size_t x = 0; x < hood.size() && !removed; ++x) {
        for (std::size_t y = x + 1; y < hood.size() && !removed; ++y) {
          const int pair_flow = netflow(base_[hood[x]], base_[hood[y]]);
          if (pair_flow > 0 &&
              static_cast<double>(pair_flow) >= config_.beta * max_flow) {
            // Erase y first so x's index stays valid.
            hood.erase(hood.begin() + static_cast<std::ptrdiff_t>(y));
            hood.erase(hood.begin() + static_cast<std::ptrdiff_t>(x));
            removed = true;
          }
        }
      }
      if (!removed) break;
    }
    if (hood.empty()) return base_.size();

    std::vector<const BaseCluster*> hood_ptrs;
    hood_ptrs.reserve(hood.size());
    for (const std::size_t h : hood) hood_ptrs.push_back(&base_[h]);

    std::size_t best = base_.size();
    double best_sf = -1.0;
    int best_tie = -1;
    for (const std::size_t h : hood) {
      const double sf =
          selectivity_factors(net_, base_[ci], base_[h], hood_ptrs).sf(config_);
      // Ties (e.g. equal maxFlow) break on the netflow with the whole flow
      // cluster (paper §III-B.2), then on the smaller segment id.
      const int tie = netflow(flow_participants, base_[h]);
      if (sf > best_sf + 1e-12 ||
          (sf > best_sf - 1e-12 &&
           (tie > best_tie ||
            (tie == best_tie && (best == base_.size() || base_[h].sid() < base_[best].sid()))))) {
        best_sf = sf;
        best_tie = tie;
        best = h;
      }
    }
    return best;
  };

  std::vector<FlowCluster> all_flows;
  // Base clusters arrive sorted by density: index 0 is the dense-core, and
  // each outer iteration below starts from the densest unmerged cluster.
  for (std::size_t seed = 0; seed < base_.size(); ++seed) {
    if (!alive[seed]) continue;
    alive[seed] = false;

    FlowCluster flow;
    flow.members = {seed};
    flow.route = {base_[seed].sid()};
    const roadnet::Segment& s0 = net_.segment(base_[seed].sid());
    flow.junctions = {s0.a, s0.b};
    flow.participants = base_[seed].participants();
    flow.route_length = s0.length;

    // Expand at the back, then at the front (paper: insertion at either end
    // of the ordered list; both are exhausted before the flow closes).
    for (const bool at_back : {true, false}) {
      while (true) {
        const std::size_t end_member = at_back ? flow.members.back() : flow.members.front();
        const NodeId end_node = at_back ? flow.junctions.back() : flow.junctions.front();
        const std::size_t next = select_merge(end_member, end_node, flow.participants);
        if (next == base_.size()) break;
        const SegmentId next_sid = base_[next].sid();
        const NodeId new_end = net_.other_endpoint(next_sid, end_node);
        if (at_back) {
          flow.members.push_back(next);
          flow.route.push_back(next_sid);
          flow.junctions.push_back(new_end);
        } else {
          flow.members.insert(flow.members.begin(), next);
          flow.route.insert(flow.route.begin(), next_sid);
          flow.junctions.insert(flow.junctions.begin(), new_end);
        }
        flow.participants = merge_participants(flow.participants, base_[next].participants());
        flow.route_length += net_.segment_length(next_sid);
        alive[next] = false;
      }
    }
    all_flows.push_back(std::move(flow));
  }

  // minCard filter. Negative threshold: the dataset-adaptive default (the
  // average flow cardinality).
  double min_card = config_.min_card;
  if (min_card < 0.0) {
    double card_sum = 0.0;
    for (const FlowCluster& f : all_flows) card_sum += f.cardinality();
    min_card = all_flows.empty() ? 0.0 : card_sum / static_cast<double>(all_flows.size());
  }
  out.effective_min_card = min_card;
  for (FlowCluster& f : all_flows) {
    if (static_cast<double>(f.cardinality()) >= min_card) {
      out.flows.push_back(std::move(f));
    } else {
      out.filtered_flows.push_back(std::move(f));
    }
  }

  obs::Registry& reg = obs::Registry::global();
  reg.counter("neat_core_flow_clusters_total").add(out.flows.size());
  reg.counter("neat_core_filtered_flows_total").add(out.filtered_flows.size());
  span.arg("base_clusters", static_cast<std::uint64_t>(base_.size()));
  span.arg("flows", static_cast<std::uint64_t>(out.flows.size()));
  span.arg("filtered", static_cast<std::uint64_t>(out.filtered_flows.size()));
  span.arg("effective_min_card", out.effective_min_card);
  return out;
}

}  // namespace neat
