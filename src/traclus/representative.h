// TraClus representative trajectories (SIGMOD'07 §4.3).
//
// For each cluster, the average direction vector defines a rotated axis X′;
// a sweep along X′ computes, at every segment endpoint where at least
// MinLns member segments overlap, the average of the crossing points —
// yielding the representative polyline of the cluster.
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "traclus/partition.h"

namespace neat::traclus {

/// Computes the representative trajectory of one cluster of segments.
/// `min_lns` is the sweep's minimum overlap count and `gamma` the minimum
/// X′ spacing between consecutive representative points. Returns an empty
/// polyline when the overlap never reaches `min_lns`.
[[nodiscard]] std::vector<Point> representative_trajectory(
    const std::vector<LineSeg>& members, int min_lns, double gamma);

}  // namespace neat::traclus
