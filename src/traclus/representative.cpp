#include "traclus/representative.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace neat::traclus {

std::vector<Point> representative_trajectory(const std::vector<LineSeg>& members,
                                             int min_lns, double gamma) {
  NEAT_EXPECT(min_lns >= 1, "representative_trajectory: min_lns must be positive");
  NEAT_EXPECT(gamma >= 0.0, "representative_trajectory: gamma must be non-negative");
  std::vector<Point> rep;
  if (members.empty()) return rep;

  // Average direction vector; members pointing against the running average
  // are flipped so opposite travel directions reinforce instead of cancel.
  Point avg{0.0, 0.0};
  for (const LineSeg& m : members) {
    const Point v = m.e - m.s;
    avg = dot(avg, v) >= 0.0 ? avg + v : avg - v;
  }
  const double len = norm(avg);
  if (len == 0.0) return rep;
  const Point ux{avg.x / len, avg.y / len};   // X' axis
  const Point uy{-ux.y, ux.x};                // Y' axis

  const auto to_rot = [&](Point p) { return Point{dot(p, ux), dot(p, uy)}; };
  const auto from_rot = [&](Point p) { return Point{p.x * ux.x + p.y * uy.x,
                                                    p.x * ux.y + p.y * uy.y}; };

  // Rotated members with s.x <= e.x.
  struct RotSeg {
    Point s, e;
  };
  std::vector<RotSeg> rot;
  rot.reserve(members.size());
  std::vector<double> xs;
  xs.reserve(members.size() * 2);
  for (const LineSeg& m : members) {
    RotSeg r{to_rot(m.s), to_rot(m.e)};
    if (r.s.x > r.e.x) std::swap(r.s, r.e);
    xs.push_back(r.s.x);
    xs.push_back(r.e.x);
    rot.push_back(r);
  }
  std::sort(xs.begin(), xs.end());

  double prev_x = -std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    if (x - prev_x < gamma) continue;
    // Segments whose X' extent covers the sweep position.
    int count = 0;
    double y_sum = 0.0;
    for (const RotSeg& r : rot) {
      if (r.s.x - 1e-9 <= x && x <= r.e.x + 1e-9) {
        ++count;
        const double span = r.e.x - r.s.x;
        const double t = span > 0.0 ? (x - r.s.x) / span : 0.0;
        y_sum += r.s.y + t * (r.e.y - r.s.y);
      }
    }
    if (count >= min_lns) {
      rep.push_back(from_rot({x, y_sum / count}));
      prev_x = x;
    }
  }
  return rep;
}

}  // namespace neat::traclus
