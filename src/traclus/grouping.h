// TraClus grouping phase (SIGMOD'07 §4.2): DBSCAN over line segments.
//
// A segment is a core segment when at least MinLns segments (itself
// included) lie within ε under the TraClus segment distance. Clusters are
// density-connected sets of segments; clusters touching fewer than MinLns
// distinct trajectories are discarded (the paper's trajectory-cardinality
// check). A uniform grid over segment midpoints generates ε-range
// candidates; every candidate still pays the full distance evaluation, so
// the algorithm's distance-computation-bound cost shape is preserved.
#pragma once

#include <cstddef>
#include <vector>

#include "traclus/partition.h"

namespace neat::traclus {

/// Grouping parameters (the paper's ε and MinLns).
struct GroupingConfig {
  double epsilon{10.0};
  int min_lns{3};
  double w_perp{1.0};
  double w_par{1.0};
  double w_ang{1.0};
};

/// Result of the grouping phase.
struct GroupingResult {
  /// cluster id per input segment; -1 marks noise.
  std::vector<int> labels;
  std::size_t num_clusters{0};
  std::size_t noise_segments{0};
  std::size_t distance_computations{0};
};

/// Runs the segment DBSCAN. Deterministic (segments processed in index
/// order). Throws neat::PreconditionError on non-positive ε or MinLns < 1.
[[nodiscard]] GroupingResult group_segments(const std::vector<LineSeg>& segments,
                                            const GroupingConfig& config);

}  // namespace neat::traclus
