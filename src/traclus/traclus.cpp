#include "traclus/traclus.h"

#include <unordered_set>

#include "common/stopwatch.h"

namespace neat::traclus {

Result run(const traj::TrajectoryDataset& data, const Config& config) {
  Result res;
  Stopwatch watch;

  res.segments = partition_dataset(data, config.use_mdl);
  res.partition_s = watch.elapsed_seconds();

  watch.restart();
  GroupingConfig gcfg;
  gcfg.epsilon = config.epsilon;
  gcfg.min_lns = config.min_lns;
  gcfg.w_perp = config.w_perp;
  gcfg.w_par = config.w_par;
  gcfg.w_ang = config.w_ang;
  const GroupingResult groups = group_segments(res.segments, gcfg);
  res.noise_segments = groups.noise_segments;
  res.distance_computations = groups.distance_computations;
  res.grouping_s = watch.elapsed_seconds();

  watch.restart();
  res.clusters.resize(groups.num_clusters);
  for (std::size_t i = 0; i < res.segments.size(); ++i) {
    const int label = groups.labels[i];
    if (label >= 0) res.clusters[static_cast<std::size_t>(label)].segment_indices.push_back(i);
  }
  for (Cluster& cluster : res.clusters) {
    std::vector<LineSeg> members;
    members.reserve(cluster.segment_indices.size());
    std::unordered_set<std::int64_t> trids;
    for (const std::size_t si : cluster.segment_indices) {
      members.push_back(res.segments[si]);
      trids.insert(res.segments[si].trid.value());
    }
    cluster.trajectory_cardinality = static_cast<int>(trids.size());
    cluster.representative = representative_trajectory(members, config.min_lns, config.gamma);
    cluster.representative_length = polyline_length(cluster.representative);
  }
  res.representative_s = watch.elapsed_seconds();
  return res;
}

}  // namespace neat::traclus
