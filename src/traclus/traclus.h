// Top-level TraClus baseline (Lee, Han, Whang — SIGMOD'07), the
// "conventional density-based approach" NEAT is compared against in the
// paper's §IV-C.
//
// Usage:
//   traclus::Config cfg{.epsilon = 10.0, .min_lns = 30};
//   traclus::Result res = traclus::run(dataset, cfg);
#pragma once

#include <vector>

#include "traclus/grouping.h"
#include "traclus/partition.h"
#include "traclus/representative.h"
#include "traj/dataset.h"

namespace neat::traclus {

/// Full TraClus configuration.
struct Config {
  double epsilon{10.0};    ///< Segment DBSCAN ε (metres).
  int min_lns{30};         ///< Segment DBSCAN MinLns.
  double w_perp{1.0};      ///< Perpendicular distance weight.
  double w_par{1.0};       ///< Parallel distance weight.
  double w_ang{1.0};       ///< Angular distance weight.
  bool use_mdl{true};      ///< MDL partitioning (false: raw point pairs).
  double gamma{25.0};      ///< Representative sweep spacing (metres).
};

/// One discovered cluster.
struct Cluster {
  std::vector<std::size_t> segment_indices;  ///< Into Result::segments.
  std::vector<Point> representative;         ///< Representative trajectory.
  double representative_length{0.0};         ///< Polyline length (metres).
  int trajectory_cardinality{0};             ///< Distinct trajectories touched.
};

/// Full TraClus output with phase timings and work counters.
struct Result {
  std::vector<LineSeg> segments;  ///< Partitioning output.
  std::vector<Cluster> clusters;
  std::size_t noise_segments{0};
  std::size_t distance_computations{0};
  double partition_s{0.0};
  double grouping_s{0.0};
  double representative_s{0.0};

  [[nodiscard]] double total_s() const {
    return partition_s + grouping_s + representative_s;
  }
};

/// Runs the full TraClus pipeline: partition, group, representatives.
[[nodiscard]] Result run(const traj::TrajectoryDataset& data, const Config& config);

}  // namespace neat::traclus
