// TraClus partitioning phase (SIGMOD'07 §4.1): approximate MDL partitioning.
//
// Each trajectory is scanned for *characteristic points* — points where the
// moving object changes behaviour — by comparing the MDL cost of replacing
// the sub-path with one line segment (MDL_par) against keeping it verbatim
// (MDL_nopar). The trajectory is then replaced by the line segments between
// consecutive characteristic points.
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "traj/dataset.h"

namespace neat::traclus {

/// A directed line segment produced by partitioning, tagged with its source
/// trajectory.
struct LineSeg {
  Point s;
  Point e;
  TrajectoryId trid;

  [[nodiscard]] double length() const { return distance(s, e); }
  [[nodiscard]] Point midpoint() const { return lerp(s, e, 0.5); }
};

/// Indices of the characteristic points of a point sequence (always includes
/// 0 and size-1). Sequences shorter than 2 points return all indices.
[[nodiscard]] std::vector<std::size_t> characteristic_indices(const std::vector<Point>& pts);

/// Partitions every trajectory of the dataset into line segments between
/// consecutive characteristic points. Zero-length segments are skipped.
/// When `use_mdl` is false every consecutive point pair becomes a segment
/// (no simplification) — the degenerate baseline.
[[nodiscard]] std::vector<LineSeg> partition_dataset(const traj::TrajectoryDataset& data,
                                                     bool use_mdl = true);

}  // namespace neat::traclus
