#include "traclus/partition.h"

#include <algorithm>
#include <cmath>

#include "traclus/segment_distance.h"

namespace neat::traclus {

namespace {

/// log2 clamped away from -infinity: distances below one metre carry no
/// encoding cost. (The standard TraClus implementation clamps the same way.)
double log2_cost(double value) { return std::log2(std::max(value, 1.0)); }

/// MDL cost of the hypothesis segment pts[lo] -> pts[hi] covering the
/// original sub-path: L(H) + L(D|H), where L(D|H) sums, per covered
/// segment, the encoding cost of its perpendicular and angular deviation
/// from the hypothesis (SIGMOD'07 Definition, Section 4.1).
double mdl_par(const std::vector<Point>& pts, std::size_t lo, std::size_t hi) {
  double cost = log2_cost(distance(pts[lo], pts[hi]));
  for (std::size_t k = lo; k < hi; ++k) {
    cost += log2_cost(mdl_perpendicular(pts[lo], pts[hi], pts[k], pts[k + 1]));
    cost += log2_cost(mdl_angular(pts[lo], pts[hi], pts[k], pts[k + 1]));
  }
  return cost;
}

/// MDL cost of keeping the sub-path verbatim: L(H) only (L(D|H) = 0).
double mdl_nopar(const std::vector<Point>& pts, std::size_t lo, std::size_t hi) {
  double cost = 0.0;
  for (std::size_t k = lo; k < hi; ++k) cost += log2_cost(distance(pts[k], pts[k + 1]));
  return cost;
}

}  // namespace

std::vector<std::size_t> characteristic_indices(const std::vector<Point>& pts) {
  std::vector<std::size_t> out;
  if (pts.size() <= 2) {
    for (std::size_t i = 0; i < pts.size(); ++i) out.push_back(i);
    return out;
  }
  // Approximate algorithm of SIGMOD'07 Figure 8.
  out.push_back(0);
  std::size_t start = 0;
  std::size_t length = 1;
  while (start + length < pts.size()) {
    const std::size_t cur = start + length;
    if (mdl_par(pts, start, cur) > mdl_nopar(pts, start, cur)) {
      out.push_back(cur - 1);
      start = cur - 1;
      length = 1;
    } else {
      ++length;
    }
  }
  out.push_back(pts.size() - 1);
  // `cur - 1` can equal `start` when a single hop already costs more to
  // approximate than to keep; dedupe to keep indices strictly increasing.
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<LineSeg> partition_dataset(const traj::TrajectoryDataset& data, bool use_mdl) {
  std::vector<LineSeg> segments;
  for (const traj::Trajectory& tr : data) {
    std::vector<Point> pts;
    pts.reserve(tr.size());
    for (const traj::Location& loc : tr.points()) pts.push_back(loc.pos);

    std::vector<std::size_t> marks;
    if (use_mdl) {
      marks = characteristic_indices(pts);
    } else {
      marks.resize(pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) marks[i] = i;
    }
    for (std::size_t i = 1; i < marks.size(); ++i) {
      const Point a = pts[marks[i - 1]];
      const Point b = pts[marks[i]];
      if (distance_sq(a, b) == 0.0) continue;
      segments.push_back(LineSeg{a, b, tr.id()});
    }
  }
  return segments;
}

}  // namespace neat::traclus
