#include "traclus/grouping.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "traclus/segment_distance.h"

namespace neat::traclus {

namespace {

/// Uniform grid over segment midpoints for ε-range candidate generation.
class MidpointGrid {
 public:
  MidpointGrid(const std::vector<LineSeg>& segments, double cell) : cell_(cell) {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const Point m = segments[i].midpoint();
      const int cx = coord(m.x);
      const int cy = coord(m.y);
      min_x_ = std::min(min_x_, cx);
      max_x_ = std::max(max_x_, cx);
      min_y_ = std::min(min_y_, cy);
      max_y_ = std::max(max_y_, cy);
      cells_[pack(cx, cy)].push_back(i);
    }
  }

  /// Indices of segments whose midpoint lies within `radius` of `center`
  /// (conservative: returns the covering cell block, clamped to the
  /// occupied extent so huge radii degrade to a full scan, not a hang).
  void candidates(Point center, double radius, std::vector<std::size_t>& out) const {
    out.clear();
    if (cells_.empty()) return;
    const double r_cells = std::ceil(radius / cell_) + 1.0;
    const int cx = coord(center.x);
    const int cy = coord(center.y);
    const auto clamp_lo = [&](double v, int lo) {
      return std::max(static_cast<double>(lo), v);
    };
    const auto clamp_hi = [&](double v, int hi) {
      return std::min(static_cast<double>(hi), v);
    };
    const int x0 = static_cast<int>(clamp_lo(cx - r_cells, min_x_));
    const int x1 = static_cast<int>(clamp_hi(cx + r_cells, max_x_));
    const int y0 = static_cast<int>(clamp_lo(cy - r_cells, min_y_));
    const int y1 = static_cast<int>(clamp_hi(cy + r_cells, max_y_));
    for (int gy = y0; gy <= y1; ++gy) {
      for (int gx = x0; gx <= x1; ++gx) {
        const auto it = cells_.find(pack(gx, gy));
        if (it == cells_.end()) continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
  }

 private:
  [[nodiscard]] int coord(double v) const { return static_cast<int>(std::floor(v / cell_)); }
  [[nodiscard]] static std::uint64_t pack(int x, int y) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(y));
  }

  double cell_;
  int min_x_{std::numeric_limits<int>::max()};
  int max_x_{std::numeric_limits<int>::min()};
  int min_y_{std::numeric_limits<int>::max()};
  int max_y_{std::numeric_limits<int>::min()};
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cells_;
};

}  // namespace

GroupingResult group_segments(const std::vector<LineSeg>& segments,
                              const GroupingConfig& config) {
  NEAT_EXPECT(config.epsilon > 0.0, "GroupingConfig: epsilon must be positive");
  NEAT_EXPECT(config.min_lns >= 1, "GroupingConfig: MinLns must be at least 1");

  GroupingResult res;
  const std::size_t n = segments.size();
  res.labels.assign(n, -2);  // -2: unclassified, -1: noise
  if (n == 0) return res;

  double max_len = 0.0;
  for (const LineSeg& s : segments) max_len = std::max(max_len, s.length());
  // Midpoint-separation bound: when the weighted distance is <= ε, the
  // perpendicular plus parallel components are <= ε / min(w_perp, w_par),
  // and midpoints additionally drift by at most half of each length. With a
  // non-positive perpendicular or parallel weight no spatial bound exists,
  // so the grid degenerates to a full scan (radius = whole plane).
  const double w_min = std::min(config.w_perp, config.w_par);
  const double candidate_radius =
      w_min > 0.0 ? config.epsilon / w_min + max_len
                  : std::numeric_limits<double>::max() / 4.0;
  const MidpointGrid grid(segments, std::max(config.epsilon, max_len / 2.0) + 1.0);

  std::vector<std::size_t> cand;
  const auto region_query = [&](std::size_t i) {
    std::vector<std::size_t> region;
    grid.candidates(segments[i].midpoint(), candidate_radius, cand);
    for (const std::size_t j : cand) {
      if (j == i) {
        region.push_back(j);
        continue;
      }
      ++res.distance_computations;
      const DistanceComponents d =
          segment_distance(segments[i].s, segments[i].e, segments[j].s, segments[j].e);
      if (d.total(config.w_perp, config.w_par, config.w_ang) <= config.epsilon) {
        region.push_back(j);
      }
    }
    std::sort(region.begin(), region.end());
    return region;
  };

  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (res.labels[i] != -2) continue;
    const std::vector<std::size_t> region = region_query(i);
    if (region.size() < static_cast<std::size_t>(config.min_lns)) {
      res.labels[i] = -1;
      continue;
    }
    const int cluster = next_cluster++;
    res.labels[i] = cluster;
    std::deque<std::size_t> frontier(region.begin(), region.end());
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      if (res.labels[cur] == -1) {  // border segment
        res.labels[cur] = cluster;
        continue;
      }
      if (res.labels[cur] != -2) continue;
      res.labels[cur] = cluster;
      const std::vector<std::size_t> sub = region_query(cur);
      if (sub.size() >= static_cast<std::size_t>(config.min_lns)) {
        for (const std::size_t nb : sub) {
          if (res.labels[nb] == -2 || res.labels[nb] == -1) frontier.push_back(nb);
        }
      }
    }
  }

  // Trajectory-cardinality check: a cluster must touch at least MinLns
  // distinct trajectories (SIGMOD'07 §4.2, step 3).
  std::vector<std::unordered_set<std::int64_t>> trajs(
      static_cast<std::size_t>(next_cluster));
  for (std::size_t i = 0; i < n; ++i) {
    if (res.labels[i] >= 0) {
      trajs[static_cast<std::size_t>(res.labels[i])].insert(segments[i].trid.value());
    }
  }
  std::vector<int> remap(static_cast<std::size_t>(next_cluster), -1);
  int kept = 0;
  for (int c = 0; c < next_cluster; ++c) {
    if (trajs[static_cast<std::size_t>(c)].size() >=
        static_cast<std::size_t>(config.min_lns)) {
      remap[static_cast<std::size_t>(c)] = kept++;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (res.labels[i] >= 0) res.labels[i] = remap[static_cast<std::size_t>(res.labels[i])];
  }
  res.num_clusters = static_cast<std::size_t>(kept);
  for (const int label : res.labels) {
    if (label < 0) ++res.noise_segments;
  }
  return res;
}

}  // namespace neat::traclus
