// The TraClus line-segment distance (Lee, Han, Whang — SIGMOD'07, §3.2).
//
// The distance between two directed line segments is a weighted sum of three
// Euclidean components measured after designating the *longer* segment as
// the base: perpendicular distance (Lehmer mean of the two projection
// distances), parallel distance (smaller overhang beyond the projections),
// and angular distance (opposing length scaled by the sine of the angle;
// the full length when the segments point in opposite directions).
#pragma once

#include "common/geometry.h"

namespace neat::traclus {

/// The three distance components between two line segments.
struct DistanceComponents {
  double perpendicular{0.0};
  double parallel{0.0};
  double angular{0.0};

  /// Weighted total distance.
  [[nodiscard]] double total(double w_perp = 1.0, double w_par = 1.0,
                             double w_ang = 1.0) const {
    return w_perp * perpendicular + w_par * parallel + w_ang * angular;
  }
};

/// Computes the TraClus distance components between segments (si -> ei) and
/// (sj -> ej). Symmetric in the two segments (the longer one is always the
/// base). Degenerate (zero-length) inputs are handled as points.
[[nodiscard]] DistanceComponents segment_distance(Point si, Point ei, Point sj, Point ej);

/// Perpendicular distance component only (used by the MDL partitioning,
/// where the base is the hypothetical segment (si -> ei), *not* the longer
/// one).
[[nodiscard]] double mdl_perpendicular(Point si, Point ei, Point sj, Point ej);

/// Angular distance component with (si -> ei) as the base.
[[nodiscard]] double mdl_angular(Point si, Point ei, Point sj, Point ej);

}  // namespace neat::traclus
