#include "traclus/segment_distance.h"

#include <algorithm>
#include <cmath>

namespace neat::traclus {

namespace {

/// Projection scalar of point p onto the (possibly degenerate) line through
/// a -> b, unclamped.
double projection_coefficient(Point p, Point a, Point b) {
  const Point ab = b - a;
  const double len_sq = norm_sq(ab);
  if (len_sq == 0.0) return 0.0;
  return dot(p - a, ab) / len_sq;
}

/// Distance from p to its unclamped projection on the line a -> b.
double line_distance(Point p, Point a, Point b) {
  const double u = projection_coefficient(p, a, b);
  const Point proj = a + (b - a) * u;
  return distance(p, proj);
}

double perpendicular_component(Point si, Point ei, Point sj, Point ej) {
  const double l1 = line_distance(sj, si, ei);
  const double l2 = line_distance(ej, si, ei);
  if (l1 + l2 == 0.0) return 0.0;
  return (l1 * l1 + l2 * l2) / (l1 + l2);  // Lehmer mean, per the paper
}

double parallel_component(Point si, Point ei, Point sj, Point ej) {
  // SIGMOD'07 Figure 5: l_par1 is the distance from the projection of sj to
  // the base start si; l_par2 from the projection of ej to the base end ei;
  // the parallel distance is their minimum.
  const double u1 = projection_coefficient(sj, si, ei);
  const double u2 = projection_coefficient(ej, si, ei);
  const double base_len = distance(si, ei);
  const double l1 = std::fabs(u1) * base_len;
  const double l2 = std::fabs(1.0 - u2) * base_len;
  return std::min(l1, l2);
}

double angular_component(Point si, Point ei, Point sj, Point ej) {
  const Point v1 = ei - si;
  const Point v2 = ej - sj;
  const double len2 = norm(v2);
  if (len2 == 0.0) return 0.0;
  const double len1 = norm(v1);
  if (len1 == 0.0) return 0.0;
  const double cos_theta = dot(v1, v2) / (len1 * len2);
  if (cos_theta < 0.0) return len2;  // pointing apart: full length
  const double sin_sq = std::max(0.0, 1.0 - cos_theta * cos_theta);
  return len2 * std::sqrt(sin_sq);
}

}  // namespace

DistanceComponents segment_distance(Point si, Point ei, Point sj, Point ej) {
  // The longer segment becomes the base Li.
  if (distance_sq(si, ei) < distance_sq(sj, ej)) {
    std::swap(si, sj);
    std::swap(ei, ej);
  }
  DistanceComponents d;
  d.perpendicular = perpendicular_component(si, ei, sj, ej);
  d.parallel = parallel_component(si, ei, sj, ej);
  d.angular = angular_component(si, ei, sj, ej);
  return d;
}

double mdl_perpendicular(Point si, Point ei, Point sj, Point ej) {
  return perpendicular_component(si, ei, sj, ej);
}

double mdl_angular(Point si, Point ei, Point sj, Point ej) {
  return angular_component(si, ei, sj, ej);
}

}  // namespace neat::traclus
