#include "traclus/network_variant.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "core/refiner.h"
#include "roadnet/shortest_path.h"

namespace neat::traclus {

NetworkVariantResult run_network_variant(const roadnet::RoadNetwork& net,
                                         const std::vector<BaseCluster>& base_clusters,
                                         const NetworkVariantConfig& config) {
  NEAT_EXPECT(config.epsilon > 0.0, "NetworkVariantConfig: epsilon must be positive");
  NEAT_EXPECT(config.min_lns >= 1, "NetworkVariantConfig: MinLns must be at least 1");

  NetworkVariantResult res;
  const std::size_t n = base_clusters.size();
  if (n == 0) return res;

  roadnet::NodeDistanceOracle oracle(net);
  const double bound = config.bound_searches_at_epsilon
                           ? config.epsilon
                           : std::numeric_limits<double>::infinity();

  // Modified endpoint-Hausdorff distance between two base clusters: their
  // representative segments' endpoints under the network metric.
  const auto hausdorff = [&](std::size_t i, std::size_t j) {
    const roadnet::Segment& a = net.segment(base_clusters[i].sid());
    const roadnet::Segment& b = net.segment(base_clusters[j].sid());
    const double d11 = oracle.distance(a.a, b.a, bound);
    const double d12 = oracle.distance(a.a, b.b, bound);
    const double d21 = oracle.distance(a.b, b.a, bound);
    const double d22 = oracle.distance(a.b, b.b, bound);
    return hausdorff_from_parts(d11, d12, d21, d22);
  };

  std::unordered_map<std::uint64_t, double> cache;
  const auto pair_distance = [&](std::size_t i, std::size_t j) {
    std::uint64_t key = (i < j) ? i * n + j : j * n + i;
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    ++res.distance_computations;
    const double d = hausdorff(i, j);
    cache.emplace(key, d);
    return d;
  };

  const auto region_query = [&](std::size_t i) {
    std::vector<std::size_t> region{i};
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && pair_distance(i, j) <= config.epsilon) region.push_back(j);
    }
    std::sort(region.begin(), region.end());
    return region;
  };

  // Plain DBSCAN over base clusters, processed in index order.
  std::vector<int> label(n, -2);
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != -2) continue;
    const std::vector<std::size_t> region = region_query(i);
    if (region.size() < static_cast<std::size_t>(config.min_lns)) {
      label[i] = -1;
      continue;
    }
    const int cluster = next_cluster++;
    label[i] = cluster;
    std::deque<std::size_t> frontier(region.begin(), region.end());
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      if (label[cur] == -1) {
        label[cur] = cluster;
        continue;
      }
      if (label[cur] != -2) continue;
      label[cur] = cluster;
      const std::vector<std::size_t> sub = region_query(cur);
      if (sub.size() >= static_cast<std::size_t>(config.min_lns)) {
        for (const std::size_t nb : sub) {
          if (label[nb] == -2 || label[nb] == -1) frontier.push_back(nb);
        }
      }
    }
  }

  res.clusters.resize(static_cast<std::size_t>(next_cluster));
  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] >= 0) {
      res.clusters[static_cast<std::size_t>(label[i])].push_back(i);
    } else {
      ++res.noise_clusters;
    }
  }
  res.sp_computations = oracle.computations();
  return res;
}

}  // namespace neat::traclus
