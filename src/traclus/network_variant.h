// The paper's TraClus *network variant* (§IV-C, last paragraph).
//
// To isolate the contribution of NEAT's flow semantics, the authors also ran
// a TraClus variant that is handed NEAT's own Phase 1 output: the grouping
// phase merges *base clusters* (not t-fragments) with NEAT's modified
// endpoint-Hausdorff distance measured in network metric. Even with this
// head start, the DBSCAN-style grouping remains distance-computation bound
// and its clusters show only discrete traffic density — the comparison the
// paper reports for SJ2000 (6396.79 s / 117 clusters vs NEAT's 11.68 s / 42
// flows + 14 clusters).
#pragma once

#include <cstddef>
#include <vector>

#include "core/base_cluster.h"
#include "roadnet/road_network.h"

namespace neat::traclus {

/// Parameters of the network variant.
struct NetworkVariantConfig {
  double epsilon{500.0};  ///< Network-distance ε between base clusters (m).
  int min_lns{3};         ///< DBSCAN MinLns over base clusters.
  /// Bound Dijkstra searches at ε. This keeps every clustering decision
  /// identical (d > ε is all DBSCAN needs) while letting the benchmark
  /// finish; disable to reproduce the unbounded original cost profile.
  bool bound_searches_at_epsilon{true};
};

/// Result of the network variant.
struct NetworkVariantResult {
  /// Base-cluster index groups (ascending), one per discovered cluster.
  std::vector<std::vector<std::size_t>> clusters;
  std::size_t noise_clusters{0};
  std::size_t distance_computations{0};  ///< Pairwise Hausdorff evaluations.
  std::size_t sp_computations{0};        ///< Underlying Dijkstra runs.
};

/// Runs the TraClus network variant over NEAT Phase 1 base clusters.
[[nodiscard]] NetworkVariantResult run_network_variant(
    const roadnet::RoadNetwork& net, const std::vector<BaseCluster>& base_clusters,
    const NetworkVariantConfig& config);

}  // namespace neat::traclus
