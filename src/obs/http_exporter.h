// Embedded HTTP admin server — the pull half of the observability layer.
//
// A tiny dependency-free HTTP/1.1 server (POSIX sockets, blocking accept
// loop on a background thread, a small bounded worker pool) that turns the
// in-process registry + tracer into a live scrape plane:
//
//   GET /metrics   Prometheus text exposition of the backing Registry
//   GET /healthz   liveness: 200 as long as the process serves requests
//   GET /readyz    readiness: 200 when the ready() callback says so,
//                  503 Service Unavailable otherwise (e.g. no snapshot yet)
//   GET /statusz   JSON: build info, uptime, pid, plus app-supplied fields
//                  (snapshot version/age, ingest queue depth, ...)
//   GET /tracez    most recent N finished spans of the tracer as JSON
//
// Unknown paths answer 404, malformed requests 400, non-GET/HEAD methods
// 405. Every response carries Content-Length and `Connection: close` and
// the socket is closed after the write, so plain `curl` always terminates.
//
// Overload behaviour: accepted connections wait in a bounded queue; when it
// is full the connection is closed immediately (load shedding, counted in
// `neat_obs_http_connections_dropped_total`). Workers use short socket
// timeouts so a stalled client can never wedge shutdown. stop() (also run
// by the destructor) closes the listen socket, wakes the pool and joins
// every thread — after it returns the port is free again.
//
// The server records its own traffic into the backing registry as
// `neat_obs_http_requests_total{path=...,code=...}`.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::obs {

/// Tuning of the admin server.
struct HttpExporterOptions {
  /// IPv4 address to bind; "0.0.0.0" exposes the plane beyond localhost.
  std::string bind_address{"127.0.0.1"};
  /// TCP port; 0 picks an ephemeral port, queried back via port().
  std::uint16_t port{0};
  /// Worker threads answering requests (>= 1).
  std::size_t worker_threads{2};
  /// Accepted connections allowed to wait for a worker before shedding.
  std::size_t max_pending_connections{16};
  /// Span count cap of the /tracez payload.
  std::size_t tracez_spans{256};
  /// Readiness probe backing /readyz; null = always ready.
  std::function<bool()> ready;
  /// Extra top-level `"key":value` JSON fields (comma-joined, no braces)
  /// merged into /statusz; null = none.
  std::function<std::string()> status_fields;
};

/// Live HTTP admin plane over a Registry (and optionally a Tracer).
/// Construction binds + listens and starts the threads (throws neat::Error
/// when the address is unavailable); all endpoints are served until stop().
class HttpExporter {
 public:
  /// Keeps references to `registry` (and `tracer` when given); do not
  /// outlive them. Callbacks in `options` are invoked from worker threads
  /// and must be thread-safe.
  explicit HttpExporter(Registry& registry, HttpExporterOptions options = {},
                        Tracer* tracer = nullptr);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Stops accepting, wakes and joins every thread, closes all sockets.
  /// Idempotent; after it returns the bound port is released.
  void stop();

  /// The actually bound TCP port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Requests answered so far (any status code).
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Dispatches one already-parsed request line to the endpoint table and
  /// returns the full HTTP response bytes. Exposed for tests; `serve()`
  /// paths go through exactly this.
  [[nodiscard]] std::string handle(const std::string& method,
                                   const std::string& path) const;

 private:
  struct Response {
    int code{200};
    std::string content_type{"text/plain; charset=utf-8"};
    std::string body;
  };

  [[nodiscard]] Response dispatch(const std::string& path) const;
  [[nodiscard]] std::string status_json() const;
  [[nodiscard]] static std::string render(const Response& r, bool include_body);
  void count_request(const std::string& path, int code) const;

  void accept_loop();
  void worker_loop();
  void serve_connection(int fd) const;

  Registry& registry_;
  Tracer* tracer_;
  HttpExporterOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<int> listen_fd_{-1};  ///< Written by stop() while the acceptor reads it.
  std::uint16_t port_{0};
  std::atomic<bool> stopping_{false};
  mutable std::atomic<std::uint64_t> served_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted fds waiting for a worker.

  std::vector<std::thread> workers_;
  std::thread acceptor_;  ///< Last member: started after all state.
};

}  // namespace neat::obs
