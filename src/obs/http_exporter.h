// Embedded HTTP admin server — the pull half of the observability layer.
//
// A thin set of admin routes on the shared socket core net::HttpServer
// (src/net/http_server.h), which was extracted from this class; the wire
// behaviour is unchanged. The routes turn the in-process registry + tracer
// into a live scrape plane:
//
//   GET /metrics   Prometheus text exposition of the backing Registry
//   GET /healthz   liveness: 200 as long as the process serves requests
//   GET /readyz    readiness: 200 when the ready() callback says so,
//                  503 Service Unavailable otherwise (e.g. no snapshot yet)
//   GET /statusz   JSON: build info, uptime, pid, profiler state, plus
//                  app-supplied fields (snapshot version/age, queue depth)
//   GET /tracez    most recent N finished spans of the tracer as JSON
//   GET /profilez  runs the sampling CPU profiler for ?seconds=N (default
//                  2, capped) and streams the collapsed-stack ("folded")
//                  profile as text/plain — pipe into flamegraph tooling or
//                  tools/fold2svg.py. 409 when a session is already
//                  active, 400 on a malformed parameter. The handler
//                  blocks one worker for the duration by design.
//   GET /logz      the structured logger's state as JSON: default level,
//                  per-module levels, lines/dropped/suppressed totals
//   PUT /logz      flips log levels at runtime without a restart:
//                  ?level=LEVEL alone moves the default and every module;
//                  &module=NAME moves one module (creating it). 400 with
//                  {"error":...} on a missing/unknown level. Answers the
//                  updated /logz listing.
//
// Unknown paths answer 404, malformed requests 400, disallowed methods
// 405 (PUT is accepted only on /logz). Every response carries Content-Length and `Connection: close` and
// the socket is closed after the write, so plain `curl` always terminates.
//
// Overload behaviour (inherited from the core): accepted connections wait
// in a bounded queue; when it is full the connection is closed immediately
// (load shedding, counted in `neat_obs_http_connections_dropped_total`).
// Workers use short socket timeouts so a stalled client can never wedge
// shutdown. stop() (also run by the destructor) closes the listen socket,
// wakes the pool and joins every thread — after it returns the port is
// free again.
//
// The server records its own traffic into the backing registry as
// `neat_obs_http_requests_total{path=...,code=...}`.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "net/http_server.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::obs {

/// Tuning of the admin server.
struct HttpExporterOptions {
  /// IPv4 address to bind; "0.0.0.0" exposes the plane beyond localhost.
  std::string bind_address{"127.0.0.1"};
  /// TCP port; 0 picks an ephemeral port, queried back via port().
  std::uint16_t port{0};
  /// Worker threads answering requests (>= 1).
  std::size_t worker_threads{2};
  /// Accepted connections allowed to wait for a worker before shedding.
  std::size_t max_pending_connections{16};
  /// Span count cap of the /tracez payload.
  std::size_t tracez_spans{256};
  /// Longest profiling run /profilez will accept, seconds.
  double profilez_max_seconds{60.0};
  /// Readiness probe backing /readyz; null = always ready.
  std::function<bool()> ready;
  /// Extra top-level `"key":value` JSON fields (comma-joined, no braces)
  /// merged into /statusz; null = none.
  std::function<std::string()> status_fields;
  /// Logger behind /logz and the /statusz "log" section; null =
  /// log::Logger::global(). Tests attach private loggers.
  log::Logger* logger{nullptr};
};

/// Live HTTP admin plane over a Registry (and optionally a Tracer).
/// Construction binds + listens and starts the threads (throws neat::Error
/// when the address is unavailable); all endpoints are served until stop().
class HttpExporter {
 public:
  /// Keeps references to `registry` (and `tracer` when given); do not
  /// outlive them. Callbacks in `options` are invoked from worker threads
  /// and must be thread-safe.
  explicit HttpExporter(Registry& registry, HttpExporterOptions options = {},
                        Tracer* tracer = nullptr);
  ~HttpExporter() = default;

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Stops accepting, wakes and joins every thread, closes all sockets.
  /// Idempotent; after it returns the bound port is released.
  void stop() { server_.stop(); }

  /// The actually bound TCP port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  /// Requests answered so far (any status code).
  [[nodiscard]] std::uint64_t requests_served() const {
    return server_.requests_served();
  }

  /// Dispatches one already-parsed request line to the endpoint table and
  /// returns the full HTTP response bytes. Exposed for tests; socket
  /// connections go through exactly this.
  [[nodiscard]] std::string handle(const std::string& method,
                                   const std::string& path) const {
    return server_.handle_request(method, path);
  }

 private:
  [[nodiscard]] std::string status_json() const;
  void register_routes();
  void count_request(const std::string& path, int code) const;
  [[nodiscard]] net::HttpServerOptions server_options() const;

  Registry& registry_;
  Tracer* tracer_;
  HttpExporterOptions options_;
  std::chrono::steady_clock::time_point start_;
  net::HttpServer server_;  ///< Last member: routes reference the state above.
};

}  // namespace neat::obs
