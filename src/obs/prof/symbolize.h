// Offline symbolization for the sampling profiler.
//
// Never touched from the signal handler — the handler records raw program
// counters and this class turns them into names after the session, in
// three tiers:
//
//   1. dladdr(): the dynamic symbol table. Executables link with
//      -rdynamic (see the top-level CMakeLists) precisely so their own
//      non-static functions resolve here; the result is demangled and its
//      argument list stripped ("neat::Refiner::refine").
//   2. /proc/self/maps: when the symbol table has no name (static or
//      anonymous-namespace functions, stripped libraries), the pc is
//      attributed to its executable mapping as "module+0xoffset".
//   3. bare hex ("0x7f42..."): a pc no mapping claims — a JIT page, a
//      corrupt frame record that still looked plausible, or a walk into
//      unmapped memory that process_vm_readv cut short.
//
// Return addresses point one instruction past their call, so every
// non-leaf frame is looked up at pc-1 to attribute the sample to the
// calling line's function, not whatever happens to follow it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace neat::obs::prof {

/// Caching pc -> name resolver. Construction snapshots /proc/self/maps;
/// not thread-safe (one symbolizer per export).
class Symbolizer {
 public:
  Symbolizer();

  /// The display name of `pc`. `return_address` shifts the lookup to pc-1
  /// (set for every frame except the interrupted leaf).
  [[nodiscard]] const std::string& name(std::uintptr_t pc, bool return_address);

  /// True when `name` is a bare-hex fallback (no symbol, no mapping).
  [[nodiscard]] static bool is_hex(const std::string& name);

 private:
  struct Mapping {
    std::uintptr_t begin{0};
    std::uintptr_t end{0};
    std::string path;  ///< Basename; "" for anonymous executable mappings.
  };

  [[nodiscard]] std::string resolve(std::uintptr_t pc) const;
  [[nodiscard]] const Mapping* mapping_of(std::uintptr_t pc) const;

  std::vector<Mapping> mappings_;  ///< Executable regions, sorted by begin.
  std::unordered_map<std::uintptr_t, std::string> cache_;
};

/// Demangles an Itanium-ABI name and strips the trailing argument list;
/// returns `mangled` unchanged when it does not demangle.
[[nodiscard]] std::string demangle_symbol(const char* mangled);

}  // namespace neat::obs::prof
