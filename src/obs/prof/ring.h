// Per-thread sample rings of the sampling CPU profiler — the only data
// structure the SIGPROF handler writes.
//
// Each sampled thread owns one SampleRing: the signal handler interrupting
// that thread is the single producer, the profiler's stop() drain is the
// single consumer, so a classic SPSC ring with acquire/release cursors is
// enough and every handler-side operation is a relaxed/release atomic —
// async-signal-safe by construction (no locks, no allocation, no libc
// calls). A full ring drops the sample and bumps the drop counters instead
// of blocking or overwriting: losing a sample under burst is harmless,
// corrupting one that a concurrent drain is reading is not.
//
// Slots are fixed-size so the handler never computes with sizes it would
// have to trust: a stack deeper than kMaxFrames is truncated (counted), a
// ring fuller than `capacity` drops (counted).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace neat::obs::prof {

/// Deepest stack a sample can carry; deeper walks truncate (and say so).
inline constexpr std::size_t kMaxFrames = 48;

/// One captured stack: program counters leaf-first (`pc[0]` is the
/// interrupted instruction, higher indices walk toward main).
struct Sample {
  std::uint32_t tid{0};       ///< Kernel thread id (gettid) of the sampled thread.
  std::uint16_t depth{0};     ///< Valid entries of `pc`, >= 1.
  std::uint16_t truncated{0}; ///< 1 when the walk hit kMaxFrames and stopped.
  std::uintptr_t pc[kMaxFrames];
};

/// Bounded SPSC ring of samples. Producer = the SIGPROF handler on the
/// owning thread; consumer = the profiler drain after the timer is disarmed.
struct SampleRing {
  std::atomic<std::uint64_t> head{0};  ///< Next slot to write (producer).
  std::atomic<std::uint64_t> tail{0};  ///< Next slot to read (consumer).
  Sample* slots{nullptr};              ///< `capacity` entries, owned by the session slab.
  std::size_t capacity{0};
  std::uint32_t tid{0};                ///< Claiming thread, for threads-seen reporting.

  /// Claims the next write slot, or nullptr when the ring is full. The
  /// producer fills the slot, then calls publish(). Signal-handler safe.
  Sample* begin_push() {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - tail.load(std::memory_order_acquire) >= capacity) return nullptr;
    return &slots[h % capacity];
  }

  /// Makes the slot returned by begin_push() visible to the consumer.
  void publish() {
    head.store(head.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  /// Consumes the oldest sample into `out`; false when empty. Must only be
  /// called while the producer is quiesced or between publishes (the
  /// profiler drains after disarming the timer and waiting out handlers).
  bool pop(Sample& out) {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    if (t == head.load(std::memory_order_acquire)) return false;
    out = slots[t % capacity];
    tail.store(t + 1, std::memory_order_release);
    return true;
  }
};

}  // namespace neat::obs::prof
