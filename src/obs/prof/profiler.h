// In-process sampling CPU profiler — the "where do the cycles go" half of
// the observability layer (metrics say how much, traces say when, profiles
// say which functions).
//
// A POSIX timer on the process CPU clock (timer_create with
// CLOCK_PROCESS_CPUTIME_ID) delivers SIGPROF at sample_hz; the kernel
// prefers the thread that was running when the process clock expired, so
// samples land on threads in proportion to the CPU they burn — the same
// delivery model gperftools' ITIMER_PROF profiler relies on, without
// per-thread timer registration hooks in every subsystem. The handler is
// strictly async-signal-safe: it reads the interrupted PC and frame
// pointer from the ucontext, walks frame-pointer records with
// process_vm_readv (a syscall that returns EFAULT instead of faulting on a
// wild pointer, so a garbage %rbp in a leaf function can never crash the
// process), and pushes the stack into the calling thread's lock-free SPSC
// ring (obs/prof/ring.h). Rings live in one slab preallocated at start();
// a thread claims its ring on first sample through initial-exec TLS (a
// plain offset-from-thread-pointer read, safe in a handler). Full rings
// and slab exhaustion drop the sample, bump
// `neat_obs_prof_dropped_total`, and emit one rate-limited warning via
// write(2).
//
// Everything expensive is offline: stop() disarms the timer, waits out
// in-flight handlers, drains the rings and aggregates identical stacks.
// Symbolization (obs/prof/symbolize.h: dladdr + /proc/self/maps + hex
// fallback) runs only in Profile::to_folded() / hot_symbols().
//
// Idle cost is zero — no timer armed, no handler fires, no memory held
// beyond this object. Active cost is one ~20-frame walk per sample per
// 1/sample_hz seconds of process CPU time (about 1% at the default 199 Hz).
//
// The profiler is process-global by nature (SIGPROF has one disposition),
// so the only instance is Profiler::global(); concurrent start() returns
// false, which the admin plane's /profilez maps to 409 Conflict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace neat::obs::prof {

/// Tuning of one profiling session.
struct ProfilerOptions {
  /// Samples per second of process CPU time. Odd/prime-ish values avoid
  /// lockstep with 100 Hz periodic work. Clamped to [1, 10000].
  int sample_hz{199};
  /// Distinct threads that can be sampled in one session; later threads
  /// drop (counted). Clamped to >= 1.
  std::size_t max_threads{64};
  /// Per-thread ring capacity in samples; a full ring drops (counted).
  /// Clamped to >= 2.
  std::size_t ring_slots{4096};
};

/// One aggregated stack: program counters leaf-first plus how many samples
/// hit exactly this stack.
struct ProfileStack {
  std::vector<std::uintptr_t> pcs;
  std::uint64_t count{0};
};

/// One row of the top-N table: a symbol and the share of samples whose
/// stack contains it anywhere (inclusive time).
struct HotSymbol {
  std::string symbol;
  double inclusive_pct{0.0};
};

/// The result of one profiling session. Plain data — constructible by
/// tests, serializable offline.
struct Profile {
  std::vector<ProfileStack> stacks;  ///< Aggregated, unordered.
  std::uint64_t samples{0};          ///< Stacks captured into rings.
  std::uint64_t dropped{0};          ///< Lost to full rings / slab exhaustion.
  std::uint64_t truncated{0};        ///< Samples cut at kMaxFrames.
  std::size_t threads_seen{0};       ///< Distinct threads that produced samples.
  double duration_s{0.0};            ///< Wall time between start() and stop().
  int sample_hz{0};

  /// Collapsed-stack ("folded") text: one `frame;frame;...;frame count`
  /// line per unique stack, root first, ready for standard flamegraph
  /// tooling (flamegraph.pl, speedscope, tools/fold2svg.py). Symbolized
  /// via dladdr with `module+0xoff` / bare-hex fallbacks; ';' inside
  /// symbol names is replaced so the separator stays unambiguous.
  [[nodiscard]] std::string to_folded() const;

  /// Top `n` symbols by inclusive sample share, descending. A symbol's
  /// inclusive share counts every sample whose stack contains it at least
  /// once, so leaf helpers and their callers both surface.
  [[nodiscard]] std::vector<HotSymbol> hot_symbols(std::size_t n) const;

  /// Fraction of samples whose stack carries >= 1 symbolized (non-hex)
  /// frame, in [0, 1]. The CI smoke gate requires >= 0.8.
  [[nodiscard]] double symbolized_fraction() const;
};

/// The process-wide sampling profiler. start()/stop() pairs delimit
/// sessions; all methods are thread-safe.
class Profiler {
 public:
  /// The only instance (SIGPROF has exactly one process disposition).
  static Profiler& global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms the timer and starts capturing. Returns false (and changes
  /// nothing) when a session is already active — callers surface that as
  /// 409/busy. Throws neat::Error when the OS refuses timer or signal
  /// setup. On non-Linux platforms always returns false.
  bool start(const ProfilerOptions& options = {});

  /// Disarms the timer, waits out in-flight handlers, drains every ring
  /// and returns the aggregated session. Calling stop() with no active
  /// session returns an empty Profile (idempotent).
  Profile stop();

  /// True between a successful start() and the matching stop().
  [[nodiscard]] bool active() const;

  /// Live counters of the current session (or the last finished one):
  /// for /statusz and progress displays. All safe to call concurrently
  /// with sampling.
  [[nodiscard]] std::uint64_t samples_captured() const;
  [[nodiscard]] std::uint64_t samples_dropped() const;
  [[nodiscard]] std::size_t threads_seen() const;
  [[nodiscard]] double session_seconds() const;  ///< 0 when never started.
  [[nodiscard]] int sample_hz() const;           ///< 0 when never started.

  /// The profiler section of /statusz: `{"active":...,"sample_hz":...,
  /// "duration_s":...,"samples":...,"dropped":...,"threads_seen":...}`.
  [[nodiscard]] std::string status_json() const;

 private:
  Profiler() = default;

  mutable std::mutex mu_;  ///< Serializes start/stop; never taken by the handler.
};

/// Runs `fn` under the profiler and returns the session. Convenience for
/// benches and tests; returns an empty Profile when the profiler was busy.
template <class Fn>
Profile profile_call(Fn&& fn, const ProfilerOptions& options = {}) {
  if (!Profiler::global().start(options)) return {};
  fn();
  return Profiler::global().stop();
}

}  // namespace neat::obs::prof
