#include "obs/prof/profiler.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <memory>
#include <set>

#include "common/error.h"
#include "common/string_util.h"
#include "obs/log/log.h"
#include "obs/prof/ring.h"
#include "obs/prof/symbolize.h"
#include "obs/registry.h"

#ifdef __linux__
#include <signal.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

namespace neat::obs::prof {

namespace {

#ifdef __linux__

/// One session's sampling state: the ring slab plus the claim cursor. The
/// handler reaches it through g_session; stop() frees it only after the
/// timer is disarmed and every in-flight handler has drained.
struct Session {
  std::unique_ptr<Sample[]> slab;        ///< max_threads * ring_slots slots.
  std::unique_ptr<SampleRing[]> rings;   ///< max_threads rings over the slab.
  std::size_t max_threads{0};
  std::atomic<std::size_t> claimed{0};   ///< Next free ring index.
  std::uint64_t epoch{0};                ///< Distinguishes sessions for TLS.
};

// --- handler-visible globals. The handler reads *only* these (plus the
// thread-local below); all are lock-free atomics or pointers published
// before the timer is armed.
std::atomic<bool> g_active{false};
std::atomic<std::uint32_t> g_in_handler{0};
std::atomic<Session*> g_session{nullptr};
std::atomic<Counter*> g_dropped_counter{nullptr};  ///< neat_obs_prof_dropped_total.
std::atomic<Counter*> g_samples_counter{nullptr};  ///< neat_obs_prof_samples_total.
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::int64_t> g_last_overflow_warn_s{-1000000};
/// Structured-logging hook for the overflow warning, published by start()
/// (cold path) so the handler only does lock-free loads. The logger's
/// try_log_signal_safe pushes to an existing per-thread ring without
/// locking or allocating; when it cannot, the handler falls back to
/// write(2).
std::atomic<log::Logger*> g_log_logger{nullptr};
std::atomic<log::Module*> g_log_module{nullptr};
/// Whether process_vm_readv self-reads work here (probed once at start();
/// sandboxes may filter the syscall). When false the walk stops at the
/// leaf pc instead of risking a fault on a garbage frame pointer.
std::atomic<bool> g_can_walk{false};

// The calling thread's claimed ring. Initial-exec TLS in a statically
// linked translation unit is a constant offset from the thread pointer —
// reading/writing it never allocates, so it is signal-handler safe (unlike
// dynamic TLS from dlopen'd modules).
struct ThreadSlot {
  std::uint64_t epoch{0};
  SampleRing* ring{nullptr};
};
thread_local ThreadSlot t_slot;

/// Reads [addr, addr+16) of our own address space via the kernel, so an
/// invalid frame pointer yields EFAULT instead of SIGSEGV. Signal-safe: a
/// plain syscall. Returns false when the address is unreadable.
bool read_frame_record(std::uintptr_t addr, std::uintptr_t out[2]) {
  iovec local{out, 2 * sizeof(std::uintptr_t)};
  iovec remote{reinterpret_cast<void*>(addr), 2 * sizeof(std::uintptr_t)};
  return syscall(SYS_process_vm_readv, getpid(), &local, 1, &remote, 1, 0) ==
         static_cast<long>(2 * sizeof(std::uintptr_t));
}

/// Rate-limited (one line per 5 s) ring-overflow warning. write(2) is
/// async-signal-safe; everything printf-shaped is not.
void warn_overflow_rate_limited() {
  timespec ts{};
  if (clock_gettime(CLOCK_MONOTONIC_COARSE, &ts) != 0) return;
  const std::int64_t now_s = ts.tv_sec;
  std::int64_t last = g_last_overflow_warn_s.load(std::memory_order_relaxed);
  if (now_s - last < 5) return;
  if (!g_last_overflow_warn_s.compare_exchange_strong(last, now_s,
                                                      std::memory_order_relaxed)) {
    return;
  }
  // Prefer a structured line through the async logger: its signal-safe
  // path only pushes to a ring this thread already owns (and never when a
  // log statement on this thread was interrupted mid-push), so it can
  // refuse — keep the classic write(2) fallback for exactly that case.
  log::Logger* logger = g_log_logger.load(std::memory_order_acquire);
  log::Module* module = g_log_module.load(std::memory_order_acquire);
  if (logger != nullptr && module != nullptr &&
      logger->try_log_signal_safe(
          log::Level::kWarn, *module,
          "sample ring overflow, dropping samples "
          "(see neat_obs_prof_dropped_total)")) {
    return;
  }
  static const char kMsg[] =
      "neat prof: sample ring overflow, dropping samples "
      "(see neat_obs_prof_dropped_total)\n";
  // The return value is deliberately ignored: there is no recovery from a
  // failed best-effort warning inside a signal handler.
  const ssize_t ignored = write(STDERR_FILENO, kMsg, sizeof(kMsg) - 1);
  static_cast<void>(ignored);
}

void count_drop() {
  g_dropped.fetch_add(1, std::memory_order_relaxed);
  if (Counter* c = g_dropped_counter.load(std::memory_order_relaxed)) c->add(1);
  warn_overflow_rate_limited();
}

/// The SIGPROF handler: capture the interrupted thread's stack into its
/// ring. Every operation here is async-signal-safe — atomics, the ucontext,
/// process_vm_readv, gettid, write. No locks, no allocation, no iostream.
void sigprof_handler(int, siginfo_t*, void* ucontext_raw) {
  const int saved_errno = errno;
  g_in_handler.fetch_add(1, std::memory_order_acquire);
  if (g_active.load(std::memory_order_relaxed)) {
    Session* session = g_session.load(std::memory_order_acquire);
    if (session != nullptr) {
      // Claim this thread's ring on first sample of the session.
      if (t_slot.epoch != session->epoch) {
        t_slot.epoch = session->epoch;
        t_slot.ring = nullptr;
        const std::size_t idx =
            session->claimed.fetch_add(1, std::memory_order_relaxed);
        if (idx < session->max_threads) {
          SampleRing& ring = session->rings[idx];
          ring.tid = static_cast<std::uint32_t>(syscall(SYS_gettid));
          t_slot.ring = &ring;
        }
      }
      if (t_slot.ring == nullptr) {
        count_drop();  // more threads than max_threads
      } else if (Sample* slot = t_slot.ring->begin_push()) {
        const auto* uc = static_cast<const ucontext_t*>(ucontext_raw);
#if defined(__x86_64__)
        auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
        auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
        auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
        auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
        std::uintptr_t pc = 0;
        std::uintptr_t fp = 0;
#endif
        slot->tid = t_slot.ring->tid;
        slot->truncated = 0;
        std::uint16_t depth = 0;
        if (pc != 0) slot->pc[depth++] = pc;
        // Frame-pointer walk: [fp] = caller's fp, [fp+8] = return address.
        // Bounds are sanity, not safety — safety is process_vm_readv
        // refusing unmapped reads: frames must grow upward, stay 8-aligned
        // and advance less than 1 MiB per hop, or the record is garbage.
        while (g_can_walk.load(std::memory_order_relaxed) && depth < kMaxFrames &&
               fp != 0 && (fp & 0x7) == 0) {
          std::uintptr_t record[2];
          if (!read_frame_record(fp, record)) break;
          const std::uintptr_t next_fp = record[0];
          const std::uintptr_t ret = record[1];
          if (ret == 0) break;
          slot->pc[depth++] = ret;
          if (next_fp <= fp || next_fp - fp > (1u << 20)) break;
          fp = next_fp;
        }
        if (depth == kMaxFrames) slot->truncated = 1;
        if (depth == 0) slot->pc[depth++] = 0;  // keep depth >= 1 invariant
        slot->depth = depth;
        t_slot.ring->publish();
        g_samples.fetch_add(1, std::memory_order_relaxed);
        if (Counter* c = g_samples_counter.load(std::memory_order_relaxed)) c->add(1);
      } else {
        count_drop();  // ring full
      }
    }
  }
  g_in_handler.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

// --- start/stop-side state, guarded by Profiler::mu_.
struct Controller {
  bool handler_installed{false};
  bool timer_armed{false};
  timer_t timer{};
  std::unique_ptr<Session> session;
  std::uint64_t next_epoch{1};
  ProfilerOptions options;
  std::chrono::steady_clock::time_point started;
  double last_duration_s{0.0};
  bool ever_started{false};
};

Controller& controller() {
  static Controller c;
  return c;
}

#endif  // __linux__

/// Sanitized copy of caller options.
ProfilerOptions clamp_options(ProfilerOptions o) {
  o.sample_hz = std::clamp(o.sample_hz, 1, 10000);
  o.max_threads = std::max<std::size_t>(o.max_threads, 1);
  o.ring_slots = std::max<std::size_t>(o.ring_slots, 2);
  return o;
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

#ifdef __linux__

bool Profiler::start(const ProfilerOptions& options) {
  const std::lock_guard<std::mutex> lock(mu_);
  Controller& ctl = controller();
  if (g_active.load(std::memory_order_relaxed)) return false;

  const ProfilerOptions opts = clamp_options(options);
  auto session = std::make_unique<Session>();
  session->max_threads = opts.max_threads;
  session->epoch = ctl.next_epoch++;
  session->slab = std::make_unique<Sample[]>(opts.max_threads * opts.ring_slots);
  session->rings = std::make_unique<SampleRing[]>(opts.max_threads);
  for (std::size_t i = 0; i < opts.max_threads; ++i) {
    session->rings[i].slots = session->slab.get() + i * opts.ring_slots;
    session->rings[i].capacity = opts.ring_slots;
  }

  {
    // Probe the frame-record read path once per start: a sandbox that
    // filters process_vm_readv degrades the profiler to leaf-only samples
    // instead of silently failing or (worse) faulting.
    std::uintptr_t probe[2] = {0, 0};
    const auto self = reinterpret_cast<std::uintptr_t>(&probe[0]);
    g_can_walk.store(read_frame_record(self, probe), std::memory_order_relaxed);
  }

  if (!ctl.handler_installed) {
    struct sigaction sa{};
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      throw Error("profiler: sigaction(SIGPROF) failed");
    }
    ctl.handler_installed = true;
  }

  // Cold-path registry lookups, cached as raw pointers the handler can
  // bump with one relaxed fetch_add. Series references live as long as the
  // global registry, i.e. the process.
  Registry& reg = Registry::global();
  reg.set_help("neat_obs_prof_samples_total",
               "Stack samples captured by the sampling CPU profiler.");
  reg.set_help("neat_obs_prof_dropped_total",
               "Profiler samples dropped by full rings or thread-slab exhaustion.");
  g_samples_counter.store(&reg.counter("neat_obs_prof_samples_total"),
                          std::memory_order_relaxed);
  g_dropped_counter.store(&reg.counter("neat_obs_prof_dropped_total"),
                          std::memory_order_relaxed);
  // Pre-register the logger hook for the handler's overflow warning: the
  // module lookup locks on first use, which must happen here (cold) and
  // never inside the signal handler.
  log::Logger& logger = log::Logger::global();
  g_log_module.store(&logger.module("prof"), std::memory_order_release);
  g_log_logger.store(&logger, std::memory_order_release);

  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_last_overflow_warn_s.store(-1000000, std::memory_order_relaxed);
  ctl.session = std::move(session);
  g_session.store(ctl.session.get(), std::memory_order_release);

  // CLOCK_PROCESS_CPUTIME_ID: the timer advances only while the process
  // burns CPU, and the expiry signal prefers the thread that was running —
  // idle processes produce no samples and busy threads are sampled in
  // proportion to their CPU share.
  sigevent sev{};
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &ctl.timer) != 0) {
    g_session.store(nullptr, std::memory_order_release);
    ctl.session.reset();
    throw Error("profiler: timer_create(CLOCK_PROCESS_CPUTIME_ID) failed");
  }
  const long period_ns = 1000000000L / opts.sample_hz;
  itimerspec spec{};
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  ctl.options = opts;
  ctl.started = std::chrono::steady_clock::now();
  ctl.ever_started = true;
  ctl.timer_armed = true;
  g_active.store(true, std::memory_order_release);
  if (timer_settime(ctl.timer, 0, &spec, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    timer_delete(ctl.timer);
    ctl.timer_armed = false;
    while (g_in_handler.load(std::memory_order_acquire) != 0) sched_yield();
    g_session.store(nullptr, std::memory_order_release);
    ctl.session.reset();
    throw Error("profiler: timer_settime failed");
  }
  return true;
}

Profile Profiler::stop() {
  const std::lock_guard<std::mutex> lock(mu_);
  Controller& ctl = controller();
  if (!g_active.load(std::memory_order_relaxed)) return {};

  // Disarm: no new expirations after timer_delete; the active flag turns
  // away any signal already queued. Then wait out handlers that passed the
  // flag check before we flipped it — after the spin, no handler can be
  // touching the session.
  g_active.store(false, std::memory_order_release);
  timer_delete(ctl.timer);
  ctl.timer_armed = false;
  while (g_in_handler.load(std::memory_order_acquire) != 0) {
    sched_yield();
  }
  g_session.store(nullptr, std::memory_order_release);

  Profile profile;
  profile.sample_hz = ctl.options.sample_hz;
  ctl.last_duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - ctl.started)
          .count();
  profile.duration_s = ctl.last_duration_s;
  profile.samples = g_samples.load(std::memory_order_relaxed);
  profile.dropped = g_dropped.load(std::memory_order_relaxed);
  if (profile.dropped > 0) {
    // Off-handler summary of what the rate-limited in-handler warning could
    // only hint at.
    NEAT_LOG(kWarn, "prof")
        .msg("profiling session dropped samples")
        .kv("dropped", profile.dropped)
        .kv("samples", profile.samples)
        .kv("duration_s", profile.duration_s);
  }

  std::map<std::vector<std::uintptr_t>, std::uint64_t> aggregated;
  std::set<std::uint32_t> tids;
  const std::size_t claimed =
      std::min(ctl.session->claimed.load(std::memory_order_relaxed),
               ctl.session->max_threads);
  Sample s;
  for (std::size_t i = 0; i < claimed; ++i) {
    SampleRing& ring = ctl.session->rings[i];
    tids.insert(ring.tid);
    while (ring.pop(s)) {
      if (s.truncated != 0) profile.truncated += 1;
      aggregated[std::vector<std::uintptr_t>(s.pc, s.pc + s.depth)] += 1;
    }
  }
  profile.threads_seen = tids.size();
  profile.stacks.reserve(aggregated.size());
  for (auto& [pcs, count] : aggregated) {
    profile.stacks.push_back({pcs, count});
  }
  ctl.session.reset();
  return profile;
}

bool Profiler::active() const {
  return g_active.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::samples_captured() const {
  return g_samples.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::samples_dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::size_t Profiler::threads_seen() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Controller& ctl = controller();
  if (ctl.session == nullptr) return 0;
  return std::min(ctl.session->claimed.load(std::memory_order_relaxed),
                  ctl.session->max_threads);
}

double Profiler::session_seconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Controller& ctl = controller();
  if (!ctl.ever_started) return 0.0;
  if (!g_active.load(std::memory_order_relaxed)) return ctl.last_duration_s;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - ctl.started)
      .count();
}

int Profiler::sample_hz() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Controller& ctl = controller();
  return ctl.ever_started ? ctl.options.sample_hz : 0;
}

#else  // !__linux__ — the API stays, sampling is a no-op.

bool Profiler::start(const ProfilerOptions&) { return false; }
Profile Profiler::stop() { return {}; }
bool Profiler::active() const { return false; }
std::uint64_t Profiler::samples_captured() const { return 0; }
std::uint64_t Profiler::samples_dropped() const { return 0; }
std::size_t Profiler::threads_seen() const { return 0; }
double Profiler::session_seconds() const { return 0.0; }
int Profiler::sample_hz() const { return 0; }

#endif  // __linux__

std::string Profiler::status_json() const {
  return str_cat("{\"active\":", active() ? "true" : "false",
                 ",\"sample_hz\":", sample_hz(),
                 ",\"duration_s\":", format_fixed(session_seconds(), 3),
                 ",\"samples\":", samples_captured(),
                 ",\"dropped\":", samples_dropped(),
                 ",\"threads_seen\":", threads_seen(), "}");
}

std::string Profile::to_folded() const {
  Symbolizer sym;
  std::string out;
  for (const ProfileStack& stack : stacks) {
    if (stack.pcs.empty()) continue;
    // pcs are leaf-first; folded lines read root -> leaf.
    for (std::size_t i = stack.pcs.size(); i-- > 0;) {
      const bool leaf = i == 0;
      std::string frame = sym.name(stack.pcs[i], /*return_address=*/!leaf);
      std::replace(frame.begin(), frame.end(), ';', ':');
      out += frame;
      out += leaf ? ' ' : ';';
    }
    out += std::to_string(stack.count);
    out += '\n';
  }
  return out;
}

std::vector<HotSymbol> Profile::hot_symbols(std::size_t n) const {
  Symbolizer sym;
  std::map<std::string, std::uint64_t> inclusive;
  std::uint64_t total = 0;
  std::set<std::string> in_stack;
  for (const ProfileStack& stack : stacks) {
    total += stack.count;
    in_stack.clear();
    for (std::size_t i = 0; i < stack.pcs.size(); ++i) {
      in_stack.insert(sym.name(stack.pcs[i], /*return_address=*/i != 0));
    }
    for (const std::string& name : in_stack) inclusive[name] += stack.count;
  }
  std::vector<HotSymbol> rows;
  rows.reserve(inclusive.size());
  for (const auto& [name, count] : inclusive) {
    rows.push_back(
        {name, total > 0 ? 100.0 * static_cast<double>(count) / static_cast<double>(total)
                         : 0.0});
  }
  std::sort(rows.begin(), rows.end(), [](const HotSymbol& a, const HotSymbol& b) {
    if (a.inclusive_pct != b.inclusive_pct) return a.inclusive_pct > b.inclusive_pct;
    return a.symbol < b.symbol;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

double Profile::symbolized_fraction() const {
  Symbolizer sym;
  std::uint64_t total = 0;
  std::uint64_t symbolized = 0;
  for (const ProfileStack& stack : stacks) {
    total += stack.count;
    for (std::size_t i = 0; i < stack.pcs.size(); ++i) {
      if (!Symbolizer::is_hex(sym.name(stack.pcs[i], i != 0))) {
        symbolized += stack.count;
        break;
      }
    }
  }
  return total > 0 ? static_cast<double>(symbolized) / static_cast<double>(total) : 0.0;
}

}  // namespace neat::obs::prof
