#include "obs/prof/symbolize.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

#ifdef __linux__
#include <cxxabi.h>
#include <dlfcn.h>
#endif

namespace neat::obs::prof {

namespace {

std::string hex_of(std::uintptr_t pc) {
  char buf[2 + 2 * sizeof(std::uintptr_t) + 1];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
  return buf;
}

/// Strips a trailing balanced "(...)" argument list from a demangled name,
/// leaving any "::suffix" after it (lambdas, local types) intact only when
/// the parens are not final. "ns::f(int, double)" -> "ns::f";
/// "operator()" survives because the scan only fires on a *balanced* final
/// group that does not empty the name.
std::string strip_arguments(const std::string& name) {
  if (name.empty() || name.back() != ')') return name;
  int depth = 0;
  for (std::size_t i = name.size(); i-- > 0;) {
    if (name[i] == ')') ++depth;
    if (name[i] == '(') {
      --depth;
      if (depth == 0) {
        if (i == 0) return name;  // "(anonymous namespace)" style prefix
        // Keep "operator()" and conversion operators whole.
        if (name.compare(0, i, "operator", 0, i) == 0) return name;
        return name.substr(0, i);
      }
    }
  }
  return name;
}

}  // namespace

std::string demangle_symbol(const char* mangled) {
#ifdef __linux__
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out = strip_arguments(demangled);
    std::free(demangled);
    return out;
  }
  std::free(demangled);
#endif
  return mangled;
}

Symbolizer::Symbolizer() {
#ifdef __linux__
  // Snapshot the executable mappings once; tier 2 of the lookup and the
  // source of "module+0xoff" names for symbol-less pcs.
  std::ifstream maps("/proc/self/maps");
  std::string line;
  while (std::getline(maps, line)) {
    // ADDR_BEGIN-ADDR_END PERMS OFFSET DEV INODE [PATH]
    std::istringstream in(line);
    std::string range, perms, offset, dev, inode, path;
    in >> range >> perms >> offset >> dev >> inode;
    std::getline(in, path);
    if (perms.size() < 3 || perms[2] != 'x') continue;
    const std::size_t dash = range.find('-');
    if (dash == std::string::npos) continue;
    Mapping m;
    m.begin = std::strtoull(range.substr(0, dash).c_str(), nullptr, 16);
    m.end = std::strtoull(range.substr(dash + 1).c_str(), nullptr, 16);
    const std::string_view trimmed = trim(path);
    const std::size_t slash = trimmed.rfind('/');
    m.path = std::string(slash == std::string_view::npos ? trimmed
                                                         : trimmed.substr(slash + 1));
    mappings_.push_back(std::move(m));
  }
  std::sort(mappings_.begin(), mappings_.end(),
            [](const Mapping& a, const Mapping& b) { return a.begin < b.begin; });
#endif
}

const Symbolizer::Mapping* Symbolizer::mapping_of(std::uintptr_t pc) const {
  auto it = std::upper_bound(
      mappings_.begin(), mappings_.end(), pc,
      [](std::uintptr_t v, const Mapping& m) { return v < m.begin; });
  if (it == mappings_.begin()) return nullptr;
  --it;
  return pc < it->end ? &*it : nullptr;
}

std::string Symbolizer::resolve(std::uintptr_t pc) const {
#ifdef __linux__
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_sname != nullptr) {
    return demangle_symbol(info.dli_sname);
  }
  if (const Mapping* m = mapping_of(pc)) {
    const std::string base = m->path.empty() ? "anon" : m->path;
    return str_cat(base, "+", hex_of(pc - m->begin));
  }
#endif
  return hex_of(pc);
}

const std::string& Symbolizer::name(std::uintptr_t pc, bool return_address) {
  // Return addresses point after their call; look up pc-1 so the frame
  // lands in the calling function even when the call was its last insn.
  const std::uintptr_t lookup = return_address && pc > 0 ? pc - 1 : pc;
  const auto it = cache_.find(lookup);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(lookup, resolve(lookup)).first->second;
}

bool Symbolizer::is_hex(const std::string& name) {
  return starts_with(name, "0x");
}

}  // namespace neat::obs::prof
