#include "obs/registry.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

#ifdef __linux__
#include <unistd.h>
#endif

#ifndef NEAT_GIT_SHA
#define NEAT_GIT_SHA "unknown"
#endif
#ifndef NEAT_BUILD_TYPE
#define NEAT_BUILD_TYPE "unknown"
#endif

namespace neat::obs {

namespace {

// Index of the log2 bucket for a microsecond value: 0 for < 1 µs, else
// floor(log2(us)) + 1, clamped to the last bucket. `us` must be >= 0 and
// non-NaN (record() guarantees it).
std::size_t bucket_of(double us) {
  if (!(us >= 1.0)) return 0;
  if (us >= std::ldexp(1.0, static_cast<int>(Log2Histogram::kBuckets) - 2)) {
    return Log2Histogram::kBuckets - 1;
  }
  return static_cast<std::size_t>(std::floor(std::log2(us))) + 1;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto ok_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!ok_first(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return ok_first(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

// Shortest round-trip decimal representation, the conventional Prometheus
// number formatting (also keeps the exposition golden-testable).
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return ec == std::errc() ? std::string(buf.data(), ptr) : std::to_string(v);
}

void append_label_value_escaped(std::string& out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

// `{k1="v1",k2="v2"}`, empty string for no labels; `extra` (e.g. a
// histogram `le`) is appended last when non-empty.
std::string label_block(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    append_label_value_escaped(out, l.value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

void Log2Histogram::record(double seconds) {
  // Guard against hostile durations: NaN and negatives count as 0 (a clock
  // misread is still one observation), +inf and overflowing values saturate
  // into the last bucket instead of invoking UB on the float->int cast.
  double us = seconds * 1e6;
  if (std::isnan(us) || us < 0.0) us = 0.0;
  constexpr double kMaxUs = 9.0e18;  // < 2^63, cast to uint64_t is exact-safe
  us = std::min(us, kMaxUs);
  buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<std::uint64_t>(us), std::memory_order_relaxed);
}

std::uint64_t Log2Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Log2Histogram::sum_seconds() const {
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e6;
}

double Log2Histogram::mean_seconds() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return sum_seconds() / static_cast<double>(n);
}

double Log2Histogram::quantile_seconds(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil so q=0.5 of 2 picks the 1st.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kBuckets - 1);
}

std::uint64_t Log2Histogram::bucket_count(std::size_t i) const {
  return buckets_[i].load(std::memory_order_relaxed);
}

double Log2Histogram::bucket_upper_seconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i)) / 1e6;  // 2^i µs.
}

namespace {

/// Unix time this process started, the Prometheus
/// `process_start_time_seconds` convention: boot time (/proc/stat btime)
/// plus the process start offset (/proc/self/stat field 22, clock ticks
/// since boot). Falls back to "now at first registry access" off Linux or
/// on parse failure — close enough for uptime math, and monotone within
/// one process either way.
double process_start_time_seconds() {
#ifdef __linux__
  std::ifstream self("/proc/self/stat");
  std::string content;
  std::getline(self, content);
  const std::size_t close = content.rfind(')');
  if (close != std::string::npos) {
    std::istringstream rest(content.substr(close + 1));
    std::vector<std::string> fields;
    std::string tok;
    while (rest >> tok) fields.push_back(tok);
    double btime = -1.0;
    std::ifstream proc("/proc/stat");
    std::string line;
    while (std::getline(proc, line)) {
      if (starts_with(line, "btime ")) {
        try {
          btime = std::stod(line.substr(6));
        } catch (const std::exception&) {
        }
        break;
      }
    }
    // starttime is /proc(5) field 22, i.e. index 19 of the post-comm split.
    if (btime >= 0.0 && fields.size() > 19) {
      try {
        return btime +
               std::stod(fields[19]) / static_cast<double>(sysconf(_SC_CLK_TCK));
      } catch (const std::exception&) {
      }
    }
  }
#endif
  return static_cast<double>(std::time(nullptr));
}

/// Families every NEAT process exposes without any subsystem opting in:
/// build provenance (constant 1 gauge carrying the identifying labels, the
/// Prometheus *_info idiom) and the process start time. Registered once at
/// first Registry::global() access so every exposition — neat_cli dumps,
/// the admin /metrics, bench deltas — carries them.
void register_process_metadata(Registry& r) {
  r.set_help("neat_build_info",
             "Build provenance of this binary; constant 1, data in the labels.");
  r.set_help("neat_process_start_time_seconds",
             "Unix time this process started, in seconds.");
  r.gauge("neat_build_info", {{"git_sha", NEAT_GIT_SHA},
                              {"compiler", __VERSION__},
                              {"build_type", NEAT_BUILD_TYPE}})
      .set(1.0);
  r.gauge("neat_process_start_time_seconds").set(process_start_time_seconds());
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  static const bool metadata_registered = [] {
    register_process_metadata(instance);
    return true;
  }();
  static_cast<void>(metadata_registered);
  return instance;
}

Registry::Series& Registry::series(std::string_view name, Labels labels, Kind kind) {
  NEAT_EXPECT(valid_metric_name(name),
              str_cat("Registry: invalid metric name '", std::string(name), "'"));
  for (const Label& l : labels) {
    NEAT_EXPECT(valid_metric_name(l.key),
                str_cat("Registry: invalid label key '", l.key, "'"));
  }
  const std::lock_guard<std::mutex> lock(mu_);
  Family* family = nullptr;
  for (const auto& f : families_) {
    if (f->name == name) {
      family = f.get();
      break;
    }
  }
  if (family == nullptr) {
    families_.push_back(std::make_unique<Family>());
    family = families_.back().get();
    family->name = std::string(name);
    family->kind = kind;
    for (auto it = pending_help_.begin(); it != pending_help_.end(); ++it) {
      if (it->first == family->name) {
        family->help = std::move(it->second);
        pending_help_.erase(it);
        break;
      }
    }
  }
  NEAT_EXPECT(family->kind == kind,
              str_cat("Registry: metric family '", family->name,
                      "' already registered with a different kind"));
  for (const auto& s : family->series) {
    if (s->labels == labels) return *s;
  }
  family->series.push_back(std::make_unique<Series>());
  Series& s = *family->series.back();
  s.labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter: s.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: s.histogram = std::make_unique<Log2Histogram>(); break;
  }
  return s;
}

const Registry::Series* Registry::find(std::string_view name, const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& f : families_) {
    if (f->name != name) continue;
    for (const auto& s : f->series) {
      if (s->labels == labels) return s.get();
    }
    return nullptr;
  }
  return nullptr;
}

void Registry::set_help(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& f : families_) {
    if (f->name == name) {
      f->help = std::string(help);
      return;
    }
  }
  for (auto& [pending_name, pending_text] : pending_help_) {
    if (pending_name == name) {
      pending_text = std::string(help);
      return;
    }
  }
  pending_help_.emplace_back(std::string(name), std::string(help));
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return *series(name, std::move(labels), Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return *series(name, std::move(labels), Kind::kGauge).gauge;
}

Log2Histogram& Registry::histogram(std::string_view name, Labels labels) {
  return *series(name, std::move(labels), Kind::kHistogram).histogram;
}

std::uint64_t Registry::counter_value(std::string_view name, const Labels& labels) const {
  const Series* s = find(name, labels);
  return (s != nullptr && s->counter) ? s->counter->value() : 0;
}

double Registry::histogram_sum_seconds(std::string_view name, const Labels& labels) const {
  const Series* s = find(name, labels);
  return (s != nullptr && s->histogram) ? s->histogram->sum_seconds() : 0.0;
}

std::string Registry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& f : families_) {
    out += "# HELP ";
    out += f->name;
    out += ' ';
    if (f->help.empty()) {
      out += "NEAT metric ";
      out += f->name;
      out += '.';
    } else {
      // Prometheus HELP escaping: backslash and newline only.
      for (const char c : f->help) {
        if (c == '\\') out += "\\\\";
        else if (c == '\n') out += "\\n";
        else out += c;
      }
    }
    out += '\n';
    out += "# TYPE ";
    out += f->name;
    switch (f->kind) {
      case Kind::kCounter: out += " counter\n"; break;
      case Kind::kGauge: out += " gauge\n"; break;
      case Kind::kHistogram: out += " histogram\n"; break;
    }
    for (const auto& s : f->series) {
      switch (f->kind) {
        case Kind::kCounter:
          out += f->name + label_block(s->labels) + ' ' +
                 std::to_string(s->counter->value()) + '\n';
          break;
        case Kind::kGauge:
          out += f->name + label_block(s->labels) + ' ' +
                 format_double(s->gauge->value()) + '\n';
          break;
        case Kind::kHistogram: {
          const Log2Histogram& h = *s->histogram;
          // Cumulative buckets; trailing all-zero tail is collapsed into the
          // +Inf line to keep the exposition readable.
          std::size_t last = 0;
          for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
            if (h.bucket_count(i) > 0) last = i;
          }
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i <= last; ++i) {
            cumulative += h.bucket_count(i);
            out += f->name + "_bucket" +
                   label_block(s->labels, str_cat("le=\"",
                       format_double(Log2Histogram::bucket_upper_seconds(i)), "\"")) +
                   ' ' + std::to_string(cumulative) + '\n';
          }
          out += f->name + "_bucket" + label_block(s->labels, "le=\"+Inf\"") + ' ' +
                 std::to_string(h.count()) + '\n';
          out += f->name + "_sum" + label_block(s->labels) + ' ' +
                 format_double(h.sum_seconds()) + '\n';
          out += f->name + "_count" + label_block(s->labels) + ' ' +
                 std::to_string(h.count()) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace neat::obs
