#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <chrono>
#include <cmath>

#include "obs/registry.h"

namespace neat::obs {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::string format_json_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no Inf/NaN literals
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return ec == std::errc() ? std::string(buf.data(), ptr) : "0";
}

// One cached (tracer id -> thread log) entry per tracer this thread has
// touched; linear scan is fine because a thread talks to very few tracers
// (usually just the global one).
struct LocalCacheEntry {
  std::uint64_t tracer_id;
  std::shared_ptr<Tracer::ThreadLog> log;
};

thread_local std::vector<LocalCacheEntry> tl_logs;

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// The process-wide drop counter; created lazily so registries stay empty
// until the first span is actually overwritten.
Counter& spans_dropped_counter() {
  static Counter& c = Registry::global().counter("neat_obs_spans_dropped_total");
  return c;
}

}  // namespace

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {
// Trivially constructed/destroyed thread-local, so reading it is a constant
// offset from the thread pointer — safe from signal handlers (the logger's
// emergency path reads it) and free of TLS guard branches.
thread_local std::uint64_t t_trace_id = 0;
}  // namespace

std::uint64_t current_trace_id() { return t_trace_id; }

void set_current_trace_id(std::uint64_t id) { t_trace_id = id; }

TraceIdScope::TraceIdScope(std::uint64_t id) : prev_(t_trace_id) {
  t_trace_id = id;
}

TraceIdScope::~TraceIdScope() { t_trace_id = prev_; }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer::Tracer() : id_(next_tracer_id()) {
  process_epoch();  // pin the epoch no later than the first tracer
}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   process_epoch())
      .count();
}

Tracer::ThreadLog& Tracer::local_log() {
  for (const LocalCacheEntry& e : tl_logs) {
    if (e.tracer_id == id_) return *e.log;
  }
  auto log = std::make_shared<ThreadLog>();
  log->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(log);
  }
  tl_logs.push_back({id_, log});
  return *log;
}

void Tracer::set_thread_name(const std::string& name) {
  if (!enabled()) return;
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.mu);
  log.name = name;
}

std::size_t Tracer::span_count() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    logs = logs_;
  }
  std::size_t n = 0;
  for (const auto& log : logs) {
    const std::lock_guard<std::mutex> lock(log->mu);
    n += log->events.size();
  }
  return n;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    logs = logs_;
  }
  for (const auto& log : logs) {
    const std::lock_guard<std::mutex> lock(log->mu);
    log->events.clear();
    log->head = 0;
    log->name.clear();
  }
}

void Tracer::record(SpanEvent event) {
  const std::size_t cap = max_spans_.load(std::memory_order_relaxed);
  ThreadLog& log = local_log();
  const std::lock_guard<std::mutex> lock(log.mu);
  if (log.events.size() < cap) {
    log.events.push_back(std::move(event));
    return;
  }
  // Ring full: recycle the oldest slot (modulo the actual size, which may
  // exceed a capacity that was lowered after the log grew).
  log.events[log.head] = std::move(event);
  log.head = (log.head + 1) % log.events.size();
  dropped_.fetch_add(1, std::memory_order_relaxed);
  spans_dropped_counter().add(1);
}

std::string Tracer::to_chrome_json() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    logs = logs_;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };
  for (const auto& log : logs) {
    const std::lock_guard<std::mutex> lock(log->mu);
    const std::string tid = std::to_string(log->tid);
    if (!log->name.empty()) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
           ",\"args\":{\"name\":\"" + json_escape(log->name) + "\"}}");
    }
    for (const SpanEvent& e : log->events) {
      std::string event = "{\"name\":\"";
      event += json_escape(e.name);
      event += "\",\"cat\":\"neat\",\"ph\":\"X\",\"ts\":";
      event += format_json_double(e.ts_us);
      event += ",\"dur\":";
      event += format_json_double(e.dur_us);
      event += ",\"pid\":1,\"tid\":";
      event += tid;
      if (!e.args_json.empty()) {
        event += ",\"args\":{";
        event += e.args_json;
        event += '}';
      }
      event += '}';
      emit(event);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::to_tracez_json(std::size_t max_spans) const {
  struct Row {
    std::uint32_t tid;
    std::string thread;
    SpanEvent event;
  };
  std::vector<Row> rows;
  {
    std::vector<std::shared_ptr<ThreadLog>> logs;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      logs = logs_;
    }
    for (const auto& log : logs) {
      const std::lock_guard<std::mutex> lock(log->mu);
      for (const SpanEvent& e : log->events) rows.push_back({log->tid, log->name, e});
    }
  }
  // Most recently finished first.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.event.ts_us + a.event.dur_us > b.event.ts_us + b.event.dur_us;
  });
  const std::size_t total = rows.size();
  if (rows.size() > max_spans) rows.resize(max_spans);

  std::string out = "{\"spans\":[";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(r.event.name);
    out += "\",\"tid\":";
    out += std::to_string(r.tid);
    if (!r.thread.empty()) {
      out += ",\"thread\":\"";
      out += json_escape(r.thread);
      out += '"';
    }
    out += ",\"ts_us\":";
    out += format_json_double(r.event.ts_us);
    out += ",\"dur_us\":";
    out += format_json_double(r.event.dur_us);
    if (!r.event.args_json.empty()) {
      out += ",\"args\":{";
      out += r.event.args_json;
      out += '}';
    }
    out += '}';
  }
  out += "],\"span_count\":";
  out += std::to_string(total);
  out += ",\"spans_dropped\":";
  out += std::to_string(spans_dropped());
  out += '}';
  return out;
}

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer) : name_(name) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  start_us_ = Tracer::now_us();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const double end_us = Tracer::now_us();
  tracer_->record({name_, start_us_, std::max(0.0, end_us - start_us_), std::move(args_)});
}

void ScopedSpan::arg_raw(const char* key, std::string value_json) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += json_escape(key);
  args_ += "\":";
  args_ += value_json;
}

void ScopedSpan::arg(const char* key, std::uint64_t v) {
  arg_raw(key, std::to_string(v));
}

void ScopedSpan::arg(const char* key, std::int64_t v) {
  arg_raw(key, std::to_string(v));
}

void ScopedSpan::arg(const char* key, double v) { arg_raw(key, format_json_double(v)); }

void ScopedSpan::arg(const char* key, const char* v) { arg(key, std::string(v)); }

void ScopedSpan::arg(const char* key, const std::string& v) {
  arg_raw(key, '"' + json_escape(v) + '"');
}

}  // namespace neat::obs
